package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pjds/internal/experiments"
	"pjds/internal/tuner"
)

func TestRunDemo(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "col_start") {
		t.Error("demo output missing")
	}
}

func TestRunGenExportImport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.mtx")
	var buf bytes.Buffer
	if err := run([]string{"-gen", "sAMG", "-scale", "0.003", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pJDS", "advice:", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The exported file reads back through the file path.
	buf.Reset()
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "advice:") {
		t.Error("file path output missing")
	}
}

func TestRunNoArguments(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no-argument invocation accepted")
	}
	if err := run([]string{"-gen", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := os.Stat("nonexistent.mtx"); err == nil {
		t.Skip("unexpected file present")
	}
	if err := run([]string{"nonexistent.mtx"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestRunRecommend: -recommend prints the four-way format ranking and
// resolves the tuned winner from the DB when a sweep for the same
// structure fingerprint exists.
func TestRunRecommend(t *testing.T) {
	db := filepath.Join(t.TempDir(), "tuning.jsonl")
	var buf bytes.Buffer
	if err := run([]string{"-gen", "sAMG", "-scale", "0.003", "-recommend", "-tuning-db", db}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"format ranking", "pJDS", "CMRS", "SELL-C-σ", "CRS", "no entry"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	// Persist a sweep for the same structure; -recommend must surface it.
	m, err := experiments.Matrix("sAMG", 0.003)
	if err != nil {
		t.Fatal(err)
	}
	err = tuner.Append(db, tuner.Entry{
		Fingerprint: tuner.Fingerprint(m), Device: "Tesla C2070", Matrix: "sAMG",
		Winner: tuner.Cell{Format: "sell", C: 8, Sigma: 256, MeasuredNsPerNnz: 1.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"-gen", "sAMG", "-scale", "0.003", "-recommend", "-tuning-db", db}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "tuned: SELL-8-256 measured 1.25 ns/nnz") {
		t.Errorf("tuned winner not surfaced:\n%s", buf.String())
	}
}
