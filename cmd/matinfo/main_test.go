package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-demo"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "col_start") {
		t.Error("demo output missing")
	}
}

func TestRunGenExportImport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.mtx")
	var buf bytes.Buffer
	if err := run([]string{"-gen", "sAMG", "-scale", "0.003", "-out", path}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"pJDS", "advice:", "wrote"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// The exported file reads back through the file path.
	buf.Reset()
	if err := run([]string{path}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "advice:") {
		t.Error("file path output missing")
	}
}

func TestRunNoArguments(t *testing.T) {
	if err := run(nil, &bytes.Buffer{}); err == nil {
		t.Fatal("no-argument invocation accepted")
	}
	if err := run([]string{"-gen", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown generator accepted")
	}
	if _, err := os.Stat("nonexistent.mtx"); err == nil {
		t.Skip("unexpected file present")
	}
	if err := run([]string{"nonexistent.mtx"}, &bytes.Buffer{}); err == nil {
		t.Fatal("missing file accepted")
	}
}
