// Command matinfo inspects sparse matrices: it prints structure
// statistics, per-format storage footprints and the §II advisor's
// verdict for MatrixMarket files or generated test matrices, walks the
// Fig. 1 pJDS derivation on a worked example, and exports generated
// matrices to MatrixMarket.
//
// Usage:
//
//	matinfo -demo                         # Fig. 1 worked example
//	matinfo file.mtx                      # stats for a MatrixMarket file
//	matinfo -gen HMEp -scale 0.05         # stats for a generated matrix
//	matinfo -gen sAMG -scale 0.01 -out m.mtx
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pjds/internal/advisor"
	"pjds/internal/experiments"
	"pjds/internal/formats"
	"pjds/internal/matrix"
	"pjds/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "matinfo:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("matinfo", flag.ContinueOnError)
	var (
		demo  = fs.Bool("demo", false, "walk the Fig. 1 pJDS derivation on the worked example")
		gen   = fs.String("gen", "", "generate a test matrix: DLR1, DLR2, HMEp, sAMG, UHBR")
		scale = fs.Float64("scale", experiments.DefaultScale, "scale for -gen")
		outMM = fs.String("out", "", "write the matrix to this MatrixMarket file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *demo {
		return experiments.Fig1Demo(out)
	}

	var m *matrix.CSR[float64]
	var name string
	switch {
	case *gen != "":
		var err error
		m, err = experiments.Matrix(*gen, *scale)
		if err != nil {
			return err
		}
		name = *gen
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		m, err = matrix.ReadMatrixMarket[float64](f)
		f.Close()
		if err != nil {
			return err
		}
		name = fs.Arg(0)
	default:
		return fmt.Errorf("need -demo, -gen NAME, or a MatrixMarket file argument")
	}

	st := matrix.ComputeStats(m)
	fmt.Fprintf(out, "%s: %s\n\n", name, st)
	if err := printFootprints(out, m); err != nil {
		return err
	}
	rec := advisor.Recommend(st, nil, nil)
	fmt.Fprintf(out, "\nadvice: offload %s (PCIe penalty ~%.0f%%), format %s\n", rec.Offload, rec.PCIePenaltyPct, rec.Format)
	for _, r := range rec.Reasons {
		fmt.Fprintf(out, "  - %s\n", r)
	}

	if *outMM != "" {
		f, err := os.Create(*outMM)
		if err != nil {
			return err
		}
		if err := matrix.WriteMatrixMarket(f, m); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", *outMM)
	}
	return nil
}

// printFootprints renders the per-format storage comparison.
func printFootprints(out io.Writer, m *matrix.CSR[float64]) error {
	pj, err := formats.NewPJDS(m)
	if err != nil {
		return err
	}
	jds, err := formats.NewJDS(m)
	if err != nil {
		return err
	}
	sell, err := formats.NewSlicedELL(m, 32, m.NRows)
	if err != nil {
		return err
	}
	list := []formats.Format[float64]{
		formats.NewCRS(m),
		formats.NewELLPACK(m),
		formats.NewELLPACKR(m),
		sell,
		pj,
		jds,
	}
	ell := list[1]
	rows := [][]string{{"format", "stored elems", "footprint MB (DP)", "vs ELLPACK"}}
	for _, f := range list {
		rows = append(rows, []string{
			f.Name(),
			fmt.Sprint(f.StoredElems()),
			fmt.Sprintf("%.1f", float64(f.FootprintBytes())/(1<<20)),
			fmt.Sprintf("%+.1f%%", -100*formats.DataReduction[float64](ell, f)),
		})
	}
	return textplot.Table(out, rows)
}
