// Command matinfo inspects sparse matrices: it prints structure
// statistics, per-format storage footprints and the §II advisor's
// verdict for MatrixMarket files or generated test matrices, walks the
// Fig. 1 pJDS derivation on a worked example, and exports generated
// matrices to MatrixMarket.
//
// MatrixMarket files are ingested through the chunked parallel reader
// (no intermediate COO copy); -workers sets the conversion worker
// count and -timings prints the per-phase conversion cost breakdown.
//
// Usage:
//
//	matinfo -demo                         # Fig. 1 worked example
//	matinfo file.mtx                      # stats for a MatrixMarket file
//	matinfo -workers 4 -timings file.mtx  # parallel ingest + phase timings
//	matinfo -gen HMEp -scale 0.05         # stats for a generated matrix
//	matinfo -gen sAMG -scale 0.01 -out m.mtx
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pjds/internal/advisor"
	"pjds/internal/convert"
	"pjds/internal/experiments"
	"pjds/internal/formats"
	"pjds/internal/matrix"
	"pjds/internal/par"
	"pjds/internal/textplot"
	"pjds/internal/tuner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "matinfo:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("matinfo", flag.ContinueOnError)
	var (
		demo     = fs.Bool("demo", false, "walk the Fig. 1 pJDS derivation on the worked example")
		gen      = fs.String("gen", "", "generate a test matrix: DLR1, DLR2, HMEp, sAMG, UHBR")
		scale    = fs.Float64("scale", experiments.DefaultScale, "scale for -gen")
		outMM    = fs.String("out", "", "write the matrix to this MatrixMarket file")
		workers  = fs.Int("workers", 0, "conversion worker count (0 = all cores)")
		timings  = fs.Bool("timings", false, "print ingest and conversion phase timings")
		recomm   = fs.Bool("recommend", false, "rank the storage formats by modeled Eq. 1 traffic and show the tuned (C, σ) if the tuning DB has this matrix")
		tuningDB = fs.String("tuning-db", "", "tuning DB consulted by -recommend (default "+tuner.DefaultPath+")")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	par.SetDefault(*workers)

	if *demo {
		return experiments.Fig1Demo(out)
	}

	// One recorder spans ingest and all format constructions; -timings
	// prints its merged phase table at the end.
	rec := convert.NewRecorder(nil, nil, 0)
	opt := matrix.ConvertOptions{Workers: *workers, Arena: matrix.NewArena()}
	if *timings {
		opt.Timer = rec
	}

	var m *matrix.CSR[float64]
	var name string
	var rs matrix.ReadStats
	switch {
	case *gen != "":
		var err error
		m, err = experiments.Matrix(*gen, *scale)
		if err != nil {
			return err
		}
		name = *gen
	case fs.NArg() == 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		// Stream straight from the file into CSR: the chunked reader
		// never materializes a COO copy of the whole file.
		m, rs, err = matrix.ReadMatrixMarketOpt[float64](f, opt)
		f.Close()
		if err != nil {
			return err
		}
		name = fs.Arg(0)
	default:
		return fmt.Errorf("need -demo, -gen NAME, or a MatrixMarket file argument")
	}

	st := matrix.ComputeStats(m)
	fmt.Fprintf(out, "%s: %s\n\n", name, st)
	if err := printFootprints(out, m, opt); err != nil {
		return err
	}
	rec2 := advisor.Recommend(st, nil, nil)
	fmt.Fprintf(out, "\nadvice: offload %s (PCIe penalty ~%.0f%%), format %s\n", rec2.Offload, rec2.PCIePenaltyPct, rec2.Format)
	for _, r := range rec2.Reasons {
		fmt.Fprintf(out, "  - %s\n", r)
	}

	if *recomm {
		if err := printRecommendation(out, m, st, *tuningDB); err != nil {
			return err
		}
	}

	if *outMM != "" {
		f, err := os.Create(*outMM)
		if err != nil {
			return err
		}
		if err := matrix.WriteMatrixMarket(f, m); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "\nwrote %s\n", *outMM)
	}

	if *timings {
		fmt.Fprintf(out, "\nconversion phases (%d workers):\n", par.Resolve(*workers))
		if rs.HeaderNnz > 0 || rs.Chunks > 0 {
			fmt.Fprintf(out, "  ingest: %d header entries, %d stored, %d chunks\n",
				rs.HeaderNnz, rs.Entries, rs.Chunks)
		}
		rows := [][]string{{"phase", "seconds", "calls"}}
		for _, p := range rec.Phases() {
			rows = append(rows, []string{p.Name, fmt.Sprintf("%.6f", p.Seconds), fmt.Sprint(p.Count)})
		}
		rows = append(rows, []string{"total", fmt.Sprintf("%.6f", rec.TotalSeconds()), ""})
		if err := textplot.Table(out, rows); err != nil {
			return err
		}
	}
	return nil
}

// printRecommendation renders the format-selection ranking (all four
// contenders by modeled Eq. 1 traffic) and, when the tuning DB holds a
// sweep for this matrix's structure, the measured winner with its
// tuned parameters.
func printRecommendation(out io.Writer, m *matrix.CSR[float64], st matrix.Stats, dbPath string) error {
	lens := make([]int, m.NRows)
	for i := range lens {
		lens[i] = m.RowLen(i)
	}
	scores := advisor.RankFormats(st, lens, nil)
	fmt.Fprintf(out, "\nformat ranking (modeled DP bytes/nnz, Eq. 1):\n")
	rows := [][]string{{"rank", "format", "bytes/nnz", "beta", "why"}}
	for i, s := range scores {
		beta := "-"
		if s.Format != "CRS" && s.Format != "CMRS" {
			beta = fmt.Sprintf("%.3f", s.Beta)
		}
		rows = append(rows, []string{
			fmt.Sprint(i + 1), s.Format,
			fmt.Sprintf("%.2f", s.BytesPerNnz), beta, s.Reason,
		})
	}
	if err := textplot.Table(out, rows); err != nil {
		return err
	}

	if dbPath == "" {
		dbPath = tuner.DefaultPath
	}
	entries, err := tuner.Read(dbPath)
	if err != nil {
		return err
	}
	e, ok := tuner.Lookup(entries, tuner.Fingerprint(m), "")
	if !ok {
		fmt.Fprintf(out, "\ntuned: no entry in %s for this structure (run spmvbench -format auto to sweep)\n", dbPath)
		return nil
	}
	fmt.Fprintf(out, "\ntuned: %s measured %.2f ns/nnz on %s (workers %d, swept %s)\n",
		e.Winner.Label(), e.Winner.MeasuredNsPerNnz, e.Device, e.Workers, e.Time)
	return nil
}

// printFootprints renders the per-format storage comparison.
func printFootprints(out io.Writer, m *matrix.CSR[float64], opt matrix.ConvertOptions) error {
	pj, err := formats.NewPJDSWith(m, opt)
	if err != nil {
		return err
	}
	jds, err := formats.NewJDSWith(m, opt)
	if err != nil {
		return err
	}
	sell, err := formats.NewSlicedELLWith(m, 32, m.NRows, opt)
	if err != nil {
		return err
	}
	list := []formats.Format[float64]{
		formats.NewCRS(m),
		formats.NewELLPACKWith(m, opt),
		formats.NewELLPACKRWith(m, opt),
		sell,
		pj,
		jds,
	}
	ell := list[1]
	rows := [][]string{{"format", "stored elems", "footprint MB (DP)", "vs ELLPACK"}}
	for _, f := range list {
		rows = append(rows, []string{
			f.Name(),
			fmt.Sprint(f.StoredElems()),
			fmt.Sprintf("%.1f", float64(f.FootprintBytes())/(1<<20)),
			fmt.Sprintf("%+.1f%%", -100*formats.DataReduction[float64](ell, f)),
		})
	}
	return textplot.Table(out, rows)
}
