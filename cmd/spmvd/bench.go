package main

import (
	"fmt"
	"io"
	"testing"
	"time"

	"pjds/internal/faults"
	"pjds/internal/gpu"
	"pjds/internal/service"
)

// benchFaults is the standing chaos of the PR 9 bench: device 0 takes
// an uncorrectable ECC error mid-run, so the recorded latencies cover
// a device→host downgrade, not just the sunny path.
const benchFaults = "ecc rank=0 launch=40"

// runBench is the -bench mode: the chaos swarm under a fixed
// configuration plus the admission micro-benchmark, written as the
// BENCH_PR9.json artifact that scripts/regress.sh gates:
//
//   - swarm.p50_latency_seconds / p99_latency_seconds (lower-better)
//   - swarm.throughput_rps (higher-better)
//   - admission.allocs_per_op — gated to exactly 0 by bench.sh
//   - swarm.digest_mismatches — must be 0, checked right here
func runBench(o options, cfg service.Config, out io.Writer) error {
	if o.out == "" {
		o.out = "BENCH_PR9.json"
	}
	// A stable, saturating configuration: more clients than execution
	// slots, enough synthetic per-apply latency that queueing (not Go
	// scheduling noise) dominates the percentiles.
	if cfg.ApplyDelay == 0 {
		cfg.ApplyDelay = 200 * time.Microsecond
		o.applyDelay = cfg.ApplyDelay
	}
	if cfg.DeviceFaults == nil {
		plan, err := faults.Parse(o.seed, benchFaults)
		if err != nil {
			return err
		}
		o.faultsArg = benchFaults
		cfg.DeviceFaults = func(i int) gpu.ECCInjector { return plan.DeviceFor(i) }
	}

	rep, _, err := swarmRun(o, cfg, out)
	if err != nil {
		return err
	}

	// The admission fast path, measured standalone: the per-request
	// constant cost, and the 0-allocs/op steady-state gate.
	adm := testing.Benchmark(func(b *testing.B) {
		ab := service.NewAdmitBench()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if !ab.Cycle() {
				b.Fatal("admission benchmark shed a request")
			}
		}
	})
	fmt.Fprintf(out, "admission fast path: %.1f ns/op, %d allocs/op\n",
		float64(adm.NsPerOp()), adm.AllocsPerOp())

	doc := map[string]any{
		"schema": "pjds-spmvd/v1",
		"config": map[string]any{
			"devices":        o.devices,
			"clients":        o.clients,
			"requests":       o.reqs,
			"stencil_nx":     o.nx,
			"apply_delay_ms": o.applyDelay.Seconds() * 1000,
			"faults":         o.faultsArg,
			"seed":           o.seed,
		},
		"swarm": rep,
		"admission": map[string]any{
			"ns_per_op":     float64(adm.NsPerOp()),
			"allocs_per_op": adm.AllocsPerOp(),
			"bytes_per_op":  adm.AllocedBytesPerOp(),
		},
	}
	return writeSwarmReport(o, doc, rep, out)
}
