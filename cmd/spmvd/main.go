// Command spmvd is the multi-tenant spMVM service in front of the
// simulated GPU fleet (ROADMAP item 2, "spMVM-as-a-service"): a
// long-running HTTP server accepting matrix uploads and spMVM / CG
// solve requests from many tenants, with per-tenant token-bucket
// admission, deadline propagation into the kernel replay, a
// device → hostkernel → reject degradation ladder driven by the ECC
// fault signals and the health engine, and graceful drain on SIGTERM.
//
// Modes:
//
//	spmvd                 serve until SIGTERM/SIGINT, then drain and exit 0
//	spmvd -swarm          in-process chaos swarm: many concurrent tenants,
//	                      injected device faults, killed clients, tight
//	                      deadlines; exits non-zero on any wrong digest
//	spmvd -bench          swarm under load + admission micro-benchmark,
//	                      writing the BENCH_PR9.json artifact
//
// With -tuning-db PATH the service runs the (C, σ) auto-tuner once
// per uploaded matrix structure (internal/tuner), serves it with the
// winning format, persists winners in the JSONL tuning DB, and
// publishes service_tuning_lag_ratio so the health engine can flag
// matrices running slower than their tuned prediction.
//
// The service shares one port with the whole observability surface:
// /metrics, /dashboard, /healthz, /spans, /tenants.json and the /v1
// API all ride the same telemetry endpoint.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pjds/internal/faults"
	"pjds/internal/flight"
	"pjds/internal/gpu"
	"pjds/internal/health"
	"pjds/internal/runledger"
	"pjds/internal/service"
	"pjds/internal/telemetry"
	"pjds/internal/tuner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spmvd:", err)
		os.Exit(1)
	}
}

type options struct {
	addr       string
	devices    int
	inflight   int
	queue      int
	rate       float64
	burst      float64
	deadline   time.Duration
	drainGrace time.Duration
	applyDelay time.Duration
	faultsArg  string
	seed       uint64
	flightOn   bool
	flightDump string
	ledgerArg  string
	tuningDB   string

	swarm   bool
	bench   bool
	clients int
	reqs    int
	nx      int
	killPct int
	ddlPct  int
	out     string
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spmvd", flag.ContinueOnError)
	fs.SetOutput(out)
	var o options
	fs.StringVar(&o.addr, "addr", "127.0.0.1:0", "listen address for the service + observability endpoint")
	fs.IntVar(&o.devices, "devices", 4, "simulated GPU devices in the pool")
	fs.IntVar(&o.inflight, "inflight", 0, "max concurrently executing requests (0 = one per device)")
	fs.IntVar(&o.queue, "queue", 0, "bounded admission backlog beyond the in-flight cap (0 = 4x in-flight)")
	fs.Float64Var(&o.rate, "rate", 100, "per-tenant token-bucket refill (requests/second)")
	fs.Float64Var(&o.burst, "burst", 200, "per-tenant token-bucket burst capacity")
	fs.DurationVar(&o.deadline, "deadline", 30*time.Second, "default request deadline when the client sends none")
	fs.DurationVar(&o.drainGrace, "drain-grace", 5*time.Second, "how long drain waits before checkpointing in-flight solves")
	fs.DurationVar(&o.applyDelay, "apply-delay", 0, "synthetic per-application latency (chaos/load testing)")
	fs.StringVar(&o.faultsArg, "faults", "", "fault plan script; 'ecc rank=R launch=N' maps rank to device R (see cmd/chaos)")
	fs.Uint64Var(&o.seed, "seed", 42, "seed for the fault plan and the swarm's request schedule")
	fs.BoolVar(&o.flightOn, "flight", false, "enable the always-on flight recorder (/spans)")
	fs.StringVar(&o.flightDump, "flight-dump", "", "write a post-incident trace here on severe events (implies -flight)")
	fs.StringVar(&o.ledgerArg, "ledger", "", "append the run's record to a JSONL run ledger ('default' = "+runledger.DefaultPath+")")
	fs.StringVar(&o.tuningDB, "tuning-db", "", "tune each uploaded matrix once and persist winners at this JSONL path ('default' = "+tuner.DefaultPath+"; empty disables tuning)")
	fs.BoolVar(&o.swarm, "swarm", false, "run the in-process chaos swarm instead of serving")
	fs.BoolVar(&o.bench, "bench", false, "run the swarm + admission micro-benchmark and write the PR 9 bench artifact")
	fs.IntVar(&o.clients, "swarm-clients", 24, "concurrent swarm clients")
	fs.IntVar(&o.reqs, "swarm-requests", 12, "requests per swarm client")
	fs.IntVar(&o.nx, "swarm-nx", 16, "swarm matrix stencil edge (nx*nx unknowns)")
	fs.IntVar(&o.killPct, "swarm-kill-pct", 5, "percent of swarm requests whose client is killed mid-flight")
	fs.IntVar(&o.ddlPct, "swarm-deadline-pct", 5, "percent of swarm requests carrying a too-tight deadline")
	fs.StringVar(&o.out, "o", "", "write the swarm/bench JSON report here (default stdout, bench: BENCH_PR9.json)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if o.flightOn || o.flightDump != "" {
		rec := flight.Enable(0, 0)
		rec.RegisterHTTP()
		if o.flightDump != "" {
			rec.SetDump(flight.DumpConfig{Path: o.flightDump, MinSeverity: flight.Error})
		}
		defer func() {
			if p := rec.LastDump(); p != "" {
				fmt.Fprintf(out, "flight recorder dumped %s\n", p)
			}
			flight.Disable()
		}()
	}

	var plan *faults.Plan
	if o.faultsArg != "" {
		p, err := faults.Parse(o.seed, o.faultsArg)
		if err != nil {
			return err
		}
		plan = p
	}

	cfg := service.Config{
		Devices:         o.devices,
		MaxInFlight:     o.inflight,
		QueueDepth:      o.queue,
		TenantRate:      o.rate,
		TenantBurst:     o.burst,
		DefaultDeadline: o.deadline,
		ApplyDelay:      o.applyDelay,
		TuningDB:        o.tuningDB,
		Registry:        telemetry.Default(),
	}
	if cfg.TuningDB == "default" {
		cfg.TuningDB = tuner.DefaultPath
	}
	if plan != nil {
		cfg.DeviceFaults = func(i int) gpu.ECCInjector { return plan.DeviceFor(i) }
	}

	switch {
	case o.bench:
		return runBench(o, cfg, out)
	case o.swarm:
		return runSwarm(o, cfg, out)
	default:
		return serve(o, cfg, out)
	}
}

// serve runs the long-lived server: health engine, full observability
// surface, and the SIGTERM drain path of the tentpole.
func serve(o options, cfg service.Config, out io.Writer) error {
	eng := health.New(telemetry.Default(), health.Options{})
	eng.RegisterHTTP()
	eng.Start(health.Options{})
	defer eng.Stop()
	cfg.Health = eng

	svc := service.New(cfg)
	defer svc.Close()
	svc.RegisterHTTP()

	ledgerPath := o.ledgerArg
	if ledgerPath == "default" {
		ledgerPath = runledger.DefaultPath
	}
	trendLedger := ledgerPath
	if trendLedger == "" {
		trendLedger = runledger.DefaultPath
	}
	telemetry.RegisterHandler("/trends.json",
		runledger.TrendHandler(trendLedger, nil, runledger.TrendOptions{}))

	srv, err := telemetry.Serve(o.addr, telemetry.Default())
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Fprintf(out, "spmvd listening on http://%s\n", srv.Addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	got := <-sig
	fmt.Fprintf(out, "spmvd: %s, draining (grace %s)\n", got, o.drainGrace)

	rep := svc.Drain(o.drainGrace)
	st := svc.StatusNow()
	fmt.Fprintf(out, "spmvd: drained in %.3fs (graceful=%v, checkpointed=%d, served=%d)\n",
		rep.WaitedSeconds, rep.Graceful, rep.Checkpointed, st.Served)

	if ledgerPath != "" {
		if err := runledger.Append(ledgerPath, runledger.Entry{
			Tool:    "spmvd",
			Format:  "pjds",
			Metrics: runledger.MetricsFromRegistry(telemetry.Default()),
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "ledger: appended run to %s\n", ledgerPath)
	}
	return nil
}
