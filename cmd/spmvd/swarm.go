package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pjds/internal/core"
	"pjds/internal/health"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/service"
	"pjds/internal/solver"
	"pjds/internal/telemetry"
)

// swarmReport is the chaos-swarm verdict, also the "swarm" section of
// BENCH_PR9.json. digest_mismatches is the hard gate: the service may
// shed, checkpoint or downgrade, but a wrong bit is a failure.
type swarmReport struct {
	Clients          int     `json:"clients"`
	RequestsPerClnt  int     `json:"requests_per_client"`
	Requests         int64   `json:"requests_total"`
	OK               int64   `json:"ok"`
	Shed429          int64   `json:"shed_429"`
	Unavailable503   int64   `json:"unavailable_503"`
	Timeout504       int64   `json:"timeout_504"`
	Checkpointed     int64   `json:"checkpointed"`
	KilledClients    int64   `json:"killed_clients"`
	OtherErrors      int64   `json:"other_errors"`
	DigestMismatches int64   `json:"digest_mismatches"`
	P50Latency       float64 `json:"p50_latency_seconds"`
	P99Latency       float64 `json:"p99_latency_seconds"`
	ThroughputRPS    float64 `json:"throughput_rps"`
	ElapsedSeconds   float64 `json:"elapsed_seconds"`
	HostFallbacks    int64   `json:"host_fallbacks"`
	DevicesLost      int     `json:"devices_lost"`
	DrainGraceful    bool    `json:"drain_graceful"`
	DrainCheckpoints int64   `json:"drain_checkpointed"`
	DrainSeconds     float64 `json:"drain_seconds"`
}

// splitmix64 is the swarm's deterministic request schedule: every
// choice (kind, seed, kill, deadline) derives from (seed, client,
// request), never from time or a shared RNG, so a failing run replays
// exactly under the same -seed.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// swarmSeeds is how many distinct request vectors the swarm uses;
// reference digests are precomputed once per seed.
const swarmSeeds = 8

// references computes the fault-free digests every service response
// must match bit for bit, through a private host pipeline: spmv
// digests per seed, and solve digests per seed with the service's own
// default tol/maxIter.
func references(m *matrix.CSR[float64]) (spmv, solve []string, err error) {
	op, err := solver.NewPermutedPJDS(m, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	defer op.Close()
	n := m.NRows
	for s := 0; s < swarmSeeds; s++ {
		x := service.SeedVector(n, uint64(s))
		xp := op.Enter(make([]float64, n), x)
		yp := make([]float64, n)
		if err := op.Apply(yp, xp); err != nil {
			return nil, nil, err
		}
		spmv = append(spmv, service.DigestVector(op.Leave(make([]float64, n), yp)))

		bp := op.Enter(make([]float64, n), x)
		sol := make([]float64, n)
		if _, err := solver.CG(op, sol, bp, 1e-10, 10*n); err != nil {
			return nil, nil, fmt.Errorf("reference solve seed %d: %w", s, err)
		}
		solve = append(solve, service.DigestVector(op.Leave(make([]float64, n), sol)))
	}
	return spmv, solve, nil
}

// runSwarm is the -swarm mode: an in-process server under a
// deterministic chaos swarm — concurrent tenants, injected device
// faults, killed clients, too-tight deadlines — ending in a full
// drain. It exits non-zero on any digest mismatch or transport error.
func runSwarm(o options, cfg service.Config, out io.Writer) error {
	rep, _, err := swarmRun(o, cfg, out)
	if err != nil {
		return err
	}
	return writeSwarmReport(o, map[string]any{"schema": "pjds-spmvd/v1", "swarm": rep}, rep, out)
}

func writeSwarmReport(o options, doc any, rep *swarmReport, out io.Writer) error {
	body, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	body = append(body, '\n')
	if o.out != "" {
		if err := os.WriteFile(o.out, body, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", o.out)
	} else {
		_, _ = out.Write(body)
	}
	if rep.DigestMismatches > 0 {
		return fmt.Errorf("swarm: %d digest mismatch(es) — the service returned wrong bits", rep.DigestMismatches)
	}
	if rep.OtherErrors > 0 {
		return fmt.Errorf("swarm: %d unexpected error(s)", rep.OtherErrors)
	}
	if rep.OK == 0 {
		return fmt.Errorf("swarm: no request succeeded")
	}
	return nil
}

// swarmRun starts the service, runs the swarm, drains, and returns
// the report plus the final service status.
func swarmRun(o options, cfg service.Config, out io.Writer) (*swarmReport, service.Status, error) {
	eng := health.New(telemetry.Default(), health.Options{})
	eng.Start(health.Options{Interval: 100 * time.Millisecond})
	defer eng.Stop()
	cfg.Health = eng

	svc := service.New(cfg)
	defer svc.Close()
	svc.RegisterHTTP()
	srv, err := telemetry.Serve(o.addr, telemetry.Default())
	if err != nil {
		return nil, service.Status{}, err
	}
	defer srv.Close()
	base := "http://" + srv.Addr
	fmt.Fprintf(out, "spmvd listening on %s (swarm mode)\n", base)

	// The shared matrix: an SPD 2D stencil, uploaded over the wire so
	// the swarm exercises the streaming ingest path too.
	m := matgen.Stencil2D(o.nx, o.nx)
	var mm bytes.Buffer
	if err := matrix.WriteMatrixMarket(&mm, m); err != nil {
		return nil, service.Status{}, err
	}
	resp, err := http.Post(base+"/v1/matrices?name=swarm-stencil", "text/plain", bytes.NewReader(mm.Bytes()))
	if err != nil {
		return nil, service.Status{}, err
	}
	var info service.MatrixInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, service.Status{}, fmt.Errorf("swarm upload: HTTP %d, %v", resp.StatusCode, err)
	}

	spmvRef, solveRef, err := references(m)
	if err != nil {
		return nil, service.Status{}, err
	}

	rep := &swarmReport{Clients: o.clients, RequestsPerClnt: o.reqs}
	var (
		ok, shed, unavail, timeout, checkpointed, killed, mismatches, other atomic.Int64
		latMu                                                              sync.Mutex
		lats                                                               []float64
	)
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.clients * 2,
		MaxIdleConnsPerHost: o.clients * 2,
	}}

	t0 := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < o.clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := fmt.Sprintf("tenant-%02d", c%8)
			for r := 0; r < o.reqs; r++ {
				h := splitmix64(o.seed ^ uint64(c)<<32 ^ uint64(r))
				vseed := h % swarmSeeds
				kind := "spmv"
				if h>>8&1 == 1 {
					kind = "solve"
				}
				kill := int(h>>16%100) < o.killPct
				tight := !kill && int(h>>24%100) < o.ddlPct

				var body []byte
				if kind == "spmv" {
					body, _ = json.Marshal(service.SpMVRequest{Matrix: info.ID, Seed: vseed})
				} else {
					body, _ = json.Marshal(service.SolveRequest{Matrix: info.ID, Seed: vseed})
				}
				ctx, cancel := context.WithCancel(context.Background())
				if kill {
					// A client that vanishes mid-request: the server
					// must reclaim the slot and checkpoint the solve.
					killDelay := time.Duration(1+h>>32%5) * time.Millisecond
					time.AfterFunc(killDelay, cancel)
					killed.Add(1)
				}
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/"+kind, bytes.NewReader(body))
				req.Header.Set("X-Tenant", tenant)
				if tight {
					req.Header.Set(service.HeaderDeadlineMs, "1")
				}
				rt0 := time.Now()
				resp, err := client.Do(req)
				if err != nil {
					cancel()
					if kill || tight {
						continue // its own doing
					}
					other.Add(1)
					fmt.Fprintf(out, "swarm: client %d req %d: %v\n", c, r, err)
					continue
				}
				lat := time.Since(rt0).Seconds()
				switch resp.StatusCode {
				case http.StatusOK:
					ok.Add(1)
					latMu.Lock()
					lats = append(lats, lat)
					latMu.Unlock()
					want := spmvRef[vseed]
					var digest string
					var converged bool
					if kind == "spmv" {
						var res service.SpMVResult
						_ = json.NewDecoder(resp.Body).Decode(&res)
						digest, converged = res.Digest, true
					} else {
						var res service.SolveResult
						_ = json.NewDecoder(resp.Body).Decode(&res)
						digest, converged = res.Digest, res.Converged
						want = solveRef[vseed]
					}
					if converged && digest != want {
						mismatches.Add(1)
						fmt.Fprintf(out, "swarm: DIGEST MISMATCH client %d req %d %s seed %d: %s != %s\n",
							c, r, kind, vseed, digest, want)
					}
				case http.StatusTooManyRequests:
					shed.Add(1)
					// Honor the precise backpressure hint once, capped
					// so a long Retry-After can't stall the swarm.
					if ms, err := strconv.ParseFloat(resp.Header.Get("X-Retry-After-Ms"), 64); err == nil {
						d := time.Duration(ms * float64(time.Millisecond))
						if d > 20*time.Millisecond {
							d = 20 * time.Millisecond
						}
						time.Sleep(d)
					}
				case http.StatusServiceUnavailable:
					unavail.Add(1)
					var sres service.SolveResult
					if json.NewDecoder(resp.Body).Decode(&sres) == nil && sres.Checkpointed {
						checkpointed.Add(1)
					}
				case http.StatusGatewayTimeout:
					timeout.Add(1)
				default:
					other.Add(1)
					fmt.Fprintf(out, "swarm: client %d req %d: unexpected HTTP %d\n", c, r, resp.StatusCode)
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				cancel()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	// The SIGTERM path, minus the signal: stop admitting, finish or
	// checkpoint what's in flight, then report.
	drain := svc.Drain(o.drainGrace)
	st := svc.StatusNow()

	rep.Requests = int64(o.clients * o.reqs)
	rep.OK = ok.Load()
	rep.Shed429 = shed.Load()
	rep.Unavailable503 = unavail.Load()
	rep.Timeout504 = timeout.Load()
	rep.Checkpointed = checkpointed.Load() + st.Checkpointed
	rep.KilledClients = killed.Load()
	rep.OtherErrors = other.Load()
	rep.DigestMismatches = mismatches.Load()
	rep.ElapsedSeconds = elapsed.Seconds()
	if rep.OK > 0 {
		rep.ThroughputRPS = float64(rep.OK) / elapsed.Seconds()
	}
	sort.Float64s(lats)
	if len(lats) > 0 {
		rep.P50Latency = lats[int(0.50*float64(len(lats)-1))]
		rep.P99Latency = lats[int(0.99*float64(len(lats)-1))]
	}
	rep.HostFallbacks = st.HostFallbacks
	rep.DevicesLost = st.Devices - st.DevicesHealthy
	rep.DrainGraceful = drain.Graceful
	rep.DrainCheckpoints = drain.Checkpointed
	rep.DrainSeconds = drain.WaitedSeconds
	return rep, st, nil
}
