// Command spmvtop is a terminal dashboard for live pjds runs: it
// attaches to any -metrics-addr endpoint (cmd/scaling, cmd/chaos,
// cmd/spmvbench) and renders per-rank utilization, comm vs compute
// split, residual convergence, the health verdict, and the flight
// recorder's event feed, refreshing in place like top(1).
//
//	spmvtop -addr localhost:9090
//	spmvtop -addr localhost:9090 -once   # one frame, no screen control
//
// Rates are derived client-side from successive /metrics.json polls;
// /healthz and /spans are rendered when the run exposes them (health
// engine or flight recorder enabled) and skipped silently otherwise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"pjds/internal/mpi"
	"pjds/internal/telemetry"
	"pjds/internal/textplot"
)

type options struct {
	addr     string
	interval time.Duration
	once     bool
	width    int
	events   int
}

// healthDoc mirrors the /healthz JSON.
type healthDoc struct {
	Status  string `json:"status"`
	Signals []struct {
		Name    string             `json:"name"`
		Status  string             `json:"status"`
		Value   float64            `json:"value"`
		Cause   string             `json:"cause"`
		PerRank map[string]float64 `json:"per_rank"`
	} `json:"signals"`
}

// spansDoc mirrors the /spans JSON event feed.
type spansDoc struct {
	EventsTotal uint64 `json:"events_total"`
	Events      []struct {
		Seq   uint64  `json:"seq"`
		Time  float64 `json:"t"`
		Rank  int     `json:"rank"`
		Sev   string  `json:"sev"`
		Kind  string  `json:"kind"`
		Msg   string  `json:"msg"`
		Value float64 `json:"value"`
	} `json:"events"`
}

// tenantDoc mirrors one row of spmvd's /tenants.json.
type tenantDoc struct {
	Tenant     string  `json:"tenant"`
	Admitted   int64   `json:"admitted"`
	Rejected   int64   `json:"rejected"`
	InFlight   int64   `json:"in_flight"`
	Tokens     float64 `json:"tokens"`
	P50Seconds float64 `json:"p50_seconds"`
	P99Seconds float64 `json:"p99_seconds"`
}

// poll is one fetched view of the endpoint.
type poll struct {
	at      time.Time
	series  []telemetry.Series
	health  *healthDoc
	spans   *spansDoc
	tenants []tenantDoc
}

func main() {
	var opt options
	flag.StringVar(&opt.addr, "addr", "", "metrics endpoint to attach to (host:port, required)")
	flag.DurationVar(&opt.interval, "interval", time.Second, "refresh period")
	flag.BoolVar(&opt.once, "once", false, "render one frame without screen control and exit")
	flag.IntVar(&opt.width, "width", 72, "render width in columns")
	flag.IntVar(&opt.events, "events", 8, "flight-recorder events shown")
	flag.Parse()
	if opt.addr == "" {
		fmt.Fprintln(os.Stderr, "spmvtop: -addr is required (the host:port printed by -metrics-addr)")
		os.Exit(2)
	}
	if err := run(os.Stdout, opt); err != nil {
		fmt.Fprintf(os.Stderr, "spmvtop: %v\n", err)
		os.Exit(1)
	}
}

func run(w io.Writer, opt options) error {
	base := "http://" + strings.TrimPrefix(strings.TrimPrefix(opt.addr, "http://"), "https://")
	client := &http.Client{Timeout: 5 * time.Second}

	var prev *poll
	var residualX, residualY []float64
	// Reconnect with jittered exponential backoff: a run restarting
	// behind the same -metrics-addr (or one that hasn't bound its port
	// yet) should be picked up without hammering the endpoint — and a
	// fleet of spmvtop instances watching the same endpoint must not
	// retry in lockstep, so each process decorrelates its schedule from
	// a seed derived from (addr, pid).
	minBackoff := opt.interval
	if minBackoff <= 0 {
		minBackoff = time.Second
	}
	const maxBackoff = 30 * time.Second
	seed := reconnectSeed(base, os.Getpid())
	attempt := 0
	for {
		cur, err := fetch(client, base)
		if err != nil {
			if opt.once {
				return err
			}
			backoff := reconnectBackoff(attempt, minBackoff, maxBackoff, reconnectJitterFrac, seed)
			fmt.Fprintf(w, "spmvtop: %v (retrying in %s)\n", err, backoff.Round(time.Millisecond))
			time.Sleep(backoff)
			attempt++
			continue
		}
		attempt = 0
		if res, it, ok := residualPoint(cur.series); ok {
			if len(residualX) == 0 || it > residualX[len(residualX)-1] {
				residualX = append(residualX, it)
				residualY = append(residualY, res)
			}
		}
		var frame strings.Builder
		render(&frame, opt, base, prev, cur, residualX, residualY)
		if !opt.once {
			// Home + clear-to-end keeps refresh flicker-free on ANSI
			// terminals without any curses dependency.
			fmt.Fprint(w, "\x1b[H\x1b[2J")
		}
		if _, err := io.WriteString(w, frame.String()); err != nil {
			return err
		}
		if opt.once {
			return nil
		}
		prev = cur
		time.Sleep(opt.interval)
	}
}

// reconnectJitterFrac spreads each reconnect wait ±20% so instances
// that lost the same endpoint at the same instant fan back out.
const reconnectJitterFrac = 0.2

// reconnectSeed derives the per-process jitter seed: same addr + same
// pid replays the same schedule, two processes never share one.
func reconnectSeed(addr string, pid int) uint64 {
	h := fnv.New64a()
	io.WriteString(h, addr)
	return h.Sum64() ^ uint64(pid)
}

// reconnectBackoff returns the wait before reconnect attempt i
// (0-based): min·2^i capped at max, then jittered ±frac through the
// same deterministic stream the mpi retry policy uses. The result
// always stays inside [capped·(1−frac), capped·(1+frac)).
func reconnectBackoff(attempt int, min, max time.Duration, frac float64, seed uint64) time.Duration {
	if min <= 0 {
		min = time.Second
	}
	d := float64(min)
	for i := 0; i < attempt && d < float64(max); i++ {
		d *= 2
	}
	if max > 0 && d > float64(max) {
		d = float64(max)
	}
	return time.Duration(mpi.Jitter(d, frac, seed, 0, uint64(attempt)))
}

// fetch pulls one consistent-ish view of the endpoint. /healthz,
// /spans, and /tenants.json are optional: 404 (subsystem not enabled
// or not an spmvd) leaves them nil.
func fetch(client *http.Client, base string) (*poll, error) {
	resp, err := client.Get(base + "/metrics.json")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /metrics.json: %s", resp.Status)
	}
	series, err := telemetry.ReadSnapshot(resp.Body)
	if err != nil {
		return nil, err
	}
	p := &poll{at: time.Now(), series: series}

	if resp, err := client.Get(base + "/healthz"); err == nil {
		// /healthz serves 503 on Fail with the same JSON body.
		if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable {
			var h healthDoc
			if json.NewDecoder(resp.Body).Decode(&h) == nil {
				p.health = &h
			}
		}
		resp.Body.Close()
	}
	if resp, err := client.Get(base + "/spans"); err == nil {
		if resp.StatusCode == http.StatusOK {
			var s spansDoc
			if json.NewDecoder(resp.Body).Decode(&s) == nil {
				p.spans = &s
			}
		}
		resp.Body.Close()
	}
	if resp, err := client.Get(base + "/tenants.json"); err == nil {
		if resp.StatusCode == http.StatusOK {
			var ts []tenantDoc
			if json.NewDecoder(resp.Body).Decode(&ts) == nil {
				p.tenants = ts
			}
		}
		resp.Body.Close()
	}
	return p, nil
}

// residualPoint extracts (residual, iterations) when the gauges exist.
func residualPoint(series []telemetry.Series) (res, iters float64, ok bool) {
	var haveRes, haveIt bool
	for _, s := range series {
		switch s.Name {
		case "solver_residual":
			if !haveRes || s.Value > res {
				res = s.Value
			}
			haveRes = true
		case "solver_iterations":
			if !haveIt || s.Value > iters {
				iters = s.Value
			}
			haveIt = true
		}
	}
	return res, iters, haveRes && haveIt
}

// seriesKey indexes a snapshot for rate math.
func seriesKey(s telemetry.Series) string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteString("|" + k + "=" + s.Labels[k])
	}
	return b.String()
}

// rankRow accumulates one rank's live numbers.
type rankRow struct {
	kernelSec, waitSec, sends, recvs, bytes float64
}

func render(w *strings.Builder, opt options, base string, prev, cur *poll, resX, resY []float64) {
	fmt.Fprintf(w, "spmvtop — %s — %s\n", base, cur.at.Format("15:04:05"))

	// Health banner.
	if cur.health != nil {
		fmt.Fprintf(w, "health: %s", strings.ToUpper(cur.health.Status))
		var causes []string
		for _, s := range cur.health.Signals {
			if s.Status != "pass" && s.Cause != "" {
				causes = append(causes, s.Name+": "+s.Cause)
			}
		}
		if len(causes) > 0 {
			fmt.Fprintf(w, "  (%s)", strings.Join(causes, "; "))
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w)

	prevVals := map[string]float64{}
	var dt float64
	if prev != nil {
		dt = cur.at.Sub(prev.at).Seconds()
		for _, s := range prev.series {
			if s.Type == "counter" {
				prevVals[seriesKey(s)] = s.Value
			}
		}
	}
	rate := func(s telemetry.Series) float64 {
		if dt <= 0 {
			return 0
		}
		if old, ok := prevVals[seriesKey(s)]; ok && s.Value >= old {
			return (s.Value - old) / dt
		}
		return 0
	}

	// Per-rank utilization: totals plus live rates for byte traffic.
	ranks := map[string]*rankRow{}
	rankRates := map[string]float64{}
	var totKernel, totWait, totSendSer float64
	for _, s := range cur.series {
		if s.Type != "counter" {
			continue
		}
		switch s.Name {
		case "gpu_kernel_seconds_total":
			totKernel += s.Value
		case "mpi_recv_wait_seconds_total":
			totWait += s.Value
		case "mpi_send_serialization_seconds_total":
			totSendSer += s.Value
		}
		rank, ok := s.Labels["rank"]
		if !ok {
			continue
		}
		r := ranks[rank]
		if r == nil {
			r = &rankRow{}
			ranks[rank] = r
		}
		switch s.Name {
		case "gpu_kernel_seconds_total":
			r.kernelSec += s.Value
		case "mpi_recv_wait_seconds_total":
			r.waitSec += s.Value
		case "mpi_sends_total":
			r.sends += s.Value
		case "mpi_recvs_total":
			r.recvs += s.Value
		case "gpu_kernel_bytes_total":
			r.bytes += s.Value
			rankRates[rank] += rate(s)
		}
	}
	if len(ranks) > 0 {
		ids := make([]string, 0, len(ranks))
		for id := range ranks {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool {
			return fmt.Sprintf("%09s", ids[i]) < fmt.Sprintf("%09s", ids[j])
		})
		rows := [][]string{{"rank", "kernel s", "wait s", "busy", "sends", "recvs", "GB moved", "GB/s now"}}
		for _, id := range ids {
			r := ranks[id]
			busy := "-"
			if tot := r.kernelSec + r.waitSec; tot > 0 {
				busy = bar(r.kernelSec/tot, 10)
			}
			gbs := "-"
			if v := rankRates[id]; v > 0 {
				gbs = fmt.Sprintf("%.2f", v/1e9)
			}
			rows = append(rows, []string{
				id,
				fmt.Sprintf("%.4g", r.kernelSec),
				fmt.Sprintf("%.4g", r.waitSec),
				busy,
				fmt.Sprintf("%.0f", r.sends),
				fmt.Sprintf("%.0f", r.recvs),
				fmt.Sprintf("%.3f", r.bytes/1e9),
				gbs,
			})
		}
		fmt.Fprintln(w, "per-rank utilization (busy = kernel vs recv-wait share)")
		_ = textplot.Table(w, rows)
		fmt.Fprintln(w)
	}

	// Per-tenant admission view when the endpoint is an spmvd.
	if len(cur.tenants) > 0 {
		rows := [][]string{{"tenant", "admitted", "rejected", "in flight", "tokens", "p50 ms", "p99 ms"}}
		for _, tn := range cur.tenants {
			rows = append(rows, []string{
				tn.Tenant,
				fmt.Sprintf("%d", tn.Admitted),
				fmt.Sprintf("%d", tn.Rejected),
				fmt.Sprintf("%d", tn.InFlight),
				fmt.Sprintf("%.0f", tn.Tokens),
				fmt.Sprintf("%.2f", tn.P50Seconds*1e3),
				fmt.Sprintf("%.2f", tn.P99Seconds*1e3),
			})
		}
		fmt.Fprintln(w, "tenants (spmvd admission)")
		_ = textplot.Table(w, rows)
		fmt.Fprintln(w)
	}

	// Comm vs compute split across the whole run so far.
	if tot := totKernel + totWait + totSendSer; tot > 0 {
		fmt.Fprintln(w, "comm vs compute (cumulative)")
		fmt.Fprintf(w, "  compute %s %.4gs\n", bar(totKernel/tot, 30), totKernel)
		fmt.Fprintf(w, "  wait    %s %.4gs\n", bar(totWait/tot, 30), totWait)
		fmt.Fprintf(w, "  sendser %s %.4gs\n", bar(totSendSer/tot, 30), totSendSer)
		fmt.Fprintln(w)
	}

	// Residual convergence curve accumulated over polls.
	if len(resX) >= 2 {
		_ = textplot.Plot(w, "solver residual vs iteration", opt.width-12, 8, []textplot.Series{
			{Name: "residual", X: resX, Y: resY},
		})
		fmt.Fprintln(w)
	} else if len(resX) == 1 {
		fmt.Fprintf(w, "solver: iteration %.0f, residual %.3g\n\n", resX[0], resY[0])
	}

	// Flight-recorder event feed, newest first.
	if cur.spans != nil {
		fmt.Fprintf(w, "events (flight recorder, %d total)\n", cur.spans.EventsTotal)
		evs := cur.spans.Events
		if len(evs) > opt.events {
			evs = evs[len(evs)-opt.events:]
		}
		if len(evs) == 0 {
			fmt.Fprintln(w, "  (none)")
		}
		for i := len(evs) - 1; i >= 0; i-- {
			e := evs[i]
			fmt.Fprintf(w, "  t=%-9.4g r%-3d %-5s %-24s %s\n", e.Time, e.Rank, e.Sev, e.Kind, e.Msg)
		}
	}
}

// bar renders a 0..1 fraction as a fixed-width block gauge.
func bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return "[" + strings.Repeat("#", n) + strings.Repeat(".", width-n) + "]"
}
