package main

import (
	"testing"
	"time"
)

// TestReconnectBackoffBounds: every attempt's wait stays inside the
// ±frac band around the capped exponential schedule, and later
// attempts never jitter below the minimum or above max·(1+frac).
func TestReconnectBackoffBounds(t *testing.T) {
	const (
		min  = time.Second
		max  = 30 * time.Second
		frac = reconnectJitterFrac
	)
	seed := reconnectSeed("http://127.0.0.1:9090", 4242)
	for attempt := 0; attempt < 20; attempt++ {
		base := float64(min)
		for i := 0; i < attempt && base < float64(max); i++ {
			base *= 2
		}
		if base > float64(max) {
			base = float64(max)
		}
		got := float64(reconnectBackoff(attempt, min, max, frac, seed))
		lo, hi := base*(1-frac), base*(1+frac)
		if got < lo || got >= hi {
			t.Fatalf("attempt %d: backoff %s outside [%s, %s)",
				attempt, time.Duration(got), time.Duration(lo), time.Duration(hi))
		}
	}
}

// TestReconnectBackoffDeterministicPerSeed: the same seed replays the
// same schedule; different pids watching the same endpoint decorrelate.
func TestReconnectBackoffDeterministicPerSeed(t *testing.T) {
	s1 := reconnectSeed("http://127.0.0.1:9090", 100)
	s2 := reconnectSeed("http://127.0.0.1:9090", 101)
	if s1 == s2 {
		t.Fatal("distinct pids produced the same seed")
	}
	for attempt := 0; attempt < 10; attempt++ {
		a := reconnectBackoff(attempt, time.Second, 30*time.Second, reconnectJitterFrac, s1)
		b := reconnectBackoff(attempt, time.Second, 30*time.Second, reconnectJitterFrac, s1)
		if a != b {
			t.Fatalf("attempt %d: same seed gave %s then %s", attempt, a, b)
		}
	}
	distinct := 0
	for attempt := 0; attempt < 10; attempt++ {
		a := reconnectBackoff(attempt, time.Second, 30*time.Second, reconnectJitterFrac, s1)
		b := reconnectBackoff(attempt, time.Second, 30*time.Second, reconnectJitterFrac, s2)
		if a != b {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("two seeds share an identical schedule; reconnect storm not broken")
	}
}

// TestReconnectBackoffZeroFracExact: frac 0 reproduces the plain
// capped exponential schedule bit for bit.
func TestReconnectBackoffZeroFracExact(t *testing.T) {
	want := []time.Duration{
		time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
		16 * time.Second, 30 * time.Second, 30 * time.Second,
	}
	for attempt, w := range want {
		if got := reconnectBackoff(attempt, time.Second, 30*time.Second, 0, 7); got != w {
			t.Errorf("attempt %d: backoff = %s, want %s", attempt, got, w)
		}
	}
	// A non-positive minimum falls back to one second.
	if got := reconnectBackoff(0, 0, 30*time.Second, 0, 7); got != time.Second {
		t.Errorf("min<=0: backoff = %s, want 1s", got)
	}
}
