// Command chaos is the fault-injection harness for the simulated
// GPGPU cluster: it sweeps seeded fault scenarios (message drops, a
// rank crash mid-solve, an uncorrectable ECC event) over the
// fault-tolerant distributed CG driver and the §III-A communication
// modes, and verifies that every recovered solve is bit-identical to
// the fault-free run.
//
// Every fault decision is keyed on the seed, so the same seed
// reproduces the identical fault schedule, retry counts and telemetry
// event counts on every invocation; the harness re-runs the whole
// suite a second time and fails if the two reports differ.
//
// Usage:
//
//	chaos [-seed 42] [-ranks 4] [-nx 24] [-tol 1e-10] [-maxiter 2000]
//	      [-checkpoint 10] [-scenarios baseline,drop1pct,crash,ecc,chaos]
//	      [-skip-modes] [-no-repro] [-json] [-o FILE]
//	chaos -smoke     quick 1-drop + 1-crash scenario for scripts/check.sh
//
// Exit status is non-zero when any scenario fails to converge, loses
// bit-identity with the fault-free run, or the repro pass diverges.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"pjds/internal/critpath"
	"pjds/internal/distmv"
	"pjds/internal/distsolver"
	"pjds/internal/faults"
	"pjds/internal/flight"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/runledger"
	"pjds/internal/simnet"
	"pjds/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

// config carries the parsed harness parameters.
type config struct {
	seed      uint64
	ranks     int
	nx        int
	tol       float64
	maxIter   int
	ckptEvery int
	scenarios []string
	skipModes bool
	repro     bool
}

// scenarioReport is one fault scenario's outcome.
type scenarioReport struct {
	Name   string   `json:"name"`
	Script []string `json:"script"`
	// Converged and BitIdentical are the correctness verdicts:
	// BitIdentical compares the solution bits against the fault-free
	// baseline of the same suite.
	Converged    bool `json:"converged"`
	BitIdentical bool `json:"bit_identical"`
	// Solver outcome.
	Iterations int     `json:"iterations"`
	Residual   float64 `json:"residual"`
	// Recovery bookkeeping.
	Restarts      int      `json:"restarts"`
	Checkpoints   int      `json:"checkpoints"`
	DeadRanks     []int    `json:"dead_ranks,omitempty"`
	DegradedRanks []int    `json:"degraded_ranks,omitempty"`
	Failures      []string `json:"failures,omitempty"`
	// Telemetry event counts (summed over ranks) — part of the
	// reproducibility contract.
	Retries          float64 `json:"retries"`
	RetryWaitSeconds float64 `json:"retry_wait_seconds"`
	FaultsInjected   float64 `json:"faults_injected"`
	FailuresDetected float64 `json:"failures_detected"`
	Crashes          float64 `json:"crashes"`
	EccErrors        float64 `json:"ecc_errors"`
	// Timing: SolveSeconds is the final attempt's makespan;
	// RecoveryLatencySeconds is the extra virtual time over the
	// baseline scenario; RecoverySeconds the modelled rollback
	// overhead; RecoveryPathSeconds the recovery category on the
	// cross-rank critical path, whose dominant category is Verdict.
	SolveSeconds           float64 `json:"solve_seconds"`
	RecoveryLatencySeconds float64 `json:"recovery_latency_seconds"`
	RecoverySeconds        float64 `json:"recovery_seconds"`
	RecoveryPathSeconds    float64 `json:"recovery_path_seconds"`
	Verdict                string  `json:"verdict"`
}

// modeReport is one §III-A communication mode run under a lossy wire.
type modeReport struct {
	Mode         string  `json:"mode"`
	Retries      float64 `json:"retries"`
	BitIdentical bool    `json:"bit_identical"`
	// Seconds are the healthy and lossy makespans of the benchmark
	// loop: the difference is pure retry backoff.
	HealthySeconds float64 `json:"healthy_seconds"`
	LossySeconds   float64 `json:"lossy_seconds"`
}

// report is the full harness artifact (schema pjds-chaos/v1).
type report struct {
	Schema    string           `json:"schema"`
	Seed      uint64           `json:"seed"`
	Ranks     int              `json:"ranks"`
	NX        int              `json:"nx"`
	Scenarios []scenarioReport `json:"scenarios"`
	Modes     []modeReport     `json:"modes,omitempty"`
	// ReproIdentical reports whether a second run of the whole suite
	// with the same seed produced a byte-identical report.
	ReproIdentical *bool `json:"repro_identical,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("chaos", flag.ContinueOnError)
	var (
		seed      = fs.Uint64("seed", 42, "fault-plan seed; one seed = one reproducible schedule")
		ranks     = fs.Int("ranks", 4, "rank count")
		nx        = fs.Int("nx", 24, "2D stencil grid edge (matrix is nx²×nx²)")
		tol       = fs.Float64("tol", 1e-10, "CG convergence tolerance")
		maxIter   = fs.Int("maxiter", 2000, "CG iteration cap")
		ckpt      = fs.Int("checkpoint", 10, "checkpoint every N iterations")
		scenArg   = fs.String("scenarios", "", "comma-separated scenario names (default: all)")
		skipModes = fs.Bool("skip-modes", false, "skip the communication-mode sweep")
		noRepro   = fs.Bool("no-repro", false, "skip the same-seed reproducibility pass")
		smoke     = fs.Bool("smoke", false, "quick 1-drop + 1-crash smoke scenario (for CI)")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON")
		outFile   = fs.String("o", "", "write the report to this file instead of stdout")
		flightOn  = fs.Bool("flight", false, "enable the ring-buffer flight recorder during the suite")
		flightOut = fs.String("flight-dump", "", "write a post-incident trace here when the first severe event (rank failure, ECC hit) fires; implies -flight")
		ledgerArg = fs.String("ledger", "", "append this suite's record to a JSONL run ledger ('default' = "+runledger.DefaultPath+")")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	w := out
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *flightOn || *flightOut != "" {
		// The dump is one-shot (MaxDumps 1), so the repro pass cannot
		// rewrite the incident trace of the first suite run — and the
		// report artifact itself stays byte-identical either way.
		rec := flight.Enable(0, 0)
		rec.RegisterHTTP()
		if *flightOut != "" {
			rec.SetDump(flight.DumpConfig{Path: *flightOut, MinSeverity: flight.Error})
		}
		defer func() {
			if p := rec.LastDump(); p != "" {
				fmt.Fprintf(out, "flight recorder dumped %s (perfreport -trace-in %s)\n", p, p)
			}
			flight.Disable()
		}()
	}

	cfg := config{
		seed: *seed, ranks: *ranks, nx: *nx, tol: *tol,
		maxIter: *maxIter, ckptEvery: *ckpt,
		skipModes: *skipModes, repro: !*noRepro,
	}
	if *scenArg != "" {
		cfg.scenarios = strings.Split(*scenArg, ",")
	}
	if *smoke {
		cfg.nx = 10
		cfg.ckptEvery = 3
		cfg.scenarios = []string{"baseline", "smoke"}
		cfg.skipModes = true
	}

	rep, err := suite(cfg)
	if err != nil {
		return err
	}
	if cfg.repro {
		again, err := suite(cfg)
		if err != nil {
			return fmt.Errorf("repro pass: %w", err)
		}
		a, _ := json.Marshal(rep)
		b, _ := json.Marshal(again)
		same := string(a) == string(b)
		rep.ReproIdentical = &same
	}

	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		printReport(w, rep)
	}
	if *ledgerArg != "" {
		path := *ledgerArg
		if path == "default" {
			path = runledger.DefaultPath
		}
		if err := runledger.Append(path, ledgerEntry(cfg, rep)); err != nil {
			return err
		}
		fmt.Fprintf(out, "ledger: appended suite to %s\n", path)
	}
	return verdict(rep)
}

// ledgerEntry condenses a suite report into one run-ledger record:
// summed fault/recovery counts plus the worst solve and recovery
// latencies, the scalars the cross-run trend report watches.
func ledgerEntry(cfg config, rep *report) runledger.Entry {
	metrics := map[string]float64{
		"chaos_scenarios": float64(len(rep.Scenarios)),
	}
	for _, s := range rep.Scenarios {
		metrics["chaos_retries_total"] += s.Retries
		metrics["chaos_faults_injected_total"] += s.FaultsInjected
		metrics["chaos_crashes_total"] += s.Crashes
		metrics["chaos_ecc_errors_total"] += s.EccErrors
		metrics["chaos_restarts_total"] += float64(s.Restarts)
		if s.SolveSeconds > metrics["chaos_worst_solve_seconds"] {
			metrics["chaos_worst_solve_seconds"] = s.SolveSeconds
		}
		if s.RecoveryLatencySeconds > metrics["chaos_worst_recovery_latency_seconds"] {
			metrics["chaos_worst_recovery_latency_seconds"] = s.RecoveryLatencySeconds
		}
	}
	return runledger.Entry{
		Tool:    "chaos",
		Ranks:   cfg.ranks,
		Metrics: metrics,
	}
}

// verdict turns correctness failures into a non-zero exit.
func verdict(rep *report) error {
	var bad []string
	for _, s := range rep.Scenarios {
		if !s.Converged {
			bad = append(bad, fmt.Sprintf("scenario %s did not converge", s.Name))
		}
		if !s.BitIdentical {
			bad = append(bad, fmt.Sprintf("scenario %s lost bit-identity with the fault-free run", s.Name))
		}
	}
	for _, m := range rep.Modes {
		if !m.BitIdentical {
			bad = append(bad, fmt.Sprintf("mode %s lost bit-identity under drops", m.Mode))
		}
	}
	if rep.ReproIdentical != nil && !*rep.ReproIdentical {
		bad = append(bad, "same-seed repro run produced a different report")
	}
	if len(bad) > 0 {
		return fmt.Errorf("%s", strings.Join(bad, "; "))
	}
	return nil
}

// scenario is one named fault script of the sweep.
type scenario struct {
	name   string
	script func(baseIters int) string
}

// scenarios returns the sweep in presentation order. Crash and ECC
// events are placed relative to the baseline's iteration count: the
// crash mid-solve, the ECC event about a third in.
func (cfg config) scenarioList() []scenario {
	all := []scenario{
		{"baseline", func(int) string { return "" }},
		{"drop1pct", func(int) string { return "drop all prob=0.01" }},
		{"crash", func(n int) string {
			return fmt.Sprintf("crash rank=%d iter=%d", cfg.ranks/2, max(1, n/2))
		}},
		{"ecc", func(n int) string {
			return fmt.Sprintf("ecc rank=1 launch=%d", max(1, 2*(n+1)/3))
		}},
		{"chaos", func(n int) string {
			return fmt.Sprintf("drop all prob=0.01\ncrash rank=%d iter=%d\necc rank=1 launch=%d",
				cfg.ranks/2, max(1, n/2), max(1, 2*(n+1)/3))
		}},
		{"smoke", func(n int) string {
			return fmt.Sprintf("drop link=0->1 nth=3\ncrash rank=1 iter=%d", max(1, n/2))
		}},
	}
	if cfg.scenarios == nil {
		return all[:5] // smoke only runs when asked for
	}
	var out []scenario
	for _, want := range cfg.scenarios {
		found := false
		for _, s := range all {
			if s.name == want {
				out = append(out, s)
				found = true
			}
		}
		if !found {
			out = append(out, scenario{want, func(int) string { return "" }})
		}
	}
	return out
}

// suite runs every scenario (plus the mode sweep) once and assembles
// the report.
func suite(cfg config) (*report, error) {
	m := matgen.Stencil2D(cfg.nx, cfg.nx)
	n := m.NRows
	pt, err := distmv.PartitionByRows(m, cfg.ranks)
	if err != nil {
		return nil, err
	}
	problems, err := distmv.Distribute(m, pt)
	if err != nil {
		return nil, err
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(0.05 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		return nil, err
	}

	rep := &report{Schema: "pjds-chaos/v1", Seed: cfg.seed, Ranks: cfg.ranks, NX: cfg.nx}
	var baseline *scenarioReport
	var baseX []float64
	for _, sc := range cfg.scenarioList() {
		baseIters := cfg.maxIter
		if baseline != nil {
			baseIters = baseline.Iterations
		}
		sr, x, err := runScenario(cfg, problems, b, sc.name, sc.script(baseIters), baseline, baseX)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.name, err)
		}
		rep.Scenarios = append(rep.Scenarios, *sr)
		if baseline == nil {
			baseline = sr
			baseX = x
		}
	}
	if !cfg.skipModes {
		modes, err := modeSweep(cfg, m)
		if err != nil {
			return nil, err
		}
		rep.Modes = modes
	}
	return rep, nil
}

// runScenario executes one fault script through the recoverable solver
// and derives its report entry.
func runScenario(cfg config, problems []*distmv.RankProblem, b []float64, name, script string, baseline *scenarioReport, baseX []float64) (*scenarioReport, []float64, error) {
	plan, err := faults.Parse(cfg.seed, script)
	if err != nil {
		return nil, nil, err
	}
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog()
	rcfg := distsolver.RecoverConfig{
		Tol: cfg.tol, MaxIter: cfg.maxIter, CheckpointEvery: cfg.ckptEvery,
		Schedule: plan, Wire: plan,
		DeviceFaults: func(rank int) gpu.ECCInjector { return plan.DeviceFor(rank) },
		Inst: &distsolver.Instrument{
			Metrics: reg, Spans: spans, Device: gpu.TeslaC2070(),
		},
	}
	res, x, err := distsolver.RecoverableCG(simnet.QDRInfiniBand(), problems, b, nil, rcfg)
	if err != nil {
		return nil, nil, err
	}

	sr := &scenarioReport{
		Name:       name,
		Script:     plan.Rules(),
		Converged:  true,
		Iterations: res.CG.Iterations,
		Residual:   res.CG.Residual,
		Restarts:   res.Restarts, Checkpoints: res.Checkpoints,
		DeadRanks: res.DeadRanks, DegradedRanks: res.DegradedRanks,
		Failures:         res.Failures,
		Retries:          sumCounter(reg, "mpi_retries_total"),
		RetryWaitSeconds: sumCounter(reg, "mpi_retry_wait_seconds_total"),
		FaultsInjected:   sumCounter(reg, "simnet_faults_injected_total"),
		FailuresDetected: sumCounter(reg, "mpi_failures_detected_total"),
		Crashes:          sumCounter(reg, "mpi_rank_crashes_total"),
		EccErrors:        sumCounter(reg, "gpu_ecc_errors_total"),
		RecoverySeconds:  res.RecoverySeconds,
	}
	for _, c := range res.Clocks {
		if c > sr.SolveSeconds {
			sr.SolveSeconds = c
		}
	}
	if baseline != nil {
		sr.RecoveryLatencySeconds = sr.SolveSeconds - baseline.SolveSeconds
		sr.BitIdentical = bitEqual(x, baseX)
	} else {
		sr.BitIdentical = true // the baseline defines the reference bits
	}
	path := critpath.Path(spans.Spans())
	sr.Verdict = path.Verdict
	sr.RecoveryPathSeconds = path.Categories[critpath.CatRecovery]
	return sr, x, nil
}

// modeSweep runs the distributed fixed-x benchmark in each §III-A
// communication mode, healthy and under a 1% lossy wire, and checks
// that drops cost time but never bits.
func modeSweep(cfg config, m *matrix.CSR[float64]) ([]modeReport, error) {
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = math.Cos(0.02 * float64(i))
	}
	var out []modeReport
	for _, mode := range distmv.Modes() {
		runOnce := func(inj simnet.Injector, reg *telemetry.Registry) (*distmv.Result, error) {
			return distmv.RunSpMVM(m, x, cfg.ranks, mode, distmv.Config{
				Iterations:   2,
				Faults:       inj,
				Telemetry:    reg,
				SkipFitCheck: true,
			})
		}
		healthy, err := runOnce(nil, telemetry.NewRegistry())
		if err != nil {
			return nil, fmt.Errorf("mode %s healthy: %w", mode.Slug(), err)
		}
		reg := telemetry.NewRegistry()
		plan, err := faults.Parse(cfg.seed, "drop all prob=0.01")
		if err != nil {
			return nil, err
		}
		lossy, err := runOnce(plan, reg)
		if err != nil {
			return nil, fmt.Errorf("mode %s lossy: %w", mode.Slug(), err)
		}
		out = append(out, modeReport{
			Mode:           mode.Slug(),
			Retries:        sumCounter(reg, "mpi_retries_total"),
			BitIdentical:   bitEqual(healthy.Y, lossy.Y),
			HealthySeconds: healthy.Seconds,
			LossySeconds:   lossy.Seconds,
		})
	}
	return out, nil
}

// sumCounter totals a counter family over all label sets.
func sumCounter(reg *telemetry.Registry, name string) float64 {
	total := 0.0
	for _, s := range reg.Snapshot() {
		if s.Name == name && s.Type == "counter" {
			total += s.Value
		}
	}
	return total
}

func bitEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func printReport(w io.Writer, rep *report) {
	fmt.Fprintf(w, "chaos suite: seed %d, %d ranks, %dx%d stencil\n\n", rep.Seed, rep.Ranks, rep.NX, rep.NX)
	fmt.Fprintf(w, "%-10s %5s %9s %8s %5s %5s %8s %10s %10s  %s\n",
		"scenario", "iters", "residual", "retries", "crash", "ecc", "restarts", "solve", "latency", "verdict")
	for _, s := range rep.Scenarios {
		ok := "bit-identical"
		if !s.BitIdentical {
			ok = "DIVERGED"
		}
		if s.Name == "baseline" {
			ok = "reference"
		}
		fmt.Fprintf(w, "%-10s %5d %9.2e %8.0f %5.0f %5.0f %8d %9.3fms %9.3fms  %s (%s)\n",
			s.Name, s.Iterations, s.Residual, s.Retries, s.Crashes, s.EccErrors,
			s.Restarts, 1e3*s.SolveSeconds, 1e3*s.RecoveryLatencySeconds, s.Verdict, ok)
		for _, f := range s.Failures {
			fmt.Fprintf(w, "           attempt failed: %s\n", f)
		}
	}
	if len(rep.Modes) > 0 {
		fmt.Fprintf(w, "\nmode sweep under 1%% drops:\n")
		for _, m := range rep.Modes {
			ok := "bit-identical"
			if !m.BitIdentical {
				ok = "DIVERGED"
			}
			fmt.Fprintf(w, "  %-14s retries %4.0f  %9.3fms -> %9.3fms  %s\n",
				m.Mode, m.Retries, 1e3*m.HealthySeconds, 1e3*m.LossySeconds, ok)
		}
	}
	if rep.ReproIdentical != nil {
		if *rep.ReproIdentical {
			fmt.Fprintf(w, "\nrepro: second run with seed %d produced an identical report\n", rep.Seed)
		} else {
			fmt.Fprintf(w, "\nrepro: FAILED — second run with seed %d diverged\n", rep.Seed)
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
