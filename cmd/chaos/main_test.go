package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestSmokeSuite: the CI smoke scenario (one dropped message, one
// mid-solve crash) recovers, stays bit-identical, and reproduces under
// its own repro pass.
func TestSmokeSuite(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-smoke"}, &buf); err != nil {
		t.Fatalf("smoke run failed: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"bit-identical", "identical report", "rank 1 crashed"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSeedReproducibility: two separate invocations with the same seed
// emit byte-identical JSON reports — same fault schedule, same retry
// counts, same telemetry event counts.
func TestSeedReproducibility(t *testing.T) {
	args := []string{"-seed", "7", "-nx", "12", "-scenarios", "baseline,drop1pct,crash",
		"-skip-modes", "-no-repro", "-json"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := run(args, &b); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different reports")
	}
	var rep report
	if err := json.Unmarshal(a.Bytes(), &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != "pjds-chaos/v1" {
		t.Errorf("schema = %q", rep.Schema)
	}
	if len(rep.Scenarios) != 3 {
		t.Fatalf("scenarios = %d", len(rep.Scenarios))
	}
	crash := rep.Scenarios[2]
	if crash.Name != "crash" || crash.Restarts != 1 || crash.Crashes != 1 {
		t.Errorf("crash scenario = %+v", crash)
	}
	if !crash.BitIdentical || !crash.Converged {
		t.Errorf("crash scenario correctness: bit=%v conv=%v", crash.BitIdentical, crash.Converged)
	}
	if crash.RecoveryLatencySeconds <= 0 {
		t.Errorf("crash recovery latency = %g", crash.RecoveryLatencySeconds)
	}
}

// TestDifferentSeedsDiffer: the drop schedule is seed-keyed, so two
// seeds should not charge the same retry pattern.
func TestDifferentSeedsDiffer(t *testing.T) {
	get := func(seed string) report {
		var buf bytes.Buffer
		if err := run([]string{"-seed", seed, "-nx", "12", "-scenarios", "baseline,drop1pct",
			"-skip-modes", "-no-repro", "-json"}, &buf); err != nil {
			t.Fatalf("seed %s: %v", seed, err)
		}
		var rep report
		if err := json.Unmarshal(buf.Bytes(), &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := get("1"), get("2")
	if a.Scenarios[1].FaultsInjected == b.Scenarios[1].FaultsInjected &&
		a.Scenarios[1].RetryWaitSeconds == b.Scenarios[1].RetryWaitSeconds {
		t.Error("seeds 1 and 2 injected an identical drop schedule")
	}
	// And the faulty runs still match their own baselines bit-for-bit.
	if !a.Scenarios[1].BitIdentical || !b.Scenarios[1].BitIdentical {
		t.Error("lossy runs lost bit-identity")
	}
}
