// Command perfreport produces causal performance reports for the
// simulated GPGPU cluster: the cross-rank critical path and its
// rank × lane × phase attribution, overlap efficiency per §III-A
// communication mode, and the measured-vs-model kernel table (Eq. 1),
// plus a perf-regression gate comparing two report artifacts.
//
// Usage:
//
//	perfreport [-matrix DLR1] [-scale 0.1] [-ranks 8] [-iters 2]
//	           [-format ellpack-r] [-modes vector,naive-overlap,task]
//	           [-json] [-o FILE]
//	    run the distributed benchmark per mode and report on each.
//
//	perfreport -trace-in trace.json [-metrics-in metrics.json]
//	    analyze saved artifacts (scaling -trace-out / -metrics-out)
//	    instead of running a scenario.
//
//	perfreport diff [-tol 0.02] [-tol-metric gflops=0.05,...] OLD NEW
//	    compare two JSON report/benchmark artifacts leaf by leaf under
//	    tolerance bands; exit non-zero when any metric regressed
//	    (scripts/regress.sh wraps this).
//
//	perfreport -convert [-matrix sAMG] [-scale 0.05] [-workers 4] [-ranks 4]
//	    measure the ingest-and-convert pipeline (MatrixMarket parse,
//	    CSR assembly, pJDS/ELLPACK-R construction, partitioning) at 1
//	    worker and at -workers, and report the conversion cost in
//	    seconds and in modeled spMVM-equivalents (§II-C amortization).
//
//	perfreport -host [-matrix sAMG] [-scale 0.1] [-iters 5]
//	    measure every CPU host kernel (naive, blocked, sell) on this
//	    machine and report GFLOP/s and effective GB/s next to the
//	    Eq. 1 model prediction and the Westmere CRS baseline.
//
//	perfreport -profile cpu.pprof [-check-attributed 0.9] [-trace-in trace.json]
//	    slice a labeled CPU/heap profile by the phase pprof labels the
//	    hot paths carry and print the per-phase sample attribution
//	    table; with -trace-in, cross-check the profile's phase set
//	    against the span lanes of the trace. -check-attributed fails
//	    when less than the given fraction of samples carries a known
//	    phase label (the check.sh smoke gate).
//
//	perfreport -tune [-tuning-db .spmv/tuning.jsonl] [-matrix sAMG]
//	    report the persisted (C, σ) tuning sweeps: every grid cell's
//	    Eq. 1 traffic prediction next to its measured replay time,
//	    model vs measured ranks, and the implied effective bandwidth
//	    (where the two rank columns disagree, the model is missing a
//	    machine effect).
//
//	perfreport -trend [-ledger .spmv/ledger.jsonl] [-gate] A.json B.json ...
//	    cross-run trend analysis: line up any number of benchmark
//	    artifacts (chronological order) plus the run ledger's entries
//	    and classify every metric's latest value against its
//	    historical best — direction-aware and tolerance-banded like
//	    the diff gate, but flagging only *sustained* regressions.
//	    -gate exits non-zero on them (scripts/regress.sh trend).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"pjds/internal/convert"
	"pjds/internal/core"
	"pjds/internal/cpu"
	"pjds/internal/critpath"
	"pjds/internal/distmv"
	"pjds/internal/experiments"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/hostkernel"
	"pjds/internal/matrix"
	"pjds/internal/perfmodel"
	"pjds/internal/profiles"
	"pjds/internal/runledger"
	"pjds/internal/telemetry"
	"pjds/internal/trace"
	"pjds/internal/tuner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "perfreport:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:], out)
	}
	fs := flag.NewFlagSet("perfreport", flag.ContinueOnError)
	var (
		matrixArg = fs.String("matrix", "DLR1", "matrix: DLR1 or UHBR (any catalog name accepted)")
		scale     = fs.Float64("scale", experiments.DefaultScale, "matrix scale, 1 = published size")
		ranks     = fs.Int("ranks", 8, "node count for the scenario run")
		iters     = fs.Int("iters", 2, "timed spMVM iterations")
		formatArg = fs.String("format", "ellpack-r", "device format: ellpack-r or pjds")
		modesArg  = fs.String("modes", "", "comma-separated mode slugs (default: all of vector,naive-overlap,task)")
		traceIn   = fs.String("trace-in", "", "analyze this Chrome trace artifact instead of running a scenario")
		metricsIn = fs.String("metrics-in", "", "JSON metrics snapshot accompanying -trace-in (optional)")
		convMode  = fs.Bool("convert", false, "measure the ingest-and-convert pipeline instead of the spMVM")
		hostMode  = fs.Bool("host", false, "measure the CPU host kernels on this machine instead of the simulated cluster")
		workers   = fs.Int("workers", 4, "parallel worker count for -convert")
		profileIn = fs.String("profile", "", "attribute a labeled CPU/heap pprof profile by phase instead of running a scenario")
		checkAttr = fs.Float64("check-attributed", 0, "with -profile: fail unless at least this fraction of samples carries a known phase label")
		tuneMode  = fs.Bool("tune", false, "report the tuning DB: measured vs Eq. 1-modeled cost per (C, σ) grid cell, per sweep")
		tuningDB  = fs.String("tuning-db", "", "tuning DB for -tune (default "+tuner.DefaultPath+")")
		trendMode = fs.Bool("trend", false, "cross-run trend analysis over positional artifact JSONs (chronological) plus -ledger entries")
		ledger    = fs.String("ledger", "", "run ledger JSONL to include in -trend (e.g. .spmv/ledger.jsonl)")
		trendTol  = fs.Float64("trend-tol", 0.05, "relative tolerance band around each metric's historical best")
		sustainN  = fs.Int("sustain", 2, "trailing runs that must all sit beyond tolerance before a trend gates")
		gate      = fs.Bool("gate", false, "with -trend: exit non-zero on sustained regressions")
		trendFull = fs.Bool("trend-full", false, "with -trend: list ok and single-source rows too")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of text")
		outFile   = fs.String("o", "", "write the report to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 && !*trendMode {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	w := out
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *tuneMode {
		return runTuneReport(w, *tuningDB, *matrixArg, fs, *jsonOut)
	}
	if *trendMode {
		opt := runledger.TrendOptions{Tolerance: *trendTol, Sustain: *sustainN}
		return runTrend(w, fs.Args(), *ledger, opt, *gate, *trendFull, *jsonOut)
	}
	if *profileIn != "" {
		return runProfileReport(w, *profileIn, *traceIn, *checkAttr, *jsonOut)
	}
	if *traceIn != "" {
		return analyzeArtifacts(w, *traceIn, *metricsIn, *jsonOut)
	}
	if *convMode {
		if err := runConvertReport(w, *matrixArg, *scale, *ranks, *workers, *jsonOut); err != nil {
			return err
		}
		if *outFile != "" {
			fmt.Fprintf(out, "wrote %s\n", *outFile)
		}
		return nil
	}
	if *hostMode {
		if err := runHostReport(w, *matrixArg, *scale, *iters, *jsonOut); err != nil {
			return err
		}
		if *outFile != "" {
			fmt.Fprintf(out, "wrote %s\n", *outFile)
		}
		return nil
	}

	format := distmv.FormatELLPACKR
	switch strings.ToLower(*formatArg) {
	case "ellpack-r", "ellpackr":
	case "pjds":
		format = distmv.FormatPJDS
	default:
		return fmt.Errorf("unknown format %q", *formatArg)
	}
	modes, err := parseModes(*modesArg)
	if err != nil {
		return err
	}
	reports, err := experiments.RunPerfReports(experiments.PerfReportConfig{
		Matrix:     *matrixArg,
		Scale:      *scale,
		Ranks:      *ranks,
		Iterations: *iters,
		Format:     format,
		Modes:      modes,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"reports": reports})
	}
	for i, mr := range reports {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%.2f GF/s at P=%d (%.3g s/iter)\n", mr.GFlops, mr.Ranks, mr.PerIterSeconds)
		if err := mr.Report.WriteText(w); err != nil {
			return err
		}
	}
	if *outFile != "" {
		fmt.Fprintf(out, "wrote %s\n", *outFile)
	}
	return nil
}

// convertPipeline runs the full ingest-and-convert pipeline (parse the
// serialized MatrixMarket bytes, assemble CSR, build pJDS and
// ELLPACK-R, partition and distribute over ranks) at the given worker
// count and returns the phase recorder plus the built formats.
func convertPipeline(doc []byte, ranks, workers int) (*convert.Recorder, *core.PJDS[float64], *formats.ELLPACKR[float64], error) {
	rec := convert.NewRecorder(telemetry.NewRegistry(), nil, 0)
	opt := matrix.ConvertOptions{Workers: workers, Arena: matrix.NewArena(), Timer: rec}
	m, _, err := matrix.ReadMatrixMarketOpt[float64](bytes.NewReader(doc), opt)
	if err != nil {
		return nil, nil, nil, err
	}
	pj, err := core.NewPJDS(m, core.Options{Convert: opt})
	if err != nil {
		return nil, nil, nil, err
	}
	er := formats.NewELLPACKRWith(m, opt)
	pt, err := distmv.PartitionByNnz(m, ranks)
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := distmv.DistributeOpt(m, pt, opt); err != nil {
		return nil, nil, nil, err
	}
	return rec, pj, er, nil
}

// runConvertReport measures the conversion pipeline at 1 worker and at
// the requested worker count and reports the cost in seconds and in
// modeled spMVM-equivalents (the paper's §II-C amortization currency).
func runConvertReport(w io.Writer, matrixName string, scale float64, ranks, workers int, jsonOut bool) error {
	m, err := experiments.Matrix(matrixName, scale)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := matrix.WriteMatrixMarket(&buf, m); err != nil {
		return err
	}
	doc := buf.Bytes()

	seq, _, _, err := convertPipeline(doc, ranks, 1)
	if err != nil {
		return err
	}
	par, pj, er, err := convertPipeline(doc, ranks, workers)
	if err != nil {
		return err
	}

	// Modeled kernel times on the paper's Fermi board express the
	// conversion cost in spMVM invocations.
	dev := gpu.TeslaC2070()
	scratch := telemetry.NewRegistry()
	xp := make([]float64, m.NCols)
	for i := range xp {
		xp[i] = 1
	}
	yp := make([]float64, m.NRows)
	pjStats, err := gpu.RunPJDS(dev, pj, yp, xp, gpu.RunOptions{Metrics: scratch})
	if err != nil {
		return err
	}
	erStats, err := gpu.RunELLPACKR(dev, er, yp, xp, gpu.RunOptions{Metrics: scratch})
	if err != nil {
		return err
	}
	tPJDS := pjStats.KernelSeconds
	tELLR := erStats.KernelSeconds
	am := convert.Amortize(par.TotalSeconds(), tPJDS, tELLR-tPJDS)
	seqTotal := seq.TotalSeconds()
	parTotal := par.TotalSeconds()
	speedup := 0.0
	if parTotal > 0 {
		speedup = seqTotal / parTotal
	}

	if jsonOut {
		phaseMap := func(r *convert.Recorder) map[string]float64 {
			out := map[string]float64{}
			for _, p := range r.Phases() {
				out[p.Name+"_seconds"] = p.Seconds
			}
			return out
		}
		doc := map[string]any{
			"schema":                        "pjds-convert/v1",
			"matrix":                        matrixName,
			"scale":                         scale,
			"ranks":                         ranks,
			"workers":                       workers,
			"phases_workers1_seconds":       phaseMap(seq),
			"phases_parallel_seconds":       phaseMap(par),
			"convert_seconds_workers1":      seqTotal,
			"convert_seconds_parallel":      parTotal,
			"parallel_speedup":              speedup,
			"modeled_pjds_spmv_seconds":     tPJDS,
			"modeled_ellpackr_spmv_seconds": tELLR,
			"spmv_equivalents_parallel":     am.Equivalents,
			"gain_per_spmv_seconds":         am.GainSeconds,
		}
		if tPJDS > 0 {
			doc["spmv_equivalents_workers1"] = seqTotal / tPJDS
		}
		if !math.IsInf(am.BreakEvenSpMVMs, 0) {
			doc["breakeven_spmvs"] = am.BreakEvenSpMVMs
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Fprintf(w, "ingest-and-convert pipeline: %s scale %g, %d ranks\n\n", matrixName, scale, ranks)
	fmt.Fprintf(w, "%-18s %14s %14s\n", "phase", "1 worker [s]", fmt.Sprintf("%d workers [s]", workers))
	parByName := map[string]float64{}
	for _, p := range par.Phases() {
		parByName[p.Name] = p.Seconds
	}
	for _, p := range seq.Phases() {
		fmt.Fprintf(w, "%-18s %14.6f %14.6f\n", p.Name, p.Seconds, parByName[p.Name])
	}
	fmt.Fprintf(w, "%-18s %14.6f %14.6f\n", "total", seqTotal, parTotal)
	fmt.Fprintf(w, "\nparallel speedup: %.2fx at %d workers\n", speedup, workers)
	fmt.Fprintf(w, "modeled spMVM (TeslaC2070): pJDS %.3g s, ELLPACK-R %.3g s\n", tPJDS, tELLR)
	fmt.Fprintf(w, "conversion cost: %.1f spMVM-equivalents (parallel)\n", am.Equivalents)
	if math.IsInf(am.BreakEvenSpMVMs, 0) {
		fmt.Fprintf(w, "break-even vs ELLPACK-R: never (pJDS not faster on this matrix)\n")
	} else {
		fmt.Fprintf(w, "break-even vs ELLPACK-R: %.0f spMVMs\n", am.BreakEvenSpMVMs)
	}
	return nil
}

// runHostReport measures every host kernel on one matrix and prints
// the measured GFLOP/s and effective GB/s (at Eq. 1 minimal traffic)
// next to the Eq. 1 code balance and the Westmere CRS model — real
// host numbers for the same quantities the health engine and
// telemetry track as host_kernel_gflops / host_kernel_bytes_total.
func runHostReport(w io.Writer, matrixName string, scale float64, iters int, jsonOut bool) error {
	type hostEntry struct {
		Kernel       string  `json:"kernel"`
		NsPerNnz     float64 `json:"nsPerNnz"`
		GFlops       float64 `json:"gflops"`
		BandwidthGBs float64 `json:"bandwidthGBs"`
		Digest       string  `json:"digest"`
	}
	var entries []hostEntry
	var ref *experiments.HostBenchRow
	for _, kind := range hostkernel.Kinds() {
		res, err := experiments.RunHostBench(kind, []string{matrixName}, scale, iters, 0, io.Discard)
		if err != nil {
			return err
		}
		r := res.Rows[0]
		if ref == nil {
			ref = &r
		}
		entries = append(entries, hostEntry{
			Kernel:       r.Kernel,
			NsPerNnz:     r.NsPerNnz,
			GFlops:       r.GFlops,
			BandwidthGBs: r.GBs,
			Digest:       r.Digest,
		})
	}
	m, err := experiments.Matrix(matrixName, scale)
	if err != nil {
		return err
	}
	nnzr := m.AvgRowLen()
	cbIdeal := perfmodel.CodeBalanceDP(perfmodel.AlphaIdeal(nnzr), nnzr)
	west, err := cpu.WestmereEP().EstimateCRS(m)
	if err != nil {
		return err
	}
	experiments.DropCached(matrixName, scale)

	if jsonOut {
		doc := map[string]any{
			"schema":                "pjds-host/v1",
			"matrix":                matrixName,
			"scale":                 scale,
			"iters":                 iters,
			"kernels":               entries,
			"code_balance_dp_ideal": cbIdeal,
			"westmere_model_gflops": west.GFlops,
			"westmere_model_alpha":  west.Alpha,
			"digests_match":         allDigestsEqual(entries, func(e hostEntry) string { return e.Digest }),
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(doc)
	}

	fmt.Fprintf(w, "host kernels: %s scale %g, %d iters (wall-clock on this machine)\n\n", matrixName, scale, iters)
	fmt.Fprintf(w, "%-10s %10s %10s %14s\n", "kernel", "ns/nnz", "GFLOP/s", "GB/s (Eq.1)")
	for _, e := range entries {
		fmt.Fprintf(w, "%-10s %10.2f %10.2f %14.2f\n", e.Kernel, e.NsPerNnz, e.GFlops, e.BandwidthGBs)
	}
	fmt.Fprintf(w, "\nEq. 1 code balance (DP, ideal alpha): %.2f B/flop\n", cbIdeal)
	fmt.Fprintf(w, "Westmere CRS model: %.2f GF/s at alpha %.2f (Table I baseline)\n", west.GFlops, west.Alpha)
	if allDigestsEqual(entries, func(e hostEntry) string { return e.Digest }) {
		fmt.Fprintf(w, "result digests: identical across kernels\n")
	} else {
		fmt.Fprintf(w, "result digests: MISMATCH — kernels disagree\n")
	}
	return nil
}

// allDigestsEqual reports whether every entry carries the same digest.
func allDigestsEqual[T any](entries []T, digest func(T) string) bool {
	for i := 1; i < len(entries); i++ {
		if digest(entries[i]) != digest(entries[0]) {
			return false
		}
	}
	return true
}

// parseModes resolves a comma-separated slug list (empty = all).
func parseModes(arg string) ([]distmv.Mode, error) {
	if arg == "" {
		return nil, nil
	}
	var modes []distmv.Mode
	for _, f := range strings.Split(arg, ",") {
		slug := strings.TrimSpace(f)
		found := false
		for _, m := range distmv.Modes() {
			if m.Slug() == slug {
				modes = append(modes, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown mode %q (want vector, naive-overlap, or task)", slug)
		}
	}
	return modes, nil
}

// analyzeArtifacts reports on a saved trace (plus optional metrics
// snapshot) instead of a fresh run.
func analyzeArtifacts(w io.Writer, tracePath, metricsPath string, jsonOut bool) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	spans, err := trace.ReadSpans(f)
	f.Close()
	if err != nil {
		return err
	}
	var metrics []telemetry.Series
	if metricsPath != "" {
		mf, err := os.Open(metricsPath)
		if err != nil {
			return err
		}
		metrics, err = telemetry.ReadSnapshot(mf)
		mf.Close()
		if err != nil {
			return err
		}
	}
	rep := critpath.Analyze(filepath.Base(tracePath), spans, metrics)
	if jsonOut {
		return rep.WriteJSON(w)
	}
	return rep.WriteText(w)
}

// runDiff is the regression gate: it compares two JSON artifacts and
// exits non-zero when any metric regressed beyond its tolerance band.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("perfreport diff", flag.ContinueOnError)
	var (
		tol       = fs.Float64("tol", 0.02, "default relative tolerance band (0.02 = ±2%)")
		tolMetric = fs.String("tol-metric", "", "per-metric overrides, e.g. gflops=0.05,seconds=0.1")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: perfreport diff [-tol T] [-tol-metric k=v,...] OLD.json NEW.json")
	}
	opt := critpath.DiffOptions{Tolerance: *tol}
	if *tolMetric != "" {
		opt.PerMetric = map[string]float64{}
		for _, kv := range strings.Split(*tolMetric, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return fmt.Errorf("bad -tol-metric entry %q", kv)
			}
			band, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad -tol-metric band %q: %v", kv, err)
			}
			opt.PerMetric[k] = band
		}
	}
	oldDoc, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	findings, err := critpath.Diff(oldDoc, newDoc, opt)
	if err != nil {
		return err
	}
	regressions := 0
	for _, f := range findings {
		if f.Regression() {
			regressions++
		}
		switch f.Verdict {
		case critpath.DiffMissing:
			fmt.Fprintf(out, "REGRESSION %-40s metric disappeared (was %g)\n", f.Path, f.Old)
		case critpath.DiffAdded:
			fmt.Fprintf(out, "added      %-40s %g\n", f.Path, f.New)
		default:
			tag := "improved  "
			if f.Regression() {
				tag = "REGRESSION"
			}
			fmt.Fprintf(out, "%s %-40s %g -> %g (%+.1f%%)\n", tag, f.Path, f.Old, f.New, relPct(f.RelChange))
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d regression(s) beyond tolerance", regressions)
	}
	fmt.Fprintf(out, "no regressions (%d finding(s) within policy)\n", len(findings))
	return nil
}

// relPct clamps the printed relative change for the old==0 case.
func relPct(rel float64) float64 {
	if math.IsInf(rel, 0) {
		return math.Copysign(999, rel)
	}
	return 100 * rel
}

// runProfileReport attributes a labeled pprof profile by phase and
// cross-checks the phase vocabulary against the span lanes: every
// attributed phase must be one of the known phases (which are exactly
// the trace lanes plus "convert"), and with -trace-in each phase is
// checked against the lanes actually present in the trace. The
// -check-attributed gate fails when too much of the profile is
// unlabeled — that is how check.sh catches a hot path that lost its
// label.
func runProfileReport(w io.Writer, profilePath, tracePath string, checkAttr float64, jsonOut bool) error {
	p, err := profiles.ParseFile(profilePath)
	if err != nil {
		return err
	}
	a := profiles.Attribute(p)

	var laneSet map[string]bool
	if tracePath != "" {
		f, err := os.Open(tracePath)
		if err != nil {
			return err
		}
		spans, err := trace.ReadSpans(f)
		f.Close()
		if err != nil {
			return err
		}
		laneSet = map[string]bool{}
		for _, s := range spans {
			laneSet[s.Lane] = true
		}
	}

	if jsonOut {
		doc := map[string]any{
			"schema":      "pjds-profile/v1",
			"profile":     filepath.Base(profilePath),
			"attribution": a,
			"phases":      a.PhaseSet(),
		}
		if laneSet != nil {
			lanes := make([]string, 0, len(laneSet))
			for l := range laneSet {
				lanes = append(lanes, l)
			}
			sort.Strings(lanes)
			doc["trace_lanes"] = lanes
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	} else {
		a.WriteTable(w)
		if laneSet != nil {
			for _, ph := range a.PhaseSet() {
				mark := "no spans on this lane"
				if laneSet[ph] || ph == profiles.PhaseConvert {
					mark = "matches trace lanes"
				}
				fmt.Fprintf(w, "  phase %-8s %s\n", ph, mark)
			}
		}
	}

	if unknown := a.UnknownPhases(); len(unknown) > 0 {
		return fmt.Errorf("profile carries phase label(s) outside the span-lane vocabulary %v: %v",
			profiles.KnownPhases, unknown)
	}
	if checkAttr > 0 && a.AttributedFrac() < checkAttr {
		return fmt.Errorf("only %.1f%% of %s samples attributed to a known phase, want >= %.1f%%",
			100*a.AttributedFrac(), orSamples(a.SampleType.Type), 100*checkAttr)
	}
	return nil
}

func orSamples(t string) string {
	if t == "" {
		return "profile"
	}
	return t
}

// runTrend lines up benchmark artifacts (positional, chronological
// order) plus the run ledger's entries and reports every metric's
// trajectory against its historical best; with -gate, sustained
// regressions exit non-zero.
func runTrend(w io.Writer, artifacts []string, ledgerPath string, opt runledger.TrendOptions, gate, full, jsonOut bool) error {
	var sources []runledger.Source
	for _, path := range artifacts {
		doc, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		src, err := runledger.SourceFromJSON(filepath.Base(path), doc)
		if err != nil {
			return err
		}
		sources = append(sources, src)
	}
	if ledgerPath != "" {
		entries, err := runledger.Read(ledgerPath)
		if err != nil {
			return err
		}
		for _, e := range entries {
			sources = append(sources, runledger.SourceFromEntry(e))
		}
	}
	if len(sources) == 0 {
		return fmt.Errorf("usage: perfreport -trend [-ledger PATH] A.json B.json ... (need at least one source)")
	}
	rows := runledger.Trend(sources, opt)
	if jsonOut {
		names := make([]string, len(sources))
		for i, s := range sources {
			names[i] = s.Name
		}
		doc := map[string]any{
			"schema":  "pjds-trend/v1",
			"sources": names,
			"rows":    rows,
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			return err
		}
	} else {
		runledger.WriteTrendReport(w, sources, rows, full)
	}
	if gate {
		if regs := runledger.Regressions(rows); len(regs) > 0 {
			names := make([]string, len(regs))
			for i, r := range regs {
				names[i] = r.Metric
			}
			return fmt.Errorf("%d sustained regression(s): %s", len(regs), strings.Join(names, ", "))
		}
	}
	return nil
}
