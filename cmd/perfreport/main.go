// Command perfreport produces causal performance reports for the
// simulated GPGPU cluster: the cross-rank critical path and its
// rank × lane × phase attribution, overlap efficiency per §III-A
// communication mode, and the measured-vs-model kernel table (Eq. 1),
// plus a perf-regression gate comparing two report artifacts.
//
// Usage:
//
//	perfreport [-matrix DLR1] [-scale 0.1] [-ranks 8] [-iters 2]
//	           [-format ellpack-r] [-modes vector,naive-overlap,task]
//	           [-json] [-o FILE]
//	    run the distributed benchmark per mode and report on each.
//
//	perfreport -trace-in trace.json [-metrics-in metrics.json]
//	    analyze saved artifacts (scaling -trace-out / -metrics-out)
//	    instead of running a scenario.
//
//	perfreport diff [-tol 0.02] [-tol-metric gflops=0.05,...] OLD NEW
//	    compare two JSON report/benchmark artifacts leaf by leaf under
//	    tolerance bands; exit non-zero when any metric regressed
//	    (scripts/regress.sh wraps this).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pjds/internal/critpath"
	"pjds/internal/distmv"
	"pjds/internal/experiments"
	"pjds/internal/telemetry"
	"pjds/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "perfreport:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:], out)
	}
	fs := flag.NewFlagSet("perfreport", flag.ContinueOnError)
	var (
		matrixArg = fs.String("matrix", "DLR1", "matrix: DLR1 or UHBR (any catalog name accepted)")
		scale     = fs.Float64("scale", experiments.DefaultScale, "matrix scale, 1 = published size")
		ranks     = fs.Int("ranks", 8, "node count for the scenario run")
		iters     = fs.Int("iters", 2, "timed spMVM iterations")
		formatArg = fs.String("format", "ellpack-r", "device format: ellpack-r or pjds")
		modesArg  = fs.String("modes", "", "comma-separated mode slugs (default: all of vector,naive-overlap,task)")
		traceIn   = fs.String("trace-in", "", "analyze this Chrome trace artifact instead of running a scenario")
		metricsIn = fs.String("metrics-in", "", "JSON metrics snapshot accompanying -trace-in (optional)")
		jsonOut   = fs.Bool("json", false, "emit the report as JSON instead of text")
		outFile   = fs.String("o", "", "write the report to this file instead of stdout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q", fs.Arg(0))
	}
	w := out
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *traceIn != "" {
		return analyzeArtifacts(w, *traceIn, *metricsIn, *jsonOut)
	}

	format := distmv.FormatELLPACKR
	switch strings.ToLower(*formatArg) {
	case "ellpack-r", "ellpackr":
	case "pjds":
		format = distmv.FormatPJDS
	default:
		return fmt.Errorf("unknown format %q", *formatArg)
	}
	modes, err := parseModes(*modesArg)
	if err != nil {
		return err
	}
	reports, err := experiments.RunPerfReports(experiments.PerfReportConfig{
		Matrix:     *matrixArg,
		Scale:      *scale,
		Ranks:      *ranks,
		Iterations: *iters,
		Format:     format,
		Modes:      modes,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(map[string]any{"reports": reports})
	}
	for i, mr := range reports {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "%.2f GF/s at P=%d (%.3g s/iter)\n", mr.GFlops, mr.Ranks, mr.PerIterSeconds)
		if err := mr.Report.WriteText(w); err != nil {
			return err
		}
	}
	if *outFile != "" {
		fmt.Fprintf(out, "wrote %s\n", *outFile)
	}
	return nil
}

// parseModes resolves a comma-separated slug list (empty = all).
func parseModes(arg string) ([]distmv.Mode, error) {
	if arg == "" {
		return nil, nil
	}
	var modes []distmv.Mode
	for _, f := range strings.Split(arg, ",") {
		slug := strings.TrimSpace(f)
		found := false
		for _, m := range distmv.Modes() {
			if m.Slug() == slug {
				modes = append(modes, m)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown mode %q (want vector, naive-overlap, or task)", slug)
		}
	}
	return modes, nil
}

// analyzeArtifacts reports on a saved trace (plus optional metrics
// snapshot) instead of a fresh run.
func analyzeArtifacts(w io.Writer, tracePath, metricsPath string, jsonOut bool) error {
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	spans, err := trace.ReadSpans(f)
	f.Close()
	if err != nil {
		return err
	}
	var metrics []telemetry.Series
	if metricsPath != "" {
		mf, err := os.Open(metricsPath)
		if err != nil {
			return err
		}
		metrics, err = telemetry.ReadSnapshot(mf)
		mf.Close()
		if err != nil {
			return err
		}
	}
	rep := critpath.Analyze(filepath.Base(tracePath), spans, metrics)
	if jsonOut {
		return rep.WriteJSON(w)
	}
	return rep.WriteText(w)
}

// runDiff is the regression gate: it compares two JSON artifacts and
// exits non-zero when any metric regressed beyond its tolerance band.
func runDiff(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("perfreport diff", flag.ContinueOnError)
	var (
		tol       = fs.Float64("tol", 0.02, "default relative tolerance band (0.02 = ±2%)")
		tolMetric = fs.String("tol-metric", "", "per-metric overrides, e.g. gflops=0.05,seconds=0.1")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: perfreport diff [-tol T] [-tol-metric k=v,...] OLD.json NEW.json")
	}
	opt := critpath.DiffOptions{Tolerance: *tol}
	if *tolMetric != "" {
		opt.PerMetric = map[string]float64{}
		for _, kv := range strings.Split(*tolMetric, ",") {
			k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
			if !ok {
				return fmt.Errorf("bad -tol-metric entry %q", kv)
			}
			band, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return fmt.Errorf("bad -tol-metric band %q: %v", kv, err)
			}
			opt.PerMetric[k] = band
		}
	}
	oldDoc, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	newDoc, err := os.ReadFile(fs.Arg(1))
	if err != nil {
		return err
	}
	findings, err := critpath.Diff(oldDoc, newDoc, opt)
	if err != nil {
		return err
	}
	regressions := 0
	for _, f := range findings {
		if f.Regression() {
			regressions++
		}
		switch f.Verdict {
		case critpath.DiffMissing:
			fmt.Fprintf(out, "REGRESSION %-40s metric disappeared (was %g)\n", f.Path, f.Old)
		case critpath.DiffAdded:
			fmt.Fprintf(out, "added      %-40s %g\n", f.Path, f.New)
		default:
			tag := "improved  "
			if f.Regression() {
				tag = "REGRESSION"
			}
			fmt.Fprintf(out, "%s %-40s %g -> %g (%+.1f%%)\n", tag, f.Path, f.Old, f.New, relPct(f.RelChange))
		}
	}
	if regressions > 0 {
		return fmt.Errorf("%d regression(s) beyond tolerance", regressions)
	}
	fmt.Fprintf(out, "no regressions (%d finding(s) within policy)\n", len(findings))
	return nil
}

// relPct clamps the printed relative change for the old==0 case.
func relPct(rel float64) float64 {
	if math.IsInf(rel, 0) {
		return math.Copysign(999, rel)
	}
	return 100 * rel
}
