package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pjds/internal/runledger"
	"pjds/internal/tuner"
)

// TestScenarioText runs the smallest scenario and checks the report
// shape: a verdict line, a category table, and overlap per mode.
func TestScenarioText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ranks", "3", "-scale", "0.02", "-iters", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"critical path:", "-bound", "kernel", "top contributors", "overlap:", "Eq. 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, mode := range []string{"vector", "naive-overlap", "task"} {
		if !strings.Contains(out, "DLR1 "+mode+" P=3") {
			t.Errorf("missing %s report", mode)
		}
	}
}

// TestJSONAndSelfDiff writes a JSON artifact, self-diffs it (zero
// regressions, exit nil), then perturbs a metric and expects the gate
// to fail.
func TestJSONAndSelfDiff(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "a.json")
	var buf bytes.Buffer
	if err := run([]string{"-ranks", "3", "-scale", "0.02", "-iters", "1",
		"-modes", "task", "-json", "-o", art}, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reports []struct {
			Mode   string  `json:"mode"`
			GFlops float64 `json:"gflops"`
		} `json:"reports"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if len(doc.Reports) != 1 || doc.Reports[0].Mode != "task" || doc.Reports[0].GFlops <= 0 {
		t.Fatalf("artifact reports: %+v", doc.Reports)
	}

	buf.Reset()
	if err := run([]string{"diff", art, art}, &buf); err != nil {
		t.Fatalf("self-diff regressed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("self-diff output: %s", buf.String())
	}

	bad := filepath.Join(dir, "b.json")
	perturbed := strings.Replace(string(raw), `"gflops"`, `"gflops_was"`, 1)
	if perturbed == string(raw) {
		t.Fatal("perturbation did not apply")
	}
	if err := os.WriteFile(bad, []byte(perturbed), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"diff", art, bad}, &buf); err == nil {
		t.Fatalf("gate passed a missing metric:\n%s", buf.String())
	}
}

// TestBadFlags covers the error paths users actually hit.
func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-format", "coo"},
		{"-modes", "warp"},
		{"stray"},
		{"diff", "only-one.json"},
		{"diff", "-tol-metric", "nonsense", "a.json", "b.json"},
		{"-trend"}, // no sources at all
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// --- fixtures for the -profile mode: a hand-encoded pprof profile ---

type penc struct{ b []byte }

func (e *penc) varint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

func (e *penc) uintField(num int, v uint64) {
	e.varint(uint64(num)<<3 | 0)
	e.varint(v)
}

func (e *penc) bytesField(num int, b []byte) {
	e.varint(uint64(num)<<3 | 2)
	e.varint(uint64(len(b)))
	e.b = append(e.b, b...)
}

func (e *penc) msgField(num int, fill func(*penc)) {
	var sub penc
	fill(&sub)
	e.bytesField(num, sub.b)
}

// profileFixture encodes a two-sample cpu/nanoseconds profile: 30ns
// labeled phase=<phase>, 10ns unlabeled in main.cold.
func profileFixture(t *testing.T, dir, phase string) string {
	t.Helper()
	var e penc
	e.msgField(1, func(s *penc) { // sample_type cpu/nanoseconds
		s.uintField(1, 1)
		s.uintField(2, 2)
	})
	e.msgField(2, func(s *penc) { // labeled sample, 30ns
		s.uintField(1, 1)
		s.uintField(2, 30)
		s.msgField(3, func(l *penc) {
			l.uintField(1, 3) // "phase"
			l.uintField(2, 4) // phase value
		})
	})
	e.msgField(2, func(s *penc) { // unlabeled sample, 10ns
		s.uintField(1, 1)
		s.uintField(2, 10)
	})
	e.msgField(4, func(l *penc) { // location 1 -> function 1
		l.uintField(1, 1)
		l.msgField(4, func(ln *penc) { ln.uintField(1, 1) })
	})
	e.msgField(5, func(f *penc) { // function 1 = main.cold
		f.uintField(1, 1)
		f.uintField(2, 5)
	})
	for _, s := range []string{"", "cpu", "nanoseconds", "phase", phase, "main.cold"} {
		e.bytesField(6, []byte(s))
	}
	path := filepath.Join(dir, "cpu.pprof")
	if err := os.WriteFile(path, e.b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestProfileReport checks the attribution table, the JSON shape, and
// the -check-attributed gate in both directions.
func TestProfileReport(t *testing.T) {
	path := profileFixture(t, t.TempDir(), "host")

	var buf bytes.Buffer
	if err := run([]string{"-profile", path}, &buf); err != nil {
		t.Fatalf("-profile: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"host", "attributed to known phases: 75.0%", "main.cold"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}

	buf.Reset()
	if err := run([]string{"-profile", path, "-check-attributed", "0.7"}, &buf); err != nil {
		t.Fatalf("gate at 0.7 rejected a 75%%-attributed profile: %v", err)
	}
	buf.Reset()
	err := run([]string{"-profile", path, "-check-attributed", "0.9"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "75.0%") {
		t.Fatalf("gate at 0.9 = %v, want failure citing 75.0%%", err)
	}

	buf.Reset()
	if err := run([]string{"-profile", path, "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema      string   `json:"schema"`
		Phases      []string `json:"phases"`
		Attribution struct {
			Total      int64 `json:"total"`
			Attributed int64 `json:"attributed"`
		} `json:"attribution"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output: %v\n%s", err, buf.String())
	}
	if doc.Schema != "pjds-profile/v1" || doc.Attribution.Total != 40 || doc.Attribution.Attributed != 30 {
		t.Fatalf("profile doc = %+v", doc)
	}
	if len(doc.Phases) != 1 || doc.Phases[0] != "host" {
		t.Fatalf("phases = %v", doc.Phases)
	}
}

// TestProfileUnknownPhase: a phase label outside the span-lane
// vocabulary must fail the cross-check.
func TestProfileUnknownPhase(t *testing.T) {
	path := profileFixture(t, t.TempDir(), "warmup")
	var buf bytes.Buffer
	err := run([]string{"-profile", path}, &buf)
	if err == nil || !strings.Contains(err.Error(), "warmup") {
		t.Fatalf("unknown phase accepted: %v", err)
	}
}

// writeArtifact drops a one-metric JSON doc for trend tests.
func writeArtifact(t *testing.T, dir, name string, gflops float64) string {
	t.Helper()
	path := filepath.Join(dir, name)
	doc, _ := json.Marshal(map[string]float64{"gflops": gflops})
	if err := os.WriteFile(path, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTrendGate: a sustained drop gates, a steady series does not, and
// the JSON shape carries the verdicts.
func TestTrendGate(t *testing.T) {
	dir := t.TempDir()
	a := writeArtifact(t, dir, "a.json", 10)
	b := writeArtifact(t, dir, "b.json", 5)
	c := writeArtifact(t, dir, "c.json", 5)

	var buf bytes.Buffer
	if err := run([]string{"-trend", a, b, c}, &buf); err != nil {
		t.Fatalf("ungated trend errored: %v", err)
	}
	if !strings.Contains(buf.String(), "regression") {
		t.Errorf("sustained drop not reported:\n%s", buf.String())
	}

	buf.Reset()
	err := run([]string{"-trend", "-gate", a, b, c}, &buf)
	if err == nil || !strings.Contains(err.Error(), "gflops") {
		t.Fatalf("gate = %v, want sustained regression on gflops", err)
	}

	// One bad run between two good ones is watch, not a gate failure.
	buf.Reset()
	if err := run([]string{"-trend", "-gate", a, b, a}, &buf); err != nil {
		t.Fatalf("recovered series gated: %v\n%s", err, buf.String())
	}

	buf.Reset()
	if err := run([]string{"-trend", "-json", a, b, c}, &buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string   `json:"schema"`
		Sources []string `json:"sources"`
		Rows    []struct {
			Metric  string `json:"metric"`
			Verdict string `json:"verdict"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("-json output: %v\n%s", err, buf.String())
	}
	if doc.Schema != "pjds-trend/v1" || len(doc.Sources) != 3 {
		t.Fatalf("trend doc = %+v", doc)
	}
	if len(doc.Rows) != 1 || doc.Rows[0].Metric != "gflops" || doc.Rows[0].Verdict != "regression" {
		t.Fatalf("rows = %+v", doc.Rows)
	}
}

// TestTrendLedger folds run-ledger entries in after the positional
// artifacts, so a fresh regression recorded by spmvbench gates.
func TestTrendLedger(t *testing.T) {
	dir := t.TempDir()
	a := writeArtifact(t, dir, "a.json", 10)
	ledger := filepath.Join(dir, "ledger.jsonl")
	for i := 0; i < 2; i++ {
		if err := runledger.Append(ledger, runledger.Entry{
			Tool:    "spmvbench",
			Metrics: map[string]float64{"gflops": 4},
		}); err != nil {
			t.Fatal(err)
		}
	}

	var buf bytes.Buffer
	err := run([]string{"-trend", "-gate", "-ledger", ledger, a}, &buf)
	if err == nil || !strings.Contains(err.Error(), "gflops") {
		t.Fatalf("ledger regression not gated: %v", err)
	}
	buf.Reset()
	if err := run([]string{"-trend", "-ledger", ledger, a}, &buf); err != nil {
		t.Fatalf("ungated ledger trend errored: %v", err)
	}
	if !strings.Contains(buf.String(), "spmvbench@") {
		t.Errorf("ledger entries missing from source list:\n%s", buf.String())
	}
}

// TestTuneReport: -tune renders every persisted sweep as a
// measured-vs-model grid with rank columns and the winner marked;
// -matrix filters by name; an empty DB is an explicit error.
func TestTuneReport(t *testing.T) {
	db := filepath.Join(t.TempDir(), "tuning.jsonl")
	if err := run([]string{"-tune", "-tuning-db", db}, &bytes.Buffer{}); err == nil {
		t.Fatal("empty tuning DB accepted")
	}
	entry := tuner.Entry{
		Matrix: "sAMG", Fingerprint: "f1", Device: "Tesla C2070",
		Rows: 100, Cols: 100, Nnz: 700, Workers: 1,
		Winner: tuner.Cell{Format: "sell", C: 8, Sigma: 256, ModelBytesPerNnz: 16.4, MeasuredNsPerNnz: 1.1},
		Cells: []tuner.Cell{
			{Format: "crs", ModelBytesPerNnz: 100.3, Pruned: true},
			{Format: "pjds", C: 32, Sigma: 100, ModelBytesPerNnz: 16.5, MeasuredNsPerNnz: 1.3},
			{Format: "sell", C: 8, Sigma: 256, ModelBytesPerNnz: 16.4, MeasuredNsPerNnz: 1.1},
			{Format: "cmrs", Height: 16, ModelBytesPerNnz: 17.3, MeasuredNsPerNnz: 1.6},
		},
	}
	if err := tuner.Append(db, entry); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-tune", "-tuning-db", db}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"sweep sAMG", "SELL-8-256", "winner", "pruned", "model rank", "CMRS-h16"} {
		if !strings.Contains(out, want) {
			t.Errorf("tune report missing %q:\n%s", want, out)
		}
	}

	// The winner (lowest measured) must carry measured rank 1, and the
	// pruned CRS cell must show no measurement.
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "SELL-8-256") && !strings.Contains(line, " 1 ") {
			t.Errorf("winner line lost measured rank 1: %q", line)
		}
		if strings.HasPrefix(line, "CRS") && !strings.Contains(line, "-") {
			t.Errorf("pruned line carries a measurement: %q", line)
		}
	}

	// -matrix filters: a name with no sweeps errors.
	if err := run([]string{"-tune", "-tuning-db", db, "-matrix", "UHBR"}, &bytes.Buffer{}); err == nil {
		t.Fatal("-matrix filter matched a missing sweep")
	}
	if err := run([]string{"-tune", "-tuning-db", db, "-matrix", "sAMG", "-json"}, &buf); err != nil {
		t.Fatal(err)
	}
}
