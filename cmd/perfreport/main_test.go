package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestScenarioText runs the smallest scenario and checks the report
// shape: a verdict line, a category table, and overlap per mode.
func TestScenarioText(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-ranks", "3", "-scale", "0.02", "-iters", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"critical path:", "-bound", "kernel", "top contributors", "overlap:", "Eq. 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	for _, mode := range []string{"vector", "naive-overlap", "task"} {
		if !strings.Contains(out, "DLR1 "+mode+" P=3") {
			t.Errorf("missing %s report", mode)
		}
	}
}

// TestJSONAndSelfDiff writes a JSON artifact, self-diffs it (zero
// regressions, exit nil), then perturbs a metric and expects the gate
// to fail.
func TestJSONAndSelfDiff(t *testing.T) {
	dir := t.TempDir()
	art := filepath.Join(dir, "a.json")
	var buf bytes.Buffer
	if err := run([]string{"-ranks", "3", "-scale", "0.02", "-iters", "1",
		"-modes", "task", "-json", "-o", art}, &buf); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Reports []struct {
			Mode   string  `json:"mode"`
			GFlops float64 `json:"gflops"`
		} `json:"reports"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("artifact not JSON: %v", err)
	}
	if len(doc.Reports) != 1 || doc.Reports[0].Mode != "task" || doc.Reports[0].GFlops <= 0 {
		t.Fatalf("artifact reports: %+v", doc.Reports)
	}

	buf.Reset()
	if err := run([]string{"diff", art, art}, &buf); err != nil {
		t.Fatalf("self-diff regressed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no regressions") {
		t.Errorf("self-diff output: %s", buf.String())
	}

	bad := filepath.Join(dir, "b.json")
	perturbed := strings.Replace(string(raw), `"gflops"`, `"gflops_was"`, 1)
	if perturbed == string(raw) {
		t.Fatal("perturbation did not apply")
	}
	if err := os.WriteFile(bad, []byte(perturbed), 0o644); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := run([]string{"diff", art, bad}, &buf); err == nil {
		t.Fatalf("gate passed a missing metric:\n%s", buf.String())
	}
}

// TestBadFlags covers the error paths users actually hit.
func TestBadFlags(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-format", "coo"},
		{"-modes", "warp"},
		{"stray"},
		{"diff", "only-one.json"},
		{"diff", "-tol-metric", "nonsense", "a.json", "b.json"},
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
