package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"sort"

	"pjds/internal/textplot"
	"pjds/internal/tuner"
)

// runTuneReport renders the tuning DB as a measured-vs-model report:
// one table per persisted sweep, every grid cell with its Eq. 1
// traffic prediction next to the measured replay time, model and
// measured ranks side by side, and the implied effective bandwidth
// (model bytes over measured time) that exposes where the model and
// the machine disagree. -matrix, when explicitly set, filters sweeps
// by matrix name.
func runTuneReport(w io.Writer, dbPath, matrixFilter string, fs *flag.FlagSet, jsonOut bool) error {
	if dbPath == "" {
		dbPath = tuner.DefaultPath
	}
	filter := ""
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "matrix" {
			filter = matrixFilter
		}
	})
	entries, err := tuner.Read(dbPath)
	if err != nil {
		return err
	}
	var keep []tuner.Entry
	for _, e := range entries {
		if filter == "" || e.Matrix == filter {
			keep = append(keep, e)
		}
	}
	if len(keep) == 0 {
		return fmt.Errorf("no tuning entries in %s (run spmvbench -format auto, or upload through a TuningDB-enabled service)", dbPath)
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(keep)
	}
	for _, e := range keep {
		fmt.Fprintf(w, "sweep %s  fingerprint %s  device %s  %dx%d  nnz %d  workers %d  %s\n",
			e.Matrix, e.Fingerprint, e.Device, e.Rows, e.Cols, e.Nnz, e.Workers, e.Time)
		if err := renderSweep(w, e); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

// renderSweep prints one sweep's grid with model and measured ranks.
func renderSweep(w io.Writer, e tuner.Entry) error {
	modelRank := rankBy(e.Cells, func(c tuner.Cell) (float64, bool) {
		return c.ModelBytesPerNnz, true
	})
	measRank := rankBy(e.Cells, func(c tuner.Cell) (float64, bool) {
		return c.MeasuredNsPerNnz, !c.Pruned && c.MeasuredNsPerNnz > 0
	})
	rows := [][]string{{"cell", "model B/nnz", "beta", "measured ns/nnz", "model rank", "meas rank", "eff GB/s", "note"}}
	for i, c := range e.Cells {
		meas, mrank, eff := "-", "-", "-"
		note := ""
		if c.Pruned {
			note = "pruned"
		} else if c.MeasuredNsPerNnz > 0 {
			meas = fmt.Sprintf("%.2f", c.MeasuredNsPerNnz)
			mrank = fmt.Sprint(measRank[i])
			// Model bytes per measured nanosecond = GB/s the machine
			// would be sustaining if the model's traffic were exact.
			eff = fmt.Sprintf("%.1f", c.ModelBytesPerNnz/c.MeasuredNsPerNnz)
		}
		if c.Label() == e.Winner.Label() {
			if note != "" {
				note += ", "
			}
			note += "winner"
		}
		rows = append(rows, []string{
			c.Label(),
			fmt.Sprintf("%.2f", c.ModelBytesPerNnz),
			fmt.Sprintf("%.3f", c.Beta),
			meas, fmt.Sprint(modelRank[i]), mrank, eff, note,
		})
	}
	return textplot.Table(w, rows)
}

// rankBy assigns 1-based ascending ranks over the cells the value
// function admits; inadmissible cells get rank 0 (rendered "-").
func rankBy(cells []tuner.Cell, val func(tuner.Cell) (float64, bool)) []int {
	type kv struct {
		i int
		v float64
	}
	var adm []kv
	for i, c := range cells {
		if v, ok := val(c); ok {
			adm = append(adm, kv{i, v})
		}
	}
	sort.SliceStable(adm, func(a, b int) bool { return adm[a].v < adm[b].v })
	out := make([]int, len(cells))
	for r, a := range adm {
		out[a.i] = r + 1
	}
	return out
}
