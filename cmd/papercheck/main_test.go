package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPapercheckTinyScale(t *testing.T) {
	var buf bytes.Buffer
	failures, err := run([]string{"-scale", "0.02"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "checks,") {
		t.Errorf("output malformed:\n%s", out)
	}
	if failures != 0 {
		t.Errorf("%d reproduction checks failed at tiny scale:\n%s", failures, out)
	}
}

func TestRunPapercheckBadFlag(t *testing.T) {
	if _, err := run([]string{"-bogus"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
