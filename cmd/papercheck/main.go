// Command papercheck is the reproduction certificate: it re-runs the
// paper's experiments and grades every DESIGN.md shape claim
// (PASS/FAIL per claim; non-zero exit when any claim fails).
//
// Usage:
//
//	papercheck [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pjds/internal/experiments"
)

func main() {
	failures, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "papercheck:", err)
		os.Exit(1)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// run executes the certificate and returns the failure count.
func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("papercheck", flag.ContinueOnError)
	scale := fs.Float64("scale", experiments.DefaultScale, "matrix scale, 1 = published size")
	if err := fs.Parse(args); err != nil {
		return 0, err
	}
	results, err := experiments.CheckReproduction(*scale, out)
	if err != nil {
		return 0, err
	}
	failures := experiments.CountFailures(results)
	fmt.Fprintf(out, "\n%d checks, %d failed\n", len(results), failures)
	return failures, nil
}
