package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunBalanceOnly(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-balance"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Eq. (1)") || !strings.Contains(out, "315") {
		t.Errorf("balance sweep missing:\n%s", out)
	}
	// -balance must not run the (slow) measured part.
	if strings.Contains(out, "with PCIe") {
		t.Error("measured part ran despite -balance")
	}
}

func TestRunMeasured(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.005"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Eq. (3)", "Eq. (4)", "with PCIe", "HMEp"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}
