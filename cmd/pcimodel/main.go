// Command pcimodel explores the §II-B performance model: the code
// balance of Eq. (1), the kernel/PCIe time split of Eq. (2), and the
// N_nzr viability bounds of Eqs. (3) and (4), alongside the measured
// PCIe impact on the simulated device.
//
// Usage:
//
//	pcimodel [-scale 0.1]
//	pcimodel -balance            # Eq. (1) sweep only, no simulation
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pjds/internal/experiments"
	"pjds/internal/perfmodel"
	"pjds/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pcimodel:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pcimodel", flag.ContinueOnError)
	scale := fs.Float64("scale", experiments.DefaultScale, "matrix scale for the measured part")
	balance := fs.Bool("balance", false, "print the Eq. (1) code-balance sweep only")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if err := printBalanceSweep(out); err != nil {
		return err
	}
	if *balance {
		return nil
	}
	fmt.Fprintln(out)
	_, err := experiments.RunSec2B(*scale, out)
	return err
}

// printBalanceSweep renders Eq. (1) over the α × N_nzr plane.
func printBalanceSweep(w io.Writer) error {
	rows := [][]string{{"Nnzr \\ alpha", "1/Nnzr (ideal)", "0.25", "0.5", "1.0 (worst)"}}
	for _, nnzr := range []float64{7, 15, 50, 123, 144, 315} {
		row := []string{fmt.Sprintf("%.0f", nnzr)}
		for _, alpha := range []float64{perfmodel.AlphaIdeal(nnzr), 0.25, 0.5, 1} {
			row = append(row, fmt.Sprintf("%.2f", perfmodel.CodeBalanceDP(alpha, nnzr)))
		}
		rows = append(rows, row)
	}
	fmt.Fprintln(w, "Eq. (1) — double-precision code balance B_W [bytes/flop]")
	return textplot.Table(w, rows)
}
