package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunHistogram(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.01"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"DLR1", "DLR2", "HMEp", "sAMG", "non-zeros per row"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunHistogramBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
