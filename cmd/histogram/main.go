// Command histogram reproduces Fig. 3: the row-length distribution
// histograms (bin size 1, logarithmic relative share) of the DLR1,
// DLR2, HMEp and sAMG test matrices.
//
// Usage:
//
//	histogram [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pjds/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "histogram:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("histogram", flag.ContinueOnError)
	scale := fs.Float64("scale", experiments.DefaultScale, "matrix scale, 1 = published size")
	if err := fs.Parse(args); err != nil {
		return err
	}
	_, err := experiments.RunFig3(*scale, out)
	return err
}
