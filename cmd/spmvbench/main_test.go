package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultIsTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.01"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "data reduction", "ELLPACK-R", "pJDS", "Westmere"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig2AndOutlook(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig2", "-matrix", "sAMG", "-scale", "0.01"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Error("fig2 output missing")
	}
	buf.Reset()
	if err := run([]string{"-outlook", "-scale", "0.005"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"outlook", "CSR-scalar", "BELLPACK", "sliced-ELL"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("outlook output missing %q", want)
		}
	}
}

func TestRunUnknownMatrix(t *testing.T) {
	if err := run([]string{"-fig2", "-matrix", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}
