package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultIsTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.01"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "data reduction", "ELLPACK-R", "pJDS", "Westmere"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig2AndOutlook(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig2", "-matrix", "sAMG", "-scale", "0.01"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Error("fig2 output missing")
	}
	buf.Reset()
	if err := run([]string{"-outlook", "-scale", "0.005"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"outlook", "CSR-scalar", "BELLPACK", "sliced-ELL"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("outlook output missing %q", want)
		}
	}
}

func TestRunUnknownMatrix(t *testing.T) {
	if err := run([]string{"-fig2", "-matrix", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}

// TestRunJSONBench checks the machine-readable benchmark output:
// pjds-bench/v1 schema, 8 entries per Table I matrix, positive GF/s and
// derived bandwidth, and a telemetry dump alongside.
func TestRunJSONBench(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.01", "-json", benchPath, "-metrics-out", metricsPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Scale   float64
		Device  string
		Entries []benchEntry
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid bench JSON: %v", err)
	}
	if doc.Schema != "pjds-bench/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Device == "" {
		t.Error("no device recorded")
	}
	if len(doc.Entries) == 0 || len(doc.Entries)%8 != 0 {
		t.Fatalf("%d entries, want a positive multiple of 8", len(doc.Entries))
	}
	for _, e := range doc.Entries {
		if e.GFlops <= 0 || e.BandwidthGBs <= 0 || e.CodeBalance <= 0 {
			t.Errorf("degenerate entry %+v", e)
		}
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "gpu_kernel_gflops") {
		t.Error("metrics dump missing gpu_kernel_gflops")
	}
}

// TestRunFormatAuto: the format-selection bench sweeps on the first
// run (persisting the DB), answers from the cache on the second, the
// digest gate reports MATCH for every matrix, and the pjds-tune/v1
// artifact carries the auto-vs-pJDS measurements.
func TestRunFormatAuto(t *testing.T) {
	dir := t.TempDir()
	db := filepath.Join(dir, "tuning.jsonl")
	art := filepath.Join(dir, "tune.json")
	var buf bytes.Buffer
	args := []string{"-format", "auto", "-scale", "0.003", "-host-iters", "1",
		"-tuning-db", db, "-tune-json", art}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Format selection benchmark") || !strings.Contains(out, "sweep") {
		t.Fatalf("first run did not sweep:\n%s", out)
	}
	if strings.Contains(out, "MISMATCH") || !strings.Contains(out, "MATCH") {
		t.Fatalf("digest gate failed:\n%s", out)
	}
	raw, err := os.ReadFile(art)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Entries []struct {
			Matrix       string  `json:"matrix"`
			Winner       string  `json:"winner"`
			CacheHit     bool    `json:"cache_hit"`
			AutoNsPerNnz float64 `json:"auto_ns_per_nnz"`
			PJDSNsPerNnz float64 `json:"pjds_ns_per_nnz"`
			DigestMatch  bool    `json:"digest_match"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "pjds-tune/v1" || len(doc.Entries) == 0 {
		t.Fatalf("artifact schema %q with %d entries", doc.Schema, len(doc.Entries))
	}
	for _, e := range doc.Entries {
		if e.Winner == "" || e.AutoNsPerNnz <= 0 || e.PJDSNsPerNnz <= 0 || !e.DigestMatch || e.CacheHit {
			t.Fatalf("degenerate artifact entry %+v", e)
		}
	}
	// Second run: every matrix answers from the DB.
	buf.Reset()
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "hit") || strings.Contains(buf.String(), "sweep\n") {
		t.Fatalf("second run re-swept:\n%s", buf.String())
	}
}

// TestRunFormatFixed: a fixed format name bypasses the tuner but
// still passes the digest gate; an unknown name errors.
func TestRunFormatFixed(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-format", "cmrs", "-scale", "0.003", "-host-iters", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "CMRS-h16") || strings.Contains(buf.String(), "MISMATCH") {
		t.Fatalf("fixed-format run wrong:\n%s", buf.String())
	}
	if err := run([]string{"-format", "bogus", "-scale", "0.003"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
