package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDefaultIsTable1(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.01"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table I", "data reduction", "ELLPACK-R", "pJDS", "Westmere"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunFig2AndOutlook(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fig2", "-matrix", "sAMG", "-scale", "0.01"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Error("fig2 output missing")
	}
	buf.Reset()
	if err := run([]string{"-outlook", "-scale", "0.005"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"outlook", "CSR-scalar", "BELLPACK", "sliced-ELL"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("outlook output missing %q", want)
		}
	}
}

func TestRunUnknownMatrix(t *testing.T) {
	if err := run([]string{"-fig2", "-matrix", "nope"}, &bytes.Buffer{}); err == nil {
		t.Fatal("unknown matrix accepted")
	}
}

// TestRunJSONBench checks the machine-readable benchmark output:
// pjds-bench/v1 schema, 8 entries per Table I matrix, positive GF/s and
// derived bandwidth, and a telemetry dump alongside.
func TestRunJSONBench(t *testing.T) {
	dir := t.TempDir()
	benchPath := filepath.Join(dir, "bench.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	var buf bytes.Buffer
	if err := run([]string{"-scale", "0.01", "-json", benchPath, "-metrics-out", metricsPath}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Schema  string `json:"schema"`
		Scale   float64
		Device  string
		Entries []benchEntry
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid bench JSON: %v", err)
	}
	if doc.Schema != "pjds-bench/v1" {
		t.Errorf("schema = %q", doc.Schema)
	}
	if doc.Device == "" {
		t.Error("no device recorded")
	}
	if len(doc.Entries) == 0 || len(doc.Entries)%8 != 0 {
		t.Fatalf("%d entries, want a positive multiple of 8", len(doc.Entries))
	}
	for _, e := range doc.Entries {
		if e.GFlops <= 0 || e.BandwidthGBs <= 0 || e.CodeBalance <= 0 {
			t.Errorf("degenerate entry %+v", e)
		}
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "gpu_kernel_gflops") {
		t.Error("metrics dump missing gpu_kernel_gflops")
	}
}
