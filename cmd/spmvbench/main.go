// Command spmvbench reproduces the single-GPU format comparison of the
// paper: Table I (data reduction and GF/s for ELLPACK-R vs pJDS in
// SP/DP with ECC on/off, plus the Westmere CRS baseline), the
// quantified Fig. 2 (storage vs hardware utilization), the §IV outlook
// format comparison, and the format-side ablations.
//
// Usage:
//
//	spmvbench -table1 [-scale 0.1]
//	spmvbench -fig2 -matrix sAMG [-scale 0.1]
//	spmvbench -outlook [-scale 0.1]
//	spmvbench -ablations [-matrix sAMG] [-scale 0.05]
//	spmvbench -hostbench [-host-kernel blocked] [-host-iters 5] [-scale 0.1]
//	spmvbench -format auto [-tuning-db .spmv/tuning.jsonl] [-tune-json out.json]
//
// Observability: -json writes the Table I measurements as a
// machine-readable benchmark file, -metrics-out dumps the process-wide
// telemetry registry after the run (Prometheus text, or JSON for .json
// paths), and -metrics-addr serves /metrics, /metrics.json,
// /debug/vars and /debug/pprof live while the run executes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"pjds/internal/experiments"
	"pjds/internal/flight"
	"pjds/internal/gpu"
	"pjds/internal/health"
	"pjds/internal/hostkernel"
	"pjds/internal/par"
	"pjds/internal/profiles"
	"pjds/internal/runledger"
	"pjds/internal/telemetry"
	"pjds/internal/tuner"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spmvbench:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spmvbench", flag.ContinueOnError)
	var (
		scale      = fs.Float64("scale", experiments.DefaultScale, "matrix scale, 1 = published size (UHBR capped by its memory gate)")
		table1     = fs.Bool("table1", false, "reproduce Table I")
		fig2       = fs.Bool("fig2", false, "quantify Fig. 2 on -matrix")
		ablations  = fs.Bool("ablations", false, "run the DESIGN.md format/model ablations")
		outlook    = fs.Bool("outlook", false, "run the §IV outlook format comparison (pJDS vs sliced ELLPACK/ELLR-T/BELLPACK/CSR)")
		matrixArg  = fs.String("matrix", "sAMG", "matrix for -fig2/-ablations: DLR1, DLR2, HMEp, sAMG, UHBR")
		hostBench  = fs.Bool("hostbench", false, "benchmark the CPU host kernels on the Table I matrices (wall-clock on this machine)")
		hostKernel = fs.String("host-kernel", string(hostkernel.KindBlocked), "host kernel for -hostbench and the process default: naive, blocked, sell")
		hostIters  = fs.Int("host-iters", 5, "timed applications per matrix for -hostbench")
		formatArg  = fs.String("format", "", "run the format-selection benchmark: auto (tuner-selected via the tuning DB) or a fixed format (crs, pjds, sell, cmrs)")
		tuningDB   = fs.String("tuning-db", "", "tuning DB path for -format auto (default "+tuner.DefaultPath+")")
		tuneJSON   = fs.String("tune-json", "", "write the -format measurements as machine-readable JSON (pjds-tune/v1) to this file")
		jsonOut    = fs.String("json", "", "write the Table I measurements as machine-readable JSON to this file (implies -table1)")
		metricsOut = fs.String("metrics-out", "", "after the run, dump telemetry here (Prometheus text; .json selects the JSON snapshot)")
		metricsAdr = fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /dashboard, /debug/vars and /debug/pprof on this address during the run")
		workers    = fs.Int("workers", 0, "host goroutines per simulated kernel and format conversion (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
		flightOn   = fs.Bool("flight", false, "enable the always-on flight recorder (/spans on -metrics-addr)")
		flightDump = fs.String("flight-dump", "", "write a post-incident trace here when a severe event fires (implies -flight)")
		cpuProfile = fs.String("cpuprofile", "", "write a phase-labeled CPU profile to this file (perfreport -profile, go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file after the run (after a final GC)")
		ledgerArg  = fs.String("ledger", "", "append this run's record to a JSONL run ledger ('default' = "+runledger.DefaultPath+")")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	gpu.SetDefaultWorkers(*workers)
	par.SetDefault(*workers)
	kind, err := hostkernel.ParseKind(*hostKernel)
	if err != nil {
		return err
	}
	hostkernel.SetDefaultKind(kind)
	// Capture flushes both profiles on SIGINT/SIGTERM too, so an
	// interrupted benchmark still leaves analyzable artifacts.
	capture, err := profiles.StartCapture(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer capture.Stop()
	if *jsonOut != "" {
		*table1 = true
	}
	if !*table1 && !*fig2 && !*ablations && !*outlook && !*hostBench && *formatArg == "" {
		*table1 = true
	}
	if *flightOn || *flightDump != "" {
		rec := flight.Enable(0, 0)
		rec.RegisterHTTP()
		if *flightDump != "" {
			rec.SetDump(flight.DumpConfig{Path: *flightDump, MinSeverity: flight.Error})
		}
		defer func() {
			if p := rec.LastDump(); p != "" {
				fmt.Fprintf(out, "flight recorder dumped %s\n", p)
			}
			flight.Disable()
		}()
	}
	if *metricsAdr != "" {
		eng := health.New(telemetry.Default(), health.Options{})
		eng.RegisterHTTP()
		eng.Start(health.Options{})
		defer eng.Stop()
		srv, err := telemetry.Serve(*metricsAdr, telemetry.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", srv.Addr)
	}
	// Experiment setup (matrix generation, format conversion) runs on
	// this goroutine; the finer phases (gpu replay workers, host
	// kernel pools) carry their own labels.
	profiles.SetPhase(profiles.PhaseConvert)
	defer profiles.Clear()
	if *table1 {
		res, err := experiments.RunTable1(*scale, out)
		if err != nil {
			return err
		}
		if *jsonOut != "" {
			if err := writeBenchJSON(*jsonOut, res); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *jsonOut)
		}
	}
	if *fig2 {
		if _, err := experiments.RunFig2(*matrixArg, *scale, out); err != nil {
			return err
		}
	}
	if *outlook {
		if _, err := experiments.RunFormatComparison(*scale, out); err != nil {
			return err
		}
	}
	if *hostBench {
		if _, err := experiments.RunHostBench(kind, nil, *scale, *hostIters, *workers, out); err != nil {
			return err
		}
	}
	if *formatArg != "" {
		res, err := experiments.RunTuneBench(*formatArg, nil, *scale, *hostIters, *workers, *tuningDB, out)
		if err != nil {
			return err
		}
		if *tuneJSON != "" {
			if err := writeTuneJSON(*tuneJSON, res); err != nil {
				return err
			}
			fmt.Fprintf(out, "wrote %s\n", *tuneJSON)
		}
	}
	if *ablations {
		for _, f := range []func() error{
			func() error { _, err := experiments.AblationL2(*matrixArg, *scale, out); return err },
			func() error { _, err := experiments.AblationSortWindow(*matrixArg, *scale, out); return err },
			func() error { _, err := experiments.AblationBlockHeight(*matrixArg, *scale, out); return err },
			func() error { _, err := experiments.AblationELLRT(*matrixArg, *scale, out); return err },
			func() error { _, err := experiments.AblationRCM("scrambled", *scale, out); return err },
		} {
			if err := f(); err != nil {
				return err
			}
		}
	}
	if *metricsOut != "" {
		if err := telemetry.Default().WriteFile(*metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics to %s\n", *metricsOut)
	}
	if *ledgerArg != "" {
		path := *ledgerArg
		if path == "default" {
			path = runledger.DefaultPath
		}
		entry := runledger.Entry{
			Tool:    "spmvbench",
			Kernel:  string(kind),
			Workers: *workers,
			Scale:   *scale,
			Metrics: runledger.MetricsFromRegistry(telemetry.Default()),
		}
		if *fig2 || *ablations {
			entry.Matrix = *matrixArg
		}
		if err := runledger.Append(path, entry); err != nil {
			return err
		}
		fmt.Fprintf(out, "ledger: appended run to %s\n", path)
	}
	return nil
}

// writeTuneJSON renders a format-selection result as the pjds-tune/v1
// schema: one entry per matrix with the auto pick, the pJDS reference
// it is gated against, and the digest verdict.
func writeTuneJSON(path string, res *experiments.TuneBenchResult) error {
	doc := struct {
		Schema string `json:"schema"`
		*experiments.TuneBenchResult
	}{Schema: "pjds-tune/v1", TuneBenchResult: res}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// benchEntry is one (matrix, format, precision, ecc) measurement of
// the machine-readable benchmark output.
type benchEntry struct {
	Matrix       string  `json:"matrix"`
	Format       string  `json:"format"`
	Precision    string  `json:"precision"`
	ECC          bool    `json:"ecc"`
	GFlops       float64 `json:"gflops"`
	BandwidthGBs float64 `json:"bandwidthGBs"`
	CodeBalance  float64 `json:"codeBalance"`
	Alpha        float64 `json:"alpha"`
}

// writeBenchJSON renders a Table I result as the pjds-bench/v1 schema:
// one entry per (matrix, format, precision, ecc) cell, with the
// derived memory bandwidth alongside the paper's model quantities.
// Entry order follows the table's fixed layout, so output is
// deterministic.
func writeBenchJSON(path string, res *experiments.Table1Result) error {
	doc := struct {
		Schema  string       `json:"schema"`
		Scale   float64      `json:"scale"`
		Device  string       `json:"device"`
		Entries []benchEntry `json:"entries"`
	}{Schema: "pjds-bench/v1", Scale: res.Scale, Entries: []benchEntry{}}
	entry := func(matrix, format, precision string, ecc bool, st gpu.KernelStats) benchEntry {
		e := benchEntry{
			Matrix: matrix, Format: format, Precision: precision, ECC: ecc,
			GFlops:      st.GFlops,
			CodeBalance: st.CodeBalance,
			Alpha:       st.Alpha,
		}
		if st.KernelSeconds > 0 {
			e.BandwidthGBs = float64(st.BytesTotal) / st.KernelSeconds / 1e9
		}
		return e
	}
	for _, r := range res.Rows {
		if doc.Device == "" {
			doc.Device = r.DP.ECCOn.ELLPACKR.Stats.Device
		}
		doc.Entries = append(doc.Entries,
			entry(r.Matrix, "ELLPACK-R", "SP", false, r.SP.ECCOff.ELLPACKR.Stats),
			entry(r.Matrix, "pJDS", "SP", false, r.SP.ECCOff.PJDS.Stats),
			entry(r.Matrix, "ELLPACK-R", "SP", true, r.SP.ECCOn.ELLPACKR.Stats),
			entry(r.Matrix, "pJDS", "SP", true, r.SP.ECCOn.PJDS.Stats),
			entry(r.Matrix, "ELLPACK-R", "DP", false, r.DP.ECCOff.ELLPACKR.Stats),
			entry(r.Matrix, "pJDS", "DP", false, r.DP.ECCOff.PJDS.Stats),
			entry(r.Matrix, "ELLPACK-R", "DP", true, r.DP.ECCOn.ELLPACKR.Stats),
			entry(r.Matrix, "pJDS", "DP", true, r.DP.ECCOn.PJDS.Stats),
		)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(doc)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
