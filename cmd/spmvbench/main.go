// Command spmvbench reproduces the single-GPU format comparison of the
// paper: Table I (data reduction and GF/s for ELLPACK-R vs pJDS in
// SP/DP with ECC on/off, plus the Westmere CRS baseline), the
// quantified Fig. 2 (storage vs hardware utilization), the §IV outlook
// format comparison, and the format-side ablations.
//
// Usage:
//
//	spmvbench -table1 [-scale 0.1]
//	spmvbench -fig2 -matrix sAMG [-scale 0.1]
//	spmvbench -outlook [-scale 0.1]
//	spmvbench -ablations [-matrix sAMG] [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"pjds/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spmvbench:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("spmvbench", flag.ContinueOnError)
	var (
		scale     = fs.Float64("scale", experiments.DefaultScale, "matrix scale, 1 = published size (UHBR capped by its memory gate)")
		table1    = fs.Bool("table1", false, "reproduce Table I")
		fig2      = fs.Bool("fig2", false, "quantify Fig. 2 on -matrix")
		ablations = fs.Bool("ablations", false, "run the DESIGN.md format/model ablations")
		outlook   = fs.Bool("outlook", false, "run the §IV outlook format comparison (pJDS vs sliced ELLPACK/ELLR-T/BELLPACK/CSR)")
		matrixArg = fs.String("matrix", "sAMG", "matrix for -fig2/-ablations: DLR1, DLR2, HMEp, sAMG, UHBR")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*table1 && !*fig2 && !*ablations && !*outlook {
		*table1 = true
	}
	if *table1 {
		if _, err := experiments.RunTable1(*scale, out); err != nil {
			return err
		}
	}
	if *fig2 {
		if _, err := experiments.RunFig2(*matrixArg, *scale, out); err != nil {
			return err
		}
	}
	if *outlook {
		if _, err := experiments.RunFormatComparison(*scale, out); err != nil {
			return err
		}
	}
	if *ablations {
		for _, f := range []func() error{
			func() error { _, err := experiments.AblationL2(*matrixArg, *scale, out); return err },
			func() error { _, err := experiments.AblationSortWindow(*matrixArg, *scale, out); return err },
			func() error { _, err := experiments.AblationBlockHeight(*matrixArg, *scale, out); return err },
			func() error { _, err := experiments.AblationELLRT(*matrixArg, *scale, out); return err },
			func() error { _, err := experiments.AblationRCM("scrambled", *scale, out); return err },
		} {
			if err := f(); err != nil {
				return err
			}
		}
	}
	return nil
}
