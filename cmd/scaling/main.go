// Command scaling reproduces the distributed-memory experiments of
// §III: the strong-scaling curves of Fig. 5 (DLR1 and UHBR, three
// communication schemes), the Fig. 4 task-mode timeline, per-phase
// cost breakdowns, Chrome trace export, the weak-scaling outlook
// study, and the cluster-side ablations.
//
// Usage:
//
//	scaling -matrix dlr1 [-scale 1] [-nodes 1,2,4,8,16,24,32] [-iters 3]
//	scaling -matrix uhbr -format pjds
//	scaling -timeline -matrix dlr1 -timelinenodes 8
//	scaling -breakdown -matrix dlr1 -timelinenodes 16
//	scaling -trace-out out.json -matrix dlr1
//	scaling -weak -matrix dlr1 -basescale 0.03
//	scaling -ablations -matrix dlr1
//
// Observability: -metrics-out dumps the process-wide telemetry
// registry after the run (Prometheus text, or JSON for .json paths),
// -metrics-addr serves /metrics, /metrics.json, /dashboard, /healthz,
// /health, /debug/vars and /debug/pprof live while the run executes,
// and -trace-out writes a Chrome trace of every rank's comm, GPU and
// solver lanes. -flight enables the ring-buffer flight recorder
// (adding /spans), -flight-dump arms a post-incident trace dump on
// severe events, and -hold keeps the endpoint up after the run so
// cmd/spmvtop or a browser on /dashboard can watch the final state.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"pjds/internal/distmv"
	"pjds/internal/distsolver"
	"pjds/internal/experiments"
	"pjds/internal/flight"
	"pjds/internal/gpu"
	"pjds/internal/health"
	"pjds/internal/hostkernel"
	"pjds/internal/mpi"
	"pjds/internal/par"
	"pjds/internal/profiles"
	"pjds/internal/runledger"
	"pjds/internal/simnet"
	"pjds/internal/telemetry"
	"pjds/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}
}

// run executes the tool against the given arguments and output stream.
func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("scaling", flag.ContinueOnError)
	var (
		matrixArg  = fs.String("matrix", "DLR1", "matrix: DLR1 or UHBR (any catalog name accepted)")
		scale      = fs.Float64("scale", experiments.DefaultScale, "matrix scale, 1 = published size")
		nodesArg   = fs.String("nodes", "", "comma-separated node counts (default per matrix)")
		iters      = fs.Int("iters", 3, "timed spMVM iterations")
		formatArg  = fs.String("format", "ellpack-r", "device format: ellpack-r or pjds")
		timeline   = fs.Bool("timeline", false, "print the Fig. 4 task-mode timeline instead of scaling")
		tlNodes    = fs.Int("timelinenodes", 8, "node count for -timeline/-breakdown/-trace")
		breakdown  = fs.Bool("breakdown", false, "print the per-phase cost breakdown of one iteration")
		traceAlias = fs.String("trace", "", "alias for -trace-out")
		traceOut   = fs.String("trace-out", "", "write a Chrome trace-event JSON of a task-mode run plus a short solver phase, all ranks")
		weak       = fs.Bool("weak", false, "run the weak-scaling study instead of Fig. 5's strong scaling")
		baseScale  = fs.Float64("basescale", 0.02, "per-node matrix scale for -weak")
		ablations  = fs.Bool("ablations", false, "run the cluster-side ablations")
		gpusNode   = fs.Int("gpuspernode", 1, "GPUs per physical node (intra-node traffic uses shared memory)")
		perfReport = fs.Bool("perfreport", false, "append a one-line critical-path/overlap summary to each Fig. 5 point (cmd/perfreport gives the full report)")
		metricsOut = fs.String("metrics-out", "", "after the run, dump telemetry here (Prometheus text; .json selects the JSON snapshot)")
		metricsAdr = fs.String("metrics-addr", "", "serve /metrics, /metrics.json, /dashboard, /debug/vars and /debug/pprof on this address during the run")
		workers    = fs.Int("workers", 0, "host goroutines per simulated kernel and format conversion (0 = GOMAXPROCS, 1 = sequential); results are identical for any value")
		hostKernel = fs.String("host-kernel", string(hostkernel.KindBlocked), "CPU kernel for host-side spMVM paths: naive, blocked, sell; results are identical for any value")
		flightOn   = fs.Bool("flight", false, "enable the always-on flight recorder (/spans on -metrics-addr)")
		flightDump = fs.String("flight-dump", "", "write a post-incident trace here when a severe event fires (implies -flight)")
		hold       = fs.Duration("hold", 0, "keep the -metrics-addr endpoint serving this long after the run (live dashboards)")
		cpuProfile = fs.String("cpuprofile", "", "write a phase-labeled CPU profile to this file (perfreport -profile, go tool pprof)")
		memProfile = fs.String("memprofile", "", "write a heap profile to this file after the run (after a final GC)")
		ledgerArg  = fs.String("ledger", "", "append this run's record to a JSONL run ledger ('default' = "+runledger.DefaultPath+")")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	gpu.SetDefaultWorkers(*workers)
	par.SetDefault(*workers)
	kind, err := hostkernel.ParseKind(*hostKernel)
	if err != nil {
		return err
	}
	hostkernel.SetDefaultKind(kind)
	if *traceOut == "" {
		*traceOut = *traceAlias
	}
	capture, err := profiles.StartCapture(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer capture.Stop()

	format := distmv.FormatELLPACKR
	switch strings.ToLower(*formatArg) {
	case "ellpack-r", "ellpackr":
	case "pjds":
		format = distmv.FormatPJDS
	default:
		return fmt.Errorf("unknown format %q", *formatArg)
	}

	if *flightOn || *flightDump != "" {
		rec := flight.Enable(0, 0)
		rec.RegisterHTTP()
		if *flightDump != "" {
			rec.SetDump(flight.DumpConfig{Path: *flightDump, MinSeverity: flight.Error})
		}
		defer func() {
			if p := rec.LastDump(); p != "" {
				fmt.Fprintf(out, "flight recorder dumped %s\n", p)
			}
			flight.Disable()
		}()
	}
	ledgerPath := *ledgerArg
	if ledgerPath == "default" {
		ledgerPath = runledger.DefaultPath
	}
	if *metricsAdr != "" {
		eng := health.New(telemetry.Default(), health.Options{})
		eng.RegisterHTTP()
		eng.Start(health.Options{})
		defer eng.Stop()
		// /trends.json: cross-run history for the dashboard — the
		// checked-in BENCH_PR*.json trajectory plus whatever ledger
		// this (or any earlier) run appends to.
		trendLedger := ledgerPath
		if trendLedger == "" {
			trendLedger = runledger.DefaultPath
		}
		telemetry.RegisterHandler("/trends.json",
			runledger.TrendHandler(trendLedger, trendBaseline(), runledger.TrendOptions{}))
		srv, err := telemetry.Serve(*metricsAdr, telemetry.Default())
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "metrics on http://%s/metrics\n", srv.Addr)
		if *hold > 0 {
			defer func() {
				fmt.Fprintf(out, "holding endpoint for %s (spmvtop -addr %s)\n", *hold, srv.Addr)
				time.Sleep(*hold)
			}()
		}
	}

	dispatch := func() error {
		switch {
		case *breakdown:
			return runBreakdown(out, *matrixArg, *scale, *tlNodes, format, *gpusNode)
		case *timeline:
			_, err := experiments.RunFig4Timeline(*matrixArg, *scale, *tlNodes, out)
			return err
		case *traceOut != "":
			return runTrace(out, *traceOut, *matrixArg, *scale, *tlNodes, format)
		case *ablations:
			if _, err := experiments.AblationMPIProgress(*matrixArg, *scale, 8, out); err != nil {
				return err
			}
			if _, err := experiments.AblationOccupancy(*matrixArg, *scale, 8, out); err != nil {
				return err
			}
			_, err := experiments.AblationPartition(*scale, 8, out)
			return err
		}

		nodes, err := parseNodes(*nodesArg, *matrixArg)
		if err != nil {
			return err
		}
		if *weak {
			_, err := experiments.RunWeakScaling(experiments.WeakConfig{
				Matrix:     *matrixArg,
				BaseScale:  *baseScale,
				Nodes:      nodes,
				Iterations: *iters,
				Format:     format,
			}, out)
			return err
		}
		_, err = experiments.RunFig5(experiments.Fig5Config{
			Matrix:     *matrixArg,
			Scale:      *scale,
			Nodes:      nodes,
			Iterations: *iters,
			Format:     format,
			PerfReport: *perfReport,
		}, out)
		return err
	}
	// Matrix generation and conversion happen on this goroutine; the
	// rank goroutines and GPU replay workers label themselves.
	profiles.SetPhase(profiles.PhaseConvert)
	defer profiles.Clear()
	if err := dispatch(); err != nil {
		return err
	}
	if *metricsOut != "" {
		if err := telemetry.Default().WriteFile(*metricsOut); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote metrics to %s\n", *metricsOut)
	}
	if ledgerPath != "" {
		if err := runledger.Append(ledgerPath, runledger.Entry{
			Tool:    "scaling",
			Matrix:  *matrixArg,
			Format:  format.String(),
			Kernel:  string(kind),
			Workers: *workers,
			Scale:   *scale,
			Metrics: runledger.MetricsFromRegistry(telemetry.Default()),
		}); err != nil {
			return err
		}
		fmt.Fprintf(out, "ledger: appended run to %s\n", ledgerPath)
	}
	return nil
}

// trendBaseline loads the checked-in BENCH_PR*.json trajectory in PR
// order as the fixed prefix of the /trends.json history.
func trendBaseline() []runledger.Source {
	paths, _ := filepath.Glob("BENCH_PR*.json")
	type numbered struct {
		path string
		n    int
	}
	var ordered []numbered
	for _, p := range paths {
		base := strings.TrimSuffix(filepath.Base(p), ".json")
		num := strings.TrimPrefix(base, "BENCH_PR")
		n, err := strconv.Atoi(num)
		if err != nil {
			continue // skip e.g. BENCH_PR1.metrics.json
		}
		ordered = append(ordered, numbered{p, n})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].n < ordered[j].n })
	var out []runledger.Source
	for _, o := range ordered {
		doc, err := os.ReadFile(o.path)
		if err != nil {
			continue
		}
		src, err := runledger.SourceFromJSON(filepath.Base(o.path), doc)
		if err != nil {
			continue
		}
		out = append(out, src)
	}
	return out
}

// runBreakdown prints the per-phase costs of one iteration per mode.
func runBreakdown(out io.Writer, name string, scale float64, nodes int, format distmv.FormatKind, gpusPerNode int) error {
	m, err := experiments.Matrix(name, scale)
	if err != nil {
		return err
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1
	}
	for _, mode := range distmv.Modes() {
		res, err := distmv.RunSpMVM(m, x, nodes, mode, distmv.Config{
			Iterations: 1, Format: format, GPUsPerNode: gpusPerNode,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "\n%s on %d nodes (%.3g s/iter, %.2f GF/s):\n", mode, nodes, res.PerIterSeconds, res.GFlops)
		for phase, sec := range res.Breakdown() {
			fmt.Fprintf(out, "  %-18s %8.1f us (%.0f%%)\n", phase, 1e6*sec, 100*sec/res.PerIterSeconds)
		}
	}
	return nil
}

// runTrace writes a Chrome trace-event file covering every rank: a
// task-mode spMVM run (comm and GPU lanes), followed by a short
// distributed power-iteration phase (solver lane) stitched onto the
// end of the same timeline.
func runTrace(out io.Writer, path, name string, scale float64, nodes int, format distmv.FormatKind) error {
	m, err := experiments.Matrix(name, scale)
	if err != nil {
		return err
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1
	}
	spans := telemetry.NewSpanLog()
	cfg := distmv.Config{Iterations: 1, Format: format, Spans: spans}
	res, err := distmv.RunSpMVM(m, x, nodes, distmv.TaskMode, cfg)
	if err != nil {
		return err
	}

	// Solver phase: a few power-iteration steps per rank, recorded on
	// a fresh clock and appended after the benchmark loop.
	pt, err := distmv.PartitionByNnz(m, nodes)
	if err != nil {
		return err
	}
	problems, err := distmv.Distribute(m, pt)
	if err != nil {
		return err
	}
	solverSpans := telemetry.NewSpanLog()
	_, err = mpi.RunWithOptions(nodes, simnet.QDRInfiniBand(), mpi.Options{Spans: solverSpans}, func(c *mpi.Comm) error {
		inst := &distsolver.Instrument{Spans: solverSpans}
		_, err := distsolver.PowerIteration(c, problems[c.Rank()], nil, 0, 5, inst)
		if err != nil && !errors.Is(err, distsolver.ErrNotConverged) {
			return err
		}
		return nil
	})
	if err != nil {
		return err
	}
	spans.AppendShifted(solverSpans, spans.MaxEnd())

	meta := trace.Meta{
		Processes: map[int]string{},
		LaneNames: map[string]string{
			"host":   "host thread 0 (MPI)",
			"gpu":    "GPU stream",
			"solver": "solver",
		},
		Other: map[string]any{
			"nodes":          res.P,
			"iterations":     res.Iterations,
			"gflops":         res.GFlops,
			"perIterSeconds": res.PerIterSeconds,
		},
	}
	for r := 0; r < nodes; r++ {
		meta.Processes[r] = fmt.Sprintf("rank %d (%s, %s, P=%d)", r, res.Mode, res.Format, res.P)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteSpans(f, spans.Spans(), meta); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (open in chrome://tracing or Perfetto)\n", path)
	return nil
}

// parseNodes parses "-nodes 1,2,4" or picks the paper's per-matrix
// default (UHBR does not fit below 5 C2050 nodes at full scale, so its
// sweep starts there, as in Fig. 5b).
func parseNodes(arg, matrix string) ([]int, error) {
	if arg == "" {
		if strings.EqualFold(matrix, "uhbr") {
			return []int{5, 8, 12, 16, 20, 24, 28, 32}, nil
		}
		return []int{1, 2, 4, 8, 12, 16, 20, 24, 28, 32}, nil
	}
	var nodes []int
	for _, f := range strings.Split(arg, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad node count %q", f)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}
