package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStrongScaling(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-matrix", "dlr1", "-scale", "0.01", "-nodes", "1,2", "-iters", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Task mode", "Vector mode", "Fig. 5", "GF/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTimelineAndBreakdown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-timeline", "-matrix", "dlr1", "-scale", "0.01", "-timelinenodes", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 4") {
		t.Error("timeline output missing")
	}
	buf.Reset()
	if err := run([]string{"-breakdown", "-matrix", "dlr1", "-scale", "0.01", "-timelinenodes", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "local spMVM") {
		t.Error("breakdown output missing")
	}
}

func TestRunTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-matrix", "dlr1", "-scale", "0.01", "-timelinenodes", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if doc["traceEvents"] == nil {
		t.Error("no traceEvents")
	}
}

func TestRunWeakFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-weak", "-matrix", "dlr1", "-basescale", "0.005", "-nodes", "1,2", "-iters", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Weak scaling") {
		t.Error("weak output missing")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-format", "weird"}, &bytes.Buffer{}); err == nil {
		t.Error("bad format accepted")
	}
	if err := run([]string{"-nodes", "0,2"}, &bytes.Buffer{}); err == nil {
		t.Error("bad node list accepted")
	}
}
