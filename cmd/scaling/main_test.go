package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunStrongScaling(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-matrix", "dlr1", "-scale", "0.01", "-nodes", "1,2", "-iters", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Task mode", "Vector mode", "Fig. 5", "GF/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunTimelineAndBreakdown(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-timeline", "-matrix", "dlr1", "-scale", "0.01", "-timelinenodes", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Fig. 4") {
		t.Error("timeline output missing")
	}
	buf.Reset()
	if err := run([]string{"-breakdown", "-matrix", "dlr1", "-scale", "0.01", "-timelinenodes", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "local spMVM") {
		t.Error("breakdown output missing")
	}
}

func TestRunTraceExport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var buf bytes.Buffer
	if err := run([]string{"-trace", path, "-matrix", "dlr1", "-scale", "0.01", "-timelinenodes", "2"}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	if doc["traceEvents"] == nil {
		t.Error("no traceEvents")
	}
}

func TestRunWeakFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-weak", "-matrix", "dlr1", "-basescale", "0.005", "-nodes", "1,2", "-iters", "1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Weak scaling") {
		t.Error("weak output missing")
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	if err := run([]string{"-format", "weird"}, &bytes.Buffer{}); err == nil {
		t.Error("bad format accepted")
	}
	if err := run([]string{"-nodes", "0,2"}, &bytes.Buffer{}); err == nil {
		t.Error("bad node list accepted")
	}
}

// TestRunTraceOutAllLanes is the acceptance check for -trace-out: one
// run must yield a valid Chrome trace containing comm, gpu AND solver
// events for every rank, plus -metrics-out must produce a parseable
// telemetry snapshot.
func TestRunTraceOutAllLanes(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.json")
	const nodes = 3
	var buf bytes.Buffer
	if err := run([]string{
		"-trace-out", tracePath, "-metrics-out", metricsPath,
		"-matrix", "dlr1", "-scale", "0.01", "-timelinenodes", "3",
	}, &buf); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	cats := map[int]map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e["ph"] != "X" {
			continue
		}
		pid := int(e["pid"].(float64))
		if cats[pid] == nil {
			cats[pid] = map[string]bool{}
		}
		cats[pid][e["cat"].(string)] = true
	}
	for r := 0; r < nodes; r++ {
		for _, cat := range []string{"comm", "gpu", "solver"} {
			if !cats[r][cat] {
				t.Errorf("rank %d: no %q events in trace", r, cat)
			}
		}
	}
	mdata, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap map[string]any
	if err := json.Unmarshal(mdata, &snap); err != nil {
		t.Fatalf("invalid metrics JSON: %v", err)
	}
	if len(snap) == 0 {
		t.Error("metrics snapshot is empty")
	}
}
