package pjds

import (
	"bytes"
	"math"
	"testing"
)

// TestFacadeEndToEnd walks the README quick-start path through the
// public API: generate, convert, simulate, verify.
func TestFacadeEndToEnd(t *testing.T) {
	m := Generate("sAMG", 0.01)
	st := ComputeStats(m)
	if st.Rows == 0 || st.Nnz == 0 {
		t.Fatal("empty generated matrix")
	}
	p, err := NewPJDS(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + math.Sin(float64(i))
	}
	dev := TeslaC2070()
	yp := make([]float64, p.NPad)
	ks, err := RunPJDS(dev, p, yp, x)
	if err != nil {
		t.Fatal(err)
	}
	if ks.GFlops <= 0 {
		t.Error("no performance estimate")
	}
	// Scatter back and compare with the reference.
	y := make([]float64, m.NRows)
	for i, old := range p.Perm {
		y[old] = yp[i]
	}
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-ref[i]) > 1e-10*(1+math.Abs(ref[i])) {
			t.Fatalf("y[%d] mismatch", i)
		}
	}
}

func TestFacadeFormats(t *testing.T) {
	m := Generate("DLR1", 0.01)
	ell := NewELLPACK(m)
	ellr := NewELLPACKR(m)
	p, err := NewPJDS(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	jds, err := NewJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	sell, err := NewSlicedELL(m, 32, m.NRows)
	if err != nil {
		t.Fatal(err)
	}
	red := DataReduction(ell, p)
	if red <= 0 || red >= 1 {
		t.Errorf("reduction = %g", red)
	}
	for _, f := range []Format{ell, ellr, p, jds, sell} {
		if f.NonZeros() != m.Nnz() {
			t.Errorf("%s: nnz mismatch", f.Name())
		}
	}
}

func TestFacadeSolver(t *testing.T) {
	m := Stencil2D(20, 20)
	op, err := NewPermutedPJDS(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	n := m.NRows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	bp := op.Enter(make([]float64, n), b)
	xp := make([]float64, n)
	if _, err := CG(op, xp, bp, 1e-10, 2000); err != nil {
		t.Fatal(err)
	}
	x := op.Leave(make([]float64, n), xp)
	// Verify A·x = b.
	ax := make([]float64, n)
	if err := m.MulVec(ax, x); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6 {
			t.Fatalf("residual at %d: %g", i, ax[i]-b[i])
		}
	}
	// Eigen paths.
	lr, err := Lanczos(op, 30, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.RitzValues) == 0 {
		t.Error("no Ritz values")
	}
	if _, err := PowerIteration(op, nil, 1e-8, 5000); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCluster(t *testing.T) {
	m := Generate("sAMG", 0.005)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i%5) + 1
	}
	res, err := RunCluster(m, x, 4, TaskMode, ClusterConfig{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	for i := range ref {
		if math.Abs(res.Y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
			t.Fatalf("cluster y[%d] mismatch", i)
		}
	}
	if QDRInfiniBand().Validate() != nil || PCIeGen2x16().Validate() != nil {
		t.Error("default models invalid")
	}
	if TeslaC2050().MemBytes >= TeslaC2070().MemBytes {
		t.Error("device presets")
	}
	if TeslaC1060().L2 != nil {
		t.Error("C1060 preset")
	}
}

func TestFacadeDistributedSolvers(t *testing.T) {
	m := Stencil2D(30, 30)
	n := m.NRows
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(0.04 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	problems, err := Distribute(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]float64, n)
	if _, err := RunRanks(4, func(c *ClusterComm) error {
		rp := problems[c.Rank()]
		x := make([]float64, rp.LocalRows())
		if _, err := DistributedCG(c, rp, x, b[rp.RowLo:rp.RowHi], 1e-10, 4000); err != nil {
			return err
		}
		copy(got[rp.RowLo:rp.RowHi], x)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Power iteration facade path.
	if _, err := RunRanks(2, func(c *ClusterComm) error {
		problems2, err := Distribute(m, 2)
		if err != nil {
			return err
		}
		_, err = DistributedPowerIteration(c, problems2[c.Rank()], nil, 1e-6, 5000)
		return err
	}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeNewFormats(t *testing.T) {
	m := Generate("DLR2", 0.003)
	bell, err := NewBELLPACK(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	ert, err := NewELLRT(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1
	}
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	d := TeslaC2070()
	for _, run := range []func(y []float64) (*KernelStats, error){
		func(y []float64) (*KernelStats, error) { return RunBELLPACK(d, bell, y, x) },
		func(y []float64) (*KernelStats, error) { return RunELLRT(d, ert, y, x) },
	} {
		y := make([]float64, m.NRows)
		st, err := run(y)
		if err != nil {
			t.Fatal(err)
		}
		if st.GFlops <= 0 {
			t.Error("no estimate")
		}
		for i := range y {
			if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
				t.Fatalf("mismatch at %d", i)
			}
		}
	}
	// GMRES + RCM facade paths.
	p := RCM(m)
	if !p.Valid() {
		t.Fatal("invalid RCM perm")
	}
	xg := make([]float64, m.NRows)
	if _, err := GMRES(csrOp{m}, xg, ref, 30, 1e-8, 4000, NewJacobi(m)); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if math.Abs(xg[i]-x[i]) > 1e-5 {
			t.Fatalf("GMRES solution off at %d", i)
		}
	}
}

func TestFacadeMatrixMarketRoundTrip(t *testing.T) {
	m := Generate("sAMG", 0.002)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back, 0) {
		t.Fatal("round trip changed matrix")
	}
	coo := NewCOO(2, 2)
	coo.Add(0, 1, 3)
	if coo.ToCSR().At(0, 1) != 3 {
		t.Error("COO path")
	}
}

func TestGenerateUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate("nope", 1)
}
