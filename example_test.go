package pjds_test

// Testable examples: these run under `go test` and render in godoc as
// the package's documentation examples.

import (
	"fmt"
	"math"

	"pjds"
)

// ExampleNewPJDS shows the core conversion: the Fig. 1 derivation on a
// tiny matrix and the storage the format saves over ELLPACK.
func ExampleNewPJDS() {
	coo := pjds.NewCOO(4, 4)
	coo.Add(0, 0, 1) // short row
	for j := 0; j < 4; j++ {
		coo.Add(1, j, 2) // full row
	}
	coo.Add(2, 2, 3)
	coo.Add(3, 1, 4)
	coo.Add(3, 3, 5)
	m := coo.ToCSR()

	p, _ := pjds.NewPJDS(m, pjds.Options{BlockHeight: 2})
	ell := pjds.NewELLPACK(m)
	fmt.Println("perm:", p.Perm)
	fmt.Println("pJDS slots:", p.StoredElems(), "ELLPACK slots:", ell.StoredElems())
	// Output:
	// perm: [1 3 0 2]
	// pJDS slots: 10 ELLPACK slots: 128
}

// ExampleRunPJDS simulates one spMVM on the Fermi device and prints
// the model's performance verdict.
func ExampleRunPJDS() {
	m := pjds.Stencil2D(64, 64)
	p, _ := pjds.NewPJDS(m, pjds.Options{})
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1
	}
	yp := make([]float64, p.NPad)
	st, _ := pjds.RunPJDS(pjds.TeslaC2070(), p, yp, x)
	fmt.Println("kernel:", st.Kernel)
	fmt.Println("bytes per flop in a sane range:", st.CodeBalance > 5 && st.CodeBalance < 12)
	// Output:
	// kernel: pJDS
	// bytes per flop in a sane range: true
}

// ExampleCG solves a Poisson system entirely in the pJDS-permuted
// basis, the §II-A workflow.
func ExampleCG() {
	m := pjds.Stencil2D(20, 20)
	op, _ := pjds.NewPermutedPJDS(m, pjds.Options{})
	n := m.NRows
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	bp := op.Enter(make([]float64, n), b)
	xp := make([]float64, n)
	res, _ := pjds.CG(op, xp, bp, 1e-10, 2000)
	x := op.Leave(make([]float64, n), xp)

	// Verify the residual in the original basis.
	ax := make([]float64, n)
	_ = m.MulVec(ax, x)
	worst := 0.0
	for i := range b {
		if d := math.Abs(ax[i] - b[i]); d > worst {
			worst = d
		}
	}
	fmt.Println("converged:", res.Residual < 1e-7, "max residual below 1e-6:", worst < 1e-6)
	// Output:
	// converged: true max residual below 1e-6: true
}

// ExampleRunCluster distributes an spMVM over four simulated GPU
// nodes in task mode.
func ExampleRunCluster() {
	m := pjds.Generate("sAMG", 0.005)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1
	}
	res, _ := pjds.RunCluster(m, x, 4, pjds.TaskMode, pjds.ClusterConfig{Iterations: 1})
	ref := make([]float64, m.NRows)
	_ = m.MulVec(ref, x)
	exact := true
	for i := range ref {
		if math.Abs(res.Y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
			exact = false
		}
	}
	fmt.Println("nodes:", res.P, "matches serial:", exact)
	// Output:
	// nodes: 4 matches serial: true
}

// ExampleRecommend applies the paper's §II guidance to a matrix.
func ExampleRecommend() {
	m := pjds.Generate("sAMG", 0.01) // N_nzr ≈ 7: PCIe-dominated
	rec := pjds.Recommend(pjds.ComputeStats(m))
	fmt.Println("offload:", rec.Offload)
	fmt.Println("format:", rec.Format)
	// Output:
	// offload: stay on CPU
	// format: pJDS
}
