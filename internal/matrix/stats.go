package matrix

import (
	"fmt"
	"math"
	"sort"
)

// Stats summarizes the sparsity structure of a matrix with the
// quantities the paper reports and reasons with: dimension, Nnz, the
// average / maximum / minimum row lengths (N_nzr, N^max_nzr), the
// relative row-length width max/min that §II-A uses to predict pJDS
// gains, and bandwidth/locality measures that drive RHS cache reuse.
type Stats struct {
	Rows, Cols int
	Nnz        int
	AvgRowLen  float64 // the paper's N_nzr
	MaxRowLen  int     // the paper's N^max_nzr
	MinRowLen  int
	// RelativeWidth is max(rowLen)/min(rowLen); the paper quotes ≈2 for
	// DLR1 and >4 for sAMG as the predictor of pJDS data reduction.
	RelativeWidth float64
	// RowLenStdDev is the standard deviation of the row lengths; large
	// values mean warp-level imbalance under ELLPACK-R.
	RowLenStdDev float64
	// Bandwidth is max |i - j| over stored entries: RHS locality proxy.
	Bandwidth int
	// AvgColSpan is the mean over rows of (max col − min col), a finer
	// locality proxy for the cache model's α parameter.
	AvgColSpan float64
}

// ComputeStats scans the matrix once and fills a Stats.
func ComputeStats[T Float](m *CSR[T]) Stats {
	s := Stats{Rows: m.NRows, Cols: m.NCols, Nnz: m.Nnz()}
	if m.NRows == 0 {
		return s
	}
	s.AvgRowLen = m.AvgRowLen()
	s.MinRowLen = math.MaxInt
	var sumSq float64
	var spanSum float64
	for i := 0; i < m.NRows; i++ {
		l := m.RowLen(i)
		if l > s.MaxRowLen {
			s.MaxRowLen = l
		}
		if l < s.MinRowLen {
			s.MinRowLen = l
		}
		d := float64(l) - s.AvgRowLen
		sumSq += d * d
		cols, _ := m.Row(i)
		if len(cols) > 0 {
			minC, maxC := cols[0], cols[0]
			for _, c := range cols {
				if c < minC {
					minC = c
				}
				if c > maxC {
					maxC = c
				}
				if bw := int(math.Abs(float64(int(c) - i))); bw > s.Bandwidth {
					s.Bandwidth = bw
				}
			}
			spanSum += float64(maxC - minC)
		}
	}
	s.RowLenStdDev = math.Sqrt(sumSq / float64(m.NRows))
	s.AvgColSpan = spanSum / float64(m.NRows)
	if s.MinRowLen > 0 {
		s.RelativeWidth = float64(s.MaxRowLen) / float64(s.MinRowLen)
	} else {
		s.RelativeWidth = math.Inf(1)
	}
	return s
}

// String renders the statistics in a compact single-matrix report.
func (s Stats) String() string {
	return fmt.Sprintf("N=%d Nnz=%d Nnzr=%.1f max=%d min=%d width=%.1f sigma=%.1f bw=%d",
		s.Rows, s.Nnz, s.AvgRowLen, s.MaxRowLen, s.MinRowLen, s.RelativeWidth, s.RowLenStdDev, s.Bandwidth)
}

// RowLenHistogram counts rows per stored-length bin with bin size 1,
// exactly as in the paper's Fig. 3. Index l of the returned slice is
// the number of rows with l non-zeros.
func RowLenHistogram[T Float](m *CSR[T]) []int {
	h := make([]int, m.MaxRowLen()+1)
	for i := 0; i < m.NRows; i++ {
		h[m.RowLen(i)]++
	}
	return h
}

// RowLenQuantile returns the q-quantile (0 ≤ q ≤ 1) of the row-length
// distribution, used to verify generator targets such as "80% of the
// rows have a length of 0.8·N^max_nzr" (DLR1, §II-A).
func RowLenQuantile[T Float](m *CSR[T], q float64) int {
	lens := make([]int, m.NRows)
	for i := range lens {
		lens[i] = m.RowLen(i)
	}
	sort.Ints(lens)
	if len(lens) == 0 {
		return 0
	}
	idx := int(q * float64(len(lens)-1))
	return lens[idx]
}
