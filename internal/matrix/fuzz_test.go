package matrix

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMatrixMarket hardens the text parser: arbitrary input must
// either fail cleanly or produce a matrix that round-trips through the
// writer byte-stably.
func FuzzReadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.5\n2 2 -3\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 3\n")
	f.Add("%%MatrixMarket matrix coordinate integer general\n1 1 1\n1 1 7\n")
	f.Add("%%MatrixMarket matrix coordinate real general\n% comment\n\n2 2 0\n")
	f.Add("garbage")
	f.Add("%%MatrixMarket matrix coordinate real general\n1000000000 1000000000 1\n1 1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := ReadMatrixMarket[float64](strings.NewReader(in))
		if err != nil {
			// The parallel parse must fail whenever the default parse
			// fails (same acceptance, not just same matrices).
			if _, _, perr := ReadMatrixMarketOpt[float64](strings.NewReader(in),
				ConvertOptions{Workers: 3, ForceParallel: true}); perr == nil {
				t.Fatalf("parallel parse accepted input the default parse rejects: %q", in)
			}
			return
		}
		// Parsed successfully: the result must be a structurally valid
		// CSR and survive a write/read cycle unchanged.
		if m.RowPtr[m.NRows] != m.Nnz() {
			t.Fatalf("inconsistent CSR from %q", in)
		}
		// The explicitly-parallel parse must agree bit for bit.
		pm, _, err := ReadMatrixMarketOpt[float64](strings.NewReader(in),
			ConvertOptions{Workers: 3, ForceParallel: true})
		if err != nil {
			t.Fatalf("parallel parse rejected accepted input %q: %v", in, err)
		}
		if !m.Equal(pm, 0) {
			t.Fatalf("parallel parse differs for %q", in)
		}
		var buf bytes.Buffer
		if err := WriteMatrixMarket(&buf, m); err != nil {
			t.Fatalf("write failed for parsed input: %v", err)
		}
		back, err := ReadMatrixMarket[float64](&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if !m.Equal(back, 0) {
			t.Fatalf("round trip unstable for %q", in)
		}
	})
}

// FuzzReadBinary hardens the binary container parser against arbitrary
// bytes (it must never panic or allocate absurdly).
func FuzzReadBinary(f *testing.F) {
	m := randomCSR(5, 5, 0.4, 73)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PJDSCSR1"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, m); err != nil {
			t.Fatalf("write failed: %v", err)
		}
		back, err := ReadBinary(&out)
		if err != nil || !m.Equal(back, 0) {
			t.Fatal("binary round trip unstable")
		}
	})
}
