package matrix

import "fmt"

// Perm is a permutation of [0, n): Perm[new] = old. Applying a Perm to
// a vector gathers elements from their old positions into the new
// order. The pJDS format stores its row-sorting permutation as a Perm
// so that iterative solvers can move in and out of the permuted basis
// exactly once, as §II-A of the paper prescribes.
type Perm []int

// Identity returns the identity permutation of size n.
func Identity(n int) Perm {
	p := make(Perm, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// Valid reports whether p is a bijection on [0, len(p)).
func (p Perm) Valid() bool {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Inverse returns q with q[p[i]] = i.
func (p Perm) Inverse() Perm {
	q := make(Perm, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Compose returns the permutation r = p∘q, i.e. r[i] = q[p[i]]:
// applying r is equivalent to applying p, then q to the result.
func (p Perm) Compose(q Perm) Perm {
	if len(p) != len(q) {
		panic(fmt.Sprintf("matrix: composing permutations of size %d and %d", len(p), len(q)))
	}
	r := make(Perm, len(p))
	for i := range r {
		r[i] = q[p[i]]
	}
	return r
}

// Gather writes dst[i] = src[p[i]] and returns dst. dst and src must
// not alias.
func Gather[T Float](dst, src []T, p Perm) []T {
	if len(dst) != len(p) || len(src) != len(p) {
		panic(fmt.Sprintf("matrix: Gather sizes dst=%d src=%d p=%d", len(dst), len(src), len(p)))
	}
	for i, v := range p {
		dst[i] = src[v]
	}
	return dst
}

// Scatter writes dst[p[i]] = src[i] and returns dst, the inverse
// motion of Gather. dst and src must not alias.
func Scatter[T Float](dst, src []T, p Perm) []T {
	if len(dst) != len(p) || len(src) != len(p) {
		panic(fmt.Sprintf("matrix: Scatter sizes dst=%d src=%d p=%d", len(dst), len(src), len(p)))
	}
	for i, v := range p {
		dst[v] = src[i]
	}
	return dst
}

// PermuteRows returns the matrix whose row i is row p[i] of m.
func PermuteRows[T Float](m *CSR[T], p Perm) *CSR[T] {
	if len(p) != m.NRows {
		panic(fmt.Sprintf("matrix: row permutation size %d on %d rows", len(p), m.NRows))
	}
	out := &CSR[T]{
		NRows:  m.NRows,
		NCols:  m.NCols,
		RowPtr: make([]int, m.NRows+1),
		ColIdx: make([]int32, m.Nnz()),
		Val:    make([]T, m.Nnz()),
	}
	for i, old := range p {
		out.RowPtr[i+1] = out.RowPtr[i] + m.RowLen(old)
	}
	for i, old := range p {
		lo, hi := m.RowPtr[old], m.RowPtr[old+1]
		copy(out.ColIdx[out.RowPtr[i]:], m.ColIdx[lo:hi])
		copy(out.Val[out.RowPtr[i]:], m.Val[lo:hi])
	}
	return out
}

// PermuteSymmetric returns P·A·Pᵀ for the permutation p: rows are
// reordered with PermuteRows and every column index c is renamed to
// p⁻¹(c). A symmetric permutation preserves eigenvalues, which is why
// solvers can run entirely in the pJDS-permuted basis.
func PermuteSymmetric[T Float](m *CSR[T], p Perm) *CSR[T] {
	if m.NRows != m.NCols {
		panic("matrix: symmetric permutation of a non-square matrix")
	}
	out := PermuteRows(m, p)
	inv := p.Inverse()
	for k, c := range out.ColIdx {
		out.ColIdx[k] = int32(inv[c])
	}
	// Re-sort column indices within each row (renaming breaks order).
	for i := 0; i < out.NRows; i++ {
		lo, hi := out.RowPtr[i], out.RowPtr[i+1]
		sortRow(out.ColIdx[lo:hi], out.Val[lo:hi])
	}
	return out
}

// sortRow sorts a (cols, vals) pair by column index using insertion
// sort; rows are short and nearly sorted after renaming.
func sortRow[T Float](cols []int32, vals []T) {
	for i := 1; i < len(cols); i++ {
		c, v := cols[i], vals[i]
		j := i - 1
		for j >= 0 && cols[j] > c {
			cols[j+1], vals[j+1] = cols[j], vals[j]
			j--
		}
		cols[j+1], vals[j+1] = c, v
	}
}

// SortRowsByLengthDesc returns a permutation ordering rows by
// descending stored length, breaking ties by ascending original row
// index. This is the pJDS "sort" step of Fig. 1; the stable tie-break
// keeps the construction deterministic.
func SortRowsByLengthDesc[T Float](m *CSR[T]) Perm {
	return SortRowsByLengthDescOpt(m, ConvertOptions{})
}

// SortRowsByLengthDescOpt is SortRowsByLengthDesc with explicit
// conversion options. The sort is a parallel stable counting sort:
// every worker histograms its own contiguous row block, an exclusive
// scan over (bucket, worker) assigns each worker its disjoint output
// slots per bucket, and the placement pass then runs with no
// synchronization. Ascending row order within each worker block plus
// the worker-major scan order reproduce exactly the sequential stable
// tie-break, so the permutation is identical for every worker count.
func SortRowsByLengthDescOpt[T Float](m *CSR[T], opt ConvertOptions) Perm {
	n := m.NRows
	p := make(Perm, n)
	if n == 0 {
		return p
	}
	done := opt.Phase("jds-sort")
	defer done()

	workers := opt.EffectiveWorkers()
	if workers > n {
		workers = n
	}
	// Pin the resolved count so every Run below uses one block split.
	opt.Workers = workers
	lens := opt.Arena.Int(n)
	maxW := opt.Arena.Int(workers)
	opt.Run(n, func(w, lo, hi int) {
		max := 0
		for i := lo; i < hi; i++ {
			l := m.RowLen(i)
			lens[i] = l
			if l > max {
				max = l
			}
		}
		if max > maxW[w] {
			maxW[w] = max
		}
	})
	maxLen := 0
	for _, v := range maxW {
		if v > maxLen {
			maxLen = v
		}
	}

	// Per-worker histograms over descending-length buckets
	// (bucket = maxLen − len, so bucket 0 is the longest row).
	buckets := maxLen + 1
	hist := opt.Arena.Int(workers * buckets)
	opt.Run(n, func(w, lo, hi int) {
		h := hist[w*buckets : (w+1)*buckets]
		for i := lo; i < hi; i++ {
			h[maxLen-lens[i]]++
		}
	})
	// Exclusive scan in (bucket, worker) order: worker w's slots for
	// bucket b start after every earlier bucket and after the same
	// bucket's counts from workers < w — the sequential stable order.
	run := 0
	for b := 0; b < buckets; b++ {
		for w := 0; w < workers; w++ {
			c := hist[w*buckets+b]
			hist[w*buckets+b] = run
			run += c
		}
	}
	opt.Run(n, func(w, lo, hi int) {
		h := hist[w*buckets : (w+1)*buckets]
		for i := lo; i < hi; i++ { // ascending i gives the stable tie-break
			b := maxLen - lens[i]
			p[h[b]] = i
			h[b]++
		}
	})
	return p
}

// SortRangeByLengthDesc writes into p[lo:hi] the stable
// descending-length order of rows [lo, hi) (global row indices),
// using the precomputed lens array and a scratch count buffer of at
// least maxLen+2 entries. It is the windowed-sort primitive of the
// sliced-ELLPACK σ ablation; windows are independent, so callers
// parallelize across them with one scratch buffer per worker.
func SortRangeByLengthDesc(lens []int, lo, hi int, p Perm, count []int) {
	maxLen := 0
	for i := lo; i < hi; i++ {
		if lens[i] > maxLen {
			maxLen = lens[i]
		}
	}
	count = count[:maxLen+2]
	clear(count)
	for i := lo; i < hi; i++ {
		count[maxLen-lens[i]+1]++
	}
	for i := 1; i < len(count); i++ {
		count[i] += count[i-1]
	}
	for i := lo; i < hi; i++ { // ascending i gives the stable tie-break
		b := maxLen - lens[i]
		p[lo+count[b]] = i
		count[b]++
	}
}
