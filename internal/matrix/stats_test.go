package matrix

import (
	"math"
	"testing"
)

// ladder builds a matrix whose row i has exactly lens[i] leading
// non-zeros.
func ladder(lens []int, cols int) *CSR[float64] {
	coo := NewCOO[float64](len(lens), cols)
	for i, l := range lens {
		for j := 0; j < l; j++ {
			coo.Add(i, j, float64(i+j+1))
		}
	}
	return coo.ToCSR()
}

func TestComputeStats(t *testing.T) {
	m := ladder([]int{4, 2, 2, 8}, 10)
	s := ComputeStats(m)
	if s.Rows != 4 || s.Cols != 10 || s.Nnz != 16 {
		t.Fatalf("basic counts wrong: %+v", s)
	}
	if s.MaxRowLen != 8 || s.MinRowLen != 2 {
		t.Errorf("max/min = %d/%d", s.MaxRowLen, s.MinRowLen)
	}
	if math.Abs(s.AvgRowLen-4) > 1e-15 {
		t.Errorf("avg = %g", s.AvgRowLen)
	}
	if math.Abs(s.RelativeWidth-4) > 1e-15 {
		t.Errorf("width = %g", s.RelativeWidth)
	}
	// Variance of {4,2,2,8} about mean 4: (0+4+4+16)/4 = 6.
	if math.Abs(s.RowLenStdDev-math.Sqrt(6)) > 1e-12 {
		t.Errorf("stddev = %g", s.RowLenStdDev)
	}
	// Row 3 spans columns 0..7, |3-0| .. |3-7| → bandwidth from row 0:
	// |0-3|=3; row 3: |3-7|=4... bandwidth = max|i-j| = 4 (row 0 col 3
	// gives 3; row 3 col 7 gives 4).
	if s.Bandwidth != 4 {
		t.Errorf("bandwidth = %d, want 4", s.Bandwidth)
	}
	// Col spans: 3,1,1,7 → mean 3.
	if math.Abs(s.AvgColSpan-3) > 1e-15 {
		t.Errorf("avg col span = %g", s.AvgColSpan)
	}
}

func TestComputeStatsEmptyRowWidth(t *testing.T) {
	m := ladder([]int{0, 3}, 5)
	s := ComputeStats(m)
	if !math.IsInf(s.RelativeWidth, 1) {
		t.Errorf("width with empty row = %g, want +Inf", s.RelativeWidth)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
	zero := ComputeStats(NewCOO[float64](0, 0).ToCSR())
	if zero.Nnz != 0 || zero.AvgRowLen != 0 {
		t.Errorf("zero matrix stats: %+v", zero)
	}
}

func TestRowLenHistogram(t *testing.T) {
	m := ladder([]int{3, 1, 3, 3, 0, 1}, 5)
	h := RowLenHistogram(m)
	want := []int{1, 2, 0, 3}
	if len(h) != len(want) {
		t.Fatalf("histogram length %d, want %d", len(h), len(want))
	}
	for i := range want {
		if h[i] != want[i] {
			t.Errorf("h[%d] = %d, want %d", i, h[i], want[i])
		}
	}
	// Histogram mass equals row count.
	total := 0
	for _, c := range h {
		total += c
	}
	if total != m.NRows {
		t.Errorf("histogram mass %d != rows %d", total, m.NRows)
	}
}

func TestRowLenQuantile(t *testing.T) {
	m := ladder([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 12)
	if q := RowLenQuantile(m, 0); q != 1 {
		t.Errorf("q0 = %d", q)
	}
	if q := RowLenQuantile(m, 1); q != 10 {
		t.Errorf("q1 = %d", q)
	}
	if q := RowLenQuantile(m, 0.5); q != 5 {
		t.Errorf("median = %d, want 5", q)
	}
}
