package matrix

import (
	"bytes"
	"strings"
	"testing"
)

func TestMatrixMarketRoundTrip(t *testing.T) {
	m := randomCSR(25, 17, 0.2, 31)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMatrixMarket[float64](&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back, 0) {
		t.Fatal("round trip changed the matrix")
	}
}

func TestMatrixMarketReadGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment line
3 3 4
1 1 2.0
2 3 -1.5
3 1 4
3 3 1e-3
`
	m, err := ReadMatrixMarket[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.NRows != 3 || m.NCols != 3 || m.Nnz() != 4 {
		t.Fatalf("shape %dx%d nnz %d", m.NRows, m.NCols, m.Nnz())
	}
	if m.At(1, 2) != -1.5 || m.At(2, 2) != 1e-3 {
		t.Error("values misread")
	}
}

func TestMatrixMarketReadSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 1
2 1 5
3 3 2
`
	m, err := ReadMatrixMarket[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.Nnz() != 4 { // diagonal entries not mirrored
		t.Fatalf("nnz = %d, want 4", m.Nnz())
	}
	if m.At(0, 1) != 5 || m.At(1, 0) != 5 {
		t.Error("symmetric mirror missing")
	}
}

func TestMatrixMarketReadPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	m, err := ReadMatrixMarket[float64](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 1 || m.At(1, 0) != 1 {
		t.Error("pattern entries should read as 1")
	}
}

func TestMatrixMarketReadErrors(t *testing.T) {
	cases := map[string]string{
		"empty":           "",
		"bad header":      "%%MatrixMarket tensor coordinate real general\n1 1 0\n",
		"bad field":       "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"bad symmetry":    "%%MatrixMarket matrix coordinate real hermitian\n1 1 0\n",
		"bad size":        "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"neg size":        "%%MatrixMarket matrix coordinate real general\n-1 2 0\n",
		"truncated":       "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1.0\n",
		"entry range":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n",
		"short entry":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"bad value":       "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
		"bad row index":   "%%MatrixMarket matrix coordinate real general\n2 2 1\nxx 1 1.0\n",
		"bad col index":   "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 yy 1.0\n",
		"dense unsupport": "%%MatrixMarket matrix array real general\n2 2\n1.0\n",
	}
	for name, in := range cases {
		if _, err := ReadMatrixMarket[float64](strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMatrixMarketSinglePrecision(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1 0.25\n"
	m, err := ReadMatrixMarket[float32](strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 0) != 0.25 {
		t.Errorf("got %g", m.At(0, 0))
	}
}
