package matrix

import (
	"bytes"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	m := randomCSR(300, 250, 0.05, 71)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Equal(back, 0) {
		t.Fatal("binary round trip changed the matrix")
	}
}

func TestBinaryRoundTripEmptyAndSpecialValues(t *testing.T) {
	coo := NewCOO[float64](3, 3)
	coo.Add(0, 0, -0.0)
	coo.Add(1, 2, 1e-308)
	coo.Add(2, 1, -1e300)
	m := coo.ToCSR()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k := range m.Val {
		if m.Val[k] != back.Val[k] {
			t.Fatalf("val[%d] changed", k)
		}
	}
	// Fully empty matrix.
	empty := NewCOO[float64](0, 0).ToCSR()
	buf.Reset()
	if err := WriteBinary(&buf, empty); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBinary(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryReadErrors(t *testing.T) {
	m := randomCSR(20, 20, 0.2, 72)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("NOTMAGIC"), full[8:]...),
		"no header":   full[:10],
		"truncated":   full[:len(full)/2],
		"missing val": full[:len(full)-4],
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Implausible dimensions.
	evil := append([]byte{}, full[:8]...)
	evil = append(evil, make([]byte, 24)...)
	for i := 8; i < 16; i++ {
		evil[i] = 0xff
	}
	if _, err := ReadBinary(bytes.NewReader(evil)); err == nil {
		t.Error("absurd dimensions accepted")
	}
}
