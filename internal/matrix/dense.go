package matrix

import "fmt"

// Dense is a row-major dense matrix used for small-scale verification
// of the sparse kernels and for rendering the worked example of the
// paper's Fig. 1 in tests.
type Dense[T Float] struct {
	NRows, NCols int
	Data         []T // row-major, len = NRows*NCols
}

// NewDense returns a zero dense matrix.
func NewDense[T Float](rows, cols int) *Dense[T] {
	return &Dense[T]{NRows: rows, NCols: cols, Data: make([]T, rows*cols)}
}

// DenseFromRows builds a dense matrix from explicit row slices; all
// rows must have equal length.
func DenseFromRows[T Float](rows [][]T) *Dense[T] {
	if len(rows) == 0 {
		return NewDense[T](0, 0)
	}
	d := NewDense[T](len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != d.NCols {
			panic(fmt.Sprintf("matrix: ragged dense row %d: %d != %d", i, len(r), d.NCols))
		}
		copy(d.Data[i*d.NCols:], r)
	}
	return d
}

// At returns element (i, j).
func (d *Dense[T]) At(i, j int) T { return d.Data[i*d.NCols+j] }

// Set assigns element (i, j).
func (d *Dense[T]) Set(i, j int, v T) { d.Data[i*d.NCols+j] = v }

// MulVec computes y = D·x.
func (d *Dense[T]) MulVec(y, x []T) error {
	if len(x) != d.NCols || len(y) != d.NRows {
		return fmt.Errorf("matrix: dense MulVec with |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), d.NRows, d.NCols, ErrShape)
	}
	for i := 0; i < d.NRows; i++ {
		var sum T
		row := d.Data[i*d.NCols : (i+1)*d.NCols]
		for j, v := range row {
			sum += v * x[j]
		}
		y[i] = sum
	}
	return nil
}

// ToCSR extracts the non-zero structure of the dense matrix.
func (d *Dense[T]) ToCSR() *CSR[T] {
	coo := NewCOO[T](d.NRows, d.NCols)
	for i := 0; i < d.NRows; i++ {
		for j := 0; j < d.NCols; j++ {
			if v := d.At(i, j); v != 0 {
				coo.Add(i, j, v)
			}
		}
	}
	return coo.ToCSR()
}

// CSRToDense expands a sparse matrix; intended for tests on small
// matrices only.
func CSRToDense[T Float](m *CSR[T]) *Dense[T] {
	d := NewDense[T](m.NRows, m.NCols)
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			d.Set(i, int(c), vals[k])
		}
	}
	return d
}
