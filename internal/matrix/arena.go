package matrix

// Arena is a reusable scratch allocator for the conversion pipeline.
// Format constructors need short-lived buffers (row-length arrays,
// histograms, sort keys) whose sizes repeat across conversions; a
// parameter sweep that rebuilds a format dozens of times would
// otherwise churn the allocator with identical allocations. An Arena
// hands out zeroed slices and reclaims all of them at Reset, so a
// sweep loop allocates each buffer once and reuses it every iteration.
//
// An Arena is NOT safe for concurrent use: conversion code grabs all
// scratch (including one buffer per worker) before fanning out to the
// worker pool. Slices obtained from an Arena are valid until the next
// Reset; results returned to callers are always freshly allocated and
// never come from an arena.
//
// All methods accept a nil receiver and fall back to plain make, so
// code paths read identically with and without an arena.
type Arena struct {
	ints aPool[int]
	i32  aPool[int32]
	u64  aPool[uint64]
	f32  aPool[float32]
	f64  aPool[float64]
}

// NewArena returns an empty arena.
func NewArena() *Arena { return &Arena{} }

// Reset reclaims every slice previously handed out. Callers must not
// use slices obtained before the Reset afterwards.
func (a *Arena) Reset() {
	if a == nil {
		return
	}
	a.ints.reset()
	a.i32.reset()
	a.u64.reset()
	a.f32.reset()
	a.f64.reset()
}

// Int returns a zeroed []int of length n.
func (a *Arena) Int(n int) []int {
	if a == nil {
		return make([]int, n)
	}
	return a.ints.get(n)
}

// Int32 returns a zeroed []int32 of length n.
func (a *Arena) Int32(n int) []int32 {
	if a == nil {
		return make([]int32, n)
	}
	return a.i32.get(n)
}

// Uint64 returns a zeroed []uint64 of length n.
func (a *Arena) Uint64(n int) []uint64 {
	if a == nil {
		return make([]uint64, n)
	}
	return a.u64.get(n)
}

// Floats returns a zeroed []T of length n from the arena's pool for
// the element type (a free function because Go methods cannot add
// type parameters).
func Floats[T Float](a *Arena, n int) []T {
	if a == nil {
		return make([]T, n)
	}
	var zero T
	switch any(zero).(type) {
	case float32:
		if s, ok := any(a.f32.get(n)).([]T); ok {
			return s
		}
	case float64:
		if s, ok := any(a.f64.get(n)).([]T); ok {
			return s
		}
	}
	// Named float types fall outside the pools; allocate directly.
	return make([]T, n)
}

// aPool recycles slices of one element type. get prefers the first
// free slice with sufficient capacity; reset marks everything free
// again.
type aPool[E any] struct {
	all  [][]E
	free [][]E
}

func (p *aPool[E]) get(n int) []E {
	for i, s := range p.free {
		if cap(s) >= n {
			p.free = append(p.free[:i], p.free[i+1:]...)
			s = s[:n]
			clear(s)
			return s
		}
	}
	s := make([]E, n)
	p.all = append(p.all, s[:cap(s)])
	return s
}

func (p *aPool[E]) reset() {
	p.free = append(p.free[:0], p.all...)
}
