package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randPerm(n int, seed int64) Perm {
	rng := rand.New(rand.NewSource(seed))
	p := Identity(n)
	rng.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

func TestPermValid(t *testing.T) {
	if !Identity(5).Valid() {
		t.Error("identity not valid")
	}
	if (Perm{0, 0, 1}).Valid() {
		t.Error("duplicate accepted")
	}
	if (Perm{0, 3}).Valid() {
		t.Error("out-of-range accepted")
	}
	if (Perm{1, -1}).Valid() {
		t.Error("negative accepted")
	}
	if !(Perm{}).Valid() {
		t.Error("empty permutation should be valid")
	}
}

func TestPermInverse(t *testing.T) {
	f := func(seed int64) bool {
		p := randPerm(20, seed)
		q := p.Inverse()
		for i := range p {
			if q[p[i]] != i || p[q[i]] != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPermCompose(t *testing.T) {
	p := randPerm(15, 1)
	q := randPerm(15, 2)
	r := p.Compose(q)
	src := make([]float64, 15)
	for i := range src {
		src[i] = float64(i)
	}
	// Gather with r should equal gather with p then q? r[i]=q[p[i]],
	// so Gather(r)[i] = src[q[p[i]]] = Gather(q)∘... verify directly.
	viaR := Gather(make([]float64, 15), src, r)
	tmp := Gather(make([]float64, 15), src, q)
	viaPQ := Gather(make([]float64, 15), tmp, p)
	for i := range viaR {
		if viaR[i] != viaPQ[i] {
			t.Fatalf("compose mismatch at %d: %g vs %g", i, viaR[i], viaPQ[i])
		}
	}
	// Compose with inverse is identity.
	id := p.Compose(p.Inverse())
	for i := range id {
		if id[i] != i {
			t.Fatalf("p∘p⁻¹ not identity at %d", i)
		}
	}
}

func TestGatherScatterInverse(t *testing.T) {
	f := func(seed int64) bool {
		p := randPerm(12, seed)
		rng := rand.New(rand.NewSource(seed + 99))
		src := make([]float64, 12)
		for i := range src {
			src[i] = rng.NormFloat64()
		}
		g := Gather(make([]float64, 12), src, p)
		back := Scatter(make([]float64, 12), g, p)
		for i := range src {
			if back[i] != src[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteRows(t *testing.T) {
	m := randomCSR(10, 8, 0.3, 11)
	p := randPerm(10, 12)
	pm := PermuteRows(m, p)
	for i := 0; i < 10; i++ {
		for j := 0; j < 8; j++ {
			if pm.At(i, j) != m.At(p[i], j) {
				t.Fatalf("permuted row %d col %d mismatch", i, j)
			}
		}
	}
}

// Property: (P·A)x == P·(Ax) — permuting rows of the matrix permutes
// the result vector the same way.
func TestPermuteRowsCommutesWithMulVec(t *testing.T) {
	f := func(seed int64) bool {
		m := randomCSR(14, 14, 0.25, seed%97)
		p := randPerm(14, seed)
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		x := make([]float64, 14)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y1 := make([]float64, 14)
		if err := PermuteRows(m, p).MulVec(y1, x); err != nil {
			return false
		}
		y := make([]float64, 14)
		if err := m.MulVec(y, x); err != nil {
			return false
		}
		y2 := Gather(make([]float64, 14), y, p)
		for i := range y1 {
			if math.Abs(y1[i]-y2[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the symmetrically permuted operator satisfies
// (PAPᵀ)(Px) = P(Ax): working entirely in the permuted basis is
// equivalent to working in the original one. This is the §II-A claim
// that Krylov methods can run on the pJDS-permuted matrix.
func TestPermuteSymmetricBasisEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		n := 16
		m := randomCSR(n, n, 0.3, seed%89)
		p := randPerm(n, seed)
		pm := PermuteSymmetric(m, p)
		rng := rand.New(rand.NewSource(seed ^ 0xbeef))
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		px := Gather(make([]float64, n), x, p)
		yp := make([]float64, n)
		if err := pm.MulVec(yp, px); err != nil {
			return false
		}
		y := make([]float64, n)
		if err := m.MulVec(y, x); err != nil {
			return false
		}
		py := Gather(make([]float64, n), y, p)
		for i := range yp {
			if math.Abs(yp[i]-py[i]) > 1e-11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteSymmetricSortedRows(t *testing.T) {
	m := randomCSR(12, 12, 0.4, 21)
	pm := PermuteSymmetric(m, randPerm(12, 22))
	for i := 0; i < pm.NRows; i++ {
		cols, _ := pm.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				t.Fatalf("row %d columns not strictly sorted", i)
			}
		}
	}
}

func TestSortRowsByLengthDesc(t *testing.T) {
	coo := NewCOO[float64](6, 10)
	lens := []int{2, 5, 1, 5, 0, 3}
	for i, l := range lens {
		for j := 0; j < l; j++ {
			coo.Add(i, j, 1)
		}
	}
	m := coo.ToCSR()
	p := SortRowsByLengthDesc(m)
	if !p.Valid() {
		t.Fatal("sort permutation invalid")
	}
	// Descending lengths with stable tie-break: rows 1,3 (len 5), then
	// 5 (3), 0 (2), 2 (1), 4 (0).
	want := Perm{1, 3, 5, 0, 2, 4}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("p = %v, want %v", p, want)
		}
	}
	pm := PermuteRows(m, p)
	for i := 1; i < pm.NRows; i++ {
		if pm.RowLen(i) > pm.RowLen(i-1) {
			t.Fatalf("row lengths not descending at %d", i)
		}
	}
}

func TestSortRowsByLengthDescLarge(t *testing.T) {
	m := randomCSR(500, 300, 0.05, 23)
	p := SortRowsByLengthDesc(m)
	if !p.Valid() {
		t.Fatal("invalid permutation")
	}
	pm := PermuteRows(m, p)
	prev := pm.RowLen(0)
	for i := 1; i < pm.NRows; i++ {
		l := pm.RowLen(i)
		if l > prev {
			t.Fatalf("not descending at row %d", i)
		}
		prev = l
	}
}
