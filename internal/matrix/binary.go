package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary container for CSR matrices: a fast little-endian dump used by
// the experiment harness's on-disk cache, so multi-hundred-million-
// non-zero matrices (DLR2, UHBR) are generated once per machine.
// Layout: magic, version, dims/nnz header, then the three arrays raw.

var binaryMagic = [8]byte{'P', 'J', 'D', 'S', 'C', 'S', 'R', '1'}

// WriteBinary writes m in the binary container format.
func WriteBinary(w io.Writer, m *CSR[float64]) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	hdr := make([]byte, 24)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.NRows))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.NCols))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.Nnz()))
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range m.RowPtr {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	for _, c := range m.ColIdx {
		binary.LittleEndian.PutUint32(buf[:4], uint32(c))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for _, v := range m.Val {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		if _, err := bw.Write(buf[:8]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary parses a binary container back into a CSR matrix,
// validating structure as NewCSR would.
func ReadBinary(r io.Reader) (*CSR[float64], error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("matrix: binary header: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("matrix: bad binary magic %q", magic[:])
	}
	hdr := make([]byte, 24)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("matrix: binary dims: %w", err)
	}
	rows := int(binary.LittleEndian.Uint64(hdr[0:]))
	cols := int(binary.LittleEndian.Uint64(hdr[8:]))
	nnz := int(binary.LittleEndian.Uint64(hdr[16:]))
	const maxDim = 1 << 30
	if rows < 0 || cols < 0 || nnz < 0 || rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("matrix: implausible binary dims %dx%d nnz=%d", rows, cols, nnz)
	}
	// Grow the arrays as data actually arrives, so a forged header on
	// a short stream cannot drive a huge up-front allocation.
	var buf [8]byte
	hint := func(n int) int {
		if n > 1<<20 {
			return 1 << 20
		}
		return n
	}
	rowPtr := make([]int, 0, hint(rows+1))
	for i := 0; i <= rows; i++ {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("matrix: binary rowPtr: %w", err)
		}
		rowPtr = append(rowPtr, int(binary.LittleEndian.Uint64(buf[:])))
	}
	colIdx := make([]int32, 0, hint(nnz))
	for i := 0; i < nnz; i++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("matrix: binary colIdx: %w", err)
		}
		colIdx = append(colIdx, int32(binary.LittleEndian.Uint32(buf[:4])))
	}
	val := make([]float64, 0, hint(nnz))
	for i := 0; i < nnz; i++ {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return nil, fmt.Errorf("matrix: binary val: %w", err)
		}
		val = append(val, math.Float64frombits(binary.LittleEndian.Uint64(buf[:])))
	}
	return NewCSR(rows, cols, rowPtr, colIdx, val)
}
