package matrix

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// refToCSR is an independent reference for the counting-pass assembly:
// a stable sort by (row, col) followed by an insertion-order duplicate
// sum — the semantics ToCSR documents.
func refToCSR(m *COO[float64]) *CSR[float64] {
	type ent struct {
		row int
		col int32
		val float64
		pos int
	}
	es := make([]ent, len(m.Entries))
	for k, e := range m.Entries {
		es[k] = ent{e.Row, int32(e.Col), e.Val, k}
	}
	sort.SliceStable(es, func(a, b int) bool {
		if es[a].row != es[b].row {
			return es[a].row < es[b].row
		}
		return es[a].col < es[b].col
	})
	out := &CSR[float64]{NRows: m.Rows, NCols: m.Cols, RowPtr: make([]int, m.Rows+1)}
	for k := 0; k < len(es); {
		j := k + 1
		sum := es[k].val
		for j < len(es) && es[j].row == es[k].row && es[j].col == es[k].col {
			sum += es[j].val
			j++
		}
		out.RowPtr[es[k].row+1]++
		out.ColIdx = append(out.ColIdx, es[k].col)
		out.Val = append(out.Val, sum)
		k = j
	}
	for i := 0; i < m.Rows; i++ {
		out.RowPtr[i+1] += out.RowPtr[i]
	}
	return out
}

// randomCOO builds a random COO with a controllable duplicate rate.
func randomCOO(rows, cols, n int, dupRate float64, seed int64) *COO[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO[float64](rows, cols)
	for k := 0; k < n; k++ {
		if dupRate > 0 && len(coo.Entries) > 0 && rng.Float64() < dupRate {
			// Duplicate an earlier coordinate with a new value.
			e := coo.Entries[rng.Intn(len(coo.Entries))]
			coo.Add(e.Row, e.Col, rng.NormFloat64())
			continue
		}
		coo.Add(rng.Intn(rows), rng.Intn(cols), rng.NormFloat64())
	}
	return coo
}

// csrBitIdentical fails unless a and b match exactly (structure and
// bit-for-bit values).
func csrBitIdentical(t *testing.T, label string, a, b *CSR[float64]) {
	t.Helper()
	if !reflect.DeepEqual(a.RowPtr, b.RowPtr) || !reflect.DeepEqual(a.ColIdx, b.ColIdx) {
		t.Fatalf("%s: structure differs", label)
	}
	for k := range a.Val {
		if a.Val[k] != b.Val[k] {
			t.Fatalf("%s: Val[%d] = %v vs %v", label, k, a.Val[k], b.Val[k])
		}
	}
	if a.NRows != b.NRows || a.NCols != b.NCols {
		t.Fatalf("%s: shape differs", label)
	}
}

func TestToCSROptMatchesReference(t *testing.T) {
	for _, dup := range []float64{0, 0.3} {
		coo := randomCOO(60, 40, 500, dup, 11+int64(dup*10))
		want := refToCSR(coo)
		got := coo.ToCSR()
		csrBitIdentical(t, "ToCSR vs reference", want, got)
	}
}

// TestToCSROptWorkerDeterminism is the tentpole guarantee: the
// parallel assembly is bit-identical to the sequential one for every
// worker count, duplicates included.
func TestToCSROptWorkerDeterminism(t *testing.T) {
	coo := randomCOO(100, 80, 2000, 0.25, 42)
	base := coo.ToCSROpt(ConvertOptions{Workers: 1})
	for w := 1; w <= 8; w++ {
		got := coo.ToCSROpt(ConvertOptions{Workers: w, ForceParallel: true})
		csrBitIdentical(t, "workers", base, got)
	}
}

func TestToCSROptArenaReuse(t *testing.T) {
	arena := NewArena()
	coo := randomCOO(50, 50, 800, 0.2, 7)
	want := coo.ToCSR()
	// A sweep-style loop: same conversion through one arena, resetting
	// between iterations, must not corrupt results.
	for iter := 0; iter < 3; iter++ {
		arena.Reset()
		got := coo.ToCSROpt(ConvertOptions{Workers: 3, Arena: arena, ForceParallel: true})
		csrBitIdentical(t, "arena reuse", want, got)
	}
}

func TestToCSROptEmptyAndEdge(t *testing.T) {
	empty := NewCOO[float64](4, 4)
	m := empty.ToCSROpt(ConvertOptions{Workers: 4, ForceParallel: true})
	if m.Nnz() != 0 || m.NRows != 4 {
		t.Fatalf("empty: nnz=%d rows=%d", m.Nnz(), m.NRows)
	}
	zero := NewCOO[float64](0, 0)
	z := zero.ToCSR()
	if z.NRows != 0 || z.Nnz() != 0 {
		t.Fatalf("zero-size: %dx%d nnz=%d", z.NRows, z.NCols, z.Nnz())
	}
}

func TestSortRowsByLengthDescOptDeterminism(t *testing.T) {
	m := randomCSR(300, 50, 0.08, 5)
	base := SortRowsByLengthDesc(m)
	if !base.Valid() {
		t.Fatal("invalid permutation")
	}
	for w := 1; w <= 8; w++ {
		got := SortRowsByLengthDescOpt(m, ConvertOptions{Workers: w, ForceParallel: true})
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: permutation differs", w)
		}
	}
	// Stability: descending lengths, ascending index on ties.
	for k := 1; k < len(base); k++ {
		la, lb := m.RowLen(base[k-1]), m.RowLen(base[k])
		if la < lb || (la == lb && base[k-1] > base[k]) {
			t.Fatalf("order violated at %d: rows %d(len %d), %d(len %d)", k, base[k-1], la, base[k], lb)
		}
	}
}

func TestSortRangeByLengthDesc(t *testing.T) {
	m := randomCSR(97, 30, 0.1, 9)
	lens := make([]int, m.NRows)
	maxLen := 0
	for i := range lens {
		lens[i] = m.RowLen(i)
		if lens[i] > maxLen {
			maxLen = lens[i]
		}
	}
	p := Identity(m.NRows)
	count := make([]int, maxLen+2)
	for lo := 0; lo < m.NRows; lo += 20 {
		hi := lo + 20
		if hi > m.NRows {
			hi = m.NRows
		}
		SortRangeByLengthDesc(lens, lo, hi, p, count)
	}
	if !p.Valid() {
		t.Fatal("invalid permutation")
	}
	// Window-local order must match the global sort of that row slice.
	for lo := 0; lo < m.NRows; lo += 20 {
		hi := lo + 20
		if hi > m.NRows {
			hi = m.NRows
		}
		window := m.RowSlice(lo, hi)
		want := SortRowsByLengthDesc(window)
		for i, old := range want {
			if p[lo+i] != lo+old {
				t.Fatalf("window [%d,%d): p[%d] = %d, want %d", lo, hi, lo+i, p[lo+i], lo+old)
			}
		}
	}
}

func TestArena(t *testing.T) {
	a := NewArena()
	s1 := a.Int(10)
	s1[3] = 7
	s2 := a.Int(10) // second buffer must be distinct while s1 is live
	if &s1[0] == &s2[0] {
		t.Fatal("arena handed out the same buffer twice")
	}
	a.Reset()
	s3 := a.Int(5)
	for _, v := range s3 {
		if v != 0 {
			t.Fatal("recycled buffer not zeroed")
		}
	}
	// Nil arena falls back to make.
	var nilA *Arena
	if got := nilA.Int(4); len(got) != 4 {
		t.Fatal("nil arena Int")
	}
	if got := Floats[float64](nil, 3); len(got) != 3 {
		t.Fatal("nil arena Floats")
	}
	nilA.Reset() // must not panic
	if got := Floats[float32](a, 6); len(got) != 6 {
		t.Fatal("arena Floats[float32]")
	}
}
