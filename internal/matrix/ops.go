package matrix

import (
	"fmt"
	"math"
)

// Vector and matrix utility operations shared by the solvers and the
// preprocessing pipelines (diagonal extraction for Jacobi, row/column
// equilibration, residual norms).

// Diag returns the diagonal of a square matrix (zeros where no entry
// is stored).
func Diag[T Float](m *CSR[T]) []T {
	if m.NRows != m.NCols {
		panic(fmt.Sprintf("matrix: Diag of a %dx%d matrix", m.NRows, m.NCols))
	}
	d := make([]T, m.NRows)
	for i := 0; i < m.NRows; i++ {
		d[i] = m.At(i, i)
	}
	return d
}

// ScaleRows multiplies row i of m by s[i] in place.
func ScaleRows[T Float](m *CSR[T], s []T) {
	if len(s) != m.NRows {
		panic(fmt.Sprintf("matrix: ScaleRows with %d factors on %d rows", len(s), m.NRows))
	}
	for i := 0; i < m.NRows; i++ {
		f := s[i]
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			m.Val[k] *= f
		}
	}
}

// ScaleCols multiplies column j of m by s[j] in place.
func ScaleCols[T Float](m *CSR[T], s []T) {
	if len(s) != m.NCols {
		panic(fmt.Sprintf("matrix: ScaleCols with %d factors on %d columns", len(s), m.NCols))
	}
	for k, c := range m.ColIdx {
		m.Val[k] *= s[c]
	}
}

// Add returns a + b for matrices of identical shape (structural
// union, values summed).
func Add[T Float](a, b *CSR[T]) (*CSR[T], error) {
	if a.NRows != b.NRows || a.NCols != b.NCols {
		return nil, fmt.Errorf("matrix: Add %dx%d and %dx%d: %w", a.NRows, a.NCols, b.NRows, b.NCols, ErrShape)
	}
	out := &CSR[T]{
		NRows:  a.NRows,
		NCols:  a.NCols,
		RowPtr: make([]int, a.NRows+1),
	}
	for i := 0; i < a.NRows; i++ {
		ca, va := a.Row(i)
		cb, vb := b.Row(i)
		x, y := 0, 0
		for x < len(ca) || y < len(cb) {
			switch {
			case y == len(cb) || (x < len(ca) && ca[x] < cb[y]):
				out.ColIdx = append(out.ColIdx, ca[x])
				out.Val = append(out.Val, va[x])
				x++
			case x == len(ca) || cb[y] < ca[x]:
				out.ColIdx = append(out.ColIdx, cb[y])
				out.Val = append(out.Val, vb[y])
				y++
			default:
				out.ColIdx = append(out.ColIdx, ca[x])
				out.Val = append(out.Val, va[x]+vb[y])
				x++
				y++
			}
		}
		out.RowPtr[i+1] = len(out.Val)
	}
	return out, nil
}

// Symmetrize returns (A + Aᵀ)/2 for a square matrix — the model
// operator used when an eigensolver needs a symmetric spectrum from a
// structurally nonsymmetric application matrix.
func Symmetrize[T Float](m *CSR[T]) (*CSR[T], error) {
	if m.NRows != m.NCols {
		return nil, fmt.Errorf("matrix: Symmetrize of a %dx%d matrix: %w", m.NRows, m.NCols, ErrShape)
	}
	s, err := Add(m, m.Transpose())
	if err != nil {
		return nil, err
	}
	for k := range s.Val {
		s.Val[k] /= 2
	}
	return s, nil
}

// ResidualNorm returns ‖b − A·x‖₂.
func ResidualNorm[T Float](m *CSR[T], x, b []T) (float64, error) {
	r := make([]T, m.NRows)
	if err := m.MulVec(r, x); err != nil {
		return 0, err
	}
	var s float64
	for i := range r {
		d := float64(b[i] - r[i])
		s += d * d
	}
	return math.Sqrt(s), nil
}
