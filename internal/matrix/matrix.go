// Package matrix provides the sparse-matrix substrate of the pJDS
// reproduction: coordinate (COO) and compressed row storage (CRS/CSR)
// matrices, dense matrices for small-scale verification, MatrixMarket
// I/O, row/column permutations, and the row-length statistics that the
// paper's analysis (Fig. 3, Table I) is built on.
//
// CRS is the canonical in-memory representation: every GPU storage
// format in internal/formats is constructed from a CRS matrix, and the
// CRS sequential kernel is the reference against which all other
// kernels are verified.
//
// Types are generic over the floating-point element type so that both
// single-precision (SP) and double-precision (DP) pipelines of the
// paper's Table I can be exercised with real arithmetic of the right
// width.
package matrix

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Float is the element-type constraint for all sparse-matrix containers.
type Float interface {
	~float32 | ~float64
}

// ErrShape reports an operation whose operand dimensions do not match.
var ErrShape = errors.New("matrix: dimension mismatch")

// Entry is one non-zero element in coordinate form.
type Entry[T Float] struct {
	Row, Col int
	Val      T
}

// COO is an unordered coordinate-format sparse matrix. It is the
// assembly format: generators and file readers produce COO, which is
// then compiled into CRS.
type COO[T Float] struct {
	Rows, Cols int
	Entries    []Entry[T]
}

// NewCOO returns an empty COO matrix with the given dimensions.
func NewCOO[T Float](rows, cols int) *COO[T] {
	if rows < 0 || cols < 0 {
		panic("matrix: negative dimension")
	}
	return &COO[T]{Rows: rows, Cols: cols}
}

// Add appends a non-zero entry. Duplicate (row, col) pairs are allowed;
// they are summed when the matrix is compiled to CRS, matching the
// usual finite-element assembly convention.
func (m *COO[T]) Add(row, col int, val T) {
	if row < 0 || row >= m.Rows || col < 0 || col >= m.Cols {
		panic(fmt.Sprintf("matrix: entry (%d,%d) outside %dx%d", row, col, m.Rows, m.Cols))
	}
	m.Entries = append(m.Entries, Entry[T]{row, col, val})
}

// Nnz returns the number of stored entries, including explicit zeros
// and not-yet-summed duplicates.
func (m *COO[T]) Nnz() int { return len(m.Entries) }

// ToCSR compiles the COO matrix into CRS form: entries are sorted by
// (row, col), duplicates are summed in insertion order, and explicitly
// stored zeros are kept (they are structurally part of the matrix, as
// in MatrixMarket). The assembly uses a counting pass with exactly one
// allocation per output array; ToCSROpt exposes the worker-count,
// arena and phase-timer knobs.
func (m *COO[T]) ToCSR() *CSR[T] { return m.ToCSROpt(ConvertOptions{}) }

// CSR is a compressed-row-storage (the paper's "CRS") sparse matrix.
// Row i occupies Val[RowPtr[i]:RowPtr[i+1]] with matching column
// indices in ColIdx. Column indices are int32, as on the GPU: the
// index array is half the size of the value array in DP, which is what
// the code-balance model (Eq. 1: 8+4 bytes per non-zero) assumes.
type CSR[T Float] struct {
	NRows, NCols int
	RowPtr       []int
	ColIdx       []int32
	Val          []T
}

// NewCSR assembles a CSR matrix directly from prebuilt arrays,
// validating their consistency.
func NewCSR[T Float](rows, cols int, rowPtr []int, colIdx []int32, val []T) (*CSR[T], error) {
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("matrix: rowPtr length %d, want %d: %w", len(rowPtr), rows+1, ErrShape)
	}
	if rowPtr[0] != 0 {
		return nil, fmt.Errorf("matrix: rowPtr[0] = %d, want 0: %w", rowPtr[0], ErrShape)
	}
	if len(colIdx) != len(val) {
		return nil, fmt.Errorf("matrix: colIdx length %d != val length %d: %w", len(colIdx), len(val), ErrShape)
	}
	if rowPtr[rows] != len(val) {
		return nil, fmt.Errorf("matrix: rowPtr[%d] = %d, want nnz %d: %w", rows, rowPtr[rows], len(val), ErrShape)
	}
	for i := 0; i < rows; i++ {
		if rowPtr[i] > rowPtr[i+1] {
			return nil, fmt.Errorf("matrix: rowPtr not monotone at row %d: %w", i, ErrShape)
		}
	}
	for _, c := range colIdx {
		if c < 0 || int(c) >= cols {
			return nil, fmt.Errorf("matrix: column index %d outside [0,%d): %w", c, cols, ErrShape)
		}
	}
	return &CSR[T]{NRows: rows, NCols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}, nil
}

// Nnz returns the number of stored non-zeros.
func (m *CSR[T]) Nnz() int { return len(m.Val) }

// RowLen returns the number of stored entries in row i.
func (m *CSR[T]) RowLen(i int) int { return m.RowPtr[i+1] - m.RowPtr[i] }

// Row returns the column indices and values of row i as sub-slices of
// the matrix storage; callers must not modify them.
func (m *CSR[T]) Row(i int) ([]int32, []T) {
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	return m.ColIdx[lo:hi], m.Val[lo:hi]
}

// At returns the element at (row, col), zero if not stored. It is
// O(log rowlen) and intended for tests and small problems.
func (m *CSR[T]) At(row, col int) T {
	cols, vals := m.Row(row)
	k := sort.Search(len(cols), func(i int) bool { return cols[i] >= int32(col) })
	if k < len(cols) && cols[k] == int32(col) {
		return vals[k]
	}
	return 0
}

// MulVec computes y = A·x with the sequential CRS kernel. It is the
// correctness reference for every other kernel in the repository.
func (m *CSR[T]) MulVec(y, x []T) error {
	if len(x) != m.NCols || len(y) != m.NRows {
		return fmt.Errorf("matrix: MulVec with |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), m.NRows, m.NCols, ErrShape)
	}
	for i := 0; i < m.NRows; i++ {
		var sum T
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			sum += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = sum
	}
	return nil
}

// MulVecAdd computes y += A·x, the accumulate variant used by the
// split local/non-local kernels of the distributed spMVM.
func (m *CSR[T]) MulVecAdd(y, x []T) error {
	if len(x) != m.NCols || len(y) != m.NRows {
		return fmt.Errorf("matrix: MulVecAdd with |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), m.NRows, m.NCols, ErrShape)
	}
	for i := 0; i < m.NRows; i++ {
		var sum T
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo; k < hi; k++ {
			sum += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] += sum
	}
	return nil
}

// Transpose returns Aᵀ as a new CSR matrix.
func (m *CSR[T]) Transpose() *CSR[T] {
	t := &CSR[T]{
		NRows:  m.NCols,
		NCols:  m.NRows,
		RowPtr: make([]int, m.NCols+1),
		ColIdx: make([]int32, m.Nnz()),
		Val:    make([]T, m.Nnz()),
	}
	for _, c := range m.ColIdx {
		t.RowPtr[c+1]++
	}
	for i := 0; i < m.NCols; i++ {
		t.RowPtr[i+1] += t.RowPtr[i]
	}
	next := make([]int, m.NCols)
	copy(next, t.RowPtr[:m.NCols])
	for i := 0; i < m.NRows; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			c := m.ColIdx[k]
			p := next[c]
			next[c]++
			t.ColIdx[p] = int32(i)
			t.Val[p] = m.Val[k]
		}
	}
	return t
}

// Clone returns a deep copy.
func (m *CSR[T]) Clone() *CSR[T] {
	c := &CSR[T]{
		NRows:  m.NRows,
		NCols:  m.NCols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    append([]T(nil), m.Val...),
	}
	return c
}

// Equal reports whether two matrices have identical structure and
// element-wise values within tolerance tol.
func (m *CSR[T]) Equal(o *CSR[T], tol float64) bool {
	if m.NRows != o.NRows || m.NCols != o.NCols || m.Nnz() != o.Nnz() {
		return false
	}
	for i := range m.RowPtr {
		if m.RowPtr[i] != o.RowPtr[i] {
			return false
		}
	}
	for k := range m.ColIdx {
		if m.ColIdx[k] != o.ColIdx[k] {
			return false
		}
		if math.Abs(float64(m.Val[k])-float64(o.Val[k])) > tol {
			return false
		}
	}
	return true
}

// RowSlice returns the sub-matrix of rows [lo, hi) as a new CSR matrix
// with the same column space. It is the row-block partitioning
// primitive of the distributed spMVM.
func (m *CSR[T]) RowSlice(lo, hi int) *CSR[T] {
	if lo < 0 || hi > m.NRows || lo > hi {
		panic(fmt.Sprintf("matrix: RowSlice [%d,%d) outside %d rows", lo, hi, m.NRows))
	}
	base := m.RowPtr[lo]
	nnz := m.RowPtr[hi] - base
	s := &CSR[T]{
		NRows:  hi - lo,
		NCols:  m.NCols,
		RowPtr: make([]int, hi-lo+1),
		ColIdx: make([]int32, nnz),
		Val:    make([]T, nnz),
	}
	for i := lo; i <= hi; i++ {
		s.RowPtr[i-lo] = m.RowPtr[i] - base
	}
	copy(s.ColIdx, m.ColIdx[base:base+nnz])
	copy(s.Val, m.Val[base:base+nnz])
	return s
}

// MaxRowLen returns max_i RowLen(i), the paper's N^max_nzr.
func (m *CSR[T]) MaxRowLen() int {
	max := 0
	for i := 0; i < m.NRows; i++ {
		if l := m.RowLen(i); l > max {
			max = l
		}
	}
	return max
}

// MinRowLen returns min_i RowLen(i).
func (m *CSR[T]) MinRowLen() int {
	if m.NRows == 0 {
		return 0
	}
	min := m.RowLen(0)
	for i := 1; i < m.NRows; i++ {
		if l := m.RowLen(i); l < min {
			min = l
		}
	}
	return min
}

// AvgRowLen returns Nnz/NRows, the paper's N_nzr.
func (m *CSR[T]) AvgRowLen() float64 {
	if m.NRows == 0 {
		return 0
	}
	return float64(m.Nnz()) / float64(m.NRows)
}

// Convert changes the element type of a CSR matrix, e.g. building the
// single-precision copy of a double-precision matrix for the SP rows
// of Table I.
func Convert[D, S Float](m *CSR[S]) *CSR[D] {
	c := &CSR[D]{
		NRows:  m.NRows,
		NCols:  m.NCols,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int32(nil), m.ColIdx...),
		Val:    make([]D, len(m.Val)),
	}
	for i, v := range m.Val {
		c.Val[i] = D(v)
	}
	return c
}
