package matrix

import (
	"bufio"
	"fmt"
	"io"
)

// This file implements a reader and writer for the MatrixMarket
// coordinate exchange format (the format the paper's test matrices
// would normally ship in), so generated matrices can be exported,
// inspected with external tools, and re-imported byte-identically.

// WriteMatrixMarket writes m in MatrixMarket "coordinate real general"
// format with 1-based indices.
func WriteMatrixMarket[T Float](w io.Writer, m *CSR[T]) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NRows, m.NCols, m.Nnz()); err != nil {
		return err
	}
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, c+1, float64(vals[k])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into CSR.
// Supported qualifiers: real/integer/pattern × general/symmetric.
// Pattern entries get value 1; symmetric files are expanded to full
// storage (mirror entries added for off-diagonal elements). Parsing is
// chunk-parallel (see ReadMatrixMarketOpt) with the process-default
// worker count; the result is bit-identical for every worker count.
func ReadMatrixMarket[T Float](r io.Reader) (*CSR[T], error) {
	m, _, err := ReadMatrixMarketOpt[T](r, ConvertOptions{})
	return m, err
}
