package matrix

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a reader and writer for the MatrixMarket
// coordinate exchange format (the format the paper's test matrices
// would normally ship in), so generated matrices can be exported,
// inspected with external tools, and re-imported byte-identically.

// WriteMatrixMarket writes m in MatrixMarket "coordinate real general"
// format with 1-based indices.
func WriteMatrixMarket[T Float](w io.Writer, m *CSR[T]) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n"); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "%d %d %d\n", m.NRows, m.NCols, m.Nnz()); err != nil {
		return err
	}
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			if _, err := fmt.Fprintf(bw, "%d %d %.17g\n", i+1, c+1, float64(vals[k])); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadMatrixMarket parses a MatrixMarket coordinate file into CSR.
// Supported qualifiers: real/integer/pattern × general/symmetric.
// Pattern entries get value 1; symmetric files are expanded to full
// storage (mirror entries added for off-diagonal elements).
func ReadMatrixMarket[T Float](r io.Reader) (*CSR[T], error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)

	if !sc.Scan() {
		return nil, fmt.Errorf("matrix: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return nil, fmt.Errorf("matrix: unsupported MatrixMarket header %q", sc.Text())
	}
	field := header[3]
	symmetry := "general"
	if len(header) >= 5 {
		symmetry = header[4]
	}
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("matrix: unsupported MatrixMarket field %q", field)
	}
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("matrix: unsupported MatrixMarket symmetry %q", symmetry)
	}

	// Skip comments, read the size line.
	var rows, cols, nnz int
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscan(line, &rows, &cols, &nnz); err != nil {
			return nil, fmt.Errorf("matrix: bad MatrixMarket size line %q: %v", line, err)
		}
		break
	}
	if rows <= 0 || cols <= 0 || nnz < 0 {
		return nil, fmt.Errorf("matrix: bad MatrixMarket dimensions %dx%d nnz=%d", rows, cols, nnz)
	}
	if symmetry == "symmetric" && rows != cols {
		return nil, fmt.Errorf("matrix: symmetric MatrixMarket file must be square, got %dx%d", rows, cols)
	}
	// Refuse sizes whose index arrays alone would exceed ~2 GiB: no
	// published sparse matrix comes close, and unguarded headers would
	// let a malformed file drive allocation to OOM.
	const maxDim = 1 << 28
	if rows > maxDim || cols > maxDim || nnz > maxDim {
		return nil, fmt.Errorf("matrix: MatrixMarket dimensions %dx%d nnz=%d exceed the %d limit", rows, cols, nnz, maxDim)
	}

	coo := NewCOO[T](rows, cols)
	cap := nnz
	if symmetry == "symmetric" {
		cap = 2 * nnz
	}
	coo.Entries = make([]Entry[T], 0, cap)
	read := 0
	for read < nnz && sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		f := strings.Fields(line)
		want := 3
		if field == "pattern" {
			want = 2
		}
		if len(f) < want {
			return nil, fmt.Errorf("matrix: short MatrixMarket entry %q", line)
		}
		i, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("matrix: bad row index %q: %v", f[0], err)
		}
		j, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("matrix: bad column index %q: %v", f[1], err)
		}
		v := 1.0
		if field != "pattern" {
			v, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("matrix: bad value %q: %v", f[2], err)
			}
		}
		if i < 1 || i > rows || j < 1 || j > cols {
			return nil, fmt.Errorf("matrix: entry (%d,%d) outside %dx%d", i, j, rows, cols)
		}
		coo.Add(i-1, j-1, T(v))
		if symmetry == "symmetric" && i != j {
			coo.Add(j-1, i-1, T(v))
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if read < nnz {
		return nil, fmt.Errorf("matrix: MatrixMarket stream truncated: %d of %d entries", read, nnz)
	}
	return coo.ToCSR(), nil
}
