package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// scrambledBanded builds a banded matrix and hides the band behind a
// random symmetric permutation — the classic RCM test case.
func scrambledBanded(n, band int, seed int64) *CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO[float64](n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 4)
		for k := 0; k < 3; k++ {
			j := i + 1 + rng.Intn(band)
			if j < n {
				coo.Add(i, j, 1)
				coo.Add(j, i, 1)
			}
		}
	}
	m := coo.ToCSR()
	p := Identity(n)
	rng.Shuffle(n, func(a, b int) { p[a], p[b] = p[b], p[a] })
	return PermuteSymmetric(m, p)
}

func TestRCMReducesBandwidth(t *testing.T) {
	m := scrambledBanded(800, 5, 1)
	before := ComputeStats(m).Bandwidth
	p := RCM(m)
	if !p.Valid() {
		t.Fatal("invalid RCM permutation")
	}
	after := BandwidthAfter(m, p)
	if after >= before/4 {
		t.Errorf("bandwidth %d → %d: expected a strong reduction", before, after)
	}
	// The permuted matrix really has that bandwidth.
	pm := PermuteSymmetric(m, p)
	if got := ComputeStats(pm).Bandwidth; got != after {
		t.Errorf("BandwidthAfter says %d, permuted matrix has %d", after, got)
	}
}

func TestRCMPreservesSpMVM(t *testing.T) {
	m := scrambledBanded(300, 4, 2)
	p := RCM(m)
	pm := PermuteSymmetric(m, p)
	rng := rand.New(rand.NewSource(7))
	x := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	// (PAPᵀ)(Px) == P(Ax).
	px := Gather(make([]float64, 300), x, p)
	yp := make([]float64, 300)
	if err := pm.MulVec(yp, px); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 300)
	if err := m.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	py := Gather(make([]float64, 300), y, p)
	for i := range yp {
		if d := yp[i] - py[i]; d > 1e-10 || d < -1e-10 {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestRCMHandlesDisconnectedComponents(t *testing.T) {
	// Two blocks with no coupling.
	coo := NewCOO[float64](10, 10)
	for i := 0; i < 5; i++ {
		coo.Add(i, i, 1)
		if i > 0 {
			coo.Add(i, i-1, 1)
			coo.Add(i-1, i, 1)
		}
	}
	for i := 5; i < 10; i++ {
		coo.Add(i, i, 1)
	}
	p := RCM(coo.ToCSR())
	if !p.Valid() {
		t.Fatalf("invalid permutation %v", p)
	}
}

func TestRCMEmptyAndDiagonal(t *testing.T) {
	if len(RCM(NewCOO[float64](0, 0).ToCSR())) != 0 {
		t.Error("empty matrix")
	}
	// Pure diagonal: any valid permutation is fine.
	coo := NewCOO[float64](6, 6)
	for i := 0; i < 6; i++ {
		coo.Add(i, i, 1)
	}
	if !RCM(coo.ToCSR()).Valid() {
		t.Error("diagonal matrix permutation invalid")
	}
}

// Property: RCM always yields a valid permutation and never increases
// the bandwidth of an already optimally-ordered banded matrix by more
// than the band itself.
func TestRCMPropertyValid(t *testing.T) {
	f := func(seed int64) bool {
		m := scrambledBanded(60+int(seed&31), 3, seed&0xff)
		p := RCM(m)
		return p.Valid() && BandwidthAfter(m, p) <= ComputeStats(m).Bandwidth
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRCMOnNonsymmetricPattern(t *testing.T) {
	// Strictly upper bidiagonal: symmetrization must connect the chain.
	coo := NewCOO[float64](50, 50)
	for i := 0; i < 49; i++ {
		coo.Add(i, i+1, 1)
	}
	for i := 0; i < 50; i++ {
		coo.Add(i, i, 2)
	}
	m := coo.ToCSR()
	p := RCM(m)
	if !p.Valid() {
		t.Fatal("invalid permutation")
	}
	if bw := BandwidthAfter(m, p); bw > 2 {
		t.Errorf("chain bandwidth after RCM = %d", bw)
	}
}
