package matrix

import (
	"math"
	"testing"
)

func TestDiag(t *testing.T) {
	coo := NewCOO[float64](3, 3)
	coo.Add(0, 0, 5)
	coo.Add(1, 2, 1)
	coo.Add(2, 2, -3)
	d := Diag(coo.ToCSR())
	if d[0] != 5 || d[1] != 0 || d[2] != -3 {
		t.Errorf("diag = %v", d)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("rectangular Diag accepted")
		}
	}()
	Diag(NewCOO[float64](2, 3).ToCSR())
}

func TestScaleRowsAndCols(t *testing.T) {
	m := randomCSR(6, 5, 0.5, 81)
	orig := m.Clone()
	s := []float64{1, 2, 0.5, -1, 3, 0}
	ScaleRows(m, s)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) != orig.At(i, j)*s[i] {
				t.Fatalf("row scale at (%d,%d)", i, j)
			}
		}
	}
	m2 := orig.Clone()
	cs := []float64{2, 0, 1, -2, 4}
	ScaleCols(m2, cs)
	for i := 0; i < 6; i++ {
		for j := 0; j < 5; j++ {
			if m2.At(i, j) != orig.At(i, j)*cs[j] {
				t.Fatalf("col scale at (%d,%d)", i, j)
			}
		}
	}
	for _, f := range []func(){
		func() { ScaleRows(m, []float64{1}) },
		func() { ScaleCols(m, []float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad scale length accepted")
				}
			}()
			f()
		}()
	}
}

func TestAddMatrices(t *testing.T) {
	a := randomCSR(8, 7, 0.3, 82)
	b := randomCSR(8, 7, 0.3, 83)
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 7; j++ {
			want := a.At(i, j) + b.At(i, j)
			if math.Abs(sum.At(i, j)-want) > 1e-14 {
				t.Fatalf("sum at (%d,%d)", i, j)
			}
		}
	}
	// Columns stay sorted.
	for i := 0; i < sum.NRows; i++ {
		cols, _ := sum.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				t.Fatal("unsorted row after Add")
			}
		}
	}
	if _, err := Add(a, randomCSR(3, 3, 0.5, 84)); err == nil {
		t.Error("shape mismatch accepted")
	}
}

func TestSymmetrize(t *testing.T) {
	m := randomCSR(10, 10, 0.2, 85)
	s, err := Symmetrize(m)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Equal(s.Transpose(), 1e-14) {
		t.Error("result not symmetric")
	}
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			want := (m.At(i, j) + m.At(j, i)) / 2
			if math.Abs(s.At(i, j)-want) > 1e-14 {
				t.Fatalf("value at (%d,%d)", i, j)
			}
		}
	}
	if _, err := Symmetrize(NewCOO[float64](2, 3).ToCSR()); err == nil {
		t.Error("rectangular accepted")
	}
}

func TestResidualNorm(t *testing.T) {
	m := randomCSR(12, 12, 0.4, 86)
	x := make([]float64, 12)
	for i := range x {
		x[i] = float64(i) * 0.1
	}
	b := make([]float64, 12)
	if err := m.MulVec(b, x); err != nil {
		t.Fatal(err)
	}
	r, err := ResidualNorm(m, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if r > 1e-12 {
		t.Errorf("exact solution residual = %g", r)
	}
	b[0] += 3
	b[4] -= 4
	r, err = ResidualNorm(m, x, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-5) > 1e-12 {
		t.Errorf("residual = %g, want 5", r)
	}
	if _, err := ResidualNorm(m, x[:3], b); err == nil {
		t.Error("bad x size accepted")
	}
}
