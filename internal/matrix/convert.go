package matrix

import (
	"slices"

	"pjds/internal/par"
)

// ConvertOptions configure the parallel ingest-and-convert pipeline:
// how many workers format construction may use, an optional scratch
// arena reused across conversions, and an optional phase timer feeding
// the convert telemetry lane. The zero value selects the process-wide
// default worker count (par.SetDefault, usually a CLI -workers flag),
// no arena, and no instrumentation — and is bit-identical to a
// sequential conversion for any worker count.
type ConvertOptions struct {
	// Workers is the goroutine count for the parallel construction
	// phases; 0 selects the process default, 1 forces sequential.
	Workers int
	// Arena, when non-nil, supplies reusable scratch buffers. See the
	// Arena type for the (non-concurrent) usage contract.
	Arena *Arena
	// Timer, when non-nil, receives one Phase call per pipeline phase
	// ("mm-parse", "csr-assemble", "pjds-fill", ...); the returned
	// function is called when the phase ends. internal/convert provides
	// the telemetry-backed implementation.
	Timer PhaseTimer
	// ForceParallel disables the small-problem inline shortcut so the
	// determinism tests can drive the parallel path on tiny fixtures.
	ForceParallel bool
}

// PhaseTimer times named conversion phases. Implementations must be
// safe for sequential use; phases never overlap within one conversion.
type PhaseTimer interface {
	// Phase marks the start of a named phase and returns the function
	// that ends it.
	Phase(name string) func()
}

// Phase starts a named phase on the options' timer, returning a no-op
// closer when no timer is configured.
func (o ConvertOptions) Phase(name string) func() {
	if o.Timer == nil {
		return func() {}
	}
	return o.Timer.Phase(name)
}

// EffectiveWorkers resolves the worker count against the process
// default.
func (o ConvertOptions) EffectiveWorkers() int { return par.Resolve(o.Workers) }

// Run executes fn block-parallel over [0, n) with the options' worker
// count (see par.For for the determinism contract).
func (o ConvertOptions) Run(n int, fn func(w, lo, hi int)) {
	if o.ForceParallel {
		par.ForceFor(o.Workers, n, fn)
		return
	}
	par.For(o.Workers, n, fn)
}

// entrySource streams a deterministic sequence of (row, col, val)
// triples; assembleCSR consumes it twice (counting pass, then
// scatter), and both passes must yield the identical sequence.
type entrySource[T Float] func(yield func(row int, col int32, val T))

// assembleCSR compiles an entry stream into CSR with a counting pass
// and exactly one allocation per output array (no growth-by-append):
//
//  1. count  — one sequential pass increments per-row counts and the
//     prefix sum becomes RowPtr;
//  2. scatter — a second pass writes each entry into its row segment
//     in stream order;
//  3. sort   — rows are sorted by column in parallel, stably in the
//     stream order of duplicates, and duplicates are summed in place;
//  4. compact — only when duplicates shrank rows, a final parallel
//     pass re-packs the arrays (the no-duplicate fast path reuses the
//     scatter arrays as the result).
//
// Duplicate (row, col) pairs are summed in stream order, making the
// result independent of the worker count by construction.
func assembleCSR[T Float](rows, cols, nnz int, src entrySource[T], opt ConvertOptions) *CSR[T] {
	done := opt.Phase("csr-count")
	rowPtr := make([]int, rows+1)
	src(func(r int, c int32, v T) {
		rowPtr[r+1]++
	})
	maxLen := 0
	for i := 0; i < rows; i++ {
		if l := rowPtr[i+1]; l > maxLen {
			maxLen = l
		}
		rowPtr[i+1] += rowPtr[i]
	}
	total := rowPtr[rows]
	done()

	done = opt.Phase("csr-scatter")
	colIdx := make([]int32, total)
	val := make([]T, total)
	next := opt.Arena.Int(rows)
	copy(next, rowPtr[:rows])
	src(func(r int, c int32, v T) {
		p := next[r]
		next[r]++
		colIdx[p] = c
		val[p] = v
	})
	done()

	done = opt.Phase("csr-sort")
	workers := opt.EffectiveWorkers()
	// Per-worker sort scratch: (col, position) keys and a value copy.
	keys := make([][]uint64, workers)
	tmpV := make([][]T, workers)
	for w := range keys {
		keys[w] = opt.Arena.Uint64(maxLen)
		tmpV[w] = Floats[T](opt.Arena, maxLen)
	}
	newLen := opt.Arena.Int(rows)
	opt.Run(rows, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			newLen[i] = sortRowEntries(colIdx, val, rowPtr[i], rowPtr[i+1], keys[w], tmpV[w])
		}
	})
	done()

	compacted := 0
	for i := 0; i < rows; i++ {
		compacted += newLen[i]
	}
	if compacted == total {
		return &CSR[T]{NRows: rows, NCols: cols, RowPtr: rowPtr, ColIdx: colIdx, Val: val}
	}

	// Duplicates were summed: re-pack the shortened rows.
	done = opt.Phase("csr-compact")
	outPtr := make([]int, rows+1)
	for i := 0; i < rows; i++ {
		outPtr[i+1] = outPtr[i] + newLen[i]
	}
	outCol := make([]int32, compacted)
	outVal := make([]T, compacted)
	opt.Run(rows, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			src, dst := rowPtr[i], outPtr[i]
			n := newLen[i]
			copy(outCol[dst:dst+n], colIdx[src:src+n])
			copy(outVal[dst:dst+n], val[src:src+n])
		}
	})
	done()
	return &CSR[T]{NRows: rows, NCols: cols, RowPtr: outPtr, ColIdx: outCol, Val: outVal}
}

// sortRowEntries sorts one row segment [lo, hi) of (colIdx, val) by
// column — stably in input order for equal columns — and sums
// duplicate columns in place (in input order, so the floating-point
// result is deterministic). It returns the deduplicated length; the
// segment's first return-value entries hold the result.
func sortRowEntries[T Float](colIdx []int32, val []T, lo, hi int, keys []uint64, tmpV []T) int {
	n := hi - lo
	if n <= 1 {
		return n
	}
	// Composite keys (col, input position) give a total order, so an
	// unstable sort is stable in effect.
	keys = keys[:n]
	for k := 0; k < n; k++ {
		keys[k] = uint64(uint32(colIdx[lo+k]))<<32 | uint64(uint32(k))
	}
	slices.Sort(keys)
	tmpV = tmpV[:n]
	copy(tmpV, val[lo:hi])
	w := 0
	for k := 0; k < n; {
		col := int32(keys[k] >> 32)
		sum := tmpV[uint32(keys[k])]
		k++
		for k < n && int32(keys[k]>>32) == col {
			sum += tmpV[uint32(keys[k])]
			k++
		}
		colIdx[lo+w] = col
		val[lo+w] = sum
		w++
	}
	return w
}

// ToCSROpt compiles the COO matrix into CRS form like ToCSR, with
// explicit conversion options (worker count, arena, phase timer). The
// result is bit-identical for every worker count: duplicates are
// summed in insertion order regardless of how rows are distributed
// over workers.
func (m *COO[T]) ToCSROpt(opt ConvertOptions) *CSR[T] {
	return assembleCSR(m.Rows, m.Cols, len(m.Entries), func(yield func(int, int32, T)) {
		for _, e := range m.Entries {
			yield(e.Row, int32(e.Col), e.Val)
		}
	}, opt)
}
