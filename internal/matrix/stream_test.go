package matrix

import (
	"bytes"
	"strings"
	"testing"
)

// withChunkBytes shrinks the parser block size so small fixtures
// exercise the multi-chunk path.
func withChunkBytes(t *testing.T, n int) {
	t.Helper()
	old := mmChunkBytes
	mmChunkBytes = n
	t.Cleanup(func() { mmChunkBytes = old })
}

// TestReadMatrixMarketOptWorkerDeterminism round-trips a random matrix
// through the writer and the chunked reader at worker counts 1..8 and
// tiny chunk sizes: every combination must reproduce the matrix
// bit-identically.
func TestReadMatrixMarketOptWorkerDeterminism(t *testing.T) {
	m := randomCSR(80, 60, 0.05, 21)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{16, 64, 1 << 20} {
		withChunkBytes(t, chunk)
		for w := 1; w <= 8; w++ {
			got, st, err := ReadMatrixMarketOpt[float64](bytes.NewReader(buf.Bytes()),
				ConvertOptions{Workers: w, ForceParallel: true})
			if err != nil {
				t.Fatalf("chunk=%d workers=%d: %v", chunk, w, err)
			}
			csrBitIdentical(t, "round trip", m, got)
			if st.HeaderNnz != m.Nnz() || int(st.Entries) != m.Nnz() {
				t.Fatalf("stats: header %d entries %d, want %d", st.HeaderNnz, st.Entries, m.Nnz())
			}
			if chunk == 16 && st.Chunks < 2 {
				t.Fatalf("chunk=16 parsed in %d chunk(s); multi-chunk path not exercised", st.Chunks)
			}
		}
	}
}

func TestReadMatrixMarketSymmetricPattern(t *testing.T) {
	withChunkBytes(t, 24)
	in := "%%MatrixMarket matrix coordinate pattern symmetric\n" +
		"3 3 3\n2 1\n3 3\n3 1\n"
	m, st, err := ReadMatrixMarketOpt[float64](strings.NewReader(in), ConvertOptions{Workers: 3, ForceParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	// 3 entries, two off-diagonal → 5 stored after expansion.
	if m.Nnz() != 5 || st.Entries != 5 {
		t.Fatalf("nnz = %d stats %d, want 5", m.Nnz(), st.Entries)
	}
	for _, at := range [][2]int{{1, 0}, {0, 1}, {2, 2}, {2, 0}, {0, 2}} {
		if m.At(at[0], at[1]) != 1 {
			t.Fatalf("At(%d,%d) = %g, want 1", at[0], at[1], m.At(at[0], at[1]))
		}
	}
}

// TestReadMatrixMarketTrailingJunk: the sequential reader stopped
// after the size-line entry count and never looked at trailing bytes;
// the chunked reader must preserve that behaviour even when the junk
// lands in a chunk that parsed entries too.
func TestReadMatrixMarketTrailingJunk(t *testing.T) {
	withChunkBytes(t, 16)
	in := "%%MatrixMarket matrix coordinate real general\n" +
		"2 2 2\n1 1 1.5\n2 2 -3\nthis is not an entry\n"
	m, _, err := ReadMatrixMarketOpt[float64](strings.NewReader(in), ConvertOptions{Workers: 4, ForceParallel: true})
	if err != nil {
		t.Fatalf("trailing junk after nnz entries must be ignored: %v", err)
	}
	if m.Nnz() != 2 || m.At(0, 0) != 1.5 || m.At(1, 1) != -3 {
		t.Fatalf("bad matrix: nnz=%d", m.Nnz())
	}
	// Extra *valid* entries beyond nnz are ignored too (old behaviour).
	in2 := "%%MatrixMarket matrix coordinate real general\n" +
		"2 2 1\n1 1 1.5\n2 2 -3\n"
	m2, _, err := ReadMatrixMarketOpt[float64](strings.NewReader(in2), ConvertOptions{})
	if err != nil || m2.Nnz() != 1 {
		t.Fatalf("entries beyond header count must be ignored: nnz=%d err=%v", m2.Nnz(), err)
	}
}

// TestReadMatrixMarketErrors keeps the sequential reader's error table
// green through the chunked rewrite.
func TestReadMatrixMarketErrorsChunked(t *testing.T) {
	withChunkBytes(t, 16)
	cases := map[string]string{
		"empty":          "",
		"bad header":     "%%MatrixMarket tensor coordinate real general\n1 1 1\n1 1 1\n",
		"bad field":      "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1\n",
		"bad symmetry":   "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 1\n1 1 1\n",
		"bad size":       "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"negative size":  "%%MatrixMarket matrix coordinate real general\n-1 2 1\n1 1 1\n",
		"truncated":      "%%MatrixMarket matrix coordinate real general\n2 2 2\n1 1 1\n",
		"entry range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"short entry":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n",
		"bad value":      "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 abc\n",
		"bad row index":  "%%MatrixMarket matrix coordinate real general\n2 2 1\nx 1 1\n",
		"bad col index":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 x 1\n",
		"rect symmetric": "%%MatrixMarket matrix coordinate real symmetric\n2 3 1\n1 1 1\n",
		"huge dims":      "%%MatrixMarket matrix coordinate real general\n1000000000 1000000000 1\n1 1 1\n",
	}
	for name, in := range cases {
		for _, w := range []int{1, 4} {
			if _, _, err := ReadMatrixMarketOpt[float64](strings.NewReader(in), ConvertOptions{Workers: w, ForceParallel: true}); err == nil {
				t.Errorf("%s (workers=%d): no error", name, w)
			}
		}
	}
}

func TestReadMatrixMarketCRLFAndComments(t *testing.T) {
	withChunkBytes(t, 16)
	in := "%%MatrixMarket matrix coordinate real general\r\n" +
		"% a comment\r\n\r\n2 2 2\r\n1 1 1.5\r\n% mid-stream comment\r\n2 2 -3\r\n"
	m, _, err := ReadMatrixMarketOpt[float64](strings.NewReader(in), ConvertOptions{Workers: 2, ForceParallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if m.Nnz() != 2 || m.At(0, 0) != 1.5 {
		t.Fatalf("CRLF parse: nnz=%d", m.Nnz())
	}
}

func TestReadMatrixMarketIntegerNoFinalNewline(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate integer general\n2 2 2\n1 2 7\n2 1 -4"
	m, _, err := ReadMatrixMarketOpt[float64](strings.NewReader(in), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(0, 1) != 7 || m.At(1, 0) != -4 {
		t.Fatal("integer parse")
	}
}

func TestReadMatrixMarketZeroNnz(t *testing.T) {
	in := "%%MatrixMarket matrix coordinate real general\n3 3 0\n"
	m, _, err := ReadMatrixMarketOpt[float64](strings.NewReader(in), ConvertOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.NRows != 3 || m.Nnz() != 0 {
		t.Fatalf("zero-nnz: %dx%d nnz=%d", m.NRows, m.NCols, m.Nnz())
	}
}
