package matrix

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"pjds/internal/profiles"
)

// This file implements the chunked, parallel MatrixMarket reader: the
// stream is cut into blocks of whole lines, a worker pool parses each
// block into flat (row, col, val) triples, and the ordered per-chunk
// triples feed the counting-pass CSR assembly of convert.go. Ingest
// of multi-million-entry files is dominated by number parsing, which
// this parallelizes while keeping the result bit-identical to a
// sequential parse: chunks are merged strictly in stream order.

// mmChunkBytes is the target parser block size. A variable so the
// tests can force multi-chunk parsing of small fixtures.
var mmChunkBytes = 1 << 20

// ReadStats reports what the chunked reader saw; cmd/matinfo streams
// these instead of materializing a COO copy of the file.
type ReadStats struct {
	// Rows, Cols, HeaderNnz echo the size line.
	Rows, Cols, HeaderNnz int
	// Entries is the number of stored entries after symmetric
	// expansion (what the CSR holds before duplicate summing).
	Entries int64
	// Chunks is the number of parser blocks and Workers the resolved
	// worker count.
	Chunks, Workers int
}

// mmHeader carries the parsed header and size line.
type mmHeader struct {
	field, symmetry string
	rows, cols, nnz int
}

// mmTriples is one parsed chunk: flat triple arrays in stream order.
// err reports the first malformed line; row/col/val hold the entries
// parsed before it.
type mmTriples[T Float] struct {
	row, col []int32
	val      []T
	err      error
}

// ReadMatrixMarketOpt parses a MatrixMarket coordinate stream into
// CSR with explicit conversion options. Supported qualifiers and
// semantics match ReadMatrixMarket: real/integer/pattern ×
// general/symmetric, pattern entries get value 1, symmetric files are
// expanded to full storage, entries beyond the size-line count are
// ignored. The result is bit-identical for every worker count.
func ReadMatrixMarketOpt[T Float](r io.Reader, opt ConvertOptions) (*CSR[T], ReadStats, error) {
	// Label the coordinating goroutine for the ingest stage; the
	// parser worker goroutines spawned below inherit the label.
	profiles.SetPhase(profiles.PhaseConvert)
	br := bufio.NewReaderSize(r, 1<<16)
	var st ReadStats
	hdr, err := readMMHeader(br)
	if err != nil {
		return nil, st, err
	}
	st.Rows, st.Cols, st.HeaderNnz = hdr.rows, hdr.cols, hdr.nnz
	st.Workers = opt.EffectiveWorkers()

	done := opt.Phase("mm-parse")
	chunks, err := parseMMChunks[T](br, hdr, opt)
	done()
	if err != nil {
		return nil, st, err
	}
	st.Chunks = len(chunks)

	// Enforce the size-line entry count in stream order: a chunk error
	// only matters if it occurs within the first nnz entries (the
	// sequential reader stopped reading after nnz entries and never saw
	// trailing garbage).
	seen := 0
	for _, c := range chunks {
		seen += len(c.row)
		if c.err != nil && seen < hdr.nnz {
			return nil, st, c.err
		}
		if c.err != nil {
			break
		}
	}
	if seen < hdr.nnz {
		return nil, st, fmt.Errorf("matrix: MatrixMarket stream truncated: %d of %d entries", seen, hdr.nnz)
	}

	sym := hdr.symmetry == "symmetric"
	limit := hdr.nnz
	src := func(yield func(int, int32, T)) {
		left := limit
		for _, c := range chunks {
			n := len(c.row)
			if n > left {
				n = left
			}
			for k := 0; k < n; k++ {
				i, j := c.row[k], c.col[k]
				yield(int(i), j, c.val[k])
				if sym && i != j {
					yield(int(j), i, c.val[k])
				}
			}
			left -= n
			if left == 0 {
				break
			}
		}
	}
	m := assembleCSR(hdr.rows, hdr.cols, hdr.nnz, src, opt)
	st.Entries = int64(m.Nnz())
	return m, st, nil
}

// readMMHeader parses the banner, comments, and size line.
func readMMHeader(br *bufio.Reader) (mmHeader, error) {
	var h mmHeader
	line, err := readMMLine(br)
	if err != nil {
		return h, fmt.Errorf("matrix: empty MatrixMarket stream")
	}
	header := strings.Fields(strings.ToLower(line))
	if len(header) < 4 || header[0] != "%%matrixmarket" || header[1] != "matrix" || header[2] != "coordinate" {
		return h, fmt.Errorf("matrix: unsupported MatrixMarket header %q", line)
	}
	h.field = header[3]
	h.symmetry = "general"
	if len(header) >= 5 {
		h.symmetry = header[4]
	}
	switch h.field {
	case "real", "integer", "pattern":
	default:
		return h, fmt.Errorf("matrix: unsupported MatrixMarket field %q", h.field)
	}
	switch h.symmetry {
	case "general", "symmetric":
	default:
		return h, fmt.Errorf("matrix: unsupported MatrixMarket symmetry %q", h.symmetry)
	}

	// Skip comments and blank lines, read the size line.
	for {
		line, err = readMMLine(br)
		if err != nil {
			return h, fmt.Errorf("matrix: MatrixMarket stream missing size line")
		}
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "%") {
			continue
		}
		f := strings.Fields(t)
		if len(f) < 3 {
			return h, fmt.Errorf("matrix: bad MatrixMarket size line %q", t)
		}
		var errs [3]error
		h.rows, errs[0] = strconv.Atoi(f[0])
		h.cols, errs[1] = strconv.Atoi(f[1])
		h.nnz, errs[2] = strconv.Atoi(f[2])
		for _, e := range errs {
			if e != nil {
				return h, fmt.Errorf("matrix: bad MatrixMarket size line %q: %v", t, e)
			}
		}
		break
	}
	if h.rows <= 0 || h.cols <= 0 || h.nnz < 0 {
		return h, fmt.Errorf("matrix: bad MatrixMarket dimensions %dx%d nnz=%d", h.rows, h.cols, h.nnz)
	}
	if h.symmetry == "symmetric" && h.rows != h.cols {
		return h, fmt.Errorf("matrix: symmetric MatrixMarket file must be square, got %dx%d", h.rows, h.cols)
	}
	// Refuse sizes whose index arrays alone would exceed ~2 GiB: no
	// published sparse matrix comes close, and unguarded headers would
	// let a malformed file drive allocation to OOM.
	const maxDim = 1 << 28
	if h.rows > maxDim || h.cols > maxDim || h.nnz > maxDim {
		return h, fmt.Errorf("matrix: MatrixMarket dimensions %dx%d nnz=%d exceed the %d limit", h.rows, h.cols, h.nnz, maxDim)
	}
	return h, nil
}

// readMMLine reads one line (without the trailing newline); io.EOF
// with partial content still returns the content.
func readMMLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil && line == "" {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// parseMMChunks cuts the remaining stream into whole-line blocks and
// parses them on a worker pool, returning the chunks in stream order.
func parseMMChunks[T Float](br *bufio.Reader, hdr mmHeader, opt ConvertOptions) ([]*mmTriples[T], error) {
	workers := opt.EffectiveWorkers()
	type job struct {
		idx  int
		data []byte
	}
	var (
		chunks []*mmTriples[T]
		mu     sync.Mutex
		wg     sync.WaitGroup
		jobs   chan job
	)
	put := func(idx int, t *mmTriples[T]) {
		mu.Lock()
		for len(chunks) <= idx {
			chunks = append(chunks, nil)
		}
		chunks[idx] = t
		mu.Unlock()
	}
	if workers > 1 {
		jobs = make(chan job, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					put(j.idx, parseMMChunk[T](j.data, hdr))
				}
			}()
		}
	}

	idx := 0
	for {
		block, err := readMMBlock(br)
		if err != nil && err != io.EOF {
			if workers > 1 {
				close(jobs)
				wg.Wait()
			}
			return nil, err
		}
		if len(block) > 0 {
			if workers > 1 {
				jobs <- job{idx, block}
			} else {
				put(idx, parseMMChunk[T](block, hdr))
			}
			idx++
		}
		if err == io.EOF {
			break
		}
	}
	if workers > 1 {
		close(jobs)
		wg.Wait()
	}
	return chunks, nil
}

// readMMBlock reads about mmChunkBytes bytes extended to a whole-line
// boundary. It returns io.EOF (possibly alongside a final block) when
// the stream ends.
func readMMBlock(br *bufio.Reader) ([]byte, error) {
	buf := make([]byte, mmChunkBytes)
	n, err := io.ReadFull(br, buf)
	block := buf[:n]
	switch err {
	case nil:
		// Extend to the end of the current line.
		rest, err2 := br.ReadBytes('\n')
		block = append(block, rest...)
		if err2 == io.EOF {
			return block, io.EOF
		}
		if err2 != nil {
			return block, err2
		}
		return block, nil
	case io.ErrUnexpectedEOF, io.EOF:
		return block, io.EOF
	default:
		return block, err
	}
}

// parseMMChunk parses one block of whole lines into flat triples. It
// validates index ranges against the header dimensions and stops at
// the first malformed line, recording it in err.
func parseMMChunk[T Float](data []byte, hdr mmHeader) *mmTriples[T] {
	// Exact preallocation: one potential entry per line.
	lines := bytes.Count(data, []byte{'\n'}) + 1
	t := &mmTriples[T]{
		row: make([]int32, 0, lines),
		col: make([]int32, 0, lines),
		val: make([]T, 0, lines),
	}
	pattern := hdr.field == "pattern"
	for len(data) > 0 {
		var line []byte
		if k := bytes.IndexByte(data, '\n'); k >= 0 {
			line, data = data[:k], data[k+1:]
		} else {
			line, data = data, nil
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '%' {
			continue
		}
		f0, rest := mmToken(line)
		f1, rest := mmToken(rest)
		i, ok0 := mmAtoi(f0)
		j, ok1 := mmAtoi(f1)
		if !ok0 {
			t.err = fmt.Errorf("matrix: bad row index %q", string(f0))
			return t
		}
		if !ok1 {
			if len(f1) == 0 {
				t.err = fmt.Errorf("matrix: short MatrixMarket entry %q", string(line))
			} else {
				t.err = fmt.Errorf("matrix: bad column index %q", string(f1))
			}
			return t
		}
		v := 1.0
		if !pattern {
			f2, _ := mmToken(rest)
			if len(f2) == 0 {
				t.err = fmt.Errorf("matrix: short MatrixMarket entry %q", string(line))
				return t
			}
			var err error
			v, err = strconv.ParseFloat(string(f2), 64)
			if err != nil {
				t.err = fmt.Errorf("matrix: bad value %q: %v", string(f2), err)
				return t
			}
		}
		if i < 1 || i > hdr.rows || j < 1 || j > hdr.cols {
			t.err = fmt.Errorf("matrix: entry (%d,%d) outside %dx%d", i, j, hdr.rows, hdr.cols)
			return t
		}
		t.row = append(t.row, int32(i-1))
		t.col = append(t.col, int32(j-1))
		t.val = append(t.val, T(v))
	}
	return t
}

// mmToken splits the next whitespace-delimited token off line.
func mmToken(line []byte) (tok, rest []byte) {
	i := 0
	for i < len(line) && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r') {
		i++
	}
	j := i
	for j < len(line) && line[j] != ' ' && line[j] != '\t' && line[j] != '\r' {
		j++
	}
	return line[i:j], line[j:]
}

// mmAtoi parses a (possibly signed) decimal integer.
func mmAtoi(tok []byte) (int, bool) {
	if len(tok) == 0 {
		return 0, false
	}
	i, neg := 0, false
	if tok[0] == '+' || tok[0] == '-' {
		neg = tok[0] == '-'
		i++
	}
	if i == len(tok) {
		return 0, false
	}
	n := 0
	for ; i < len(tok); i++ {
		c := tok[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<40 {
			return 0, false
		}
	}
	if neg {
		n = -n
	}
	return n, true
}
