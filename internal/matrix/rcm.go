package matrix

import "sort"

// RCM returns the Reverse Cuthill-McKee permutation of a square
// matrix (new → old): a breadth-first ordering of the symmetrized
// adjacency graph from a pseudo-peripheral low-degree vertex, with
// neighbours visited in increasing-degree order, reversed. RCM
// reduces the matrix bandwidth and therefore improves the RHS cache
// reuse (the α of Eq. 1) that the paper identifies as a main
// performance lever; it composes with pJDS (reorder first, then sort
// by length within the reordered matrix).
func RCM[T Float](m *CSR[T]) Perm {
	n := m.NRows
	if n == 0 {
		return Perm{}
	}
	// Symmetrized adjacency: row pattern plus column pattern.
	tr := m.Transpose()
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		cols, _ := m.Row(i)
		tcols, _ := tr.Row(i)
		merged := make([]int32, 0, len(cols)+len(tcols))
		a, b := 0, 0
		for a < len(cols) || b < len(tcols) {
			var c int32
			switch {
			case a == len(cols):
				c = tcols[b]
				b++
			case b == len(tcols):
				c = cols[a]
				a++
			case cols[a] < tcols[b]:
				c = cols[a]
				a++
			case cols[a] > tcols[b]:
				c = tcols[b]
				b++
			default:
				c = cols[a]
				a++
				b++
			}
			if int(c) != i && (len(merged) == 0 || merged[len(merged)-1] != c) {
				merged = append(merged, c)
			}
		}
		adj[i] = merged
	}
	degree := func(v int32) int { return len(adj[v]) }

	order := make([]int32, 0, n)
	visited := make([]bool, n)
	// Process every connected component.
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := int32(start)
		visited[root] = true
		compStart := len(order)
		order = append(order, root)
		for qi := compStart; qi < len(order); qi++ {
			v := order[qi]
			// Gather unvisited neighbours, sorted by ascending degree.
			var next []int32
			for _, w := range adj[v] {
				if !visited[w] {
					visited[w] = true
					next = append(next, w)
				}
			}
			sort.Slice(next, func(a, b int) bool {
				da, db := degree(next[a]), degree(next[b])
				if da != db {
					return da < db
				}
				return next[a] < next[b]
			})
			order = append(order, next...)
		}
	}
	// Reverse (the "R" in RCM).
	p := make(Perm, n)
	for i, v := range order {
		p[n-1-i] = int(v)
	}
	return p
}

// BandwidthAfter returns the bandwidth of PermuteSymmetric(m, p)
// without materializing the permuted matrix.
func BandwidthAfter[T Float](m *CSR[T], p Perm) int {
	inv := p.Inverse()
	bw := 0
	for i := 0; i < m.NRows; i++ {
		ni := inv[i]
		cols, _ := m.Row(i)
		for _, c := range cols {
			d := ni - inv[c]
			if d < 0 {
				d = -d
			}
			if d > bw {
				bw = d
			}
		}
	}
	return bw
}
