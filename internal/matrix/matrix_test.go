package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomCSR builds a random rows×cols matrix with approximately the
// given density, deterministic in seed.
func randomCSR(rows, cols int, density float64, seed int64) *CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

func TestCOOToCSRBasic(t *testing.T) {
	coo := NewCOO[float64](3, 4)
	coo.Add(2, 1, 5)
	coo.Add(0, 0, 1)
	coo.Add(0, 3, 2)
	coo.Add(1, 2, 3)
	m := coo.ToCSR()
	if m.NRows != 3 || m.NCols != 4 || m.Nnz() != 4 {
		t.Fatalf("shape/nnz: %dx%d nnz=%d", m.NRows, m.NCols, m.Nnz())
	}
	want := [][]float64{
		{1, 0, 0, 2},
		{0, 0, 3, 0},
		{0, 5, 0, 0},
	}
	for i := range want {
		for j := range want[i] {
			if got := m.At(i, j); got != want[i][j] {
				t.Errorf("At(%d,%d) = %g, want %g", i, j, got, want[i][j])
			}
		}
	}
}

func TestCOODuplicatesSummed(t *testing.T) {
	coo := NewCOO[float64](2, 2)
	coo.Add(0, 0, 1)
	coo.Add(0, 0, 2.5)
	coo.Add(1, 1, -1)
	coo.Add(0, 0, 0.5)
	m := coo.ToCSR()
	if m.Nnz() != 2 {
		t.Fatalf("nnz = %d, want 2 (duplicates summed)", m.Nnz())
	}
	if got := m.At(0, 0); got != 4 {
		t.Errorf("At(0,0) = %g, want 4", got)
	}
}

func TestCOOEmptyRowsAndMatrix(t *testing.T) {
	coo := NewCOO[float64](4, 4)
	coo.Add(1, 2, 7)
	m := coo.ToCSR()
	for _, i := range []int{0, 2, 3} {
		if m.RowLen(i) != 0 {
			t.Errorf("row %d length = %d, want 0", i, m.RowLen(i))
		}
	}
	empty := NewCOO[float64](5, 5).ToCSR()
	if empty.Nnz() != 0 || empty.MaxRowLen() != 0 {
		t.Errorf("empty matrix nnz=%d max=%d", empty.Nnz(), empty.MaxRowLen())
	}
	y := make([]float64, 5)
	if err := empty.MulVec(y, make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
}

func TestCOOAddOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range entry")
		}
	}()
	NewCOO[float64](2, 2).Add(2, 0, 1)
}

func TestNewCSRValidation(t *testing.T) {
	cases := []struct {
		name   string
		rowPtr []int
		colIdx []int32
		val    []float64
	}{
		{"short rowPtr", []int{0, 1}, []int32{0}, []float64{1}},
		{"rowPtr not starting at 0", []int{1, 1, 1}, nil, nil},
		{"len mismatch", []int{0, 1, 1}, []int32{0, 1}, []float64{1}},
		{"nnz mismatch", []int{0, 1, 3}, []int32{0, 1}, []float64{1, 2}},
		{"non-monotone", []int{0, 2, 1}, []int32{0, 1}, []float64{1, 2}},
		{"col out of range", []int{0, 1, 2}, []int32{0, 5}, []float64{1, 2}},
	}
	for _, c := range cases {
		if _, err := NewCSR[float64](2, 2, c.rowPtr, c.colIdx, c.val); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	if _, err := NewCSR[float64](2, 2, []int{0, 1, 2}, []int32{0, 1}, []float64{1, 2}); err != nil {
		t.Errorf("valid matrix rejected: %v", err)
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		m := randomCSR(37, 23, 0.2, seed)
		d := CSRToDense(m)
		x := make([]float64, 23)
		rng := rand.New(rand.NewSource(seed + 100))
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		ys, yd := make([]float64, 37), make([]float64, 37)
		if err := m.MulVec(ys, x); err != nil {
			t.Fatal(err)
		}
		if err := d.MulVec(yd, x); err != nil {
			t.Fatal(err)
		}
		for i := range ys {
			if math.Abs(ys[i]-yd[i]) > 1e-12 {
				t.Fatalf("seed %d: y[%d] = %g, dense %g", seed, i, ys[i], yd[i])
			}
		}
	}
}

func TestMulVecShapeErrors(t *testing.T) {
	m := randomCSR(4, 6, 0.5, 1)
	if err := m.MulVec(make([]float64, 4), make([]float64, 5)); err == nil {
		t.Error("MulVec accepted wrong x size")
	}
	if err := m.MulVec(make([]float64, 3), make([]float64, 6)); err == nil {
		t.Error("MulVec accepted wrong y size")
	}
	if err := m.MulVecAdd(make([]float64, 3), make([]float64, 6)); err == nil {
		t.Error("MulVecAdd accepted wrong y size")
	}
}

func TestMulVecAdd(t *testing.T) {
	m := randomCSR(10, 10, 0.3, 2)
	x := make([]float64, 10)
	for i := range x {
		x[i] = float64(i) - 4.5
	}
	y1 := make([]float64, 10)
	if err := m.MulVec(y1, x); err != nil {
		t.Fatal(err)
	}
	y2 := make([]float64, 10)
	for i := range y2 {
		y2[i] = 3
	}
	if err := m.MulVecAdd(y2, x); err != nil {
		t.Fatal(err)
	}
	for i := range y1 {
		if math.Abs(y2[i]-(y1[i]+3)) > 1e-12 {
			t.Fatalf("y2[%d] = %g, want %g", i, y2[i], y1[i]+3)
		}
	}
}

func TestTransposeInvolution(t *testing.T) {
	m := randomCSR(19, 31, 0.15, 3)
	tt := m.Transpose().Transpose()
	if !m.Equal(tt, 0) {
		t.Fatal("transpose twice is not identity")
	}
}

func TestTransposeElementwise(t *testing.T) {
	m := randomCSR(8, 5, 0.4, 4)
	tr := m.Transpose()
	if tr.NRows != 5 || tr.NCols != 8 {
		t.Fatalf("transpose shape %dx%d", tr.NRows, tr.NCols)
	}
	for i := 0; i < m.NRows; i++ {
		for j := 0; j < m.NCols; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("A[%d,%d] != At[%d,%d]", i, j, j, i)
			}
		}
	}
}

// Property: (Aᵀx)·y == x·(Ay), the defining adjoint identity.
func TestTransposeAdjointProperty(t *testing.T) {
	f := func(seed int64) bool {
		s := seed % 1000
		m := randomCSR(12, 9, 0.3, s)
		rng := rand.New(rand.NewSource(s + 7))
		x := make([]float64, 12)
		y := make([]float64, 9)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		atx := make([]float64, 9)
		ay := make([]float64, 12)
		if err := m.Transpose().MulVec(atx, x); err != nil {
			return false
		}
		if err := m.MulVec(ay, y); err != nil {
			return false
		}
		var lhs, rhs float64
		for i := range atx {
			lhs += atx[i] * y[i]
		}
		for i := range ay {
			rhs += ay[i] * x[i]
		}
		return math.Abs(lhs-rhs) <= 1e-9*(1+math.Abs(lhs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRowSlice(t *testing.T) {
	m := randomCSR(20, 15, 0.25, 5)
	s := m.RowSlice(5, 12)
	if s.NRows != 7 || s.NCols != 15 {
		t.Fatalf("slice shape %dx%d", s.NRows, s.NCols)
	}
	for i := 0; i < 7; i++ {
		for j := 0; j < 15; j++ {
			if s.At(i, j) != m.At(i+5, j) {
				t.Fatalf("slice At(%d,%d) mismatch", i, j)
			}
		}
	}
	// Degenerate slices.
	if e := m.RowSlice(4, 4); e.NRows != 0 || e.Nnz() != 0 {
		t.Error("empty slice not empty")
	}
	full := m.RowSlice(0, 20)
	if !m.Equal(full, 0) {
		t.Error("full slice differs from original")
	}
}

func TestRowSliceBoundsPanics(t *testing.T) {
	m := randomCSR(5, 5, 0.3, 6)
	for _, c := range [][2]int{{-1, 3}, {0, 6}, {4, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("RowSlice(%d,%d) did not panic", c[0], c[1])
				}
			}()
			m.RowSlice(c[0], c[1])
		}()
	}
}

func TestCloneIndependence(t *testing.T) {
	m := randomCSR(6, 6, 0.5, 7)
	c := m.Clone()
	if !m.Equal(c, 0) {
		t.Fatal("clone differs")
	}
	c.Val[0] += 10
	if m.Equal(c, 0) {
		t.Fatal("clone shares storage with original")
	}
}

func TestRowLenExtremes(t *testing.T) {
	coo := NewCOO[float64](4, 10)
	for j := 0; j < 7; j++ {
		coo.Add(0, j, 1)
	}
	coo.Add(1, 0, 1)
	coo.Add(2, 0, 1)
	coo.Add(2, 1, 1)
	// row 3 empty
	m := coo.ToCSR()
	if m.MaxRowLen() != 7 {
		t.Errorf("MaxRowLen = %d, want 7", m.MaxRowLen())
	}
	if m.MinRowLen() != 0 {
		t.Errorf("MinRowLen = %d, want 0", m.MinRowLen())
	}
	if got := m.AvgRowLen(); math.Abs(got-2.5) > 1e-15 {
		t.Errorf("AvgRowLen = %g, want 2.5", got)
	}
}

func TestConvertPrecision(t *testing.T) {
	m := randomCSR(10, 10, 0.3, 8)
	sp := Convert[float32](m)
	if sp.Nnz() != m.Nnz() || sp.NRows != m.NRows {
		t.Fatal("conversion changed structure")
	}
	for k := range m.Val {
		if float64(sp.Val[k]) != float64(float32(m.Val[k])) {
			t.Fatalf("val[%d] rounded incorrectly", k)
		}
	}
	back := Convert[float64](sp)
	for k := range back.Val {
		if back.Val[k] != float64(float32(m.Val[k])) {
			t.Fatal("round trip mismatch")
		}
	}
}

func TestDenseFromRowsAndMulVec(t *testing.T) {
	d := DenseFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	y := make([]float64, 3)
	if err := d.MulVec(y, []float64{1, -1}); err != nil {
		t.Fatal(err)
	}
	want := []float64{-1, -1, -1}
	for i := range want {
		if y[i] != want[i] {
			t.Errorf("y[%d] = %g, want %g", i, y[i], want[i])
		}
	}
	if err := d.MulVec(y, []float64{1}); err == nil {
		t.Error("dense MulVec accepted wrong x size")
	}
}

func TestDenseRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for ragged rows")
		}
	}()
	DenseFromRows([][]float64{{1, 2}, {3}})
}

func TestDenseCSRRoundTrip(t *testing.T) {
	m := randomCSR(9, 11, 0.35, 9)
	back := CSRToDense(m).ToCSR()
	if !m.Equal(back, 0) {
		t.Fatal("dense round trip changed matrix")
	}
}
