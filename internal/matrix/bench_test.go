package matrix

import "testing"

func benchMatrix(b *testing.B) *CSR[float64] {
	b.Helper()
	m := randomCSR(2000, 2000, 0.01, 1)
	b.SetBytes(int64(m.Nnz()) * 12)
	return m
}

func BenchmarkCSRMulVec(b *testing.B) {
	m := benchMatrix(b)
	x := make([]float64, m.NCols)
	y := make([]float64, m.NRows)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MulVec(y, x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCOOToCSR(b *testing.B) {
	coo := NewCOO[float64](2000, 2000)
	m := randomCSR(2000, 2000, 0.01, 2)
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			coo.Add(i, int(c), vals[k])
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = coo.ToCSR()
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}

func BenchmarkSortRowsByLengthDesc(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SortRowsByLengthDesc(m)
	}
}

func BenchmarkPermuteSymmetric(b *testing.B) {
	m := benchMatrix(b)
	p := SortRowsByLengthDesc(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PermuteSymmetric(m, p)
	}
}
