package matrix

import (
	"bytes"
	"fmt"
	"testing"
)

func benchMatrix(b *testing.B) *CSR[float64] {
	b.Helper()
	m := randomCSR(2000, 2000, 0.01, 1)
	b.SetBytes(int64(m.Nnz()) * 12)
	return m
}

func BenchmarkCSRMulVec(b *testing.B) {
	m := benchMatrix(b)
	x := make([]float64, m.NCols)
	y := make([]float64, m.NRows)
	for i := range x {
		x[i] = float64(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.MulVec(y, x); err != nil {
			b.Fatal(err)
		}
	}
}

func benchCOO(b *testing.B) *COO[float64] {
	b.Helper()
	coo := NewCOO[float64](2000, 2000)
	m := randomCSR(2000, 2000, 0.01, 2)
	for i := 0; i < m.NRows; i++ {
		cols, vals := m.Row(i)
		for k, c := range cols {
			coo.Add(i, int(c), vals[k])
		}
	}
	return coo
}

func BenchmarkCOOToCSR(b *testing.B) {
	coo := benchCOO(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = coo.ToCSR()
	}
}

// BenchmarkCOOToCSRWorkers measures the counting-pass assembly across
// worker counts, plus the arena-backed sweep variant that reuses
// scratch between conversions.
func BenchmarkCOOToCSRWorkers(b *testing.B) {
	coo := benchCOO(b)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := ConvertOptions{Workers: w, ForceParallel: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = coo.ToCSROpt(opt)
			}
		})
	}
	b.Run("workers=4/arena", func(b *testing.B) {
		arena := NewArena()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arena.Reset()
			_ = coo.ToCSROpt(ConvertOptions{Workers: 4, Arena: arena, ForceParallel: true})
		}
	})
}

// BenchmarkReadMatrixMarket measures the chunked text ingest (parse +
// CSR assembly) across worker counts on a pre-serialized matrix.
func BenchmarkReadMatrixMarket(b *testing.B) {
	m := randomCSR(2000, 2000, 0.01, 3)
	var buf bytes.Buffer
	if err := WriteMatrixMarket(&buf, m); err != nil {
		b.Fatal(err)
	}
	doc := buf.Bytes()
	b.SetBytes(int64(len(doc)))
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := ConvertOptions{Workers: w, ForceParallel: true}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := ReadMatrixMarketOpt[float64](bytes.NewReader(doc), opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Transpose()
	}
}

func BenchmarkSortRowsByLengthDesc(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SortRowsByLengthDesc(m)
	}
}

func BenchmarkPermuteSymmetric(b *testing.B) {
	m := benchMatrix(b)
	p := SortRowsByLengthDesc(m)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = PermuteSymmetric(m, p)
	}
}
