package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"sync"
)

// Handler returns an http.Handler serving this registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	return mux
}

// extraHandlers are the process-wide routes other observability
// subsystems (internal/flight /spans, internal/health /healthz)
// contribute to every future Serve mux, registered before Serve is
// called so the cmd wiring stays one flag check per subsystem.
var (
	extraMu       sync.Mutex
	extraHandlers = map[string]http.Handler{}
)

// RegisterHandler contributes a route to every subsequently started
// Serve endpoint (a nil handler removes the route). Core routes
// (/metrics, /debug/...) cannot be overridden.
func RegisterHandler(pattern string, h http.Handler) {
	extraMu.Lock()
	defer extraMu.Unlock()
	if h == nil {
		delete(extraHandlers, pattern)
		return
	}
	extraHandlers[pattern] = h
}

// registeredPatterns lists the contributed routes, sorted (shown on
// the dashboard's endpoint list).
func registeredPatterns() []string {
	extraMu.Lock()
	defer extraMu.Unlock()
	out := make([]string, 0, len(extraHandlers))
	for p := range extraHandlers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// serveMux builds the full introspection mux used by Serve: the
// registry endpoints, the live dashboard, any registered extra
// handlers, plus expvar and pprof.
func serveMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	h := r.Handler()
	mux.Handle("/metrics", h)
	mux.Handle("/metrics.json", h)
	mux.Handle("/dashboard", DashboardHandler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	extraMu.Lock()
	for pattern, eh := range extraHandlers {
		switch pattern {
		case "/metrics", "/metrics.json", "/dashboard", "/debug/vars":
			continue
		}
		mux.Handle(pattern, eh)
	}
	extraMu.Unlock()
	return mux
}

// Server is a live introspection endpoint started by Serve.
type Server struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP endpoint on addr exposing the registry plus the
// standard Go introspection handlers, for watching long scaling or
// solver runs live:
//
//	/metrics, /metrics.json  the registry (see Handler)
//	/dashboard               self-contained auto-refreshing HTML view
//	/debug/vars              expvar
//	/debug/pprof/...         net/http/pprof
//
// plus any routes contributed via RegisterHandler (e.g. /spans when
// the flight recorder is enabled, /healthz when the health engine
// runs). It returns once the listener is bound; serving continues in
// the background until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	mux := serveMux(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}
