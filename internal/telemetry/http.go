package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns an http.Handler serving this registry:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  JSON snapshot
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		_ = r.WriteJSON(w)
	})
	return mux
}

// serveMux builds the full introspection mux used by Serve: the
// registry endpoints plus expvar and pprof.
func serveMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.Handle("/metrics.json", r.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a live introspection endpoint started by Serve.
type Server struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// Close shuts the endpoint down.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts an HTTP endpoint on addr exposing the registry plus the
// standard Go introspection handlers, for watching long scaling or
// solver runs live:
//
//	/metrics, /metrics.json  the registry (see Handler)
//	/debug/vars              expvar
//	/debug/pprof/...         net/http/pprof
//
// It returns once the listener is bound; serving continues in the
// background until Close.
func Serve(addr string, r *Registry) (*Server, error) {
	mux := serveMux(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{Addr: ln.Addr().String(), ln: ln, srv: &http.Server{Handler: mux}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}
