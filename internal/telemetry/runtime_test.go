package telemetry

import (
	"runtime"
	"testing"
)

func TestRuntimeSampler(t *testing.T) {
	reg := NewRegistry()
	s := NewRuntimeSampler(reg)
	runtime.GC() // guarantee at least one cycle between baseline and sample
	s.Sample()

	snap := map[string]Series{}
	for _, sr := range reg.Snapshot() {
		snap[sr.Name] = sr
	}
	for _, name := range []string{
		"runtime_gc_pause_seconds_total",
		"runtime_gc_cpu_seconds_total",
		"runtime_gc_cycles_total",
		"runtime_heap_bytes",
		"runtime_goroutines",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("family %s missing from snapshot", name)
		}
	}
	if snap["runtime_heap_bytes"].Value <= 0 {
		t.Fatalf("heap bytes = %v, want > 0", snap["runtime_heap_bytes"].Value)
	}
	if snap["runtime_goroutines"].Value < 1 {
		t.Fatalf("goroutines = %v, want >= 1", snap["runtime_goroutines"].Value)
	}
	if snap["runtime_gc_cycles_total"].Value < 1 {
		t.Fatalf("gc cycles = %v, want >= 1 after forced GC", snap["runtime_gc_cycles_total"].Value)
	}
	// Counters must be monotonic across further samples (Add panics
	// on negative deltas, so surviving another Sample is the check).
	s.Sample()
	s.Sample()
}
