package telemetry

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestHelpEscaping covers the Prometheus text-format escaping rule
// for HELP docstrings: a raw backslash or newline would corrupt the
// line-oriented exposition.
func TestHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total").Inc()
	r.Help("weird_total", "first line\nsecond \\ line")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	want := `# HELP weird_total first line\nsecond \\ line`
	if !strings.Contains(out, want) {
		t.Fatalf("HELP line not escaped:\n%s", out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "second") {
			t.Fatalf("raw newline leaked into exposition:\n%s", out)
		}
	}
}

func TestEscapeHelpNoop(t *testing.T) {
	const plain = "a perfectly ordinary help string"
	if got := escapeHelp(plain); got != plain {
		t.Fatalf("escapeHelp(%q) = %q", plain, got)
	}
}

// TestConcurrentScrapeWhileWrite hammers the registry and span log
// from writer goroutines while scrapers run WritePrometheus/WriteJSON
// in a loop. It exists to fail under -race if any exposition path
// reads unsynchronized state (scripts/check.sh runs this package with
// -race).
func TestConcurrentScrapeWhileWrite(t *testing.T) {
	r := NewRegistry()
	log := NewSpanLog()
	const writers = 4
	const perWriter = 400

	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := r.Counter("hammer_total", Li("rank", g))
			h := r.Histogram("hammer_seconds", []float64{0.001, 0.01, 0.1}, Li("rank", g))
			for i := 0; i < perWriter; i++ {
				c.Add(1)
				r.Gauge("hammer_gauge", Li("rank", g)).Set(float64(i))
				h.Observe(float64(i) * 1e-4)
				log.Add(Span{Proc: g, Lane: "host", Name: "hammer", Start: float64(i), End: float64(i) + 1})
			}
		}(g)
	}

	stop := make(chan struct{})
	var scrapers sync.WaitGroup
	for s := 0; s < 2; s++ {
		scrapers.Add(1)
		go func() {
			defer scrapers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = r.WritePrometheus(io.Discard)
					_ = r.WriteJSON(io.Discard)
					_ = log.Spans()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	scrapers.Wait()

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	series, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range series {
		if s.Name == "hammer_total" {
			total += s.Value
		}
	}
	if want := float64(writers * perWriter); total != want {
		t.Fatalf("hammer_total sums to %g, want %g", total, want)
	}
	if got := log.Len(); got != writers*perWriter {
		t.Fatalf("span log has %d spans, want %d", got, writers*perWriter)
	}
}

// The instrumentation hot path must not allocate in steady state:
// these run under scripts/bench.sh pr6, which gates 0 allocs/op.

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", L("rank", "0"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", []float64{1e-4, 1e-3, 1e-2, 1e-1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(2e-3)
	}
}
