package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf bucket
// survives JSON encoding.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatValue(b.UpperBound), b.Count)), nil
}

// Series is one metric series in a snapshot.
type Series struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	// Histogram-only fields; Buckets are cumulative and end at +Inf.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`

	canon string // sort key within a family
}

// Snapshot returns every series in deterministic order: families
// sorted by name (counters, gauges and histograms interleaved), series
// within a family by their canonical label set.
func (r *Registry) Snapshot() []Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Series
	for key, c := range r.counters {
		name := key[:len(key)-len(canonical(c.labels))]
		out = append(out, Series{
			Name: name, Type: "counter",
			Labels: labelMap(c.labels), Value: c.Value(),
			canon: canonical(c.labels),
		})
	}
	for key, g := range r.gauges {
		name := key[:len(key)-len(canonical(g.labels))]
		out = append(out, Series{
			Name: name, Type: "gauge",
			Labels: labelMap(g.labels), Value: g.Value(),
			canon: canonical(g.labels),
		})
	}
	for key, h := range r.hists {
		name := key[:len(key)-len(canonical(h.labels))]
		s := Series{
			Name: name, Type: "histogram",
			Labels: labelMap(h.labels),
			Sum:    h.Sum(), Count: h.Count(),
			canon: canonical(h.labels),
		}
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			s.Buckets = append(s.Buckets, Bucket{UpperBound: b, Count: cum})
		}
		cum += h.counts[len(h.bounds)].Load()
		s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].canon < out[j].canon
	})
	return out
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// formatValue renders a sample value the way Prometheus does.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4). Output is byte-deterministic for
// a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	lastName := ""
	for _, s := range snap {
		if s.Name != lastName {
			if h, ok := help[s.Name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, h); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
			lastName = s.Name
		}
		switch s.Type {
		case "histogram":
			for _, b := range s.Buckets {
				lbls := append(labelsOf(s.Labels), L("le", formatValue(b.UpperBound)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, canonical(lbls), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.canon, formatValue(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.canon, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, s.canon, formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func labelsOf(m map[string]string) []Label {
	var out []Label
	for k, v := range m {
		out = append(out, L(k, v))
	}
	return out
}

// WriteFile writes the registry to path: JSON when the path ends in
// .json, Prometheus text otherwise.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// WriteJSON writes an indented JSON snapshot ({"metrics": [...]}).
// encoding/json sorts map keys, so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []Series `json:"metrics"`
	}{Metrics: r.Snapshot()}
	if doc.Metrics == nil {
		doc.Metrics = []Series{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
