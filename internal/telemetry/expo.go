package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// MarshalJSON renders the bound as a string so the +Inf bucket
// survives JSON encoding.
func (b Bucket) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf(`{"le":%q,"count":%d}`, formatValue(b.UpperBound), b.Count)), nil
}

// UnmarshalJSON parses the string-bound form written by MarshalJSON,
// including the "+Inf" bucket.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		Le    string `json:"le"`
		Count uint64 `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch raw.Le {
	case "+Inf":
		b.UpperBound = math.Inf(1)
	case "-Inf":
		b.UpperBound = math.Inf(-1)
	default:
		v, err := strconv.ParseFloat(raw.Le, 64)
		if err != nil {
			return fmt.Errorf("telemetry: bucket bound %q: %w", raw.Le, err)
		}
		b.UpperBound = v
	}
	b.Count = raw.Count
	return nil
}

// Series is one metric series in a snapshot.
type Series struct {
	Name   string            `json:"name"`
	Type   string            `json:"type"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	// Histogram-only fields; Buckets are cumulative and end at +Inf.
	Buckets []Bucket `json:"buckets,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Count   uint64   `json:"count,omitempty"`

	canon string // sort key within a family
}

// seriesJSON is the wire form of Series. Pointer fields force the
// value/sum/count keys to be emitted even when zero: with a plain
// `omitempty` float64, a zero-valued counter or gauge would silently
// drop its "value" field from the snapshot (and an empty histogram its
// "sum"/"count"), so consumers could not tell "zero" from "absent".
type seriesJSON struct {
	Name    string            `json:"name"`
	Type    string            `json:"type"`
	Labels  map[string]string `json:"labels,omitempty"`
	Value   *float64          `json:"value,omitempty"`
	Buckets []Bucket          `json:"buckets,omitempty"`
	Sum     *float64          `json:"sum,omitempty"`
	Count   *uint64           `json:"count,omitempty"`
}

// MarshalJSON emits the sampled value explicitly: counters and gauges
// always carry "value" (even 0), histograms always carry "sum" and
// "count" (even when empty).
func (s Series) MarshalJSON() ([]byte, error) {
	j := seriesJSON{Name: s.Name, Type: s.Type, Labels: s.Labels, Buckets: s.Buckets}
	if s.Type == "histogram" {
		sum, count := s.Sum, s.Count
		j.Sum, j.Count = &sum, &count
	} else {
		v := s.Value
		j.Value = &v
	}
	return json.Marshal(j)
}

// UnmarshalJSON restores a series from its wire form (absent fields
// stay zero).
func (s *Series) UnmarshalJSON(data []byte) error {
	var j seriesJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*s = Series{Name: j.Name, Type: j.Type, Labels: j.Labels, Buckets: j.Buckets}
	if j.Value != nil {
		s.Value = *j.Value
	}
	if j.Sum != nil {
		s.Sum = *j.Sum
	}
	if j.Count != nil {
		s.Count = *j.Count
	}
	return nil
}

// Snapshot returns every series in deterministic order: families
// sorted by name (counters, gauges and histograms interleaved), series
// within a family by their canonical label set.
func (r *Registry) Snapshot() []Series {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Series
	for key, c := range r.counters {
		name := key[:len(key)-len(canonical(c.labels))]
		out = append(out, Series{
			Name: name, Type: "counter",
			Labels: labelMap(c.labels), Value: c.Value(),
			canon: canonical(c.labels),
		})
	}
	for key, g := range r.gauges {
		name := key[:len(key)-len(canonical(g.labels))]
		out = append(out, Series{
			Name: name, Type: "gauge",
			Labels: labelMap(g.labels), Value: g.Value(),
			canon: canonical(g.labels),
		})
	}
	for key, h := range r.hists {
		name := key[:len(key)-len(canonical(h.labels))]
		s := Series{
			Name: name, Type: "histogram",
			Labels: labelMap(h.labels),
			Sum:    h.Sum(), Count: h.Count(),
			canon: canonical(h.labels),
		}
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			s.Buckets = append(s.Buckets, Bucket{UpperBound: b, Count: cum})
		}
		cum += h.counts[len(h.bounds)].Load()
		s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].canon < out[j].canon
	})
	return out
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// escapeHelp escapes a HELP docstring per the Prometheus text
// exposition rules: backslash and newline would otherwise break the
// line-oriented format, so they become \\ and \n.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus does.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format (version 0.0.4). Output is byte-deterministic for
// a given registry state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snap := r.Snapshot()
	r.mu.Lock()
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()

	lastName := ""
	for _, s := range snap {
		if s.Name != lastName {
			if h, ok := help[s.Name]; ok {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.Name, escapeHelp(h)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Type); err != nil {
				return err
			}
			lastName = s.Name
		}
		switch s.Type {
		case "histogram":
			for _, b := range s.Buckets {
				lbls := append(labelsOf(s.Labels), L("le", formatValue(b.UpperBound)))
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, canonical(lbls), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, s.canon, formatValue(s.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, s.canon, s.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, s.canon, formatValue(s.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

func labelsOf(m map[string]string) []Label {
	var out []Label
	for k, v := range m {
		out = append(out, L(k, v))
	}
	return out
}

// WriteFile writes the registry to path: JSON when the path ends in
// .json, Prometheus text otherwise.
func (r *Registry) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".json") {
		err = r.WriteJSON(f)
	} else {
		err = r.WritePrometheus(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// ReadSnapshot parses a JSON snapshot previously written by WriteJSON
// (the {"metrics": [...]} document of -metrics-out FILE.json), so
// analysis tools can consume saved artifacts.
func ReadSnapshot(rd io.Reader) ([]Series, error) {
	var doc struct {
		Metrics []Series `json:"metrics"`
	}
	if err := json.NewDecoder(rd).Decode(&doc); err != nil {
		return nil, fmt.Errorf("telemetry: reading snapshot: %w", err)
	}
	return doc.Metrics, nil
}

// WriteJSON writes an indented JSON snapshot ({"metrics": [...]}).
// encoding/json sorts map keys, so the output is deterministic.
func (r *Registry) WriteJSON(w io.Writer) error {
	doc := struct {
		Metrics []Series `json:"metrics"`
	}{Metrics: r.Snapshot()}
	if doc.Metrics == nil {
		doc.Metrics = []Series{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}
