package telemetry

import (
	"encoding/json"
	"net/http"
)

// DashboardHandler serves /dashboard: a single self-contained HTML
// page (no external assets, works offline) that polls /metrics.json
// once a second and renders the live run — per-rank counters, derived
// rates, residual convergence — in the browser. When the optional
// observability routes are registered (/healthz from internal/health,
// /spans from internal/flight) the page polls and renders those too;
// when absent it degrades gracefully to metrics only.
func DashboardHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		endpoints, _ := json.Marshal(registeredPatterns())
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		_, _ = w.Write([]byte(dashboardHead))
		_, _ = w.Write([]byte("<script>const EXTRA_ENDPOINTS = "))
		_, _ = w.Write(endpoints)
		_, _ = w.Write([]byte(";</script>\n"))
		_, _ = w.Write([]byte(dashboardBody))
	})
}

const dashboardHead = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>pjds live dashboard</title>
<style>
  body { background:#101418; color:#d8dee6; font:13px/1.5 "SF Mono","Menlo",monospace; margin:1.5em; }
  h1 { font-size:16px; color:#8fd3ff; margin:0 0 .2em 0; }
  h2 { font-size:13px; color:#8fd3ff; border-bottom:1px solid #2a3340; padding-bottom:2px; margin:1.2em 0 .4em 0; }
  .muted { color:#6b7686; }
  table { border-collapse:collapse; margin:.3em 0; }
  th, td { padding:1px 12px 1px 0; text-align:right; }
  th { color:#9aa7b8; font-weight:normal; }
  td:first-child, th:first-child { text-align:left; }
  .pass { color:#7ae08a; } .warn { color:#ffd066; } .fail { color:#ff7a7a; }
  .sev-error { color:#ff7a7a; } .sev-warn { color:#ffd066; } .sev-info { color:#8fd3ff; } .sev-debug { color:#6b7686; }
  pre { margin:0; }
  .bar { color:#5fb0e8; }
</style>
</head>
<body>
<h1>pjds live dashboard</h1>
<div class="muted" id="status">connecting&hellip;</div>
<div id="health"></div>
<div id="tenants"></div>
<h2>per-rank activity</h2>
<div id="ranks" class="muted">no rank-labelled metrics yet</div>
<h2>solver convergence</h2>
<div id="solver" class="muted">no solver gauges yet</div>
<h2>event feed <span class="muted">(flight recorder)</span></h2>
<div id="events" class="muted">flight recorder not enabled</div>
<h2>cross-run trends <span class="muted">(run ledger)</span></h2>
<div id="trends" class="muted">trend endpoint not enabled</div>
<h2>all metrics</h2>
<div id="metrics"></div>
`

const dashboardBody = `<script>
"use strict";
let prev = null, prevAt = 0;

function fmt(v) {
  if (!isFinite(v)) return String(v);
  if (v !== 0 && Math.abs(v) < 1e-3) return v.toExponential(3);
  if (Math.abs(v) >= 1e6) return v.toExponential(3);
  return (Math.round(v * 1000) / 1000).toString();
}

function sparkbar(frac, width) {
  const n = Math.max(0, Math.min(width, Math.round(frac * width)));
  return '<span class="bar">' + "█".repeat(n) + "</span>" + "░".repeat(width - n);
}

function esc(s) {
  return String(s).replace(/&/g, "&amp;").replace(/</g, "&lt;").replace(/>/g, "&gt;");
}

function key(m) {
  return m.name + JSON.stringify(m.labels || {});
}

function render(doc) {
  const now = performance.now() / 1000;
  const metrics = doc.metrics || [];
  const byKey = {};
  for (const m of metrics) byKey[key(m)] = m;

  // Per-rank table: any counter/gauge with a rank label, with rates
  // derived from the previous poll.
  const ranks = {};
  for (const m of metrics) {
    if (!m.labels || m.labels.rank === undefined) continue;
    const r = m.labels.rank;
    (ranks[r] = ranks[r] || {})[m.name] = m;
  }
  const rankIds = Object.keys(ranks).sort((a, b) => Number(a) - Number(b));
  if (rankIds.length) {
    const names = new Set();
    for (const r of rankIds) for (const n of Object.keys(ranks[r])) names.add(n);
    const cols = [...names].sort();
    let html = "<table><tr><th>rank</th>";
    for (const c of cols) html += "<th>" + esc(c.replace(/_total$/, "")) + "</th>";
    html += "</tr>";
    for (const r of rankIds) {
      html += "<tr><td>" + esc(r) + "</td>";
      for (const c of cols) {
        const m = ranks[r][c];
        if (!m) { html += "<td class=muted>-</td>"; continue; }
        let cell = fmt(m.type === "histogram" ? m.sum : m.value);
        if (m.type === "counter" && prev && prevAt) {
          const p = prev[key(m)];
          if (p) {
            const rate = (m.value - p.value) / (now - prevAt);
            if (rate > 0) cell += ' <span class="muted">(+' + fmt(rate) + "/s)</span>";
          }
        }
        html += "<td>" + cell + "</td>";
      }
      html += "</tr>";
    }
    html += "</table>";
    document.getElementById("ranks").outerHTML = '<div id="ranks">' + html + "</div>";
  }

  // Solver convergence: residual + iteration gauges.
  const res = metrics.filter(m => m.name === "solver_residual");
  const iter = metrics.filter(m => m.name === "solver_iterations");
  if (res.length || iter.length) {
    let html = "<table><tr><th>series</th><th>iterations</th><th>residual</th></tr>";
    const tags = new Set();
    for (const m of res.concat(iter)) tags.add(JSON.stringify(m.labels || {}));
    for (const t of [...tags].sort()) {
      const lbl = JSON.parse(t);
      const find = arr => arr.find(m => JSON.stringify(m.labels || {}) === t);
      const rm = find(res), im = find(iter);
      html += "<tr><td>" + esc(Object.entries(lbl).map(([k, v]) => k + "=" + v).join(",") || "(default)") +
        "</td><td>" + (im ? fmt(im.value) : "-") +
        "</td><td>" + (rm ? fmt(rm.value) : "-") + "</td></tr>";
    }
    html += "</table>";
    document.getElementById("solver").outerHTML = '<div id="solver">' + html + "</div>";
  }

  // Full metric dump with utilization bars for *_seconds_total.
  let html = "<table>";
  for (const m of metrics) {
    const lbl = m.labels ? Object.entries(m.labels).map(([k, v]) => k + "=" + v).join(",") : "";
    const val = m.type === "histogram" ? fmt(m.sum) + ' <span class="muted">(n=' + m.count + ")</span>" : fmt(m.value);
    html += "<tr><td>" + esc(m.name) + (lbl ? '<span class="muted">{' + esc(lbl) + "}</span>" : "") +
      "</td><td>" + val + "</td></tr>";
  }
  html += "</table>";
  document.getElementById("metrics").innerHTML = html;

  prev = byKey;
  prevAt = now;
}

function renderHealth(doc) {
  // Three-state banner: pass is HEALTHY, warn-grade degraded (still
  // HTTP 200 on /healthz) is DEGRADED, fail (503) is FAILING.
  const cls = { pass: "pass", warn: "warn", fail: "fail" }[doc.status] || "muted";
  const banner = doc.status === "fail" ? "FAILING"
    : (doc.degraded || doc.status === "warn") ? "DEGRADED"
    : doc.status === "pass" ? "HEALTHY" : esc(doc.status);
  let html = '<h2>health: <span class="' + cls + '">' + banner +
    '</span> <span class="muted">(' + esc(doc.status) + ")</span></h2>";
  if (doc.signals && doc.signals.length) {
    html += "<table><tr><th>signal</th><th>status</th><th>value</th><th>cause</th></tr>";
    for (const s of doc.signals) {
      const c = { pass: "pass", warn: "warn", fail: "fail" }[s.status] || "muted";
      html += "<tr><td>" + esc(s.name) + '</td><td class="' + c + '">' + esc(s.status) +
        "</td><td>" + fmt(s.value) + '</td><td style="text-align:left">' + esc(s.cause || "") + "</td></tr>";
    }
    html += "</table>";
  }
  document.getElementById("health").innerHTML = html;
}

function renderTenants(rows) {
  if (!rows || !rows.length) { document.getElementById("tenants").innerHTML = ""; return; }
  let html = '<h2>tenants <span class="muted">(spmvd admission)</span></h2>' +
    "<table><tr><th>tenant</th><th>admitted</th><th>rejected</th><th>in flight</th><th>tokens</th><th>p50 ms</th><th>p99 ms</th></tr>";
  for (const t of rows) {
    html += "<tr><td>" + esc(t.tenant) + "</td><td>" + t.admitted + "</td><td>" + t.rejected +
      "</td><td>" + t.in_flight + "</td><td>" + fmt(t.tokens) +
      "</td><td>" + fmt(t.p50_seconds * 1e3) + "</td><td>" + fmt(t.p99_seconds * 1e3) + "</td></tr>";
  }
  html += "</table>";
  document.getElementById("tenants").innerHTML = html;
}

function renderEvents(doc) {
  const evs = (doc.events || []).slice(-30).reverse();
  if (!evs.length) {
    document.getElementById("events").outerHTML =
      '<div id="events" class="muted">no events recorded (' + (doc.events_total || 0) + " total)</div>";
    return;
  }
  let html = "<table><tr><th>t</th><th>rank</th><th>sev</th><th>kind</th><th>detail</th></tr>";
  for (const e of evs) {
    html += "<tr><td>" + fmt(e.t) + "</td><td>" + e.rank + '</td><td class="sev-' + esc(e.sev) + '">' +
      esc(e.sev) + "</td><td>" + esc(e.kind) + '</td><td style="text-align:left">' +
      esc(e.msg) + (e.value ? ' <span class="muted">(' + fmt(e.value) + ")</span>" : "") + "</td></tr>";
  }
  html += "</table>";
  document.getElementById("events").outerHTML = '<div id="events">' + html + "</div>";
}

function renderTrends(doc) {
  const rows = doc.rows || [];
  const cls = { regression: "fail", watch: "warn", improved: "pass", ok: "pass" };
  const counts = {};
  for (const r of rows) counts[r.verdict] = (counts[r.verdict] || 0) + 1;
  let html = '<div class="muted">' + (doc.sources || []).length + " sources · " +
    rows.length + " metrics (" + (counts.regression || 0) + " regression, " +
    (counts.watch || 0) + " watch, " + (counts.improved || 0) + " improved)</div>";
  const shown = rows.filter(r => r.verdict !== "single" && r.verdict !== "ok");
  if (shown.length) {
    html += "<table><tr><th>verdict</th><th>metric</th><th>best</th><th>last</th><th>&Delta; vs best</th></tr>";
    for (const r of shown.slice(0, 30)) {
      html += '<tr><td class="' + (cls[r.verdict] || "muted") + '">' + esc(r.verdict) +
        '</td><td style="text-align:left">' + esc(r.metric) + "</td><td>" + fmt(r.best) +
        "</td><td>" + fmt(r.last) + "</td><td>" + fmt(100 * r.rel_vs_best) + "%</td></tr>";
    }
    html += "</table>";
  } else if (rows.length) {
    html += '<div class="pass">all tracked metrics within tolerance of their historical best</div>';
  }
  document.getElementById("trends").outerHTML = '<div id="trends">' + html + "</div>";
}

async function poll() {
  try {
    const r = await fetch("/metrics.json", { cache: "no-store" });
    render(await r.json());
    document.getElementById("status").textContent =
      "live · polling /metrics.json every 1s · " + new Date().toLocaleTimeString();
  } catch (e) {
    document.getElementById("status").textContent = "disconnected: " + e;
  }
  if (EXTRA_ENDPOINTS.includes("/healthz")) {
    try { renderHealth(await (await fetch("/healthz", { cache: "no-store" })).json()); } catch (e) {}
  }
  if (EXTRA_ENDPOINTS.includes("/tenants.json")) {
    try { renderTenants(await (await fetch("/tenants.json", { cache: "no-store" })).json()); } catch (e) {}
  }
  if (EXTRA_ENDPOINTS.includes("/spans")) {
    try { renderEvents(await (await fetch("/spans", { cache: "no-store" })).json()); } catch (e) {}
  }
  if (EXTRA_ENDPOINTS.includes("/trends.json")) {
    try { renderTrends(await (await fetch("/trends.json", { cache: "no-store" })).json()); } catch (e) {}
  }
}
poll();
setInterval(poll, 1000);
</script>
</body>
</html>
`
