package telemetry

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Span is one named interval of virtual time on one lane of one
// simulated process (rank). It is the unit the Chrome-trace exporter
// (internal/trace) consumes: Proc becomes the pid, Lane the thread,
// Cat the event category ("comm", "gpu", "solver").
type Span struct {
	Proc       int
	Lane       string
	Cat        string
	Name       string
	Start, End float64 // virtual seconds
	// Args are attached verbatim to the exported trace event
	// (iteration numbers, modes, formats). encoding/json sorts map
	// keys, so Args do not threaten determinism.
	Args map[string]string
}

// spanMirror is the process-wide span tap: when set (by the
// internal/flight recorder), every SpanLog.Add is also handed to it,
// so an always-on ring buffer can keep a recent window of whatever
// any simulation layer records, without threading a recorder through
// every Options struct. The cost when disabled is one atomic load.
var spanMirror atomic.Pointer[func(Span)]

// SetSpanMirror installs fn as the process-wide span tap (nil clears
// it). fn must be safe for concurrent use and must not call back into
// the SpanLog it is observing.
func SetSpanMirror(fn func(Span)) {
	if fn == nil {
		spanMirror.Store(nil)
		return
	}
	spanMirror.Store(&fn)
}

// SpanLog collects spans from concurrent rank goroutines. Insertion
// order is not meaningful; Spans() returns a deterministically sorted
// copy.
type SpanLog struct {
	mu    sync.Mutex
	spans []Span
}

// NewSpanLog returns an empty log.
func NewSpanLog() *SpanLog { return &SpanLog{} }

// Add records one span. Degenerate intervals are clamped rather than
// stored verbatim: a negative Start moves to 0 and an End before Start
// collapses to Start. Un-clamped they would corrupt every downstream
// consumer that assumes well-ordered intervals (the Chrome-trace
// exporter and the internal/critpath happens-before DAG, where a span
// ending before it starts would make path time go backwards).
func (l *SpanLog) Add(s Span) {
	if s.Start < 0 {
		s.Start = 0
	}
	if s.End < s.Start {
		s.End = s.Start
	}
	if fn := spanMirror.Load(); fn != nil {
		(*fn)(s)
	}
	l.mu.Lock()
	l.spans = append(l.spans, s)
	l.mu.Unlock()
}

// Len returns the number of recorded spans.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.spans)
}

// MaxEnd returns the latest span end time (0 when empty).
func (l *SpanLog) MaxEnd() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	max := 0.0
	for _, s := range l.spans {
		if s.End > max {
			max = s.End
		}
	}
	return max
}

// AppendShifted copies every span of src into l with its times moved
// by shift. It stitches separately-clocked simulation phases (e.g. a
// benchmark run followed by a solver run) into one timeline.
func (l *SpanLog) AppendShifted(src *SpanLog, shift float64) {
	for _, s := range src.Spans() {
		s.Start += shift
		s.End += shift
		l.Add(s)
	}
}

// Spans returns a sorted copy: by start time, then process, lane,
// name, end. The order is stable across runs of the deterministic
// simulation regardless of goroutine scheduling.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	out := append([]Span(nil), l.spans...)
	l.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Start != b.Start:
			return a.Start < b.Start
		case a.Proc != b.Proc:
			return a.Proc < b.Proc
		case a.Lane != b.Lane:
			return a.Lane < b.Lane
		case a.Name != b.Name:
			return a.Name < b.Name
		}
		return a.End < b.End
	})
	return out
}
