package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("bytes_total", L("rank", "0"))
	c.Add(100)
	c.Inc()
	if got := c.Value(); got != 101 {
		t.Fatalf("counter = %g, want 101", got)
	}
	// Same name+labels returns the same series, label order irrelevant.
	c2 := r.Counter("bytes_total", L("rank", "0"))
	if c2 != c {
		t.Fatal("counter identity not stable")
	}
	g := r.Gauge("alpha", L("kernel", "pJDS"), L("rank", "1"))
	g.Set(1.25)
	g2 := r.Gauge("alpha", L("rank", "1"), L("kernel", "pJDS"))
	if g2.Value() != 1.25 {
		t.Fatalf("gauge with reordered labels = %g, want 1.25", g2.Value())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("negative counter delta not rejected")
			}
		}()
		c.Add(-1)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("type clash not rejected")
			}
		}()
		r.Gauge("bytes_total")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid name not rejected")
			}
		}()
		r.Counter("0bad name")
	}()
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("msg_bytes", []float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 500, 5000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 5526 {
		t.Fatalf("count=%d sum=%g", h.Count(), h.Sum())
	}
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Type != "histogram" {
		t.Fatalf("snapshot: %+v", snap)
	}
	// Cumulative: ≤10 → 2, ≤100 → 3, ≤1000 → 4, +Inf → 5.
	want := []uint64{2, 3, 4, 5}
	for i, b := range snap[0].Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d: count %d, want %d", i, b.Count, want[i])
		}
	}
	if !math.IsInf(snap[0].Buckets[3].UpperBound, 1) {
		t.Error("last bucket not +Inf")
	}
}

func TestPrometheusOutputDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Help("bytes_total", "bytes moved")
		// Insert in scrambled orders; output must not depend on it.
		for _, rank := range []string{"2", "0", "1"} {
			r.Counter("bytes_total", L("rank", rank)).Add(10)
		}
		r.Gauge("alpha", L("kernel", "pJDS")).Set(1.5)
		r.Histogram("sizes", []float64{1, 2}).Observe(1.5)
		return r
	}
	var a, b bytes.Buffer
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("nondeterministic output:\n%s\nvs\n%s", a.String(), b.String())
	}
	out := a.String()
	for _, want := range []string{
		"# HELP bytes_total bytes moved",
		"# TYPE bytes_total counter",
		`bytes_total{rank="0"} 10`,
		"# TYPE alpha gauge",
		`alpha{kernel="pJDS"} 1.5`,
		`sizes_bucket{le="+Inf"} 1`,
		"sizes_sum 1.5",
		"sizes_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families sorted by name, series by labels.
	if strings.Index(out, "# TYPE alpha") > strings.Index(out, "# TYPE bytes_total") {
		t.Error("families not sorted")
	}
	if strings.Index(out, `rank="0"`) > strings.Index(out, `rank="1"`) {
		t.Error("series not sorted")
	}
}

func TestJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", L("mode", "task")).Inc()
	r.Histogram("sizes", []float64{8}).Observe(100)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name    string            `json:"name"`
			Type    string            `json:"type"`
			Labels  map[string]string `json:"labels"`
			Value   float64           `json:"value"`
			Buckets []struct {
				Le    string `json:"le"`
				Count uint64 `json:"count"`
			} `json:"buckets"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("got %d metrics", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "runs_total" || doc.Metrics[0].Labels["mode"] != "task" || doc.Metrics[0].Value != 1 {
		t.Errorf("runs_total: %+v", doc.Metrics[0])
	}
	if doc.Metrics[1].Buckets[1].Le != "+Inf" {
		t.Errorf("histogram +Inf bucket did not survive JSON: %+v", doc.Metrics[1])
	}
}

// TestJSONSnapshotZeroValues is the regression test for the omitempty
// bug: a zero-valued counter or gauge must still carry an explicit
// "value" field in the JSON snapshot (and an empty histogram its "sum"
// and "count"), so consumers can distinguish zero from absent.
func TestJSONSnapshotZeroValues(t *testing.T) {
	r := NewRegistry()
	r.Counter("errors_total") // created but never incremented
	r.Gauge("depth").Set(0)
	r.Histogram("sizes", []float64{8}) // no observations
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]map[string]json.RawMessage{}
	for _, m := range doc.Metrics {
		var name string
		if err := json.Unmarshal(m["name"], &name); err != nil {
			t.Fatal(err)
		}
		byName[name] = m
	}
	for _, name := range []string{"errors_total", "depth"} {
		raw, ok := byName[name]["value"]
		if !ok {
			t.Errorf("%s: zero value dropped from JSON: %s", name, buf.String())
			continue
		}
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil || v != 0 {
			t.Errorf("%s: value = %s, want 0", name, raw)
		}
	}
	for _, field := range []string{"sum", "count"} {
		if _, ok := byName["sizes"][field]; !ok {
			t.Errorf("empty histogram dropped %q from JSON: %s", field, buf.String())
		}
	}
	// Round trip through ReadSnapshot preserves the zeros.
	snap, err := ReadSnapshot(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap) != 3 {
		t.Fatalf("round trip lost series: %d", len(snap))
	}
	for _, s := range snap {
		if s.Value != 0 || s.Sum != 0 || s.Count != 0 {
			t.Errorf("round trip invented values: %+v", s)
		}
	}
}

// TestSpanLogClampsDegenerateSpans: spans with End < Start or negative
// Start would corrupt the critical-path DAG; Add must clamp them.
func TestSpanLogClampsDegenerateSpans(t *testing.T) {
	l := NewSpanLog()
	l.Add(Span{Proc: 0, Lane: "gpu", Name: "backwards", Start: 5, End: 2})
	l.Add(Span{Proc: 0, Lane: "gpu", Name: "negative", Start: -3, End: 1})
	l.Add(Span{Proc: 0, Lane: "gpu", Name: "both", Start: -4, End: -2})
	for _, s := range l.Spans() {
		if s.Start < 0 {
			t.Errorf("%s: negative start %g survived", s.Name, s.Start)
		}
		if s.End < s.Start {
			t.Errorf("%s: end %g before start %g survived", s.Name, s.End, s.Start)
		}
	}
	for _, s := range l.Spans() {
		if s.Name == "negative" && (s.Start != 0 || s.End != 1) {
			t.Errorf("negative-start span clamped wrong: %+v", s)
		}
		if s.Name == "backwards" && (s.Start != 5 || s.End != 5) {
			t.Errorf("backwards span clamped wrong: %+v", s)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", L("k", `a"b\c`+"\n")).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `{k="a\"b\\c\n"}`) {
		t.Errorf("escaping wrong: %s", buf.String())
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("ops_total", Li("rank", g%4)).Inc()
				r.Gauge("last", Li("rank", g%4)).Set(float64(i))
				r.Histogram("sizes", nil, Li("rank", g%4)).Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	total := 0.0
	for g := 0; g < 4; g++ {
		total += r.Counter("ops_total", Li("rank", g)).Value()
	}
	if total != 8000 {
		t.Fatalf("lost increments: %g", total)
	}
}

func TestSpanLogOrderingAndShift(t *testing.T) {
	l := NewSpanLog()
	// Scrambled insertion from "ranks".
	l.Add(Span{Proc: 1, Lane: "gpu", Name: "b", Start: 2, End: 3})
	l.Add(Span{Proc: 0, Lane: "host", Name: "a", Start: 1, End: 2})
	l.Add(Span{Proc: 0, Lane: "gpu", Name: "c", Start: 1, End: 4})
	spans := l.Spans()
	if spans[0].Name != "c" || spans[1].Name != "a" || spans[2].Name != "b" {
		t.Fatalf("order: %+v", spans)
	}
	if l.MaxEnd() != 4 {
		t.Fatalf("MaxEnd = %g", l.MaxEnd())
	}
	other := NewSpanLog()
	other.Add(Span{Proc: 2, Lane: "solver", Name: "d", Start: 0, End: 1})
	l.AppendShifted(other, l.MaxEnd())
	spans = l.Spans()
	last := spans[len(spans)-1]
	if last.Name != "d" || last.Start != 4 || last.End != 5 {
		t.Fatalf("shifted span: %+v", last)
	}
}

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", s.Addr, path))
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if !strings.Contains(get("/metrics"), "up_total 1") {
		t.Error("/metrics missing counter")
	}
	if !strings.Contains(get("/metrics.json"), `"up_total"`) {
		t.Error("/metrics.json missing counter")
	}
	if !strings.Contains(get("/debug/vars"), "memstats") {
		t.Error("/debug/vars not mounted")
	}
	if !strings.Contains(get("/debug/pprof/"), "goroutine") {
		t.Error("/debug/pprof not mounted")
	}
}
