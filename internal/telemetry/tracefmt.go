package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// This file is the Chrome trace-event codec for spans: the JSON
// consumed by chrome://tracing and Perfetto. It lives in telemetry —
// rather than internal/trace, which re-exports it — so that low-level
// recorders (internal/flight) can write perfreport-readable trace
// artifacts without importing the higher simulation layers.

// traceEvent is one Chrome trace "complete" event (ph = "X");
// timestamps and durations are in microseconds.
type traceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// traceMetadata names processes and threads in the viewer.
type traceMetadata struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// TraceMeta parameterizes a trace header: display names for processes
// (ranks) and lanes, and run-level values for the viewer's otherData.
type TraceMeta struct {
	// Processes maps pid (rank) to a display name; pids present in the
	// spans but absent here keep a generic "rank N" name.
	Processes map[int]string
	// LaneNames maps a lane to its thread display name; unnamed lanes
	// display as the lane string itself.
	LaneNames map[string]string
	// Other is attached verbatim as the trace's otherData.
	Other map[string]any
}

// canonicalLaneTID maps the timeline lanes onto stable thread ids: the
// communication (host) thread is thread 0 (as in Fig. 4), the GPU
// stream is thread 1, and the solver lane is thread 2.
func canonicalLaneTID(lane string) int {
	switch lane {
	case "gpu":
		return 1
	case "solver":
		return 2
	default:
		return 0
	}
}

// traceTID extends canonicalLaneTID to arbitrary lanes: unknown lanes
// get ids from 3 upward in sorted lane order, so output stays
// deterministic.
func traceTID(lane string, extra map[string]int) int {
	switch lane {
	case "host", "gpu", "solver":
		return canonicalLaneTID(lane)
	}
	return extra[lane]
}

// WriteTrace renders spans as one Chrome trace: each span's Proc
// becomes a trace process (one per rank), each lane a named thread
// within it. Output is deterministic: metadata sorted by (pid, tid),
// events by (Start, Proc, Lane, Name, End).
func WriteTrace(w io.Writer, spans []Span, meta TraceMeta) error {
	sorted := append([]Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.End < b.End
	})

	// Discover processes and lanes; assign ids to non-standard lanes.
	procLanes := map[int]map[string]bool{}
	unknown := map[string]bool{}
	for _, s := range sorted {
		if procLanes[s.Proc] == nil {
			procLanes[s.Proc] = map[string]bool{}
		}
		procLanes[s.Proc][s.Lane] = true
		switch s.Lane {
		case "host", "gpu", "solver":
		default:
			unknown[s.Lane] = true
		}
	}
	extraTID := map[string]int{}
	{
		lanes := make([]string, 0, len(unknown))
		for l := range unknown {
			lanes = append(lanes, l)
		}
		sort.Strings(lanes)
		for i, l := range lanes {
			extraTID[l] = 3 + i
		}
	}

	var out []any
	pids := make([]int, 0, len(procLanes))
	for pid := range procLanes {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		name, ok := meta.Processes[pid]
		if !ok {
			name = fmt.Sprintf("rank %d", pid)
		}
		out = append(out, traceMetadata{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}})
		lanes := make([]string, 0, len(procLanes[pid]))
		for l := range procLanes[pid] {
			lanes = append(lanes, l)
		}
		sort.Slice(lanes, func(i, j int) bool { return traceTID(lanes[i], extraTID) < traceTID(lanes[j], extraTID) })
		for _, l := range lanes {
			ln, ok := meta.LaneNames[l]
			if !ok {
				ln = l
			}
			out = append(out, traceMetadata{Name: "thread_name", Ph: "M", PID: pid, TID: traceTID(l, extraTID), Args: map[string]any{"name": ln}})
		}
	}

	for _, s := range sorted {
		var args map[string]any
		if len(s.Args) > 0 {
			args = make(map[string]any, len(s.Args))
			for k, v := range s.Args {
				args[k] = v
			}
		}
		out = append(out, traceEvent{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   1e6 * s.Start,
			Dur:  1e6 * (s.End - s.Start),
			PID:  s.Proc,
			TID:  traceTID(s.Lane, extraTID),
			Args: args,
		})
	}

	other := meta.Other
	if other == nil {
		other = map[string]any{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ns",
		"otherData":       other,
	})
}

// ReadTrace parses a Chrome trace-event document produced by
// WriteTrace back into spans, so saved -trace-out artifacts can be
// re-analyzed offline (cmd/perfreport). Lanes are recovered from the
// thread ids — 0/1/2 are the canonical host/gpu/solver lanes — falling
// back to the thread_name metadata for the extra lanes (which
// WriteTrace names by their raw lane token, e.g. "mpi"). Timestamps
// round-trip through microseconds, so positions are exact to ~1 ulp;
// span args survive verbatim.
func ReadTrace(r io.Reader) ([]Span, error) {
	type raw struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	var doc struct {
		TraceEvents []raw `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("telemetry: reading trace events: %w", err)
	}
	laneName := map[[2]int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			if n, ok := e.Args["name"].(string); ok {
				laneName[[2]int{e.PID, e.TID}] = n
			}
		}
	}
	laneOf := func(pid, tid int) string {
		switch tid {
		case 0:
			return "host"
		case 1:
			return "gpu"
		case 2:
			return "solver"
		}
		if n, ok := laneName[[2]int{pid, tid}]; ok {
			return n
		}
		return fmt.Sprintf("lane%d", tid)
	}
	log := NewSpanLog()
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		var args map[string]string
		if len(e.Args) > 0 {
			args = make(map[string]string, len(e.Args))
			for k, v := range e.Args {
				args[k] = fmt.Sprint(v)
			}
		}
		log.Add(Span{
			Proc: e.PID, Lane: laneOf(e.PID, e.TID), Cat: e.Cat, Name: e.Name,
			Start: e.Ts / 1e6, End: (e.Ts + e.Dur) / 1e6,
			Args: args,
		})
	}
	return log.Spans(), nil
}
