package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestDashboardShape pins the dashboard page's structure: every
// section the in-page script renders into must exist, and the
// registered extra endpoints must be injected so the script knows
// which optional feeds (/healthz, /spans, /trends.json) to poll.
func TestDashboardShape(t *testing.T) {
	RegisterHandler("/trends.json", http.NotFoundHandler())
	defer RegisterHandler("/trends.json", nil)

	rec := httptest.NewRecorder()
	DashboardHandler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/dashboard", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/dashboard status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("/dashboard content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`id="status"`,
		`id="health"`,
		`id="ranks"`,
		`id="solver"`,
		`id="events"`,
		`id="trends"`,
		`id="metrics"`,
		"const EXTRA_ENDPOINTS",
		`"/trends.json"`,
		`fetch("/metrics.json"`,
		`fetch("/trends.json"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/dashboard missing %q", want)
		}
	}
	if !strings.HasPrefix(body, "<!DOCTYPE html>") {
		t.Errorf("/dashboard does not start with a doctype")
	}
}

// TestMetricsJSONGoldenShape pins the /metrics.json wire format field
// by field — the dashboard's JS, spmvtop, and ReadSnapshot all parse
// this shape, so a rename here is a cross-tool break.
func TestMetricsJSONGoldenShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("runs_total", L("rank", "0")).Add(2)
	r.Gauge("depth").Set(1.5)
	r.Histogram("sizes", []float64{10, 100}).Observe(42)

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics.json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", rec.Code)
	}
	var doc struct {
		Metrics []map[string]json.RawMessage `json:"metrics"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/metrics.json not JSON: %v", err)
	}
	if len(doc.Metrics) != 3 {
		t.Fatalf("%d series, want 3", len(doc.Metrics))
	}
	byName := map[string]map[string]json.RawMessage{}
	for _, m := range doc.Metrics {
		var name string
		if err := json.Unmarshal(m["name"], &name); err != nil {
			t.Fatalf("series without a name field: %v", m)
		}
		byName[name] = m
	}

	counter := byName["runs_total"]
	for _, field := range []string{"name", "type", "value", "labels"} {
		if _, ok := counter[field]; !ok {
			t.Errorf("counter series missing %q: %v", field, counter)
		}
	}
	var labels map[string]string
	if err := json.Unmarshal(counter["labels"], &labels); err != nil || labels["rank"] != "0" {
		t.Errorf("counter labels = %s (err %v), want rank=0", counter["labels"], err)
	}

	hist := byName["sizes"]
	for _, field := range []string{"buckets", "sum", "count"} {
		if _, ok := hist[field]; !ok {
			t.Errorf("histogram series missing %q: %v", field, hist)
		}
	}
	var typ string
	if err := json.Unmarshal(hist["type"], &typ); err != nil || typ != "histogram" {
		t.Errorf("histogram type = %s, want \"histogram\"", hist["type"])
	}

	// The snapshot must round-trip through the reader every consumer
	// uses.
	snap, err := ReadSnapshot(strings.NewReader(rec.Body.String()))
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if len(snap) != 3 {
		t.Fatalf("round-trip kept %d series, want 3", len(snap))
	}
}

// TestServeMuxIncludesTrends: a route registered before Serve shows
// up on the mux, so /trends.json from cmd/scaling reaches the page.
func TestServeMuxIncludesTrends(t *testing.T) {
	RegisterHandler("/trends.json", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"ledger":"x","sources":[],"rows":[]}`))
	}))
	defer RegisterHandler("/trends.json", nil)

	mux := serveMux(NewRegistry())
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/trends.json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/trends.json status %d", rec.Code)
	}
	var doc struct {
		Rows []any `json:"rows"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatalf("/trends.json not JSON: %v", err)
	}
}
