package telemetry

import (
	"runtime"
	"runtime/metrics"
)

// RuntimeSampler publishes Go runtime health — GC pauses, GC CPU,
// heap size, goroutine count — into a Registry, so the health engine
// (and anything scraping /metrics) can see GC stalls next to the
// simulation's own counters. Families:
//
//	runtime_gc_pause_seconds_total  counter  total stop-the-world pause
//	runtime_gc_cpu_seconds_total    counter  CPU spent by the GC
//	runtime_gc_cycles_total         counter  completed GC cycles
//	runtime_heap_bytes              gauge    live heap (objects) bytes
//	runtime_goroutines              gauge    current goroutine count
//
// Counters are monotonic by construction: the sampler tracks the
// previous reading and adds non-negative deltas. One Sample call
// costs two runtime reads (metrics.Read + ReadMemStats for the exact
// pause total, which runtime/metrics only exposes as a histogram).
type RuntimeSampler struct {
	samples []metrics.Sample

	cPause  *Counter
	cGCCPU  *Counter
	cCycles *Counter
	gHeap   *Gauge
	gGoros  *Gauge

	prevPauseNs uint64
	prevGCCPU   float64
	prevCycles  uint64
}

const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCCPU      = "/cpu/classes/gc/total:cpu-seconds"
)

// NewRuntimeSampler builds a sampler reporting into reg (nil selects
// the process-default registry).
func NewRuntimeSampler(reg *Registry) *RuntimeSampler {
	if reg == nil {
		reg = Default()
	}
	reg.Help("runtime_gc_pause_seconds_total", "total GC stop-the-world pause time")
	reg.Help("runtime_gc_cpu_seconds_total", "total CPU time spent by the garbage collector")
	reg.Help("runtime_gc_cycles_total", "completed GC cycles")
	reg.Help("runtime_heap_bytes", "bytes of live heap objects")
	reg.Help("runtime_goroutines", "current number of goroutines")
	s := &RuntimeSampler{
		samples: []metrics.Sample{
			{Name: rmGoroutines},
			{Name: rmHeapBytes},
			{Name: rmGCCycles},
			{Name: rmGCCPU},
		},
		cPause:  reg.Counter("runtime_gc_pause_seconds_total"),
		cGCCPU:  reg.Counter("runtime_gc_cpu_seconds_total"),
		cCycles: reg.Counter("runtime_gc_cycles_total"),
		gHeap:   reg.Gauge("runtime_heap_bytes"),
		gGoros:  reg.Gauge("runtime_goroutines"),
	}
	// Baseline read so the first Sample reports deltas from "sampler
	// start", not "process start".
	s.read()
	return s
}

// read takes the raw runtime readings and returns them.
func (s *RuntimeSampler) read() (pauseNs uint64, gcCPU float64, cycles, heap, goros uint64) {
	metrics.Read(s.samples)
	for _, sm := range s.samples {
		switch sm.Name {
		case rmGoroutines:
			goros = sm.Value.Uint64()
		case rmHeapBytes:
			heap = sm.Value.Uint64()
		case rmGCCycles:
			cycles = sm.Value.Uint64()
		case rmGCCPU:
			if sm.Value.Kind() == metrics.KindFloat64 {
				gcCPU = sm.Value.Float64()
			}
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	pauseNs = ms.PauseTotalNs
	s.prevPauseNs, s.prevGCCPU, s.prevCycles = pauseNs, gcCPU, cycles
	return
}

// Sample takes one reading and publishes it. Call it on the health
// ticker (Engine.Start does) or any other periodic loop.
func (s *RuntimeSampler) Sample() {
	prevPause, prevGCCPU, prevCycles := s.prevPauseNs, s.prevGCCPU, s.prevCycles
	pauseNs, gcCPU, cycles, heap, goros := s.read()
	if pauseNs > prevPause {
		s.cPause.Add(float64(pauseNs-prevPause) / 1e9)
	}
	if gcCPU > prevGCCPU {
		s.cGCCPU.Add(gcCPU - prevGCCPU)
	}
	if cycles > prevCycles {
		s.cCycles.Add(float64(cycles - prevCycles))
	}
	s.gHeap.Set(float64(heap))
	s.gGoros.Set(float64(goros))
}
