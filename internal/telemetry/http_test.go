package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// TestHandlerEndpoints asserts the registry handler serves /metrics and
// /metrics.json with status 200 and well-formed bodies.
func TestHandlerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Help("up_total", "liveness")
	r.Counter("up_total", L("job", "test")).Inc()
	r.Gauge("idle") // zero-valued on purpose
	r.Histogram("sizes", nil).Observe(100)

	h := r.Handler()

	// /metrics: Prometheus text exposition.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics content type %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP up_total liveness",
		"# TYPE up_total counter",
		`up_total{job="test"} 1`,
		"# TYPE sizes histogram",
		`sizes_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	// /metrics.json: parseable snapshot with every series present.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics.json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics.json content type %q", ct)
	}
	snap, err := ReadSnapshot(rec.Body)
	if err != nil {
		t.Fatalf("/metrics.json body: %v", err)
	}
	if len(snap) != 3 {
		t.Fatalf("/metrics.json has %d series, want 3", len(snap))
	}
}

// TestServeMuxDebugVars asserts the full Serve mux (exercised without a
// real listener) answers /debug/vars with valid JSON.
func TestServeMuxDebugVars(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total").Inc()
	mux := serveMux(r)
	for _, path := range []string{"/metrics", "/metrics.json", "/debug/vars"} {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("%s status %d", path, rec.Code)
		}
		if rec.Body.Len() == 0 {
			t.Errorf("%s empty body", path)
		}
	}
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/vars", nil))
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Error("/debug/vars missing memstats")
	}
}
