// Package telemetry is the dependency-free observability layer of the
// simulated GPGPU cluster: a metrics registry (atomic counters, gauges
// and histograms with labels), a span log for virtual-time timelines,
// Prometheus-text and JSON exposition, and an optional HTTP endpoint
// for watching long runs live.
//
// Every simulator layer publishes into a Registry: internal/gpu emits
// per-kernel transaction counts and the paper's model quantities
// (Eq. 1's code balance and α, coalescing efficiency), internal/simnet
// and internal/mpi emit wire traffic and serialization time,
// internal/distmv emits per-rank structure and run-level performance,
// and the solvers emit iteration/residual gauges. Output is
// deterministic: metric families are sorted by name, series by their
// canonical (sorted) label set, and spans by start time.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key/value dimension of a metric series.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Li builds a Label with an integer value (ranks, node counts).
func Li(key string, value int) Label { return Label{Key: key, Value: strconv.Itoa(value)} }

// canonical renders labels in sorted {k="v",...} form; it is the
// series identity within a family and the exposition order.
func canonical(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].Key != ls[j].Key {
			return ls[i].Key < ls[j].Key
		}
		return ls[i].Value < ls[j].Value
	})
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the Prometheus label-value escaping rules.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// validName reports whether name is a legal metric name.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// atomicFloat is a float64 updated with CAS on its bit pattern.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Counter is a monotonically increasing series.
type Counter struct {
	labels []Label
	val    atomicFloat
}

// Add increases the counter; negative deltas panic (counters are
// monotone by contract).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic(fmt.Sprintf("telemetry: negative counter delta %g", v))
	}
	c.val.add(v)
}

// Inc adds one.
func (c *Counter) Inc() { c.val.add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return c.val.load() }

// Gauge is a series holding the last observed value.
type Gauge struct {
	labels []Label
	val    atomicFloat
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.val.store(v) }

// Add shifts the gauge by v.
func (g *Gauge) Add(v float64) { g.val.add(v) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.val.load() }

// Histogram accumulates observations into fixed cumulative buckets.
type Histogram struct {
	labels []Label
	bounds []float64 // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomicFloat
	n      atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return h.sum.load() }

// DefBuckets is the default byte-size bucket ladder used for message
// and transfer sizes.
var DefBuckets = []float64{64, 256, 1024, 4096, 16384, 65536, 262144, 1048576, 4194304}

// Registry holds metric families. All methods are safe for concurrent
// use; series handles (Counter, Gauge, Histogram) update with atomics
// only.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	// kind guards one name against being used as several metric types.
	kind map[string]string
	help map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		kind:     map[string]string{},
		help:     map[string]string{},
	}
}

// defaultRegistry collects everything not sent to an explicit registry;
// the cmd binaries expose it via -metrics-out / -metrics-addr.
var defaultRegistry = NewRegistry()

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Help attaches exposition help text to a family name.
func (r *Registry) Help(name, text string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = text
}

// checkKind registers (or verifies) the type of a family. Callers hold r.mu.
func (r *Registry) checkKind(name, want string) {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	if k, ok := r.kind[name]; ok && k != want {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s, requested as %s", name, k, want))
	}
	r.kind[name] = want
}

// Counter returns the counter series for name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	key := name + canonical(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	r.checkKind(name, "counter")
	c := &Counter{labels: append([]Label(nil), labels...)}
	r.counters[key] = c
	return c
}

// Gauge returns the gauge series for name+labels, creating it on first
// use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	key := name + canonical(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	r.checkKind(name, "gauge")
	g := &Gauge{labels: append([]Label(nil), labels...)}
	r.gauges[key] = g
	return g
}

// Histogram returns the histogram series for name+labels, creating it
// with the given ascending bucket bounds on first use (nil selects
// DefBuckets). Later calls reuse the first bounds.
func (r *Registry) Histogram(name string, bounds []float64, labels ...Label) *Histogram {
	key := name + canonical(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	r.checkKind(name, "histogram")
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{
		labels: append([]Label(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	r.hists[key] = h
	return h
}
