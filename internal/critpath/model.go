package critpath

import (
	"fmt"
	"sort"
	"strconv"

	"pjds/internal/perfmodel"
	"pjds/internal/telemetry"
)

// KernelEntry compares one kernel phase's measured traffic against the
// Eq. 1 model: the predicted code balance 6 + 4α + 8/N_nzr at the
// MEASURED α and N_nzr, so the deviation isolates overhead the model
// does not account for (uncoalesced access, divergence padding, meta
// streams) from legitimate RHS re-loading (which moves α instead).
type KernelEntry struct {
	Rank   int    `json:"rank"`
	Phase  string `json:"phase"` // local / non-local / merged
	Kernel string `json:"kernel"`
	Device string `json:"device,omitempty"`

	NnzPerRow       float64 `json:"nnz_per_row"`
	Alpha           float64 `json:"alpha"`
	MeasuredBalance float64 `json:"measured_balance"` // bytes/flop
	PredictedDP     float64 `json:"predicted_balance"`
	DeviationPct    float64 `json:"deviation_pct"`
	Coalescing      float64 `json:"coalescing_efficiency"`
	GFlops          float64 `json:"gflops"`
	// Note flags entries whose deviation has an identified cause.
	Note string `json:"note,omitempty"`
}

// kernelKey groups the gpu_kernel_* series of one phase.
type kernelKey struct {
	rank          int
	phase, kernel string
	device        string
}

// AttributeKernels builds the measured-vs-model table from a metrics
// snapshot (the gpu_kernel_* families published by internal/gpu with
// the rank/phase labels internal/distmv attaches). Entries are sorted
// by rank then phase; series without a rank label (single-device
// benchmarks) appear as rank -1.
func AttributeKernels(metrics []telemetry.Series) []KernelEntry {
	type acc struct {
		nnz, rows, alpha, balance, coal, gflops float64
	}
	byKey := map[kernelKey]*acc{}
	for _, s := range metrics {
		switch s.Name {
		case "gpu_kernel_nnz_total", "gpu_kernel_rows_total",
			"gpu_kernel_alpha", "gpu_kernel_code_balance",
			"gpu_kernel_coalescing_efficiency", "gpu_kernel_gflops":
		default:
			continue
		}
		k := kernelKey{rank: -1, kernel: s.Labels["kernel"], device: s.Labels["device"], phase: s.Labels["phase"]}
		if r, err := strconv.Atoi(s.Labels["rank"]); err == nil {
			k.rank = r
		}
		a := byKey[k]
		if a == nil {
			a = &acc{}
			byKey[k] = a
		}
		switch s.Name {
		case "gpu_kernel_nnz_total":
			a.nnz = s.Value
		case "gpu_kernel_rows_total":
			a.rows = s.Value
		case "gpu_kernel_alpha":
			a.alpha = s.Value
		case "gpu_kernel_code_balance":
			a.balance = s.Value
		case "gpu_kernel_coalescing_efficiency":
			a.coal = s.Value
		case "gpu_kernel_gflops":
			a.gflops = s.Value
		}
	}
	keys := make([]kernelKey, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		switch {
		case a.rank != b.rank:
			return a.rank < b.rank
		case a.phase != b.phase:
			return a.phase < b.phase
		case a.kernel != b.kernel:
			return a.kernel < b.kernel
		}
		return a.device < b.device
	})
	var out []KernelEntry
	for _, k := range keys {
		a := byKey[k]
		if a.rows <= 0 || a.nnz <= 0 {
			continue // empty phase (e.g. a rank with no non-local part)
		}
		e := KernelEntry{
			Rank: k.rank, Phase: k.phase, Kernel: k.kernel, Device: k.device,
			NnzPerRow:       a.nnz / a.rows,
			Alpha:           a.alpha,
			MeasuredBalance: a.balance,
			Coalescing:      a.coal,
			GFlops:          a.gflops,
		}
		e.PredictedDP = perfmodel.CodeBalanceDP(e.Alpha, e.NnzPerRow)
		if e.PredictedDP > 0 {
			e.DeviationPct = 100 * (e.MeasuredBalance - e.PredictedDP) / e.PredictedDP
		}
		e.Note = kernelNote(e)
		out = append(out, e)
	}
	return out
}

// kernelNote names the likeliest cause of a model deviation.
func kernelNote(e KernelEntry) string {
	switch {
	case e.Coalescing < 0.9:
		return fmt.Sprintf("uncoalesced val/idx access (%.0f%% efficiency) inflates traffic", 100*e.Coalescing)
	case e.DeviationPct > 10:
		return "traffic above the Eq. 1 worst case: divergence padding or meta streams"
	case e.DeviationPct < -10:
		return "traffic below model: RHS reuse better than the measured α suggests"
	case e.Alpha > 0.5 && e.NnzPerRow > 0 && e.Alpha > 2/e.NnzPerRow:
		return "poor RHS cache reuse (α near worst case) dominates the balance"
	}
	return ""
}
