package critpath

import (
	"math"
	"testing"
)

func TestDiffIdentical(t *testing.T) {
	doc := []byte(`{"entries":[{"gflops":12.5,"seconds":0.01}],"label":"x"}`)
	findings, err := Diff(doc, doc, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("identical docs produced findings: %+v", findings)
	}
}

func TestDiffDirections(t *testing.T) {
	oldDoc := []byte(`{"gflops":10,"seconds":1.0,"nnz":5}`)
	newDoc := []byte(`{"gflops":8,"seconds":0.5,"nnz":6}`)
	findings, err := Diff(oldDoc, newDoc, DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, f := range findings {
		got[f.Path] = f.Verdict
	}
	if got["gflops"] != DiffRegression {
		t.Errorf("gflops verdict %q", got["gflops"])
	}
	if got["seconds"] != DiffImprovement {
		t.Errorf("seconds verdict %q", got["seconds"])
	}
	// nnz has no direction: any drift in a deterministic run is a
	// regression.
	if got["nnz"] != DiffRegression {
		t.Errorf("nnz verdict %q", got["nnz"])
	}
}

// TestDiffBenchmarkMetricDirections: the host-kernel benchmark
// artifacts carry ns_per_op/ns_per_nnz (lower is better) and
// allocs_per_op (lower is better, and any growth from 0 is a
// regression).
func TestDiffBenchmarkMetricDirections(t *testing.T) {
	oldDoc := []byte(`{"ns_per_op":100,"ns_per_nnz":1.5,"allocs_per_op":2}`)
	newDoc := []byte(`{"ns_per_op":120,"ns_per_nnz":1.2,"allocs_per_op":0}`)
	findings, err := Diff(oldDoc, newDoc, DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, f := range findings {
		got[f.Path] = f.Verdict
	}
	if got["ns_per_op"] != DiffRegression {
		t.Errorf("ns_per_op verdict %q", got["ns_per_op"])
	}
	if got["ns_per_nnz"] != DiffImprovement {
		t.Errorf("ns_per_nnz verdict %q", got["ns_per_nnz"])
	}
	if got["allocs_per_op"] != DiffImprovement {
		t.Errorf("allocs_per_op verdict %q", got["allocs_per_op"])
	}
}

// TestDiffServiceMetricDirections: the spmvd artifacts carry
// throughput_rps (higher is better) and p50/p99 latency seconds
// (lower is better — "latency" wins even though "seconds" also
// appears, both point the same way).
func TestDiffServiceMetricDirections(t *testing.T) {
	oldDoc := []byte(`{"throughput_rps":1000,"p99_latency_seconds":0.010}`)
	newDoc := []byte(`{"throughput_rps":800,"p99_latency_seconds":0.005}`)
	findings, err := Diff(oldDoc, newDoc, DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, f := range findings {
		got[f.Path] = f.Verdict
	}
	if got["throughput_rps"] != DiffRegression {
		t.Errorf("throughput_rps verdict %q, want regression on a drop", got["throughput_rps"])
	}
	if got["p99_latency_seconds"] != DiffImprovement {
		t.Errorf("p99_latency_seconds verdict %q, want improvement on a drop", got["p99_latency_seconds"])
	}
}

func TestDiffToleranceBands(t *testing.T) {
	oldDoc := []byte(`{"gflops":100,"seconds":1.0}`)
	newDoc := []byte(`{"gflops":99,"seconds":1.04}`)
	// Default 2% band: both within.
	findings, err := Diff(oldDoc, newDoc, DiffOptions{
		Tolerance: 0.02,
		PerMetric: map[string]float64{"seconds": 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("within-band changes reported: %+v", findings)
	}
	// Tighten seconds to 1%: becomes a regression.
	findings, err = Diff(oldDoc, newDoc, DiffOptions{
		Tolerance: 0.02,
		PerMetric: map[string]float64{"seconds": 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Path != "seconds" || !findings[0].Regression() {
		t.Errorf("findings: %+v", findings)
	}
}

func TestDiffMissingAndAdded(t *testing.T) {
	oldDoc := []byte(`{"a":1,"b":2}`)
	newDoc := []byte(`{"b":2,"c":3}`)
	findings, err := Diff(oldDoc, newDoc, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 2 {
		t.Fatalf("findings: %+v", findings)
	}
	// Sorted by path: a (missing), c (added).
	if findings[0].Path != "a" || findings[0].Verdict != DiffMissing || !findings[0].Regression() {
		t.Errorf("missing finding: %+v", findings[0])
	}
	if findings[1].Path != "c" || findings[1].Verdict != DiffAdded || findings[1].Regression() {
		t.Errorf("added finding: %+v", findings[1])
	}
	if !math.IsNaN(findings[0].New) || !math.IsNaN(findings[1].Old) {
		t.Errorf("NaN sentinels missing: %+v", findings)
	}
}

func TestDiffNestedPaths(t *testing.T) {
	oldDoc := []byte(`{"entries":[{"gflops":10},{"gflops":20}]}`)
	newDoc := []byte(`{"entries":[{"gflops":10},{"gflops":30}]}`)
	findings, err := Diff(oldDoc, newDoc, DiffOptions{Tolerance: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 || findings[0].Path != "entries[1].gflops" {
		t.Fatalf("findings: %+v", findings)
	}
	if findings[0].Verdict != DiffImprovement {
		t.Errorf("verdict %q", findings[0].Verdict)
	}
}
