// Package critpath turns the telemetry of a simulated distributed run
// — the per-rank span log plus the metrics snapshot — into a causal
// performance report. It reconstructs the cross-rank happens-before
// DAG (message edges from the mpi lane's send records, collective
// edges from the rendezvous spans, program order within each rank),
// extracts the critical path by a deterministic backward walk from the
// last event, and attributes every second of the path to a
// rank × lane × span-name contributor and to one of the paper's cost
// categories: kernel (device memory bandwidth, Eq. 1), PCIe (Eq. 2's
// T_PCI), communication (§III-A), or imbalance (idle gaps). The
// companion analyses — overlap efficiency per communication mode and
// measured-vs-model kernel attribution — live in overlap.go and
// model.go; report.go assembles everything into one Report.
package critpath

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"pjds/internal/mpi"
	"pjds/internal/telemetry"
)

// Message is one point-to-point transfer reconstructed from an mpi
// "send" span. SentAt..InjectEnd is NIC serialization on the source,
// InjectEnd..ArrivesAt the wire (latency) portion.
type Message struct {
	Src, Dst, Tag int
	Bytes         int64
	SentAt        float64
	InjectEnd     float64
	ArrivesAt     float64
	Fabric        string
}

// WireSeconds returns the full source-to-destination transfer time.
func (m Message) WireSeconds() float64 { return m.ArrivesAt - m.SentAt }

// ExtractMessages rebuilds the message records from the mpi lane's
// send spans (see mpi.SpanSend), sorted by (SentAt, Src, Dst, Tag).
func ExtractMessages(spans []telemetry.Span) []Message {
	var msgs []Message
	for _, s := range spans {
		if s.Lane != mpi.SpanLane || s.Name != mpi.SpanSend {
			continue
		}
		m := Message{Src: s.Proc, SentAt: s.Start, InjectEnd: s.End}
		m.Dst, _ = strconv.Atoi(s.Args[mpi.ArgPeer])
		m.Tag, _ = strconv.Atoi(s.Args[mpi.ArgTag])
		m.Bytes, _ = strconv.ParseInt(s.Args[mpi.ArgBytes], 10, 64)
		m.Fabric = s.Args[mpi.ArgFabric]
		if v, err := strconv.ParseFloat(s.Args[mpi.ArgArrives], 64); err == nil {
			m.ArrivesAt = v
		} else {
			m.ArrivesAt = m.InjectEnd
		}
		msgs = append(msgs, m)
	}
	sort.SliceStable(msgs, func(i, j int) bool {
		a, b := msgs[i], msgs[j]
		switch {
		case a.SentAt != b.SentAt:
			return a.SentAt < b.SentAt
		case a.Src != b.Src:
			return a.Src < b.Src
		case a.Dst != b.Dst:
			return a.Dst < b.Dst
		}
		return a.Tag < b.Tag
	})
	return msgs
}

// Cost categories of the verdict taxonomy.
const (
	CatKernel        = "kernel"        // device-memory-bound spMVM work (Eq. 1)
	CatPCIe          = "pcie"          // host↔device transfers (Eq. 2's T_PCI)
	CatCommunication = "communication" // MPI driving, serialization, wire
	CatImbalance     = "imbalance"     // idle gaps and straggler waits
	CatRecovery      = "recovery"      // fault handling: retries, detection, checkpoints, rollbacks
	CatTuning        = "tuning"        // format-selection sweeps: model pruning and timed replays
	CatOther         = "other"
)

// Verdicts name the dominant cost category of a critical path.
var verdictFor = map[string]string{
	CatKernel:        "bandwidth-bound",
	CatPCIe:          "PCIe-bound",
	CatCommunication: "communication-bound",
	CatImbalance:     "imbalance-bound",
	CatRecovery:      "recovery-bound",
	CatTuning:        "tuning-bound",
	CatOther:         "other-bound",
}

// CategoryOf maps a span's lane and name to its cost category, using
// the vocabulary of internal/distmv (host/gpu lanes), internal/mpi
// (mpi/net lanes) and internal/distsolver (solver lane).
func CategoryOf(lane, name string) string {
	switch lane {
	case "tune":
		// The tuner's sweep spans (internal/tuner): model pruning and
		// per-candidate timed replays.
		return CatTuning
	case "recovery":
		// Checkpoint commits and rollback-restart windows of the
		// fault-tolerant solver driver.
		return CatRecovery
	case "net", mpi.SpanLane:
		switch name {
		case mpi.SpanRetry, mpi.SpanDetect, mpi.SpanCrash:
			// Fault handling inside the message layer: retry backoff,
			// heartbeat detection, injected crashes.
			return CatRecovery
		}
		return CatCommunication
	case "host":
		return CatCommunication // local gather + MPI driving (Fig. 4 thread 0)
	case "gpu":
		if strings.Contains(name, "spMVM") {
			return CatKernel
		}
		return CatPCIe // upload RHS / upload halo / download LHS
	case "solver":
		switch {
		case strings.Contains(name, "spMVM"):
			return CatKernel
		case strings.Contains(name, "exchange"):
			return CatCommunication
		}
		return CatOther
	case laneIdle:
		return CatImbalance
	}
	return CatOther
}

// laneIdle is the synthetic lane idle gaps are attributed to.
const laneIdle = "idle"

// Segment is one attributed stretch of the critical path, in walk
// order (earliest first after Path reverses them).
type Segment struct {
	Proc       int     `json:"proc"`
	Lane       string  `json:"lane"`
	Name       string  `json:"name"`
	Start, End float64 `json:"-"`
	Seconds    float64 `json:"seconds"`
}

// Contributor aggregates path time per rank × lane × span name.
type Contributor struct {
	Proc     int     `json:"proc"`
	Lane     string  `json:"lane"`
	Name     string  `json:"name"`
	Seconds  float64 `json:"seconds"`
	Fraction float64 `json:"fraction"` // of PathSeconds
}

// PathReport is the outcome of the critical-path extraction.
type PathReport struct {
	// MakespanSeconds is the span of the whole timeline (max End −
	// min Start over all spans); PathSeconds the attributed path time.
	MakespanSeconds float64 `json:"makespan_seconds"`
	PathSeconds     float64 `json:"path_seconds"`
	// Segments is the path itself, earliest first. Contributors ranks
	// the aggregation per rank × lane × name, largest first, and
	// Categories sums path seconds per cost category.
	Segments     []Segment          `json:"segments"`
	Contributors []Contributor      `json:"contributors"`
	Categories   map[string]float64 `json:"categories"`
	// Verdict names the dominant category: bandwidth-bound,
	// PCIe-bound, communication-bound, or imbalance-bound.
	Verdict string `json:"verdict"`
}

// walker holds the state of one backward traversal.
type walker struct {
	byProc map[int][]telemetry.Span // nodes per rank, sorted by Start
	byDst  map[int][]Message        // messages per destination rank
	used   map[spanKey]bool
	segs   []Segment
}

// spanKey identifies a node span for the used-set (spans are values,
// and the deterministic sort makes this key unique enough: two truly
// identical spans are interchangeable on the path).
type spanKey struct {
	proc       int
	lane, name string
	start, end float64
}

func keyOf(s telemetry.Span) spanKey {
	return spanKey{s.Proc, s.Lane, s.Name, s.Start, s.End}
}

// eps returns the comparison tolerance at time t.
func eps(t float64) float64 {
	a := t
	if a < 0 {
		a = -a
	}
	if a < 1 {
		a = 1
	}
	return 1e-9 * a
}

// Path extracts the critical path from a span log. Message spans
// (mpi "send") act as cross-rank edges rather than nodes; everything
// else — compute phases, waits, collectives — is a node. The walk is
// fully deterministic for a deterministic simulation.
func Path(spans []telemetry.Span) PathReport {
	rep := PathReport{Categories: map[string]float64{}}
	if len(spans) == 0 {
		rep.Verdict = verdictFor[CatOther]
		return rep
	}
	w := &walker{
		byProc: map[int][]telemetry.Span{},
		byDst:  map[int][]Message{},
		used:   map[spanKey]bool{},
	}
	minStart, maxEnd := spans[0].Start, spans[0].End
	var start telemetry.Span
	haveStart := false
	for _, s := range spans {
		if s.Start < minStart {
			minStart = s.Start
		}
		if s.End > maxEnd {
			maxEnd = s.End
		}
		if s.Lane == mpi.SpanLane && s.Name == mpi.SpanSend {
			continue // message record, not a node
		}
		w.byProc[s.Proc] = append(w.byProc[s.Proc], s)
		// The walk starts at the globally last-ending node
		// (tie-break: min Proc, Lane, Name — matching SpanLog order).
		if !haveStart || s.End > start.End {
			start, haveStart = s, true
		}
	}
	for p := range w.byProc {
		sort.SliceStable(w.byProc[p], func(i, j int) bool {
			a, b := w.byProc[p][i], w.byProc[p][j]
			switch {
			case a.Start != b.Start:
				return a.Start < b.Start
			case a.Lane != b.Lane:
				return a.Lane < b.Lane
			case a.Name != b.Name:
				return a.Name < b.Name
			}
			return a.End < b.End
		})
	}
	for _, m := range ExtractMessages(spans) {
		w.byDst[m.Dst] = append(w.byDst[m.Dst], m)
	}
	rep.MakespanSeconds = maxEnd - minStart
	if !haveStart {
		rep.Verdict = verdictFor[CatOther]
		return rep
	}

	w.walk(start.Proc, maxEnd, minStart, len(spans))

	// Segments were appended latest-first; flip to timeline order.
	for i, j := 0, len(w.segs)-1; i < j; i, j = i+1, j-1 {
		w.segs[i], w.segs[j] = w.segs[j], w.segs[i]
	}
	rep.Segments = w.segs
	agg := map[spanKey]*Contributor{}
	for _, sg := range w.segs {
		rep.PathSeconds += sg.Seconds
		rep.Categories[CategoryOf(sg.Lane, sg.Name)] += sg.Seconds
		k := spanKey{proc: sg.Proc, lane: sg.Lane, name: sg.Name}
		if agg[k] == nil {
			agg[k] = &Contributor{Proc: sg.Proc, Lane: sg.Lane, Name: sg.Name}
		}
		agg[k].Seconds += sg.Seconds
	}
	for _, c := range agg {
		if rep.PathSeconds > 0 {
			c.Fraction = c.Seconds / rep.PathSeconds
		}
		rep.Contributors = append(rep.Contributors, *c)
	}
	sort.SliceStable(rep.Contributors, func(i, j int) bool {
		a, b := rep.Contributors[i], rep.Contributors[j]
		switch {
		case a.Seconds != b.Seconds:
			return a.Seconds > b.Seconds
		case a.Proc != b.Proc:
			return a.Proc < b.Proc
		case a.Lane != b.Lane:
			return a.Lane < b.Lane
		}
		return a.Name < b.Name
	})
	rep.Verdict = dominantVerdict(rep.Categories)
	return rep
}

// dominantVerdict names the largest cost category (deterministic
// tie-break by category name).
func dominantVerdict(cats map[string]float64) string {
	best, bestSec := CatOther, -1.0
	for _, cat := range []string{CatCommunication, CatImbalance, CatKernel, CatOther, CatPCIe, CatRecovery, CatTuning} {
		if sec := cats[cat]; sec > bestSec {
			best, bestSec = cat, sec
		}
	}
	if bestSec <= 0 {
		return verdictFor[CatOther]
	}
	return verdictFor[best]
}

// emit appends one attributed segment (zero-length segments are kept
// out of the report).
func (w *walker) emit(proc int, lane, name string, start, end float64) {
	if end <= start {
		return
	}
	w.segs = append(w.segs, Segment{
		Proc: proc, Lane: lane, Name: name,
		Start: start, End: end, Seconds: end - start,
	})
}

// pred finds the best predecessor node on proc at time t: among spans
// with Start ≤ t+ε not yet used, the one whose coverage min(End, t) is
// largest; ties prefer the latest Start (the innermost enclosing
// span), then the SpanLog order of lane and name.
func (w *walker) pred(proc int, t float64) (telemetry.Span, bool) {
	var best telemetry.Span
	found := false
	bestCover, bestStart := 0.0, 0.0
	for _, s := range w.byProc[proc] {
		if s.Start > t+eps(t) {
			break // sorted by Start
		}
		if w.used[keyOf(s)] {
			continue
		}
		cover := s.End
		if cover > t {
			cover = t
		}
		switch {
		case !found, cover > bestCover+eps(t):
			// strictly better
		case cover < bestCover-eps(t):
			continue
		case s.Start > bestStart:
			// equal coverage, inner span wins
		default:
			continue
		}
		best, found, bestCover, bestStart = s, true, cover, s.Start
	}
	return best, found
}

// gating returns the message into proc whose arrival at time t gated a
// blocked wait that began at waitStart, if any. Candidates must arrive
// within ε of t and strictly after the wait was posted; the latest
// injection wins (it is the transfer that actually finished last).
func (w *walker) gating(proc int, t, waitStart float64) (Message, bool) {
	var best Message
	found := false
	for _, m := range w.byDst[proc] {
		d := m.ArrivesAt - t
		if d < -eps(t) || d > eps(t) {
			continue
		}
		if m.ArrivesAt <= waitStart+eps(t) {
			continue // arrived before the wait even started
		}
		if !found || m.InjectEnd > best.InjectEnd ||
			(m.InjectEnd == best.InjectEnd && m.Src < best.Src) {
			best, found = m, true
		}
	}
	return best, found
}

// walk performs the backward traversal from (proc, t) down to the
// timeline origin, appending segments latest-first.
func (w *walker) walk(proc int, t, origin float64, nSpans int) {
	// Each step either consumes a node or strictly lowers t; the cap is
	// a belt-and-braces guard against malformed logs.
	for steps := 0; steps < 10*nSpans+1000; steps++ {
		if t <= origin+eps(t) {
			return
		}
		s, ok := w.pred(proc, t)
		if !ok {
			return
		}
		e := s.End
		if e > t {
			e = t
		}
		if e < t-eps(t) {
			// Nothing on this rank covers (e, t]: an idle gap — the rank
			// waited for something the log does not explain (imbalance).
			w.emit(proc, laneIdle, "(idle)", e, t)
			t = e
		}
		atEnd := t >= s.End-eps(t)

		// Message edge: a communication span that ended exactly when a
		// message arrived was blocked on that transfer. Hop to the
		// sender: wire and serialization go on the path, the blocked
		// wait itself does not.
		if atEnd && CategoryOf(s.Lane, s.Name) == CatCommunication {
			if m, ok := w.gating(proc, t, s.Start); ok {
				w.emit(m.Src, "net", "wire", m.InjectEnd, t)
				w.emit(m.Src, mpi.SpanLane, mpi.SpanSend, m.SentAt, m.InjectEnd)
				proc, t = m.Src, m.SentAt
				continue
			}
		}

		// Collective edge: hop to the straggler (root) rank that set the
		// release time; its entry-to-release interval is the path cost.
		if s.Lane == mpi.SpanLane && s.Args[mpi.ArgOp] != "" {
			root, _ := strconv.Atoi(s.Args[mpi.ArgRoot])
			rs, ok := s, true
			if root != proc {
				rs, ok = w.collective(root, s.Args[mpi.ArgOp], s.Args[mpi.ArgGen])
			}
			if ok {
				w.used[keyOf(s)] = true
				w.used[keyOf(rs)] = true
				w.emit(rs.Proc, mpi.SpanLane, s.Args[mpi.ArgOp], rs.Start, t)
				proc, t = rs.Proc, rs.Start
				continue
			}
		}

		// Program-order edge: attribute the stretch of s down to the
		// next event boundary on this rank — either s's own start (s is
		// then consumed) or the end of another span nested inside s
		// (the walk resumes there, typically on the inner span).
		stop := s.Start
		for _, o := range w.byProc[proc] {
			if o.Start > t {
				break
			}
			if o.End < t-eps(t) && o.End > stop && !w.used[keyOf(o)] && keyOf(o) != keyOf(s) {
				stop = o.End
			}
		}
		w.emit(proc, s.Lane, s.Name, stop, t)
		if stop <= s.Start+eps(t) {
			w.used[keyOf(s)] = true
		}
		t = stop
	}
}

// collective finds root's span of the given op and generation.
func (w *walker) collective(root int, op, gen string) (telemetry.Span, bool) {
	for _, s := range w.byProc[root] {
		if s.Lane == mpi.SpanLane && s.Args[mpi.ArgOp] == op && s.Args[mpi.ArgGen] == gen {
			return s, true
		}
	}
	return telemetry.Span{}, false
}

// TopContributors returns the first n contributors (all when n ≤ 0 or
// fewer exist).
func (r PathReport) TopContributors(n int) []Contributor {
	if n <= 0 || n > len(r.Contributors) {
		n = len(r.Contributors)
	}
	return r.Contributors[:n]
}

// String summarizes the report in one line.
func (r PathReport) String() string {
	return fmt.Sprintf("critical path %.3gs of %.3gs makespan, %s",
		r.PathSeconds, r.MakespanSeconds, r.Verdict)
}
