package critpath

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// The perf-regression gate: a structural diff of two benchmark JSON
// documents (BENCH_*.json, perfreport -json output, telemetry
// snapshots — any JSON whose leaves are numbers). Every numeric leaf
// is compared under a per-metric tolerance band; direction heuristics
// classify each excursion as an improvement or a regression, and
// metrics with no known direction treat ANY excursion as a regression
// — the simulation is deterministic, so unexplained drift is a bug.

// DiffOptions parameterize the comparison.
type DiffOptions struct {
	// Tolerance is the default relative band (e.g. 0.02 = ±2%);
	// 0 selects 1e-9, the determinism band.
	Tolerance float64
	// PerMetric overrides the band for leaves whose path contains the
	// key (substring match on the final path component first, then the
	// full path).
	PerMetric map[string]float64
}

// Verdicts of one compared leaf.
const (
	DiffEqual       = "equal"
	DiffImprovement = "improvement"
	DiffRegression  = "regression"
	DiffMissing     = "missing" // present in old, absent in new: a regression
	DiffAdded       = "added"   // new metric: informational
)

// Finding is one leaf-level comparison result.
type Finding struct {
	Path      string  `json:"path"`
	Old       float64 `json:"old"`
	New       float64 `json:"new"`
	RelChange float64 `json:"rel_change"`
	Verdict   string  `json:"verdict"`
}

// Regression reports whether this finding should fail the gate.
func (f Finding) Regression() bool {
	return f.Verdict == DiffRegression || f.Verdict == DiffMissing
}

// Diff compares two benchmark JSON documents leaf by leaf. Findings
// are sorted by path; equal leaves are omitted.
func Diff(oldDoc, newDoc []byte, opt DiffOptions) ([]Finding, error) {
	var oldV, newV any
	if err := json.Unmarshal(oldDoc, &oldV); err != nil {
		return nil, fmt.Errorf("critpath: old document: %w", err)
	}
	if err := json.Unmarshal(newDoc, &newV); err != nil {
		return nil, fmt.Errorf("critpath: new document: %w", err)
	}
	oldLeaves := map[string]float64{}
	newLeaves := map[string]float64{}
	flatten("", oldV, oldLeaves)
	flatten("", newV, newLeaves)

	var out []Finding
	for path, ov := range oldLeaves {
		nv, ok := newLeaves[path]
		if !ok {
			out = append(out, Finding{Path: path, Old: ov, New: math.NaN(), Verdict: DiffMissing})
			continue
		}
		if f, changed := compare(path, ov, nv, opt); changed {
			out = append(out, f)
		}
	}
	for path, nv := range newLeaves {
		if _, ok := oldLeaves[path]; !ok {
			out = append(out, Finding{Path: path, Old: math.NaN(), New: nv, Verdict: DiffAdded})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// Flatten decodes a JSON document and collects its numeric leaves
// under dotted/indexed paths like "entries[3].gflops" (bools become
// 0/1). It is the shared vocabulary between the pairwise diff gate
// and the cross-run trend analysis in internal/runledger.
func Flatten(doc []byte) (map[string]float64, error) {
	var v any
	if err := json.Unmarshal(doc, &v); err != nil {
		return nil, fmt.Errorf("critpath: flatten: %w", err)
	}
	out := map[string]float64{}
	flatten("", v, out)
	return out, nil
}

// Direction reports the diff gate's direction heuristic for a metric
// path: +1 higher-is-better, -1 lower-is-better, 0 unknown. The leaf
// path component is what gets classified.
func Direction(path string) int {
	leaf := path
	if i := strings.LastIndexAny(path, ".]"); i >= 0 && i+1 < len(path) {
		leaf = path[i+1:]
	}
	return direction(leaf)
}

// flatten walks a decoded JSON value, collecting numeric leaves under
// dotted/indexed paths like "entries[3].gflops".
func flatten(path string, v any, out map[string]float64) {
	switch x := v.(type) {
	case map[string]any:
		for k, child := range x {
			p := k
			if path != "" {
				p = path + "." + k
			}
			flatten(p, child, out)
		}
	case []any:
		for i, child := range x {
			flatten(fmt.Sprintf("%s[%d]", path, i), child, out)
		}
	case float64:
		out[path] = x
	case bool:
		b := 0.0
		if x {
			b = 1
		}
		out[path] = b
	}
}

// compare classifies one leaf pair, returning changed=false inside the
// tolerance band.
func compare(path string, ov, nv float64, opt DiffOptions) (Finding, bool) {
	tol := opt.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	leaf := path
	if i := strings.LastIndexAny(path, ".]"); i >= 0 && i+1 < len(path) {
		leaf = path[i+1:]
	}
	for key, t := range opt.PerMetric {
		if strings.Contains(leaf, key) || strings.Contains(path, key) {
			tol = t
			break
		}
	}
	var rel float64
	switch {
	case ov == nv:
		return Finding{}, false
	case ov == 0:
		rel = math.Inf(sign(nv))
	default:
		rel = (nv - ov) / math.Abs(ov)
	}
	if math.Abs(rel) <= tol {
		return Finding{}, false
	}
	f := Finding{Path: path, Old: ov, New: nv, RelChange: rel}
	switch direction(leaf) {
	case +1: // higher is better
		if rel > 0 {
			f.Verdict = DiffImprovement
		} else {
			f.Verdict = DiffRegression
		}
	case -1: // lower is better
		if rel < 0 {
			f.Verdict = DiffImprovement
		} else {
			f.Verdict = DiffRegression
		}
	default: // no known direction: deterministic output should not move
		f.Verdict = DiffRegression
	}
	return f, true
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// direction guesses whether a metric is higher-better (+1),
// lower-better (−1) or direction-free (0) from its leaf name.
func direction(leaf string) int {
	l := strings.ToLower(leaf)
	for _, k := range []string{"gflops", "gf_s", "bandwidth", "efficiency", "hit_rate", "speedup", "overlap", "hidden", "fraction_hidden", "throughput"} {
		if strings.Contains(l, k) {
			return +1
		}
	}
	for _, k := range []string{"seconds", "_ns", "ns_per", "latency", "balance", "deviation", "penalty", "wire", "idle", "imbalance", "allocs"} {
		if strings.Contains(l, k) {
			return -1
		}
	}
	return 0
}
