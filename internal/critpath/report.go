package critpath

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"pjds/internal/telemetry"
)

// Report is the full causal performance report of one run: critical
// path, overlap efficiency, and measured-vs-model kernel attribution.
type Report struct {
	// Label names the analyzed scenario (e.g. "task P=8"); free-form.
	Label   string        `json:"label,omitempty"`
	Path    PathReport    `json:"path"`
	Overlap OverlapReport `json:"overlap"`
	Kernels []KernelEntry `json:"kernels,omitempty"`
}

// Analyze runs every analysis on one span log plus an optional metrics
// snapshot (nil skips the kernel attribution).
func Analyze(label string, spans []telemetry.Span, metrics []telemetry.Series) *Report {
	return &Report{
		Label:   label,
		Path:    Path(spans),
		Overlap: Overlap(spans),
		Kernels: AttributeKernels(metrics),
	}
}

// CategorySummary renders the category split compactly, largest
// first: "62% communication, 30% kernel, 8% pcie".
func (r PathReport) CategorySummary() string {
	if r.PathSeconds <= 0 {
		return "empty path"
	}
	cats := make([]string, 0, len(r.Categories))
	for c, sec := range r.Categories {
		if sec > 0 {
			cats = append(cats, c)
		}
	}
	sort.Slice(cats, func(i, j int) bool {
		a, b := cats[i], cats[j]
		if r.Categories[a] != r.Categories[b] {
			return r.Categories[a] > r.Categories[b]
		}
		return a < b
	})
	parts := make([]string, 0, len(cats))
	for _, c := range cats {
		parts = append(parts, fmt.Sprintf("%.0f%% %s", 100*r.Categories[c]/r.PathSeconds, c))
	}
	return strings.Join(parts, ", ")
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteText renders the human-readable report.
func (r *Report) WriteText(w io.Writer) error {
	if r.Label != "" {
		if _, err := fmt.Fprintf(w, "== %s ==\n", r.Label); err != nil {
			return err
		}
	}
	fmt.Fprintf(w, "critical path: %.4g ms over %.4g ms makespan — %s\n",
		1e3*r.Path.PathSeconds, 1e3*r.Path.MakespanSeconds, r.Path.Verdict)

	cats := make([]string, 0, len(r.Path.Categories))
	for c := range r.Path.Categories {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		a, b := cats[i], cats[j]
		if r.Path.Categories[a] != r.Path.Categories[b] {
			return r.Path.Categories[a] > r.Path.Categories[b]
		}
		return a < b
	})
	for _, c := range cats {
		sec := r.Path.Categories[c]
		pct := 0.0
		if r.Path.PathSeconds > 0 {
			pct = 100 * sec / r.Path.PathSeconds
		}
		fmt.Fprintf(w, "  %-14s %9.4g ms  %5.1f%%\n", c, 1e3*sec, pct)
	}

	if top := r.Path.TopContributors(8); len(top) > 0 {
		fmt.Fprintln(w, "top contributors (rank/lane/name):")
		for _, c := range top {
			fmt.Fprintf(w, "  r%-3d %-7s %-18s %9.4g ms  %5.1f%%\n",
				c.Proc, c.Lane, c.Name, 1e3*c.Seconds, 100*c.Fraction)
		}
	}

	if r.Overlap.WireSeconds > 0 {
		fmt.Fprintf(w, "overlap: %.4g ms of %.4g ms wire time hidden under device work (%.0f%%)\n",
			1e3*r.Overlap.HiddenSeconds, 1e3*r.Overlap.WireSeconds, 100*r.Overlap.Efficiency)
	}

	if len(r.Kernels) > 0 {
		fmt.Fprintln(w, "kernel model attribution (Eq. 1, DP):")
		fmt.Fprintf(w, "  %-4s %-10s %-10s %8s %7s %9s %9s %7s %8s\n",
			"rank", "phase", "kernel", "nnzr", "alpha", "B_meas", "B_model", "dev%", "GF/s")
		for _, e := range r.Kernels {
			fmt.Fprintf(w, "  %-4d %-10s %-10s %8.2f %7.3f %9.3f %9.3f %+6.1f%% %8.2f\n",
				e.Rank, e.Phase, e.Kernel, e.NnzPerRow, e.Alpha,
				e.MeasuredBalance, e.PredictedDP, e.DeviationPct, e.GFlops)
			if e.Note != "" {
				fmt.Fprintf(w, "       ^ %s\n", e.Note)
			}
		}
	}
	return nil
}
