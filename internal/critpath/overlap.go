package critpath

import (
	"sort"

	"pjds/internal/telemetry"
)

// RankOverlap reports how much of one rank's incoming wire time was
// hidden under concurrent device work.
type RankOverlap struct {
	Rank int `json:"rank"`
	// WireSeconds is the union measure of this rank's incoming
	// transfer intervals [SentAt, ArrivesAt]; HiddenSeconds the part of
	// that union overlapping device (gpu-category) busy intervals.
	WireSeconds   float64 `json:"wire_seconds"`
	HiddenSeconds float64 `json:"hidden_seconds"`
	// Efficiency = Hidden/Wire ∈ [0, 1] (0 when no wire time).
	Efficiency float64 `json:"efficiency"`
}

// OverlapReport quantifies §III-A's communication hiding: vector mode
// serializes everything (≈0), naive overlap gains nothing without
// asynchronous MPI progress (≈0), task mode hides the exchange under
// the local kernel (>0, Fig. 4).
type OverlapReport struct {
	Ranks []RankOverlap `json:"ranks"`
	// Aggregate is Σhidden/Σwire over all ranks.
	WireSeconds   float64 `json:"wire_seconds"`
	HiddenSeconds float64 `json:"hidden_seconds"`
	Efficiency    float64 `json:"efficiency"`
}

// interval is a half-open [lo, hi) stretch of virtual time.
type interval struct{ lo, hi float64 }

// merge unions overlapping intervals in place, returning them sorted.
func merge(iv []interval) []interval {
	if len(iv) == 0 {
		return iv
	}
	sort.Slice(iv, func(i, j int) bool { return iv[i].lo < iv[j].lo })
	out := iv[:1]
	for _, x := range iv[1:] {
		last := &out[len(out)-1]
		if x.lo <= last.hi {
			if x.hi > last.hi {
				last.hi = x.hi
			}
			continue
		}
		out = append(out, x)
	}
	return out
}

// measure sums interval lengths.
func measure(iv []interval) float64 {
	total := 0.0
	for _, x := range iv {
		total += x.hi - x.lo
	}
	return total
}

// intersect returns the measure of the intersection of two merged
// interval sets.
func intersect(a, b []interval) float64 {
	total := 0.0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo, hi := a[i].lo, a[i].hi
		if b[j].lo > lo {
			lo = b[j].lo
		}
		if b[j].hi < hi {
			hi = b[j].hi
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].hi < b[j].hi {
			i++
		} else {
			j++
		}
	}
	return total
}

// Overlap computes per-rank and aggregate overlap efficiency from a
// span log: wire intervals are the reconstructed messages' transfer
// windows [SentAt, ArrivesAt] grouped by destination rank, and device
// busy intervals the union of each rank's gpu-category spans (kernels
// and PCIe transfers — everything the device does while the exchange
// is in flight).
func Overlap(spans []telemetry.Span) OverlapReport {
	wire := map[int][]interval{}
	busy := map[int][]interval{}
	for _, m := range ExtractMessages(spans) {
		if m.ArrivesAt > m.SentAt {
			wire[m.Dst] = append(wire[m.Dst], interval{m.SentAt, m.ArrivesAt})
		}
	}
	for _, s := range spans {
		if s.Cat == "gpu" && s.End > s.Start {
			busy[s.Proc] = append(busy[s.Proc], interval{s.Start, s.End})
		}
	}
	ranks := make([]int, 0, len(wire))
	for r := range wire {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	var rep OverlapReport
	for _, r := range ranks {
		wv := merge(wire[r])
		ro := RankOverlap{
			Rank:          r,
			WireSeconds:   measure(wv),
			HiddenSeconds: intersect(wv, merge(busy[r])),
		}
		if ro.WireSeconds > 0 {
			ro.Efficiency = ro.HiddenSeconds / ro.WireSeconds
		}
		rep.Ranks = append(rep.Ranks, ro)
		rep.WireSeconds += ro.WireSeconds
		rep.HiddenSeconds += ro.HiddenSeconds
	}
	if rep.WireSeconds > 0 {
		rep.Efficiency = rep.HiddenSeconds / rep.WireSeconds
	}
	return rep
}
