package critpath_test

import (
	"bytes"
	"math"
	"testing"

	"pjds/internal/critpath"
	"pjds/internal/distmv"
	"pjds/internal/matgen"
	"pjds/internal/telemetry"
)

// runMode executes one distributed spMVM benchmark and returns its
// analysis inputs.
func runMode(t *testing.T, mode distmv.Mode, p int) ([]telemetry.Span, []telemetry.Series) {
	t.Helper()
	m := matgen.Banded(3000, 5, 25, 200, 42)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + 0.001*float64(i%7)
	}
	reg := telemetry.NewRegistry()
	spans := telemetry.NewSpanLog()
	if _, err := distmv.RunSpMVM(m, x, p, mode, distmv.Config{
		Iterations: 2, Telemetry: reg, Spans: spans,
	}); err != nil {
		t.Fatalf("%s: %v", mode, err)
	}
	return spans.Spans(), reg.Snapshot()
}

// TestAnalyzeModes runs the three §III-A schemes through the full
// analysis: every report must carry a non-empty path whose time is
// bounded by the makespan, and task mode must hide strictly more wire
// time than naive overlap (the point of Fig. 4).
func TestAnalyzeModes(t *testing.T) {
	const p = 4
	eff := map[distmv.Mode]float64{}
	for _, mode := range distmv.Modes() {
		spans, metrics := runMode(t, mode, p)
		rep := critpath.Analyze(mode.Slug(), spans, metrics)
		if rep.Path.PathSeconds <= 0 {
			t.Fatalf("%s: empty critical path", mode)
		}
		if rep.Path.PathSeconds > rep.Path.MakespanSeconds*(1+1e-9) {
			t.Errorf("%s: path %g exceeds makespan %g", mode,
				rep.Path.PathSeconds, rep.Path.MakespanSeconds)
		}
		if rep.Overlap.WireSeconds <= 0 {
			t.Errorf("%s: no wire time reconstructed", mode)
		}
		if len(rep.Kernels) == 0 {
			t.Errorf("%s: no kernel attribution entries", mode)
		}
		for _, e := range rep.Kernels {
			if e.PredictedDP <= 0 || e.MeasuredBalance <= 0 {
				t.Errorf("%s: degenerate kernel entry %+v", mode, e)
			}
		}
		var text bytes.Buffer
		if err := rep.WriteText(&text); err != nil {
			t.Fatalf("%s: WriteText: %v", mode, err)
		}
		if text.Len() == 0 {
			t.Errorf("%s: empty text report", mode)
		}
		eff[mode] = rep.Overlap.Efficiency
	}
	if eff[distmv.TaskMode] <= eff[distmv.NaiveOverlap] {
		t.Errorf("task-mode overlap efficiency %.3f not above naive overlap %.3f",
			eff[distmv.TaskMode], eff[distmv.NaiveOverlap])
	}
	if eff[distmv.TaskMode] <= 0.1 {
		t.Errorf("task mode hides only %.1f%% of wire time", 100*eff[distmv.TaskMode])
	}
}

// TestAnalyzeDeterministic: identical runs must produce identical
// reports (the property the regression gate relies on).
func TestAnalyzeDeterministic(t *testing.T) {
	dump := func() []byte {
		spans, metrics := runMode(t, distmv.TaskMode, 3)
		var buf bytes.Buffer
		if err := critpath.Analyze("det", spans, metrics).WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := dump(), dump()
	if !bytes.Equal(a, b) {
		t.Error("reports differ between identical runs")
	}
	// And the gate itself sees zero regressions on them.
	findings, err := critpath.Diff(a, b, critpath.DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Errorf("self-diff produced findings: %+v", findings)
	}
}

// TestPathConservation: on every mode the per-category times sum to
// the path total.
func TestPathConservation(t *testing.T) {
	spans, _ := runMode(t, distmv.VectorMode, 3)
	rep := critpath.Path(spans)
	var sum float64
	for _, s := range rep.Categories {
		sum += s
	}
	if math.Abs(sum-rep.PathSeconds) > 1e-9*math.Max(1, rep.PathSeconds) {
		t.Errorf("categories sum %g != path %g", sum, rep.PathSeconds)
	}
	var segSum float64
	for _, s := range rep.Segments {
		segSum += s.Seconds
	}
	if math.Abs(segSum-rep.PathSeconds) > 1e-9 {
		t.Errorf("segments sum %g != path %g", segSum, rep.PathSeconds)
	}
}
