package critpath

import (
	"math"
	"strconv"
	"testing"

	"pjds/internal/telemetry"
)

// sp builds a plain node span.
func sp(proc int, lane, cat, name string, start, end float64) telemetry.Span {
	return telemetry.Span{Proc: proc, Lane: lane, Cat: cat, Name: name, Start: start, End: end}
}

// sendSpan builds an mpi send record like internal/mpi emits.
func sendSpan(src, dst int, sentAt, injectEnd, arrivesAt float64, bytes int64) telemetry.Span {
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	return telemetry.Span{
		Proc: src, Lane: "mpi", Cat: "net", Name: "send",
		Start: sentAt, End: injectEnd,
		Args: map[string]string{
			"peer": strconv.Itoa(dst), "tag": "0",
			"bytes": strconv.FormatInt(bytes, 10),
			"sent":  f(sentAt), "arrives": f(arrivesAt),
		},
	}
}

func TestExtractMessages(t *testing.T) {
	spans := []telemetry.Span{
		sp(0, "gpu", "gpu", "spMVM", 0, 1),
		sendSpan(1, 0, 2.0, 2.5, 3.0, 4096),
		sendSpan(0, 1, 1.0, 1.25, 1.5, 2048),
	}
	msgs := ExtractMessages(spans)
	if len(msgs) != 2 {
		t.Fatalf("got %d messages, want 2", len(msgs))
	}
	m := msgs[0] // sorted by SentAt
	if m.Src != 0 || m.Dst != 1 || m.Bytes != 2048 {
		t.Errorf("first message = %+v", m)
	}
	if m.SentAt != 1.0 || m.InjectEnd != 1.25 || m.ArrivesAt != 1.5 {
		t.Errorf("times = %g/%g/%g", m.SentAt, m.InjectEnd, m.ArrivesAt)
	}
	if got := m.WireSeconds(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("WireSeconds = %g", got)
	}
}

// TestPathSingleRank: a serial pipeline on one rank attributes every
// phase and classifies the dominant one.
func TestPathSingleRank(t *testing.T) {
	spans := []telemetry.Span{
		sp(0, "host", "comm", "local gather", 0, 1),
		sp(0, "gpu", "gpu", "upload RHS", 1, 2),
		sp(0, "gpu", "gpu", "spMVM", 2, 8),
		sp(0, "gpu", "gpu", "download LHS", 8, 9),
	}
	rep := Path(spans)
	if rep.Verdict != "bandwidth-bound" {
		t.Errorf("verdict = %q", rep.Verdict)
	}
	if math.Abs(rep.PathSeconds-9) > 1e-9 || math.Abs(rep.MakespanSeconds-9) > 1e-9 {
		t.Errorf("path %g makespan %g, want 9", rep.PathSeconds, rep.MakespanSeconds)
	}
	if len(rep.Segments) != 4 {
		t.Fatalf("segments = %+v", rep.Segments)
	}
	if rep.Segments[0].Name != "local gather" || rep.Segments[3].Name != "download LHS" {
		t.Errorf("segment order: %+v", rep.Segments)
	}
	if rep.Contributors[0].Name != "spMVM" || math.Abs(rep.Contributors[0].Seconds-6) > 1e-9 {
		t.Errorf("top contributor: %+v", rep.Contributors[0])
	}
	if got := rep.Categories[CatKernel]; math.Abs(got-6) > 1e-9 {
		t.Errorf("kernel seconds = %g", got)
	}
}

// TestPathMessageHop: rank 0's wait ends when rank 1's message
// arrives; the path must route through rank 1's compute, the send
// serialization, and the wire.
func TestPathMessageHop(t *testing.T) {
	spans := []telemetry.Span{
		// Rank 1 computes until t=5, then sends (inject 5..6, arrive 7).
		sp(1, "gpu", "gpu", "spMVM", 0, 5),
		sp(1, "host", "comm", "MPI_Waitall", 5, 6),
		sendSpan(1, 0, 5, 6, 7, 1<<20),
		// Rank 0 posts early and blocks until the arrival at t=7.
		sp(0, "host", "comm", "local gather", 0, 0.5),
		sp(0, "host", "comm", "MPI_Waitall", 0.5, 7),
		sp(0, "gpu", "gpu", "non-local spMVM", 7, 8),
	}
	rep := Path(spans)
	if rep.Verdict != "bandwidth-bound" {
		t.Errorf("verdict = %q (categories %v)", rep.Verdict, rep.Categories)
	}
	// Expect: r1 spMVM [0,5] → r1 send [5,6] → wire [6,7] → r0 kernel [7,8].
	var names []string
	for _, s := range rep.Segments {
		names = append(names, s.Name)
	}
	want := []string{"spMVM", "send", "wire", "non-local spMVM"}
	if len(names) != len(want) {
		t.Fatalf("segments %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("segments %v, want %v", names, want)
		}
	}
	if rep.Segments[0].Proc != 1 || rep.Segments[3].Proc != 0 {
		t.Errorf("procs: %+v", rep.Segments)
	}
	// The blocked wait on rank 0 must NOT be attributed.
	for _, c := range rep.Contributors {
		if c.Proc == 0 && c.Name == "MPI_Waitall" {
			t.Errorf("blocked wait on the path: %+v", c)
		}
	}
	if got := rep.Categories[CatCommunication]; math.Abs(got-2) > 1e-9 {
		t.Errorf("communication seconds = %g, want 2 (send+wire)", got)
	}
}

// TestPathCollectiveHop: the release time of a collective is set by
// the straggler; the path must jump to it.
func TestPathCollectiveHop(t *testing.T) {
	coll := func(proc int, entry, release float64, root int) telemetry.Span {
		return telemetry.Span{
			Proc: proc, Lane: "mpi", Cat: "net", Name: "allreduce_max",
			Start: entry, End: release,
			Args: map[string]string{"op": "allreduce_max", "root": strconv.Itoa(root), "gen": "0"},
		}
	}
	spans := []telemetry.Span{
		sp(0, "gpu", "gpu", "spMVM", 0, 1),
		sp(1, "gpu", "gpu", "spMVM", 0, 4), // straggler
		coll(0, 1, 4.5, 1),
		coll(1, 4, 4.5, 1),
	}
	rep := Path(spans)
	// Path: r1 spMVM [0,4] → r1 allreduce [4,4.5].
	if len(rep.Segments) != 2 {
		t.Fatalf("segments: %+v", rep.Segments)
	}
	if rep.Segments[0].Proc != 1 || rep.Segments[0].Name != "spMVM" {
		t.Errorf("first segment: %+v", rep.Segments[0])
	}
	if rep.Segments[1].Name != "allreduce_max" || rep.Segments[1].Proc != 1 {
		t.Errorf("second segment: %+v", rep.Segments[1])
	}
	if math.Abs(rep.PathSeconds-4.5) > 1e-9 {
		t.Errorf("path = %g", rep.PathSeconds)
	}
}

// TestPathIdleGap: an uncovered stretch becomes an imbalance segment.
func TestPathIdleGap(t *testing.T) {
	spans := []telemetry.Span{
		sp(0, "gpu", "gpu", "spMVM", 0, 2),
		sp(0, "gpu", "gpu", "download LHS", 5, 6),
	}
	rep := Path(spans)
	if got := rep.Categories[CatImbalance]; math.Abs(got-3) > 1e-9 {
		t.Errorf("imbalance = %g, want 3 (gap 2..5); segments %+v", got, rep.Segments)
	}
	if rep.Verdict != "imbalance-bound" {
		t.Errorf("verdict = %q", rep.Verdict)
	}
}

// TestPathNestedSpans: an enclosing iteration span must not swallow
// the inner phases (the walk stops at inner span boundaries).
func TestPathNestedSpans(t *testing.T) {
	spans := []telemetry.Span{
		sp(0, "solver", "solver", "CG iteration", 0, 10),
		sp(0, "solver", "comm", "halo exchange", 1, 3),
		sp(0, "solver", "gpu", "spMVM", 3, 9),
	}
	rep := Path(spans)
	if got := rep.Categories[CatKernel]; math.Abs(got-6) > 1e-9 {
		t.Errorf("kernel = %g; segments %+v", got, rep.Segments)
	}
	// The enclosing span only picks up what the inner ones do not
	// cover: [0,1] and [9,10].
	var enclosing float64
	for _, s := range rep.Segments {
		if s.Name == "CG iteration" {
			enclosing += s.Seconds
		}
	}
	if math.Abs(enclosing-2) > 1e-9 {
		t.Errorf("enclosing span carries %g s, want 2; segments %+v", enclosing, rep.Segments)
	}
}

func TestPathEmpty(t *testing.T) {
	rep := Path(nil)
	if rep.PathSeconds != 0 || len(rep.Segments) != 0 {
		t.Errorf("empty log: %+v", rep)
	}
}

func TestOverlap(t *testing.T) {
	spans := []telemetry.Span{
		// Rank 0 receives a transfer spanning [1, 3]; its GPU is busy
		// [0, 2]: half the wire time is hidden.
		sendSpan(1, 0, 1, 1.5, 3, 1024),
		sp(0, "gpu", "gpu", "local spMVM", 0, 2),
		// Rank 1 receives [0, 2] with no device work: nothing hidden.
		sendSpan(0, 1, 0, 1, 2, 1024),
	}
	rep := Overlap(spans)
	if len(rep.Ranks) != 2 {
		t.Fatalf("ranks: %+v", rep.Ranks)
	}
	r0 := rep.Ranks[0]
	if r0.Rank != 0 || math.Abs(r0.WireSeconds-2) > 1e-9 || math.Abs(r0.HiddenSeconds-1) > 1e-9 {
		t.Errorf("rank 0: %+v", r0)
	}
	if math.Abs(r0.Efficiency-0.5) > 1e-9 {
		t.Errorf("rank 0 efficiency = %g", r0.Efficiency)
	}
	r1 := rep.Ranks[1]
	if r1.HiddenSeconds != 0 || r1.Efficiency != 0 {
		t.Errorf("rank 1: %+v", r1)
	}
	if math.Abs(rep.Efficiency-0.25) > 1e-9 {
		t.Errorf("aggregate = %g", rep.Efficiency)
	}
}

func TestIntervalHelpers(t *testing.T) {
	merged := merge([]interval{{0, 2}, {1, 3}, {5, 6}})
	if len(merged) != 2 || merged[0] != (interval{0, 3}) || merged[1] != (interval{5, 6}) {
		t.Errorf("merge: %+v", merged)
	}
	if got := measure(merged); math.Abs(got-4) > 1e-12 {
		t.Errorf("measure = %g", got)
	}
	if got := intersect(merged, []interval{{2, 5.5}}); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("intersect = %g", got)
	}
}

func TestAttributeKernels(t *testing.T) {
	lbl := func(rank, phase string) map[string]string {
		return map[string]string{"kernel": "ellpack-r", "device": "C2050", "rank": rank, "phase": phase}
	}
	series := []telemetry.Series{
		{Name: "gpu_kernel_nnz_total", Type: "counter", Labels: lbl("0", "local"), Value: 1000},
		{Name: "gpu_kernel_rows_total", Type: "counter", Labels: lbl("0", "local"), Value: 100},
		{Name: "gpu_kernel_alpha", Type: "gauge", Labels: lbl("0", "local"), Value: 0.2},
		{Name: "gpu_kernel_code_balance", Type: "gauge", Labels: lbl("0", "local"), Value: 7.6},
		{Name: "gpu_kernel_coalescing_efficiency", Type: "gauge", Labels: lbl("0", "local"), Value: 0.99},
		{Name: "gpu_kernel_gflops", Type: "gauge", Labels: lbl("0", "local"), Value: 12.5},
		// A second, empty phase must be skipped.
		{Name: "gpu_kernel_nnz_total", Type: "counter", Labels: lbl("0", "non-local"), Value: 0},
	}
	entries := AttributeKernels(series)
	if len(entries) != 1 {
		t.Fatalf("entries: %+v", entries)
	}
	e := entries[0]
	if e.Rank != 0 || e.Phase != "local" || e.NnzPerRow != 10 {
		t.Errorf("entry: %+v", e)
	}
	// Predicted: 6 + 4·0.2 + 8/10 = 7.6 → deviation 0.
	if math.Abs(e.PredictedDP-7.6) > 1e-12 || math.Abs(e.DeviationPct) > 1e-9 {
		t.Errorf("model: predicted %g deviation %g%%", e.PredictedDP, e.DeviationPct)
	}
	if e.Note != "" {
		t.Errorf("unexpected note %q", e.Note)
	}
}

// TestRecoveryBoundVerdict: fault-handling spans — retry backoff on
// the mpi lane, rollback/checkpoint on the recovery lane — are
// attributed to the recovery category, and a path dominated by them
// gets the recovery-bound verdict.
func TestRecoveryBoundVerdict(t *testing.T) {
	for _, tc := range []struct{ lane, name string }{
		{"mpi", "retry backoff"},
		{"mpi", "failure detect"},
		{"mpi", "crash"},
		{"recovery", "rollback"},
		{"recovery", "checkpoint"},
	} {
		if got := CategoryOf(tc.lane, tc.name); got != CatRecovery {
			t.Errorf("CategoryOf(%q, %q) = %q, want %q", tc.lane, tc.name, got, CatRecovery)
		}
	}
	if got := CategoryOf("mpi", "send"); got != CatCommunication {
		t.Errorf("healthy mpi spans must stay communication, got %q", got)
	}
	spans := []telemetry.Span{
		sp(0, "gpu", "gpu", "spMVM", 0, 1),
		sp(0, "mpi", "net", "retry backoff", 1, 4),
		sp(0, "recovery", "recovery", "rollback", 4, 9),
		sp(0, "gpu", "gpu", "spMVM", 9, 10),
	}
	rep := Path(spans)
	if rep.Verdict != "recovery-bound" {
		t.Errorf("verdict = %q (categories %v)", rep.Verdict, rep.Categories)
	}
	if got := rep.Categories[CatRecovery]; math.Abs(got-8) > 1e-9 {
		t.Errorf("recovery seconds = %g", got)
	}
}

func TestTuneLaneCategory(t *testing.T) {
	if got := CategoryOf("tune", "measure:SELL-8-256"); got != CatTuning {
		t.Fatalf("CategoryOf(tune) = %q, want %q", got, CatTuning)
	}
	// A timeline dominated by a tuner sweep must yield the tuning-bound
	// verdict so perfreport attributes the cost honestly.
	rep := Path([]telemetry.Span{
		{Proc: 0, Lane: "tune", Name: "model-prune", Start: 0, End: 0.1},
		{Proc: 0, Lane: "tune", Name: "measure:pJDS", Start: 0.1, End: 2.0},
		{Proc: 0, Lane: "gpu", Name: "spMVM", Start: 2.0, End: 2.3},
	})
	if rep.Verdict != "tuning-bound" {
		t.Fatalf("verdict = %q, want tuning-bound (categories %v)", rep.Verdict, rep.Categories)
	}
	if rep.Categories[CatTuning] <= rep.Categories[CatKernel] {
		t.Fatalf("tuning seconds %v not dominant over kernel %v", rep.Categories[CatTuning], rep.Categories[CatKernel])
	}
}
