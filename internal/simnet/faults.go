package simnet

import "fmt"

// SendFault is the injected fate of one message transmission, decided
// by an Injector at the moment the message enters the wire. The zero
// value is a healthy transmission.
type SendFault struct {
	// DropAttempts is the number of transmission attempts the wire
	// loses before one succeeds. The payload is never corrupted — the
	// reliable-transport layer (internal/mpi) charges one
	// timeout+backoff per lost attempt and errors out when the count
	// exceeds its retry budget.
	DropAttempts int
	// ExtraDelaySeconds is added to the message's arrival time
	// (congestion, routing anomaly).
	ExtraDelaySeconds float64
	// Duplicate delivers a second, spurious copy of the message one
	// fabric latency later; the switch deduplicates it at the receiver
	// and counts it.
	Duplicate bool
	// BandwidthFactor > 1 divides the link bandwidth for this message
	// (link degradation); 0 and 1 leave it untouched.
	BandwidthFactor float64
}

// IsZero reports whether the fault changes anything.
func (f SendFault) IsZero() bool {
	return f.DropAttempts == 0 && f.ExtraDelaySeconds == 0 && !f.Duplicate &&
		(f.BandwidthFactor == 0 || f.BandwidthFactor == 1)
}

// Injector decides the fate of every message entering the wire.
// Implementations must be safe for concurrent use by the rank
// goroutines and deterministic in (src, dst, tag, bytes, seq) — seq is
// the per-link message sequence number, so a seeded plan reproduces
// the exact same fault schedule on every run. internal/faults provides
// the standard implementation.
type Injector interface {
	OnSend(src, dst, tag int, bytes int64, seq int64) SendFault
}

// RangeError reports a send or receive addressed outside the rank set.
// It replaces the panics these conditions used to raise, so a buggy
// (or fault-injected) caller degrades into an error the run can
// surface instead of a crash.
type RangeError struct {
	Op       string // "send" or "recv"
	Src, Dst int    // as rendered: send Src→Dst, recv Dst←Src
	Ranks    int
}

func (e *RangeError) Error() string {
	if e.Op == "recv" {
		return fmt.Sprintf("simnet: recv %d←%d outside %d ranks", e.Dst, e.Src, e.Ranks)
	}
	return fmt.Sprintf("simnet: send %d→%d outside %d ranks", e.Src, e.Dst, e.Ranks)
}

// PeerFailedError reports that the rank a receive is blocked on has
// died: its mailbox will never produce the message. The failure
// detector in internal/mpi converts it into a RankFailedError with
// detection timing.
type PeerFailedError struct {
	Rank     int     // the dead rank
	FailedAt float64 // virtual time of death
}

func (e *PeerFailedError) Error() string {
	return fmt.Sprintf("simnet: rank %d failed at t=%gs", e.Rank, e.FailedAt)
}
