package simnet

import (
	"math"
	"testing"

	"pjds/internal/telemetry"
)

// TestFabricValidateTable exercises Validate over valid presets and
// every invalid-field combination.
func TestFabricValidateTable(t *testing.T) {
	cases := []struct {
		name   string
		fabric *Fabric
		ok     bool
	}{
		{"qdr preset", QDRInfiniBand(), true},
		{"shared memory preset", SharedMemory(), true},
		{"zero latency ok", &Fabric{BytesPerSecond: 1e9}, true},
		{"negative latency", &Fabric{LatencySeconds: -1e-9, BytesPerSecond: 1e9}, false},
		{"zero bandwidth", &Fabric{LatencySeconds: 1e-6}, false},
		{"negative bandwidth", &Fabric{BytesPerSecond: -1}, false},
		{"negative overhead", &Fabric{BytesPerSecond: 1e9, OverheadSeconds: -1e-9}, false},
	}
	for _, c := range cases {
		err := c.fabric.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: invalid fabric accepted", c.name)
		}
	}
}

// TestSwitchMetrics checks that Send/Recv account messages, bytes and
// wire time per rank, and that sizes feed the histogram.
func TestSwitchMetrics(t *testing.T) {
	fab := QDRInfiniBand()
	sw, err := NewSwitch(fab, 2)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sw.SetMetrics(reg)

	mustSend(t, sw, 0, 1, 0, "a", 1000, 0)
	mustSend(t, sw, 0, 1, 1, "b", 3000, 0.5)
	mustRecv(t, sw, 1, 0, 0)
	mustRecv(t, sw, 1, 0, 1)

	lbl := []telemetry.Label{telemetry.Li("rank", 0), telemetry.L("fabric", fab.Name)}
	if got := reg.Counter("simnet_sent_messages_total", lbl...).Value(); got != 2 {
		t.Errorf("sent messages = %g", got)
	}
	if got := reg.Counter("simnet_sent_bytes_total", lbl...).Value(); got != 4000 {
		t.Errorf("sent bytes = %g", got)
	}
	wantWire := fab.TransferSeconds(1000) + fab.TransferSeconds(3000)
	if got := reg.Counter("simnet_wire_seconds_total", lbl...).Value(); math.Abs(got-wantWire) > 1e-12 {
		t.Errorf("wire seconds = %g, want %g", got, wantWire)
	}
	rlbl := telemetry.Li("rank", 1)
	if got := reg.Counter("simnet_recv_messages_total", rlbl).Value(); got != 2 {
		t.Errorf("recv messages = %g", got)
	}
	if got := reg.Counter("simnet_recv_bytes_total", rlbl).Value(); got != 4000 {
		t.Errorf("recv bytes = %g", got)
	}
	h := reg.Histogram("simnet_message_bytes", nil, telemetry.L("fabric", fab.Name))
	if h.Count() != 2 || h.Sum() != 4000 {
		t.Errorf("histogram count %d sum %g", h.Count(), h.Sum())
	}
}

// TestSwitchMetricsTopology checks that intra-node messages are
// labelled with the intra fabric's name.
func TestSwitchMetricsTopology(t *testing.T) {
	sw, err := NewSwitch(QDRInfiniBand(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.SetTopology(2, SharedMemory()); err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	sw.SetMetrics(reg)
	mustSend(t, sw, 0, 1, 0, nil, 100, 0) // same node
	mustSend(t, sw, 0, 2, 0, nil, 100, 0) // crosses nodes
	intra := telemetry.L("fabric", SharedMemory().Name)
	inter := telemetry.L("fabric", QDRInfiniBand().Name)
	if got := reg.Counter("simnet_sent_messages_total", telemetry.Li("rank", 0), intra).Value(); got != 1 {
		t.Errorf("intra-node messages = %g", got)
	}
	if got := reg.Counter("simnet_sent_messages_total", telemetry.Li("rank", 0), inter).Value(); got != 1 {
		t.Errorf("inter-node messages = %g", got)
	}
}
