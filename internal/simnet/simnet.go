// Package simnet provides the virtual-time network fabric that the
// MPI-like layer (internal/mpi) runs on. Real data moves between rank
// goroutines through channels — so distributed results are bit-
// comparable to the serial reference — while every message carries a
// virtual timestamp computed from a latency/bandwidth model of the
// cluster interconnect (QDR InfiniBand on the NERSC Dirac cluster).
//
// The model is deliberately simple (LogGP-flavoured): a message
// injected at time t with b payload bytes arrives at
// t + Latency + b/BytesPerSecond. Injection serialization at the
// sender's NIC is the caller's responsibility (internal/mpi charges
// consecutive sends sequentially), which keeps the fabric itself
// stateless and the simulation deterministic.
package simnet

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"pjds/internal/flight"
	"pjds/internal/telemetry"
)

// Fabric models the cluster interconnect.
type Fabric struct {
	Name string
	// LatencySeconds is the end-to-end small-message latency.
	LatencySeconds float64
	// BytesPerSecond is the per-link unidirectional bandwidth.
	BytesPerSecond float64
	// OverheadSeconds is the host CPU cost of posting one send or
	// receive (the LogGP "o" parameter).
	OverheadSeconds float64
	// AsyncProgress selects whether nonblocking operations make
	// progress while the host computes. Most MPI libraries of the
	// paper's era did NOT progress point-to-point traffic
	// asynchronously (§III-A), which is why the paper's "naive
	// overlap" variant gains nothing; a dedicated communication
	// thread (task mode) is needed for real overlap. See the
	// DESIGN.md "MPIProgress" ablation.
	AsyncProgress bool
}

// QDRInfiniBand returns a fabric resembling the Dirac cluster's QDR
// InfiniBand: ~1.5 µs latency, ~3.2 GB/s effective per-direction
// bandwidth, no asynchronous progress.
func QDRInfiniBand() *Fabric {
	return &Fabric{
		Name:            "QDR InfiniBand",
		LatencySeconds:  1.5e-6,
		BytesPerSecond:  3.2e9,
		OverheadSeconds: 0.5e-6,
	}
}

// Validate reports configuration errors.
func (f *Fabric) Validate() error {
	if f.LatencySeconds < 0 {
		return fmt.Errorf("simnet: %s: negative latency", f.Name)
	}
	if f.BytesPerSecond <= 0 {
		return fmt.Errorf("simnet: %s: non-positive bandwidth", f.Name)
	}
	if f.OverheadSeconds < 0 {
		return fmt.Errorf("simnet: %s: negative overhead", f.Name)
	}
	return nil
}

// TransferSeconds returns the wire time of a b-byte message, excluding
// queueing at the sender.
func (f *Fabric) TransferSeconds(b int64) float64 {
	if b < 0 {
		b = 0
	}
	return f.LatencySeconds + float64(b)/f.BytesPerSecond
}

// Message is one point-to-point payload in flight.
type Message struct {
	Src, Dst int
	Tag      int
	// Payload is the transported data; receivers type-assert it.
	Payload any
	// Bytes is the modelled wire size (may differ from the in-memory
	// size of Payload, e.g. for SP data carried in float64 slices).
	Bytes int64
	// SentAt is the virtual time the message entered the wire.
	SentAt float64
	// ArrivesAt is SentAt + wire time (plus any injected delay).
	ArrivesAt float64
	// Seq is the per-link sequence number assigned at injection; it
	// identifies duplicate copies and keys deterministic fault plans.
	Seq int64
	// DropAttempts is the number of transmission attempts an injected
	// fault lost before this delivery; the reliable-transport layer in
	// internal/mpi charges one timeout+backoff per lost attempt.
	DropAttempts int
	// Dup marks an injected spurious duplicate copy.
	Dup bool
}

// WireSeconds returns the message's modelled time on the wire
// (serialization plus latency), the interval overlap analysis measures
// against concurrent kernel execution.
func (m Message) WireSeconds() float64 { return m.ArrivesAt - m.SentAt }

// Switch is the per-run message exchange: a matrix of unbounded
// mailboxes, one per (src, dst) pair, with tag matching at the
// receiver. It is safe for concurrent use by the rank goroutines.
type Switch struct {
	fabric *Fabric
	n      int
	boxes  []*mailbox // index src*n + dst
	// Topology (optional): ranks in the same node communicate over the
	// intra-node fabric instead of the interconnect.
	ranksPerNode int
	intra        *Fabric
	// metrics (optional) receives wire-traffic telemetry; set before
	// the rank goroutines start.
	metrics *telemetry.Registry
	// faults (optional) decides the fate of every injected message; set
	// before the rank goroutines start.
	faults Injector
	// seq assigns per-link sequence numbers (index src*n + dst).
	seq []atomic.Int64
	// failure state: failedAt[r] >= 0 once rank r is marked dead.
	failMu   sync.Mutex
	failedAt []float64
}

// SetMetrics attaches a telemetry registry to the exchange. Every
// injected message is counted per sending rank and fabric, every
// delivery per receiving rank, and payload sizes feed a histogram.
// Must be called before concurrent use of the switch.
func (s *Switch) SetMetrics(reg *telemetry.Registry) {
	s.metrics = reg
	if reg != nil {
		reg.Help("simnet_sent_messages_total", "messages injected into the wire")
		reg.Help("simnet_sent_bytes_total", "modelled payload bytes injected")
		reg.Help("simnet_wire_seconds_total", "latency+transfer time accumulated over messages")
		reg.Help("simnet_recv_messages_total", "messages delivered to receivers")
		reg.Help("simnet_recv_bytes_total", "modelled payload bytes delivered")
		reg.Help("simnet_message_bytes", "distribution of modelled message sizes")
	}
}

// SetTopology declares that consecutive groups of ranksPerNode ranks
// share a physical node whose internal transfers (host shared memory /
// PCIe peer copies) use the given fabric. The paper's cluster has one
// GPU per node; multi-GPU nodes are the natural extension of its
// task-mode design ("or more if there are multiple GPGPUs in a node").
func (s *Switch) SetTopology(ranksPerNode int, intra *Fabric) error {
	if ranksPerNode < 1 {
		return fmt.Errorf("simnet: %d ranks per node", ranksPerNode)
	}
	if intra != nil {
		if err := intra.Validate(); err != nil {
			return err
		}
	}
	s.ranksPerNode = ranksPerNode
	s.intra = intra
	return nil
}

// FabricFor returns the fabric used between two ranks under the
// current topology.
func (s *Switch) FabricFor(src, dst int) *Fabric {
	if s.intra != nil && s.ranksPerNode > 1 && src/s.ranksPerNode == dst/s.ranksPerNode {
		return s.intra
	}
	return s.fabric
}

// SharedMemory returns an intra-node fabric resembling host
// shared-memory MPI transfers: sub-microsecond latency, ~6 GB/s.
func SharedMemory() *Fabric {
	return &Fabric{
		Name:            "intra-node shared memory",
		LatencySeconds:  0.4e-6,
		BytesPerSecond:  6e9,
		OverheadSeconds: 0.3e-6,
	}
}

// NewSwitch builds the exchange for n ranks on the given fabric.
func NewSwitch(fabric *Fabric, n int) (*Switch, error) {
	if err := fabric.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("simnet: %d ranks", n)
	}
	s := &Switch{
		fabric:   fabric,
		n:        n,
		boxes:    make([]*mailbox, n*n),
		seq:      make([]atomic.Int64, n*n),
		failedAt: make([]float64, n),
	}
	for i := range s.boxes {
		s.boxes[i] = newMailbox()
	}
	for i := range s.failedAt {
		s.failedAt[i] = -1
	}
	return s, nil
}

// SetFaults attaches a fault injector consulted for every message
// entering the wire. Must be called before concurrent use.
func (s *Switch) SetFaults(inj Injector) { s.faults = inj }

// MarkFailed declares rank r dead at virtual time at: receivers blocked
// on (or later blocking on) its mailboxes are released with a
// PeerFailedError once no matching message is pending. Marking the same
// rank twice keeps the first death time.
func (s *Switch) MarkFailed(r int, at float64) {
	if r < 0 || r >= s.n {
		return
	}
	s.failMu.Lock()
	if s.failedAt[r] < 0 {
		s.failedAt[r] = at
	}
	s.failMu.Unlock()
	for dst := 0; dst < s.n; dst++ {
		s.boxes[r*s.n+dst].markFailed(at)
	}
	if reg := s.metrics; reg != nil {
		reg.Help("simnet_rank_failures_total", "ranks marked dead on the fabric")
		reg.Counter("simnet_rank_failures_total", telemetry.Li("rank", r)).Inc()
	}
}

// FailedAt returns the virtual death time of rank r and whether it has
// been marked failed.
func (s *Switch) FailedAt(r int) (float64, bool) {
	s.failMu.Lock()
	defer s.failMu.Unlock()
	if r < 0 || r >= s.n || s.failedAt[r] < 0 {
		return 0, false
	}
	return s.failedAt[r], true
}

// Ranks returns the number of ranks.
func (s *Switch) Ranks() int { return s.n }

// Fabric returns the interconnect model.
func (s *Switch) Fabric() *Fabric { return s.fabric }

// Send injects a message with the given payload and modelled size at
// virtual time sentAt, returning its arrival time at dst. An attached
// fault injector may delay the message, degrade the link, record lost
// transmission attempts on it, or enqueue a spurious duplicate copy.
func (s *Switch) Send(src, dst, tag int, payload any, bytes int64, sentAt float64) (float64, error) {
	if src < 0 || src >= s.n || dst < 0 || dst >= s.n {
		return 0, &RangeError{Op: "send", Src: src, Dst: dst, Ranks: s.n}
	}
	fab := s.FabricFor(src, dst)
	link := src*s.n + dst
	seq := s.seq[link].Add(1) - 1
	var fault SendFault
	if s.faults != nil {
		fault = s.faults.OnSend(src, dst, tag, bytes, seq)
	}
	transfer := fab.TransferSeconds(bytes)
	if fault.BandwidthFactor > 1 {
		// Degraded link: only the serialization part stretches, the
		// latency term is unchanged.
		transfer = fab.LatencySeconds + (transfer-fab.LatencySeconds)*fault.BandwidthFactor
	}
	m := Message{
		Src: src, Dst: dst, Tag: tag,
		Payload: payload, Bytes: bytes,
		SentAt:       sentAt,
		ArrivesAt:    sentAt + transfer + fault.ExtraDelaySeconds,
		Seq:          seq,
		DropAttempts: fault.DropAttempts,
	}
	if reg := s.metrics; reg != nil {
		lbl := []telemetry.Label{telemetry.Li("rank", src), telemetry.L("fabric", fab.Name)}
		reg.Counter("simnet_sent_messages_total", lbl...).Inc()
		reg.Counter("simnet_sent_bytes_total", lbl...).Add(float64(m.Bytes))
		reg.Counter("simnet_wire_seconds_total", lbl...).Add(m.ArrivesAt - m.SentAt)
		reg.Histogram("simnet_message_bytes", nil, telemetry.L("fabric", fab.Name)).Observe(float64(m.Bytes))
		if !fault.IsZero() {
			reg.Help("simnet_faults_injected_total", "message-level faults injected into the wire")
			flbl := []telemetry.Label{telemetry.Li("rank", src)}
			if fault.DropAttempts > 0 {
				reg.Counter("simnet_faults_injected_total", append(flbl, telemetry.L("kind", "drop"))...).Add(float64(fault.DropAttempts))
			}
			if fault.ExtraDelaySeconds > 0 {
				reg.Counter("simnet_faults_injected_total", append(flbl, telemetry.L("kind", "delay"))...).Inc()
			}
			if fault.Duplicate {
				reg.Counter("simnet_faults_injected_total", append(flbl, telemetry.L("kind", "duplicate"))...).Inc()
			}
			if fault.BandwidthFactor > 1 {
				reg.Counter("simnet_faults_injected_total", append(flbl, telemetry.L("kind", "degrade"))...).Inc()
			}
		}
	}
	if !fault.IsZero() {
		if fault.DropAttempts > 0 {
			flight.Record(flight.Warn, "simnet.fault.drop", src, sentAt, "transmission attempts lost on the wire", float64(fault.DropAttempts))
		}
		if fault.ExtraDelaySeconds > 0 {
			flight.Record(flight.Warn, "simnet.fault.delay", src, sentAt, "message delayed on the wire", fault.ExtraDelaySeconds)
		}
		if fault.Duplicate {
			flight.Record(flight.Warn, "simnet.fault.duplicate", src, sentAt, "spurious duplicate injected", 1)
		}
		if fault.BandwidthFactor > 1 {
			flight.Record(flight.Warn, "simnet.fault.degrade", src, sentAt, "link bandwidth degraded", fault.BandwidthFactor)
		}
	}
	s.boxes[link].put(m)
	if fault.Duplicate {
		dup := m
		dup.Dup = true
		dup.ArrivesAt += fab.LatencySeconds
		s.boxes[link].put(dup)
	}
	return m.ArrivesAt, nil
}

// Recv blocks (in host time) until a message with the given tag from
// src is available and returns it. Messages between a pair are matched
// in tag order of arrival, as MPI guarantees per-tag ordering.
// Spurious duplicate copies are discarded (and counted) here; when src
// has been marked failed and no matching message is pending, Recv
// returns a PeerFailedError instead of blocking forever.
func (s *Switch) Recv(dst, src, tag int) (Message, error) {
	if src < 0 || src >= s.n || dst < 0 || dst >= s.n {
		return Message{}, &RangeError{Op: "recv", Src: src, Dst: dst, Ranks: s.n}
	}
	m, dups, err := s.boxes[src*s.n+dst].get(tag)
	if reg := s.metrics; reg != nil {
		if dups > 0 {
			reg.Help("simnet_duplicates_dropped_total", "spurious duplicate deliveries discarded at the receiver")
			reg.Counter("simnet_duplicates_dropped_total", telemetry.Li("rank", dst)).Add(float64(dups))
		}
		if err == nil {
			lbl := []telemetry.Label{telemetry.Li("rank", dst)}
			reg.Counter("simnet_recv_messages_total", lbl...).Inc()
			reg.Counter("simnet_recv_bytes_total", lbl...).Add(float64(m.Bytes))
		}
	}
	if err != nil {
		var pf *PeerFailedError
		if errors.As(err, &pf) {
			pf.Rank = src
		}
		return Message{}, err
	}
	return m, nil
}
