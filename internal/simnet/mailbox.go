package simnet

import "sync"

// mailbox is an unbounded, tag-matching message queue between one
// (src, dst) rank pair. put never blocks; get blocks until a message
// with the requested tag exists or the source rank is marked failed.
// Within one tag, messages are delivered in the order they were put
// (MPI's non-overtaking rule). Injected duplicates are dropped at
// delivery time: every message carries a per-link sequence number, and
// a copy whose sequence was already delivered never reaches the
// receiver.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Message
	// srcFailed is latched by Switch.MarkFailed; a get that finds no
	// matching message then returns the failure instead of blocking.
	srcFailed   bool
	srcFailedAt float64
	// delivered records the sequence numbers handed to the receiver so
	// spurious duplicate copies can be recognized and discarded.
	delivered   map[int64]bool
	dupsDropped int
}

func newMailbox() *mailbox {
	b := &mailbox{delivered: map[int64]bool{}}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m Message) {
	b.mu.Lock()
	b.pending = append(b.pending, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

// markFailed latches the source rank's death and wakes all blocked
// receivers.
func (b *mailbox) markFailed(at float64) {
	b.mu.Lock()
	if !b.srcFailed {
		b.srcFailed = true
		b.srcFailedAt = at
	}
	b.mu.Unlock()
	b.cond.Broadcast()
}

// get returns the next message with the given tag, or a PeerFailedError
// when the source rank died and no matching message is pending. The
// number of duplicate copies discarded while scanning is returned for
// telemetry.
func (b *mailbox) get(tag int) (Message, int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	dups := 0
	for {
		for i := 0; i < len(b.pending); i++ {
			m := b.pending[i]
			if m.Dup && b.delivered[m.Seq] {
				// A spurious duplicate of an already-delivered message:
				// discard and keep scanning.
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				b.dupsDropped++
				dups++
				i--
				continue
			}
			if m.Tag == tag {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				b.delivered[m.Seq] = true
				return m, dups, nil
			}
		}
		if b.srcFailed {
			return Message{}, dups, &PeerFailedError{FailedAt: b.srcFailedAt}
		}
		b.cond.Wait()
	}
}
