package simnet

import "sync"

// mailbox is an unbounded, tag-matching message queue between one
// (src, dst) rank pair. put never blocks; get blocks until a message
// with the requested tag exists. Within one tag, messages are
// delivered in the order they were put (MPI's non-overtaking rule).
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []Message
}

func newMailbox() *mailbox {
	b := &mailbox{}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *mailbox) put(m Message) {
	b.mu.Lock()
	b.pending = append(b.pending, m)
	b.mu.Unlock()
	b.cond.Broadcast()
}

func (b *mailbox) get(tag int) Message {
	b.mu.Lock()
	defer b.mu.Unlock()
	for {
		for i, m := range b.pending {
			if m.Tag == tag {
				b.pending = append(b.pending[:i], b.pending[i+1:]...)
				return m
			}
		}
		b.cond.Wait()
	}
}
