package simnet

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestFabricValidateAndTransfer(t *testing.T) {
	f := QDRInfiniBand()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// One bandwidth-worth of bytes ≈ 1 s + latency.
	got := f.TransferSeconds(int64(f.BytesPerSecond))
	if math.Abs(got-(1+f.LatencySeconds)) > 1e-9 {
		t.Errorf("transfer = %g", got)
	}
	if f.TransferSeconds(-1) != f.LatencySeconds {
		t.Error("negative size should cost latency only")
	}
	for _, bad := range []*Fabric{
		{LatencySeconds: -1, BytesPerSecond: 1},
		{LatencySeconds: 0, BytesPerSecond: 0},
		{LatencySeconds: 0, BytesPerSecond: 1, OverheadSeconds: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid fabric accepted: %+v", bad)
		}
	}
}

func TestNewSwitchErrors(t *testing.T) {
	if _, err := NewSwitch(&Fabric{BytesPerSecond: 0}, 2); err == nil {
		t.Error("bad fabric accepted")
	}
	if _, err := NewSwitch(QDRInfiniBand(), 0); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestSendRecvTiming(t *testing.T) {
	sw, err := NewSwitch(QDRInfiniBand(), 2)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := sw.Send(0, 1, 7, []float64{1, 2}, 1600, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 + sw.Fabric().TransferSeconds(1600)
	if math.Abs(arr-want) > 1e-12 {
		t.Errorf("arrival = %g, want %g", arr, want)
	}
	m, err := sw.Recv(1, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.ArrivesAt != arr || m.Src != 0 || m.Dst != 1 || m.Tag != 7 {
		t.Errorf("message = %+v", m)
	}
	if p := m.Payload.([]float64); p[1] != 2 {
		t.Error("payload corrupted")
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	sw, err := NewSwitch(QDRInfiniBand(), 2)
	if err != nil {
		t.Fatal(err)
	}
	mustSend(t, sw, 0, 1, 1, "a", 8, 0)
	mustSend(t, sw, 0, 1, 2, "b", 8, 0)
	mustSend(t, sw, 0, 1, 1, "c", 8, 0.5)
	if m := mustRecv(t, sw, 1, 0, 2); m.Payload.(string) != "b" {
		t.Error("tag 2 mismatch")
	}
	if m := mustRecv(t, sw, 1, 0, 1); m.Payload.(string) != "a" {
		t.Error("tag 1 order violated")
	}
	if m := mustRecv(t, sw, 1, 0, 1); m.Payload.(string) != "c" {
		t.Error("second tag-1 message")
	}
}

// mustSend/mustRecv keep the happy-path tests terse.
func mustSend(t *testing.T, sw *Switch, src, dst, tag int, payload any, bytes int64, at float64) float64 {
	t.Helper()
	arr, err := sw.Send(src, dst, tag, payload, bytes, at)
	if err != nil {
		t.Fatal(err)
	}
	return arr
}

func mustRecv(t *testing.T, sw *Switch, dst, src, tag int) Message {
	t.Helper()
	m, err := sw.Recv(dst, src, tag)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRecvBlocksUntilSend(t *testing.T) {
	sw, err := NewSwitch(QDRInfiniBand(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var got Message
	go func() {
		defer wg.Done()
		got = mustRecv(t, sw, 1, 0, 9)
	}()
	mustSend(t, sw, 0, 1, 9, 42, 4, 0)
	wg.Wait()
	if got.Payload.(int) != 42 {
		t.Error("blocked recv got wrong payload")
	}
}

// TestOutOfRangeTypedErrors pins the exact error text of the typed
// RangeError that replaced the out-of-range send/recv panics.
func TestOutOfRangeTypedErrors(t *testing.T) {
	sw, _ := NewSwitch(QDRInfiniBand(), 2)
	cases := []struct {
		call func() error
		want string
	}{
		{func() error { _, err := sw.Send(2, 0, 0, nil, 0, 0); return err }, "simnet: send 2→0 outside 2 ranks"},
		{func() error { _, err := sw.Send(0, -1, 0, nil, 0, 0); return err }, "simnet: send 0→-1 outside 2 ranks"},
		{func() error { _, err := sw.Recv(0, 5, 0); return err }, "simnet: recv 0←5 outside 2 ranks"},
	}
	for _, c := range cases {
		err := c.call()
		if err == nil {
			t.Fatalf("expected error %q, got nil", c.want)
		}
		var re *RangeError
		if !errors.As(err, &re) {
			t.Errorf("error %v is not a *RangeError", err)
		}
		if err.Error() != c.want {
			t.Errorf("error text = %q, want %q", err.Error(), c.want)
		}
	}
}

// TestMarkFailedReleasesBlockedRecv: a receiver blocked on a dead
// rank's mailbox is released with a typed PeerFailedError carrying the
// death time; pending messages sent before the crash still deliver.
func TestMarkFailedReleasesBlockedRecv(t *testing.T) {
	sw, _ := NewSwitch(QDRInfiniBand(), 2)
	mustSend(t, sw, 0, 1, 0, "before", 8, 0)
	sw.MarkFailed(0, 2.5)
	if m := mustRecv(t, sw, 1, 0, 0); m.Payload.(string) != "before" {
		t.Error("pre-crash message lost")
	}
	_, err := sw.Recv(1, 0, 1)
	var pf *PeerFailedError
	if !errors.As(err, &pf) {
		t.Fatalf("err = %v, want PeerFailedError", err)
	}
	if pf.Rank != 0 || pf.FailedAt != 2.5 {
		t.Errorf("PeerFailedError = %+v", pf)
	}
	if at, ok := sw.FailedAt(0); !ok || at != 2.5 {
		t.Errorf("FailedAt = %g, %v", at, ok)
	}
}

// dropNth drops (once) the nth message on a link and duplicates the
// one after it — a minimal deterministic injector for switch tests.
type dropNth struct {
	n     int64
	drops int
}

func (d *dropNth) OnSend(src, dst, tag int, bytes int64, seq int64) SendFault {
	switch seq {
	case d.n:
		return SendFault{DropAttempts: d.drops}
	case d.n + 1:
		return SendFault{Duplicate: true}
	}
	return SendFault{}
}

// TestInjectorDropAndDuplicate: drop attempts ride on the delivered
// message; a duplicate copy is discarded at the receiver.
func TestInjectorDropAndDuplicate(t *testing.T) {
	sw, _ := NewSwitch(QDRInfiniBand(), 2)
	sw.SetFaults(&dropNth{n: 1, drops: 2})
	mustSend(t, sw, 0, 1, 0, "a", 8, 0)
	mustSend(t, sw, 0, 1, 1, "b", 8, 0)
	mustSend(t, sw, 0, 1, 2, "c", 8, 0)
	if m := mustRecv(t, sw, 1, 0, 0); m.DropAttempts != 0 {
		t.Errorf("message a: %d drop attempts", m.DropAttempts)
	}
	if m := mustRecv(t, sw, 1, 0, 1); m.DropAttempts != 2 {
		t.Errorf("message b: %d drop attempts, want 2", m.DropAttempts)
	}
	if m := mustRecv(t, sw, 1, 0, 2); m.Dup {
		t.Error("original delivery marked as duplicate")
	}
	// The duplicate of "c" must not satisfy a later tag-2 receive: it
	// is discarded while scanning, and with rank 0 alive the receive
	// would block — assert via a failed-rank release instead.
	sw.MarkFailed(0, 1)
	if _, err := sw.Recv(1, 0, 2); err == nil {
		t.Error("duplicate satisfied a second receive")
	}
}
