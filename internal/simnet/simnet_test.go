package simnet

import (
	"math"
	"sync"
	"testing"
)

func TestFabricValidateAndTransfer(t *testing.T) {
	f := QDRInfiniBand()
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	// One bandwidth-worth of bytes ≈ 1 s + latency.
	got := f.TransferSeconds(int64(f.BytesPerSecond))
	if math.Abs(got-(1+f.LatencySeconds)) > 1e-9 {
		t.Errorf("transfer = %g", got)
	}
	if f.TransferSeconds(-1) != f.LatencySeconds {
		t.Error("negative size should cost latency only")
	}
	for _, bad := range []*Fabric{
		{LatencySeconds: -1, BytesPerSecond: 1},
		{LatencySeconds: 0, BytesPerSecond: 0},
		{LatencySeconds: 0, BytesPerSecond: 1, OverheadSeconds: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("invalid fabric accepted: %+v", bad)
		}
	}
}

func TestNewSwitchErrors(t *testing.T) {
	if _, err := NewSwitch(&Fabric{BytesPerSecond: 0}, 2); err == nil {
		t.Error("bad fabric accepted")
	}
	if _, err := NewSwitch(QDRInfiniBand(), 0); err == nil {
		t.Error("zero ranks accepted")
	}
}

func TestSendRecvTiming(t *testing.T) {
	sw, err := NewSwitch(QDRInfiniBand(), 2)
	if err != nil {
		t.Fatal(err)
	}
	arr := sw.Send(0, 1, 7, []float64{1, 2}, 1600, 1.0)
	want := 1.0 + sw.Fabric().TransferSeconds(1600)
	if math.Abs(arr-want) > 1e-12 {
		t.Errorf("arrival = %g, want %g", arr, want)
	}
	m := sw.Recv(1, 0, 7)
	if m.ArrivesAt != arr || m.Src != 0 || m.Dst != 1 || m.Tag != 7 {
		t.Errorf("message = %+v", m)
	}
	if p := m.Payload.([]float64); p[1] != 2 {
		t.Error("payload corrupted")
	}
}

func TestTagMatchingOutOfOrder(t *testing.T) {
	sw, err := NewSwitch(QDRInfiniBand(), 2)
	if err != nil {
		t.Fatal(err)
	}
	sw.Send(0, 1, 1, "a", 8, 0)
	sw.Send(0, 1, 2, "b", 8, 0)
	sw.Send(0, 1, 1, "c", 8, 0.5)
	if m := sw.Recv(1, 0, 2); m.Payload.(string) != "b" {
		t.Error("tag 2 mismatch")
	}
	if m := sw.Recv(1, 0, 1); m.Payload.(string) != "a" {
		t.Error("tag 1 order violated")
	}
	if m := sw.Recv(1, 0, 1); m.Payload.(string) != "c" {
		t.Error("second tag-1 message")
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	sw, err := NewSwitch(QDRInfiniBand(), 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	var got Message
	go func() {
		defer wg.Done()
		got = sw.Recv(1, 0, 9)
	}()
	sw.Send(0, 1, 9, 42, 4, 0)
	wg.Wait()
	if got.Payload.(int) != 42 {
		t.Error("blocked recv got wrong payload")
	}
}

func TestSendOutOfRangePanics(t *testing.T) {
	sw, _ := NewSwitch(QDRInfiniBand(), 2)
	for _, f := range []func(){
		func() { sw.Send(2, 0, 0, nil, 0, 0) },
		func() { sw.Send(0, -1, 0, nil, 0, 0) },
		func() { sw.Recv(0, 5, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
