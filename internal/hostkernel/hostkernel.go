// Package hostkernel is the high-performance CPU spMVM layer: the
// host execution path of the solver, the ECC-downgrade path of the
// device operators, and the CPU ranks of the distributed engine all
// route through it. The GPU numbers of the paper are
// simulator-modeled, but these kernels burn real cycles, so they get
// the same treatment a device kernel would: cache blocking, manual
// unrolling, nnz-balanced static partitioning, and a zero-alloc
// steady state.
//
// Three kernels implement the Kernel interface:
//
//   - naive: the sequential CRS reference (exactly matrix.CSR.MulVec),
//     kept for cross-checks;
//   - blocked: CRS with rows split into nnz-balanced contiguous
//     chunks (one per worker), a bounds-check-free two-row-lockstep
//     inner loop (4 or 8 operand streams wide), and optional cache
//     blocking that walks x in L2-sized column tiles;
//   - sell: a SELL-C-σ-style kernel over the SlicedELL layout
//     (Kreutzer et al., arXiv:1307.6209): rows are sorted by length in
//     windows of σ and processed C at a time, the chunk height playing
//     the role of the SIMD width;
//   - cmrs: the compressed multi-row storage kernel (Koza et al.,
//     arXiv:1203.2946): strips of consecutive rows share one
//     padding-free CSR-ordered element stream with per-element
//     row-in-strip routing, trading SELL's zero-padding for one
//     metadata byte per non-zero.
//
// Every kernel is bit-identical to the naive reference at any worker
// count: floating-point sums are accumulated per row in stored column
// order with a single accumulator, parallelism only ever assigns whole
// rows to workers, and Go never reassociates floating-point expressions.
package hostkernel

import (
	"fmt"
	"sync/atomic"

	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// Kernel is one host spMVM execution engine over a fixed matrix.
// MulVec computes y = A·x and MulVecAdd computes y += A·x (the
// accumulate variant the split local/non-local distributed kernels
// use). Both are bit-identical to the matrix.CSR reference kernels.
// Close releases the worker pool; kernels also carry a finalizer, so
// dropping the last reference without Close only delays the release
// to the next GC.
type Kernel interface {
	Name() string
	Rows() int
	Cols() int
	MulVec(y, x []float64) error
	MulVecAdd(y, x []float64) error
	Close()
}

// Kind names a host kernel implementation.
type Kind string

const (
	// KindNaive is the sequential CRS reference kernel.
	KindNaive Kind = "naive"
	// KindBlocked is the cache-blocked, unrolled CRS kernel.
	KindBlocked Kind = "blocked"
	// KindSELL is the SELL-C-σ-style chunked kernel.
	KindSELL Kind = "sell"
	// KindCMRS is the compressed multi-row storage kernel (Koza et
	// al., arXiv:1203.2946): strips of consecutive rows share one
	// padding-free CSR-ordered element stream, with a per-element
	// row-in-strip byte routing products to the right accumulator.
	KindCMRS Kind = "cmrs"
)

// ParseKind resolves a -host-kernel flag value.
func ParseKind(s string) (Kind, error) {
	switch Kind(s) {
	case KindNaive, KindBlocked, KindSELL, KindCMRS:
		return Kind(s), nil
	}
	return "", fmt.Errorf("hostkernel: unknown kind %q (want naive, blocked, sell, or cmrs)", s)
}

// Kinds lists all kernel kinds in deterministic report order.
func Kinds() []Kind { return []Kind{KindNaive, KindBlocked, KindSELL, KindCMRS} }

// defaultKind holds the process-wide kernel selection (the CLIs'
// -host-kernel flag). Empty means KindBlocked.
var defaultKind atomic.Value

// SetDefaultKind selects the kernel kind used by callers that do not
// choose one themselves (the solver host path, distmv verification).
func SetDefaultKind(k Kind) error {
	if _, err := ParseKind(string(k)); err != nil {
		return err
	}
	defaultKind.Store(k)
	return nil
}

// DefaultKind returns the process-wide kernel selection.
func DefaultKind() Kind {
	if k, ok := defaultKind.Load().(Kind); ok {
		return k
	}
	return KindBlocked
}

// DefaultTileCols is the recommended x-vector tile width of the
// blocked kernel in elements: 1<<15 doubles = 256 KiB, half a typical
// per-core L2, so a tile of x and the streaming row data coexist.
// Tiling is opt-in (Options.TileCols > 0): the per-row cursor walk
// costs ~2× on short-row matrices, so it only pays when x misses
// cache badly — measure before enabling (see DESIGN.md).
const DefaultTileCols = 1 << 15

// DefaultSigma is the SELL sorting window σ when the caller does not
// set one: local enough to keep the row permutation cache-friendly,
// wide enough to remove most padding.
const DefaultSigma = 256

// Options configure kernel construction. The zero value selects the
// process-default worker count, 4-wide unrolling, the default tile
// width and SELL geometry, and no telemetry.
type Options struct {
	// Workers is the number of row-partition workers; ≤ 0 selects
	// par.Default(). Workers == 1 runs inline with no pool goroutines.
	Workers int
	// Unroll is the inner-loop unroll width: 4 or 8 (0 = 4). For the
	// SELL kernel it is also the default chunk height C.
	Unroll int
	// TileCols is the blocked kernel's x-tile width in elements; ≤ 0
	// leaves column tiling off (the default — it only pays when x
	// badly misses cache; DefaultTileCols is the recommended width
	// when enabling it). Tiling is also disabled automatically when a
	// row's columns are unsorted, because only ascending columns keep
	// the tile-by-tile sum in stored-column order.
	TileCols int
	// C is the SELL chunk height (0 = Unroll). The CMRS kernel reuses
	// it as the strip height (0 = formats.DefaultStripHeight).
	C int
	// Sigma is the SELL sorting window σ (0 = DefaultSigma).
	Sigma int
	// Metrics, when non-nil, receives the host_kernel_* series
	// (gflops/GB/s gauges and bytes/applies counters, labelled by
	// kernel kind). Handles are resolved once at construction so the
	// steady state stays allocation-free.
	Metrics *telemetry.Registry
}

// unroll resolves the unroll width.
func (o Options) unroll() int {
	switch o.Unroll {
	case 0, 4:
		return 4
	case 8:
		return 8
	}
	return 4
}

// New builds a kernel of the given kind over m.
func New(kind Kind, m *matrix.CSR[float64], opt Options) (Kernel, error) {
	switch kind {
	case KindNaive:
		return NewNaive(m, opt), nil
	case KindBlocked:
		return NewBlockedCRS(m, opt), nil
	case KindSELL:
		return NewSELL(m, opt)
	case KindCMRS:
		return NewCMRSKernel(m, opt)
	}
	return nil, fmt.Errorf("hostkernel: unknown kind %q", kind)
}

// MulVec is the one-shot convenience: build the default-kind kernel,
// apply it once, release it. Callers applying the operator repeatedly
// should hold a Kernel instead.
func MulVec(m *matrix.CSR[float64], y, x []float64) error {
	k, err := New(DefaultKind(), m, Options{})
	if err != nil {
		return err
	}
	defer k.Close()
	return k.MulVec(y, x)
}

// Chunks returns workers+1 row boundaries splitting a CSR row-pointer
// array into contiguous chunks of roughly equal non-zero count — the
// static schedule every parallel host kernel shares. Degenerate
// inputs are well-defined: workers < 1 is clamped to 1, workers >
// rows yields trailing empty chunks, rows whose non-zeros dwarf the
// per-worker target (all nnz in one row) simply make their chunk
// heavy and later chunks empty, and empty tail rows land in the last
// chunk. Boundaries are non-decreasing, bounds[0] = 0 and
// bounds[workers] = rows always hold, so every row belongs to exactly
// one chunk and parallel results stay bit-identical to sequential.
func Chunks(rowPtr []int, workers int) []int {
	if workers < 1 {
		workers = 1
	}
	rows := len(rowPtr) - 1
	if rows < 0 {
		rows = 0
	}
	bounds := make([]int, workers+1)
	if rows == 0 {
		return bounds
	}
	total := rowPtr[rows] - rowPtr[0]
	row := 0
	for w := 1; w < workers; w++ {
		target := rowPtr[0] + total*w/workers
		for row < rows && rowPtr[row] < target {
			row++
		}
		bounds[w] = row
	}
	bounds[workers] = rows
	return bounds
}
