package hostkernel

import (
	"math"
	"testing"

	"pjds/internal/matrix"
)

// FuzzHostKernels drives the blocked and SELL kernels with
// fuzzer-shaped matrices and geometry (worker count, unroll width,
// tile width, chunk height, sorting window) and demands bit-identity
// with the naive CRS reference — the same cross-check discipline as
// the PR5 parallel-vs-sequential conversion fuzz.
func FuzzHostKernels(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(2), uint8(0), uint8(16), []byte{0x11, 0x22, 0x33})
	f.Add(uint8(1), uint8(1), uint8(7), uint8(1), uint8(0), []byte{})
	f.Add(uint8(64), uint8(3), uint8(4), uint8(9), uint8(3), []byte{0xff, 0x00, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, rows, cols, workers, geom, tile uint8, pattern []byte) {
		n := int(rows)%64 + 1
		c := int(cols)%64 + 1
		w := int(workers)%9 + 1
		unroll := 4
		if geom&1 != 0 {
			unroll = 8
		}
		chunkH := int(geom)%7 + 1    // SELL C in [1, 7] exercises the generic path too
		sigma := int(geom)%48 + 1    // SELL σ
		tileCols := int(tile)%32 - 1 // ≤ 0 leaves tiling off; small tiles split rows often
		coo := matrix.NewCOO[float64](n, c)
		for k, b := range pattern {
			if k >= 4*n {
				break
			}
			i := (k * 7 % n)
			j := int(b) % c
			coo.Add(i, j, float64(b)/16+0.25)
		}
		m := coo.ToCSR()
		x := make([]float64, c)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		ref := make([]float64, n)
		if err := m.MulVec(ref, x); err != nil {
			t.Fatal(err)
		}
		opt := Options{Workers: w, Unroll: unroll, TileCols: tileCols, C: chunkH, Sigma: sigma}
		for _, kind := range []Kind{KindBlocked, KindSELL} {
			k, err := New(kind, m, opt)
			if err != nil {
				t.Fatalf("%s construction failed on valid input: %v", kind, err)
			}
			y := make([]float64, n)
			if err := k.MulVec(y, x); err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("%s (w=%d unroll=%d tile=%d C=%d σ=%d): y[%d] = %v, reference %v",
						kind, w, unroll, tileCols, chunkH, sigma, i, y[i], ref[i])
				}
			}
			seed := append([]float64(nil), ref...)
			want := make([]float64, n)
			copy(want, seed)
			if err := m.MulVecAdd(want, x); err != nil {
				t.Fatal(err)
			}
			copy(y, seed)
			if err := k.MulVecAdd(y, x); err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s add: y[%d] = %v, reference %v", kind, i, y[i], want[i])
				}
			}
			k.Close()
		}
	})
}
