package hostkernel

import (
	"testing"

	"pjds/internal/core"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// benchMatrix is the shared benchmark workload: a banded matrix big
// enough for stable per-nnz timing, small enough to build in
// milliseconds. Telemetry is enabled so the benchmarks prove the
// metered steady state is allocation-free too.
func benchMatrix() *matrix.CSR[float64] {
	return matgen.Banded(20000, 12, 28, 300, 42)
}

// benchKernel times repeated MulVec applications of k over m and
// reports ns per non-zero next to the stock ns/op — the machine-size-
// independent number the bench.sh pr7 gate compares across kernels
// and checkouts.
func benchKernel(b *testing.B, m *matrix.CSR[float64], k Kernel) {
	b.Helper()
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + float64(i%7)/3
	}
	y := make([]float64, m.NRows)
	if err := k.MulVec(y, x); err != nil { // warm up, surface errors
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.MulVec(y, x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(m.Nnz()), "ns/nnz")
}

func BenchmarkHostNaive(b *testing.B) {
	m := benchMatrix()
	k := NewNaive(m, Options{Metrics: telemetry.NewRegistry()})
	defer k.Close()
	benchKernel(b, m, k)
}

func BenchmarkHostCRS(b *testing.B) {
	m := benchMatrix()
	for _, bc := range []struct {
		name string
		opt  Options
	}{
		{"unroll4", Options{Unroll: 4}},
		{"unroll8", Options{Unroll: 8}},
		{"tiled", Options{Unroll: 4, TileCols: 4096}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			bc.opt.Metrics = telemetry.NewRegistry()
			k := NewBlockedCRS(m, bc.opt)
			defer k.Close()
			benchKernel(b, m, k)
		})
	}
}

func BenchmarkHostSELL(b *testing.B) {
	m := benchMatrix()
	for _, bc := range []struct {
		name string
		opt  Options
	}{
		{"c4", Options{C: 4}},
		{"c8", Options{C: 8}},
	} {
		b.Run(bc.name, func(b *testing.B) {
			bc.opt.Metrics = telemetry.NewRegistry()
			k, err := NewSELL(m, bc.opt)
			if err != nil {
				b.Fatal(err)
			}
			defer k.Close()
			benchKernel(b, m, k)
		})
	}
}

func BenchmarkHostPJDS(b *testing.B) {
	m := benchMatrix()
	p, err := core.NewPJDS(m, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	k := NewPJDS(p, Options{Metrics: telemetry.NewRegistry()})
	defer k.Close()
	x := make([]float64, p.NCols)
	for i := range x {
		x[i] = 1 + float64(i%7)/3
	}
	y := make([]float64, p.N)
	if err := k.MulVec(y, x); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := k.MulVec(y, x); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(p.Nnz), "ns/nnz")
}

// BenchmarkHostCRSWorkers shows the pool dispatch cost across worker
// counts (speedup itself is unmeasurable on a 1-CPU container; the
// point is that dispatch stays cheap and allocation-free).
func BenchmarkHostCRSWorkers(b *testing.B) {
	m := benchMatrix()
	for _, w := range []int{1, 2, 4} {
		b.Run(benchName(w), func(b *testing.B) {
			k := NewBlockedCRS(m, Options{Workers: w, Metrics: telemetry.NewRegistry()})
			defer k.Close()
			benchKernel(b, m, k)
		})
	}
}

func benchName(w int) string {
	return "workers" + string(rune('0'+w))
}
