package hostkernel

import (
	"fmt"
	"runtime"

	"pjds/internal/core"
	"pjds/internal/matrix"
	"pjds/internal/par"
	"pjds/internal/profiles"
)

// PJDSKernel is the parallel, unrolled host kernel over a pJDS
// layout. It is the host execution engine of the solver's permuted
// operator (and therefore of the ECC-downgrade path): it computes in
// the pJDS-permuted basis exactly like core.PJDS.MulVecPermuted —
// same per-row stored-column summation order, so bit-identical — but
// with rows statically partitioned into nnz-balanced worker chunks
// and the jagged-diagonal loop unrolled 4-wide.
type PJDSKernel struct {
	p      *core.PJDS[float64]
	bounds []int
	pool   *par.Pool
	mt     *meter

	y, x  []float64
	add   bool
	runFn func(w int)
}

// NewPJDS builds the kernel over an existing pJDS matrix.
func NewPJDS(p *core.PJDS[float64], opt Options) *PJDSKernel {
	workers := par.Resolve(opt.Workers)
	if workers > p.N {
		workers = p.N
	}
	if workers < 1 {
		workers = 1
	}
	// RowLen prefix sums feed the shared nnz-balanced schedule (sorted
	// rows, so early chunks hold few long rows and late chunks many
	// short ones).
	prefix := make([]int, p.N+1)
	for i := 0; i < p.N; i++ {
		prefix[i+1] = prefix[i] + int(p.RowLen[i])
	}
	k := &PJDSKernel{
		p:      p,
		bounds: Chunks(prefix, workers),
		mt:     newMeter(opt.Metrics, "pjds", int64(p.Nnz), p.N, p.NCols),
	}
	k.runFn = k.run
	if workers > 1 {
		k.pool = par.NewPool(workers)
		k.pool.Label(profiles.Ctx(profiles.PhaseHost, "kernel", "pjds", "format", "pjds"))
		runtime.SetFinalizer(k, (*PJDSKernel).Close)
	}
	return k
}

// Name implements Kernel.
func (k *PJDSKernel) Name() string { return "pjds" }

// Rows implements Kernel.
func (k *PJDSKernel) Rows() int { return k.p.N }

// Cols implements Kernel.
func (k *PJDSKernel) Cols() int { return k.p.NCols }

// MulVec implements Kernel in the permuted basis: yp = Ap·xp, the
// parallel equivalent of core.PJDS.MulVecPermuted.
func (k *PJDSKernel) MulVec(yp, xp []float64) error { return k.apply(yp, xp, false) }

// MulVecAdd implements Kernel in the permuted basis: yp += Ap·xp.
func (k *PJDSKernel) MulVecAdd(yp, xp []float64) error { return k.apply(yp, xp, true) }

func (k *PJDSKernel) apply(yp, xp []float64, add bool) error {
	if len(xp) != k.p.NCols || len(yp) < k.p.N {
		return fmt.Errorf("hostkernel: pjds |x|=%d |y|=%d on %dx%d: %w", len(xp), len(yp), k.p.N, k.p.NCols, matrix.ErrShape)
	}
	t0 := k.mt.start()
	k.y, k.x, k.add = yp, xp, add
	if k.pool != nil {
		k.pool.Run(k.runFn)
	} else {
		k.run(0)
	}
	k.y, k.x = nil, nil
	k.mt.observe(t0)
	return nil
}

// run executes worker w's sorted-row chunk with the Listing-2 access
// pattern (val[col_start[j]+i]), 4 jagged diagonals per iteration.
func (k *PJDSKernel) run(w int) {
	lo, hi := k.bounds[w], k.bounds[w+1]
	p, x, y := k.p, k.x, k.y
	val, idx, cs := p.Val, p.ColIdx, p.ColStart
	for i := lo; i < hi; i++ {
		l := int(p.RowLen[i])
		var sum float64
		j := 0
		for ; j+4 <= l; j += 4 {
			o0 := int(cs[j]) + i
			o1 := int(cs[j+1]) + i
			o2 := int(cs[j+2]) + i
			o3 := int(cs[j+3]) + i
			sum += val[o0] * x[idx[o0]]
			sum += val[o1] * x[idx[o1]]
			sum += val[o2] * x[idx[o2]]
			sum += val[o3] * x[idx[o3]]
		}
		for ; j < l; j++ {
			off := int(cs[j]) + i
			sum += val[off] * x[idx[off]]
		}
		if k.add {
			y[i] += sum
		} else {
			y[i] = sum
		}
	}
}

// Close implements Kernel: releases the worker pool.
func (k *PJDSKernel) Close() {
	if k.pool != nil {
		runtime.SetFinalizer(k, nil)
		k.pool.Close()
	}
}
