package hostkernel

import (
	"fmt"
	"runtime"

	"pjds/internal/formats"
	"pjds/internal/matrix"
	"pjds/internal/par"
	"pjds/internal/profiles"
)

// SELL is the SELL-C-σ-style chunked host kernel (Kreutzer et al.,
// arXiv:1307.6209) over the repository's SlicedELL layout: rows are
// sorted by descending length inside windows of σ rows and stored in
// slices of C consecutive rows padded to the slice maximum. The
// kernel processes a slice's C rows together — the chunk height plays
// the role of the SIMD width on a wide-vector machine, so C lanes
// share one loop counter and one stream of column-major slice storage.
//
// Bit-identity with the naive reference holds because each lane keeps
// its own accumulator, a lane's entries appear in the row's stored
// column order, and the main loop only covers the slice's common
// prefix (min row length): the ragged remainders run per lane, so
// padding entries are never touched and cannot perturb the sum (an
// added 0·x would still flip a -0 sum to +0).
type SELL struct {
	s      *formats.SlicedELL[float64]
	bounds []int       // per-worker slice ranges, nnz-balanced
	acc    [][]float64 // per-worker lane accumulators for the generic-C lockstep
	pool   *par.Pool
	mt     *meter

	y, x  []float64
	add   bool
	runFn func(w int)
}

// NewSELL converts m into a SlicedELL with chunk height C
// (0 = the unroll width) and sorting window σ (0 = DefaultSigma) and
// builds the kernel over it.
func NewSELL(m *matrix.CSR[float64], opt Options) (*SELL, error) {
	c := opt.C
	if c == 0 {
		c = opt.unroll()
	}
	sigma := opt.Sigma
	if sigma == 0 {
		sigma = DefaultSigma
	}
	s, err := formats.NewSlicedELLWith(m, c, sigma, matrix.ConvertOptions{Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	workers := par.Resolve(opt.Workers)
	nSlices := len(s.SliceLen)
	if workers > nSlices {
		workers = nSlices
	}
	if workers < 1 {
		workers = 1
	}
	// nnz-balanced chunking at slice granularity: a prefix sum of true
	// per-slice non-zeros feeds the shared Chunks schedule.
	prefix := make([]int, nSlices+1)
	for sl := 0; sl < nSlices; sl++ {
		nnz := 0
		for lane := 0; lane < c; lane++ {
			nnz += int(s.RowLen[sl*c+lane])
		}
		prefix[sl+1] = prefix[sl] + nnz
	}
	k := &SELL{
		s:      s,
		bounds: Chunks(prefix, workers),
		acc:    make([][]float64, workers),
		mt:     newMeter(opt.Metrics, string(KindSELL), int64(s.NnzV), s.N, s.NCols),
	}
	for w := range k.acc {
		k.acc[w] = make([]float64, c)
	}
	k.runFn = k.run
	if workers > 1 {
		k.pool = par.NewPool(workers)
		k.pool.Label(profiles.Ctx(profiles.PhaseHost, "kernel", string(KindSELL), "format", "sell-c-sigma"))
		runtime.SetFinalizer(k, (*SELL).Close)
	}
	return k, nil
}

// Layout exposes the underlying SlicedELL (reporting: padding
// overhead, footprint).
func (k *SELL) Layout() *formats.SlicedELL[float64] { return k.s }

// Name implements Kernel.
func (k *SELL) Name() string { return string(KindSELL) }

// Rows implements Kernel.
func (k *SELL) Rows() int { return k.s.N }

// Cols implements Kernel.
func (k *SELL) Cols() int { return k.s.NCols }

// MulVec implements Kernel: y = A·x in the original basis (each
// stored row i writes y[Perm[i]], so no separate scatter pass runs).
func (k *SELL) MulVec(y, x []float64) error { return k.apply(y, x, false) }

// MulVecAdd implements Kernel.
func (k *SELL) MulVecAdd(y, x []float64) error { return k.apply(y, x, true) }

func (k *SELL) apply(y, x []float64, add bool) error {
	if len(x) != k.s.NCols || len(y) != k.s.N {
		return fmt.Errorf("hostkernel: sell |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), k.s.N, k.s.NCols, matrix.ErrShape)
	}
	t0 := k.mt.start()
	k.y, k.x, k.add = y, x, add
	if k.pool != nil {
		k.pool.Run(k.runFn)
	} else {
		k.run(0)
	}
	k.y, k.x = nil, nil
	k.mt.observe(t0)
	return nil
}

// run executes worker w's slice range. Slices are units, so every
// stored row — and through the bijective Perm every output element —
// is written by exactly one worker.
func (k *SELL) run(w int) {
	lo, hi := k.bounds[w], k.bounds[w+1]
	switch k.s.C {
	case 4:
		for sl := lo; sl < hi; sl++ {
			k.slice4(sl)
		}
	case 8:
		for sl := lo; sl < hi; sl++ {
			k.slice8(sl)
		}
	default:
		acc := k.acc[w]
		for sl := lo; sl < hi; sl++ {
			k.sliceLockstep(sl, acc)
		}
	}
}

// laneTail finishes one lane's ragged remainder [from, to).
func laneTail(sum float64, v []float64, c []int32, x []float64, from, to, stride, lane int) float64 {
	for j := from; j < to; j++ {
		at := j*stride + lane
		sum += v[at] * x[c[at]]
	}
	return sum
}

// slice4 processes one C=4 slice: four lane accumulators advance in
// lockstep over the common prefix, then each lane finishes its ragged
// tail alone.
func (k *SELL) slice4(sl int) {
	s, x := k.s, k.x
	r0 := sl * 4
	l0, l1, l2, l3 := int(s.RowLen[r0]), int(s.RowLen[r0+1]), int(s.RowLen[r0+2]), int(s.RowLen[r0+3])
	min := l0
	if l1 < min {
		min = l1
	}
	if l2 < min {
		min = l2
	}
	if l3 < min {
		min = l3
	}
	v := s.Val[s.SliceStart[sl]:s.SliceStart[sl+1]]
	c := s.ColIdx[s.SliceStart[sl]:s.SliceStart[sl+1]]
	var s0, s1, s2, s3 float64
	off := 0
	for j := 0; j < min; j++ {
		s0 += v[off] * x[c[off]]
		s1 += v[off+1] * x[c[off+1]]
		s2 += v[off+2] * x[c[off+2]]
		s3 += v[off+3] * x[c[off+3]]
		off += 4
	}
	s0 = laneTail(s0, v, c, x, min, l0, 4, 0)
	s1 = laneTail(s1, v, c, x, min, l1, 4, 1)
	s2 = laneTail(s2, v, c, x, min, l2, 4, 2)
	s3 = laneTail(s3, v, c, x, min, l3, 4, 3)
	k.write(r0, s0, s1, s2, s3)
}

// slice8 is the C=8 variant of slice4.
func (k *SELL) slice8(sl int) {
	s, x := k.s, k.x
	r0 := sl * 8
	var l [8]int
	min := int(^uint(0) >> 1)
	for lane := 0; lane < 8; lane++ {
		l[lane] = int(s.RowLen[r0+lane])
		if l[lane] < min {
			min = l[lane]
		}
	}
	v := s.Val[s.SliceStart[sl]:s.SliceStart[sl+1]]
	c := s.ColIdx[s.SliceStart[sl]:s.SliceStart[sl+1]]
	var acc [8]float64
	off := 0
	for j := 0; j < min; j++ {
		acc[0] += v[off] * x[c[off]]
		acc[1] += v[off+1] * x[c[off+1]]
		acc[2] += v[off+2] * x[c[off+2]]
		acc[3] += v[off+3] * x[c[off+3]]
		acc[4] += v[off+4] * x[c[off+4]]
		acc[5] += v[off+5] * x[c[off+5]]
		acc[6] += v[off+6] * x[c[off+6]]
		acc[7] += v[off+7] * x[c[off+7]]
		off += 8
	}
	for lane := 0; lane < 8; lane++ {
		acc[lane] = laneTail(acc[lane], v, c, x, min, l[lane], 8, lane)
	}
	y, p := k.y, k.s.Perm
	for lane := 0; lane < 8; lane++ {
		i := r0 + lane
		if i >= k.s.N {
			break
		}
		if k.add {
			y[p[i]] += acc[lane]
		} else {
			y[p[i]] = acc[lane]
		}
	}
}

// sliceLockstep is the arbitrary-C analogue of slice4/slice8: the
// worker's preallocated lane accumulators advance together over the
// slice's common prefix (one shared loop counter, unit-stride walk of
// the column-major storage), then each lane finishes its ragged tail
// alone. Per-lane accumulation order is identical to the row-by-row
// walk, so results stay bit-identical at every C.
func (k *SELL) sliceLockstep(sl int, acc []float64) {
	s, x := k.s, k.x
	C := s.C
	r0 := sl * C
	min := int(s.RowLen[r0])
	for lane := 1; lane < C; lane++ {
		if l := int(s.RowLen[r0+lane]); l < min {
			min = l
		}
	}
	v := s.Val[s.SliceStart[sl]:s.SliceStart[sl+1]]
	c := s.ColIdx[s.SliceStart[sl]:s.SliceStart[sl+1]]
	acc = acc[:C]
	for lane := range acc {
		acc[lane] = 0
	}
	off := 0
	for j := 0; j < min; j++ {
		for lane := 0; lane < C; lane++ {
			acc[lane] += v[off+lane] * x[c[off+lane]]
		}
		off += C
	}
	y, p := k.y, s.Perm
	for lane := 0; lane < C; lane++ {
		i := r0 + lane
		if i >= s.N {
			break
		}
		sum := laneTail(acc[lane], v, c, x, min, int(s.RowLen[i]), C, lane)
		if k.add {
			y[p[i]] += sum
		} else {
			y[p[i]] = sum
		}
	}
}

// write stores four lane results, skipping phantom lanes past the
// last real row.
func (k *SELL) write(r0 int, s0, s1, s2, s3 float64) {
	y, p, n := k.y, k.s.Perm, k.s.N
	sums := [4]float64{s0, s1, s2, s3}
	for lane := 0; lane < 4; lane++ {
		i := r0 + lane
		if i >= n {
			break
		}
		if k.add {
			y[p[i]] += sums[lane]
		} else {
			y[p[i]] = sums[lane]
		}
	}
}

// Close implements Kernel: releases the worker pool.
func (k *SELL) Close() {
	if k.pool != nil {
		runtime.SetFinalizer(k, nil)
		k.pool.Close()
	}
}
