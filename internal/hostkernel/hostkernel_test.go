package hostkernel

import (
	"math"
	"testing"

	"pjds/internal/core"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// testMatrices returns a spread of shapes: banded, power-law (the
// jagged row-length distribution pJDS targets), a matrix with empty
// rows at the tail, and tiny degenerate shapes.
func testMatrices(t testing.TB) map[string]*matrix.CSR[float64] {
	t.Helper()
	ms := map[string]*matrix.CSR[float64]{
		"banded":   matgen.Banded(500, 3, 24, 40, 7),
		"powerlaw": matgen.PowerLaw(400, 2, 60, 0.6, 11),
		"random":   matgen.Random(300, 2, 9, 13),
	}
	// Empty rows at the tail plus one dominant row, rectangular.
	coo := matrix.NewCOO[float64](64, 80)
	for j := 0; j < 80; j++ {
		coo.Add(5, j, float64(j)+0.25)
	}
	coo.Add(0, 0, 1)
	coo.Add(17, 3, -2.5)
	ms["spike"] = coo.ToCSR()
	ms["empty"] = matrix.NewCOO[float64](10, 10).ToCSR()
	return ms
}

func testX(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(0.1*float64(i)) - 0.5
	}
	return x
}

// TestKernelsBitIdenticalToNaive is the core contract: every kernel
// kind, at workers 1, 2, 4 and 8, with both unroll widths, both
// MulVec and MulVecAdd, must reproduce the matrix.CSR reference
// bit for bit.
func TestKernelsBitIdenticalToNaive(t *testing.T) {
	for name, m := range testMatrices(t) {
		x := testX(m.NCols)
		ref := make([]float64, m.NRows)
		if err := m.MulVec(ref, x); err != nil {
			t.Fatal(err)
		}
		refAdd := make([]float64, m.NRows)
		for i := range refAdd {
			refAdd[i] = float64(i%5) - 2
		}
		seed := append([]float64(nil), refAdd...)
		if err := m.MulVecAdd(refAdd, x); err != nil {
			t.Fatal(err)
		}
		for _, kind := range Kinds() {
			for _, workers := range []int{1, 2, 4, 8} {
				for _, unroll := range []int{4, 8} {
					opt := Options{Workers: workers, Unroll: unroll, TileCols: 100}
					k, err := New(kind, m, opt)
					if err != nil {
						t.Fatalf("%s/%s: %v", name, kind, err)
					}
					y := make([]float64, m.NRows)
					if err := k.MulVec(y, x); err != nil {
						t.Fatalf("%s/%s workers=%d: %v", name, kind, workers, err)
					}
					for i := range y {
						if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
							t.Fatalf("%s/%s workers=%d unroll=%d: y[%d] = %v, reference %v",
								name, kind, workers, unroll, i, y[i], ref[i])
						}
					}
					copy(y, seed)
					if err := k.MulVecAdd(y, x); err != nil {
						t.Fatal(err)
					}
					for i := range y {
						if math.Float64bits(y[i]) != math.Float64bits(refAdd[i]) {
							t.Fatalf("%s/%s workers=%d unroll=%d: add y[%d] = %v, reference %v",
								name, kind, workers, unroll, i, y[i], refAdd[i])
						}
					}
					k.Close()
				}
			}
		}
	}
}

// TestBlockedTilingExercised forces a multi-tile run (tile width far
// below NCols) and checks it against a single-tile run of the same
// kernel kind.
func TestBlockedTilingExercised(t *testing.T) {
	m := matgen.Banded(600, 4, 40, 3000, 3)
	x := testX(m.NCols)
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	k := NewBlockedCRS(m, Options{Workers: 3, TileCols: 64})
	defer k.Close()
	if k.tile != 64 {
		t.Fatalf("tile = %d, want 64 (NCols %d should enable tiling)", k.tile, m.NCols)
	}
	y := make([]float64, m.NRows)
	if err := k.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("tiled y[%d] = %v, reference %v", i, y[i], ref[i])
		}
	}
}

// TestPJDSKernelMatchesMulVecPermuted checks the pJDS host kernel
// against core's Listing-2 reference in the permuted basis.
func TestPJDSKernelMatchesMulVecPermuted(t *testing.T) {
	m := matgen.PowerLaw(350, 350, 8, 0.7, 5)
	p, err := core.NewPJDS(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := testX(m.NCols)
	ref := make([]float64, p.N)
	if err := p.MulVecPermuted(ref, x); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		k := NewPJDS(p, Options{Workers: workers})
		y := make([]float64, p.N)
		if err := k.MulVec(y, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("workers=%d: yp[%d] = %v, reference %v", workers, i, y[i], ref[i])
			}
		}
		// Add variant: yp += Ap·xp.
		want := append([]float64(nil), ref...)
		for i := range want {
			want[i] += ref[i]
		}
		if err := k.MulVecAdd(y, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(want[i]) {
				t.Fatalf("workers=%d: add yp[%d] = %v, want %v", workers, i, y[i], want[i])
			}
		}
		k.Close()
	}
}

func TestKernelShapeErrors(t *testing.T) {
	m := matgen.Banded(50, 2, 6, 100, 1)
	for _, kind := range Kinds() {
		k, err := New(kind, m, Options{Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, m.NRows)
		if err := k.MulVec(y, make([]float64, m.NCols+1)); err == nil {
			t.Fatalf("%s: no error for wrong |x|", kind)
		}
		if err := k.MulVecAdd(make([]float64, m.NRows-1), make([]float64, m.NCols)); err == nil {
			t.Fatalf("%s: no error for wrong |y|", kind)
		}
		k.Close()
	}
}

func TestParseKindAndDefault(t *testing.T) {
	if _, err := ParseKind("warp"); err == nil {
		t.Fatal("ParseKind accepted an unknown kind")
	}
	if k, err := ParseKind("sell"); err != nil || k != KindSELL {
		t.Fatalf("ParseKind(sell) = %v, %v", k, err)
	}
	if got := DefaultKind(); got != KindBlocked {
		t.Fatalf("DefaultKind() = %v, want blocked", got)
	}
	if err := SetDefaultKind(KindNaive); err != nil {
		t.Fatal(err)
	}
	if got := DefaultKind(); got != KindNaive {
		t.Fatalf("DefaultKind() = %v after SetDefaultKind(naive)", got)
	}
	if err := SetDefaultKind("bogus"); err == nil {
		t.Fatal("SetDefaultKind accepted an unknown kind")
	}
	if err := SetDefaultKind(KindBlocked); err != nil {
		t.Fatal(err)
	}
}

// TestChunksDegenerate is the satellite audit of the nnz-balanced
// schedule: workers > rows, empty rows at the tail, all non-zeros in
// one row, zero rows, and non-positive worker counts.
func TestChunksDegenerate(t *testing.T) {
	cases := []struct {
		name    string
		rowPtr  []int
		workers int
		want    []int
	}{
		{"even", []int{0, 2, 4, 6, 8}, 2, []int{0, 2, 4}},
		{"workers_gt_rows", []int{0, 1, 2}, 5, []int{0, 0, 0, 1, 1, 2}},
		{"workers_zero", []int{0, 3, 6}, 0, []int{0, 2}},
		{"workers_negative", []int{0, 3, 6}, -3, []int{0, 2}},
		{"no_rows", []int{0}, 4, []int{0, 0, 0, 0, 0}},
		{"empty_rowptr", []int{}, 2, []int{0, 0, 0}},
		{"all_in_one_row", []int{0, 0, 100, 100, 100}, 4, []int{0, 2, 2, 2, 4}},
		{"empty_tail", []int{0, 4, 8, 8, 8}, 2, []int{0, 1, 4}},
		{"all_empty_rows", []int{0, 0, 0, 0}, 2, []int{0, 0, 3}},
	}
	for _, tc := range cases {
		got := Chunks(tc.rowPtr, tc.workers)
		if len(got) != len(tc.want) {
			t.Fatalf("%s: Chunks = %v, want %v", tc.name, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("%s: Chunks = %v, want %v", tc.name, got, tc.want)
			}
		}
		// Invariants: non-decreasing, full cover.
		rows := len(tc.rowPtr) - 1
		if rows < 0 {
			rows = 0
		}
		if got[0] != 0 || got[len(got)-1] != rows {
			t.Fatalf("%s: bounds %v do not cover [0,%d)", tc.name, got, rows)
		}
		for i := 1; i < len(got); i++ {
			if got[i] < got[i-1] {
				t.Fatalf("%s: bounds %v decrease", tc.name, got)
			}
		}
	}
}

// TestMeterPublishes checks the telemetry wiring: gauges and counters
// appear under the kernel label and advance per application.
func TestMeterPublishes(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := matgen.Banded(200, 2, 10, 500, 9)
	k := NewBlockedCRS(m, Options{Workers: 2, Metrics: reg})
	defer k.Close()
	x := testX(m.NCols)
	y := make([]float64, m.NRows)
	for i := 0; i < 3; i++ {
		if err := k.MulVec(y, x); err != nil {
			t.Fatal(err)
		}
	}
	l := telemetry.L("kernel", "blocked")
	if got := reg.Counter("host_kernel_applies_total", l).Value(); got != 3 {
		t.Fatalf("applies_total = %v, want 3", got)
	}
	wantBytes := 3 * (12*float64(m.Nnz()) + 24*float64(m.NRows) + 8*float64(m.NCols))
	if got := reg.Counter("host_kernel_bytes_total", l).Value(); got != wantBytes {
		t.Fatalf("bytes_total = %v, want %v", got, wantBytes)
	}
	if got := reg.Gauge("host_kernel_gflops", l).Value(); got <= 0 {
		t.Fatalf("gflops gauge = %v, want > 0", got)
	}
	if got := reg.Gauge("host_kernel_gbs", l).Value(); got <= 0 {
		t.Fatalf("gbs gauge = %v, want > 0", got)
	}
}

// TestSELLGenericChunkHeight covers the non-specialized C path.
func TestSELLGenericChunkHeight(t *testing.T) {
	m := matgen.PowerLaw(130, 130, 6, 0.5, 21)
	x := testX(m.NCols)
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	k, err := NewSELL(m, Options{Workers: 3, C: 6, Sigma: 32})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	y := make([]float64, m.NRows)
	if err := k.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("C=6: y[%d] = %v, reference %v", i, y[i], ref[i])
		}
	}
}

// TestOneShotMulVec covers the convenience wrapper.
func TestOneShotMulVec(t *testing.T) {
	m := matgen.Banded(100, 2, 8, 300, 17)
	x := testX(m.NCols)
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, m.NRows)
	if err := MulVec(m, y, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("y[%d] = %v, reference %v", i, y[i], ref[i])
		}
	}
}

// TestCMRSKernelOptions pins the strip-height plumbing: Options.C is
// the CMRS strip height, invalid heights surface the format error, and
// an uneven strip count stays bit-identical under parallel workers.
func TestCMRSKernelOptions(t *testing.T) {
	m := matgen.PowerLaw(141, 2, 40, 0.7, 31)
	k, err := NewCMRSKernel(m, Options{Workers: 5, C: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer k.Close()
	if k.Layout().Height != 4 {
		t.Fatalf("Height = %d, want 4", k.Layout().Height)
	}
	x := testX(m.NCols)
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, m.NRows)
	if err := k.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
			t.Fatalf("y[%d] = %v, reference %v", i, y[i], ref[i])
		}
	}
	if _, err := NewCMRSKernel(m, Options{C: -3}); err == nil {
		t.Fatal("negative strip height accepted")
	}
}
