package hostkernel

import (
	"fmt"
	"runtime"

	"pjds/internal/matrix"
	"pjds/internal/par"
	"pjds/internal/profiles"
)

// BlockedCRS is the cache-blocked, unrolled CRS kernel. Rows are
// split once into nnz-balanced contiguous chunks (one per worker,
// the shared Chunks schedule) and executed on a persistent par.Pool;
// within a chunk the kernel advances two consecutive rows in lockstep
// over their common length prefix through bounds-check-free sub-slices
// (v0/c0/v1/c1 share one compiler-provable length), each row with its
// own accumulator, then finishes the ragged tails row by row. Unroll
// selects the stream width of that lockstep loop: 4 keeps the
// compiler's tight two-stream body (4 operand streams per iteration —
// two value loads plus two x gathers), 8 additionally unrolls the
// inner loop 2× (8 streams per iteration). Wider lockstep groups were
// measured and rejected: with only two rows the profitable lever on
// this kernel is bounds-check elimination, and four simultaneous
// slice headers already spill amd64's registers (see DESIGN.md).
// Per-row summation order never changes, so the result is
// bit-identical to the naive reference.
//
// With Options.TileCols > 0, when the matrix is wider than one x
// tile and every row's columns are ascending (the layout the CSR
// assembler produces — the gather-friendly column ordering), the
// kernel instead walks x in TileCols-sized column tiles: all rows of
// a chunk consume tile t before any row moves to tile t+1, so a tile
// of x is loaded into cache once per chunk instead of once per row.
// Each row's partial sum is threaded through the tiles in stored
// column order, so the result stays bit-identical to the naive
// reference. Tiling is opt-in because the per-row cursor walk costs
// ~2× on short-row matrices and only pays when x badly misses cache.
type BlockedCRS struct {
	m      *matrix.CSR[float64]
	unroll int
	tile   int // x-tile width in columns; 0 = single tile
	bounds []int
	pool   *par.Pool
	// cur/acc are the tiled path's per-row cursor and partial-sum
	// scratch, sized once at construction (zero-alloc steady state).
	cur []int
	acc []float64
	mt  *meter

	// Per-apply state published to the pool workers (the pool's
	// channel send / WaitGroup pair gives the happens-before edges).
	y, x  []float64
	add   bool
	runFn func(w int)
}

// NewBlockedCRS builds the blocked kernel over m.
func NewBlockedCRS(m *matrix.CSR[float64], opt Options) *BlockedCRS {
	workers := par.Resolve(opt.Workers)
	if workers > m.NRows {
		workers = m.NRows
	}
	if workers < 1 {
		workers = 1
	}
	tile := opt.TileCols
	if tile < 0 || m.NCols <= tile || !ascendingColumns(m) {
		tile = 0
	}
	k := &BlockedCRS{
		m:      m,
		unroll: opt.unroll(),
		tile:   tile,
		bounds: Chunks(m.RowPtr, workers),
		mt:     newMeter(opt.Metrics, string(KindBlocked), int64(m.Nnz()), m.NRows, m.NCols),
	}
	if tile > 0 {
		k.cur = make([]int, m.NRows)
		k.acc = make([]float64, m.NRows)
	}
	k.runFn = k.run
	if workers > 1 {
		k.pool = par.NewPool(workers)
		k.pool.Label(profiles.Ctx(profiles.PhaseHost, "kernel", string(KindBlocked), "format", "crs"))
		runtime.SetFinalizer(k, (*BlockedCRS).Close)
	}
	return k
}

// ascendingColumns reports whether every row's column indices are
// strictly ascending — the precondition for column tiling to preserve
// the stored summation order.
func ascendingColumns(m *matrix.CSR[float64]) bool {
	for i := 0; i < m.NRows; i++ {
		lo, hi := m.RowPtr[i], m.RowPtr[i+1]
		for k := lo + 1; k < hi; k++ {
			if m.ColIdx[k] <= m.ColIdx[k-1] {
				return false
			}
		}
	}
	return true
}

// Name implements Kernel.
func (k *BlockedCRS) Name() string { return string(KindBlocked) }

// Rows implements Kernel.
func (k *BlockedCRS) Rows() int { return k.m.NRows }

// Cols implements Kernel.
func (k *BlockedCRS) Cols() int { return k.m.NCols }

// MulVec implements Kernel.
func (k *BlockedCRS) MulVec(y, x []float64) error { return k.apply(y, x, false) }

// MulVecAdd implements Kernel.
func (k *BlockedCRS) MulVecAdd(y, x []float64) error { return k.apply(y, x, true) }

func (k *BlockedCRS) apply(y, x []float64, add bool) error {
	if len(x) != k.m.NCols || len(y) != k.m.NRows {
		return fmt.Errorf("hostkernel: blocked |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), k.m.NRows, k.m.NCols, matrix.ErrShape)
	}
	t0 := k.mt.start()
	k.y, k.x, k.add = y, x, add
	if k.pool != nil {
		k.pool.Run(k.runFn)
	} else {
		k.run(0)
	}
	k.y, k.x = nil, nil
	k.mt.observe(t0)
	return nil
}

// run executes worker w's row chunk.
func (k *BlockedCRS) run(w int) {
	lo, hi := k.bounds[w], k.bounds[w+1]
	if lo >= hi {
		return
	}
	if k.tile > 0 {
		k.runTiled(lo, hi)
		return
	}
	if k.unroll == 8 {
		k.rows8(lo, hi)
		return
	}
	k.rows4(lo, hi)
}

// rows4 executes rows [lo, hi) two at a time: the pair's common
// length prefix runs in lockstep through sub-slices whose shared
// length the compiler can prove, eliding every bounds check on
// v0/c0/v1/c1, with one independent accumulator per row; the ragged
// tails then finish row by row. Four operand streams per iteration
// (two value loads, two x gathers) — hence the unroll=4 label. The
// set and add flavours are separate functions so the hot loop carries
// no mode branch (keeping the store path out of the loop body is
// worth ~10% on this kernel).
func (k *BlockedCRS) rows4(lo, hi int) {
	m := k.m
	if k.add {
		crsPairsAdd(m.RowPtr, m.Val, m.ColIdx, k.y, k.x, lo, hi)
		return
	}
	crsPairsSet(m.RowPtr, m.Val, m.ColIdx, k.y, k.x, lo, hi)
}

// rows8 is the 8-stream variant of rows4: the same two-row lockstep
// with the inner loop manually unrolled 2×, so each iteration issues
// four value loads and four x gathers. Within each row the adds stay
// in stored column order (s0 += ...[j] then ...[j+1]), preserving
// bit-identity.
func (k *BlockedCRS) rows8(lo, hi int) {
	m := k.m
	if k.add {
		crsPairs8Add(m.RowPtr, m.Val, m.ColIdx, k.y, k.x, lo, hi)
		return
	}
	crsPairs8Set(m.RowPtr, m.Val, m.ColIdx, k.y, k.x, lo, hi)
}

func crsPairsSet(rp []int, val []float64, idx []int32, y, x []float64, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		p0, p1, q0, q1 := rp[i], rp[i+1], rp[i+1], rp[i+2]
		minL := q0 - p0
		if l := q1 - p1; l < minL {
			minL = l
		}
		v0 := val[p0 : p0+minL]
		c0 := idx[p0 : p0+minL]
		v1 := val[p1 : p1+minL]
		c1 := idx[p1 : p1+minL]
		var s0, s1 float64
		for j := range v0 {
			s0 += v0[j] * x[c0[j]]
			s1 += v1[j] * x[c1[j]]
		}
		y[i] = rowTail(s0, val, idx, x, p0+minL, q0)
		y[i+1] = rowTail(s1, val, idx, x, p1+minL, q1)
	}
	for ; i < hi; i++ {
		y[i] = rowTail(0, val, idx, x, rp[i], rp[i+1])
	}
}

func crsPairsAdd(rp []int, val []float64, idx []int32, y, x []float64, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		p0, p1, q0, q1 := rp[i], rp[i+1], rp[i+1], rp[i+2]
		minL := q0 - p0
		if l := q1 - p1; l < minL {
			minL = l
		}
		v0 := val[p0 : p0+minL]
		c0 := idx[p0 : p0+minL]
		v1 := val[p1 : p1+minL]
		c1 := idx[p1 : p1+minL]
		var s0, s1 float64
		for j := range v0 {
			s0 += v0[j] * x[c0[j]]
			s1 += v1[j] * x[c1[j]]
		}
		y[i] += rowTail(s0, val, idx, x, p0+minL, q0)
		y[i+1] += rowTail(s1, val, idx, x, p1+minL, q1)
	}
	for ; i < hi; i++ {
		y[i] += rowTail(0, val, idx, x, rp[i], rp[i+1])
	}
}

func crsPairs8Set(rp []int, val []float64, idx []int32, y, x []float64, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		p0, p1, q0, q1 := rp[i], rp[i+1], rp[i+1], rp[i+2]
		minL := q0 - p0
		if l := q1 - p1; l < minL {
			minL = l
		}
		v0 := val[p0 : p0+minL]
		c0 := idx[p0 : p0+minL]
		v1 := val[p1 : p1+minL]
		c1 := idx[p1 : p1+minL]
		var s0, s1 float64
		j := 0
		for ; j+2 <= minL; j += 2 {
			s0 += v0[j] * x[c0[j]]
			s1 += v1[j] * x[c1[j]]
			s0 += v0[j+1] * x[c0[j+1]]
			s1 += v1[j+1] * x[c1[j+1]]
		}
		for ; j < minL; j++ {
			s0 += v0[j] * x[c0[j]]
			s1 += v1[j] * x[c1[j]]
		}
		y[i] = rowTail(s0, val, idx, x, p0+minL, q0)
		y[i+1] = rowTail(s1, val, idx, x, p1+minL, q1)
	}
	for ; i < hi; i++ {
		y[i] = rowTail(0, val, idx, x, rp[i], rp[i+1])
	}
}

func crsPairs8Add(rp []int, val []float64, idx []int32, y, x []float64, lo, hi int) {
	i := lo
	for ; i+2 <= hi; i += 2 {
		p0, p1, q0, q1 := rp[i], rp[i+1], rp[i+1], rp[i+2]
		minL := q0 - p0
		if l := q1 - p1; l < minL {
			minL = l
		}
		v0 := val[p0 : p0+minL]
		c0 := idx[p0 : p0+minL]
		v1 := val[p1 : p1+minL]
		c1 := idx[p1 : p1+minL]
		var s0, s1 float64
		j := 0
		for ; j+2 <= minL; j += 2 {
			s0 += v0[j] * x[c0[j]]
			s1 += v1[j] * x[c1[j]]
			s0 += v0[j+1] * x[c0[j+1]]
			s1 += v1[j+1] * x[c1[j+1]]
		}
		for ; j < minL; j++ {
			s0 += v0[j] * x[c0[j]]
			s1 += v1[j] * x[c1[j]]
		}
		y[i] += rowTail(s0, val, idx, x, p0+minL, q0)
		y[i+1] += rowTail(s1, val, idx, x, p1+minL, q1)
	}
	for ; i < hi; i++ {
		y[i] += rowTail(0, val, idx, x, rp[i], rp[i+1])
	}
}

// rowTail accumulates sum += val[p]·x[idx[p]] over [p, q) — the
// remainder of one row after its group's lockstep prefix, in the
// row's stored column order.
func rowTail(sum float64, val []float64, idx []int32, x []float64, p, q int) float64 {
	for ; p < q; p++ {
		sum += val[p] * x[idx[p]]
	}
	return sum
}

// runTiled is the cache-blocked path: all rows of the chunk consume
// one TileCols-wide segment of x before any row advances to the next
// tile. Each row's accumulator is threaded through its tile segments
// (rowSum* take the running sum), so the addition chain is exactly
// the stored-column-order chain of the naive kernel.
func (k *BlockedCRS) runTiled(lo, hi int) {
	m, x := k.m, k.x
	cur, acc := k.cur, k.acc
	for i := lo; i < hi; i++ {
		cur[i] = m.RowPtr[i]
		acc[i] = 0
	}
	for t := 0; t < m.NCols; t += k.tile {
		tEnd := int32(t + k.tile)
		for i := lo; i < hi; i++ {
			p, q := cur[i], m.RowPtr[i+1]
			if p == q || m.ColIdx[p] >= tEnd {
				continue
			}
			e := p
			for e < q && m.ColIdx[e] < tEnd {
				e++
			}
			if k.unroll == 8 {
				acc[i] = rowSum8(acc[i], m.Val[p:e:e], m.ColIdx[p:e:e], x)
			} else {
				acc[i] = rowSum4(acc[i], m.Val[p:e:e], m.ColIdx[p:e:e], x)
			}
			cur[i] = e
		}
	}
	y := k.y
	if k.add {
		for i := lo; i < hi; i++ {
			y[i] += acc[i]
		}
		return
	}
	for i := lo; i < hi; i++ {
		y[i] = acc[i]
	}
}

// rowSum4 accumulates sum += v[k]·x[c[k]] over one row segment with a
// 4-wide unrolled loop. A single accumulator keeps the addition chain
// identical to the reference kernel (Go never reassociates
// floating-point arithmetic); the unroll only amortizes loop-counter
// and branch overhead, and the len-bounded re-sliced inputs let the
// compiler elide the bounds checks on v and c.
func rowSum4(sum float64, v []float64, c []int32, x []float64) float64 {
	k := 0
	for ; k+4 <= len(v) && k+4 <= len(c); k += 4 {
		sum += v[k] * x[c[k]]
		sum += v[k+1] * x[c[k+1]]
		sum += v[k+2] * x[c[k+2]]
		sum += v[k+3] * x[c[k+3]]
	}
	for ; k < len(v) && k < len(c); k++ {
		sum += v[k] * x[c[k]]
	}
	return sum
}

// rowSum8 is the 8-wide variant of rowSum4.
func rowSum8(sum float64, v []float64, c []int32, x []float64) float64 {
	k := 0
	for ; k+8 <= len(v) && k+8 <= len(c); k += 8 {
		sum += v[k] * x[c[k]]
		sum += v[k+1] * x[c[k+1]]
		sum += v[k+2] * x[c[k+2]]
		sum += v[k+3] * x[c[k+3]]
		sum += v[k+4] * x[c[k+4]]
		sum += v[k+5] * x[c[k+5]]
		sum += v[k+6] * x[c[k+6]]
		sum += v[k+7] * x[c[k+7]]
	}
	for ; k < len(v) && k < len(c); k++ {
		sum += v[k] * x[c[k]]
	}
	return sum
}

// Close implements Kernel: releases the worker pool.
func (k *BlockedCRS) Close() {
	if k.pool != nil {
		runtime.SetFinalizer(k, nil)
		k.pool.Close()
	}
}
