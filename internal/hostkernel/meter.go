package hostkernel

import (
	"time"

	"pjds/internal/telemetry"
)

// meter publishes per-kernel throughput telemetry. All registry
// lookups (which allocate the series key) happen once at
// construction; the per-apply path is two atomic gauge stores and two
// atomic counter adds, so metered kernels stay zero-alloc.
type meter struct {
	gflops  *telemetry.Gauge
	gbs     *telemetry.Gauge
	bytes   *telemetry.Counter
	applies *telemetry.Counter
	// flops and traffic of one application: 2 flops per non-zero, and
	// the minimal DP-CRS traffic of Eq. 1 at ideal RHS reuse — 12 B
	// per non-zero (value + index), 24 B per row (row pointer + LHS
	// write-allocate and write-back), 8 B per column of x.
	flopsPerApply float64
	bytesPerApply float64
}

// newMeter resolves the telemetry handles for one kernel instance;
// nil reg yields a nil meter, and every meter method is nil-safe.
func newMeter(reg *telemetry.Registry, kind string, nnz int64, rows, cols int) *meter {
	if reg == nil {
		return nil
	}
	reg.Help("host_kernel_gflops", "performance of the last host spMVM application, GFlop/s")
	reg.Help("host_kernel_gbs", "effective memory bandwidth of the last host spMVM application (Eq. 1 minimal DP traffic), GB/s")
	reg.Help("host_kernel_bytes_total", "cumulative Eq. 1 minimal DP traffic moved by host spMVM applications")
	reg.Help("host_kernel_applies_total", "host spMVM applications")
	l := telemetry.L("kernel", kind)
	return &meter{
		gflops:        reg.Gauge("host_kernel_gflops", l),
		gbs:           reg.Gauge("host_kernel_gbs", l),
		bytes:         reg.Counter("host_kernel_bytes_total", l),
		applies:       reg.Counter("host_kernel_applies_total", l),
		flopsPerApply: 2 * float64(nnz),
		bytesPerApply: 12*float64(nnz) + 24*float64(rows) + 8*float64(cols),
	}
}

// start returns the apply start time (zero when unmetered, so the
// clock is only read on metered kernels).
func (mt *meter) start() time.Time {
	if mt == nil {
		return time.Time{}
	}
	return time.Now()
}

// observe publishes one application that started at t0.
func (mt *meter) observe(t0 time.Time) {
	if mt == nil {
		return
	}
	s := time.Since(t0).Seconds()
	if s > 0 {
		mt.gflops.Set(mt.flopsPerApply / s / 1e9)
		mt.gbs.Set(mt.bytesPerApply / s / 1e9)
	}
	mt.bytes.Add(mt.bytesPerApply)
	mt.applies.Inc()
}
