package hostkernel

import (
	"fmt"
	"runtime"

	"pjds/internal/formats"
	"pjds/internal/matrix"
	"pjds/internal/par"
	"pjds/internal/profiles"
)

// CMRSKernel is the compressed multi-row storage host kernel (Koza et
// al., arXiv:1203.2946). The matrix stream is the CSR stream verbatim
// — no padding, no reordering — cut into strips of Height consecutive
// rows; each element carries a row-in-strip byte that routes its
// product into one of Height strip-local accumulators. Because a row's
// elements are consecutive inside its strip, accumulating in element
// order is the per-row single-accumulator stored-column-order sum, so
// results are bit-identical to the naive reference at any worker
// count (workers own whole strips, strips own disjoint rows).
type CMRSKernel struct {
	c      *formats.CMRS[float64]
	bounds []int       // per-worker strip ranges, nnz-balanced
	acc    [][]float64 // per-worker strip-local accumulators (len Height)
	pool   *par.Pool
	mt     *meter

	y, x  []float64
	add   bool
	runFn func(w int)
}

// NewCMRSKernel converts m into a CMRS layout with strip height
// Options.C (0 = formats.DefaultStripHeight) and builds the kernel.
func NewCMRSKernel(m *matrix.CSR[float64], opt Options) (*CMRSKernel, error) {
	c, err := formats.NewCMRSWith(m, opt.C, matrix.ConvertOptions{Workers: opt.Workers})
	if err != nil {
		return nil, err
	}
	return NewCMRSOver(c, opt)
}

// NewCMRSOver builds the kernel over an existing CMRS layout.
func NewCMRSOver(c *formats.CMRS[float64], opt Options) (*CMRSKernel, error) {
	workers := par.Resolve(opt.Workers)
	if workers > c.NStrips {
		workers = c.NStrips
	}
	if workers < 1 {
		workers = 1
	}
	// StripPtr is already the nnz prefix sum at strip granularity —
	// feed it to the shared schedule directly.
	prefix := make([]int, c.NStrips+1)
	for s := range prefix {
		prefix[s] = int(c.StripPtr[s])
	}
	k := &CMRSKernel{
		c:      c,
		bounds: Chunks(prefix, workers),
		acc:    make([][]float64, workers),
		mt:     newMeter(opt.Metrics, string(KindCMRS), int64(c.NnzV), c.N, c.NCols),
	}
	for w := range k.acc {
		k.acc[w] = make([]float64, c.Height)
	}
	k.runFn = k.run
	if workers > 1 {
		k.pool = par.NewPool(workers)
		k.pool.Label(profiles.Ctx(profiles.PhaseHost, "kernel", string(KindCMRS), "format", "cmrs"))
		runtime.SetFinalizer(k, (*CMRSKernel).Close)
	}
	return k, nil
}

// Layout exposes the underlying CMRS (reporting: footprint, geometry).
func (k *CMRSKernel) Layout() *formats.CMRS[float64] { return k.c }

// Name implements Kernel.
func (k *CMRSKernel) Name() string { return string(KindCMRS) }

// Rows implements Kernel.
func (k *CMRSKernel) Rows() int { return k.c.N }

// Cols implements Kernel.
func (k *CMRSKernel) Cols() int { return k.c.NCols }

// MulVec implements Kernel: y = A·x in the original basis (CMRS never
// permutes rows).
func (k *CMRSKernel) MulVec(y, x []float64) error { return k.apply(y, x, false) }

// MulVecAdd implements Kernel.
func (k *CMRSKernel) MulVecAdd(y, x []float64) error { return k.apply(y, x, true) }

func (k *CMRSKernel) apply(y, x []float64, add bool) error {
	if len(x) != k.c.NCols || len(y) != k.c.N {
		return fmt.Errorf("hostkernel: cmrs |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), k.c.N, k.c.NCols, matrix.ErrShape)
	}
	t0 := k.mt.start()
	k.y, k.x, k.add = y, x, add
	if k.pool != nil {
		k.pool.Run(k.runFn)
	} else {
		k.run(0)
	}
	k.y, k.x = nil, nil
	k.mt.observe(t0)
	return nil
}

// run executes worker w's strip range: one front-to-back walk of the
// strip's element stream into the worker's accumulators, then a
// scatter of at most Height sums.
func (k *CMRSKernel) run(w int) {
	c, x, y, acc := k.c, k.x, k.y, k.acc[w]
	val, idx, ris := c.Val, c.ColIdx, c.RowInStrip
	for s := k.bounds[w]; s < k.bounds[w+1]; s++ {
		base := s * c.Height
		rows := c.Height
		if base+rows > c.N {
			rows = c.N - base
		}
		a := acc[:rows]
		for r := range a {
			a[r] = 0
		}
		for e := c.StripPtr[s]; e < c.StripPtr[s+1]; e++ {
			a[ris[e]] += val[e] * x[idx[e]]
		}
		if k.add {
			for r := range a {
				y[base+r] += a[r]
			}
		} else {
			for r := range a {
				y[base+r] = a[r]
			}
		}
	}
}

// Close implements Kernel: releases the worker pool.
func (k *CMRSKernel) Close() {
	if k.pool != nil {
		runtime.SetFinalizer(k, nil)
		k.pool.Close()
	}
}
