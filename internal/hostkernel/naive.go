package hostkernel

import "pjds/internal/matrix"

// Naive is the sequential CRS reference kernel: it delegates straight
// to matrix.CSR's MulVec/MulVecAdd, the correctness reference for
// every other kernel in the repository. It exists so cross-checks,
// fuzzing, and the -host-kernel=naive CLI path exercise the exact
// baseline the optimized kernels must be bit-identical to.
type Naive struct {
	m  *matrix.CSR[float64]
	mt *meter
}

// NewNaive builds the reference kernel (Workers, Unroll and TileCols
// are ignored — the reference is sequential by definition).
func NewNaive(m *matrix.CSR[float64], opt Options) *Naive {
	return &Naive{m: m, mt: newMeter(opt.Metrics, string(KindNaive), int64(m.Nnz()), m.NRows, m.NCols)}
}

// Name implements Kernel.
func (k *Naive) Name() string { return string(KindNaive) }

// Rows implements Kernel.
func (k *Naive) Rows() int { return k.m.NRows }

// Cols implements Kernel.
func (k *Naive) Cols() int { return k.m.NCols }

// MulVec implements Kernel.
func (k *Naive) MulVec(y, x []float64) error {
	t0 := k.mt.start()
	if err := k.m.MulVec(y, x); err != nil {
		return err
	}
	k.mt.observe(t0)
	return nil
}

// MulVecAdd implements Kernel.
func (k *Naive) MulVecAdd(y, x []float64) error {
	t0 := k.mt.start()
	if err := k.m.MulVecAdd(y, x); err != nil {
		return err
	}
	k.mt.observe(t0)
	return nil
}

// Close implements Kernel (no pool to release).
func (k *Naive) Close() {}
