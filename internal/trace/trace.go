// Package trace exports simulated cluster timelines in the Chrome
// trace-event format (the JSON consumed by chrome://tracing and
// Perfetto), so the Fig. 4 execution structure can be inspected
// interactively instead of as ASCII art.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pjds/internal/distmv"
)

// event is one Chrome trace "complete" event (ph = "X"); timestamps
// and durations are in microseconds.
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// metadata names processes and threads in the viewer.
type metadata struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// laneTID maps the two lanes of the distmv timeline onto stable thread
// ids: the communication thread is thread 0 (as in Fig. 4) and the GPU
// stream is thread 1.
func laneTID(lane string) int {
	if lane == "gpu" {
		return 1
	}
	return 0
}

// WriteCluster renders a distributed-run result as a trace: one
// process per (simulated) node would need per-rank timelines, so the
// recorded rank-0 timeline is emitted as process 0 with its host and
// GPU lanes, plus run-level counters as args.
func WriteCluster(w io.Writer, res *distmv.Result) error {
	if res == nil {
		return fmt.Errorf("trace: nil result")
	}
	var out []any
	out = append(out,
		metadata{Name: "process_name", Ph: "M", PID: 0, Args: map[string]any{"name": fmt.Sprintf("rank 0 (%s, %s, P=%d)", res.Mode, res.Format, res.P)}},
		metadata{Name: "thread_name", Ph: "M", PID: 0, TID: 0, Args: map[string]any{"name": "host thread 0 (MPI)"}},
		metadata{Name: "thread_name", Ph: "M", PID: 0, TID: 1, Args: map[string]any{"name": "GPU stream"}},
	)
	evs := append([]distmv.Event(nil), res.Timeline...)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	for _, e := range evs {
		out = append(out, event{
			Name: e.Name,
			Cat:  e.Lane,
			Ph:   "X",
			Ts:   1e6 * e.Start,
			Dur:  1e6 * (e.End - e.Start),
			PID:  0,
			TID:  laneTID(e.Lane),
			Args: map[string]any{
				"mode":   res.Mode.String(),
				"format": res.Format.String(),
			},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ns",
		"otherData": map[string]any{
			"nodes":          res.P,
			"iterations":     res.Iterations,
			"gflops":         res.GFlops,
			"perIterSeconds": res.PerIterSeconds,
		},
	})
}
