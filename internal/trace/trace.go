// Package trace exports simulated cluster timelines in the Chrome
// trace-event format (the JSON consumed by chrome://tracing and
// Perfetto), so the Fig. 4 execution structure can be inspected
// interactively instead of as ASCII art.
//
// WriteSpans is the general entry point: it renders any set of
// telemetry spans — every rank's communication, GPU, and solver lanes
// — as one trace. WriteCluster is the original rank-0 timeline
// exporter, kept as a thin wrapper over the same machinery.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"pjds/internal/distmv"
	"pjds/internal/telemetry"
)

// event is one Chrome trace "complete" event (ph = "X"); timestamps
// and durations are in microseconds.
type event struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// metadata names processes and threads in the viewer.
type metadata struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// Meta parameterizes the trace header: display names for processes
// (ranks) and lanes, and run-level values for the viewer's otherData.
type Meta struct {
	// Processes maps pid (rank) to a display name; pids present in the
	// spans but absent here keep a generic "rank N" name.
	Processes map[int]string
	// LaneNames maps a lane to its thread display name; unnamed lanes
	// display as the lane string itself.
	LaneNames map[string]string
	// Other is attached verbatim as the trace's otherData.
	Other map[string]any
}

// laneTID maps the timeline lanes onto stable thread ids: the
// communication (host) thread is thread 0 (as in Fig. 4), the GPU
// stream is thread 1, and the solver lane is thread 2.
func laneTID(lane string) int {
	switch lane {
	case "gpu":
		return 1
	case "solver":
		return 2
	default:
		return 0
	}
}

// tidOf extends laneTID to arbitrary lanes: unknown lanes get ids from
// 3 upward in sorted lane order, so output stays deterministic.
func tidOf(lane string, extra map[string]int) int {
	switch lane {
	case "host", "gpu", "solver":
		return laneTID(lane)
	}
	return extra[lane]
}

// WriteSpans renders telemetry spans as one Chrome trace: each span's
// Proc becomes a trace process (one per rank), each lane a named
// thread within it. Output is deterministic: metadata sorted by
// (pid, tid), events by (Start, Proc, Lane, Name, End).
func WriteSpans(w io.Writer, spans []telemetry.Span, meta Meta) error {
	sorted := append([]telemetry.Span(nil), spans...)
	sort.SliceStable(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Proc != b.Proc {
			return a.Proc < b.Proc
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.End < b.End
	})

	// Discover processes and lanes; assign ids to non-standard lanes.
	procLanes := map[int]map[string]bool{}
	unknown := map[string]bool{}
	for _, s := range sorted {
		if procLanes[s.Proc] == nil {
			procLanes[s.Proc] = map[string]bool{}
		}
		procLanes[s.Proc][s.Lane] = true
		switch s.Lane {
		case "host", "gpu", "solver":
		default:
			unknown[s.Lane] = true
		}
	}
	extraTID := map[string]int{}
	{
		lanes := make([]string, 0, len(unknown))
		for l := range unknown {
			lanes = append(lanes, l)
		}
		sort.Strings(lanes)
		for i, l := range lanes {
			extraTID[l] = 3 + i
		}
	}

	var out []any
	pids := make([]int, 0, len(procLanes))
	for pid := range procLanes {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		name, ok := meta.Processes[pid]
		if !ok {
			name = fmt.Sprintf("rank %d", pid)
		}
		out = append(out, metadata{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": name}})
		lanes := make([]string, 0, len(procLanes[pid]))
		for l := range procLanes[pid] {
			lanes = append(lanes, l)
		}
		sort.Slice(lanes, func(i, j int) bool { return tidOf(lanes[i], extraTID) < tidOf(lanes[j], extraTID) })
		for _, l := range lanes {
			ln, ok := meta.LaneNames[l]
			if !ok {
				ln = l
			}
			out = append(out, metadata{Name: "thread_name", Ph: "M", PID: pid, TID: tidOf(l, extraTID), Args: map[string]any{"name": ln}})
		}
	}

	for _, s := range sorted {
		var args map[string]any
		if len(s.Args) > 0 {
			args = make(map[string]any, len(s.Args))
			for k, v := range s.Args {
				args[k] = v
			}
		}
		out = append(out, event{
			Name: s.Name,
			Cat:  s.Cat,
			Ph:   "X",
			Ts:   1e6 * s.Start,
			Dur:  1e6 * (s.End - s.Start),
			PID:  s.Proc,
			TID:  tidOf(s.Lane, extraTID),
			Args: args,
		})
	}

	other := meta.Other
	if other == nil {
		other = map[string]any{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{
		"traceEvents":     out,
		"displayTimeUnit": "ns",
		"otherData":       other,
	})
}

// ReadSpans parses a Chrome trace-event document produced by
// WriteSpans back into telemetry spans, so saved -trace-out artifacts
// can be re-analyzed offline (cmd/perfreport). Lanes are recovered
// from the thread ids — 0/1/2 are the canonical host/gpu/solver lanes
// — falling back to the thread_name metadata for the extra lanes
// (which WriteSpans names by their raw lane token, e.g. "mpi").
// Timestamps round-trip through microseconds, so positions are exact
// to ~1 ulp; span args survive verbatim.
func ReadSpans(r io.Reader) ([]telemetry.Span, error) {
	type raw struct {
		Name string         `json:"name"`
		Cat  string         `json:"cat"`
		Ph   string         `json:"ph"`
		Ts   float64        `json:"ts"`
		Dur  float64        `json:"dur"`
		PID  int            `json:"pid"`
		TID  int            `json:"tid"`
		Args map[string]any `json:"args"`
	}
	var doc struct {
		TraceEvents []raw `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("trace: reading trace events: %w", err)
	}
	laneName := map[[2]int]string{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "M" && e.Name == "thread_name" {
			if n, ok := e.Args["name"].(string); ok {
				laneName[[2]int{e.PID, e.TID}] = n
			}
		}
	}
	laneOf := func(pid, tid int) string {
		switch tid {
		case 0:
			return "host"
		case 1:
			return "gpu"
		case 2:
			return "solver"
		}
		if n, ok := laneName[[2]int{pid, tid}]; ok {
			return n
		}
		return fmt.Sprintf("lane%d", tid)
	}
	log := telemetry.NewSpanLog()
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		var args map[string]string
		if len(e.Args) > 0 {
			args = make(map[string]string, len(e.Args))
			for k, v := range e.Args {
				args[k] = fmt.Sprint(v)
			}
		}
		log.Add(telemetry.Span{
			Proc: e.PID, Lane: laneOf(e.PID, e.TID), Cat: e.Cat, Name: e.Name,
			Start: e.Ts / 1e6, End: (e.Ts + e.Dur) / 1e6,
			Args: args,
		})
	}
	return log.Spans(), nil
}

// WriteCluster renders a distributed-run result as a trace: the
// recorded rank-0 timeline is emitted as process 0 with its host and
// GPU lanes, plus run-level counters as args.
func WriteCluster(w io.Writer, res *distmv.Result) error {
	if res == nil {
		return fmt.Errorf("trace: nil result")
	}
	spans := make([]telemetry.Span, 0, len(res.Timeline))
	for _, e := range res.Timeline {
		spans = append(spans, telemetry.Span{
			Proc: 0, Lane: e.Lane, Cat: e.Lane, Name: e.Name,
			Start: e.Start, End: e.End,
			Args: map[string]string{
				"mode":   res.Mode.String(),
				"format": res.Format.String(),
			},
		})
	}
	return WriteSpans(w, spans, Meta{
		Processes: map[int]string{0: fmt.Sprintf("rank 0 (%s, %s, P=%d)", res.Mode, res.Format, res.P)},
		LaneNames: map[string]string{"host": "host thread 0 (MPI)", "gpu": "GPU stream"},
		Other: map[string]any{
			"nodes":          res.P,
			"iterations":     res.Iterations,
			"gflops":         res.GFlops,
			"perIterSeconds": res.PerIterSeconds,
		},
	})
}
