// Package trace exports simulated cluster timelines in the Chrome
// trace-event format (the JSON consumed by chrome://tracing and
// Perfetto), so the Fig. 4 execution structure can be inspected
// interactively instead of as ASCII art.
//
// The span ↔ trace-event codec itself lives in internal/telemetry
// (WriteTrace / ReadTrace), so low-level recorders like the
// internal/flight ring buffer can emit the same artifact format
// without importing the simulation layers; this package re-exports it
// and keeps the distmv-aware WriteCluster convenience wrapper.
package trace

import (
	"fmt"
	"io"

	"pjds/internal/distmv"
	"pjds/internal/telemetry"
)

// Meta parameterizes the trace header: display names for processes
// (ranks) and lanes, and run-level values for the viewer's otherData.
type Meta = telemetry.TraceMeta

// WriteSpans renders telemetry spans as one Chrome trace: each span's
// Proc becomes a trace process (one per rank), each lane a named
// thread within it. Output is deterministic: metadata sorted by
// (pid, tid), events by (Start, Proc, Lane, Name, End).
func WriteSpans(w io.Writer, spans []telemetry.Span, meta Meta) error {
	return telemetry.WriteTrace(w, spans, meta)
}

// ReadSpans parses a Chrome trace-event document produced by
// WriteSpans back into telemetry spans, so saved -trace-out artifacts
// can be re-analyzed offline (cmd/perfreport).
func ReadSpans(r io.Reader) ([]telemetry.Span, error) {
	return telemetry.ReadTrace(r)
}

// WriteCluster renders a distributed-run result as a trace: the
// recorded rank-0 timeline is emitted as process 0 with its host and
// GPU lanes, plus run-level counters as args.
func WriteCluster(w io.Writer, res *distmv.Result) error {
	if res == nil {
		return fmt.Errorf("trace: nil result")
	}
	spans := make([]telemetry.Span, 0, len(res.Timeline))
	for _, e := range res.Timeline {
		spans = append(spans, telemetry.Span{
			Proc: 0, Lane: e.Lane, Cat: e.Lane, Name: e.Name,
			Start: e.Start, End: e.End,
			Args: map[string]string{
				"mode":   res.Mode.String(),
				"format": res.Format.String(),
			},
		})
	}
	return WriteSpans(w, spans, Meta{
		Processes: map[int]string{0: fmt.Sprintf("rank 0 (%s, %s, P=%d)", res.Mode, res.Format, res.P)},
		LaneNames: map[string]string{"host": "host thread 0 (MPI)", "gpu": "GPU stream"},
		Other: map[string]any{
			"nodes":          res.P,
			"iterations":     res.Iterations,
			"gflops":         res.GFlops,
			"perIterSeconds": res.PerIterSeconds,
		},
	})
}
