package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"pjds/internal/distmv"
	"pjds/internal/matgen"
	"pjds/internal/telemetry"
)

func TestWriteCluster(t *testing.T) {
	m := matgen.Random(4000, 8, 20, 1)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + math.Sin(float64(i))
	}
	res, err := distmv.RunSpMVM(m, x, 4, distmv.TaskMode, distmv.Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCluster(&buf, res); err != nil {
		t.Fatal(err)
	}
	// Valid JSON with the expected structure.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 metadata + ≥6 span events.
	if len(doc.TraceEvents) < 9 {
		t.Fatalf("only %d events", len(doc.TraceEvents))
	}
	var spans, meta int
	var sawGPU, sawHost bool
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) < 0 {
				t.Error("negative duration")
			}
			switch int(e["tid"].(float64)) {
			case 0:
				sawHost = true
			case 1:
				sawGPU = true
			}
		case "M":
			meta++
		}
	}
	if spans < 6 || meta != 3 {
		t.Errorf("spans=%d meta=%d", spans, meta)
	}
	if !sawGPU || !sawHost {
		t.Error("missing a lane")
	}
	if doc.OtherData["nodes"].(float64) != 4 {
		t.Errorf("otherData: %v", doc.OtherData)
	}
}

func TestWriteClusterNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCluster(&buf, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

// TestWriteSpansAllModes runs an instrumented distributed spMVM in all
// three communication modes and checks the exported Chrome trace: valid
// JSON, every rank present as a process with comm and gpu events, and
// the mode recorded on each event's args.
func TestWriteSpansAllModes(t *testing.T) {
	m := matgen.Random(4000, 8, 20, 1)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1
	}
	const p = 3
	for _, mode := range distmv.Modes() {
		spans := telemetry.NewSpanLog()
		if _, err := distmv.RunSpMVM(m, x, p, mode, distmv.Config{
			Iterations: 1, Telemetry: telemetry.NewRegistry(), Spans: spans,
		}); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var buf bytes.Buffer
		if err := WriteSpans(&buf, spans.Spans(), Meta{}); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v", mode, err)
		}
		cats := map[int]map[string]bool{}
		lastTS := -1.0
		for _, e := range doc.TraceEvents {
			if e["ph"] != "X" {
				continue
			}
			pid := int(e["pid"].(float64))
			if cats[pid] == nil {
				cats[pid] = map[string]bool{}
			}
			cats[pid][e["cat"].(string)] = true
			ts := e["ts"].(float64)
			if ts < lastTS {
				t.Errorf("%s: events out of timestamp order", mode)
			}
			lastTS = ts
			if e["cat"] == "net" {
				// mpi-lane message records carry peer/bytes args, not
				// the mode.
				continue
			}
			args := e["args"].(map[string]any)
			if args["mode"] != mode.Slug() {
				t.Errorf("%s: event mode arg %v", mode, args["mode"])
			}
		}
		for r := 0; r < p; r++ {
			if !cats[r]["comm"] || !cats[r]["gpu"] {
				t.Errorf("%s: rank %d categories %v", mode, r, cats[r])
			}
		}
	}
}

// TestWriteSpansDeterministic writes the same span set twice and
// expects byte-identical output.
func TestWriteSpansDeterministic(t *testing.T) {
	spans := []telemetry.Span{
		{Proc: 1, Lane: "gpu", Cat: "gpu", Name: "b", Start: 0, End: 2, Args: map[string]string{"k": "v", "a": "z"}},
		{Proc: 0, Lane: "host", Cat: "comm", Name: "a", Start: 0, End: 1},
		{Proc: 0, Lane: "solver", Cat: "solver", Name: "c", Start: 1, End: 3},
	}
	meta := Meta{Processes: map[int]string{0: "rank 0", 1: "rank 1"}, Other: map[string]any{"n": 2}}
	var b1, b2 bytes.Buffer
	if err := WriteSpans(&b1, spans, meta); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpans(&b2, spans, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("trace output not deterministic")
	}
}

// TestReadSpansRoundTrip writes spans — including an mpi lane carrying
// message args — and reads them back: lanes, categories, names, args
// and (to trace precision) times must survive.
func TestReadSpansRoundTrip(t *testing.T) {
	in := []telemetry.Span{
		{Proc: 0, Lane: "host", Cat: "comm", Name: "MPI_Waitall", Start: 0, End: 1e-3},
		{Proc: 0, Lane: "gpu", Cat: "gpu", Name: "spMVM", Start: 1e-3, End: 2e-3},
		{Proc: 1, Lane: "mpi", Cat: "net", Name: "send", Start: 0, End: 0.5e-3,
			Args: map[string]string{"peer": "0", "bytes": "4096", "arrives": "0.00125"}},
		{Proc: 1, Lane: "solver", Cat: "solver", Name: "CG iteration", Start: 0, End: 3e-3},
	}
	var buf bytes.Buffer
	if err := WriteSpans(&buf, in, Meta{LaneNames: map[string]string{
		"host": "host thread 0 (MPI)", "gpu": "GPU stream", "solver": "solver",
	}}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(in) {
		t.Fatalf("read %d spans, want %d", len(got), len(in))
	}
	bySig := map[string]telemetry.Span{}
	for _, s := range got {
		bySig[s.Lane+"/"+s.Name] = s
	}
	for _, want := range in {
		s, ok := bySig[want.Lane+"/"+want.Name]
		if !ok {
			t.Fatalf("lane %q name %q missing after round trip: %+v", want.Lane, want.Name, got)
		}
		if s.Proc != want.Proc || s.Cat != want.Cat {
			t.Errorf("%s/%s: proc/cat %d/%q, want %d/%q", want.Lane, want.Name, s.Proc, s.Cat, want.Proc, want.Cat)
		}
		if math.Abs(s.Start-want.Start) > 1e-12 || math.Abs(s.End-want.End) > 1e-12 {
			t.Errorf("%s/%s: times %g..%g, want %g..%g", want.Lane, want.Name, s.Start, s.End, want.Start, want.End)
		}
		for k, v := range want.Args {
			if s.Args[k] != v {
				t.Errorf("%s/%s: arg %s = %q, want %q", want.Lane, want.Name, k, s.Args[k], v)
			}
		}
	}
}
