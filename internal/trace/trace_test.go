package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"pjds/internal/distmv"
	"pjds/internal/matgen"
)

func TestWriteCluster(t *testing.T) {
	m := matgen.Random(4000, 8, 20, 1)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + math.Sin(float64(i))
	}
	res, err := distmv.RunSpMVM(m, x, 4, distmv.TaskMode, distmv.Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCluster(&buf, res); err != nil {
		t.Fatal(err)
	}
	// Valid JSON with the expected structure.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 metadata + ≥6 span events.
	if len(doc.TraceEvents) < 9 {
		t.Fatalf("only %d events", len(doc.TraceEvents))
	}
	var spans, meta int
	var sawGPU, sawHost bool
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) < 0 {
				t.Error("negative duration")
			}
			switch int(e["tid"].(float64)) {
			case 0:
				sawHost = true
			case 1:
				sawGPU = true
			}
		case "M":
			meta++
		}
	}
	if spans < 6 || meta != 3 {
		t.Errorf("spans=%d meta=%d", spans, meta)
	}
	if !sawGPU || !sawHost {
		t.Error("missing a lane")
	}
	if doc.OtherData["nodes"].(float64) != 4 {
		t.Errorf("otherData: %v", doc.OtherData)
	}
}

func TestWriteClusterNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCluster(&buf, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}
