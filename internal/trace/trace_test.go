package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"pjds/internal/distmv"
	"pjds/internal/matgen"
	"pjds/internal/telemetry"
)

func TestWriteCluster(t *testing.T) {
	m := matgen.Random(4000, 8, 20, 1)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1 + math.Sin(float64(i))
	}
	res, err := distmv.RunSpMVM(m, x, 4, distmv.TaskMode, distmv.Config{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCluster(&buf, res); err != nil {
		t.Fatal(err)
	}
	// Valid JSON with the expected structure.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	// 3 metadata + ≥6 span events.
	if len(doc.TraceEvents) < 9 {
		t.Fatalf("only %d events", len(doc.TraceEvents))
	}
	var spans, meta int
	var sawGPU, sawHost bool
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "X":
			spans++
			if e["dur"].(float64) < 0 {
				t.Error("negative duration")
			}
			switch int(e["tid"].(float64)) {
			case 0:
				sawHost = true
			case 1:
				sawGPU = true
			}
		case "M":
			meta++
		}
	}
	if spans < 6 || meta != 3 {
		t.Errorf("spans=%d meta=%d", spans, meta)
	}
	if !sawGPU || !sawHost {
		t.Error("missing a lane")
	}
	if doc.OtherData["nodes"].(float64) != 4 {
		t.Errorf("otherData: %v", doc.OtherData)
	}
}

func TestWriteClusterNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCluster(&buf, nil); err == nil {
		t.Fatal("nil result accepted")
	}
}

// TestWriteSpansAllModes runs an instrumented distributed spMVM in all
// three communication modes and checks the exported Chrome trace: valid
// JSON, every rank present as a process with comm and gpu events, and
// the mode recorded on each event's args.
func TestWriteSpansAllModes(t *testing.T) {
	m := matgen.Random(4000, 8, 20, 1)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1
	}
	const p = 3
	for _, mode := range distmv.Modes() {
		spans := telemetry.NewSpanLog()
		if _, err := distmv.RunSpMVM(m, x, p, mode, distmv.Config{
			Iterations: 1, Telemetry: telemetry.NewRegistry(), Spans: spans,
		}); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var buf bytes.Buffer
		if err := WriteSpans(&buf, spans.Spans(), Meta{}); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		var doc struct {
			TraceEvents []map[string]any `json:"traceEvents"`
		}
		if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
			t.Fatalf("%s: invalid JSON: %v", mode, err)
		}
		cats := map[int]map[string]bool{}
		lastTS := -1.0
		for _, e := range doc.TraceEvents {
			if e["ph"] != "X" {
				continue
			}
			pid := int(e["pid"].(float64))
			if cats[pid] == nil {
				cats[pid] = map[string]bool{}
			}
			cats[pid][e["cat"].(string)] = true
			ts := e["ts"].(float64)
			if ts < lastTS {
				t.Errorf("%s: events out of timestamp order", mode)
			}
			lastTS = ts
			args := e["args"].(map[string]any)
			if args["mode"] != mode.Slug() {
				t.Errorf("%s: event mode arg %v", mode, args["mode"])
			}
		}
		for r := 0; r < p; r++ {
			if !cats[r]["comm"] || !cats[r]["gpu"] {
				t.Errorf("%s: rank %d categories %v", mode, r, cats[r])
			}
		}
	}
}

// TestWriteSpansDeterministic writes the same span set twice and
// expects byte-identical output.
func TestWriteSpansDeterministic(t *testing.T) {
	spans := []telemetry.Span{
		{Proc: 1, Lane: "gpu", Cat: "gpu", Name: "b", Start: 0, End: 2, Args: map[string]string{"k": "v", "a": "z"}},
		{Proc: 0, Lane: "host", Cat: "comm", Name: "a", Start: 0, End: 1},
		{Proc: 0, Lane: "solver", Cat: "solver", Name: "c", Start: 1, End: 3},
	}
	meta := Meta{Processes: map[int]string{0: "rank 0", 1: "rank 1"}, Other: map[string]any{"n": 2}}
	var b1, b2 bytes.Buffer
	if err := WriteSpans(&b1, spans, meta); err != nil {
		t.Fatal(err)
	}
	if err := WriteSpans(&b2, spans, meta); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Error("trace output not deterministic")
	}
}
