package advisor

import (
	"testing"

	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

func rankFor(t *testing.T, m *matrix.CSR[float64]) []FormatScore {
	t.Helper()
	lens := make([]int, m.NRows)
	for i := range lens {
		lens[i] = m.RowLen(i)
	}
	return RankFormats(matrix.ComputeStats(m), lens, nil)
}

// TestRankFormatsAcrossZoo: structural invariants of the ranking on
// the generator zoo — all four contenders scored, ascending order,
// positive traffic, and the padding-sensitive orderings the Eq. 1
// model implies.
func TestRankFormatsAcrossZoo(t *testing.T) {
	zoo := map[string]*matrix.CSR[float64]{
		"banded":   matgen.Banded(600, 4, 20, 50, 7),
		"powerlaw": matgen.PowerLaw(500, 2, 80, 0.7, 11),
		"random":   matgen.Random(400, 3, 10, 13),
		"fem":      matgen.Stencil3D(8, 8, 8),
	}
	for name, m := range zoo {
		scores := rankFor(t, m)
		if len(scores) != 4 {
			t.Fatalf("%s: %d contenders, want 4", name, len(scores))
		}
		byName := map[string]FormatScore{}
		for i, s := range scores {
			byName[s.Format] = s
			if s.BytesPerNnz <= 0 || s.Reason == "" {
				t.Fatalf("%s: degenerate score %+v", name, s)
			}
			if i > 0 && scores[i-1].BytesPerNnz > s.BytesPerNnz {
				t.Fatalf("%s: ranking not ascending at %d", name, i)
			}
		}
		for _, want := range []string{"CRS", "pJDS", "SELL-C-σ", "CMRS"} {
			if _, ok := byName[want]; !ok {
				t.Fatalf("%s: missing contender %s", name, want)
			}
		}
		// The global sort can only shed padding relative to a σ = 256
		// window, and the scalar-CSR gather factor keeps CRS off the
		// top on every zoo matrix.
		if byName["pJDS"].BytesPerNnz > byName["SELL-C-σ"].BytesPerNnz+1e-9 {
			t.Errorf("%s: pJDS (β=%.3f) modeled above SELL-C-σ (β=%.3f)",
				name, byName["pJDS"].Beta, byName["SELL-C-σ"].Beta)
		}
		if scores[0].Format == "CRS" {
			t.Errorf("%s: uncoalesced CRS won the ranking", name)
		}
	}
}

// TestRankFormatsPrefersCMRSOnIrreducibleSkew: when even the global
// sort cannot remove padding (one dominant row inside a single
// chunk), the padding-free CMRS must outrank pJDS.
func TestRankFormatsPrefersCMRSOnIrreducibleSkew(t *testing.T) {
	coo := matrix.NewCOO[float64](33, 1200)
	for j := 0; j < 1000; j++ {
		coo.Add(0, j, 1)
	}
	for i := 1; i < 33; i++ {
		coo.Add(i, i, 1)
	}
	scores := rankFor(t, coo.ToCSR())
	pos := map[string]int{}
	for i, s := range scores {
		pos[s.Format] = i
	}
	if pos["CMRS"] > pos["pJDS"] {
		t.Fatalf("CMRS ranked below pJDS despite irreducible padding: %+v", scores)
	}
}

// TestRankFormatsPrefersPJDSOnRegularRows: near-constant row lengths
// leave β ≈ 0, so pJDS's 12 bytes/nnz beats CMRS's 13.
func TestRankFormatsPrefersPJDSOnRegularRows(t *testing.T) {
	scores := rankFor(t, matgen.Stencil3D(10, 10, 10))
	if scores[0].Format != "pJDS" && scores[0].Format != "SELL-C-σ" {
		t.Fatalf("winner on a regular stencil is %s, want a padded-sliced format: %+v", scores[0].Format, scores)
	}
	for _, s := range scores {
		if s.Format == "CMRS" && s.BytesPerNnz <= scores[0].BytesPerNnz {
			t.Fatalf("CMRS should pay its metadata byte on regular rows: %+v", scores)
		}
	}
}
