package advisor

import (
	"fmt"
	"sort"

	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/matrix"
)

// FormatScore is one contender in the format-selection ranking: the
// format (with the representative geometry scored), its Eq. 1-style
// modeled device traffic per non-zero, and the reasoning.
type FormatScore struct {
	// Format names the contender: "CRS", "pJDS", "SELL-C-σ" or "CMRS".
	Format string
	// C and Sigma are the SELL geometry scored (pJDS reports C=32,
	// Sigma=rows); Height is the CMRS strip height. Zero when not
	// applicable.
	C, Sigma, Height int
	// Beta is the predicted zero-padding overhead of the layout.
	Beta float64
	// BytesPerNnz is the modeled device traffic per non-zero:
	// 2·B_code of Eq. (1) scaled by the format's padding and metadata.
	BytesPerNnz float64
	// Reason is a one-line justification.
	Reason string
}

// RankFormats ranks the repository's GPU storage-format contenders —
// CRS, pJDS (= SELL-32-∞), a windowed SELL-C-σ, and CMRS — by modeled
// bytes moved per non-zero, cheapest first. The model is Eq. (1)'s
// per-nnz traffic 12 + 8α + 16/N_nzr with the format's own
// correction:
//
//   - pJDS/SELL: val+idx streams inflate by the zero-padding (1+β),
//     with β predicted exactly from the row lengths;
//   - CMRS: no padding, but one row-in-strip metadata byte per
//     non-zero;
//   - CRS: the scalar kernel's per-lane row walk breaks coalescing,
//     inflating val+idx by a device-dependent gather factor.
//
// lens are the matrix's row lengths (in original order); the ranking
// degrades gracefully to padding-free assumptions when lens is empty.
func RankFormats(st matrix.Stats, lens []int, dev *gpu.Device) []FormatScore {
	if dev == nil {
		dev = gpu.TeslaC2070()
	}
	alpha := EstimateAlpha(st, dev)
	nnzr := st.AvgRowLen
	if nnzr <= 0 {
		nnzr = 1
	}
	base := 8*alpha + 16/nnzr // RHS gather + LHS/rowLen streams, per nnz

	// Scalar-CSR gather factor: each lane streams its own row, so a
	// warp-step touches up to one segment per lane instead of sharing
	// them; half the segment granularity over the element size is the
	// simulator-observed midpoint between aligned and worst case.
	gather := float64(dev.SegmentBytes) / 16
	if gather < 1 {
		gather = 1
	}

	n := len(lens)
	betaPJDS := formats.EstimateBeta(lens, 32, n)
	sigma := 256
	if n > 0 && sigma > n {
		sigma = n
	}
	betaSELL := formats.EstimateBeta(lens, 32, sigma)

	out := []FormatScore{
		{
			Format: "CRS", BytesPerNnz: 12*gather + base,
			Reason: fmt.Sprintf("no padding but uncoalesced row walks: val+idx ×%.1f gather factor", gather),
		},
		{
			Format: "pJDS", C: 32, Sigma: n, Beta: betaPJDS,
			BytesPerNnz: 12*(1+betaPJDS) + base,
			Reason:      fmt.Sprintf("global sort leaves β = %.3f padding", betaPJDS),
		},
		{
			Format: "SELL-C-σ", C: 32, Sigma: sigma, Beta: betaSELL,
			BytesPerNnz: 12*(1+betaSELL) + base,
			Reason:      fmt.Sprintf("σ = %d windowed sort leaves β = %.3f padding without a global permutation", sigma, betaSELL),
		},
		{
			Format: "CMRS", Height: formats.DefaultStripHeight,
			BytesPerNnz: 13 + base,
			Reason:      "padding-free CSR stream plus one row-in-strip byte per non-zero",
		},
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].BytesPerNnz < out[j].BytesPerNnz })
	return out
}
