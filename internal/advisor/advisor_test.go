package advisor

import (
	"strings"
	"testing"

	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

func statsOf(t *testing.T, m *matrix.CSR[float64]) matrix.Stats {
	t.Helper()
	return matrix.ComputeStats(m)
}

// TestPaperMatrixVerdicts reproduces the §II-B / §III conclusions: the
// DLR and UHBR matrices are GPU-worthy, HMEp and sAMG are not.
func TestPaperMatrixVerdicts(t *testing.T) {
	cases := []struct {
		name    string
		keepCPU bool
	}{
		{"DLR1", false},
		{"DLR2", false},
		{"UHBR", false},
		{"HMEp", true},
		{"sAMG", true},
	}
	for _, c := range cases {
		tm, err := matgen.ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		m := tm.Generate(0.02, 1)
		rec := Recommend(statsOf(t, m), nil, nil)
		if c.keepCPU && rec.Offload == GPUWorthwhile {
			t.Errorf("%s: verdict %v, paper keeps it off the GPU", c.name, rec.Offload)
		}
		if !c.keepCPU && rec.Offload == StayOnCPU {
			t.Errorf("%s: verdict %v, paper runs it on the GPU", c.name, rec.Offload)
		}
		if len(rec.Reasons) == 0 {
			t.Errorf("%s: no reasons given", c.name)
		}
	}
}

func TestFormatChoiceConstantRows(t *testing.T) {
	// Constant row length: pJDS buys nothing (§II-A), expect ELLPACK-R.
	m := matgen.Stencil2D(200, 200)
	rec := Recommend(statsOf(t, m), nil, nil)
	// Interior rows have 5 entries, borders fewer — reduction under 5%.
	if rec.Format != "ELLPACK-R" {
		t.Errorf("format = %s for a constant-row matrix (est. red. %.1f%%)", rec.Format, rec.EstDataReductionPct)
	}
}

func TestFormatChoiceSpreadRows(t *testing.T) {
	m := matgen.PowerLaw(30000, 4, 200, 3, 1)
	rec := Recommend(statsOf(t, m), nil, nil)
	if rec.Format != "pJDS" {
		t.Errorf("format = %s for a power-law matrix", rec.Format)
	}
	if rec.EstDataReductionPct < 30 {
		t.Errorf("estimated reduction %.1f%% too low", rec.EstDataReductionPct)
	}
}

func TestFormatChoiceTinyLongRows(t *testing.T) {
	// Few rows, long rows: too few warps to saturate → ELLR-T.
	m := matgen.Random(512, 150, 200, 2)
	rec := Recommend(statsOf(t, m), nil, nil)
	if rec.Format != "ELLR-T" {
		t.Errorf("format = %s for a tiny long-row matrix", rec.Format)
	}
}

func TestAlphaEstimateBounds(t *testing.T) {
	banded := matgen.Banded(30000, 8, 16, 100, 3)
	scattered := matgen.Random(30000, 8, 16, 3)
	rb := Recommend(statsOf(t, banded), nil, nil)
	rs := Recommend(statsOf(t, scattered), nil, nil)
	if rb.AlphaEstimate >= rs.AlphaEstimate {
		t.Errorf("banded alpha %.2f not below scattered %.2f", rb.AlphaEstimate, rs.AlphaEstimate)
	}
	if rs.AlphaEstimate > 1 || rb.AlphaEstimate <= 0 {
		t.Errorf("alpha out of range: %.2f / %.2f", rb.AlphaEstimate, rs.AlphaEstimate)
	}
	// No-cache device pushes α to 1.
	c1060 := gpu.TeslaC1060()
	r := Recommend(statsOf(t, banded), c1060, nil)
	if r.AlphaEstimate != 1 {
		t.Errorf("no-cache alpha = %.2f, want 1", r.AlphaEstimate)
	}
}

func TestVerdictStringAndPenalty(t *testing.T) {
	for _, v := range []Verdict{StayOnCPU, GPUMarginal, GPUWorthwhile, Verdict(99)} {
		if v.String() == "" {
			t.Error("empty verdict name")
		}
	}
	m := matgen.Banded(10000, 5, 9, 50, 4)
	rec := Recommend(statsOf(t, m), nil, nil)
	if rec.PCIePenaltyPct <= 0 || rec.PCIePenaltyPct >= 100 {
		t.Errorf("penalty %.1f%%", rec.PCIePenaltyPct)
	}
	if !strings.Contains(strings.Join(rec.Reasons, "\n"), "Eq.") {
		t.Error("reasons do not cite the model")
	}
}

func TestEmptyMatrixDoesNotPanic(t *testing.T) {
	rec := Recommend(matrix.Stats{}, nil, nil)
	if rec.Format == "" {
		t.Error("no format for empty stats")
	}
}
