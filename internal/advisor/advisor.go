// Package advisor operationalizes the paper's format and offload
// guidance: given a matrix's structure statistics and a device, it
// answers the two questions §II poses — is the GPU worth using at all
// (the Eq. 3/4 PCIe analysis), and which storage format should hold
// the matrix (the §II-A data-reduction and utilization discussion).
package advisor

import (
	"fmt"

	"pjds/internal/gpu"
	"pjds/internal/matrix"
	"pjds/internal/pcie"
	"pjds/internal/perfmodel"
)

// Verdict is the offload recommendation.
type Verdict int

// Offload verdicts.
const (
	// StayOnCPU: PCIe transfers dominate (≥50% penalty regime).
	StayOnCPU Verdict = iota
	// GPUMarginal: between the 50% and 10% penalty bounds.
	GPUMarginal
	// GPUWorthwhile: PCIe penalty below 10%, or vectors can stay
	// device-resident.
	GPUWorthwhile
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case StayOnCPU:
		return "stay on CPU"
	case GPUMarginal:
		return "GPU marginal"
	case GPUWorthwhile:
		return "GPU worthwhile"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Recommendation is the advisor's output.
type Recommendation struct {
	// Offload is the Eq. (3)/(4) verdict for spMVM with host-resident
	// vectors.
	Offload Verdict
	// PCIePenaltyPct is the estimated share of wallclock spent on the
	// bus (Eq. 2), with the α estimate below.
	PCIePenaltyPct float64
	// Format is the storage-format recommendation for the device.
	Format string
	// EstDataReductionPct estimates pJDS's saving over ELLPACK from
	// the row-length statistics (1 − N_nzr/N^max_nzr).
	EstDataReductionPct float64
	// AlphaEstimate is the locality-derived guess for Eq. (1)'s α.
	AlphaEstimate float64
	// Reasons explains every decision, one line each.
	Reasons []string
}

// EstimateAlpha guesses Eq. (1)'s RHS reuse factor α from locality
// statistics: if the average per-row column span (bytes) fits the
// RHS-visible share of the L2, gathers mostly hit; otherwise they
// mostly miss. Interpolates between the ideal 1/N_nzr and 1.
func EstimateAlpha(st matrix.Stats, dev *gpu.Device) float64 {
	if dev == nil {
		dev = gpu.TeslaC2070()
	}
	cacheBytes := 0.0
	if dev.L2 != nil {
		cacheBytes = float64(dev.L2.Bytes) * dev.L2.RHSFraction
	}
	spanBytes := st.AvgColSpan * 8
	alpha := 1.0
	if st.AvgRowLen > 0 {
		ideal := perfmodel.AlphaIdeal(st.AvgRowLen)
		switch {
		case cacheBytes == 0:
			alpha = 1
		case spanBytes <= cacheBytes:
			alpha = ideal + (1-ideal)*0.15 // resident window: near-ideal reuse
		case spanBytes <= 4*cacheBytes:
			alpha = ideal + (1-ideal)*0.5
		default:
			alpha = 1
		}
	}
	return alpha
}

// Recommend analyses the statistics of a matrix for the given device
// and PCIe link (nil selects the Fermi C2070 and PCIe 2.0 defaults).
func Recommend(st matrix.Stats, dev *gpu.Device, link *pcie.Link) Recommendation {
	if dev == nil {
		dev = gpu.TeslaC2070()
	}
	if link == nil {
		link = pcie.Gen2x16()
	}
	var rec Recommendation
	alpha := EstimateAlpha(st, dev)
	rec.AlphaEstimate = alpha

	// Offload verdict via Eqs. (3)/(4).
	model := perfmodel.Model{BGPU: dev.Bandwidth(), BPCI: link.BytesPerSecond}
	lo := model.MaxNnzrFor50PctPenalty(alpha)
	hi := model.MinNnzrFor10PctPenalty(alpha)
	rec.PCIePenaltyPct = 100 * model.PCIPenalty(max(st.Rows, 1), max(st.AvgRowLen, 1), alpha)
	switch {
	case st.AvgRowLen <= lo:
		rec.Offload = StayOnCPU
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"N_nzr %.1f ≤ %.1f: PCIe transfers cost at least as much as the kernel (Eq. 3)", st.AvgRowLen, lo))
	case st.AvgRowLen >= hi:
		rec.Offload = GPUWorthwhile
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"N_nzr %.1f ≥ %.1f: PCIe penalty below 10%% (Eq. 4)", st.AvgRowLen, hi))
	default:
		rec.Offload = GPUMarginal
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"N_nzr %.1f between the Eq. 3/4 bounds (%.1f, %.1f): offload pays only if vectors stay device-resident",
			st.AvgRowLen, lo, hi))
	}

	// Format recommendation.
	if st.MaxRowLen > 0 {
		rec.EstDataReductionPct = 100 * (1 - st.AvgRowLen/float64(st.MaxRowLen))
	}
	warps := (st.Rows + dev.WarpSize - 1) / dev.WarpSize
	switch {
	case warps < dev.NumMPs*int(dev.WarpsToSaturate) && st.AvgRowLen >= 64:
		rec.Format = "ELLR-T"
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"only %d warps of row-parallel work for %d MPs with long rows: use T threads per row", warps, dev.NumMPs))
	case rec.EstDataReductionPct < 5:
		rec.Format = "ELLPACK-R"
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"near-constant row lengths (est. reduction %.1f%%): pJDS's sort buys nothing, keep ELLPACK-R",
			rec.EstDataReductionPct))
	default:
		rec.Format = "pJDS"
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"row-length spread (est. reduction %.1f%%, width %.1f): pJDS shrinks the footprint at equal or better speed",
			rec.EstDataReductionPct, st.RelativeWidth))
	}
	return rec
}
