package matgen

import (
	"math"
	"math/rand"

	"pjds/internal/matrix"
)

// Generic generators for examples, tests and ablations.

// Banded generates an n×n matrix whose rows have between minLen and
// maxLen entries placed within ±width of the diagonal (wrapping at
// the edges), always including the diagonal. Strong RHS locality.
func Banded(n, minLen, maxLen, width int, seed int64) *matrix.CSR[float64] {
	if maxLen < minLen {
		minLen, maxLen = maxLen, minLen
	}
	if minLen < 1 {
		minLen = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(n, int64(n)*int64(maxLen+minLen)/2)
	s := newScratch()
	for i := 0; i < n; i++ {
		s.reset()
		l := minLen + rng.Intn(maxLen-minLen+1)
		s.add(i, n, 2+rng.Float64())
		if rem := l - 1; rem > 0 {
			s.bandFill(rng, i, n, rem, width)
		}
		s.emit(b)
	}
	return b.finish()
}

// Random generates an n×n matrix with uniformly random column
// positions — the worst case for RHS cache reuse (α → 1).
func Random(n, minLen, maxLen int, seed int64) *matrix.CSR[float64] {
	if maxLen < minLen {
		minLen, maxLen = maxLen, minLen
	}
	if minLen < 1 {
		minLen = 1
	}
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(n, int64(n)*int64(maxLen+minLen)/2)
	s := newScratch()
	for i := 0; i < n; i++ {
		s.reset()
		l := minLen + rng.Intn(maxLen-minLen+1)
		s.add(i, n, 2+rng.Float64())
		for len(s.cols) < l {
			s.add(rng.Intn(n), n, symValue(rng))
		}
		s.emit(b)
	}
	return b.finish()
}

// PowerLaw generates an n×n matrix whose row lengths follow a
// truncated power law: a few very long rows over a mass of short ones
// — the regime where pJDS crushes ELLPACK's footprint (§II-A's
// extreme-case analysis).
func PowerLaw(n, minLen, maxLen int, exponent float64, seed int64) *matrix.CSR[float64] {
	if maxLen < minLen {
		minLen, maxLen = maxLen, minLen
	}
	if minLen < 1 {
		minLen = 1
	}
	if exponent <= 0 {
		exponent = 2
	}
	rng := rand.New(rand.NewSource(seed))
	b := newBuilder(n, int64(n)*int64(minLen)*3)
	s := newScratch()
	span := float64(maxLen - minLen)
	for i := 0; i < n; i++ {
		s.reset()
		u := rng.Float64()
		l := minLen + int(span*math.Pow(u, exponent))
		s.add(i, n, 2+rng.Float64())
		for len(s.cols) < l {
			s.add(rng.Intn(n), n, symValue(rng))
		}
		s.emit(b)
	}
	return b.finish()
}

// Stencil3D generates the 7-point Laplacian on an nx×ny×nz grid —
// the 3D analogue used for volume problems (SPD, constant interior
// row length 7).
func Stencil3D(nx, ny, nz int) *matrix.CSR[float64] {
	n := nx * ny * nz
	b := newBuilder(n, int64(n)*7)
	cols := make([]int32, 0, 7)
	vals := make([]float64, 0, 7)
	idx := func(x, y, z int) int { return (z*ny+y)*nx + x }
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				cols = cols[:0]
				vals = vals[:0]
				add := func(c int, v float64) {
					cols = append(cols, int32(c))
					vals = append(vals, v)
				}
				i := idx(x, y, z)
				if z > 0 {
					add(idx(x, y, z-1), -1)
				}
				if y > 0 {
					add(idx(x, y-1, z), -1)
				}
				if x > 0 {
					add(i-1, -1)
				}
				add(i, 6)
				if x < nx-1 {
					add(i+1, -1)
				}
				if y < ny-1 {
					add(idx(x, y+1, z), -1)
				}
				if z < nz-1 {
					add(idx(x, y, z+1), -1)
				}
				b.addRow(cols, vals)
			}
		}
	}
	return b.finish()
}

// Tridiagonal generates the classic (-1, 2, -1) operator — the
// simplest SPD system with a known spectrum, handy for solver tests.
func Tridiagonal(n int) *matrix.CSR[float64] {
	b := newBuilder(n, int64(n)*3)
	cols := make([]int32, 0, 3)
	vals := make([]float64, 0, 3)
	for i := 0; i < n; i++ {
		cols = cols[:0]
		vals = vals[:0]
		if i > 0 {
			cols = append(cols, int32(i-1))
			vals = append(vals, -1)
		}
		cols = append(cols, int32(i))
		vals = append(vals, 2)
		if i < n-1 {
			cols = append(cols, int32(i+1))
			vals = append(vals, -1)
		}
		b.addRow(cols, vals)
	}
	return b.finish()
}

// RMAT generates a scale-free graph adjacency matrix by recursive
// quadrant subdivision (Chakrabarti et al.), the standard stand-in for
// social/web graphs: power-law degrees and no locality whatsoever —
// the hardest case for every ELLPACK descendant and a stress test for
// pJDS's sorting. Self-loops are added on the diagonal so iterative
// methods stay well-defined.
func RMAT(scaleExp int, edgeFactor int, seed int64) *matrix.CSR[float64] {
	if scaleExp < 1 {
		scaleExp = 1
	}
	if edgeFactor < 1 {
		edgeFactor = 8
	}
	n := 1 << scaleExp
	rng := rand.New(rand.NewSource(seed ^ 0x524d4154))
	const a, b, c = 0.57, 0.19, 0.19 // standard Graph500 parameters
	coo := matrix.NewCOO[float64](n, n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, float64(edgeFactor)) // dominant diagonal
	}
	for e := 0; e < n*edgeFactor; e++ {
		row, col := 0, 0
		for bit := n >> 1; bit > 0; bit >>= 1 {
			u := rng.Float64()
			switch {
			case u < a:
			case u < a+b:
				col |= bit
			case u < a+b+c:
				row |= bit
			default:
				row |= bit
				col |= bit
			}
		}
		coo.Add(row, col, symValue(rng))
	}
	return coo.ToCSR()
}

// Stencil2D generates the 5-point Laplacian on a nx×ny grid — the
// constant-row-length case where ELLPACK and pJDS coincide, and a
// classic CG/solver test operator (symmetric positive definite).
func Stencil2D(nx, ny int) *matrix.CSR[float64] {
	n := nx * ny
	b := newBuilder(n, int64(n)*5)
	cols := make([]int32, 0, 5)
	vals := make([]float64, 0, 5)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			cols = cols[:0]
			vals = vals[:0]
			i := y*nx + x
			add := func(c int, v float64) {
				cols = append(cols, int32(c))
				vals = append(vals, v)
			}
			if y > 0 {
				add(i-nx, -1)
			}
			if x > 0 {
				add(i-1, -1)
			}
			add(i, 4)
			if x < nx-1 {
				add(i+1, -1)
			}
			if y < ny-1 {
				add(i+nx, -1)
			}
			b.addRow(cols, vals)
		}
	}
	return b.finish()
}
