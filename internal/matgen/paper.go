package matgen

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"pjds/internal/matrix"
)

// TestMatrix describes one of the paper's §I-C test matrices together
// with its synthetic generator and the published reference figures the
// reproduction is validated against.
type TestMatrix struct {
	Name        string
	Description string
	// Published figures (§I-C, Fig. 3, Table I).
	PaperN    int
	PaperNnz  int64
	PaperNnzr float64
	// PaperReductionPct is Table I's pJDS-vs-ELLPACK data reduction;
	// NaN when the paper does not report it (UHBR).
	PaperReductionPct float64
	// DefaultScale shrinks the matrix on memory-limited hosts (1.0 =
	// full published size); see the DESIGN.md scale note.
	DefaultScale float64
	// Generate builds the synthetic matrix at the given scale.
	Generate func(scale float64, seed int64) *matrix.CSR[float64]
}

// Catalog returns the five §I-C matrices in the paper's order.
func Catalog() []TestMatrix {
	return []TestMatrix{
		{
			Name:              "DLR1",
			Description:       "adjoint CFD problem (TAU), 46417 grid points × 6 unknowns",
			PaperN:            278502,
			PaperNnz:          40025628,
			PaperNnzr:         144,
			PaperReductionPct: 17.5,
			DefaultScale:      1,
			Generate:          DLR1,
		},
		{
			Name:              "DLR2",
			Description:       "aerodynamic gradients (TAU), dense 5x5 subblocks",
			PaperN:            541980,
			PaperNnz:          170610950,
			PaperNnzr:         315,
			PaperReductionPct: 48.0,
			DefaultScale:      1,
			Generate:          DLR2,
		},
		{
			Name:              "HMEp",
			Description:       "Holstein-Hubbard chain, 6 sites/6 electrons/15 phonons",
			PaperN:            6201600,
			PaperNnz:          92527872,
			PaperNnzr:         14.9,
			PaperReductionPct: 36.0,
			DefaultScale:      1,
			Generate:          HMEp,
		},
		{
			Name:              "sAMG",
			Description:       "adaptive multigrid for a Poisson problem on a car geometry",
			PaperN:            3405035,
			PaperNnz:          24027759,
			PaperNnzr:         7.1,
			PaperReductionPct: 68.4,
			DefaultScale:      1,
			Generate:          SAMG,
		},
		{
			Name:              "UHBR",
			Description:       "aeroelastic turbine-fan stability (TRACE linearized NS)",
			PaperN:            4500000,
			PaperNnz:          553500000,
			PaperNnzr:         123,
			PaperReductionPct: math.NaN(),
			DefaultScale:      0.25, // full size needs > 8 GB; see DESIGN.md
			Generate:          UHBR,
		},
	}
}

// ByName finds a catalog entry case-insensitively.
func ByName(name string) (TestMatrix, error) {
	for _, tm := range Catalog() {
		if strings.EqualFold(tm.Name, name) {
			return tm, nil
		}
	}
	return TestMatrix{}, fmt.Errorf("matgen: unknown test matrix %q", name)
}

// HMEp generates the Holstein-Hubbard-model matrix: very sparse
// (N_nzr ≈ 15), dimension 6.2×10⁶, with contiguous off-diagonals at
// distance 15000 (the phonon coupling) and a narrow electronic band
// near the diagonal. Row lengths spread over 6..24, giving the ≈36%
// pJDS data reduction of Table I.
func HMEp(scale float64, seed int64) *matrix.CSR[float64] {
	n := scaleDim(6201600, scale)
	rng := rand.New(rand.NewSource(seed ^ 0x484d4570))
	offDiag := 15000
	if offDiag > n/3 {
		offDiag = n / 3 // keep the structure on scaled-down instances
	}
	// The many-body tensor-product basis couples states at strides of
	// all magnitudes; the resulting RHS access is essentially
	// cache-hostile (the paper's model puts HMEp near α = 1).
	hopWidth := n / 3
	if hopWidth < 10 {
		hopWidth = 10
	}
	b := newBuilder(n, int64(float64(n)*15.2))
	s := newScratch()
	// Target lengths: triangular on [6, 24], mean 15, locally
	// correlated (phonon-number blocks have similar row structure).
	lens := make([]int, n)
	for i := range lens {
		lens[i] = 6 + rng.Intn(10) + rng.Intn(10)
	}
	sortWindowsDesc(lens, 512)
	for i := 0; i < n; i++ {
		s.reset()
		l := lens[i]
		s.add(i, n, 2+rng.Float64()) // diagonal (diagonally dominant-ish)
		if offDiag > 0 {
			s.add(i-offDiag, n, symValue(rng)) // phonon off-diagonals
			s.add(i+offDiag, n, symValue(rng))
			if l > 16 {
				s.add(i-2*offDiag, n, symValue(rng))
				s.add(i+2*offDiag, n, symValue(rng))
			}
		}
		if rem := l - len(s.cols); rem > 0 {
			// Electronic hopping: part of the couplings stay near the
			// diagonal (same phonon block), the rest are spread over a
			// wide index window by the tensor-product basis ordering —
			// the paper's model puts HMEp's RHS reuse near α = 1.
			near := (2 * rem) / 5
			s.bandFill(rng, i, n, near, 48)
			if far := l - len(s.cols); far > 0 {
				s.bandFill(rng, i, n, far, hopWidth)
			}
		}
		s.emit(b)
	}
	return b.finish()
}

// SAMG generates the adaptive-multigrid matrix: N = 3.4×10⁶, N_nzr ≈
// 7, short rows dominating the weight and a tail up to 22 (more than
// 4× the shortest row), matching Fig. 3's sAMG histogram and the
// 68.4% data reduction.
func SAMG(scale float64, seed int64) *matrix.CSR[float64] {
	n := scaleDim(3405035, scale)
	rng := rand.New(rand.NewSource(seed ^ 0x73414d47))
	width := 2000
	if width > n/2 {
		width = n / 2
	}
	b := newBuilder(n, int64(float64(n)*7.5))
	s := newScratch()
	for i := 0; i < n; i++ {
		s.reset()
		var l int
		switch u := rng.Float64(); {
		case u < 0.72:
			l = 5 + rng.Intn(3) // fine-grid Poisson stencils
		case u < 0.96:
			l = 8 + rng.Intn(4) // irregular boundary rows
		default:
			l = 12 + rng.Intn(11) // coarse-grid/interpolation rows
		}
		s.add(i, n, 4+rng.Float64()) // diagonal
		if rem := l - 1; rem > 0 {
			s.bandFill(rng, i, n, rem, width)
		}
		s.emit(b)
	}
	return b.finish()
}

// blockDegrees generates the per-point stencil degree for the
// CFD-style block matrices.
type blockSpec struct {
	points int
	// bu is the block size: unknowns per grid point (6 for DLR1, 5
	// for DLR2/UHBR).
	bu int
	// width is the neighbour-index locality window in points.
	width int
	// degree samples the number of coupled points (including self).
	degree func(rng *rand.Rand) int
	// degreeWindow, when > 1, sorts the sampled degrees descending
	// within windows of that many points, adding the spatial
	// correlation of real meshes (refined regions are contiguous).
	degreeWindow int
	seed         int64
	nnzEst       int64
}

// blockMatrix builds a point-block matrix: every grid point couples to
// degree-1 neighbouring points plus itself, and each coupling is a
// dense bu×bu block — DLR2 "consists entirely of dense 5×5 subblocks".
// All bu rows of a point share one sparsity pattern (DLR1's "6
// unknowns in each point").
func blockMatrix(spec blockSpec) *matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(spec.seed))
	n := spec.points * spec.bu
	b := newBuilder(n, spec.nnzEst)
	degs := make([]int, spec.points)
	for p := range degs {
		d := spec.degree(rng)
		if d < 1 {
			d = 1
		}
		degs[p] = d
	}
	sortWindowsDesc(degs, spec.degreeWindow)
	neigh := make([]int, 0, 256)
	seen := make(map[int]bool, 256)
	cols := make([]int32, 0, 1024)
	vals := make([]float64, 0, 1024)
	for p := 0; p < spec.points; p++ {
		deg := degs[p]
		neigh = neigh[:0]
		for k := range seen {
			delete(seen, k)
		}
		neigh = append(neigh, p)
		seen[p] = true
		for len(neigh) < deg {
			q := p + rng.Intn(2*spec.width+1) - spec.width
			if q < 0 || q >= spec.points || seen[q] {
				continue
			}
			seen[q] = true
			neigh = append(neigh, q)
		}
		sort.Ints(neigh)
		for u := 0; u < spec.bu; u++ {
			cols = cols[:0]
			vals = vals[:0]
			row := p*spec.bu + u
			for _, q := range neigh {
				for v := 0; v < spec.bu; v++ {
					c := q*spec.bu + v
					cols = append(cols, int32(c))
					if c == row {
						vals = append(vals, float64(deg*spec.bu)+rng.Float64()) // dominant diagonal
					} else {
						vals = append(vals, symValue(rng))
					}
				}
			}
			b.addRow(cols, vals)
		}
	}
	return b.finish()
}

// DLR1 generates the adjoint-CFD matrix: 46417 points × 6 unknowns
// (N = 278502), N_nzr ≈ 144, with 80% of the rows within 80% of the
// maximum length (§II-A: lowest relative width of the test set,
// max/min ≈ 2, hence the smallest pJDS gain).
func DLR1(scale float64, seed int64) *matrix.CSR[float64] {
	points := scaleDim(46417, scale)
	return blockMatrix(blockSpec{
		points: points,
		bu:     6,
		// The adjoint problem's unstructured mesh couples points far
		// apart in index space, which both limits RHS cache reuse and
		// produces the large halos behind Fig. 5a's strong-scaling
		// breakdown.
		width: 8000,
		degree: func(rng *rand.Rand) int {
			switch u := rng.Float64(); {
			case u < 0.81:
				return 24 + rng.Intn(6) // 24..29: the ≈80% cluster near the max
			case u < 0.815:
				return 30 // rare densest stencils set N^max_nzr
			default:
				return 13 + rng.Intn(11) // 13..23 tail down to ≈ max/2
			}
		},
		seed:   seed ^ 0x444c5231,
		nnzEst: int64(points) * 6 * 148,
	})
}

// DLR2 generates the aerodynamic-gradients matrix: 108396 points × 5
// unknowns (N = 541980), dense 5×5 subblocks, N_nzr ≈ 315 with a wide
// decaying degree distribution up to ≈ 605 non-zeros per row — wide
// enough for the 48% data reduction, and (in DP, as ELLPACK-R) too big
// for a 3 GB C2050.
func DLR2(scale float64, seed int64) *matrix.CSR[float64] {
	points := scaleDim(108396, scale)
	return blockMatrix(blockSpec{
		points: points,
		bu:     5,
		width:  12000,
		degree: func(rng *rand.Rand) int {
			u := rng.Float64()
			return 25 + int(96*math.Pow(u, 1.5)) // 25..121, mean ≈ 63
		},
		degreeWindow: 64, // mesh regions have locally similar stencils
		seed:         seed ^ 0x444c5232,
		nnzEst:       int64(points) * 5 * 320,
	})
}

// UHBR generates the turbine-fan matrix: 900000 points × 5 unknowns
// (N = 4.5×10⁶ at scale 1), N_nzr ≈ 123. The paper reports no
// row-length histogram for it; a moderate triangular degree spread is
// used. Catalog().DefaultScale is 0.25 because the full matrix
// (≈ 5.5×10⁸ non-zeros) needs more memory than typical CI hosts have.
func UHBR(scale float64, seed int64) *matrix.CSR[float64] {
	points := scaleDim(900000, scale)
	return blockMatrix(blockSpec{
		points: points,
		bu:     5,
		// Wide enough that the halo exchange matters at 32 nodes (the
		// task-mode gap of Fig. 5b), yet weaker communication relative
		// to compute than DLR1 (§III-B).
		width: 8000,
		degree: func(rng *rand.Rand) int {
			return 15 + rng.Intn(10) + rng.Intn(10) // 15..33, mean ≈ 24
		},
		seed:   seed ^ 0x55484252,
		nnzEst: int64(points) * 5 * 125,
	})
}
