package matgen

import (
	"math"
	"testing"

	"pjds/internal/formats"
	"pjds/internal/matrix"
)

// Scaled-down generation keeps the tests fast; the distribution
// targets are scale-invariant by construction.
const testScale = 0.02

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("%d catalog entries, want 5", len(cat))
	}
	names := map[string]bool{}
	for _, tm := range cat {
		if tm.Name == "" || tm.Generate == nil || tm.PaperN <= 0 || tm.PaperNnz <= 0 {
			t.Errorf("incomplete entry %+v", tm.Name)
		}
		names[tm.Name] = true
	}
	for _, want := range []string{"DLR1", "DLR2", "HMEp", "sAMG", "UHBR"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestByName(t *testing.T) {
	tm, err := ByName("dlr1")
	if err != nil || tm.Name != "DLR1" {
		t.Errorf("ByName(dlr1) = %v, %v", tm.Name, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	for _, tm := range Catalog() {
		a := tm.Generate(0.005, 7)
		b := tm.Generate(0.005, 7)
		if !a.Equal(b, 0) {
			t.Errorf("%s: not deterministic in seed", tm.Name)
		}
		c := tm.Generate(0.005, 8)
		if a.Equal(c, 0) {
			t.Errorf("%s: seed has no effect", tm.Name)
		}
	}
}

// TestGeneratorTargets verifies every generator hits the published
// N_nzr and (where reported) the Table I data-reduction band.
func TestGeneratorTargets(t *testing.T) {
	for _, tm := range Catalog() {
		m := tm.Generate(testScale, 1)
		st := matrix.ComputeStats(m)
		// Dimension scales with the block size granularity.
		wantN := int(float64(tm.PaperN) * testScale)
		if math.Abs(float64(st.Rows-wantN))/float64(wantN) > 0.01 {
			t.Errorf("%s: N = %d, want ≈ %d", tm.Name, st.Rows, wantN)
		}
		if math.Abs(st.AvgRowLen-tm.PaperNnzr)/tm.PaperNnzr > 0.07 {
			t.Errorf("%s: N_nzr = %.1f, want ≈ %.1f", tm.Name, st.AvgRowLen, tm.PaperNnzr)
		}
		if math.IsNaN(tm.PaperReductionPct) {
			continue
		}
		ell := formats.NewELLPACK(m)
		p, err := formats.NewPJDS(m)
		if err != nil {
			t.Fatal(err)
		}
		red := 100 * formats.DataReduction[float64](ell, p)
		if math.Abs(red-tm.PaperReductionPct) > 6 {
			t.Errorf("%s: data reduction %.1f%%, paper says %.1f%%", tm.Name, red, tm.PaperReductionPct)
		}
	}
}

func TestHMEpOffDiagonals(t *testing.T) {
	m := HMEp(0.02, 3) // n ≈ 124032 > 3×15000: real off-diagonal distance
	n := m.NRows
	if n <= 45000 {
		t.Skip("scaled instance too small for the 15000 off-diagonal")
	}
	// A row in the middle must couple at exactly ±15000.
	found := 0
	for i := 40000; i < 40100; i++ {
		if m.At(i, i-15000) != 0 && m.At(i, i+15000) != 0 {
			found++
		}
	}
	if found < 90 {
		t.Errorf("only %d/100 rows carry the ±15000 off-diagonals", found)
	}
}

func TestSAMGShape(t *testing.T) {
	m := SAMG(testScale, 4)
	st := matrix.ComputeStats(m)
	if st.MinRowLen < 5 {
		t.Errorf("min row len = %d, want ≥ 5", st.MinRowLen)
	}
	if st.MaxRowLen != 22 {
		t.Errorf("max row len = %d, want 22", st.MaxRowLen)
	}
	// §II-A: "the longest row of sAMG is more than four times larger
	// than the smallest one".
	if st.RelativeWidth <= 4 {
		t.Errorf("relative width %.1f, want > 4", st.RelativeWidth)
	}
	// "short rows account for most of the weight": median at the
	// bottom of the range.
	if med := matrix.RowLenQuantile(m, 0.5); med > 7 {
		t.Errorf("median row length %d, want ≤ 7", med)
	}
}

func TestDLR1Shape(t *testing.T) {
	m := DLR1(testScale, 5)
	st := matrix.ComputeStats(m)
	// §II-A: relative width ≈ 2, 80% of rows ≥ 0.8·max.
	if st.RelativeWidth > 2.8 {
		t.Errorf("relative width %.2f, want ≈ 2", st.RelativeWidth)
	}
	q20 := matrix.RowLenQuantile(m, 0.2)
	if float64(q20) < 0.8*float64(st.MaxRowLen) {
		t.Errorf("20th percentile %d below 0.8·max (%d)", q20, st.MaxRowLen)
	}
	// 6 unknowns per point: row lengths are multiples of 6 and the six
	// rows of one point share a pattern.
	if st.MaxRowLen%6 != 0 || st.MinRowLen%6 != 0 {
		t.Errorf("row lengths not multiples of 6: min %d max %d", st.MinRowLen, st.MaxRowLen)
	}
	c0, _ := m.Row(0)
	c5, _ := m.Row(5)
	if len(c0) != len(c5) {
		t.Error("rows of one point differ in pattern length")
	}
	for k := range c0 {
		if c0[k] != c5[k] {
			t.Fatal("rows of one point differ in columns")
		}
	}
}

func TestDLR2DenseBlocks(t *testing.T) {
	m := DLR2(0.01, 6)
	// Every stored entry belongs to a fully dense 5×5 block.
	for i := 0; i < 25 && i < m.NRows; i++ {
		cols, _ := m.Row(i)
		for _, c := range cols {
			blockCol := int(c) / 5 * 5
			blockRow := i / 5 * 5
			for bi := blockRow; bi < blockRow+5; bi++ {
				for bj := blockCol; bj < blockCol+5; bj++ {
					if m.At(bi, bj) == 0 {
						t.Fatalf("entry (%d,%d) not inside a dense 5x5 block: (%d,%d) empty", i, c, bi, bj)
					}
				}
			}
		}
	}
}

func TestUHBRScaleDefault(t *testing.T) {
	tm, err := ByName("UHBR")
	if err != nil {
		t.Fatal(err)
	}
	if tm.DefaultScale >= 1 {
		t.Error("UHBR must default to a reduced scale (memory gate, DESIGN.md)")
	}
	m := UHBR(0.004, 7)
	st := matrix.ComputeStats(m)
	if math.Abs(st.AvgRowLen-123)/123 > 0.07 {
		t.Errorf("UHBR N_nzr = %.1f", st.AvgRowLen)
	}
}

func TestDiagonalAlwaysPresent(t *testing.T) {
	for _, tm := range Catalog() {
		m := tm.Generate(0.005, 9)
		for i := 0; i < m.NRows; i += m.NRows/50 + 1 {
			if m.At(i, i) == 0 {
				t.Errorf("%s: zero diagonal at row %d", tm.Name, i)
				break
			}
		}
	}
}

func TestBandedGenerator(t *testing.T) {
	m := Banded(1000, 3, 9, 20, 11)
	st := matrix.ComputeStats(m)
	if st.MinRowLen < 1 || st.MaxRowLen > 9 {
		t.Errorf("row lengths [%d,%d] outside [1,9]", st.MinRowLen, st.MaxRowLen)
	}
	// Locality: average column span within the (wrapped) band.
	if st.AvgColSpan > 990 {
		t.Errorf("avg col span %.0f: band not local", st.AvgColSpan)
	}
	// Swapped min/max are tolerated.
	m2 := Banded(100, 9, 3, 20, 11)
	if matrix.ComputeStats(m2).MaxRowLen > 9 {
		t.Error("swapped bounds mishandled")
	}
}

func TestRandomGenerator(t *testing.T) {
	m := Random(2000, 5, 10, 13)
	st := matrix.ComputeStats(m)
	if st.AvgRowLen < 5 || st.AvgRowLen > 10 {
		t.Errorf("avg row len %.1f", st.AvgRowLen)
	}
	// Uniform columns → huge spans.
	if st.AvgColSpan < 1000 {
		t.Errorf("avg col span %.0f: expected scattered columns", st.AvgColSpan)
	}
}

func TestPowerLawGenerator(t *testing.T) {
	m := PowerLaw(5000, 4, 400, 4, 17)
	st := matrix.ComputeStats(m)
	if st.MaxRowLen < 100 {
		t.Errorf("max row len %d: power law tail missing", st.MaxRowLen)
	}
	med := matrix.RowLenQuantile(m, 0.5)
	if med > 30 {
		t.Errorf("median %d: mass should sit at short rows", med)
	}
	// Degenerate exponent falls back.
	if matrix.ComputeStats(PowerLaw(100, 4, 40, -1, 17)).Rows != 100 {
		t.Error("fallback exponent")
	}
}

func TestStencil3D(t *testing.T) {
	m := Stencil3D(5, 6, 7)
	if m.NRows != 210 {
		t.Fatalf("N = %d", m.NRows)
	}
	// Interior rows have 7 entries; the (0,0,0) corner has 4.
	if m.RowLen(0) != 4 {
		t.Errorf("corner row len = %d", m.RowLen(0))
	}
	// Interior index (2,3,3): (3*6+3)*5+2 = 107.
	if m.RowLen(107) != 7 {
		t.Errorf("interior row len = %d", m.RowLen(107))
	}
	if !m.Equal(m.Transpose(), 0) {
		t.Error("3D stencil not symmetric")
	}
	// Row sums: interior rows sum to 0 (Laplacian), boundaries > 0.
	_, vals := m.Row(107)
	sum := 0.0
	for _, v := range vals {
		sum += v
	}
	if math.Abs(sum) > 1e-12 {
		t.Errorf("interior row sum = %g", sum)
	}
}

func TestTridiagonal(t *testing.T) {
	m := Tridiagonal(50)
	if m.Nnz() != 3*50-2 {
		t.Fatalf("nnz = %d", m.Nnz())
	}
	if m.At(0, 0) != 2 || m.At(1, 0) != -1 || m.At(0, 1) != -1 {
		t.Error("stencil values")
	}
	if !m.Equal(m.Transpose(), 0) {
		t.Error("not symmetric")
	}
}

func TestRMAT(t *testing.T) {
	m := RMAT(12, 8, 1)
	st := matrix.ComputeStats(m)
	if st.Rows != 4096 {
		t.Fatalf("N = %d", st.Rows)
	}
	// Power-law: the maximum degree dwarfs the median.
	med := matrix.RowLenQuantile(m, 0.5)
	if st.MaxRowLen < 5*med {
		t.Errorf("max %d vs median %d: not heavy-tailed", st.MaxRowLen, med)
	}
	// Diagonal present everywhere (self-loops added).
	for i := 0; i < st.Rows; i += 97 {
		if m.At(i, i) == 0 {
			t.Fatalf("missing diagonal at %d", i)
		}
	}
	// Deterministic; degenerate parameters fall back.
	if !m.Equal(RMAT(12, 8, 1), 0) {
		t.Error("not deterministic")
	}
	if RMAT(0, 0, 2).NRows != 2 {
		t.Error("fallback parameters")
	}
}

func TestStencil2D(t *testing.T) {
	m := Stencil2D(10, 8)
	if m.NRows != 80 {
		t.Fatalf("N = %d", m.NRows)
	}
	// Interior rows have 5 entries, corners 3.
	if m.RowLen(0) != 3 {
		t.Errorf("corner row len = %d", m.RowLen(0))
	}
	if m.RowLen(45) != 5 {
		t.Errorf("interior row len = %d", m.RowLen(45))
	}
	// Symmetric positive definite: x^T A x > 0 for a few random x.
	x := make([]float64, 80)
	y := make([]float64, 80)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	if err := m.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	dot := 0.0
	for i := range x {
		dot += x[i] * y[i]
	}
	if dot <= 0 {
		t.Errorf("x^T A x = %g, want > 0", dot)
	}
	// Symmetry.
	tr := m.Transpose()
	if !m.Equal(tr, 0) {
		t.Error("stencil not symmetric")
	}
}
