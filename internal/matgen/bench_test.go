package matgen

import "testing"

// Generation throughput of the paper-matrix generators (non-zeros per
// second), at 1% scale so iterations stay fast.
func BenchmarkGenerators(b *testing.B) {
	for _, tm := range Catalog() {
		b.Run(tm.Name, func(b *testing.B) {
			var nnz int
			for i := 0; i < b.N; i++ {
				m := tm.Generate(0.01, int64(i))
				nnz = m.Nnz()
			}
			b.ReportMetric(float64(nnz), "nnz")
		})
	}
}

func BenchmarkStencil2D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Stencil2D(300, 300)
	}
}
