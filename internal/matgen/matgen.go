// Package matgen generates synthetic sparse matrices that reproduce
// the published structure of the paper's five proprietary test
// matrices (§I-C): dimension, non-zero count, row-length distribution
// (Fig. 3), structural notes (HMEp's contiguous off-diagonals, DLR2's
// dense 5×5 blocks, DLR1's 6 unknowns per grid point, sAMG's
// short-row-dominated AMG stencils), and therefore the pJDS data-
// reduction potential of Table I.
//
// Every generator is deterministic in its seed and accepts a scale
// factor that shrinks the row count while preserving N_nzr and the
// row-length distribution, for memory-limited hosts (see the
// DESIGN.md scale note for UHBR).
package matgen

import (
	"fmt"
	"math/rand"
	"sort"

	"pjds/internal/matrix"
)

// builder assembles a CSR matrix row by row without the COO detour,
// which matters at the 10⁸-non-zero scale of DLR2.
type builder struct {
	n      int
	rowPtr []int
	colIdx []int32
	val    []float64
}

func newBuilder(n int, nnzEstimate int64) *builder {
	return &builder{
		n:      n,
		rowPtr: append(make([]int, 0, n+1), 0),
		colIdx: make([]int32, 0, nnzEstimate),
		val:    make([]float64, 0, nnzEstimate),
	}
}

// addRow appends the next row; cols must be sorted and unique.
func (b *builder) addRow(cols []int32, vals []float64) {
	b.colIdx = append(b.colIdx, cols...)
	b.val = append(b.val, vals...)
	b.rowPtr = append(b.rowPtr, len(b.colIdx))
}

func (b *builder) finish() *matrix.CSR[float64] {
	m, err := matrix.NewCSR(b.n, b.n, b.rowPtr, b.colIdx, b.val)
	if err != nil {
		panic(fmt.Sprintf("matgen: internal builder error: %v", err))
	}
	return m
}

// rowScratch holds reusable per-row buffers.
type rowScratch struct {
	cols []int32
	vals []float64
	seen map[int32]bool
}

func newScratch() *rowScratch {
	return &rowScratch{seen: make(map[int32]bool, 64)}
}

// reset clears the scratch for a new row.
func (s *rowScratch) reset() {
	s.cols = s.cols[:0]
	s.vals = s.vals[:0]
	for k := range s.seen {
		delete(s.seen, k)
	}
}

// add inserts column c if new and in range.
func (s *rowScratch) add(c int, n int, v float64) {
	if c < 0 || c >= n {
		return
	}
	ci := int32(c)
	if s.seen[ci] {
		return
	}
	s.seen[ci] = true
	s.cols = append(s.cols, ci)
	s.vals = append(s.vals, v)
}

// emit sorts the row by column and writes it to the builder.
func (s *rowScratch) emit(b *builder) {
	idx := make([]int, len(s.cols))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, c int) bool { return s.cols[idx[a]] < s.cols[idx[c]] })
	cols := make([]int32, len(idx))
	vals := make([]float64, len(idx))
	for i, j := range idx {
		cols[i] = s.cols[j]
		vals[i] = s.vals[j]
	}
	b.addRow(cols, vals)
}

// bandFill adds `count` random distinct columns within ±width of i
// (excluding already-present columns), preferring nearby ones.
func (s *rowScratch) bandFill(rng *rand.Rand, i, n, count, width int) {
	for added, attempts := 0, 0; added < count && attempts < 20*count; attempts++ {
		off := rng.Intn(2*width+1) - width
		c := i + off
		if c < 0 || c >= n {
			continue
		}
		if !s.seen[int32(c)] {
			s.add(c, n, symValue(rng))
			added++
		}
	}
}

// symValue draws a well-conditioned off-diagonal value.
func symValue(rng *rand.Rand) float64 { return 0.1 + 0.9*rng.Float64() }

// sortWindowsDesc sorts the values descending within consecutive
// windows of the given size. It is a permutation, so the marginal
// distribution is untouched, but it adds the spatial correlation of
// row lengths that real application matrices show (mesh regions and
// quantum-number blocks have locally similar stencils). Without it,
// i.i.d. lengths overstate warp-level imbalance and hence the
// ELLPACK-R penalty.
//
// Windows reuse matrix.SortRangeByLengthDesc — the same stable
// counting sort the σ-windowed SELL-C-σ conversion runs — so the
// generators and the formats share one sort path.
func sortWindowsDesc(vals []int, window int) {
	n := len(vals)
	if window <= 1 || n == 0 {
		return
	}
	maxLen := 0
	for _, v := range vals {
		if v > maxLen {
			maxLen = v
		}
	}
	perm := matrix.Identity(n)
	count := make([]int, maxLen+2)
	for lo := 0; lo < n; lo += window {
		matrix.SortRangeByLengthDesc(vals, lo, min(lo+window, n), perm, count)
	}
	sorted := make([]int, n)
	for i, p := range perm {
		sorted[i] = vals[p]
	}
	copy(vals, sorted)
}

// scaleDim shrinks a dimension by the scale factor, keeping at least
// one unit.
func scaleDim(n int, scale float64) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	s := int(float64(n) * scale)
	if s < 1 {
		s = 1
	}
	return s
}
