// Package histo builds and renders the row-length histograms of the
// paper's Fig. 3: bin size 1, relative share on a logarithmic axis.
package histo

import (
	"fmt"
	"io"
	"math"

	"pjds/internal/matrix"
)

// Histogram is a bin-size-1 count histogram over non-negative ints.
type Histogram struct {
	// Counts[l] is the number of samples with value l.
	Counts []int
	// Total is the number of samples.
	Total int
}

// FromRowLengths histograms the stored row lengths of a matrix.
func FromRowLengths[T matrix.Float](m *matrix.CSR[T]) Histogram {
	counts := matrix.RowLenHistogram(m)
	return Histogram{Counts: counts, Total: m.NRows}
}

// FromCounts wraps precomputed counts.
func FromCounts(counts []int) Histogram {
	t := 0
	for _, c := range counts {
		t += c
	}
	return Histogram{Counts: counts, Total: t}
}

// RelativeShare returns Counts[l]/Total, the y-axis of Fig. 3.
func (h Histogram) RelativeShare(l int) float64 {
	if h.Total == 0 || l < 0 || l >= len(h.Counts) {
		return 0
	}
	return float64(h.Counts[l]) / float64(h.Total)
}

// MaxBin returns the largest value with a non-zero count, -1 if empty.
func (h Histogram) MaxBin() int {
	for l := len(h.Counts) - 1; l >= 0; l-- {
		if h.Counts[l] > 0 {
			return l
		}
	}
	return -1
}

// MinBin returns the smallest value with a non-zero count, -1 if
// empty.
func (h Histogram) MinBin() int {
	for l, c := range h.Counts {
		if c > 0 {
			return l
		}
	}
	return -1
}

// Mean returns the sample mean.
func (h Histogram) Mean() float64 {
	if h.Total == 0 {
		return 0
	}
	s := 0.0
	for l, c := range h.Counts {
		s += float64(l) * float64(c)
	}
	return s / float64(h.Total)
}

// RenderLog writes a Fig. 3-style plot: x = value (bin size 1,
// decimated to fit width), y = log10 of the relative share down to
// floor decades. Each row of output is one decade boundary.
func (h Histogram) RenderLog(w io.Writer, title string, width int, decades int) error {
	if width < 10 {
		width = 10
	}
	if decades < 1 {
		decades = 4
	}
	maxBin := h.MaxBin()
	if maxBin < 0 {
		_, err := fmt.Fprintf(w, "%s: empty histogram\n", title)
		return err
	}
	if _, err := fmt.Fprintf(w, "%s  (N=%d, bins 0..%d, log10 relative share)\n", title, h.Total, maxBin); err != nil {
		return err
	}
	binsPerCol := (maxBin + width) / width
	nCols := (maxBin + 1 + binsPerCol - 1) / binsPerCol
	// Column share = max share within the column (preserves peaks).
	share := make([]float64, nCols)
	for l := 0; l <= maxBin; l++ {
		col := l / binsPerCol
		if s := h.RelativeShare(l); s > share[col] {
			share[col] = s
		}
	}
	rows := 2 * decades // half-decade resolution
	for r := 0; r < rows; r++ {
		// Row r covers log10 share in [-(r+1)/2, -r/2).
		hi := -float64(r) / 2
		line := make([]byte, nCols)
		for cIdx := range line {
			line[cIdx] = ' '
			if share[cIdx] > 0 {
				lg := math.Log10(share[cIdx])
				if lg >= hi-0.5 {
					line[cIdx] = '#'
				}
			}
		}
		label := ""
		if r%2 == 0 {
			label = fmt.Sprintf("1e%+d", -r/2)
		}
		if _, err := fmt.Fprintf(w, "%6s |%s\n", label, line); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%6s +%s\n", "", repeat('-', nCols)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%6s  0%s%d  (non-zeros per row, %d bins/col)\n", "", repeat(' ', nCols-len(fmt.Sprint(maxBin))-1), maxBin, binsPerCol)
	return err
}

func repeat(b byte, n int) string {
	if n < 0 {
		n = 0
	}
	s := make([]byte, n)
	for i := range s {
		s[i] = b
	}
	return string(s)
}
