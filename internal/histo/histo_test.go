package histo

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

func TestFromRowLengths(t *testing.T) {
	coo := matrix.NewCOO[float64](4, 8)
	for j := 0; j < 3; j++ {
		coo.Add(0, j, 1)
	}
	coo.Add(1, 0, 1)
	coo.Add(2, 0, 1)
	coo.Add(2, 1, 1)
	// row 3 empty
	h := FromRowLengths(coo.ToCSR())
	if h.Total != 4 {
		t.Fatalf("total = %d", h.Total)
	}
	if h.Counts[0] != 1 || h.Counts[1] != 1 || h.Counts[2] != 1 || h.Counts[3] != 1 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.RelativeShare(3) != 0.25 {
		t.Errorf("share(3) = %g", h.RelativeShare(3))
	}
	if h.RelativeShare(99) != 0 || h.RelativeShare(-1) != 0 {
		t.Error("out-of-range share should be 0")
	}
	if h.MaxBin() != 3 || h.MinBin() != 0 {
		t.Errorf("bins [%d,%d]", h.MinBin(), h.MaxBin())
	}
	if math.Abs(h.Mean()-1.5) > 1e-15 {
		t.Errorf("mean = %g", h.Mean())
	}
}

func TestFromCounts(t *testing.T) {
	h := FromCounts([]int{0, 2, 0, 6})
	if h.Total != 8 || h.RelativeShare(3) != 0.75 {
		t.Errorf("%+v", h)
	}
}

func TestEmptyHistogram(t *testing.T) {
	h := FromCounts(nil)
	if h.MaxBin() != -1 || h.MinBin() != -1 || h.Mean() != 0 {
		t.Error("empty histogram invariants")
	}
	var buf bytes.Buffer
	if err := h.RenderLog(&buf, "empty", 40, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "empty histogram") {
		t.Error("empty render message missing")
	}
}

func TestRenderLogShape(t *testing.T) {
	m := matgen.SAMG(0.002, 3)
	h := FromRowLengths(m)
	var buf bytes.Buffer
	if err := h.RenderLog(&buf, "sAMG", 60, 4); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sAMG") || !strings.Contains(out, "1e+0") {
		t.Errorf("render missing labels:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("no bars rendered")
	}
	// Must render at least the requested decades of axis rows.
	if lines := strings.Count(out, "\n"); lines < 8 {
		t.Errorf("only %d lines", lines)
	}
}

func TestRenderLogDegenerateArgs(t *testing.T) {
	h := FromCounts([]int{0, 10})
	var buf bytes.Buffer
	if err := h.RenderLog(&buf, "tiny", 1, 0); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output")
	}
}
