package mpi

import (
	"fmt"
	"math"
)

// DefaultHeartbeatSeconds is the failure-detector period used when
// Options.HeartbeatSeconds is zero: a silently dead rank is detected no
// earlier than its death time plus one heartbeat.
const DefaultHeartbeatSeconds = 200e-6

// RetryPolicy models the reliable-transport reaction to dropped
// messages: each lost transmission attempt charges one timeout to the
// receiver's virtual clock, with exponential backoff between attempts.
// The whole-zero value selects DefaultRetry; any other value is used
// as written (so a test can ask for a zero timeout explicitly by
// setting MaxRetries alone).
type RetryPolicy struct {
	// MaxRetries is the number of retransmissions tolerated before the
	// receive fails with a RetriesExhaustedError.
	MaxRetries int
	// TimeoutSeconds is the base receive deadline: the wait charged for
	// the first lost attempt.
	TimeoutSeconds float64
	// BackoffFactor multiplies the timeout after every lost attempt
	// (values ≤ 1 mean a constant timeout).
	BackoffFactor float64
	// MaxBackoffSeconds caps one backoff step (0 = uncapped).
	MaxBackoffSeconds float64
	// JitterFrac spreads every backoff step by up to ±JitterFrac of its
	// value, deterministically from (JitterSeed, rank, attempt) — see
	// ForRank. With many ranks backing off from the same lost
	// broadcast, identical schedules re-collide on every retry (a
	// synchronized retry storm); decorrelating them per rank breaks the
	// lockstep. Zero (the default) disables jitter, keeping every
	// existing schedule and artifact bit-identical. Values are clamped
	// to [0, 1).
	JitterFrac float64
	// JitterSeed seeds the per-rank jitter stream (only read when
	// JitterFrac > 0); the same seed always reproduces the same
	// schedule.
	JitterSeed uint64
}

// DefaultRetry is the policy used when Options.Retry is the zero value.
var DefaultRetry = RetryPolicy{
	MaxRetries:        8,
	TimeoutSeconds:    50e-6,
	BackoffFactor:     2,
	MaxBackoffSeconds: 1e-3,
}

// isZero reports whether the policy is the whole-zero value (which
// selects DefaultRetry).
func (p RetryPolicy) isZero() bool {
	return p.MaxRetries == 0 && p.TimeoutSeconds == 0 &&
		p.BackoffFactor == 0 && p.MaxBackoffSeconds == 0
}

// BackoffSeconds returns the deadline charged for lost attempt i
// (0-based): TimeoutSeconds·BackoffFactor^i, capped at
// MaxBackoffSeconds when that is positive.
func (p RetryPolicy) BackoffSeconds(i int) float64 {
	d := p.TimeoutSeconds
	if p.BackoffFactor > 1 {
		d *= math.Pow(p.BackoffFactor, float64(i))
	}
	if p.MaxBackoffSeconds > 0 && d > p.MaxBackoffSeconds {
		d = p.MaxBackoffSeconds
	}
	return d
}

// totalBackoff sums the deadlines for n lost attempts.
func (p RetryPolicy) totalBackoff(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += p.BackoffSeconds(i)
	}
	return total
}

// normalized resolves the whole-zero policy to DefaultRetry. Jitter
// fields alone don't define a schedule, so a jitter-only policy keeps
// the default schedule with the jitter carried over rather than
// silently dropped.
func (p RetryPolicy) normalized() RetryPolicy {
	if !p.isZero() {
		return p
	}
	jf, js := p.JitterFrac, p.JitterSeed
	p = DefaultRetry
	p.JitterFrac, p.JitterSeed = jf, js
	return p
}

// RankRetry is one rank's view of a RetryPolicy: the same budget and
// caps, with each backoff step jittered deterministically from
// (JitterSeed, rank, attempt). Jitter applies after the
// MaxBackoffSeconds cap, so a step stays within ±JitterFrac of its
// capped value and two ranks parked at the cap still decorrelate.
type RankRetry struct {
	RetryPolicy
	rank int
}

// ForRank returns the policy as seen by one rank. With JitterFrac
// zero it is the policy unchanged.
func (p RetryPolicy) ForRank(rank int) RankRetry { return RankRetry{RetryPolicy: p, rank: rank} }

// BackoffSeconds returns the jittered deadline for lost attempt i.
func (p RankRetry) BackoffSeconds(i int) float64 {
	return Jitter(p.RetryPolicy.BackoffSeconds(i), p.JitterFrac, p.JitterSeed, uint64(p.rank), uint64(i))
}

// totalBackoff sums the jittered deadlines for n lost attempts.
func (p RankRetry) totalBackoff(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += p.BackoffSeconds(i)
	}
	return total
}

// Jitter spreads d by a deterministic factor in [1−frac, 1+frac),
// derived from the splitmix64 mix of (seed, stream, step) — no wall
// clock, no shared RNG, so a schedule replays exactly. frac outside
// [0, 1) is clamped; non-positive d and zero frac pass through
// unchanged. spmvtop's reconnect loop shares this with the retry
// policy.
func Jitter(d, frac float64, seed, stream, step uint64) float64 {
	if frac <= 0 || d <= 0 {
		return d
	}
	if frac >= 1 {
		frac = math.Nextafter(1, 0)
	}
	z := seed ^ stream*0x9e3779b97f4a7c15 ^ step*0xbf58476d1ce4e5b9
	z += 0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	// z → uniform in [−1, 1), then scale into the ±frac band.
	u := 2*float64(z>>11)/float64(1<<53) - 1
	return d * (1 + frac*u)
}

// RankFailedError reports that a rank died — by injected crash, body
// error, or panic — and names who detected it and when. DetectedBy is
// -1 when the rank reports its own injected crash.
type RankFailedError struct {
	Rank       int     // the dead rank
	FailedAt   float64 // virtual time of death
	DetectedBy int     // detecting rank, or -1 for a self-reported crash
	DetectedAt float64 // virtual time the detector learned of the death
}

func (e *RankFailedError) Error() string {
	if e.DetectedBy < 0 {
		return fmt.Sprintf("mpi: rank %d crashed at t=%gs (injected fault)", e.Rank, e.FailedAt)
	}
	return fmt.Sprintf("mpi: rank %d failed at t=%gs (detected by rank %d at t=%gs)",
		e.Rank, e.FailedAt, e.DetectedBy, e.DetectedAt)
}

// RetriesExhaustedError reports a receive whose message was dropped
// more times than the retry policy tolerates.
type RetriesExhaustedError struct {
	Src, Dst, Tag int
	Attempts      int // lost transmission attempts observed
	MaxRetries    int
}

func (e *RetriesExhaustedError) Error() string {
	return fmt.Sprintf("mpi: recv %d←%d tag %d: %d transmission attempts lost, retry budget %d exhausted",
		e.Dst, e.Src, e.Tag, e.Attempts, e.MaxRetries)
}

// ClockError reports an illegal virtual-clock move. Advance and
// SetClock used to panic on these conditions; they now latch the first
// ClockError on the Comm (subsequent clock ops are no-ops) and Run
// surfaces it as the rank's error.
type ClockError struct {
	Op       string // "advance" or "set"
	From, To float64
}

func (e *ClockError) Error() string {
	if e.Op == "advance" {
		return "mpi: negative time advance"
	}
	return fmt.Sprintf("mpi: clock moving backwards: %g < %g", e.To, e.From)
}
