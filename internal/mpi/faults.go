package mpi

import (
	"fmt"
	"math"
)

// DefaultHeartbeatSeconds is the failure-detector period used when
// Options.HeartbeatSeconds is zero: a silently dead rank is detected no
// earlier than its death time plus one heartbeat.
const DefaultHeartbeatSeconds = 200e-6

// RetryPolicy models the reliable-transport reaction to dropped
// messages: each lost transmission attempt charges one timeout to the
// receiver's virtual clock, with exponential backoff between attempts.
// The whole-zero value selects DefaultRetry; any other value is used
// as written (so a test can ask for a zero timeout explicitly by
// setting MaxRetries alone).
type RetryPolicy struct {
	// MaxRetries is the number of retransmissions tolerated before the
	// receive fails with a RetriesExhaustedError.
	MaxRetries int
	// TimeoutSeconds is the base receive deadline: the wait charged for
	// the first lost attempt.
	TimeoutSeconds float64
	// BackoffFactor multiplies the timeout after every lost attempt
	// (values ≤ 1 mean a constant timeout).
	BackoffFactor float64
	// MaxBackoffSeconds caps one backoff step (0 = uncapped).
	MaxBackoffSeconds float64
}

// DefaultRetry is the policy used when Options.Retry is the zero value.
var DefaultRetry = RetryPolicy{
	MaxRetries:        8,
	TimeoutSeconds:    50e-6,
	BackoffFactor:     2,
	MaxBackoffSeconds: 1e-3,
}

// isZero reports whether the policy is the whole-zero value (which
// selects DefaultRetry).
func (p RetryPolicy) isZero() bool {
	return p.MaxRetries == 0 && p.TimeoutSeconds == 0 &&
		p.BackoffFactor == 0 && p.MaxBackoffSeconds == 0
}

// BackoffSeconds returns the deadline charged for lost attempt i
// (0-based): TimeoutSeconds·BackoffFactor^i, capped at
// MaxBackoffSeconds when that is positive.
func (p RetryPolicy) BackoffSeconds(i int) float64 {
	d := p.TimeoutSeconds
	if p.BackoffFactor > 1 {
		d *= math.Pow(p.BackoffFactor, float64(i))
	}
	if p.MaxBackoffSeconds > 0 && d > p.MaxBackoffSeconds {
		d = p.MaxBackoffSeconds
	}
	return d
}

// totalBackoff sums the deadlines for n lost attempts.
func (p RetryPolicy) totalBackoff(n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		total += p.BackoffSeconds(i)
	}
	return total
}

// RankFailedError reports that a rank died — by injected crash, body
// error, or panic — and names who detected it and when. DetectedBy is
// -1 when the rank reports its own injected crash.
type RankFailedError struct {
	Rank       int     // the dead rank
	FailedAt   float64 // virtual time of death
	DetectedBy int     // detecting rank, or -1 for a self-reported crash
	DetectedAt float64 // virtual time the detector learned of the death
}

func (e *RankFailedError) Error() string {
	if e.DetectedBy < 0 {
		return fmt.Sprintf("mpi: rank %d crashed at t=%gs (injected fault)", e.Rank, e.FailedAt)
	}
	return fmt.Sprintf("mpi: rank %d failed at t=%gs (detected by rank %d at t=%gs)",
		e.Rank, e.FailedAt, e.DetectedBy, e.DetectedAt)
}

// RetriesExhaustedError reports a receive whose message was dropped
// more times than the retry policy tolerates.
type RetriesExhaustedError struct {
	Src, Dst, Tag int
	Attempts      int // lost transmission attempts observed
	MaxRetries    int
}

func (e *RetriesExhaustedError) Error() string {
	return fmt.Sprintf("mpi: recv %d←%d tag %d: %d transmission attempts lost, retry budget %d exhausted",
		e.Dst, e.Src, e.Tag, e.Attempts, e.MaxRetries)
}

// ClockError reports an illegal virtual-clock move. Advance and
// SetClock used to panic on these conditions; they now latch the first
// ClockError on the Comm (subsequent clock ops are no-ops) and Run
// surfaces it as the rank's error.
type ClockError struct {
	Op       string // "advance" or "set"
	From, To float64
}

func (e *ClockError) Error() string {
	if e.Op == "advance" {
		return "mpi: negative time advance"
	}
	return fmt.Sprintf("mpi: clock moving backwards: %g < %g", e.To, e.From)
}
