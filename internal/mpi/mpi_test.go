package mpi

import (
	"errors"
	"math"
	"testing"

	"pjds/internal/simnet"
)

func fabric() *simnet.Fabric { return simnet.QDRInfiniBand() }

func TestRunBasics(t *testing.T) {
	clocks, err := Run(4, fabric(), func(c *Comm) error {
		if c.Size() != 4 {
			t.Error("size")
		}
		c.Advance(float64(c.Rank()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, cl := range clocks {
		if math.Abs(cl-float64(r)) > 1e-12 {
			t.Errorf("rank %d clock = %g", r, cl)
		}
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(3, fabric(), func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	_, err := Run(2, fabric(), func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestPingPongData(t *testing.T) {
	_, err := Run(2, fabric(), func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, 0, []float64{3.5, -1}, 16); err != nil {
				return err
			}
			m, err := c.Recv(1, 1)
			if err != nil {
				return err
			}
			got := m.Payload.([]float64)
			if got[0] != 7 || got[1] != -2 {
				t.Errorf("pong = %v", got)
			}
		} else {
			m, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			in := m.Payload.([]float64)
			if err := c.Send(0, 1, []float64{2 * in[0], 2 * in[1]}, 16); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTimingSyncVsAsyncProgress: the core §III-A effect. With
// asynchronous progress, compute between Isend and Wait overlaps the
// transfer; without it, transfer time adds to compute time.
func TestTimingSyncVsAsyncProgress(t *testing.T) {
	const bytes = 32_000_000 // 10 ms on the 3.2 GB/s fabric
	const compute = 0.05     // 50 ms
	run := func(async bool) float64 {
		f := fabric()
		f.AsyncProgress = async
		clocks, err := Run(2, f, func(c *Comm) error {
			if c.Rank() == 0 {
				req := c.Isend(1, 0, make([]float64, bytes/8), bytes)
				c.Advance(compute)
				req.Wait()
			} else {
				req := c.Irecv(0, 0)
				c.Advance(compute)
				req.Wait()
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return clocks[0]
	}
	wire := float64(bytes) / fabric().BytesPerSecond
	async := run(true)
	sync := run(false)
	// Async: transfer hidden behind compute → sender finishes ≈ compute.
	if async > compute+1e-3 {
		t.Errorf("async sender clock %.4f, want ≈ %.4f (overlapped)", async, compute)
	}
	// Sync: transfer serialized after compute.
	if sync < compute+wire-1e-3 {
		t.Errorf("sync sender clock %.4f, want ≥ %.4f", sync, compute+wire)
	}
}

// TestReceiverSeesArrivalTime: receiver waiting early still completes
// only at the message's arrival time.
func TestReceiverSeesArrivalTime(t *testing.T) {
	const bytes = 3_200_000 // 1 ms wire time
	f := fabric()
	f.AsyncProgress = true
	clocks, err := Run(2, f, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Advance(0.010) // sender starts late
			c.Send(1, 0, nil, bytes)
		} else {
			c.Recv(0, 0) // posted at t≈0
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := f.TransferSeconds(bytes)
	want := 0.010 + wire
	if math.Abs(clocks[1]-want) > 1e-4 {
		t.Errorf("receiver clock = %.5f, want ≈ %.5f", clocks[1], want)
	}
}

// TestNICInjectionSerialization: two back-to-back sends from one rank
// serialize on its NIC.
func TestNICInjectionSerialization(t *testing.T) {
	const bytes = 3_200_000 // 1 ms each
	f := fabric()
	f.AsyncProgress = true
	var arrive2 float64
	_, err := Run(3, f, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			r1 := c.Isend(1, 0, nil, bytes)
			r2 := c.Isend(2, 0, nil, bytes)
			r1.Wait()
			r2.Wait()
		case 1:
			c.Recv(0, 0)
		case 2:
			m, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			arrive2 = m.ArrivesAt
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := float64(bytes) / f.BytesPerSecond
	// Second message could not start before the first finished
	// injecting: arrival ≥ 2 wire times.
	if arrive2 < 2*wire {
		t.Errorf("second arrival %.4f, want ≥ %.4f (NIC serialization)", arrive2, 2*wire)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	clocks, err := Run(4, fabric(), func(c *Comm) error {
		c.Advance(float64(c.Rank()) * 0.01)
		c.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 1; r < 4; r++ {
		if math.Abs(clocks[r]-clocks[0]) > 1e-12 {
			t.Errorf("clocks diverge after barrier: %v", clocks)
		}
	}
	if clocks[0] < 0.03 {
		t.Errorf("barrier clock %g below slowest rank", clocks[0])
	}
}

func TestAllreduceSumAndMax(t *testing.T) {
	_, err := Run(5, fabric(), func(c *Comm) error {
		sum, err := c.AllreduceSum(float64(c.Rank() + 1))
		if err != nil {
			return err
		}
		if sum != 15 {
			t.Errorf("rank %d: sum = %g", c.Rank(), sum)
		}
		max, err := c.AllreduceMax(float64(c.Rank()))
		if err != nil {
			return err
		}
		if max != 4 {
			t.Errorf("rank %d: max = %g", c.Rank(), max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllreduceCostsTime(t *testing.T) {
	clocks, err := Run(8, fabric(), func(c *Comm) error {
		c.AllreduceSum(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * 3 * fabric().LatencySeconds // 2·log2(8)·latency
	if math.Abs(clocks[0]-want) > 1e-9 {
		t.Errorf("allreduce cost = %g, want %g", clocks[0], want)
	}
}

func TestAllgatherUntimed(t *testing.T) {
	clocks, err := Run(3, fabric(), func(c *Comm) error {
		got, err := c.AllgatherUntimed(c.Rank() * 10)
		if err != nil {
			return err
		}
		for r, v := range got {
			if v.(int) != r*10 {
				t.Errorf("gathered[%d] = %v", r, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range clocks {
		if cl != 0 {
			t.Errorf("untimed exchange advanced a clock to %g", cl)
		}
	}
}

func TestMultipleCollectivesInSequence(t *testing.T) {
	_, err := Run(4, fabric(), func(c *Comm) error {
		for i := 0; i < 10; i++ {
			sum, err := c.AllreduceSum(1)
			if err != nil {
				return err
			}
			if sum != 4 {
				t.Errorf("iter %d: sum = %g", i, sum)
			}
			if err := c.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitIdempotent(t *testing.T) {
	_, err := Run(2, fabric(), func(c *Comm) error {
		if c.Rank() == 0 {
			r := c.Isend(1, 0, nil, 100)
			r.Wait()
			before := c.Clock()
			r.Wait()
			if c.Clock() != before {
				t.Error("second Wait advanced the clock")
			}
		} else {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestClockGuards pins the exact error texts of the typed ClockError
// that replaced the clock-violation panics: the first violation is
// latched on the Comm and surfaced by Run.
func TestClockGuards(t *testing.T) {
	_, err := Run(1, fabric(), func(c *Comm) error {
		c.Advance(1)
		c.SetClock(0.5)
		if c.Err() == nil {
			t.Error("backwards SetClock not latched")
		}
		c.Advance(1) // no-op after the latch
		if c.Clock() != 1 {
			t.Errorf("clock moved after latch: %g", c.Clock())
		}
		return nil
	})
	var ce *ClockError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want *ClockError", err)
	}
	if got, want := err.Error(), "mpi: clock moving backwards: 0.5 < 1"; got != want {
		t.Errorf("error text = %q, want %q", got, want)
	}
	_, err = Run(1, fabric(), func(c *Comm) error {
		c.Advance(-1)
		return nil
	})
	if err == nil || err.Error() != "mpi: negative time advance" {
		t.Errorf("negative advance err = %v, want exact legacy text", err)
	}
}

// TestWaitallOrdersSendsFirst: a rank that posts a receive and a send
// and then calls Waitall must not deadlock against a partner doing the
// same (sends are progressed first).
func TestWaitallSendsFirstNoDeadlock(t *testing.T) {
	_, err := Run(2, fabric(), func(c *Comm) error {
		other := 1 - c.Rank()
		reqs := []*Request{
			c.Irecv(other, 0),
			c.Isend(other, 0, c.Rank(), 4),
		}
		c.Waitall(reqs)
		if got := reqs[0].Message.Payload.(int); got != other {
			t.Errorf("rank %d received %d", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
