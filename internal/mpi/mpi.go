// Package mpi is an MPI-flavoured message-passing layer over the
// virtual-time fabric of internal/simnet. Ranks run as goroutines;
// payloads really move (so distributed results are verified against
// the serial reference), and every operation advances a per-rank
// virtual clock from which the strong-scaling results of Fig. 5 are
// derived.
//
// The layer reproduces the §III-A distinction the paper's three
// communication schemes hinge on: with Fabric.AsyncProgress false
// (the realistic default), a nonblocking Isend does not move data
// until the matching Wait, so "naive overlap" of communication with
// computation gains nothing; true overlap needs a dedicated
// communication thread, which callers model by running communication
// and computation on forked clocks and joining them with MaxClock.
//
// The layer is also fault-aware: an Options.Faults injector can drop,
// delay, duplicate, or degrade messages on the wire, and ranks can die
// mid-run (Comm.Crash, a body error, or a panic). Dropped messages are
// retransmitted under Options.Retry with exponential backoff charged
// to the receiver's clock; silent rank death is converted by a
// heartbeat-modelled failure detector into a typed RankFailedError
// instead of a deadlock.
package mpi

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"

	"pjds/internal/flight"
	"pjds/internal/profiles"
	"pjds/internal/simnet"
	"pjds/internal/telemetry"
)

// Comm is one rank's endpoint: a rank id, a virtual clock, and the
// shared switch and collective coordinator.
type Comm struct {
	rank  int
	world *World
	clock float64
	// nicBusyUntil serializes message injection at this rank's NIC.
	nicBusyUntil float64
	// err latches the first clock violation (Advance/SetClock keep
	// their void signatures); Run surfaces it as the rank's error.
	err error
}

// Request is a pending nonblocking operation.
type Request struct {
	comm *Comm
	send bool
	done bool

	// send fields
	dst, tag int
	payload  any
	bytes    int64
	injected bool    // true once handed to the wire
	doneAt   float64 // injection end (send) or arrival (recv)

	// recv fields
	src     int
	Message simnet.Message // filled after Wait for receives
}

// World owns the shared state of one simulated run.
type World struct {
	sw      *simnet.Switch
	coord   *coordinator
	errs    []error
	comms   []*Comm
	metrics *telemetry.Registry
	spans   *telemetry.SpanLog
	retry   RetryPolicy
	hb      float64
}

// Run executes body on n ranks over the given fabric and returns the
// final virtual clock of every rank. A panic in a rank body is
// converted into an error carrying the rank id; errors are surfaced
// preferring root causes (a crash or body error) over the secondary
// RankFailedErrors the survivors observe.
func Run(n int, fabric *simnet.Fabric, body func(*Comm) error) ([]float64, error) {
	return RunWithOptions(n, fabric, Options{}, body)
}

// RunWithTopology is Run for clusters with several ranks (GPUs) per
// physical node: consecutive groups of ranksPerNode ranks exchange
// messages over the intra fabric (nil selects simnet.SharedMemory when
// ranksPerNode > 1).
func RunWithTopology(n int, fabric *simnet.Fabric, ranksPerNode int, intra *simnet.Fabric, body func(*Comm) error) ([]float64, error) {
	return RunWithOptions(n, fabric, Options{RanksPerNode: ranksPerNode, Intra: intra}, body)
}

// Options parameterize a simulated run beyond the interconnect model.
type Options struct {
	// RanksPerNode places that many consecutive ranks on one physical
	// node (0 or 1 = one rank per node).
	RanksPerNode int
	// Intra is the intra-node fabric (nil selects simnet.SharedMemory
	// when RanksPerNode > 1).
	Intra *simnet.Fabric
	// Metrics receives message-passing telemetry: per-rank send/recv
	// counts and bytes, serialization and receive-wait time, collective
	// counts, and fault/retry/detection counts (plus the simnet
	// wire-level series).
	Metrics *telemetry.Registry
	// Spans (nil = off) receives one span per message-passing event on
	// each rank's "mpi" lane: sends cover the NIC injection interval
	// and carry peer/tag/bytes/arrives args, receives cover the
	// posted-to-completion interval, and collectives cover the
	// entry-to-release interval with the straggler rank as "root".
	// Fault handling adds "retry backoff", "failure detect", and
	// "crash" spans. These args are what internal/critpath builds
	// cross-rank happens-before edges from.
	Spans *telemetry.SpanLog
	// Faults injects wire-level faults (drops, delays, duplicates,
	// degradation) into every transmission; nil runs a healthy fabric.
	Faults simnet.Injector
	// Retry is the reliable-transport policy for dropped messages; the
	// zero value selects DefaultRetry.
	Retry RetryPolicy
	// HeartbeatSeconds is the failure-detector period: a silently dead
	// peer is detected at max(own clock, death + heartbeat). Zero
	// selects DefaultHeartbeatSeconds.
	HeartbeatSeconds float64
}

// RunWithOptions is the fully-parameterized Run.
func RunWithOptions(n int, fabric *simnet.Fabric, opt Options, body func(*Comm) error) ([]float64, error) {
	sw, err := simnet.NewSwitch(fabric, n)
	if err != nil {
		return nil, err
	}
	if opt.RanksPerNode > 1 {
		intra := opt.Intra
		if intra == nil {
			intra = simnet.SharedMemory()
		}
		if err := sw.SetTopology(opt.RanksPerNode, intra); err != nil {
			return nil, err
		}
	}
	if opt.Faults != nil {
		sw.SetFaults(opt.Faults)
	}
	if opt.Metrics != nil {
		sw.SetMetrics(opt.Metrics)
		opt.Metrics.Help("mpi_sends_total", "point-to-point sends posted")
		opt.Metrics.Help("mpi_send_bytes_total", "modelled bytes posted for sending")
		opt.Metrics.Help("mpi_recvs_total", "point-to-point receives completed")
		opt.Metrics.Help("mpi_send_serialization_seconds_total", "NIC injection (serialization) time per rank")
		opt.Metrics.Help("mpi_recv_wait_seconds_total", "virtual time spent blocked in receive waits")
		opt.Metrics.Help("mpi_overhead_seconds_total", "host CPU overhead of posting operations (LogGP o)")
		opt.Metrics.Help("mpi_collectives_total", "collective operations by kind")
		opt.Metrics.Help("mpi_retries_total", "message retransmissions charged by the reliable transport")
		opt.Metrics.Help("mpi_retry_wait_seconds_total", "virtual time charged to timeout+backoff on dropped messages")
		opt.Metrics.Help("mpi_retries_exhausted_total", "receives failed after the retry budget ran out")
		opt.Metrics.Help("mpi_rank_crashes_total", "injected rank crashes")
		opt.Metrics.Help("mpi_failures_detected_total", "peer deaths observed by the heartbeat failure detector")
	}
	retry := opt.Retry.normalized()
	hb := opt.HeartbeatSeconds
	if hb <= 0 {
		hb = DefaultHeartbeatSeconds
	}
	w := &World{
		metrics: opt.Metrics,
		spans:   opt.Spans,
		sw:      sw,
		coord:   newCoordinator(n),
		errs:    make([]error, n),
		comms:   make([]*Comm, n),
		retry:   retry,
		hb:      hb,
	}
	for i := range w.comms {
		w.comms[i] = &Comm{rank: i, world: w}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			// The rank goroutine owns its whole body: label it once so
			// profile samples attribute to phase=mpi with the rank.
			// (Solver bodies re-label themselves phase=solver.)
			profiles.SetPhase(profiles.PhaseMPI, "rank", strconv.Itoa(rank))
			c := w.comms[rank]
			defer func() {
				if r := recover(); r != nil {
					w.errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, r)
				}
				if w.errs[rank] == nil {
					w.errs[rank] = c.err
				}
				if w.errs[rank] != nil {
					// Any failing rank is dead to its peers: mark it so
					// receivers and collectives unwind with typed errors
					// instead of deadlocking on a rank that will never
					// send or rendezvous again.
					w.markDead(rank, c.clock)
				}
			}()
			w.errs[rank] = body(c)
		}(i)
	}
	wg.Wait()
	clocks := make([]float64, n)
	for i, c := range w.comms {
		clocks[i] = c.clock
	}
	return clocks, w.firstError()
}

// firstError picks the error Run reports: the lowest-rank root cause
// (crash, body error, clock violation) if any, otherwise the
// lowest-rank secondary failure observation.
func (w *World) firstError() error {
	var secondary error
	for _, err := range w.errs {
		if err == nil {
			continue
		}
		var rf *RankFailedError
		if errors.As(err, &rf) && rf.DetectedBy >= 0 {
			if secondary == nil {
				secondary = err
			}
			continue
		}
		return err
	}
	return secondary
}

// markDead latches a rank's death on the switch (releasing blocked
// receivers) and the coordinator (failing collectives). Idempotent:
// only the first death time sticks.
func (w *World) markDead(rank int, at float64) {
	w.sw.MarkFailed(rank, at)
	w.coord.markFailed(rank, at)
}

// Rank returns this endpoint's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.sw.Ranks() }

// Fabric returns the interconnect model.
func (c *Comm) Fabric() *simnet.Fabric { return c.world.sw.Fabric() }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Err returns the latched clock error, if any.
func (c *Comm) Err() error { return c.err }

// fail latches the first clock violation; later clock ops are no-ops.
func (c *Comm) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Advance adds local compute time to the clock. A negative dt latches
// a ClockError on the Comm (surfaced by Run) instead of panicking.
func (c *Comm) Advance(dt float64) {
	if c.err != nil {
		return
	}
	if dt < 0 {
		c.fail(&ClockError{Op: "advance", From: c.clock, To: c.clock + dt})
		return
	}
	c.clock += dt
}

// SetClock moves the clock to t; callers use it to join forked
// timelines (task mode) and must never move time backwards. A
// backwards move latches a ClockError instead of panicking.
func (c *Comm) SetClock(t float64) {
	if c.err != nil {
		return
	}
	if t < c.clock {
		c.fail(&ClockError{Op: "set", From: c.clock, To: t})
		return
	}
	c.clock = t
}

// Crash kills this rank at its current virtual clock, releasing every
// peer blocked on it, and returns the typed error the rank body should
// propagate. It models a node failure injected by a fault plan.
func (c *Comm) Crash() error {
	c.world.markDead(c.rank, c.clock)
	c.count("mpi_rank_crashes_total", 1)
	c.span(SpanCrash, c.clock, c.clock, map[string]string{ArgFailedAt: fmtTime(c.clock)})
	flight.Record(flight.Error, "mpi.rank_crash", c.rank, c.clock, "rank killed by injected fault", 0)
	return &RankFailedError{Rank: c.rank, FailedAt: c.clock, DetectedBy: -1, DetectedAt: c.clock}
}

// count adds v to a per-rank counter when telemetry is attached.
func (c *Comm) count(name string, v float64, extra ...telemetry.Label) {
	if reg := c.world.metrics; reg != nil {
		reg.Counter(name, append([]telemetry.Label{telemetry.Li("rank", c.rank)}, extra...)...).Add(v)
	}
}

// Span vocabulary of the per-rank "mpi" lane, consumed by
// internal/critpath to build cross-rank happens-before edges.
const (
	// SpanLane and SpanCat identify message-passing spans.
	SpanLane = "mpi"
	SpanCat  = "net"
	// SpanSend covers a message's NIC injection interval; SpanRecv the
	// posted-to-completion interval of a receive.
	SpanSend = "send"
	SpanRecv = "recv"
	// SpanRetry covers the timeout+backoff interval charged for a
	// dropped message's retransmissions; SpanDetect the interval from a
	// blocked operation to the heartbeat detection of a dead peer;
	// SpanCrash marks the instant a rank dies to an injected fault.
	SpanRetry  = "retry backoff"
	SpanDetect = "failure detect"
	SpanCrash  = "crash"
	// Args attached to the spans above. Times are virtual seconds in
	// strconv 'g'/-1 form (exact float64 round trip).
	ArgPeer     = "peer"      // the other rank of a point-to-point message
	ArgTag      = "tag"       // message tag
	ArgBytes    = "bytes"     // modelled wire size
	ArgSent     = "sent"      // injection start (SentAt)
	ArgArrives  = "arrives"   // arrival time at the destination
	ArgFabric   = "fabric"    // fabric carrying the message
	ArgOp       = "op"        // collective kind
	ArgRoot     = "root"      // collective straggler: the rank that set maxClock
	ArgGen      = "gen"       // rendezvous generation, one id per collective instance
	ArgAttempts = "attempts"  // lost transmission attempts behind a retry span
	ArgFailedAt = "failed_at" // virtual death time behind a detect/crash span
)

// fmtTime renders a virtual time so it round-trips exactly through the
// span args.
func fmtTime(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// span records one event on this rank's mpi lane when a span log is
// attached.
func (c *Comm) span(name string, start, end float64, args map[string]string) {
	if c.world.spans == nil {
		return
	}
	c.world.spans.Add(telemetry.Span{
		Proc: c.rank, Lane: SpanLane, Cat: SpanCat, Name: name,
		Start: start, End: end, Args: args,
	})
}

// collSpan records one collective on the mpi lane: the interval from
// this rank's entry to its release, pointing at the straggler rank
// (deterministic first-argmax over the arrival clocks) so the
// critical path can hop to the rank that actually gated the operation.
func (c *Comm) collSpan(op string, entry float64, res rendezvousResult) {
	if c.world.spans == nil {
		return
	}
	root := 0
	for i, cl := range res.clocks {
		if cl > res.clocks[root] {
			root = i
		}
	}
	c.span(op, entry, c.clock, map[string]string{
		ArgOp:   op,
		ArgRoot: strconv.Itoa(root),
		ArgGen:  strconv.Itoa(res.gen),
	})
}

// detectFailure converts a simnet.PeerFailedError into a typed
// RankFailedError with heartbeat-modelled detection timing: the
// detector learns of the death no earlier than death + heartbeat, and
// never before its own current clock.
func (c *Comm) detectFailure(pf *simnet.PeerFailedError, blockedSince float64) *RankFailedError {
	detected := math.Max(c.clock, pf.FailedAt+c.world.hb)
	c.clock = detected
	c.count("mpi_failures_detected_total", 1)
	flight.Record(flight.Error, "mpi.rank_failed", c.rank, detected, "heartbeat detector observed peer death", float64(pf.Rank))
	c.span(SpanDetect, blockedSince, detected, map[string]string{
		ArgPeer:     strconv.Itoa(pf.Rank),
		ArgFailedAt: fmtTime(pf.FailedAt),
	})
	return &RankFailedError{
		Rank: pf.Rank, FailedAt: pf.FailedAt,
		DetectedBy: c.rank, DetectedAt: detected,
	}
}

// inject hands a message to the wire at the earliest time ≥ at the NIC
// is free, returning the injection-complete time.
func (c *Comm) inject(r *Request, at float64) (float64, error) {
	start := math.Max(at, c.nicBusyUntil)
	fab := c.world.sw.FabricFor(c.rank, r.dst)
	wire := float64(r.bytes) / fab.BytesPerSecond
	arrives, err := c.world.sw.Send(c.rank, r.dst, r.tag, r.payload, r.bytes, start)
	if err != nil {
		return start, err
	}
	c.nicBusyUntil = start + wire
	r.injected = true
	c.count("mpi_send_serialization_seconds_total", wire)
	if c.world.spans != nil {
		c.span(SpanSend, start, c.nicBusyUntil, map[string]string{
			ArgPeer:    strconv.Itoa(r.dst),
			ArgTag:     strconv.Itoa(r.tag),
			ArgBytes:   strconv.FormatInt(r.bytes, 10),
			ArgSent:    fmtTime(start),
			ArgArrives: fmtTime(arrives),
			ArgFabric:  fab.Name,
		})
	}
	return c.nicBusyUntil, nil
}

// Isend posts a nonblocking send of payload with the given modelled
// wire size. With asynchronous progress the data enters the wire
// immediately; without it (the realistic default, §III-A) the data
// moves only when Wait is called. An injection error (out-of-range
// destination) is deferred to Wait.
func (c *Comm) Isend(dst, tag int, payload any, bytes int64) *Request {
	c.clock += c.Fabric().OverheadSeconds
	c.count("mpi_overhead_seconds_total", c.Fabric().OverheadSeconds)
	c.count("mpi_sends_total", 1)
	c.count("mpi_send_bytes_total", float64(bytes))
	r := &Request{comm: c, send: true, dst: dst, tag: tag, payload: payload, bytes: bytes}
	if c.Fabric().AsyncProgress {
		// Defer any injection error to Wait, like real MPI defers
		// delivery failures to completion.
		r.doneAt, _ = c.inject(r, c.clock)
	}
	return r
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(src, tag int) *Request {
	c.clock += c.Fabric().OverheadSeconds
	c.count("mpi_overhead_seconds_total", c.Fabric().OverheadSeconds)
	return &Request{comm: c, src: src, tag: tag}
}

// Wait completes the request and advances the clock to its completion
// time. For receives, the matched message is then available in
// r.Message. Wait returns a typed error when the peer rank died
// (RankFailedError), the message was dropped beyond the retry budget
// (RetriesExhaustedError), or the peer is out of range.
func (r *Request) Wait() error {
	c := r.comm
	if r.done {
		return nil
	}
	r.done = true
	if r.send {
		if !r.injected {
			// No asynchronous progress: the CPU drives the transfer
			// now, inside Wait.
			var err error
			if r.doneAt, err = c.inject(r, c.clock); err != nil {
				return err
			}
		}
		c.clock = math.Max(c.clock, r.doneAt)
		return nil
	}
	posted := c.clock
	m, err := c.world.sw.Recv(c.rank, r.src, r.tag)
	if err != nil {
		var pf *simnet.PeerFailedError
		if errors.As(err, &pf) {
			return c.detectFailure(pf, posted)
		}
		return err
	}
	arrives := m.ArrivesAt
	if m.DropAttempts > 0 {
		// The wire lost m.DropAttempts transmissions before this copy
		// got through. The reliable transport charges one
		// timeout+backoff per lost attempt, starting from when both the
		// receiver was waiting and the original copy would have
		// arrived.
		// The per-rank policy view: with jitter enabled, this rank's
		// backoff schedule is decorrelated from every other rank's, so
		// a shared drop burst can't re-synchronize the retries.
		pol := c.world.retry.ForRank(c.rank)
		lost := m.DropAttempts
		if lost > pol.MaxRetries {
			charged := pol.totalBackoff(pol.MaxRetries)
			base := math.Max(posted, arrives)
			c.clock = base + charged
			c.count("mpi_retries_total", float64(pol.MaxRetries))
			c.count("mpi_retry_wait_seconds_total", charged)
			c.count("mpi_retries_exhausted_total", 1)
			flight.Record(flight.Error, "mpi.retries_exhausted", c.rank, c.clock, "receive failed after retry budget", float64(lost))
			c.span(SpanRetry, base, c.clock, map[string]string{
				ArgPeer:     strconv.Itoa(m.Src),
				ArgTag:      strconv.Itoa(m.Tag),
				ArgAttempts: strconv.Itoa(lost),
			})
			return &RetriesExhaustedError{
				Src: m.Src, Dst: c.rank, Tag: m.Tag,
				Attempts: lost, MaxRetries: pol.MaxRetries,
			}
		}
		charged := pol.totalBackoff(lost)
		base := math.Max(posted, arrives)
		arrives = base + charged
		c.count("mpi_retries_total", float64(lost))
		c.count("mpi_retry_wait_seconds_total", charged)
		c.span(SpanRetry, base, arrives, map[string]string{
			ArgPeer:     strconv.Itoa(m.Src),
			ArgTag:      strconv.Itoa(m.Tag),
			ArgAttempts: strconv.Itoa(lost),
		})
	}
	r.Message = m
	r.doneAt = arrives
	c.clock = math.Max(c.clock, r.doneAt)
	c.count("mpi_recvs_total", 1)
	c.count("mpi_recv_wait_seconds_total", math.Max(0, r.doneAt-posted))
	if c.world.spans != nil {
		c.span(SpanRecv, posted, c.clock, map[string]string{
			ArgPeer:    strconv.Itoa(r.Message.Src),
			ArgTag:     strconv.Itoa(r.Message.Tag),
			ArgBytes:   strconv.FormatInt(r.Message.Bytes, 10),
			ArgSent:    fmtTime(r.Message.SentAt),
			ArgArrives: fmtTime(r.Message.ArrivesAt),
		})
	}
	return nil
}

// Waitall completes all requests (sends first, so un-progressed data
// enters the wire before receives are drained, as MPI_Waitall would)
// and returns the first error; remaining requests are abandoned when
// one fails, since the run is unwinding anyway.
func (c *Comm) Waitall(reqs []*Request) error {
	for _, r := range reqs {
		if r.send {
			if err := r.Wait(); err != nil {
				return err
			}
		}
	}
	for _, r := range reqs {
		if !r.send {
			if err := r.Wait(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Send is the blocking convenience: Isend + Wait.
func (c *Comm) Send(dst, tag int, payload any, bytes int64) error {
	return c.Isend(dst, tag, payload, bytes).Wait()
}

// Recv is the blocking convenience: Irecv + Wait.
func (c *Comm) Recv(src, tag int) (simnet.Message, error) {
	r := c.Irecv(src, tag)
	if err := r.Wait(); err != nil {
		return simnet.Message{}, err
	}
	return r.Message, nil
}

// logSteps returns ceil(log2(n)), the tree depth of collectives.
func logSteps(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// rendezvous wraps the coordinator call with failure detection: when a
// rank died before completing the collective, every survivor gets a
// RankFailedError with heartbeat detection timing.
func (c *Comm) rendezvous(payload any) (rendezvousResult, error) {
	entry := c.clock
	res, err := c.world.coord.rendezvous(c.rank, c.clock, payload)
	if err != nil {
		var pf *simnet.PeerFailedError
		if errors.As(err, &pf) {
			return res, c.detectFailure(pf, entry)
		}
		return res, err
	}
	return res, nil
}

// Barrier synchronizes all ranks: every clock jumps to the maximum
// plus a tree-depth latency term.
func (c *Comm) Barrier() error {
	entry := c.clock
	res, err := c.rendezvous(nil)
	if err != nil {
		return err
	}
	c.clock = res.maxClock + logSteps(c.Size())*c.Fabric().LatencySeconds
	c.count("mpi_collectives_total", 1, telemetry.L("op", "barrier"))
	c.collSpan("barrier", entry, res)
	return nil
}

// AllreduceSum returns the sum of x over all ranks; clocks
// synchronize to the maximum plus a reduce+broadcast tree cost.
func (c *Comm) AllreduceSum(x float64) (float64, error) {
	entry := c.clock
	res, err := c.rendezvous(x)
	if err != nil {
		return 0, err
	}
	c.clock = res.maxClock + 2*logSteps(c.Size())*c.Fabric().LatencySeconds
	c.count("mpi_collectives_total", 1, telemetry.L("op", "allreduce_sum"))
	c.collSpan("allreduce_sum", entry, res)
	sum := 0.0
	for _, v := range res.payloads {
		sum += v.(float64)
	}
	return sum, nil
}

// AllreduceMax returns the maximum of x over all ranks, with the same
// timing as AllreduceSum.
func (c *Comm) AllreduceMax(x float64) (float64, error) {
	entry := c.clock
	res, err := c.rendezvous(x)
	if err != nil {
		return 0, err
	}
	c.clock = res.maxClock + 2*logSteps(c.Size())*c.Fabric().LatencySeconds
	c.count("mpi_collectives_total", 1, telemetry.L("op", "allreduce_max"))
	c.collSpan("allreduce_max", entry, res)
	max := math.Inf(-1)
	for _, v := range res.payloads {
		if f := v.(float64); f > max {
			max = f
		}
	}
	return max, nil
}

// AllgatherUntimed exchanges arbitrary per-rank payloads without
// advancing any clock. It exists for setup phases — building the
// communication pattern of the distributed spMVM — and for checkpoint
// assembly, which the paper's measurements exclude.
func (c *Comm) AllgatherUntimed(payload any) ([]any, error) {
	res, err := c.rendezvous(payload)
	if err != nil {
		return nil, err
	}
	out := make([]any, len(res.payloads))
	copy(out, res.payloads)
	return out, nil
}
