// Package mpi is an MPI-flavoured message-passing layer over the
// virtual-time fabric of internal/simnet. Ranks run as goroutines;
// payloads really move (so distributed results are verified against
// the serial reference), and every operation advances a per-rank
// virtual clock from which the strong-scaling results of Fig. 5 are
// derived.
//
// The layer reproduces the §III-A distinction the paper's three
// communication schemes hinge on: with Fabric.AsyncProgress false
// (the realistic default), a nonblocking Isend does not move data
// until the matching Wait, so "naive overlap" of communication with
// computation gains nothing; true overlap needs a dedicated
// communication thread, which callers model by running communication
// and computation on forked clocks and joining them with MaxClock.
package mpi

import (
	"fmt"
	"math"
	"strconv"
	"sync"

	"pjds/internal/simnet"
	"pjds/internal/telemetry"
)

// Comm is one rank's endpoint: a rank id, a virtual clock, and the
// shared switch and collective coordinator.
type Comm struct {
	rank  int
	world *World
	clock float64
	// nicBusyUntil serializes message injection at this rank's NIC.
	nicBusyUntil float64
}

// Request is a pending nonblocking operation.
type Request struct {
	comm *Comm
	send bool
	done bool

	// send fields
	dst, tag int
	payload  any
	bytes    int64
	injected bool    // true once handed to the wire
	doneAt   float64 // injection end (send) or arrival (recv)

	// recv fields
	src     int
	Message simnet.Message // filled after Wait for receives
}

// World owns the shared state of one simulated run.
type World struct {
	sw      *simnet.Switch
	coord   *coordinator
	errs    []error
	comms   []*Comm
	metrics *telemetry.Registry
	spans   *telemetry.SpanLog
}

// Run executes body on n ranks over the given fabric and returns the
// final virtual clock of every rank. A panic in a rank body is
// converted into an error carrying the rank id; the first error (by
// rank) is returned.
func Run(n int, fabric *simnet.Fabric, body func(*Comm) error) ([]float64, error) {
	return RunWithOptions(n, fabric, Options{}, body)
}

// RunWithTopology is Run for clusters with several ranks (GPUs) per
// physical node: consecutive groups of ranksPerNode ranks exchange
// messages over the intra fabric (nil selects simnet.SharedMemory when
// ranksPerNode > 1).
func RunWithTopology(n int, fabric *simnet.Fabric, ranksPerNode int, intra *simnet.Fabric, body func(*Comm) error) ([]float64, error) {
	return RunWithOptions(n, fabric, Options{RanksPerNode: ranksPerNode, Intra: intra}, body)
}

// Options parameterize a simulated run beyond the interconnect model.
type Options struct {
	// RanksPerNode places that many consecutive ranks on one physical
	// node (0 or 1 = one rank per node).
	RanksPerNode int
	// Intra is the intra-node fabric (nil selects simnet.SharedMemory
	// when RanksPerNode > 1).
	Intra *simnet.Fabric
	// Metrics receives message-passing telemetry: per-rank send/recv
	// counts and bytes, serialization and receive-wait time, and
	// collective counts (plus the simnet wire-level series).
	Metrics *telemetry.Registry
	// Spans (nil = off) receives one span per message-passing event on
	// each rank's "mpi" lane: sends cover the NIC injection interval
	// and carry peer/tag/bytes/arrives args, receives cover the
	// posted-to-completion interval, and collectives cover the
	// entry-to-release interval with the straggler rank as "root".
	// These args are what internal/critpath builds cross-rank
	// happens-before edges from.
	Spans *telemetry.SpanLog
}

// RunWithOptions is the fully-parameterized Run.
func RunWithOptions(n int, fabric *simnet.Fabric, opt Options, body func(*Comm) error) ([]float64, error) {
	sw, err := simnet.NewSwitch(fabric, n)
	if err != nil {
		return nil, err
	}
	if opt.RanksPerNode > 1 {
		intra := opt.Intra
		if intra == nil {
			intra = simnet.SharedMemory()
		}
		if err := sw.SetTopology(opt.RanksPerNode, intra); err != nil {
			return nil, err
		}
	}
	if opt.Metrics != nil {
		sw.SetMetrics(opt.Metrics)
		opt.Metrics.Help("mpi_sends_total", "point-to-point sends posted")
		opt.Metrics.Help("mpi_send_bytes_total", "modelled bytes posted for sending")
		opt.Metrics.Help("mpi_recvs_total", "point-to-point receives completed")
		opt.Metrics.Help("mpi_send_serialization_seconds_total", "NIC injection (serialization) time per rank")
		opt.Metrics.Help("mpi_recv_wait_seconds_total", "virtual time spent blocked in receive waits")
		opt.Metrics.Help("mpi_overhead_seconds_total", "host CPU overhead of posting operations (LogGP o)")
		opt.Metrics.Help("mpi_collectives_total", "collective operations by kind")
	}
	w := &World{
		metrics: opt.Metrics,
		spans:   opt.Spans,
		sw:      sw,
		coord:   newCoordinator(n),
		errs:    make([]error, n),
		comms:   make([]*Comm, n),
	}
	for i := range w.comms {
		w.comms[i] = &Comm{rank: i, world: w}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					w.errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, r)
				}
			}()
			w.errs[rank] = body(w.comms[rank])
		}(i)
	}
	wg.Wait()
	clocks := make([]float64, n)
	for i, c := range w.comms {
		clocks[i] = c.clock
	}
	for _, err := range w.errs {
		if err != nil {
			return clocks, err
		}
	}
	return clocks, nil
}

// Rank returns this endpoint's rank id.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.world.sw.Ranks() }

// Fabric returns the interconnect model.
func (c *Comm) Fabric() *simnet.Fabric { return c.world.sw.Fabric() }

// Clock returns the rank's current virtual time in seconds.
func (c *Comm) Clock() float64 { return c.clock }

// Advance adds local compute time to the clock.
func (c *Comm) Advance(dt float64) {
	if dt < 0 {
		panic("mpi: negative time advance")
	}
	c.clock += dt
}

// SetClock moves the clock to t; callers use it to join forked
// timelines (task mode) and must never move time backwards.
func (c *Comm) SetClock(t float64) {
	if t < c.clock {
		panic(fmt.Sprintf("mpi: clock moving backwards: %g < %g", t, c.clock))
	}
	c.clock = t
}

// count adds v to a per-rank counter when telemetry is attached.
func (c *Comm) count(name string, v float64, extra ...telemetry.Label) {
	if reg := c.world.metrics; reg != nil {
		reg.Counter(name, append([]telemetry.Label{telemetry.Li("rank", c.rank)}, extra...)...).Add(v)
	}
}

// Span vocabulary of the per-rank "mpi" lane, consumed by
// internal/critpath to build cross-rank happens-before edges.
const (
	// SpanLane and SpanCat identify message-passing spans.
	SpanLane = "mpi"
	SpanCat  = "net"
	// SpanSend covers a message's NIC injection interval; SpanRecv the
	// posted-to-completion interval of a receive.
	SpanSend = "send"
	SpanRecv = "recv"
	// Args attached to the spans above. Times are virtual seconds in
	// strconv 'g'/-1 form (exact float64 round trip).
	ArgPeer    = "peer"    // the other rank of a point-to-point message
	ArgTag     = "tag"     // message tag
	ArgBytes   = "bytes"   // modelled wire size
	ArgSent    = "sent"    // injection start (SentAt)
	ArgArrives = "arrives" // arrival time at the destination
	ArgFabric  = "fabric"  // fabric carrying the message
	ArgOp      = "op"      // collective kind
	ArgRoot    = "root"    // collective straggler: the rank that set maxClock
	ArgGen     = "gen"     // rendezvous generation, one id per collective instance
)

// fmtTime renders a virtual time so it round-trips exactly through the
// span args.
func fmtTime(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// span records one event on this rank's mpi lane when a span log is
// attached.
func (c *Comm) span(name string, start, end float64, args map[string]string) {
	if c.world.spans == nil {
		return
	}
	c.world.spans.Add(telemetry.Span{
		Proc: c.rank, Lane: SpanLane, Cat: SpanCat, Name: name,
		Start: start, End: end, Args: args,
	})
}

// collSpan records one collective on the mpi lane: the interval from
// this rank's entry to its release, pointing at the straggler rank
// (deterministic first-argmax over the arrival clocks) so the
// critical path can hop to the rank that actually gated the operation.
func (c *Comm) collSpan(op string, entry float64, res rendezvousResult) {
	if c.world.spans == nil {
		return
	}
	root := 0
	for i, cl := range res.clocks {
		if cl > res.clocks[root] {
			root = i
		}
	}
	c.span(op, entry, c.clock, map[string]string{
		ArgOp:   op,
		ArgRoot: strconv.Itoa(root),
		ArgGen:  strconv.Itoa(res.gen),
	})
}

// inject hands a message to the wire at the earliest time ≥ at the NIC
// is free, returning the injection-complete time.
func (c *Comm) inject(r *Request, at float64) float64 {
	start := math.Max(at, c.nicBusyUntil)
	fab := c.world.sw.FabricFor(c.rank, r.dst)
	wire := float64(r.bytes) / fab.BytesPerSecond
	c.nicBusyUntil = start + wire
	arrives := c.world.sw.Send(c.rank, r.dst, r.tag, r.payload, r.bytes, start)
	r.injected = true
	c.count("mpi_send_serialization_seconds_total", wire)
	if c.world.spans != nil {
		c.span(SpanSend, start, c.nicBusyUntil, map[string]string{
			ArgPeer:    strconv.Itoa(r.dst),
			ArgTag:     strconv.Itoa(r.tag),
			ArgBytes:   strconv.FormatInt(r.bytes, 10),
			ArgSent:    fmtTime(start),
			ArgArrives: fmtTime(arrives),
			ArgFabric:  fab.Name,
		})
	}
	return c.nicBusyUntil
}

// Isend posts a nonblocking send of payload with the given modelled
// wire size. With asynchronous progress the data enters the wire
// immediately; without it (the realistic default, §III-A) the data
// moves only when Wait is called.
func (c *Comm) Isend(dst, tag int, payload any, bytes int64) *Request {
	c.clock += c.Fabric().OverheadSeconds
	c.count("mpi_overhead_seconds_total", c.Fabric().OverheadSeconds)
	c.count("mpi_sends_total", 1)
	c.count("mpi_send_bytes_total", float64(bytes))
	r := &Request{comm: c, send: true, dst: dst, tag: tag, payload: payload, bytes: bytes}
	if c.Fabric().AsyncProgress {
		r.doneAt = c.inject(r, c.clock)
	}
	return r
}

// Irecv posts a nonblocking receive.
func (c *Comm) Irecv(src, tag int) *Request {
	c.clock += c.Fabric().OverheadSeconds
	c.count("mpi_overhead_seconds_total", c.Fabric().OverheadSeconds)
	return &Request{comm: c, src: src, tag: tag}
}

// Wait completes the request and advances the clock to its completion
// time. For receives, the matched message is then available in
// r.Message.
func (r *Request) Wait() {
	c := r.comm
	if r.done {
		return
	}
	r.done = true
	if r.send {
		if !r.injected {
			// No asynchronous progress: the CPU drives the transfer
			// now, inside Wait.
			r.doneAt = c.inject(r, c.clock)
		}
		c.clock = math.Max(c.clock, r.doneAt)
		return
	}
	posted := c.clock
	r.Message = c.world.sw.Recv(c.rank, r.src, r.tag)
	r.doneAt = r.Message.ArrivesAt
	c.clock = math.Max(c.clock, r.doneAt)
	c.count("mpi_recvs_total", 1)
	c.count("mpi_recv_wait_seconds_total", math.Max(0, r.doneAt-posted))
	if c.world.spans != nil {
		c.span(SpanRecv, posted, c.clock, map[string]string{
			ArgPeer:    strconv.Itoa(r.Message.Src),
			ArgTag:     strconv.Itoa(r.Message.Tag),
			ArgBytes:   strconv.FormatInt(r.Message.Bytes, 10),
			ArgSent:    fmtTime(r.Message.SentAt),
			ArgArrives: fmtTime(r.Message.ArrivesAt),
		})
	}
}

// Waitall completes all requests (sends first, so un-progressed data
// enters the wire before receives are drained, as MPI_Waitall would).
func (c *Comm) Waitall(reqs []*Request) {
	for _, r := range reqs {
		if r.send {
			r.Wait()
		}
	}
	for _, r := range reqs {
		if !r.send {
			r.Wait()
		}
	}
}

// Send is the blocking convenience: Isend + Wait.
func (c *Comm) Send(dst, tag int, payload any, bytes int64) {
	c.Isend(dst, tag, payload, bytes).Wait()
}

// Recv is the blocking convenience: Irecv + Wait.
func (c *Comm) Recv(src, tag int) simnet.Message {
	r := c.Irecv(src, tag)
	r.Wait()
	return r.Message
}

// logSteps returns ceil(log2(n)), the tree depth of collectives.
func logSteps(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// Barrier synchronizes all ranks: every clock jumps to the maximum
// plus a tree-depth latency term.
func (c *Comm) Barrier() {
	entry := c.clock
	res := c.world.coord.rendezvous(c.rank, c.clock, nil)
	c.clock = res.maxClock + logSteps(c.Size())*c.Fabric().LatencySeconds
	c.count("mpi_collectives_total", 1, telemetry.L("op", "barrier"))
	c.collSpan("barrier", entry, res)
}

// AllreduceSum returns the sum of x over all ranks; clocks
// synchronize to the maximum plus a reduce+broadcast tree cost.
func (c *Comm) AllreduceSum(x float64) float64 {
	entry := c.clock
	res := c.world.coord.rendezvous(c.rank, c.clock, x)
	c.clock = res.maxClock + 2*logSteps(c.Size())*c.Fabric().LatencySeconds
	c.count("mpi_collectives_total", 1, telemetry.L("op", "allreduce_sum"))
	c.collSpan("allreduce_sum", entry, res)
	sum := 0.0
	for _, v := range res.payloads {
		sum += v.(float64)
	}
	return sum
}

// AllreduceMax returns the maximum of x over all ranks, with the same
// timing as AllreduceSum.
func (c *Comm) AllreduceMax(x float64) float64 {
	entry := c.clock
	res := c.world.coord.rendezvous(c.rank, c.clock, x)
	c.clock = res.maxClock + 2*logSteps(c.Size())*c.Fabric().LatencySeconds
	c.count("mpi_collectives_total", 1, telemetry.L("op", "allreduce_max"))
	c.collSpan("allreduce_max", entry, res)
	max := math.Inf(-1)
	for _, v := range res.payloads {
		if f := v.(float64); f > max {
			max = f
		}
	}
	return max
}

// AllgatherUntimed exchanges arbitrary per-rank payloads without
// advancing any clock. It exists for setup phases — building the
// communication pattern of the distributed spMVM — which the paper's
// measurements exclude.
func (c *Comm) AllgatherUntimed(payload any) []any {
	res := c.world.coord.rendezvous(c.rank, c.clock, payload)
	out := make([]any, len(res.payloads))
	copy(out, res.payloads)
	return out
}
