package mpi

import (
	"errors"
	"math"
	"testing"

	"pjds/internal/simnet"
	"pjds/internal/telemetry"
)

// dropAll is a test injector dropping a fixed number of transmission
// attempts on every message.
type dropAll struct{ attempts int }

func (d dropAll) OnSend(src, dst, tag int, bytes int64, seq int64) simnet.SendFault {
	return simnet.SendFault{DropAttempts: d.attempts}
}

// TestRetryPolicyTable exercises the backoff schedule itself over the
// edge cases: zero timeout, no factor, factor growth, and the cap.
// The virtual clock is fully deterministic, so exact equality holds.
func TestRetryPolicyTable(t *testing.T) {
	cases := []struct {
		name  string
		pol   RetryPolicy
		lost  int
		total float64
	}{
		{"zero timeout", RetryPolicy{MaxRetries: 4}, 3, 0},
		{"constant, no factor", RetryPolicy{MaxRetries: 4, TimeoutSeconds: 1e-3}, 3, 3e-3},
		{"exponential backoff", RetryPolicy{MaxRetries: 8, TimeoutSeconds: 1e-4, BackoffFactor: 2}, 4, (1 + 2 + 4 + 8) * 1e-4},
		{"backoff cap", RetryPolicy{MaxRetries: 8, TimeoutSeconds: 1e-4, BackoffFactor: 10, MaxBackoffSeconds: 5e-4}, 4, (1 + 5 + 5 + 5) * 1e-4},
		{"factor below one is constant", RetryPolicy{MaxRetries: 4, TimeoutSeconds: 2e-3, BackoffFactor: 0.5}, 2, 4e-3},
	}
	for _, c := range cases {
		if got := c.pol.totalBackoff(c.lost); math.Abs(got-c.total) > 1e-15 {
			t.Errorf("%s: totalBackoff(%d) = %g, want %g", c.name, c.lost, got, c.total)
		}
	}
	if !(RetryPolicy{}).isZero() {
		t.Error("zero policy not recognized")
	}
	if (RetryPolicy{MaxRetries: 3}).isZero() {
		t.Error("explicit zero-timeout policy mistaken for the default")
	}
}

// TestRecvChargesRetryBackoff: a dropped message charges the receiver
// one deadline per lost attempt, deterministically.
func TestRecvChargesRetryBackoff(t *testing.T) {
	cases := []struct {
		name    string
		pol     RetryPolicy
		lost    int
		charged float64
	}{
		{"zero timeout retries are free", RetryPolicy{MaxRetries: 4}, 2, 0},
		{"expired deadline per attempt", RetryPolicy{MaxRetries: 4, TimeoutSeconds: 1e-3}, 2, 2e-3},
		{"capped exponential", RetryPolicy{MaxRetries: 8, TimeoutSeconds: 1e-4, BackoffFactor: 2, MaxBackoffSeconds: 2e-4}, 3, (1 + 2 + 2) * 1e-4},
	}
	for _, tc := range cases {
		reg := telemetry.NewRegistry()
		opt := Options{Faults: dropAll{tc.lost}, Retry: tc.pol, Metrics: reg}
		var healthy, faulty float64
		// Reference run without drops to isolate the charged backoff.
		_, err := RunWithOptions(2, fabric(), Options{Retry: tc.pol}, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, nil, 800)
			}
			_, err := c.Recv(0, 0)
			healthy = c.Clock()
			return err
		})
		if err != nil {
			t.Fatalf("%s: healthy run: %v", tc.name, err)
		}
		_, err = RunWithOptions(2, fabric(), opt, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, nil, 800)
			}
			_, err := c.Recv(0, 0)
			faulty = c.Clock()
			return err
		})
		if err != nil {
			t.Fatalf("%s: faulty run: %v", tc.name, err)
		}
		if got := faulty - healthy; math.Abs(got-tc.charged) > 1e-12 {
			t.Errorf("%s: charged %g, want %g", tc.name, got, tc.charged)
		}
		lbl := telemetry.Li("rank", 1)
		if got := reg.Counter("mpi_retries_total", lbl).Value(); got != float64(tc.lost) {
			t.Errorf("%s: retries counter = %g, want %d", tc.name, got, tc.lost)
		}
	}
}

// TestRecvRetriesExhausted: more drops than the budget tolerates fail
// the receive with a typed error naming the link and counts.
func TestRecvRetriesExhausted(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 2, TimeoutSeconds: 1e-4, BackoffFactor: 2}
	_, err := RunWithOptions(2, fabric(), Options{Faults: dropAll{5}, Retry: pol}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, nil, 800)
		}
		_, err := c.Recv(0, 0)
		return err
	})
	var re *RetriesExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetriesExhaustedError", err)
	}
	if re.Src != 0 || re.Dst != 1 || re.Attempts != 5 || re.MaxRetries != 2 {
		t.Errorf("error fields = %+v", re)
	}
}

// TestCrashDetectedByBlockedReceiver: an injected crash converts the
// survivor's blocked receive into a RankFailedError whose detection
// time is the death time plus the heartbeat period.
func TestCrashDetectedByBlockedReceiver(t *testing.T) {
	const hb = 1e-3
	var got *RankFailedError
	_, err := RunWithOptions(2, fabric(), Options{HeartbeatSeconds: hb}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Advance(0.5)
			return c.Crash()
		}
		_, err := c.Recv(0, 7)
		errors.As(err, &got)
		if got != nil && math.Abs(c.Clock()-got.DetectedAt) > 1e-15 {
			t.Errorf("detector clock %g != DetectedAt %g", c.Clock(), got.DetectedAt)
		}
		return err
	})
	if err == nil {
		t.Fatal("crash not surfaced")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("run err = %v, want *RankFailedError", err)
	}
	// Run prefers the root cause: the crashing rank's own report.
	if rf.DetectedBy != -1 || rf.Rank != 0 || rf.FailedAt != 0.5 {
		t.Errorf("root cause = %+v", rf)
	}
	if got == nil {
		t.Fatal("survivor did not observe a RankFailedError")
	}
	if got.Rank != 0 || got.DetectedBy != 1 {
		t.Errorf("survivor observation = %+v", got)
	}
	if want := 0.5 + hb; math.Abs(got.DetectedAt-want) > 1e-15 {
		t.Errorf("DetectedAt = %g, want %g (death + heartbeat)", got.DetectedAt, want)
	}
}

// TestCrashBreaksCollectives: survivors blocked in a collective unwind
// with a typed error instead of deadlocking.
func TestCrashBreaksCollectives(t *testing.T) {
	_, err := Run(3, fabric(), func(c *Comm) error {
		if c.Rank() == 2 {
			return c.Crash()
		}
		_, err := c.AllreduceSum(1)
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 2 {
			t.Errorf("rank %d: collective err = %v", c.Rank(), err)
		}
		return err
	})
	if err == nil {
		t.Fatal("crash not surfaced through collective")
	}
}

// TestBodyErrorUnblocksPeers: a plain body error also marks the rank
// dead so a peer blocked on it does not hang.
func TestBodyErrorUnblocksPeers(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(2, fabric(), func(c *Comm) error {
		if c.Rank() == 0 {
			return sentinel
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want root cause %v", err, sentinel)
	}
}

// TestSendOutOfRangeSurfacesTypedError: the simnet RangeError reaches
// the caller through Wait instead of panicking.
func TestSendOutOfRangeSurfacesTypedError(t *testing.T) {
	_, err := Run(1, fabric(), func(c *Comm) error {
		return c.Send(5, 0, nil, 8)
	})
	var re *simnet.RangeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *simnet.RangeError", err)
	}
}
