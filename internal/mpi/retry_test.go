package mpi

import (
	"errors"
	"math"
	"testing"

	"pjds/internal/simnet"
	"pjds/internal/telemetry"
)

// dropAll is a test injector dropping a fixed number of transmission
// attempts on every message.
type dropAll struct{ attempts int }

func (d dropAll) OnSend(src, dst, tag int, bytes int64, seq int64) simnet.SendFault {
	return simnet.SendFault{DropAttempts: d.attempts}
}

// TestRetryPolicyTable exercises the backoff schedule itself over the
// edge cases: zero timeout, no factor, factor growth, and the cap.
// The virtual clock is fully deterministic, so exact equality holds.
func TestRetryPolicyTable(t *testing.T) {
	cases := []struct {
		name  string
		pol   RetryPolicy
		lost  int
		total float64
	}{
		{"zero timeout", RetryPolicy{MaxRetries: 4}, 3, 0},
		{"constant, no factor", RetryPolicy{MaxRetries: 4, TimeoutSeconds: 1e-3}, 3, 3e-3},
		{"exponential backoff", RetryPolicy{MaxRetries: 8, TimeoutSeconds: 1e-4, BackoffFactor: 2}, 4, (1 + 2 + 4 + 8) * 1e-4},
		{"backoff cap", RetryPolicy{MaxRetries: 8, TimeoutSeconds: 1e-4, BackoffFactor: 10, MaxBackoffSeconds: 5e-4}, 4, (1 + 5 + 5 + 5) * 1e-4},
		{"factor below one is constant", RetryPolicy{MaxRetries: 4, TimeoutSeconds: 2e-3, BackoffFactor: 0.5}, 2, 4e-3},
	}
	for _, c := range cases {
		if got := c.pol.totalBackoff(c.lost); math.Abs(got-c.total) > 1e-15 {
			t.Errorf("%s: totalBackoff(%d) = %g, want %g", c.name, c.lost, got, c.total)
		}
	}
	if !(RetryPolicy{}).isZero() {
		t.Error("zero policy not recognized")
	}
	if (RetryPolicy{MaxRetries: 3}).isZero() {
		t.Error("explicit zero-timeout policy mistaken for the default")
	}
}

// TestRecvChargesRetryBackoff: a dropped message charges the receiver
// one deadline per lost attempt, deterministically.
func TestRecvChargesRetryBackoff(t *testing.T) {
	cases := []struct {
		name    string
		pol     RetryPolicy
		lost    int
		charged float64
	}{
		{"zero timeout retries are free", RetryPolicy{MaxRetries: 4}, 2, 0},
		{"expired deadline per attempt", RetryPolicy{MaxRetries: 4, TimeoutSeconds: 1e-3}, 2, 2e-3},
		{"capped exponential", RetryPolicy{MaxRetries: 8, TimeoutSeconds: 1e-4, BackoffFactor: 2, MaxBackoffSeconds: 2e-4}, 3, (1 + 2 + 2) * 1e-4},
	}
	for _, tc := range cases {
		reg := telemetry.NewRegistry()
		opt := Options{Faults: dropAll{tc.lost}, Retry: tc.pol, Metrics: reg}
		var healthy, faulty float64
		// Reference run without drops to isolate the charged backoff.
		_, err := RunWithOptions(2, fabric(), Options{Retry: tc.pol}, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, nil, 800)
			}
			_, err := c.Recv(0, 0)
			healthy = c.Clock()
			return err
		})
		if err != nil {
			t.Fatalf("%s: healthy run: %v", tc.name, err)
		}
		_, err = RunWithOptions(2, fabric(), opt, func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, nil, 800)
			}
			_, err := c.Recv(0, 0)
			faulty = c.Clock()
			return err
		})
		if err != nil {
			t.Fatalf("%s: faulty run: %v", tc.name, err)
		}
		if got := faulty - healthy; math.Abs(got-tc.charged) > 1e-12 {
			t.Errorf("%s: charged %g, want %g", tc.name, got, tc.charged)
		}
		lbl := telemetry.Li("rank", 1)
		if got := reg.Counter("mpi_retries_total", lbl).Value(); got != float64(tc.lost) {
			t.Errorf("%s: retries counter = %g, want %d", tc.name, got, tc.lost)
		}
	}
}

// TestRecvRetriesExhausted: more drops than the budget tolerates fail
// the receive with a typed error naming the link and counts.
func TestRecvRetriesExhausted(t *testing.T) {
	pol := RetryPolicy{MaxRetries: 2, TimeoutSeconds: 1e-4, BackoffFactor: 2}
	_, err := RunWithOptions(2, fabric(), Options{Faults: dropAll{5}, Retry: pol}, func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 0, nil, 800)
		}
		_, err := c.Recv(0, 0)
		return err
	})
	var re *RetriesExhaustedError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RetriesExhaustedError", err)
	}
	if re.Src != 0 || re.Dst != 1 || re.Attempts != 5 || re.MaxRetries != 2 {
		t.Errorf("error fields = %+v", re)
	}
}

// TestCrashDetectedByBlockedReceiver: an injected crash converts the
// survivor's blocked receive into a RankFailedError whose detection
// time is the death time plus the heartbeat period.
func TestCrashDetectedByBlockedReceiver(t *testing.T) {
	const hb = 1e-3
	var got *RankFailedError
	_, err := RunWithOptions(2, fabric(), Options{HeartbeatSeconds: hb}, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Advance(0.5)
			return c.Crash()
		}
		_, err := c.Recv(0, 7)
		errors.As(err, &got)
		if got != nil && math.Abs(c.Clock()-got.DetectedAt) > 1e-15 {
			t.Errorf("detector clock %g != DetectedAt %g", c.Clock(), got.DetectedAt)
		}
		return err
	})
	if err == nil {
		t.Fatal("crash not surfaced")
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("run err = %v, want *RankFailedError", err)
	}
	// Run prefers the root cause: the crashing rank's own report.
	if rf.DetectedBy != -1 || rf.Rank != 0 || rf.FailedAt != 0.5 {
		t.Errorf("root cause = %+v", rf)
	}
	if got == nil {
		t.Fatal("survivor did not observe a RankFailedError")
	}
	if got.Rank != 0 || got.DetectedBy != 1 {
		t.Errorf("survivor observation = %+v", got)
	}
	if want := 0.5 + hb; math.Abs(got.DetectedAt-want) > 1e-15 {
		t.Errorf("DetectedAt = %g, want %g (death + heartbeat)", got.DetectedAt, want)
	}
}

// TestCrashBreaksCollectives: survivors blocked in a collective unwind
// with a typed error instead of deadlocking.
func TestCrashBreaksCollectives(t *testing.T) {
	_, err := Run(3, fabric(), func(c *Comm) error {
		if c.Rank() == 2 {
			return c.Crash()
		}
		_, err := c.AllreduceSum(1)
		var rf *RankFailedError
		if !errors.As(err, &rf) || rf.Rank != 2 {
			t.Errorf("rank %d: collective err = %v", c.Rank(), err)
		}
		return err
	})
	if err == nil {
		t.Fatal("crash not surfaced through collective")
	}
}

// TestBodyErrorUnblocksPeers: a plain body error also marks the rank
// dead so a peer blocked on it does not hang.
func TestBodyErrorUnblocksPeers(t *testing.T) {
	sentinel := errors.New("boom")
	_, err := Run(2, fabric(), func(c *Comm) error {
		if c.Rank() == 0 {
			return sentinel
		}
		_, err := c.Recv(0, 0)
		return err
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want root cause %v", err, sentinel)
	}
}

// TestSendOutOfRangeSurfacesTypedError: the simnet RangeError reaches
// the caller through Wait instead of panicking.
func TestSendOutOfRangeSurfacesTypedError(t *testing.T) {
	_, err := Run(1, fabric(), func(c *Comm) error {
		return c.Send(5, 0, nil, 8)
	})
	var re *simnet.RangeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *simnet.RangeError", err)
	}
}

// TestJitterBounds: every jittered step stays strictly inside the
// ±frac band around the unjittered schedule, including steps parked at
// the MaxBackoffSeconds cap (jitter applies after the cap).
func TestJitterBounds(t *testing.T) {
	pol := RetryPolicy{
		MaxRetries:        12,
		TimeoutSeconds:    50e-6,
		BackoffFactor:     2,
		MaxBackoffSeconds: 1e-3,
		JitterFrac:        0.25,
		JitterSeed:        0xdecade,
	}
	for rank := 0; rank < 64; rank++ {
		rp := pol.ForRank(rank)
		for i := 0; i <= pol.MaxRetries; i++ {
			base := pol.BackoffSeconds(i)
			got := rp.BackoffSeconds(i)
			lo, hi := base*(1-pol.JitterFrac), base*(1+pol.JitterFrac)
			if got < lo || got >= hi {
				t.Fatalf("rank %d attempt %d: jittered %g outside [%g, %g)", rank, i, got, lo, hi)
			}
		}
	}
}

// TestJitterDeterministicPerRank: the same (seed, rank, attempt)
// always reproduces the same step, and distinct ranks decorrelate —
// that decorrelation is the whole point of the jitter.
func TestJitterDeterministicPerRank(t *testing.T) {
	pol := DefaultRetry
	pol.JitterFrac, pol.JitterSeed = 0.5, 7

	r3 := pol.ForRank(3)
	if a, b := r3.BackoffSeconds(2), pol.ForRank(3).BackoffSeconds(2); a != b {
		t.Fatalf("same (seed, rank, attempt) not reproducible: %g != %g", a, b)
	}

	distinct := 0
	for i := 0; i <= pol.MaxRetries; i++ {
		if pol.ForRank(0).BackoffSeconds(i) != pol.ForRank(1).BackoffSeconds(i) {
			distinct++
		}
	}
	if distinct == 0 {
		t.Fatal("ranks 0 and 1 share an identical jittered schedule; retry storm not broken")
	}

	alt := pol
	alt.JitterSeed = 8
	if pol.ForRank(3).BackoffSeconds(2) == alt.ForRank(3).BackoffSeconds(2) {
		t.Error("different seeds produced the same step (suspicious mixing)")
	}
}

// TestJitterZeroFracIsIdentity: the default JitterFrac of 0 leaves the
// schedule bit-identical — pre-jitter artifacts must replay exactly.
func TestJitterZeroFracIsIdentity(t *testing.T) {
	pol := DefaultRetry
	for rank := 0; rank < 4; rank++ {
		rp := pol.ForRank(rank)
		for i := 0; i <= pol.MaxRetries; i++ {
			if got, want := rp.BackoffSeconds(i), pol.BackoffSeconds(i); got != want {
				t.Fatalf("rank %d attempt %d: frac=0 changed step %g -> %g", rank, i, want, got)
			}
		}
		if got, want := rp.totalBackoff(pol.MaxRetries+1), pol.totalBackoff(pol.MaxRetries+1); got != want {
			t.Fatalf("rank %d: frac=0 changed totalBackoff %g -> %g", rank, want, got)
		}
	}
}

// TestJitterTotalBackoffSumsSteps: a rank's total charge is exactly
// the sum of its per-attempt jittered steps.
func TestJitterTotalBackoffSumsSteps(t *testing.T) {
	pol := DefaultRetry
	pol.JitterFrac, pol.JitterSeed = 0.3, 99
	rp := pol.ForRank(5)
	sum := 0.0
	for i := 0; i < 6; i++ {
		sum += rp.BackoffSeconds(i)
	}
	if got := rp.totalBackoff(6); got != sum {
		t.Fatalf("totalBackoff(6) = %g, want sum of steps %g", got, sum)
	}
}

// TestJitterOnlyPolicyKeepsDefaults: a policy whose only non-zero
// fields are the jitter knobs still selects the DefaultRetry schedule
// (the four schedule fields are zero), with the jitter carried over
// instead of silently dropped.
func TestJitterOnlyPolicyKeepsDefaults(t *testing.T) {
	got := RetryPolicy{JitterFrac: 0.2, JitterSeed: 1}.normalized()
	want := DefaultRetry
	want.JitterFrac, want.JitterSeed = 0.2, 1
	if got != want {
		t.Fatalf("normalized jitter-only policy = %+v, want %+v", got, want)
	}

	// A non-zero schedule passes through untouched, jitter included.
	explicit := RetryPolicy{MaxRetries: 3, TimeoutSeconds: 1e-6, JitterFrac: 0.1, JitterSeed: 4}
	if got := explicit.normalized(); got != explicit {
		t.Fatalf("normalized explicit policy = %+v, want unchanged %+v", got, explicit)
	}
}

// TestJitterClampAndPassthrough: Jitter's edge cases — frac ≥ 1 is
// clamped below 1 (a step can never reach zero or double), frac ≤ 0
// and non-positive d pass through unchanged.
func TestJitterClampAndPassthrough(t *testing.T) {
	const d = 1e-3
	for step := uint64(0); step < 256; step++ {
		got := Jitter(d, 5, 1, 2, step)
		if got <= 0 || got >= 2*d {
			t.Fatalf("step %d: frac clamp failed, Jitter = %g outside (0, %g)", step, got, 2*d)
		}
	}
	if got := Jitter(d, 0, 1, 2, 3); got != d {
		t.Errorf("frac=0: Jitter = %g, want %g", got, d)
	}
	if got := Jitter(d, -1, 1, 2, 3); got != d {
		t.Errorf("frac<0: Jitter = %g, want %g", got, d)
	}
	if got := Jitter(0, 0.5, 1, 2, 3); got != 0 {
		t.Errorf("d=0: Jitter = %g, want 0", got)
	}
	if got := Jitter(-d, 0.5, 1, 2, 3); got != -d {
		t.Errorf("d<0: Jitter = %g, want %g", got, -d)
	}
}

// TestRecvChargesJitteredBackoff: end to end through RunWithOptions, a
// jittered policy still charges the receiver a total inside the ±frac
// band of the unjittered schedule — the wiring in Recv really goes
// through ForRank.
func TestRecvChargesJitteredBackoff(t *testing.T) {
	pol := RetryPolicy{
		MaxRetries:     4,
		TimeoutSeconds: 100e-6,
		BackoffFactor:  2,
		JitterFrac:     0.25,
		JitterSeed:     11,
	}
	const lost = 2
	clocks, err := RunWithOptions(2, fabric(), Options{Faults: dropAll{lost}, Retry: pol},
		func(c *Comm) error {
			if c.Rank() == 0 {
				return c.Send(1, 0, nil, 64)
			}
			_, err := c.Recv(0, 0)
			return err
		})
	if err != nil {
		t.Fatalf("RunWithOptions: %v", err)
	}
	charged := clocks[1]
	want := pol.ForRank(1).totalBackoff(lost)
	lo, hi := pol.totalBackoff(lost)*(1-pol.JitterFrac), pol.totalBackoff(lost)*(1+pol.JitterFrac)
	if charged < want {
		t.Errorf("rank 1 clock %g < jittered backoff charge %g", charged, want)
	}
	if charged < lo || charged > hi+pol.TimeoutSeconds*8 {
		t.Errorf("rank 1 clock %g outside plausible band [%g, %g] of unjittered schedule", charged, lo, hi)
	}
}
