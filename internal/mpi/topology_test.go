package mpi

import (
	"testing"

	"pjds/internal/simnet"
)

// TestIntraNodeFaster: with 2 ranks per node, the 0↔1 exchange uses
// the shared-memory fabric while 0↔2 crosses the interconnect.
func TestIntraNodeFaster(t *testing.T) {
	const bytes = 10_000_000
	intra := simnet.SharedMemory()
	inter := simnet.QDRInfiniBand()

	var sameNode, crossNode float64
	_, err := RunWithTopology(4, inter, 2, intra, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			c.Send(1, 0, nil, bytes)
			c.Send(2, 0, nil, bytes)
		case 1:
			m, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			sameNode = m.ArrivesAt - m.SentAt
		case 2:
			m, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			crossNode = m.ArrivesAt - m.SentAt
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wantSame := intra.TransferSeconds(bytes)
	wantCross := inter.TransferSeconds(bytes)
	if absf(sameNode-wantSame) > 1e-9 {
		t.Errorf("intra-node transfer %g, want %g", sameNode, wantSame)
	}
	if absf(crossNode-wantCross) > 1e-9 {
		t.Errorf("cross-node transfer %g, want %g", crossNode, wantCross)
	}
	if sameNode >= crossNode {
		t.Errorf("intra-node not faster: %g vs %g", sameNode, crossNode)
	}
}

func TestTopologyDefaultsAndValidation(t *testing.T) {
	// ranksPerNode 1 must behave exactly like Run.
	clocks1, err := Run(2, fabric(), func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, nil, 1000)
		} else {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	clocks2, err := RunWithTopology(2, fabric(), 1, nil, func(c *Comm) error {
		if c.Rank() == 0 {
			c.Send(1, 0, nil, 1000)
		} else {
			c.Recv(0, 0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range clocks1 {
		if clocks1[i] != clocks2[i] {
			t.Errorf("rank %d: %g vs %g", i, clocks1[i], clocks2[i])
		}
	}
	// Invalid intra fabric is rejected.
	bad := &simnet.Fabric{BytesPerSecond: 0}
	if _, err := RunWithTopology(2, fabric(), 2, bad, func(c *Comm) error { return nil }); err == nil {
		t.Error("invalid intra fabric accepted")
	}
	// nil intra defaults to shared memory without error.
	if _, err := RunWithTopology(2, fabric(), 2, nil, func(c *Comm) error { return nil }); err != nil {
		t.Errorf("default intra fabric: %v", err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
