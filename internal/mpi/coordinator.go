package mpi

import (
	"sync"

	"pjds/internal/simnet"
)

// coordinator implements generation-counted rendezvous for the
// collectives: each rank arrives with its clock and an optional
// payload; when the last rank arrives, the generation's result is
// frozen and everyone is released. Collectives must be called by all
// ranks in the same order, as in MPI.
type rendezvousResult struct {
	maxClock float64
	// clocks holds every rank's arrival clock, so callers can identify
	// the straggler (the critical-path analyzer follows collective
	// edges to the rank that determined maxClock). gen is the
	// generation index, a deterministic id matching the per-rank spans
	// of one collective instance across ranks.
	clocks   []float64
	payloads []any
	gen      int
}

type coordinator struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     int
	current rendezvousResult
	frozen  rendezvousResult
	// broken latches the first rank death: a dead rank will never
	// rendezvous again, so every collective after (or concurrent with)
	// the death fails with the peer's identity instead of deadlocking.
	broken *simnet.PeerFailedError
}

func newCoordinator(n int) *coordinator {
	c := &coordinator{n: n}
	c.cond = sync.NewCond(&c.mu)
	c.current.payloads = make([]any, n)
	c.current.clocks = make([]float64, n)
	return c
}

// markFailed latches the first rank death and wakes every waiter.
func (c *coordinator) markFailed(rank int, at float64) {
	c.mu.Lock()
	if c.broken == nil {
		c.broken = &simnet.PeerFailedError{Rank: rank, FailedAt: at}
	}
	c.mu.Unlock()
	c.cond.Broadcast()
}

// rendezvous blocks until all n ranks have arrived in this generation,
// then returns the frozen result (max clock, all payloads in rank
// order). Once a rank death is latched, arriving and waiting ranks get
// the PeerFailedError instead; a generation whose last rank arrived
// before the death still completes normally.
func (c *coordinator) rendezvous(rank int, clock float64, payload any) (rendezvousResult, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.broken != nil {
		return rendezvousResult{}, c.broken
	}
	gen := c.gen
	if clock > c.current.maxClock {
		c.current.maxClock = clock
	}
	c.current.payloads[rank] = payload
	c.current.clocks[rank] = clock
	c.arrived++
	if c.arrived == c.n {
		// Freeze this generation and open the next.
		c.current.gen = gen
		c.frozen = c.current
		c.current = rendezvousResult{payloads: make([]any, c.n), clocks: make([]float64, c.n)}
		c.arrived = 0
		c.gen++
		c.cond.Broadcast()
		return c.frozen, nil
	}
	for gen == c.gen {
		if c.broken != nil {
			return rendezvousResult{}, c.broken
		}
		c.cond.Wait()
	}
	return c.frozen, nil
}
