package mpi

import "sync"

// coordinator implements generation-counted rendezvous for the
// collectives: each rank arrives with its clock and an optional
// payload; when the last rank arrives, the generation's result is
// frozen and everyone is released. Collectives must be called by all
// ranks in the same order, as in MPI.
type rendezvousResult struct {
	maxClock float64
	// clocks holds every rank's arrival clock, so callers can identify
	// the straggler (the critical-path analyzer follows collective
	// edges to the rank that determined maxClock). gen is the
	// generation index, a deterministic id matching the per-rank spans
	// of one collective instance across ranks.
	clocks   []float64
	payloads []any
	gen      int
}

type coordinator struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	gen     int
	current rendezvousResult
	frozen  rendezvousResult
}

func newCoordinator(n int) *coordinator {
	c := &coordinator{n: n}
	c.cond = sync.NewCond(&c.mu)
	c.current.payloads = make([]any, n)
	c.current.clocks = make([]float64, n)
	return c
}

// rendezvous blocks until all n ranks have arrived in this generation,
// then returns the frozen result (max clock, all payloads in rank
// order).
func (c *coordinator) rendezvous(rank int, clock float64, payload any) rendezvousResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	gen := c.gen
	if clock > c.current.maxClock {
		c.current.maxClock = clock
	}
	c.current.payloads[rank] = payload
	c.current.clocks[rank] = clock
	c.arrived++
	if c.arrived == c.n {
		// Freeze this generation and open the next.
		c.current.gen = gen
		c.frozen = c.current
		c.current = rendezvousResult{payloads: make([]any, c.n), clocks: make([]float64, c.n)}
		c.arrived = 0
		c.gen++
		c.cond.Broadcast()
		return c.frozen
	}
	for gen == c.gen {
		c.cond.Wait()
	}
	return c.frozen
}
