package cpu

import (
	"math"
	"testing"

	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

func TestWestmereValidate(t *testing.T) {
	if err := WestmereEP().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := WestmereEP()
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid node accepted")
	}
	if _, err := bad.EstimateCRS(matgen.Stencil2D(4, 4)); err == nil {
		t.Error("estimate on invalid node accepted")
	}
}

func TestMulVecParallelMatchesSequential(t *testing.T) {
	n := WestmereEP()
	m := matgen.Banded(5000, 3, 30, 100, 1)
	x := make([]float64, 5000)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.1)
	}
	ref := make([]float64, 5000)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 5000)
	if err := n.MulVecParallel(m, y, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-ref[i]) > 1e-12*(1+math.Abs(ref[i])) {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], ref[i])
		}
	}
	if err := n.MulVecParallel(m, y, x[:10]); err == nil {
		t.Error("wrong x size accepted")
	}
}

func TestNnzBalancedChunks(t *testing.T) {
	m := matgen.PowerLaw(1000, 2, 200, 3, 2)
	bounds := nnzBalancedChunks(m, 4)
	if bounds[0] != 0 || bounds[4] != 1000 {
		t.Fatalf("bounds = %v", bounds)
	}
	for w := 0; w < 4; w++ {
		if bounds[w] > bounds[w+1] {
			t.Fatalf("non-monotone bounds %v", bounds)
		}
	}
	// Each chunk carries between 10% and 50% of the non-zeros.
	for w := 0; w < 4; w++ {
		nnz := m.RowPtr[bounds[w+1]] - m.RowPtr[bounds[w]]
		frac := float64(nnz) / float64(m.Nnz())
		if frac < 0.05 || frac > 0.6 {
			t.Errorf("chunk %d carries %.2f of nnz", w, frac)
		}
	}
}

// TestNnzBalancedChunksDegenerate pins the schedule on the awkward
// inputs: more workers than rows, a run of empty tail rows, every
// non-zero concentrated in a single row, and zero/negative worker
// counts. The invariants are what every caller relies on: bounds are
// monotone, start at 0, end at NRows, and have workers+1 entries
// (workers clamped to ≥ 1).
func TestNnzBalancedChunksDegenerate(t *testing.T) {
	single := matrix.NewCOO[float64](4, 4)
	for j := 0; j < 4; j++ {
		single.Add(1, j, 1) // all nnz in row 1
	}
	tail := matrix.NewCOO[float64](6, 6)
	tail.Add(0, 0, 1)
	tail.Add(1, 1, 1) // rows 2..5 empty
	cases := []struct {
		name    string
		m       *matrix.CSR[float64]
		workers int
	}{
		{"workers_gt_rows", matgen.Banded(3, 1, 2, 1, 5), 9},
		{"empty_tail_rows", tail.ToCSR(), 4},
		{"single_hot_row", single.ToCSR(), 4},
		{"workers_zero", matgen.Banded(5, 1, 2, 1, 5), 0},
		{"workers_negative", matgen.Banded(5, 1, 2, 1, 5), -3},
		{"no_rows", matrix.NewCOO[float64](0, 3).ToCSR(), 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bounds := nnzBalancedChunks(tc.m, tc.workers)
			workers := tc.workers
			if workers < 1 {
				workers = 1
			}
			if len(bounds) != workers+1 {
				t.Fatalf("len(bounds) = %d, want %d", len(bounds), workers+1)
			}
			if bounds[0] != 0 || bounds[len(bounds)-1] != tc.m.NRows {
				t.Fatalf("bounds = %v, want 0 .. %d", bounds, tc.m.NRows)
			}
			for w := 0; w+1 < len(bounds); w++ {
				if bounds[w] > bounds[w+1] {
					t.Fatalf("non-monotone bounds %v", bounds)
				}
			}
		})
	}
}

// TestMulVecParallelBitIdentical: the blocked hostkernel behind
// MulVecParallel must reproduce the naive reference bit for bit at
// every worker count, because the per-row summation order never
// changes with the schedule.
func TestMulVecParallelBitIdentical(t *testing.T) {
	m := matgen.PowerLaw(700, 2, 80, 0.7, 9)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = math.Sin(float64(i) * 0.01)
	}
	ref := make([]float64, m.NRows)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	for _, cores := range []int{1, 2, 4, 8} {
		n := WestmereEP()
		n.Cores = cores
		y := make([]float64, m.NRows)
		if err := n.MulVecParallel(m, y, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Float64bits(y[i]) != math.Float64bits(ref[i]) {
				t.Fatalf("cores=%d: y[%d] = %v, reference %v", cores, i, y[i], ref[i])
			}
		}
	}
}

func TestEstimateCRSBandedVsRandom(t *testing.T) {
	n := WestmereEP()
	banded := matgen.Banded(200000, 10, 20, 200, 3)
	random := matgen.Random(200000, 10, 20, 3)
	sb, err := n.EstimateCRS(banded)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := n.EstimateCRS(random)
	if err != nil {
		t.Fatal(err)
	}
	if sb.Alpha >= sr.Alpha {
		t.Errorf("banded alpha %.2f not below random alpha %.2f", sb.Alpha, sr.Alpha)
	}
	if sb.GFlops <= sr.GFlops {
		t.Errorf("banded %.2f GF/s not above random %.2f", sb.GFlops, sr.GFlops)
	}
	if sb.CodeBalance < 6 || sb.CodeBalance > 11 {
		t.Errorf("code balance %.2f outside CRS DP window", sb.CodeBalance)
	}
}

// TestWestmereTableILevel: on the paper's matrices the Westmere CRS
// row of Table I sits at 3.9–5.8 GF/s; the model should land in that
// neighbourhood (generated matrices, scaled down — α only improves
// with smaller vectors, so allow a generous upper band).
func TestWestmereTableILevel(t *testing.T) {
	n := WestmereEP()
	for _, name := range []string{"DLR1", "sAMG"} {
		tm, err := matgen.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		m := tm.Generate(0.1, 4)
		s, err := n.EstimateCRS(m)
		if err != nil {
			t.Fatal(err)
		}
		if s.GFlops < 3 || s.GFlops > 8 {
			t.Errorf("%s: Westmere CRS %.1f GF/s, Table I band is 3.9–5.8", name, s.GFlops)
		}
	}
}

func TestEstimateEmptyMatrix(t *testing.T) {
	n := WestmereEP()
	empty := matrix.NewCOO[float64](10, 10).ToCSR()
	s, err := n.EstimateCRS(empty)
	if err != nil {
		t.Fatal(err)
	}
	if s.Alpha != 0 || s.GFlops != 0 {
		t.Errorf("empty stats = %+v", s)
	}
}
