// Package cpu provides the multicore CPU baseline of Table I's last
// row: CRS spMVM on a dual-socket Intel Westmere EP node (12 cores),
// as measured by Schubert et al. [4]. Like the GPU simulator, it
// separates function from timing: MulVecParallel computes the real
// result with worker goroutines, while EstimateCRS derives wallclock
// from a bandwidth model with a cache-measured RHS reuse factor.
package cpu

import (
	"fmt"
	"runtime"

	"pjds/internal/hostkernel"
	"pjds/internal/matrix"
)

// Node describes a multicore CPU node.
type Node struct {
	Name string
	// Cores is the total core count across sockets.
	Cores int
	// BandwidthBytes is the sustained aggregate memory bandwidth.
	BandwidthBytes float64
	// LLCBytes is the aggregate last-level cache capacity, which
	// determines RHS reuse for large vectors.
	LLCBytes int
	// CacheLineBytes is the transfer granularity (64 B).
	CacheLineBytes int
}

// WestmereEP returns the dual-socket 12-core Westmere node of [4]:
// ≈ 40 GB/s sustained aggregate bandwidth, 2 × 12 MB L3.
func WestmereEP() *Node {
	return &Node{
		Name:           "Westmere EP (2x6 cores)",
		Cores:          12,
		BandwidthBytes: 40e9,
		LLCBytes:       24 << 20,
		CacheLineBytes: 64,
	}
}

// Validate reports configuration errors.
func (n *Node) Validate() error {
	if n.Cores <= 0 || n.BandwidthBytes <= 0 || n.LLCBytes <= 0 || n.CacheLineBytes <= 0 {
		return fmt.Errorf("cpu: invalid node %+v", *n)
	}
	return nil
}

// Stats reports the modelled cost of one CRS spMVM on the node.
type Stats struct {
	Node        string
	Nnz         int64
	BytesTotal  int64
	Alpha       float64 // measured RHS traffic per non-zero, in value widths
	CodeBalance float64 // bytes per flop
	Seconds     float64
	GFlops      float64
}

// EstimateCRS models one double-precision CRS spMVM: streaming val
// (8 B) + colidx (4 B) per non-zero, rowptr (8 B) and result
// write-allocate+write (16 B) per row, plus the RHS gather traffic
// measured by a simulated LLC with 64-byte lines.
func (n *Node) EstimateCRS(m *matrix.CSR[float64]) (Stats, error) {
	if err := n.Validate(); err != nil {
		return Stats{}, err
	}
	lines := n.LLCBytes / n.CacheLineBytes
	c := newDirectLRU(lines, n.CacheLineBytes)
	var rhsBytes int64
	for k := range m.ColIdx {
		if !c.probe(int64(m.ColIdx[k]) * 8) {
			rhsBytes += int64(n.CacheLineBytes)
		}
	}
	nnz := int64(m.Nnz())
	bytes := nnz*12 + int64(m.NRows)*24 + rhsBytes
	s := Stats{
		Node:       n.Name,
		Nnz:        nnz,
		BytesTotal: bytes,
		Seconds:    float64(bytes) / n.BandwidthBytes,
	}
	if nnz > 0 {
		s.Alpha = float64(rhsBytes) / float64(8*nnz)
		s.CodeBalance = float64(bytes) / float64(2*nnz)
	}
	if s.Seconds > 0 {
		s.GFlops = 2 * float64(nnz) / s.Seconds / 1e9
	}
	return s, nil
}

// MulVecParallel computes y = A·x with one worker per core (capped at
// GOMAXPROCS), splitting rows into contiguous chunks balanced by
// non-zero count. The multiplication itself runs on the blocked
// hostkernel CRS kernel, so the baseline gets the same bounds-check-
// free lockstep inner loop (and telemetry, when a kernel is held
// long-term) as every other host path; results stay bit-identical to
// the naive per-row reference at any worker count.
func (n *Node) MulVecParallel(m *matrix.CSR[float64], y, x []float64) error {
	if len(x) != m.NCols || len(y) != m.NRows {
		return fmt.Errorf("cpu: MulVecParallel |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), m.NRows, m.NCols, matrix.ErrShape)
	}
	workers := n.Cores
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers < 1 {
		workers = 1
	}
	k := hostkernel.NewBlockedCRS(m, hostkernel.Options{Workers: workers})
	defer k.Close()
	return k.MulVec(y, x)
}

// nnzBalancedChunks returns workers+1 row boundaries splitting the
// matrix into chunks of roughly equal non-zero count. It is the
// shared schedule of every host-side parallel path: hostkernel.Chunks
// owns the algorithm (including the degenerate cases: workers < 1,
// workers > rows, empty tail rows, all non-zeros in one row).
func nnzBalancedChunks(m *matrix.CSR[float64], workers int) []int {
	return hostkernel.Chunks(m.RowPtr, workers)
}

// directLRU is a minimal set-associative LRU cache for the RHS reuse
// measurement (4-way is close enough to a real LLC for this purpose).
type directLRU struct {
	sets     [][]int64
	lineBits uint
	nSets    int64
}

func newDirectLRU(lines, lineBytes int) *directLRU {
	const assoc = 4
	nSets := lines / assoc
	if nSets < 1 {
		nSets = 1
	}
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	c := &directLRU{sets: make([][]int64, nSets), lineBits: lb, nSets: int64(nSets)}
	for i := range c.sets {
		c.sets[i] = make([]int64, 0, assoc)
	}
	return c
}

func (c *directLRU) probe(addr int64) bool {
	line := addr >> c.lineBits
	set := c.sets[line%c.nSets]
	for i, tag := range set {
		if tag == line {
			copy(set[1:i+1], set[:i])
			set[0] = line
			return true
		}
	}
	if len(set) < cap(set) {
		set = append(set, 0)
	}
	copy(set[1:], set)
	set[0] = line
	c.sets[line%c.nSets] = set
	return false
}
