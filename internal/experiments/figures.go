package experiments

import (
	"errors"
	"fmt"
	"io"

	"pjds/internal/core"
	"pjds/internal/critpath"
	"pjds/internal/distmv"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/histo"
	"pjds/internal/matrix"
	"pjds/internal/pcie"
	"pjds/internal/perfmodel"
	"pjds/internal/telemetry"
	"pjds/internal/textplot"
)

// Fig2Row compares storage and hardware utilization of the three
// formats of Fig. 2 on one matrix.
type Fig2Row struct {
	Format         string
	StoredElems    int64
	FootprintBytes int64
	WarpSteps      int64
	LaneEfficiency float64
	GFlops         float64
}

// RunFig2 reproduces the Fig. 2 comparison quantitatively: stored
// elements (white boxes), reserved-but-idle SIMT slots (light boxes)
// and the resulting performance for ELLPACK, ELLPACK-R and pJDS.
func RunFig2(name string, scale float64, w io.Writer) ([]Fig2Row, error) {
	if w == nil {
		w = io.Discard
	}
	m, err := Matrix(name, scale)
	if err != nil {
		return nil, err
	}
	dev := gpu.TeslaC2070()
	x := testVector(m.NCols)
	y := make([]float64, m.NRows)
	var rows []Fig2Row

	ell := formats.NewELLPACK(m)
	stE, err := gpu.RunELLPACK(dev, ell, y, x, gpu.RunOptions{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, fig2Row(ell, stE))

	ellr := formats.NewELLPACKR(m)
	stR, err := gpu.RunELLPACKR(dev, ellr, y, x, gpu.RunOptions{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, fig2Row(ellr, stR))

	pj, err := formats.NewPJDS(m)
	if err != nil {
		return nil, err
	}
	stP, err := gpu.RunPJDS(dev, pj, make([]float64, pj.NPad), x, gpu.RunOptions{})
	if err != nil {
		return nil, err
	}
	rows = append(rows, fig2Row(pj, stP))

	table := [][]string{{"format", "stored elems", "footprint MB", "warp steps", "lane eff %", "GF/s"}}
	for _, r := range rows {
		table = append(table, []string{
			r.Format,
			fmt.Sprint(r.StoredElems),
			fmt.Sprintf("%.1f", float64(r.FootprintBytes)/(1<<20)),
			fmt.Sprint(r.WarpSteps),
			fmt.Sprintf("%.1f", 100*r.LaneEfficiency),
			fmt.Sprintf("%.1f", r.GFlops),
		})
	}
	fmt.Fprintf(w, "Fig. 2 quantification on %s (scale %g, DP, ECC on)\n", name, scale)
	return rows, textplot.Table(w, table)
}

func fig2Row[T matrix.Float](f formats.Format[T], st *gpu.KernelStats) Fig2Row {
	return Fig2Row{
		Format:         f.Name(),
		StoredElems:    f.StoredElems(),
		FootprintBytes: f.FootprintBytes(),
		WarpSteps:      st.WarpSteps,
		LaneEfficiency: st.LaneEfficiency,
		GFlops:         st.GFlops,
	}
}

// Fig3Entry is one matrix's histogram.
type Fig3Entry struct {
	Matrix    string
	N         int
	Nnz       int64
	Histogram histo.Histogram
}

// RunFig3 reproduces the row-length histograms of Fig. 3 for the four
// matrices shown there.
func RunFig3(scale float64, w io.Writer) ([]Fig3Entry, error) {
	if w == nil {
		w = io.Discard
	}
	var out []Fig3Entry
	for _, name := range []string{"DLR1", "DLR2", "HMEp", "sAMG"} {
		m, err := Matrix(name, scale)
		if err != nil {
			return nil, err
		}
		h := histo.FromRowLengths(m)
		out = append(out, Fig3Entry{Matrix: name, N: m.NRows, Nnz: int64(m.Nnz()), Histogram: h})
		fmt.Fprintf(w, "\n%s: N=%d, Nnz=%d\n", name, m.NRows, m.Nnz())
		if err := h.RenderLog(w, name, 72, 4); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ScalingPoint is one (node count, mode) measurement of Fig. 5.
type ScalingPoint struct {
	Nodes          int
	Mode           distmv.Mode
	GFlops         float64
	PerIterSeconds float64
	MaxRelError    float64
}

// Fig5Config parameterizes the strong-scaling experiment.
type Fig5Config struct {
	Matrix     string
	Scale      float64
	Nodes      []int
	Iterations int
	Format     distmv.FormatKind
	// Device overrides the per-node GPU (nil = the Dirac C2050); the
	// admission check against its memory reproduces Fig. 5b's minimum
	// node count.
	Device *gpu.Device
	// PerfReport attaches span instrumentation to every run and prints
	// an inline critical-path / overlap summary under each scaling
	// point (cmd/scaling -perfreport).
	PerfReport bool
}

// RunFig5 reproduces the strong-scaling curves of Fig. 5 (DLR1 or
// UHBR). All runs are double precision with ECC on C2050 nodes, as in
// §III. Returned points are verified against the serial reference.
func RunFig5(cfg Fig5Config, w io.Writer) ([]ScalingPoint, error) {
	if w == nil {
		w = io.Discard
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 3
	}
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = []int{1, 2, 4, 8, 16, 24, 32}
	}
	m, err := Matrix(cfg.Matrix, cfg.Scale)
	if err != nil {
		return nil, err
	}
	x := testVector(m.NCols)
	var points []ScalingPoint
	series := map[distmv.Mode]*textplot.Series{}
	for _, mode := range distmv.Modes() {
		series[mode] = &textplot.Series{Name: mode.String()}
	}
	for _, p := range cfg.Nodes {
		for _, mode := range distmv.Modes() {
			dcfg := distmv.Config{
				Iterations: cfg.Iterations,
				Format:     cfg.Format,
				Device:     cfg.Device,
			}
			var spans *telemetry.SpanLog
			if cfg.PerfReport {
				spans = telemetry.NewSpanLog()
				dcfg.Spans = spans
			}
			res, err := distmv.RunSpMVM(m, x, p, mode, dcfg)
			if errors.Is(err, distmv.ErrDeviceMemory) {
				// The paper hits the same wall: UHBR does not fit on
				// fewer than five C2050 nodes (Fig. 5b).
				fmt.Fprintf(w, "%-8s P=%-3d does not fit device memory, skipped (%v)\n", cfg.Matrix, p, err)
				break
			}
			if err != nil {
				return nil, fmt.Errorf("experiments: %s P=%d %v: %w", cfg.Matrix, p, mode, err)
			}
			rel, err := distmv.VerifyAgainstSerial(m, x, res.Y)
			if err != nil {
				return nil, err
			}
			if rel > 1e-9 {
				return nil, fmt.Errorf("experiments: %s P=%d %v: relative error %g", cfg.Matrix, p, mode, rel)
			}
			pt := ScalingPoint{
				Nodes:          p,
				Mode:           mode,
				GFlops:         res.GFlops,
				PerIterSeconds: res.PerIterSeconds,
				MaxRelError:    rel,
			}
			points = append(points, pt)
			s := series[mode]
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, res.GFlops)
			fmt.Fprintf(w, "%-8s P=%-3d %-24s %7.2f GF/s  (%.3g s/iter, err %.1e)\n",
				cfg.Matrix, p, mode, res.GFlops, res.PerIterSeconds, rel)
			if cfg.PerfReport {
				rep := critpath.Analyze("", spans.Spans(), nil)
				fmt.Fprintf(w, "%14s %s: %s; overlap %.0f%%\n", "", rep.Path.Verdict,
					rep.Path.CategorySummary(), 100*rep.Overlap.Efficiency)
			}
		}
	}
	var list []textplot.Series
	for _, mode := range distmv.Modes() {
		list = append(list, *series[mode])
	}
	err = textplot.Plot(w, fmt.Sprintf("Fig. 5 — %s strong scaling (%s, scale %g, GF/s vs nodes)",
		cfg.Matrix, cfg.Format, cfg.Scale), 64, 16, list)
	return points, err
}

// RunFig4Timeline produces the Fig. 4 event timeline: one task-mode
// iteration on rank 0.
func RunFig4Timeline(name string, scale float64, p int, w io.Writer) ([]distmv.Event, error) {
	if w == nil {
		w = io.Discard
	}
	m, err := Matrix(name, scale)
	if err != nil {
		return nil, err
	}
	x := testVector(m.NCols)
	res, err := distmv.RunSpMVM(m, x, p, distmv.TaskMode, distmv.Config{Iterations: 1})
	if err != nil {
		return nil, err
	}
	spans := make([]textplot.Span, len(res.Timeline))
	for i, e := range res.Timeline {
		spans[i] = textplot.Span{Lane: e.Lane, Name: e.Name, Start: e.Start, End: e.End}
	}
	err = textplot.Gantt(w, fmt.Sprintf("Fig. 4 — task-mode timeline, %s on %d nodes, rank 0", name, p), 64, spans)
	return res.Timeline, err
}

// Sec2BReport carries the §II-B performance-model numbers.
type Sec2BReport struct {
	// Model bounds (Eqs. 3 and 4) at the paper's two bandwidth ratios.
	MaxNnzr50WorstCase float64 // ≈ 25
	MaxNnzr50Alpha1    float64 // ≈ 7
	MinNnzr10Alpha1    float64 // ≈ 80
	MinNnzr10WorstCase float64 // ≈ 266
	// Measured PCIe-inclusive single-GPU performance per matrix.
	Effective []EffectivePerf
}

// EffectivePerf is the kernel-only vs PCIe-inclusive performance of
// one matrix (the §III intro numbers: 12.9 → 10.9 GF/s for DLR1,
// 3.7 / 2.3 GF/s for HMEp / sAMG).
type EffectivePerf struct {
	Matrix        string
	Nnzr          float64
	KernelGFlops  float64
	WithPCIGFlops float64
	PenaltyPct    float64
}

// RunSec2B evaluates the Eq. (3)/(4) bounds and measures the PCIe
// impact on the simulator for the matrices the paper discusses.
func RunSec2B(scale float64, w io.Writer) (*Sec2BReport, error) {
	if w == nil {
		w = io.Discard
	}
	rep := &Sec2BReport{}
	m20 := perfmodel.Model{BGPU: 20, BPCI: 1}
	m10 := perfmodel.Model{BGPU: 10, BPCI: 1}
	rep.MaxNnzr50WorstCase = m20.SolveAlphaSelfConsistent(m20.MaxNnzrFor50PctPenalty)
	rep.MaxNnzr50Alpha1 = m10.MaxNnzrFor50PctPenalty(1)
	rep.MinNnzr10Alpha1 = m10.MinNnzrFor10PctPenalty(1)
	rep.MinNnzr10WorstCase = m20.SolveAlphaSelfConsistent(m20.MinNnzrFor10PctPenalty)
	fmt.Fprintf(w, "Eq. (3): PCIe penalty ≥ 50%% for Nnzr ≤ %.1f (worst case) / %.1f (alpha=1, ratio 10)\n",
		rep.MaxNnzr50WorstCase, rep.MaxNnzr50Alpha1)
	fmt.Fprintf(w, "Eq. (4): PCIe penalty ≤ 10%% for Nnzr ≥ %.1f (alpha=1, ratio 10) / %.1f (worst case, ratio 20)\n",
		rep.MinNnzr10Alpha1, rep.MinNnzr10WorstCase)

	dev := gpu.TeslaC2070()
	link := pcie.Gen2x16()
	for _, name := range []string{"DLR1", "HMEp", "sAMG", "UHBR"} {
		m, err := Matrix(name, scale)
		if err != nil {
			return nil, err
		}
		ellr := formats.NewELLPACKR(m)
		x := testVector(m.NCols)
		st, err := gpu.RunELLPACKR(dev, ellr, make([]float64, m.NRows), x, gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		tPCI := link.RoundTripSeconds(int64(8*m.NCols), int64(8*m.NRows))
		withPCI := perfmodel.GFlopsFromTime(int64(m.Nnz()), st.KernelSeconds+tPCI)
		e := EffectivePerf{
			Matrix:        name,
			Nnzr:          m.AvgRowLen(),
			KernelGFlops:  st.GFlops,
			WithPCIGFlops: withPCI,
			PenaltyPct:    100 * (1 - withPCI/st.GFlops),
		}
		rep.Effective = append(rep.Effective, e)
		fmt.Fprintf(w, "%-6s Nnzr=%6.1f  kernel %6.2f GF/s  with PCIe %6.2f GF/s  (penalty %.0f%%)\n",
			e.Matrix, e.Nnzr, e.KernelGFlops, e.WithPCIGFlops, e.PenaltyPct)
		DropCached(name, scale)
	}
	return rep, nil
}

// Fig1Demo renders the worked pJDS derivation of Fig. 1 on the small
// example matrix used in the core tests.
func Fig1Demo(w io.Writer) error {
	d := matrix.DenseFromRows([][]float64{
		{1, 0, 2, 0, 0, 0, 0, 0},
		{0, 3, 0, 0, 0, 0, 0, 0},
		{4, 5, 6, 7, 0, 0, 0, 8},
		{0, 0, 9, 0, 0, 0, 0, 0},
		{0, 1, 0, 2, 3, 0, 0, 0},
		{5, 0, 0, 0, 4, 6, 0, 0},
		{0, 0, 0, 7, 0, 0, 8, 0},
		{9, 8, 0, 0, 0, 7, 6, 5},
	})
	m := d.ToCSR()
	p, err := core.NewPJDS(m, core.Options{BlockHeight: 4})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. 1 — pJDS derivation (br = %d)\n", p.BlockHeight)
	fmt.Fprintf(w, "row permutation (sorted -> original): %v\n", p.Perm)
	fmt.Fprintf(w, "row lengths (sorted): %v\n", p.RowLen)
	fmt.Fprintf(w, "col_start: %v\n", p.ColStart)
	fmt.Fprintf(w, "stored elements: %d (nnz %d, ELLPACK would store %d)\n",
		p.StoredElems(), p.Nnz, int64(m.NRows)*int64(p.MaxRowLen))
	return nil
}
