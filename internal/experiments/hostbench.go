package experiments

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"pjds/internal/cpu"
	"pjds/internal/hostkernel"
	"pjds/internal/profiles"
	"pjds/internal/telemetry"
	"pjds/internal/textplot"
)

// HostBenchRow is one matrix's measurement of the host-kernel
// benchmark: wall-clock performance of the selected hostkernel on the
// machine running the experiment, next to the Eq. 1 effective
// bandwidth it implies and the Westmere model baseline for context.
type HostBenchRow struct {
	Matrix  string
	N       int
	Nnz     int64
	Kernel  string
	Workers int
	Iters   int

	// Seconds is the total kernel time of all iterations; NsPerNnz,
	// GFlops and GBs are derived per application. GBs charges the
	// minimal DP data traffic of Eq. 1 (12 B/nnz + 24 B/row + 8 B/col),
	// so it is the effective memory bandwidth at ideal α.
	Seconds  float64
	NsPerNnz float64
	GFlops   float64
	GBs      float64

	// ModelGFlops is the Westmere EP CRS model on the same matrix — the
	// paper's Table I CPU baseline, printed for calibration.
	ModelGFlops float64

	// Digest is the SHA-256 of the result vector's float64 bits. Two
	// kernels are byte-identical iff their digests match, which is what
	// scripts/check.sh diffs between -host-kernel=blocked and =naive.
	Digest string
}

// HostBenchResult is the complete host-kernel benchmark.
type HostBenchResult struct {
	Scale  float64
	Kernel string
	Rows   []HostBenchRow
}

// RunHostBench measures the selected host kernel on the named paper
// matrices (nil = Table I set) at the given scale. Each matrix is
// applied iters times (minimum 1) after one warm-up application; the
// per-application numbers are averages. Results go to w (may be nil).
func RunHostBench(kind hostkernel.Kind, names []string, scale float64, iters, workers int, w io.Writer) (*HostBenchResult, error) {
	if w == nil {
		w = io.Discard
	}
	if len(names) == 0 {
		names = Table1Matrices()
	}
	if iters < 1 {
		iters = 1
	}
	res := &HostBenchResult{Scale: scale, Kernel: string(kind)}
	for _, name := range names {
		// Stage labels on the coordinating goroutine: generation and
		// format conversion are phase=convert, the measured
		// applications phase=host. Pool workers carry their own
		// phase=host labels from construction.
		profiles.SetPhase(profiles.PhaseConvert)
		m, err := Matrix(name, scale)
		if err != nil {
			return nil, err
		}
		k, err := hostkernel.New(kind, m, hostkernel.Options{
			Workers: workers,
			Metrics: telemetry.Default(),
		})
		if err != nil {
			return nil, err
		}
		profiles.SetPhase(profiles.PhaseHost, "kernel", string(kind))
		x := testVector(m.NCols)
		y := make([]float64, m.NRows)
		if err := k.MulVec(y, x); err != nil { // warm up, surface errors
			k.Close()
			return nil, err
		}
		t0 := time.Now()
		for it := 0; it < iters; it++ {
			if err := k.MulVec(y, x); err != nil {
				k.Close()
				return nil, err
			}
		}
		sec := time.Since(t0).Seconds()
		k.Close()

		nnz := int64(m.Nnz())
		row := HostBenchRow{
			Matrix:  name,
			N:       m.NRows,
			Nnz:     nnz,
			Kernel:  string(kind),
			Workers: workers,
			Iters:   iters,
			Seconds: sec,
			Digest:  digestVector(y),
		}
		if perApp := sec / float64(iters); perApp > 0 && nnz > 0 {
			row.NsPerNnz = perApp * 1e9 / float64(nnz)
			row.GFlops = 2 * float64(nnz) / perApp / 1e9
			minBytes := 12*nnz + 24*int64(m.NRows) + 8*int64(m.NCols)
			row.GBs = float64(minBytes) / perApp / 1e9
		}
		if st, err := cpu.WestmereEP().EstimateCRS(m); err == nil {
			row.ModelGFlops = st.GFlops
		}
		res.Rows = append(res.Rows, row)
		DropCached(name, scale)
	}
	return res, renderHostBench(w, res)
}

// digestVector hashes the float64 bit patterns of y (little-endian),
// so the digest is identical exactly when the vectors are
// bit-identical.
func digestVector(y []float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, v := range y {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// renderHostBench prints the benchmark as a table plus one digest line
// per matrix (the digest lines are what the byte-diff smoke compares).
func renderHostBench(w io.Writer, res *HostBenchResult) error {
	fmt.Fprintf(w, "\nHost kernel benchmark (kernel %s, scale %g, this machine)\n", res.Kernel, res.Scale)
	rows := [][]string{{"matrix", "N", "nnz", "ns/nnz", "GF/s", "GB/s (Eq.1)", "Westmere model GF/s"}}
	for _, r := range res.Rows {
		rows = append(rows, []string{
			r.Matrix,
			fmt.Sprint(r.N),
			fmt.Sprint(r.Nnz),
			fmt.Sprintf("%.2f", r.NsPerNnz),
			fmt.Sprintf("%.2f", r.GFlops),
			fmt.Sprintf("%.2f", r.GBs),
			fmt.Sprintf("%.2f", r.ModelGFlops),
		})
	}
	if err := textplot.Table(w, rows); err != nil {
		return err
	}
	for _, r := range res.Rows {
		fmt.Fprintf(w, "digest %s %s\n", r.Matrix, r.Digest)
	}
	return nil
}
