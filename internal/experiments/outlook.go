package experiments

import (
	"fmt"
	"io"

	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/textplot"
)

// This file implements the §IV outlook the paper leaves as work in
// progress: "A thorough comparison of pJDS with those alternative
// approaches [sliced ELLPACK, sliced ELLR-T] is work in progress."

// ComparisonCell is one (matrix, format) measurement.
type ComparisonCell struct {
	Matrix      string
	Format      string
	GFlops      float64
	StoredRatio float64 // stored elements / nnz
	Alpha       float64
}

// RunFormatComparison benchmarks every GPU format in the repository —
// ELLPACK, ELLPACK-R, ELLR-T(4), sliced-ELL (unsorted and σ=4096),
// JDS and pJDS — across the Table I matrices on the simulated C2070
// (DP, ECC on). This is the §IV "thorough comparison with sliced
// ELLPACK / sliced ELLR-T" the paper announces as work in progress.
func RunFormatComparison(scale float64, w io.Writer) ([]ComparisonCell, error) {
	if w == nil {
		w = io.Discard
	}
	dev := gpu.TeslaC2070()
	var cells []ComparisonCell
	table := [][]string{{"matrix", "format", "GF/s (DP,ECC)", "stored/nnz", "alpha"}}
	for _, name := range Table1Matrices() {
		m, err := Matrix(name, scale)
		if err != nil {
			return nil, err
		}
		x := testVector(m.NCols)
		nnz := float64(m.Nnz())

		record := func(format string, stored int64, st *gpu.KernelStats) {
			c := ComparisonCell{
				Matrix:      name,
				Format:      format,
				GFlops:      st.GFlops,
				StoredRatio: float64(stored) / nnz,
				Alpha:       st.Alpha,
			}
			cells = append(cells, c)
			table = append(table, []string{
				c.Matrix, c.Format,
				fmt.Sprintf("%.2f", c.GFlops),
				fmt.Sprintf("%.3f", c.StoredRatio),
				fmt.Sprintf("%.2f", c.Alpha),
			})
		}

		// CSR baselines of Bell & Garland (reference [1]).
		st, err := gpu.RunCSRScalar(dev, m, make([]float64, m.NRows), x, gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		record("CSR-scalar", int64(m.Nnz()), st)
		if st, err = gpu.RunCSRVector(dev, m, make([]float64, m.NRows), x, gpu.RunOptions{}); err != nil {
			return nil, err
		}
		record("CSR-vector", int64(m.Nnz()), st)

		ell := formats.NewELLPACK(m)
		if st, err = gpu.RunELLPACK(dev, ell, make([]float64, m.NRows), x, gpu.RunOptions{}); err != nil {
			return nil, err
		}
		record(ell.Name(), ell.StoredElems(), st)

		ellr := formats.NewELLPACKR(m)
		if st, err = gpu.RunELLPACKR(dev, ellr, make([]float64, m.NRows), x, gpu.RunOptions{}); err != nil {
			return nil, err
		}
		record(ellr.Name(), ellr.StoredElems(), st)

		ert, err := formats.NewELLRT(m, 4)
		if err != nil {
			return nil, err
		}
		if st, err = gpu.RunELLRT(dev, ert, make([]float64, m.NRows), x, gpu.RunOptions{}); err != nil {
			return nil, err
		}
		record(ert.Name(), ert.StoredElems(), st)

		for _, sigma := range []int{1, 4096} {
			sell, err := formats.NewSlicedELL(m, 32, sigma)
			if err != nil {
				return nil, err
			}
			if st, err = gpu.RunSlicedELL(dev, sell, make([]float64, sell.NPad), x, gpu.RunOptions{}); err != nil {
				return nil, err
			}
			label := sell.Name()
			if sigma > 1 {
				label = fmt.Sprintf("%s(sigma=%d)", sell.Name(), sigma)
			}
			record(label, sell.StoredElems(), st)
		}

		// BELLPACK with the matrix's natural block size: 5×5 for the
		// block-structured DLR2, 6×6 for DLR1, 1×1 (plain ELLPACK
		// geometry with per-element indices merged) elsewhere.
		br := map[string]int{"DLR1": 6, "DLR2": 5}[name]
		if br == 0 {
			br = 2
		}
		bell, err := formats.NewBELLPACK(m, br, br)
		if err != nil {
			return nil, err
		}
		if st, err = gpu.RunBELLPACK(dev, bell, make([]float64, m.NRows), x, gpu.RunOptions{}); err != nil {
			return nil, err
		}
		record(bell.Name(), bell.StoredElems(), st)

		jds, err := formats.NewJDS(m)
		if err != nil {
			return nil, err
		}
		if st, err = gpu.RunPJDS(dev, jds, make([]float64, jds.NPad), x, gpu.RunOptions{}); err != nil {
			return nil, err
		}
		record(jds.Name(), jds.StoredElems(), st)

		pj, err := formats.NewPJDS(m)
		if err != nil {
			return nil, err
		}
		if st, err = gpu.RunPJDS(dev, pj, make([]float64, pj.NPad), x, gpu.RunOptions{}); err != nil {
			return nil, err
		}
		record(pj.Name(), pj.StoredElems(), st)

		DropCached(name, scale)
	}
	fmt.Fprintf(w, "\n§IV outlook — format comparison (scale %g, DP, ECC on, simulated C2070)\n", scale)
	return cells, textplot.Table(w, table)
}
