package experiments

import (
	"fmt"
	"io"

	"pjds/internal/distmv"
	"pjds/internal/matgen"
	"pjds/internal/textplot"
)

// Weak scaling is the "more extensive scaling studies" of the paper's
// outlook: instead of splitting a fixed matrix ever finer (Fig. 5's
// strong scaling), the per-GPU problem size is held constant and the
// matrix grows with the node count, so efficiency loss isolates the
// communication and synchronization overheads.

// WeakPoint is one (node count, mode) weak-scaling measurement.
type WeakPoint struct {
	Nodes          int
	Mode           distmv.Mode
	GlobalNnz      int64
	GFlops         float64
	PerIterSeconds float64
	// Efficiency is GFlops/(Nodes × single-node GFlops of the same
	// per-GPU problem).
	Efficiency float64
}

// WeakConfig parameterizes the weak-scaling experiment.
type WeakConfig struct {
	Matrix string
	// BaseScale is the per-node matrix scale: at P nodes the matrix is
	// generated at min(1, BaseScale·P) of its published size (capped,
	// so choose BaseScale·maxNodes ≤ 1 for a clean study).
	BaseScale  float64
	Nodes      []int
	Iterations int
	Format     distmv.FormatKind
}

// RunWeakScaling grows the matrix with the node count and reports
// parallel efficiency per communication mode.
func RunWeakScaling(cfg WeakConfig, w io.Writer) ([]WeakPoint, error) {
	if w == nil {
		w = io.Discard
	}
	if cfg.BaseScale <= 0 {
		cfg.BaseScale = 0.02
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2
	}
	if len(cfg.Nodes) == 0 {
		cfg.Nodes = []int{1, 2, 4, 8, 16, 32}
	}
	tm, err := matgen.ByName(cfg.Matrix)
	if err != nil {
		return nil, err
	}

	baseline := map[distmv.Mode]float64{}
	var points []WeakPoint
	series := map[distmv.Mode]*textplot.Series{}
	for _, mode := range distmv.Modes() {
		series[mode] = &textplot.Series{Name: mode.String()}
	}
	for _, p := range cfg.Nodes {
		scale := cfg.BaseScale * float64(p)
		if scale > 1 {
			scale = 1
		}
		m := tm.Generate(scale, Seed)
		x := testVector(m.NCols)
		for _, mode := range distmv.Modes() {
			res, err := distmv.RunSpMVM(m, x, p, mode, distmv.Config{
				Iterations: cfg.Iterations,
				Format:     cfg.Format,
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: weak %s P=%d %v: %w", cfg.Matrix, p, mode, err)
			}
			rel, err := distmv.VerifyAgainstSerial(m, x, res.Y)
			if err != nil {
				return nil, err
			}
			if rel > 1e-9 {
				return nil, fmt.Errorf("experiments: weak %s P=%d %v: error %g", cfg.Matrix, p, mode, rel)
			}
			pt := WeakPoint{
				Nodes:          p,
				Mode:           mode,
				GlobalNnz:      res.GlobalNnz,
				GFlops:         res.GFlops,
				PerIterSeconds: res.PerIterSeconds,
			}
			if p == cfg.Nodes[0] {
				baseline[mode] = res.GFlops / float64(p)
			}
			if b := baseline[mode]; b > 0 {
				pt.Efficiency = res.GFlops / (float64(p) * b)
			}
			points = append(points, pt)
			s := series[mode]
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, 100*pt.Efficiency)
			fmt.Fprintf(w, "%-8s P=%-3d %-24s %7.2f GF/s  eff %5.1f%%  (nnz %d)\n",
				cfg.Matrix, p, mode, res.GFlops, 100*pt.Efficiency, res.GlobalNnz)
		}
	}
	var list []textplot.Series
	for _, mode := range distmv.Modes() {
		list = append(list, *series[mode])
	}
	return points, textplot.Plot(w,
		fmt.Sprintf("Weak scaling — %s (%s, base scale %g, efficiency %% vs nodes)",
			cfg.Matrix, cfg.Format, cfg.BaseScale), 64, 16, list)
}
