package experiments

import (
	"fmt"

	"pjds/internal/critpath"
	"pjds/internal/distmv"
	"pjds/internal/telemetry"
)

// PerfReportConfig parameterizes a per-mode causal analysis run: the
// same benchmark as Fig. 5 at one node count, but with full span and
// metrics instrumentation feeding internal/critpath.
type PerfReportConfig struct {
	Matrix     string
	Scale      float64
	Ranks      int
	Iterations int
	Format     distmv.FormatKind
	// Modes restricts the analysis (nil = all three §III-A schemes).
	Modes []distmv.Mode
}

// ModeReport couples one (mode, P) benchmark outcome with its causal
// performance report.
type ModeReport struct {
	Mode           string           `json:"mode"`
	Ranks          int              `json:"ranks"`
	GFlops         float64          `json:"gflops"`
	PerIterSeconds float64          `json:"per_iter_seconds"`
	Report         *critpath.Report `json:"report"`
}

// RunPerfReports executes the distributed benchmark once per mode with
// instrumentation attached and returns the analyses in mode order.
func RunPerfReports(cfg PerfReportConfig) ([]ModeReport, error) {
	if cfg.Ranks <= 0 {
		cfg.Ranks = 8
	}
	if cfg.Iterations <= 0 {
		cfg.Iterations = 2
	}
	modes := cfg.Modes
	if len(modes) == 0 {
		modes = distmv.Modes()
	}
	m, err := Matrix(cfg.Matrix, cfg.Scale)
	if err != nil {
		return nil, err
	}
	x := testVector(m.NCols)
	var out []ModeReport
	for _, mode := range modes {
		reg := telemetry.NewRegistry()
		spans := telemetry.NewSpanLog()
		res, err := distmv.RunSpMVM(m, x, cfg.Ranks, mode, distmv.Config{
			Iterations: cfg.Iterations,
			Format:     cfg.Format,
			Telemetry:  reg,
			Spans:      spans,
		})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s P=%d %v: %w", cfg.Matrix, cfg.Ranks, mode, err)
		}
		label := fmt.Sprintf("%s %s P=%d", cfg.Matrix, mode.Slug(), cfg.Ranks)
		out = append(out, ModeReport{
			Mode:           mode.Slug(),
			Ranks:          cfg.Ranks,
			GFlops:         res.GFlops,
			PerIterSeconds: res.PerIterSeconds,
			Report:         critpath.Analyze(label, spans.Spans(), reg.Snapshot()),
		})
	}
	return out, nil
}
