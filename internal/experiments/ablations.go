package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"pjds/internal/core"
	"pjds/internal/distmv"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/simnet"
	"pjds/internal/textplot"
)

// This file implements the design-choice ablations listed in
// DESIGN.md: each isolates one modelling or format decision and
// reports its effect.

// AblationPoint is one (setting, metric) pair.
type AblationPoint struct {
	Setting string
	GFlops  float64
	Extra   float64 // second metric, meaning depends on the ablation
}

// AblationL2 compares the pJDS kernel with the full L2 simulation,
// with pollution disabled (RHSFraction 1), and with no cache at all
// (α = 1) — quantifying how much of the performance model rests on
// RHS reuse. Extra reports the measured α.
func AblationL2(name string, scale float64, w io.Writer) ([]AblationPoint, error) {
	m, err := Matrix(name, scale)
	if err != nil {
		return nil, err
	}
	pj, err := formats.NewPJDS(m)
	if err != nil {
		return nil, err
	}
	x := testVector(m.NCols)
	var out []AblationPoint
	for _, c := range []struct {
		setting string
		mod     func(*gpu.Device)
	}{
		{"L2 with streaming pollution (default)", func(d *gpu.Device) {}},
		{"L2 without pollution (RHSFraction=1)", func(d *gpu.Device) { d.L2.RHSFraction = 1 }},
		{"no cache (alpha=1, C1060-like)", func(d *gpu.Device) { d.L2 = nil }},
	} {
		dev := gpu.TeslaC2070()
		c.mod(dev)
		st, err := gpu.RunPJDS(dev, pj, make([]float64, pj.NPad), x, gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Setting: c.setting, GFlops: st.GFlops, Extra: st.Alpha})
	}
	return out, renderAblation(w, "L2 cache model ("+name+")", "alpha", out)
}

// AblationSortWindow sweeps the sliced-ELL sorting window σ from
// unsorted to a global sort (the pJDS limit), reporting GF/s and the
// padding overhead. Extra reports stored/nnz − 1.
func AblationSortWindow(name string, scale float64, w io.Writer) ([]AblationPoint, error) {
	m, err := Matrix(name, scale)
	if err != nil {
		return nil, err
	}
	x := testVector(m.NCols)
	dev := gpu.TeslaC2070()
	var out []AblationPoint
	// One arena serves every σ: the scratch buffers (row lengths,
	// window-sort counters) have identical shapes across iterations.
	arena := matrix.NewArena()
	for _, sigma := range []int{1, 128, 1024, 8192, m.NRows} {
		arena.Reset()
		s, err := formats.NewSlicedELLWith(m, 32, sigma, matrix.ConvertOptions{Arena: arena})
		if err != nil {
			return nil, err
		}
		st, err := gpu.RunSlicedELL(dev, s, make([]float64, s.NPad), x, gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		overhead := float64(s.StoredElems()-int64(s.NonZeros())) / float64(s.NonZeros())
		label := fmt.Sprintf("sigma=%d", sigma)
		if sigma == m.NRows {
			label = "sigma=N (global sort)"
		}
		if sigma == 1 {
			label = "sigma=1 (unsorted)"
		}
		out = append(out, AblationPoint{Setting: label, GFlops: st.GFlops, Extra: overhead})
	}
	return out, renderAblation(w, "sort window sigma ("+name+", sliced-ELL C=32)", "padding overhead", out)
}

// AblationBlockHeight sweeps the pJDS block height br. Extra reports
// the padding overhead; br = warp size is the paper's choice, br = 1
// is classic JDS (no padding, but no coalescing guarantee on real
// hardware — the simulator still counts its partial transactions).
func AblationBlockHeight(name string, scale float64, w io.Writer) ([]AblationPoint, error) {
	m, err := Matrix(name, scale)
	if err != nil {
		return nil, err
	}
	x := testVector(m.NCols)
	dev := gpu.TeslaC2070()
	var out []AblationPoint
	arena := matrix.NewArena()
	for _, br := range []int{1, 4, 16, 32, 64, 256} {
		arena.Reset()
		p, err := core.NewPJDS(m, core.Options{BlockHeight: br, Convert: matrix.ConvertOptions{Arena: arena}})
		if err != nil {
			return nil, err
		}
		st, err := gpu.RunPJDS(dev, p, make([]float64, p.NPad), x, gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Setting: fmt.Sprintf("br=%d", br),
			GFlops:  st.GFlops,
			Extra:   p.PaddingOverhead(),
		})
	}
	return out, renderAblation(w, "pJDS block height ("+name+")", "padding overhead", out)
}

// AblationMPIProgress runs naive overlap with and without
// asynchronous MPI progress — the §III-A observation that most MPI
// libraries do not progress nonblocking communication, which is the
// entire reason task mode exists. Extra reports per-iteration seconds.
func AblationMPIProgress(name string, scale float64, nodes int, w io.Writer) ([]AblationPoint, error) {
	m, err := Matrix(name, scale)
	if err != nil {
		return nil, err
	}
	x := testVector(m.NCols)
	var out []AblationPoint
	for _, c := range []struct {
		setting string
		async   bool
	}{
		{"no async progress (realistic)", false},
		{"async progress (ideal MPI)", true},
	} {
		fab := simnet.QDRInfiniBand()
		fab.AsyncProgress = c.async
		res, err := distmv.RunSpMVM(m, x, nodes, distmv.NaiveOverlap, distmv.Config{
			Iterations: 2, Fabric: fab,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Setting: c.setting, GFlops: res.GFlops, Extra: res.PerIterSeconds})
	}
	return out, renderAblation(w, fmt.Sprintf("MPI async progress (%s, naive overlap, %d nodes)", name, nodes), "s/iter", out)
}

// AblationOccupancy disables the occupancy derating (WarpsToSaturate
// → 0⁺ behaviour approximated by 1e-9) to isolate its role in the
// small-subproblem breakdown of Fig. 5a. Extra reports per-iteration
// seconds.
func AblationOccupancy(name string, scale float64, nodes int, w io.Writer) ([]AblationPoint, error) {
	m, err := Matrix(name, scale)
	if err != nil {
		return nil, err
	}
	x := testVector(m.NCols)
	var out []AblationPoint
	for _, c := range []struct {
		setting string
		mod     func(*gpu.Device)
	}{
		{"occupancy model on (default)", func(d *gpu.Device) {}},
		{"occupancy model off", func(d *gpu.Device) { d.WarpsToSaturate = 1e-9 }},
	} {
		dev := gpu.TeslaC2050()
		c.mod(dev)
		res, err := distmv.RunSpMVM(m, x, nodes, distmv.TaskMode, distmv.Config{
			Iterations: 2, Device: dev,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Setting: c.setting, GFlops: res.GFlops, Extra: res.PerIterSeconds})
	}
	return out, renderAblation(w, fmt.Sprintf("occupancy derating (%s, task mode, %d nodes)", name, nodes), "s/iter", out)
}

// AblationRCM measures what a bandwidth-reducing RCM pre-ordering
// buys the pJDS kernel: RCM first improves the RHS locality (α), then
// the pJDS length-sort runs within the reordered matrix. Extra
// reports the measured α. The special name "scrambled" uses a banded
// matrix hidden behind a random symmetric permutation — the case RCM
// exists for; on the paper's matrices, which are either already well
// ordered (sAMG, DLR) or intrinsically scattered (HMEp), the honest
// finding is that RCM does not help, and the ablation reports that.
func AblationRCM(name string, scale float64, w io.Writer) ([]AblationPoint, error) {
	var m *matrix.CSR[float64]
	if name == "scrambled" {
		// The RHS working set must clearly exceed the L2 for ordering
		// to matter at all; keep ≥150k rows regardless of scale.
		n := scaleRows(1500000, scale)
		if n < 150000 {
			n = 150000
		}
		m = scrambledBanded(n, 40, Seed)
	} else {
		var err error
		m, err = Matrix(name, scale)
		if err != nil {
			return nil, err
		}
	}
	dev := gpu.TeslaC2070()
	x := testVector(m.NCols)
	var out []AblationPoint

	run := func(setting string, mm *matrix.CSR[float64], xx []float64) error {
		pj, err := formats.NewPJDS(mm)
		if err != nil {
			return err
		}
		st, err := gpu.RunPJDS(dev, pj, make([]float64, pj.NPad), xx, gpu.RunOptions{})
		if err != nil {
			return err
		}
		out = append(out, AblationPoint{Setting: setting, GFlops: st.GFlops, Extra: st.Alpha})
		return nil
	}
	if err := run("original ordering", m, x); err != nil {
		return nil, err
	}
	p := matrix.RCM(m)
	rm := matrix.PermuteSymmetric(m, p)
	rx := matrix.Gather(make([]float64, len(x)), x, p)
	if err := run("RCM pre-ordering", rm, rx); err != nil {
		return nil, err
	}
	return out, renderAblation(w, "RCM pre-ordering ("+name+", pJDS)", "alpha", out)
}

// scaleRows applies the experiment scale to a nominal row count.
func scaleRows(n int, scale float64) int {
	if scale <= 0 || scale > 1 {
		scale = 1
	}
	s := int(float64(n) * scale)
	if s < 64 {
		s = 64
	}
	return s
}

// scrambledBanded hides a banded matrix behind a random symmetric
// permutation (deterministic in seed).
func scrambledBanded(n, halfBand int, seed int64) *matrix.CSR[float64] {
	m := matgen.Banded(n, 5, 11, halfBand, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x52434d))
	p := matrix.Identity(n)
	rng.Shuffle(n, func(a, b int) { p[a], p[b] = p[b], p[a] })
	return matrix.PermuteSymmetric(m, p)
}

// AblationELLRT sweeps the ELLR-T thread count against pJDS on one
// matrix — the "matrix-dependent tuning parameter" §II-A contrasts
// pJDS with. Extra reports stored elements relative to nnz.
func AblationELLRT(name string, scale float64, w io.Writer) ([]AblationPoint, error) {
	m, err := Matrix(name, scale)
	if err != nil {
		return nil, err
	}
	dev := gpu.TeslaC2070()
	x := testVector(m.NCols)
	var out []AblationPoint
	arena := matrix.NewArena()
	for _, threads := range []int{1, 2, 4, 8} {
		arena.Reset()
		e, err := formats.NewELLRTWith(m, threads, matrix.ConvertOptions{Arena: arena})
		if err != nil {
			return nil, err
		}
		st, err := gpu.RunELLRT(dev, e, make([]float64, m.NRows), x, gpu.RunOptions{})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{
			Setting: e.Name(),
			GFlops:  st.GFlops,
			Extra:   float64(e.StoredElems()) / float64(m.Nnz()),
		})
	}
	pj, err := formats.NewPJDS(m)
	if err != nil {
		return nil, err
	}
	st, err := gpu.RunPJDS(dev, pj, make([]float64, pj.NPad), x, gpu.RunOptions{})
	if err != nil {
		return nil, err
	}
	out = append(out, AblationPoint{
		Setting: "pJDS (no tuning parameter)",
		GFlops:  st.GFlops,
		Extra:   float64(pj.StoredElems()) / float64(m.Nnz()),
	})
	return out, renderAblation(w, "ELLR-T thread count vs pJDS ("+name+")", "stored/nnz", out)
}

// AblationPartition compares non-zero-balanced partitioning (the
// load-balancing choice of the paper's reference [4], and this
// repository's default) against naive equal-row-count partitioning on
// a matrix with a systematic row-length gradient. Extra reports the
// max/mean non-zero load imbalance across ranks.
//
// The finding is double-edged, and the GPU twist matters: nnz
// balancing equalizes bytes, but on a length-sorted matrix it hands
// the long-row rank only a few hundred rows — too few warps to hide
// memory latency (the occupancy derating of DESIGN.md ablation 5) —
// so the byte-balanced partition can lose to the row-balanced one on
// GPUs. PartitionByKernelTime repairs the occupancy blind spot and
// lands between the two here: on this scattered fixture the residual
// bottleneck is the halo exchange, which none of the row-contiguous
// strategies control. Partitioning for GPU clusters is genuinely
// multi-objective (kernel time, occupancy, communication volume);
// the ablation quantifies each strategy's trade.
func AblationPartition(scale float64, nodes int, w io.Writer) ([]AblationPoint, error) {
	// A power-law matrix with rows ordered longest-first (the way AMG
	// hierarchies and refinement-ordered meshes come out): i.i.d. long
	// rows would average out across equal-row blocks, but a systematic
	// gradient concentrates the non-zeros in the first ranks.
	n := scaleRows(400000, scale)
	if n < 20000 {
		n = 20000
	}
	raw := matgen.PowerLaw(n, 4, 600, 3, Seed)
	m := matrix.PermuteSymmetric(raw, matrix.SortRowsByLengthDesc(raw))
	x := testVector(m.NCols)
	var out []AblationPoint
	for _, c := range []struct {
		setting     string
		partitioner func(*matrix.CSR[float64], int) (distmv.Partition, error)
	}{
		{"nnz-balanced (default, ref. [4])", distmv.PartitionByNnz},
		{"equal row count (naive)", distmv.PartitionByRows},
		{"kernel-time balanced (occupancy-aware)", distmv.PartitionByKernelTime(gpu.TeslaC2050())},
	} {
		pt, err := c.partitioner(m, nodes)
		if err != nil {
			return nil, err
		}
		// Load imbalance: max over ranks of nnz share vs the mean.
		maxNnz := 0
		for r := 0; r < nodes; r++ {
			lo, hi := pt.Range(r)
			if nnz := m.RowPtr[hi] - m.RowPtr[lo]; nnz > maxNnz {
				maxNnz = nnz
			}
		}
		imbalance := float64(maxNnz) * float64(nodes) / float64(m.Nnz())
		res, err := distmv.RunSpMVM(m, x, nodes, distmv.TaskMode, distmv.Config{
			Iterations:  2,
			Partitioner: c.partitioner,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, AblationPoint{Setting: c.setting, GFlops: res.GFlops, Extra: imbalance})
	}
	return out, renderAblation(w, fmt.Sprintf("partitioning strategy (power-law matrix, %d nodes)", nodes), "max/mean nnz", out)
}

func renderAblation(w io.Writer, title, extraLabel string, points []AblationPoint) error {
	if w == nil {
		return nil
	}
	rows := [][]string{{"setting", "GF/s", extraLabel}}
	for _, p := range points {
		rows = append(rows, []string{p.Setting, fmt.Sprintf("%.2f", p.GFlops), fmt.Sprintf("%.4f", p.Extra)})
	}
	fmt.Fprintf(w, "\nAblation: %s\n", title)
	return textplot.Table(w, rows)
}
