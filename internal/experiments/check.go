package experiments

import (
	"fmt"
	"io"
	"math"

	"pjds/internal/distmv"
)

// CheckResult is one verdict of the reproduction certificate.
type CheckResult struct {
	Name   string
	Pass   bool
	Detail string
}

// CheckReproduction re-runs the paper's experiments at the given scale
// and grades every DESIGN.md shape target, returning one verdict per
// claim. It is the machine-checkable "reproduction certificate" behind
// cmd/papercheck; EXPERIMENTS.md is its prose rendering.
//
// Tolerances are scale-aware: tiny instances legitimately drift
// (vectors fit the L2, quantile boundaries move), so sub-0.05 scales
// get looser bands.
func CheckReproduction(scale float64, w io.Writer) ([]CheckResult, error) {
	if w == nil {
		w = io.Discard
	}
	var out []CheckResult
	check := func(name string, pass bool, format string, args ...any) {
		r := CheckResult{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
		out = append(out, r)
		status := "PASS"
		if !pass {
			status = "FAIL"
		}
		fmt.Fprintf(w, "[%s] %-46s %s\n", status, name, r.Detail)
	}
	loose := scale < 0.05
	ratioLo := 0.91
	if loose {
		ratioLo = 0.78
	}

	// --- Table I ---
	fmt.Fprintf(w, "== Table I (scale %g) ==\n", scale)
	t1, err := RunTable1(scale, io.Discard)
	if err != nil {
		return out, err
	}
	for _, r := range t1.Rows {
		if !math.IsNaN(r.PaperReductionPct) {
			tol := 6.0
			if loose {
				tol = 8
			}
			check("data reduction "+r.Matrix,
				math.Abs(r.DataReductionPct-r.PaperReductionPct) <= tol,
				"measured %.1f%%, paper %.1f%%", r.DataReductionPct, r.PaperReductionPct)
		}
		ratio := r.DP.ECCOn.PJDS.GFlops / r.DP.ECCOn.ELLPACKR.GFlops
		check("pJDS/ELLPACK-R band "+r.Matrix,
			ratio >= ratioLo && ratio <= 1.45,
			"DP ECC ratio %.2f (paper band 0.91–1.30)", ratio)
		best := math.Max(r.DP.ECCOn.ELLPACKR.GFlops, r.DP.ECCOn.PJDS.GFlops)
		check("GPU beats Westmere (DP) "+r.Matrix,
			best > r.Westmere.GFlops,
			"GPU %.1f vs CPU %.1f GF/s", best, r.Westmere.GFlops)
		overheadTol := 0.01
		if loose {
			overheadTol = 0.5
		}
		check("pJDS overhead "+r.Matrix,
			r.PJDSOverheadPct <= overheadTol,
			"%.4f%% vs minimal storage (paper <0.01%%)", r.PJDSOverheadPct)
		eccRatio := r.DP.ECCOff.PJDS.GFlops / r.DP.ECCOn.PJDS.GFlops
		check("ECC derating "+r.Matrix,
			eccRatio > 1.05 && eccRatio < 1.5,
			"ECC-off/on %.2f (bandwidth ratio 1.32)", eccRatio)
	}
	// DLR2 memory argument.
	for _, r := range t1.Rows {
		if r.Matrix == "DLR2" {
			check("DLR2 fits C2050 only as pJDS",
				!r.FitsC2050ELLPACKR && r.FitsC2050PJDS,
				"ELLPACK-R fits=%v, pJDS fits=%v", r.FitsC2050ELLPACKR, r.FitsC2050PJDS)
		}
	}

	// --- §II-B model ---
	fmt.Fprintf(w, "== §II-B model ==\n")
	s2b, err := RunSec2B(scale, io.Discard)
	if err != nil {
		return out, err
	}
	check("Eq. 3 worst case ≈ 25",
		math.Abs(s2b.MaxNnzr50WorstCase-25) < 1.5, "%.1f", s2b.MaxNnzr50WorstCase)
	check("Eq. 4 worst case ≈ 266",
		math.Abs(s2b.MinNnzr10WorstCase-266) < 3, "%.1f", s2b.MinNnzr10WorstCase)
	pen := map[string]EffectivePerf{}
	for _, e := range s2b.Effective {
		pen[e.Matrix] = e
	}
	westmere := map[string]float64{}
	for _, r := range t1.Rows {
		westmere[r.Matrix] = r.Westmere.GFlops
	}
	check("HMEp below CPU with PCIe",
		pen["HMEp"].WithPCIGFlops < westmere["HMEp"],
		"%.1f GF/s vs CPU %.1f", pen["HMEp"].WithPCIGFlops, westmere["HMEp"])
	check("sAMG below CPU with PCIe",
		pen["sAMG"].WithPCIGFlops < westmere["sAMG"],
		"%.1f GF/s vs CPU %.1f", pen["sAMG"].WithPCIGFlops, westmere["sAMG"])
	check("DLR1 above CPU with PCIe",
		pen["DLR1"].WithPCIGFlops > westmere["DLR1"],
		"%.1f GF/s vs CPU %.1f", pen["DLR1"].WithPCIGFlops, westmere["DLR1"])

	// --- Fig. 5 shape ---
	fmt.Fprintf(w, "== Fig. 5 shape ==\n")
	nodes := []int{1, 4, 16, 32}
	if loose {
		nodes = []int{1, 2, 4}
	}
	points, err := RunFig5(Fig5Config{
		Matrix: "DLR1", Scale: scale, Nodes: nodes, Iterations: 2,
	}, io.Discard)
	if err != nil {
		return out, err
	}
	perf := map[int]map[distmv.Mode]float64{}
	for _, p := range points {
		if perf[p.Nodes] == nil {
			perf[p.Nodes] = map[distmv.Mode]float64{}
		}
		perf[p.Nodes][p.Mode] = p.GFlops
	}
	taskBest := true
	naiveNoWin := true
	for _, p := range nodes[1:] {
		if perf[p][distmv.TaskMode] < perf[p][distmv.VectorMode] ||
			perf[p][distmv.TaskMode] < perf[p][distmv.NaiveOverlap] {
			taskBest = false
		}
		if perf[p][distmv.NaiveOverlap] > perf[p][distmv.VectorMode]*1.02 {
			naiveNoWin = false
		}
	}
	if loose {
		// At tiny scales communication is negligible and vector mode's
		// single merged kernel legitimately wins; the §III-B claim is
		// then only that the dedicated thread beats naive overlap.
		taskGeNaive := true
		for _, p := range nodes[1:] {
			if perf[p][distmv.TaskMode] < perf[p][distmv.NaiveOverlap] {
				taskGeNaive = false
			}
		}
		check("task mode beats naive overlap at every P>1", taskGeNaive, "%v", perf)
	} else {
		check("task mode fastest at every P>1", taskBest, "%v", perf)
	}
	check("naive overlap never beats vector mode", naiveNoWin,
		"no asynchronous MPI progress (§III-A)")
	last := nodes[len(nodes)-1]
	speedup := perf[last][distmv.TaskMode] / perf[nodes[0]][distmv.TaskMode]
	check("strong scaling sublinear but real",
		speedup > 1 && speedup < float64(last),
		"task-mode speedup %.1fx on %dx nodes", speedup, last)
	return out, nil
}

// CountFailures returns the number of failed checks.
func CountFailures(results []CheckResult) int {
	n := 0
	for _, r := range results {
		if !r.Pass {
			n++
		}
	}
	return n
}
