// Package experiments wires the substrates together into the paper's
// experiments: one entry point per table and figure (see DESIGN.md's
// per-experiment index). The cmd/ binaries and the repository-level
// benchmarks are thin wrappers around this package.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

// Seed is the deterministic seed used by all experiments.
const Seed = 2012 // the paper's year

// DefaultScale is the matrix scale used when nothing is specified:
// small enough for quick runs, large enough for stable statistics.
// Override with -scale on the binaries or PJDS_SCALE for the benches;
// scale 1 reproduces the published sizes (subject to the per-matrix
// DefaultScale memory gate, see DESIGN.md).
const DefaultScale = 0.1

// ScaleFromEnv returns the benchmark scale: PJDS_SCALE if set, else
// DefaultScale.
func ScaleFromEnv() float64 {
	if v := os.Getenv("PJDS_SCALE"); v != "" {
		if f, err := strconv.ParseFloat(v, 64); err == nil && f > 0 && f <= 1 {
			return f
		}
	}
	return DefaultScale
}

// EffectiveScale combines a requested scale with a matrix's memory
// gate: the result never exceeds the matrix's DefaultScale·1 budget
// relative to full size (UHBR caps at 0.25 unless explicitly forced
// with a negative request, which means |request| exactly).
func EffectiveScale(tm matgen.TestMatrix, requested float64) float64 {
	if requested < 0 {
		return -requested
	}
	if requested == 0 {
		requested = DefaultScale
	}
	if requested > 1 {
		requested = 1
	}
	if requested > tm.DefaultScale {
		return tm.DefaultScale
	}
	return requested
}

// cache shares generated matrices across experiments within one
// process (benchmarks reuse them heavily).
var cache struct {
	mu sync.Mutex
	m  map[string]*matrix.CSR[float64]
}

// Matrix returns the named paper matrix at the given requested scale,
// generating it on first use. With PJDS_CACHE_DIR set, generated
// matrices are also persisted in the fast binary container, so the
// multi-hundred-million-non-zero instances are built once per machine.
func Matrix(name string, requested float64) (*matrix.CSR[float64], error) {
	tm, err := matgen.ByName(name)
	if err != nil {
		return nil, err
	}
	scale := EffectiveScale(tm, requested)
	key := fmt.Sprintf("%s@%g", tm.Name, scale)
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if cache.m == nil {
		cache.m = map[string]*matrix.CSR[float64]{}
	}
	if m, ok := cache.m[key]; ok {
		return m, nil
	}
	if m, ok := loadFromDisk(key); ok {
		cache.m[key] = m
		return m, nil
	}
	m := tm.Generate(scale, Seed)
	cache.m[key] = m
	saveToDisk(key, m)
	return m, nil
}

// diskPath maps a cache key to its file, "" when the disk cache is
// disabled.
func diskPath(key string) string {
	dir := os.Getenv("PJDS_CACHE_DIR")
	if dir == "" {
		return ""
	}
	return filepath.Join(dir, fmt.Sprintf("seed%d-%s.csrbin", Seed, key))
}

func loadFromDisk(key string) (*matrix.CSR[float64], bool) {
	path := diskPath(key)
	if path == "" {
		return nil, false
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	m, err := matrix.ReadBinary(f)
	if err != nil {
		return nil, false // stale or corrupt cache entries are ignored
	}
	return m, true
}

func saveToDisk(key string, m *matrix.CSR[float64]) {
	path := diskPath(key)
	if path == "" {
		return
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return
	}
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return
	}
	if err := matrix.WriteBinary(f, m); err != nil {
		f.Close()
		os.Remove(tmp)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return
	}
	os.Rename(tmp, path)
}

// DropCached evicts a cached matrix (memory management for the
// full-scale runs).
func DropCached(name string, requested float64) {
	tm, err := matgen.ByName(name)
	if err != nil {
		return
	}
	key := fmt.Sprintf("%s@%g", tm.Name, EffectiveScale(tm, requested))
	cache.mu.Lock()
	defer cache.mu.Unlock()
	delete(cache.m, key)
}
