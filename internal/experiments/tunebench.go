package experiments

import (
	"fmt"
	"io"
	"time"

	"pjds/internal/gpu"
	"pjds/internal/hostkernel"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
	"pjds/internal/textplot"
	"pjds/internal/tuner"
)

// TuneBenchRow is one matrix's format-selection measurement: the
// auto-tuned (or fixed) pick next to the pJDS preset it must not lose
// to, plus the digest gate proving the pick is bit-identical to the
// naive CSR reference.
type TuneBenchRow struct {
	Matrix   string `json:"matrix"`
	N        int    `json:"n"`
	Nnz      int64  `json:"nnz"`
	Winner   string `json:"winner"`
	CacheHit bool   `json:"cache_hit"`

	// AutoNsPerNnz is the selected kernel's best-of-iters time;
	// PJDSNsPerNnz is the pJDS preset measured the same way in the
	// same process — the hard gate compares the two.
	AutoNsPerNnz float64 `json:"auto_ns_per_nnz"`
	PJDSNsPerNnz float64 `json:"pjds_ns_per_nnz"`

	// ModelBytesPerNnz is the Eq. 1 traffic the tuner predicted for
	// the winner (perfreport -tune shows the full measured-vs-model
	// grid).
	ModelBytesPerNnz float64 `json:"model_bytes_per_nnz"`

	// DigestMatch reports that the selected kernel's result vector is
	// bit-identical to the naive CSR kernel's.
	Digest      string `json:"digest"`
	DigestMatch bool   `json:"digest_match"`
}

// TuneBenchResult is the complete format-selection benchmark.
type TuneBenchResult struct {
	Scale  float64        `json:"scale"`
	Format string         `json:"format"`
	Device string         `json:"device"`
	Rows   []TuneBenchRow `json:"entries"`
}

// RunTuneBench benchmarks format selection on the named paper matrices
// (nil = Table I set) at the given scale. format "auto" consults the
// tuning DB at dbPath ("" = tuner.DefaultPath) via TuneOrLookup — the
// first run sweeps and persists, later runs answer from the DB; a
// fixed format name (crs, pjds, sell, cmrs) skips the tuner and
// measures that cell directly. Every pick is digest-checked against
// the naive CSR kernel.
func RunTuneBench(format string, names []string, scale float64, iters, workers int, dbPath string, w io.Writer) (*TuneBenchResult, error) {
	if w == nil {
		w = io.Discard
	}
	if len(names) == 0 {
		names = Table1Matrices()
	}
	if iters < 1 {
		iters = 1
	}
	cfg := tuner.Config{Workers: workers, Metrics: telemetry.Default()}
	res := &TuneBenchResult{Scale: scale, Format: format, Device: gpu.TeslaC2070().Name}
	for _, name := range names {
		m, err := Matrix(name, scale)
		if err != nil {
			return nil, err
		}
		row := TuneBenchRow{Matrix: name, N: m.NRows, Nnz: int64(m.Nnz())}

		var cell tuner.Cell
		switch format {
		case "auto":
			e, hit, err := tuner.TuneOrLookup(m, name, dbPath, cfg)
			if err != nil {
				return nil, err
			}
			cell, row.CacheHit = e.Winner, hit
		case "crs", "cmrs":
			cell = tuner.Cell{Format: format, Height: 16}
		case "pjds":
			cell = tuner.Cell{Format: "pjds", C: 32, Sigma: m.NRows}
		case "sell":
			cell = tuner.Cell{Format: "sell", C: 32, Sigma: 256}
		default:
			return nil, fmt.Errorf("tunebench: unknown format %q (want auto, crs, pjds, sell, or cmrs)", format)
		}
		row.Winner = cell.Label()
		row.ModelBytesPerNnz = cell.ModelBytesPerNnz

		x := testVector(m.NCols)
		auto, y, err := measureCell(cell, m, workers, iters, x)
		if err != nil {
			return nil, err
		}
		row.AutoNsPerNnz = auto
		row.Digest = digestVector(y)

		pjds, _, err := measureCell(tuner.Cell{Format: "pjds"}, m, workers, iters, x)
		if err != nil {
			return nil, err
		}
		row.PJDSNsPerNnz = pjds

		// The bit-identity gate: every contender runs in the original
		// basis, so the pick must reproduce naive CSR exactly.
		nk, err := hostkernel.New(hostkernel.KindNaive, m, hostkernel.Options{Workers: 1})
		if err != nil {
			return nil, err
		}
		ref := make([]float64, m.NRows)
		err = nk.MulVec(ref, x)
		nk.Close()
		if err != nil {
			return nil, err
		}
		row.DigestMatch = digestVector(ref) == row.Digest

		res.Rows = append(res.Rows, row)
		DropCached(name, scale)
	}
	return res, renderTuneBench(w, res)
}

// measureCell times one grid cell's host kernel: one warmup, then
// best-of-iters. It returns the per-nnz time and the result vector.
func measureCell(c tuner.Cell, m *matrix.CSR[float64], workers, iters int, x []float64) (float64, []float64, error) {
	k, err := tuner.KernelFor(c, m, workers, nil)
	if err != nil {
		return 0, nil, err
	}
	defer k.Close()
	y := make([]float64, m.NRows)
	if err := k.MulVec(y, x); err != nil {
		return 0, nil, err
	}
	best := 0.0
	for it := 0; it < iters; it++ {
		t0 := time.Now()
		if err := k.MulVec(y, x); err != nil {
			return 0, nil, err
		}
		if sec := time.Since(t0).Seconds(); best == 0 || sec < best {
			best = sec
		}
	}
	nnz := m.Nnz()
	if nnz == 0 {
		return 0, y, nil
	}
	return best * 1e9 / float64(nnz), y, nil
}

// renderTuneBench prints the selection table plus the digest-gate
// summary line scripts grep for.
func renderTuneBench(w io.Writer, res *TuneBenchResult) error {
	fmt.Fprintf(w, "\nFormat selection benchmark (format %s, scale %g, this machine)\n", res.Format, res.Scale)
	rows := [][]string{{"matrix", "N", "nnz", "pick", "cache", "ns/nnz", "pJDS ns/nnz", "speedup"}}
	for _, r := range res.Rows {
		cache := "sweep"
		if r.CacheHit {
			cache = "hit"
		}
		speedup := 0.0
		if r.AutoNsPerNnz > 0 {
			speedup = r.PJDSNsPerNnz / r.AutoNsPerNnz
		}
		rows = append(rows, []string{
			r.Matrix, fmt.Sprint(r.N), fmt.Sprint(r.Nnz), r.Winner, cache,
			fmt.Sprintf("%.2f", r.AutoNsPerNnz),
			fmt.Sprintf("%.2f", r.PJDSNsPerNnz),
			fmt.Sprintf("%.2fx", speedup),
		})
	}
	if err := textplot.Table(w, rows); err != nil {
		return err
	}
	for _, r := range res.Rows {
		verdict := "MATCH"
		if !r.DigestMatch {
			verdict = "MISMATCH"
		}
		fmt.Fprintf(w, "digest %s %s %s\n", r.Matrix, verdict, r.Digest)
	}
	return nil
}
