package experiments

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"

	"pjds/internal/distmv"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
)

// Tiny scale keeps the experiment tests quick; the full-scale runs
// happen in the cmd binaries and benchmarks.
const tinyScale = 0.02

func TestScaleFromEnv(t *testing.T) {
	t.Setenv("PJDS_SCALE", "")
	if ScaleFromEnv() != DefaultScale {
		t.Error("default scale")
	}
	t.Setenv("PJDS_SCALE", "0.5")
	if ScaleFromEnv() != 0.5 {
		t.Error("env scale ignored")
	}
	t.Setenv("PJDS_SCALE", "junk")
	if ScaleFromEnv() != DefaultScale {
		t.Error("junk scale not rejected")
	}
	t.Setenv("PJDS_SCALE", "7")
	if ScaleFromEnv() != DefaultScale {
		t.Error("out-of-range scale not rejected")
	}
	os.Unsetenv("PJDS_SCALE")
}

func TestEffectiveScale(t *testing.T) {
	uhbr, err := matgen.ByName("UHBR")
	if err != nil {
		t.Fatal(err)
	}
	if got := EffectiveScale(uhbr, 1); got != 0.25 {
		t.Errorf("UHBR at scale 1 → %g, want the 0.25 memory gate", got)
	}
	if got := EffectiveScale(uhbr, -1); got != 1 {
		t.Errorf("forced scale = %g", got)
	}
	if got := EffectiveScale(uhbr, 0.1); got != 0.1 {
		t.Errorf("small scale clipped: %g", got)
	}
	dlr1, _ := matgen.ByName("DLR1")
	if got := EffectiveScale(dlr1, 0); got != DefaultScale {
		t.Errorf("zero request = %g", got)
	}
	if got := EffectiveScale(dlr1, 5); got != 1 {
		t.Errorf("oversized request = %g", got)
	}
}

func TestMatrixCache(t *testing.T) {
	a, err := Matrix("sAMG", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Matrix("sAMG", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("cache miss on identical request")
	}
	DropCached("sAMG", tinyScale)
	c, err := Matrix("sAMG", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("DropCached had no effect")
	}
	if !a.Equal(c, 0) {
		t.Error("regenerated matrix differs (determinism broken)")
	}
	if _, err := Matrix("nope", 1); err == nil {
		t.Error("unknown matrix accepted")
	}
}

func TestMatrixDiskCache(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("PJDS_CACHE_DIR", dir)
	DropCached("sAMG", 0.004)
	a, err := Matrix("sAMG", 0.004)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the in-memory copy; the next call must hit the disk cache.
	DropCached("sAMG", 0.004)
	b, err := Matrix("sAMG", 0.004)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("in-memory cache not dropped")
	}
	if !a.Equal(b, 0) {
		t.Fatal("disk cache returned a different matrix")
	}
	// The cache file exists and is non-trivial.
	entries, err := os.ReadDir(dir)
	if err != nil || len(entries) == 0 {
		t.Fatalf("no cache file written: %v", err)
	}
	DropCached("sAMG", 0.004)
	os.Unsetenv("PJDS_CACHE_DIR")
}

func TestRunTable1SmallScale(t *testing.T) {
	var buf bytes.Buffer
	res, err := RunTable1(tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		// Every GF/s cell positive, ECC off ≥ ECC on, SP ≥ DP.
		cells := map[string]float64{
			"SP0R": r.SP.ECCOff.ELLPACKR.GFlops, "SP0P": r.SP.ECCOff.PJDS.GFlops,
			"SP1R": r.SP.ECCOn.ELLPACKR.GFlops, "SP1P": r.SP.ECCOn.PJDS.GFlops,
			"DP0R": r.DP.ECCOff.ELLPACKR.GFlops, "DP0P": r.DP.ECCOff.PJDS.GFlops,
			"DP1R": r.DP.ECCOn.ELLPACKR.GFlops, "DP1P": r.DP.ECCOn.PJDS.GFlops,
		}
		for k, v := range cells {
			if v <= 0 {
				t.Errorf("%s: cell %s = %g", r.Matrix, k, v)
			}
		}
		if cells["SP0R"] < cells["SP1R"] || cells["DP0P"] < cells["DP1P"] {
			t.Errorf("%s: ECC off slower than on", r.Matrix)
		}
		if cells["SP1R"] < cells["DP1R"] {
			t.Errorf("%s: SP slower than DP", r.Matrix)
		}
		// pJDS within (a loosened version of) the paper's 91%–130%
		// band of ELLPACK-R. At this tiny test scale the RHS vector
		// fits the L2 almost entirely, which flatters ELLPACK-R's
		// cache reuse; the scale-0.1 benchmark lands at 0.95–1.27.
		ratio := cells["DP1P"] / cells["DP1R"]
		if ratio < 0.78 || ratio > 1.45 {
			t.Errorf("%s: pJDS/ELLPACK-R DP ratio %.2f outside [0.78, 1.45]", r.Matrix, ratio)
		}
		// GPU beats the Westmere node in DP for all Table I matrices.
		if best := math.Max(cells["DP1R"], cells["DP1P"]); best < r.Westmere.GFlops {
			t.Errorf("%s: GPU DP %.1f below Westmere %.1f", r.Matrix, best, r.Westmere.GFlops)
		}
		// pJDS padding overhead must be far below 1% (paper: <0.01%).
		if r.PJDSOverheadPct > 0.5 {
			t.Errorf("%s: pJDS overhead %.3f%%", r.Matrix, r.PJDSOverheadPct)
		}
		if math.Abs(r.DataReductionPct-r.PaperReductionPct) > 7 && r.PaperReductionPct > 0 {
			t.Errorf("%s: reduction %.1f%% vs paper %.1f%%", r.Matrix, r.DataReductionPct, r.PaperReductionPct)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "pJDS") {
		t.Error("render missing labels")
	}
}

func TestTable1DLR2FitsOnlyPJDS(t *testing.T) {
	// E11: in DP with ECC, full-size DLR2 fits a C2050 only as pJDS.
	m, err := Matrix("DLR2", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	row, err := table1Row("DLR2", m, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.FitsC2050ELLPACKR {
		t.Error("DLR2 as ELLPACK-R should NOT fit the C2050")
	}
	if !row.FitsC2050PJDS {
		t.Error("DLR2 as pJDS should fit the C2050")
	}
}

func TestRunFig2(t *testing.T) {
	var buf bytes.Buffer
	rows, err := RunFig2("sAMG", tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Fig. 2 ordering: ELLPACK stores most, pJDS least; pJDS has the
	// best lane efficiency.
	if rows[0].StoredElems < rows[1].StoredElems || rows[1].StoredElems <= rows[2].StoredElems {
		t.Errorf("stored ordering: %v", rows)
	}
	if rows[2].LaneEfficiency <= rows[1].LaneEfficiency {
		t.Errorf("pJDS lane efficiency %.2f not above ELLPACK-R %.2f",
			rows[2].LaneEfficiency, rows[1].LaneEfficiency)
	}
	if !strings.Contains(buf.String(), "Fig. 2") {
		t.Error("render label missing")
	}
}

func TestRunFig3(t *testing.T) {
	var buf bytes.Buffer
	entries, err := RunFig3(tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 4 {
		t.Fatalf("%d entries", len(entries))
	}
	for _, e := range entries {
		if e.Histogram.Total != e.N {
			t.Errorf("%s: histogram mass %d != N %d", e.Matrix, e.Histogram.Total, e.N)
		}
	}
	// Relative N_nzr ordering across matrices matches Fig. 3: DLR2 >
	// DLR1 > HMEp > sAMG.
	m := map[string]float64{}
	for _, e := range entries {
		m[e.Matrix] = e.Histogram.Mean()
	}
	if !(m["DLR2"] > m["DLR1"] && m["DLR1"] > m["HMEp"] && m["HMEp"] > m["sAMG"]) {
		t.Errorf("mean ordering wrong: %v", m)
	}
}

func TestRunFig5SmallDLR1(t *testing.T) {
	var buf bytes.Buffer
	points, err := RunFig5(Fig5Config{
		Matrix: "DLR1", Scale: tinyScale, Nodes: []int{1, 2, 4}, Iterations: 1,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 { // 3 nodes × 3 modes
		t.Fatalf("%d points", len(points))
	}
	byMode := map[distmv.Mode][]ScalingPoint{}
	for _, p := range points {
		byMode[p.Mode] = append(byMode[p.Mode], p)
		if p.MaxRelError > 1e-9 {
			t.Errorf("P=%d %v: error %g", p.Nodes, p.Mode, p.MaxRelError)
		}
	}
	// Aggregate performance grows with node count in task mode at
	// these small counts.
	tm := byMode[distmv.TaskMode]
	for i := 1; i < len(tm); i++ {
		if tm[i].GFlops <= tm[i-1].GFlops {
			t.Errorf("task mode not scaling: %v", tm)
		}
	}
	if !strings.Contains(buf.String(), "Fig. 5") {
		t.Error("plot label missing")
	}
}

func TestRunFig5SkipsWhenTooBigForDevice(t *testing.T) {
	// A device too small for P=1 but big enough for P=4: the harness
	// must skip the small counts with a note, as Fig. 5b does for UHBR.
	m, err := Matrix("DLR1", tinyScale)
	if err != nil {
		t.Fatal(err)
	}
	need := func(p int) int64 {
		pt, err := distmv.PartitionByNnz(m, p)
		if err != nil {
			t.Fatal(err)
		}
		probs, err := distmv.Distribute(m, pt)
		if err != nil {
			t.Fatal(err)
		}
		reports, _ := distmv.CheckFit(probs, gpu.TeslaC2050(), distmv.FormatELLPACKR)
		var max int64
		for _, r := range reports {
			if r.FootprintBytes > max {
				max = r.FootprintBytes
			}
		}
		return max
	}
	need1, need4 := need(1), need(4)
	if need4 >= need1 {
		t.Fatalf("fixture broken: P=4 needs %d ≥ P=1 %d", need4, need1)
	}
	tiny := gpu.TeslaC2050()
	// Usable memory lands midway between the two demands.
	tiny.MemBytes = (distmv.DeviceReserveBytes + (need1+need4)/2) * 8 / 7
	var buf bytes.Buffer
	points, err := RunFig5(Fig5Config{
		Matrix: "DLR1", Scale: tinyScale, Nodes: []int{1, 4}, Iterations: 1,
		Device: tiny,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		if p.Nodes == 1 {
			t.Fatalf("P=1 should have been skipped: %+v", p)
		}
	}
	if len(points) != 3 {
		t.Fatalf("%d points, want 3 (P=4 only)", len(points))
	}
	if !strings.Contains(buf.String(), "does not fit") {
		t.Error("skip note missing")
	}
}

func TestRunWeakScaling(t *testing.T) {
	var buf bytes.Buffer
	points, err := RunWeakScaling(WeakConfig{
		Matrix: "DLR1", BaseScale: 0.01, Nodes: []int{1, 2, 4}, Iterations: 1,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 9 {
		t.Fatalf("%d points", len(points))
	}
	for _, p := range points {
		if p.Nodes == 1 && math.Abs(p.Efficiency-1) > 1e-12 {
			t.Errorf("%v: baseline efficiency %.3f", p.Mode, p.Efficiency)
		}
		if p.Efficiency <= 0 || p.Efficiency > 1.2 {
			t.Errorf("P=%d %v: efficiency %.3f out of range", p.Nodes, p.Mode, p.Efficiency)
		}
	}
	// The matrix grows with P.
	if points[0].GlobalNnz >= points[len(points)-1].GlobalNnz {
		t.Error("problem size did not grow with node count")
	}
	if !strings.Contains(buf.String(), "Weak scaling") {
		t.Error("plot label missing")
	}
}

func TestRunFig4Timeline(t *testing.T) {
	var buf bytes.Buffer
	events, err := RunFig4Timeline("DLR1", tinyScale, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) < 6 {
		t.Fatalf("only %d events", len(events))
	}
	if !strings.Contains(buf.String(), "Fig. 4") {
		t.Error("gantt label missing")
	}
}

func TestRunSec2B(t *testing.T) {
	var buf bytes.Buffer
	rep, err := RunSec2B(tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// The four §II-B numbers.
	if math.Abs(rep.MaxNnzr50WorstCase-25) > 1.5 {
		t.Errorf("Eq.3 worst case %.1f, want ≈25", rep.MaxNnzr50WorstCase)
	}
	if math.Abs(rep.MaxNnzr50Alpha1-7.2) > 0.5 {
		t.Errorf("Eq.3 alpha=1 %.1f, want ≈7", rep.MaxNnzr50Alpha1)
	}
	if math.Abs(rep.MinNnzr10Alpha1-79.2) > 1.5 {
		t.Errorf("Eq.4 alpha=1 %.1f, want ≈80", rep.MinNnzr10Alpha1)
	}
	if math.Abs(rep.MinNnzr10WorstCase-265) > 3 {
		t.Errorf("Eq.4 worst case %.1f, want ≈266", rep.MinNnzr10WorstCase)
	}
	// Measured PCIe impact: HMEp and sAMG suffer much more than DLR1
	// and UHBR (the §II-B verdict).
	pen := map[string]float64{}
	for _, e := range rep.Effective {
		pen[e.Matrix] = e.PenaltyPct
		if e.WithPCIGFlops >= e.KernelGFlops {
			t.Errorf("%s: PCIe made it faster?", e.Matrix)
		}
	}
	if pen["HMEp"] < pen["DLR1"] || pen["sAMG"] < pen["UHBR"] {
		t.Errorf("penalty ordering wrong: %v", pen)
	}
	if pen["sAMG"] < 30 {
		t.Errorf("sAMG penalty %.0f%%, expected PCIe-dominated", pen["sAMG"])
	}
	if pen["DLR1"] > 35 {
		t.Errorf("DLR1 penalty %.0f%%, expected moderate", pen["DLR1"])
	}
}

func TestFig1Demo(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig1Demo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Fig. 1", "col_start", "stored elements: 28"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestAblations(t *testing.T) {
	var buf bytes.Buffer
	l2, err := AblationL2("sAMG", tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(l2) != 3 {
		t.Fatalf("L2 ablation: %d points", len(l2))
	}
	// No cache must be slowest and have the largest alpha.
	if l2[2].GFlops >= l2[0].GFlops || l2[2].Extra <= l2[0].Extra {
		t.Errorf("no-cache point not worst: %+v", l2)
	}

	sw, err := AblationSortWindow("sAMG", tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Padding overhead decreases monotonically with sigma.
	for i := 1; i < len(sw); i++ {
		if sw[i].Extra > sw[i-1].Extra+1e-12 {
			t.Errorf("overhead not decreasing with sigma: %+v", sw)
		}
	}

	bh, err := AblationBlockHeight("sAMG", tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// Padding overhead grows with br; br=1 has none.
	if bh[0].Extra != 0 {
		t.Errorf("JDS (br=1) overhead %g", bh[0].Extra)
	}
	if bh[len(bh)-1].Extra <= bh[1].Extra {
		t.Errorf("overhead not growing with br: %+v", bh)
	}

	mp, err := AblationMPIProgress("DLR1", tinyScale, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if mp[1].GFlops < mp[0].GFlops {
		t.Errorf("async progress slower: %+v", mp)
	}

	oc, err := AblationOccupancy("DLR1", tinyScale, 4, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if oc[1].GFlops < oc[0].GFlops {
		t.Errorf("disabling occupancy derating slowed things down: %+v", oc)
	}
	if !strings.Contains(buf.String(), "Ablation:") {
		t.Error("ablation render missing")
	}
}

func TestAblationRCM(t *testing.T) {
	var buf bytes.Buffer
	// A banded matrix behind a random permutation: RCM recovers the
	// hidden locality.
	pts, err := AblationRCM("scrambled", tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[1].Extra >= pts[0].Extra {
		t.Errorf("RCM did not reduce alpha: %.2f → %.2f", pts[0].Extra, pts[1].Extra)
	}
	if pts[1].GFlops <= pts[0].GFlops {
		t.Errorf("RCM did not help: %.2f → %.2f GF/s", pts[0].GFlops, pts[1].GFlops)
	}
}

func TestRunFormatComparison(t *testing.T) {
	var buf bytes.Buffer
	cells, err := RunFormatComparison(tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	// 4 matrices × 10 formats.
	if len(cells) != 40 {
		t.Fatalf("%d cells", len(cells))
	}
	byKey := map[string]ComparisonCell{}
	for _, c := range cells {
		if c.GFlops <= 0 || c.StoredRatio < 1 {
			t.Errorf("%s/%s: degenerate cell %+v", c.Matrix, c.Format, c)
		}
		byKey[c.Matrix+"/"+c.Format] = c
	}
	for _, name := range Table1Matrices() {
		// pJDS stores no more than the sorted sliced variant, which
		// stores no more than the unsorted one, which stores no more
		// than ELLPACK; JDS is the floor.
		pj := byKey[name+"/pJDS"].StoredRatio
		sorted := byKey[name+"/sliced-ELL-sorted(sigma=4096)"].StoredRatio
		unsorted := byKey[name+"/sliced-ELL"].StoredRatio
		ell := byKey[name+"/ELLPACK"].StoredRatio
		jds := byKey[name+"/JDS"].StoredRatio
		if !(jds <= pj+1e-9 && pj <= sorted+1e-9 && sorted <= unsorted+1e-9 && unsorted <= ell+1e-9) {
			t.Errorf("%s: storage ordering violated: JDS %.3f pJDS %.3f sorted %.3f unsorted %.3f ELLPACK %.3f",
				name, jds, pj, sorted, unsorted, ell)
		}
		// Plain ELLPACK is never the fastest.
		if byKey[name+"/ELLPACK"].GFlops > byKey[name+"/ELLPACK-R"].GFlops {
			t.Errorf("%s: plain ELLPACK beat ELLPACK-R", name)
		}
	}
	if !strings.Contains(buf.String(), "outlook") {
		t.Error("render label missing")
	}
}

func TestAblationPartition(t *testing.T) {
	var buf bytes.Buffer
	pts, err := AblationPartition(tinyScale, 6, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	// nnz-balanced has (near-)unit nnz imbalance; the other two trade
	// nnz imbalance for occupancy or locality.
	if pts[0].Extra > 1.4 {
		t.Errorf("nnz-balanced imbalance %.2f", pts[0].Extra)
	}
	if pts[1].Extra <= pts[0].Extra {
		t.Errorf("row partitioning not more nnz-imbalanced: %.2f vs %.2f", pts[1].Extra, pts[0].Extra)
	}
	for _, p := range pts {
		if p.GFlops <= 0 {
			t.Errorf("%s: no performance", p.Setting)
		}
	}
	// The strategies must differ measurably (see the AblationPartition
	// doc comment for which wins where); a no-op ablation is a bug.
	ratio := pts[0].GFlops / pts[1].GFlops
	if ratio > 0.97 && ratio < 1.03 {
		t.Errorf("partitioning choice had no effect: %.2f vs %.2f GF/s", pts[0].GFlops, pts[1].GFlops)
	}
}

func TestAblationELLRT(t *testing.T) {
	var buf bytes.Buffer
	pts, err := AblationELLRT("sAMG", tinyScale, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// pJDS stores less than every ELLR-T variant on sAMG.
	pj := pts[len(pts)-1]
	for _, p := range pts[:4] {
		if pj.Extra >= p.Extra {
			t.Errorf("pJDS stored/nnz %.2f not below %s %.2f", pj.Extra, p.Setting, p.Extra)
		}
	}
}
