package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"

	"pjds/internal/cpu"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
	"pjds/internal/textplot"
)

// Table1Cell is one GF/s measurement of Table I.
type Table1Cell struct {
	GFlops float64
	Stats  gpu.KernelStats
}

// Table1Row holds one matrix's column of Table I (the paper prints
// matrices as columns; we keep one struct per matrix).
type Table1Row struct {
	Matrix string
	N      int
	Nnz    int64
	Nnzr   float64

	// DataReductionPct is pJDS vs ELLPACK stored elements (the table's
	// first data row); PaperReductionPct is the published value.
	DataReductionPct  float64
	PaperReductionPct float64
	// PJDSOverheadPct is the pJDS padding overhead vs minimal storage
	// (§II-A quotes < 0.01% at br = 32).
	PJDSOverheadPct float64

	// Perf[precision][ecc][format] with precision ∈ {SP, DP},
	// ecc ∈ {0, 1}, format ∈ {ELLPACK-R, pJDS}.
	SP, DP struct {
		ECCOff, ECCOn struct {
			ELLPACKR, PJDS Table1Cell
		}
	}

	// Westmere is the CPU CRS DP baseline (last table row).
	Westmere cpu.Stats

	// FitsC2050 reports whether the DP matrix data plus vectors fit the
	// 3 GB C2050 (ECC on) in each format, scaled to full published
	// size (§II-A: DLR2 fits only as pJDS).
	FitsC2050ELLPACKR, FitsC2050PJDS bool
}

// Table1Result is the complete experiment.
type Table1Result struct {
	Scale float64
	Rows  []Table1Row
}

// Table1Matrices lists the matrices of Table I in column order.
func Table1Matrices() []string { return []string{"DLR1", "DLR2", "HMEp", "sAMG"} }

// RunTable1 reproduces Table I on the simulated C2070 (and the
// Westmere CRS baseline) at the given scale. Progress and the
// rendered table go to w (may be nil).
func RunTable1(scale float64, w io.Writer) (*Table1Result, error) {
	if w == nil {
		w = io.Discard
	}
	res := &Table1Result{Scale: scale}
	for _, name := range Table1Matrices() {
		fmt.Fprintf(w, "# %s: generating...\n", name)
		m, err := Matrix(name, scale)
		if err != nil {
			return nil, err
		}
		row, err := table1Row(name, m, w)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, *row)
		DropCached(name, scale)
		runtime.GC()
	}
	return res, renderTable1(w, res)
}

// table1Row measures one matrix.
func table1Row(name string, m *matrix.CSR[float64], w io.Writer) (*Table1Row, error) {
	if w == nil {
		w = io.Discard
	}
	row := &Table1Row{
		Matrix: name,
		N:      m.NRows,
		Nnz:    int64(m.Nnz()),
		Nnzr:   m.AvgRowLen(),
	}
	if tm, err := matgen.ByName(name); err == nil {
		row.PaperReductionPct = tm.PaperReductionPct
	}
	// Storage: data reduction and overhead, plus the C2050 fit check
	// extrapolated to the full published size.
	ell := formats.NewELLPACK(m)
	pj, err := formats.NewPJDS(m)
	if err != nil {
		return nil, err
	}
	row.DataReductionPct = 100 * formats.DataReduction[float64](ell, pj)
	row.PJDSOverheadPct = 100 * pj.PaddingOverhead()
	ellr := formats.NewELLPACKR(m)
	scaleUp := float64(paperN(name)) / float64(m.NRows)
	c2050 := gpu.TeslaC2050()
	vec := int64(16 * m.NRows) // x and y vectors
	row.FitsC2050ELLPACKR = c2050.Fits(int64(float64(ellr.FootprintBytes()+vec) * scaleUp))
	row.FitsC2050PJDS = c2050.Fits(int64(float64(pj.FootprintBytes()+vec) * scaleUp))
	ell = nil

	x := testVector(m.NCols)
	y := make([]float64, m.NRows)

	eccOn := gpu.TeslaC2070()
	eccOff := gpu.TeslaC2070()
	eccOff.ECC = false

	// DP runs: simulate once (ECC on), re-derive for ECC off.
	fmt.Fprintf(w, "# %s: DP kernels...\n", name)
	stE, err := gpu.RunELLPACKR(eccOn, ellr, y, x, gpu.RunOptions{})
	if err != nil {
		return nil, err
	}
	row.DP.ECCOn.ELLPACKR = cell(*stE)
	row.DP.ECCOff.ELLPACKR = cell(stE.Rederive(eccOff))
	stP, err := gpu.RunPJDS(eccOn, pj, make([]float64, pj.NPad), x, gpu.RunOptions{})
	if err != nil {
		return nil, err
	}
	row.DP.ECCOn.PJDS = cell(*stP)
	row.DP.ECCOff.PJDS = cell(stP.Rederive(eccOff))

	// CPU baseline on the DP matrix.
	west, err := cpu.WestmereEP().EstimateCRS(m)
	if err != nil {
		return nil, err
	}
	row.Westmere = west

	// SP runs.
	fmt.Fprintf(w, "# %s: SP kernels...\n", name)
	ms := matrix.Convert[float32](m)
	ellr = nil
	pj = nil
	runtime.GC()
	ellrS := formats.NewELLPACKR(ms)
	pjS, err := formats.NewPJDS(ms)
	if err != nil {
		return nil, err
	}
	xs := make([]float32, ms.NCols)
	for i := range xs {
		xs[i] = float32(x[i])
	}
	ys := make([]float32, ms.NRows)
	stES, err := gpu.RunELLPACKR(eccOn, ellrS, ys, xs, gpu.RunOptions{})
	if err != nil {
		return nil, err
	}
	row.SP.ECCOn.ELLPACKR = cell(*stES)
	row.SP.ECCOff.ELLPACKR = cell(stES.Rederive(eccOff))
	stPS, err := gpu.RunPJDS(eccOn, pjS, make([]float32, pjS.NPad), xs, gpu.RunOptions{})
	if err != nil {
		return nil, err
	}
	row.SP.ECCOn.PJDS = cell(*stPS)
	row.SP.ECCOff.PJDS = cell(stPS.Rederive(eccOff))
	return row, nil
}

func cell(st gpu.KernelStats) Table1Cell { return Table1Cell{GFlops: st.GFlops, Stats: st} }

// paperN returns the published dimension for the fit extrapolation.
func paperN(name string) int {
	switch name {
	case "DLR1":
		return 278502
	case "DLR2":
		return 541980
	case "HMEp":
		return 6201600
	case "sAMG":
		return 3405035
	case "UHBR":
		return 4500000
	default:
		return 1
	}
}

// testVector returns the deterministic RHS used by all experiments.
func testVector(n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 + math.Sin(0.001*float64(i))
	}
	return x
}

// renderTable1 prints the experiment in the layout of Table I.
func renderTable1(w io.Writer, res *Table1Result) error {
	rows := [][]string{{"", ""}}
	for _, r := range res.Rows {
		rows[0] = append(rows[0], r.Matrix)
	}
	add := func(label1, label2 string, f func(Table1Row) string) {
		row := []string{label1, label2}
		for _, r := range res.Rows {
			row = append(row, f(r))
		}
		rows = append(rows, row)
	}
	add("data reduction [%]", "", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.DataReductionPct) })
	add("SP ECC=0", "ELLPACK-R", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.SP.ECCOff.ELLPACKR.GFlops) })
	add("", "pJDS", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.SP.ECCOff.PJDS.GFlops) })
	add("SP ECC=1", "ELLPACK-R", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.SP.ECCOn.ELLPACKR.GFlops) })
	add("", "pJDS", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.SP.ECCOn.PJDS.GFlops) })
	add("DP ECC=0", "ELLPACK-R", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.DP.ECCOff.ELLPACKR.GFlops) })
	add("", "pJDS", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.DP.ECCOff.PJDS.GFlops) })
	add("DP ECC=1", "ELLPACK-R", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.DP.ECCOn.ELLPACKR.GFlops) })
	add("", "pJDS", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.DP.ECCOn.PJDS.GFlops) })
	add("Westmere CRS (DP)", "", func(r Table1Row) string { return fmt.Sprintf("%.1f", r.Westmere.GFlops) })
	add("pJDS overhead [%]", "", func(r Table1Row) string { return fmt.Sprintf("%.3f", r.PJDSOverheadPct) })
	add("fits C2050 3GB (DP)", "ELLPACK-R", func(r Table1Row) string { return fmt.Sprint(r.FitsC2050ELLPACKR) })
	add("", "pJDS", func(r Table1Row) string { return fmt.Sprint(r.FitsC2050PJDS) })
	fmt.Fprintf(w, "\nTable I reproduction (scale %g, GF/s on simulated C2070; storage rows scaled to full size)\n", res.Scale)
	return textplot.Table(w, rows)
}
