// Package perfmodel implements the analytic performance model of
// §II-B: the worst-case code balance of the ELLPACK/pJDS kernels
// (Eq. 1), the wallclock decomposition into kernel and PCIe time
// (Eq. 2), and the N_nzr ranges for which GPGPU acceleration pays off
// (Eqs. 3 and 4). The model is what the paper uses to rule out the
// HMEp and sAMG matrices for multi-GPU runs.
package perfmodel

import (
	"fmt"
	"math"
)

// CodeBalanceDP returns B_W^DP of Eq. (1) in bytes/flop for double
// precision:
//
//	B = (8 + 4 + 8α + 16/N_nzr) / 2 = 6 + 4α + 8/N_nzr
//
// where α ∈ [1/N_nzr, 1] quantifies RHS cache reuse: α = 1 means every
// RHS access goes to memory; α = 1/N_nzr means each RHS element is
// loaded exactly once.
func CodeBalanceDP(alpha, nnzr float64) float64 {
	return 6 + 4*alpha + 8/nnzr
}

// CodeBalanceSP is the single-precision analogue: values and RHS
// elements shrink to 4 bytes while the 4-byte index and the two flops
// per entry stay, giving (4 + 4 + 4α + 8/N_nzr)/2 = 4 + 2α + 4/N_nzr.
func CodeBalanceSP(alpha, nnzr float64) float64 {
	return 4 + 2*alpha + 4/nnzr
}

// AlphaIdeal returns the best possible α, 1/N_nzr: each RHS element
// loaded exactly once (the κ = 0 case of Schubert et al. [4]).
func AlphaIdeal(nnzr float64) float64 { return 1 / nnzr }

// Model bundles the two bandwidths the §II-B analysis is parameterized
// by.
type Model struct {
	// BGPU is the device-memory bandwidth in bytes/s.
	BGPU float64
	// BPCI is the host↔device PCIe bandwidth in bytes/s.
	BPCI float64
}

// Validate reports configuration errors.
func (m Model) Validate() error {
	if m.BGPU <= 0 || m.BPCI <= 0 {
		return fmt.Errorf("perfmodel: non-positive bandwidth in %+v", m)
	}
	return nil
}

// TMVMSeconds returns the pure spMVM kernel time of Eq. (2) for a
// matrix of dimension n with nnzr non-zeros per row at RHS reuse
// alpha, double precision:
//
//	T_MVM = 8N/B_GPU · (N_nzr(α + 3/2) + 2)
func (m Model) TMVMSeconds(n int, nnzr, alpha float64) float64 {
	return 8 * float64(n) / m.BGPU * (nnzr*(alpha+1.5) + 2)
}

// TPCISeconds returns the PCIe transfer time of Eq. (2): both the RHS
// upload and LHS download move 8N bytes (DP).
func (m Model) TPCISeconds(n int) float64 {
	return 16 * float64(n) / m.BPCI
}

// PCIPenalty returns T_PCI/(T_MVM+T_PCI): the fraction of total
// wallclock spent on the bus.
func (m Model) PCIPenalty(n int, nnzr, alpha float64) float64 {
	tm := m.TMVMSeconds(n, nnzr, alpha)
	tp := m.TPCISeconds(n)
	return tp / (tm + tp)
}

// MaxNnzrFor50PctPenalty returns the Eq. (3) bound: for N_nzr at or
// below this value the PCIe transfers cost at least as much as the
// kernel itself (T_MVM ≤ T_PCI):
//
//	N_nzr ≤ 2(B_GPU/B_PCI − 1)/(α + 3/2)
func (m Model) MaxNnzrFor50PctPenalty(alpha float64) float64 {
	return 2 * (m.BGPU/m.BPCI - 1) / (alpha + 1.5)
}

// MinNnzrFor10PctPenalty returns the Eq. (4) bound: for N_nzr at or
// above this value the PCIe penalty is below 10% (T_MVM ≥ 10·T_PCI):
//
//	N_nzr ≥ (20·B_GPU/B_PCI − 2)/(α + 3/2)
func (m Model) MinNnzrFor10PctPenalty(alpha float64) float64 {
	return (20*m.BGPU/m.BPCI - 2) / (alpha + 1.5)
}

// SolveAlphaSelfConsistent finds the α in the worst case α = 1/N_nzr
// of the Eq. (3) analysis: the paper plugs α = 1/N_nzr into the bound
// and reports N_nzr ≤ 25 at B_GPU ≳ 20·B_PCI. The bound then depends
// on its own result; iterate to a fixed point.
func (m Model) SolveAlphaSelfConsistent(bound func(alpha float64) float64) float64 {
	nnzr := bound(1) // start from the α = 1 bound
	for i := 0; i < 100; i++ {
		next := bound(1 / math.Max(nnzr, 1))
		if math.Abs(next-nnzr) < 1e-9 {
			return next
		}
		nnzr = next
	}
	return nnzr
}

// GFlopsFromTime converts an spMVM wallclock into the paper's GF/s
// metric (2 flops per non-zero).
func GFlopsFromTime(nnz int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return 2 * float64(nnz) / seconds / 1e9
}

// EffectiveGFlops returns the PCIe-inclusive performance: the §III
// introduction quotes 12.9 → 10.9 GF/s for DLR1 and 3.7 / 2.3 GF/s
// for HMEp / sAMG once transfers are counted.
func (m Model) EffectiveGFlops(n int, nnz int64, nnzr, alpha float64) float64 {
	return GFlopsFromTime(nnz, m.TMVMSeconds(n, nnzr, alpha)+m.TPCISeconds(n))
}
