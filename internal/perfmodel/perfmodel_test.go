package perfmodel

import (
	"math"
	"testing"
	"testing/quick"

	"pjds/internal/pcie"
)

func TestCodeBalanceDPLimits(t *testing.T) {
	// α = 1, huge N_nzr → 10 bytes/flop; α ideal, huge N_nzr → 6.
	if b := CodeBalanceDP(1, 1e12); math.Abs(b-10) > 1e-9 {
		t.Errorf("worst-case balance = %g, want 10", b)
	}
	if b := CodeBalanceDP(0, 1e12); math.Abs(b-6) > 1e-9 {
		t.Errorf("streaming-only balance = %g, want 6", b)
	}
	// DLR1-like: N_nzr = 144, α = 0.2 → 6 + 0.8 + 0.056 ≈ 6.86.
	if b := CodeBalanceDP(0.2, 144); math.Abs(b-6.8555) > 1e-3 {
		t.Errorf("DLR1-like balance = %g", b)
	}
}

func TestCodeBalanceSPBelowDP(t *testing.T) {
	f := func(a, n float64) bool {
		alpha := math.Abs(math.Mod(a, 1))
		nnzr := 1 + math.Abs(math.Mod(n, 500))
		return CodeBalanceSP(alpha, nnzr) < CodeBalanceDP(alpha, nnzr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAlphaIdeal(t *testing.T) {
	if AlphaIdeal(8) != 0.125 {
		t.Error("alpha ideal")
	}
}

func TestEq3WorstCaseReproducesPaperNumbers(t *testing.T) {
	// §II-B: "In the worst case, α = 1/N_nzr and B_GPU ≳ 20 B_PCI lead
	// to N_nzr ≤ 25."
	m := Model{BGPU: 20, BPCI: 1}
	got := m.SolveAlphaSelfConsistent(m.MaxNnzrFor50PctPenalty)
	if math.Abs(got-25) > 1.0 {
		t.Errorf("Eq. 3 worst case = %.1f, paper says ≈25", got)
	}
	// "if α = 1 and B_GPU ≈ 10 B_PCI we have N_nzr ≤ 7."
	m2 := Model{BGPU: 10, BPCI: 1}
	if got := m2.MaxNnzrFor50PctPenalty(1); math.Abs(got-7.2) > 0.3 {
		t.Errorf("Eq. 3 α=1 case = %.1f, paper says ≈7", got)
	}
}

func TestEq4ReproducesPaperNumbers(t *testing.T) {
	// "at B_GPU ≈ 10 B_PCI and α = 1 a value of N_nzr ≳ 80 is
	// sufficient" for <10% penalty.
	m := Model{BGPU: 10, BPCI: 1}
	if got := m.MinNnzrFor10PctPenalty(1); math.Abs(got-79.2) > 1 {
		t.Errorf("Eq. 4 α=1 = %.1f, paper says ≈80", got)
	}
	// "at B_GPU ≈ 20 B_PCI and α = 1/N_nzr one arrives at N_nzr ≳ 266."
	m2 := Model{BGPU: 20, BPCI: 1}
	got := m2.SolveAlphaSelfConsistent(m2.MinNnzrFor10PctPenalty)
	if math.Abs(got-265) > 2 {
		t.Errorf("Eq. 4 worst case = %.1f, paper says ≈266", got)
	}
}

func TestTMVMAndTPCI(t *testing.T) {
	m := Model{BGPU: 91e9, BPCI: 6e9}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	n := 1000000
	tm := m.TMVMSeconds(n, 100, 0.5)
	// 8e6/91e9 × (100×2 + 2) = 8e6×202/91e9.
	want := 8e6 * 202 / 91e9
	if math.Abs(tm-want) > 1e-12 {
		t.Errorf("TMVM = %g, want %g", tm, want)
	}
	tp := m.TPCISeconds(n)
	if math.Abs(tp-16e6/6e9) > 1e-15 {
		t.Errorf("TPCI = %g", tp)
	}
	pen := m.PCIPenalty(n, 100, 0.5)
	if math.Abs(pen-tp/(tm+tp)) > 1e-15 || pen <= 0 || pen >= 1 {
		t.Errorf("penalty = %g", pen)
	}
}

func TestPenaltyMonotoneInNnzr(t *testing.T) {
	m := Model{BGPU: 91e9, BPCI: 6e9}
	prev := 1.0
	for _, nnzr := range []float64{5, 15, 50, 150, 400} {
		p := m.PCIPenalty(1<<20, nnzr, 0.5)
		if p >= prev {
			t.Errorf("penalty not decreasing at N_nzr=%g: %g >= %g", nnzr, p, prev)
		}
		prev = p
	}
}

// TestPaperMatrixClassification reproduces the §II-B / §III verdicts
// with the Dirac-like bandwidth ratio: HMEp (N_nzr≈15) and sAMG (≈7)
// fall in the PCIe-dominated regime; DLR1 (≈144), DLR2 (≈315) and
// UHBR (≈123) stay GPU-worthy.
func TestPaperMatrixClassification(t *testing.T) {
	m := Model{BGPU: 91e9, BPCI: 6e9} // ratio ≈ 15.2
	cut50 := m.MaxNnzrFor50PctPenalty(1)
	for _, c := range []struct {
		name string
		nnzr float64
		good bool
	}{
		{"HMEp", 15, false},
		{"sAMG", 7, false},
		{"DLR1", 144, true},
		{"DLR2", 315, true},
		{"UHBR", 123, true},
	} {
		// A matrix is a "good candidate" when even in the α=1 worst
		// case its penalty stays below 50%.
		if c.good && c.nnzr <= cut50 {
			t.Errorf("%s: should be above the 50%% cutoff %.1f", c.name, cut50)
		}
		pen := m.PCIPenalty(1<<20, c.nnzr, 1)
		if c.good && pen > 0.35 {
			t.Errorf("%s: penalty %.2f too high for a good candidate", c.name, pen)
		}
		if !c.good && pen < 0.3 {
			t.Errorf("%s: penalty %.2f too low for a bad candidate", c.name, pen)
		}
	}
}

// TestEffectiveGFlopsDLR1 reproduces the §III quote "10.9 GF/s vs
// 12.9 GF/s for DLR1": with kernel-only performance near 12.9 GF/s,
// adding PCIe transfers should land near 10.9.
func TestEffectiveGFlopsDLR1(t *testing.T) {
	m := Model{BGPU: 91e9, BPCI: 6e9}
	const n = 278502
	nnzr := 144.0
	nnz := int64(40025628)
	// Pick α so that the kernel-only GF/s is 12.9 (inverting Eq. 2).
	// 2·nnz/T = 12.9e9 → T = ...; T = 8N/B(nnzr(α+1.5)+2).
	tWant := 2 * float64(nnz) / 12.9e9
	alpha := ((tWant*m.BGPU/(8*n) - 2) / nnzr) - 1.5
	if alpha < 0 || alpha > 1 {
		t.Fatalf("implied alpha %.3f outside [0,1]", alpha)
	}
	eff := m.EffectiveGFlops(n, nnz, nnzr, alpha)
	if math.Abs(eff-10.9) > 1.0 {
		t.Errorf("PCIe-inclusive GF/s = %.1f, paper says 10.9", eff)
	}
}

func TestValidate(t *testing.T) {
	if err := (Model{BGPU: 0, BPCI: 1}).Validate(); err == nil {
		t.Error("zero BGPU accepted")
	}
	if err := (Model{BGPU: 1, BPCI: -1}).Validate(); err == nil {
		t.Error("negative BPCI accepted")
	}
}

func TestGFlopsFromTime(t *testing.T) {
	if GFlopsFromTime(1e9, 2) != 1 {
		t.Error("GF/s arithmetic")
	}
	if GFlopsFromTime(100, 0) != 0 {
		t.Error("zero time should give 0")
	}
}

// TestModelAgainstPCIeLink: the abstract model and the pcie.Link
// substrate agree on transfer times when latency is zero.
func TestModelAgainstPCIeLink(t *testing.T) {
	link := pcie.Gen2x16()
	link.LatencySeconds = 0
	m := Model{BGPU: 91e9, BPCI: link.BytesPerSecond}
	n := 500000
	got := link.RoundTripSeconds(int64(8*n), int64(8*n))
	want := m.TPCISeconds(n)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("link %g vs model %g", got, want)
	}
}
