package flight

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pjds/internal/telemetry"
)

func TestRingKeepsMostRecent(t *testing.T) {
	r := New(16, 16)
	for i := 0; i < 40; i++ {
		r.Event(Info, "test.kind", i, float64(i), "msg", float64(i))
	}
	evs := r.Events()
	if len(evs) != 16 {
		t.Fatalf("retained %d events, want ring capacity 16", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(40 - 16 + i)
		if ev.Seq != wantSeq {
			t.Fatalf("event %d has seq %d, want %d (oldest-first window)", i, ev.Seq, wantSeq)
		}
	}
	if got := r.EventCount(); got != 40 {
		t.Fatalf("EventCount = %d, want 40", got)
	}
}

func TestSpanRingAndMirror(t *testing.T) {
	r := Enable(16, 16)
	defer Disable()
	log := telemetry.NewSpanLog()
	log.Add(telemetry.Span{Proc: 1, Lane: "gpu", Name: "spmvm", Start: 0.5, End: 1.0})
	log.Add(telemetry.Span{Proc: 0, Lane: "host", Name: "exchange", Start: 0.1, End: 0.4})
	spans := r.Spans()
	if len(spans) != 2 {
		t.Fatalf("mirror captured %d spans, want 2", len(spans))
	}
	if spans[0].Name != "exchange" || spans[1].Name != "spmvm" {
		t.Fatalf("spans not in deterministic order: %q, %q", spans[0].Name, spans[1].Name)
	}
}

func TestRecordNilSafe(t *testing.T) {
	Disable()
	// Must be a no-op, not a panic, with no recorder installed.
	Record(Error, "test.kind", 0, 0, "msg", 0)
	if Active() != nil {
		t.Fatal("Active() non-nil after Disable")
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	r := New(64, 64)
	var writers sync.WaitGroup
	for g := 0; g < 4; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := 0; i < 500; i++ {
				r.Event(Severity(i%4), "test.kind", g, float64(i), "msg", float64(i))
				r.Span(telemetry.Span{Proc: g, Lane: "host", Name: "s", Start: float64(i), End: float64(i) + 1})
			}
		}(g)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.Events()
				r.Spans()
			}
		}
	}()
	writers.Wait()
	close(stop)
	reader.Wait()
	if got := r.EventCount(); got != 2000 {
		t.Fatalf("EventCount = %d, want 2000", got)
	}
	if len(r.Events()) != 64 {
		t.Fatalf("retained %d events, want 64", len(r.Events()))
	}
}

func TestSeverityTriggeredDumpIsOneShot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "incident.trace.json")
	r := New(32, 32)
	r.SetDump(DumpConfig{Path: path, MinSeverity: Error})
	r.Event(Info, "test.checkpoint", 0, 1.0, "checkpoint", 1)
	if _, err := os.Stat(path); err == nil {
		t.Fatal("Info event fired an Error-armed dump")
	}
	r.Event(Error, "test.rank_failed", 2, 2.5, "rank died", 0)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("Error event did not fire dump: %v", err)
	}
	if got := r.LastDump(); got != path {
		t.Fatalf("LastDump = %q, want %q", got, path)
	}
	// One-shot: a second severe event must not rewrite the file.
	fi1, _ := os.Stat(path)
	r.Event(Error, "test.rank_failed", 3, 3.0, "rank died", 0)
	fi2, _ := os.Stat(path)
	if fi1.ModTime() != fi2.ModTime() || fi1.Size() != fi2.Size() {
		t.Fatal("second severe event rewrote a one-shot dump")
	}
}

func TestDumpReadableAsTrace(t *testing.T) {
	r := New(32, 32)
	r.Span(telemetry.Span{Proc: 0, Lane: "gpu", Cat: "gpu", Name: "spmvm", Start: 1.0, End: 2.0})
	r.Event(Error, "mpi.rank_failed", 2, 1.5, "heartbeat silence", 3)
	var buf bytes.Buffer
	if err := r.WriteTrace(&buf, "unit test"); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	spans, err := telemetry.ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("dump not readable by telemetry.ReadTrace: %v", err)
	}
	var gotSpan, gotEvent bool
	for _, s := range spans {
		if s.Name == "spmvm" && s.Lane == "gpu" {
			gotSpan = true
		}
		if s.Name == "mpi.rank_failed" && s.Proc == 2 {
			gotEvent = true
			if s.Start != s.End {
				t.Fatalf("event span not degenerate: [%g, %g]", s.Start, s.End)
			}
			if s.Args["sev"] != "error" {
				t.Fatalf("event severity arg = %q, want error", s.Args["sev"])
			}
		}
	}
	if !gotSpan || !gotEvent {
		t.Fatalf("dump missing span (%v) or event (%v)", gotSpan, gotEvent)
	}
}

func TestExplicitTrigger(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "explicit.json")
	r := New(16, 16)
	r.Event(Warn, "test.fault", 1, 0.5, "injected", 1)
	got, err := r.Trigger(path, "unit test")
	if err != nil {
		t.Fatalf("Trigger: %v", err)
	}
	if got != path {
		t.Fatalf("Trigger wrote %q, want %q", got, path)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := telemetry.ReadTrace(f); err != nil {
		t.Fatalf("explicit dump unreadable: %v", err)
	}
}

func TestHandlerServesWindow(t *testing.T) {
	r := New(16, 16)
	r.Event(Warn, "simnet.fault", 0, 0.25, "packet dropped", 1)
	r.Span(telemetry.Span{Proc: 0, Lane: "host", Name: "exchange", Start: 0, End: 0.1})
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /spans = %d", resp.StatusCode)
	}
	var doc struct {
		EventsTotal    uint64 `json:"events_total"`
		EventsRetained int    `json:"events_retained"`
		SpansRetained  int    `json:"spans_retained"`
		Events         []struct {
			Sev  string `json:"sev"`
			Kind string `json:"kind"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /spans: %v", err)
	}
	if doc.EventsTotal != 1 || doc.EventsRetained != 1 || doc.SpansRetained != 1 {
		t.Fatalf("window counts = %d/%d/%d, want 1/1/1", doc.EventsTotal, doc.EventsRetained, doc.SpansRetained)
	}
	if doc.Events[0].Sev != "warn" || doc.Events[0].Kind != "simnet.fault" {
		t.Fatalf("event = %+v", doc.Events[0])
	}
}

func TestNumberedPath(t *testing.T) {
	cases := map[string]string{
		"a/b.trace.json": "a/b.trace.2.json",
		"dump":           "dump.2",
		"a.b/dump":       "a.b/dump.2",
	}
	for in, want := range cases {
		if got := numberedPath(in, 2); got != want {
			t.Errorf("numberedPath(%q) = %q, want %q", in, got, want)
		}
	}
}

// BenchmarkFlightEvent gates the hot recording path at 0 allocs/op:
// the recorder must stay cheap enough to leave always-on.
func BenchmarkFlightEvent(b *testing.B) {
	r := New(1024, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Event(Info, "bench.kind", 3, 1.5, "steady state", 42)
	}
}

// BenchmarkFlightSpan gates the span-mirror path at 0 allocs/op.
func BenchmarkFlightSpan(b *testing.B) {
	r := New(1024, 1024)
	sp := telemetry.Span{Proc: 1, Lane: "gpu", Cat: "gpu", Name: "spmvm", Start: 1, End: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Span(sp)
	}
}

// BenchmarkRecordDisabled gates the disabled hook (one atomic load).
func BenchmarkRecordDisabled(b *testing.B) {
	Disable()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Record(Info, "bench.kind", 0, 0, "off", 0)
	}
}
