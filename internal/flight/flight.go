// Package flight is the always-on flight recorder of the simulated
// GPGPU cluster: a pair of fixed-size ring buffers — one for
// severity-tagged structured events (fault injected, rank failed, ECC
// downgrade, checkpoint/rollback, plan-cache miss, retry exhausted),
// one for spans mirrored off every telemetry.SpanLog — that keep the
// most recent window of a run in memory at near-zero cost, so that
// when something goes wrong a bounded post-incident trace can be
// dumped and analyzed with perfreport -trace-in / internal/critpath.
//
// Recording is lock-light and allocation-free in steady state: a slot
// index is claimed with one atomic add and the slot is written under
// a per-slot mutex, so concurrent rank goroutines only contend when
// they land on the same slot (ring wrap). Snapshots lock each slot
// briefly in turn and never block recorders for long.
//
// Dumps are triggered three ways: automatically when an event at or
// above the armed severity is recorded (PR4 fault detection, solver
// divergence), explicitly via Recorder.Trigger, or over HTTP with
// POST /spans/dump on a telemetry endpoint. A dump is bounded by the
// ring capacity by construction.
package flight

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"pjds/internal/telemetry"
)

// Severity tags an event with how alarming it is.
type Severity uint8

const (
	Debug Severity = iota // chatty bookkeeping (plan-cache misses)
	Info                  // normal lifecycle (checkpoints, retries absorbed)
	Warn                  // degraded but progressing (faults injected, rollbacks)
	Error                 // something failed (rank death, ECC event, retry budget)
)

// String returns the lowercase severity name.
func (s Severity) String() string {
	switch s {
	case Debug:
		return "debug"
	case Info:
		return "info"
	case Warn:
		return "warn"
	case Error:
		return "error"
	}
	return "unknown"
}

// Event is one structured flight-recorder entry. The fields are flat
// scalars and strings so recording never allocates: callers pass
// constant kind/message strings and fold any variable detail into
// Rank and Value.
type Event struct {
	// Seq is the global record index; the ring keeps the highest ones.
	Seq uint64 `json:"seq"`
	// Time is the virtual-time coordinate when the recording layer has
	// one (mpi/distsolver clocks), 0 otherwise.
	Time float64 `json:"t"`
	// Rank is the simulated rank the event concerns (-1 = no rank).
	Rank int `json:"rank"`
	// Sev is the severity tag.
	Sev Severity `json:"sev"`
	// Kind is the stable event identifier, dot-scoped by layer
	// ("mpi.rank_failed", "gpu.ecc", "solver.checkpoint").
	Kind string `json:"kind"`
	// Msg is a short human-readable constant.
	Msg string `json:"msg"`
	// Value carries the event's one number (attempts, iteration,
	// peer rank, slowdown factor), 0 when unused.
	Value float64 `json:"value"`
}

// eventSlot is one ring cell; the mutex makes concurrent writers and
// snapshot readers race-safe without a global lock.
type eventSlot struct {
	mu sync.Mutex
	ev Event
}

type spanSlot struct {
	mu  sync.Mutex
	set bool
	sp  telemetry.Span
}

// DumpConfig parameterizes triggered dumps.
type DumpConfig struct {
	// Path is the trace file written on trigger. With MaxDumps > 1,
	// later dumps get a numeric suffix before the extension.
	Path string
	// MinSeverity arms the automatic trigger: recording an event at or
	// above it fires a dump. Use ArmedOff to dump only on explicit
	// Trigger calls.
	MinSeverity Severity
	// MaxDumps bounds how many dumps one run may write (0 selects 1).
	MaxDumps int
}

// ArmedOff disables the automatic severity trigger.
const ArmedOff Severity = 255

// Recorder is a fixed-capacity flight recorder. The zero value is not
// usable; call New.
type Recorder struct {
	eventMask uint64
	eventSeq  atomic.Uint64
	events    []eventSlot

	spanMask uint64
	spanSeq  atomic.Uint64
	spans    []spanSlot

	dumpMu     sync.Mutex
	dump       DumpConfig
	armed      atomic.Uint32 // MinSeverity+1, 0 = unarmed
	dumpsLeft  atomic.Int32
	dumpsDone  atomic.Int32
	lastDumpMu sync.Mutex
	lastDump   string
}

// ceilPow2 rounds n up to a power of two (min 16).
func ceilPow2(n int) uint64 {
	c := uint64(16)
	for c < uint64(n) {
		c <<= 1
	}
	return c
}

// New builds a recorder keeping the last eventCap events and spanCap
// spans (capacities round up to powers of two; spanCap 0 selects
// 4×events).
func New(eventCap, spanCap int) *Recorder {
	if eventCap <= 0 {
		eventCap = 1024
	}
	if spanCap <= 0 {
		spanCap = 4 * eventCap
	}
	ec, sc := ceilPow2(eventCap), ceilPow2(spanCap)
	return &Recorder{
		eventMask: ec - 1,
		events:    make([]eventSlot, ec),
		spanMask:  sc - 1,
		spans:     make([]spanSlot, sc),
	}
}

// Event records one structured event. Safe for concurrent use;
// allocation-free when kind and msg are pre-existing strings.
func (r *Recorder) Event(sev Severity, kind string, rank int, t float64, msg string, value float64) {
	seq := r.eventSeq.Add(1) - 1
	s := &r.events[seq&r.eventMask]
	s.mu.Lock()
	s.ev = Event{Seq: seq, Time: t, Rank: rank, Sev: sev, Kind: kind, Msg: msg, Value: value}
	s.mu.Unlock()
	if a := r.armed.Load(); a != 0 && uint32(sev)+1 >= a {
		r.fire(kind)
	}
}

// Span records one completed span (the telemetry.SpanLog mirror lands
// here). Allocation-free: the span's strings and args map are stored
// by reference.
func (r *Recorder) Span(sp telemetry.Span) {
	seq := r.spanSeq.Add(1) - 1
	s := &r.spans[seq&r.spanMask]
	s.mu.Lock()
	s.set = true
	s.sp = sp
	s.mu.Unlock()
}

// EventCount returns the total number of events ever recorded (not
// just the retained window).
func (r *Recorder) EventCount() uint64 { return r.eventSeq.Load() }

// Events returns the retained window, oldest first.
func (r *Recorder) Events() []Event {
	hi := r.eventSeq.Load()
	out := make([]Event, 0, len(r.events))
	for i := range r.events {
		s := &r.events[i]
		s.mu.Lock()
		ev := s.ev
		ok := ev.Kind != "" && ev.Seq < hi
		s.mu.Unlock()
		if ok {
			out = append(out, ev)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Spans returns the retained span window in the deterministic
// telemetry order (start time, then proc/lane/name). It deliberately
// avoids telemetry.SpanLog here: SpanLog.Add invokes the process-wide
// span mirror, which is this recorder — re-adding would feed the
// window back into its own ring.
func (r *Recorder) Spans() []telemetry.Span {
	out := make([]telemetry.Span, 0, len(r.spans))
	for i := range r.spans {
		s := &r.spans[i]
		s.mu.Lock()
		if s.set {
			out = append(out, s.sp)
		}
		s.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		switch {
		case a.Start != b.Start:
			return a.Start < b.Start
		case a.Proc != b.Proc:
			return a.Proc < b.Proc
		case a.Lane != b.Lane:
			return a.Lane < b.Lane
		case a.Name != b.Name:
			return a.Name < b.Name
		}
		return a.End < b.End
	})
	return out
}

// SetDump configures triggered dumps and arms the severity trigger.
func (r *Recorder) SetDump(cfg DumpConfig) {
	r.dumpMu.Lock()
	r.dump = cfg
	r.dumpMu.Unlock()
	max := cfg.MaxDumps
	if max <= 0 {
		max = 1
	}
	r.dumpsLeft.Store(int32(max))
	if cfg.Path == "" || cfg.MinSeverity == ArmedOff {
		r.armed.Store(0)
	} else {
		r.armed.Store(uint32(cfg.MinSeverity) + 1)
	}
}

// fire consumes one dump budget slot and writes the dump; exhausted
// budgets and write errors are swallowed (the recorder must never
// fail the run it is observing).
func (r *Recorder) fire(reason string) {
	if r.dumpsLeft.Add(-1) < 0 {
		r.dumpsLeft.Add(1) // keep the floor at 0 for later explicit checks
		return
	}
	r.dumpMu.Lock()
	cfg := r.dump
	r.dumpMu.Unlock()
	if cfg.Path == "" {
		return
	}
	path := cfg.Path
	if n := r.dumpsDone.Add(1); n > 1 {
		path = numberedPath(path, int(n))
	}
	if err := r.DumpFile(path, reason); err == nil {
		r.lastDumpMu.Lock()
		r.lastDump = path
		r.lastDumpMu.Unlock()
	}
}

// numberedPath inserts .N before the extension for later dumps.
func numberedPath(path string, n int) string {
	for i := len(path) - 1; i >= 0 && path[i] != '/'; i-- {
		if path[i] == '.' {
			return path[:i] + "." + strconv.Itoa(n) + path[i:]
		}
	}
	return path + "." + strconv.Itoa(n)
}

// LastDump returns the path of the most recent successful dump ("" if
// none fired).
func (r *Recorder) LastDump() string {
	r.lastDumpMu.Lock()
	defer r.lastDumpMu.Unlock()
	return r.lastDump
}

// Trigger explicitly dumps the current window to path (the configured
// dump path when path is empty) and returns the file written. It does
// not consume the automatic-trigger budget.
func (r *Recorder) Trigger(path, reason string) (string, error) {
	if path == "" {
		r.dumpMu.Lock()
		path = r.dump.Path
		r.dumpMu.Unlock()
	}
	if path == "" {
		return "", fmt.Errorf("flight: no dump path configured")
	}
	if err := r.DumpFile(path, reason); err != nil {
		return "", err
	}
	r.lastDumpMu.Lock()
	r.lastDump = path
	r.lastDumpMu.Unlock()
	return path, nil
}

// DumpFile writes the post-incident trace to path.
func (r *Recorder) DumpFile(path, reason string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WriteTrace(f, reason)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// EventLane is the trace lane carrying flight events; events render as
// degenerate (zero-duration) spans there, which the downstream
// consumers (trace viewers, internal/critpath) already clamp-tolerate.
const EventLane = "flight"

// WriteTrace renders the retained window as a Chrome trace readable
// by perfreport -trace-in: all mirrored spans, plus every event as a
// zero-duration span on the EventLane of its rank (rank -1 events
// land on process 0 so the trace stays well-formed).
func (r *Recorder) WriteTrace(w interface{ Write([]byte) (int, error) }, reason string) error {
	spans := r.Spans()
	events := r.Events()
	for _, ev := range events {
		proc := ev.Rank
		if proc < 0 {
			proc = 0
		}
		spans = append(spans, telemetry.Span{
			Proc: proc, Lane: EventLane, Cat: "flight", Name: ev.Kind,
			Start: ev.Time, End: ev.Time,
			Args: map[string]string{
				"sev":   ev.Sev.String(),
				"msg":   ev.Msg,
				"value": strconv.FormatFloat(ev.Value, 'g', -1, 64),
				"seq":   strconv.FormatUint(ev.Seq, 10),
			},
		})
	}
	return telemetry.WriteTrace(w, spans, telemetry.TraceMeta{
		LaneNames: map[string]string{EventLane: "flight recorder events"},
		Other: map[string]any{
			"flight_reason":          reason,
			"flight_events_retained": len(events),
			"flight_events_total":    r.EventCount(),
		},
	})
}

// active is the process-wide recorder consulted by the simulation
// layers; nil means recording is off and every hook is one atomic
// load.
var active atomic.Pointer[Recorder]

// Active returns the installed recorder, or nil when disabled.
func Active() *Recorder { return active.Load() }

// Enable installs a fresh recorder of the given capacity as the
// process-wide one, mirrors every telemetry span into it, and returns
// it. Pass 0 for the default capacity.
func Enable(eventCap, spanCap int) *Recorder {
	r := New(eventCap, spanCap)
	active.Store(r)
	telemetry.SetSpanMirror(r.Span)
	return r
}

// Disable uninstalls the process-wide recorder and the span mirror.
func Disable() {
	active.Store(nil)
	telemetry.SetSpanMirror(nil)
}

// Record is the nil-safe recording hook the simulation layers call;
// it is a no-op (one atomic load) when no recorder is enabled.
func Record(sev Severity, kind string, rank int, t float64, msg string, value float64) {
	if r := active.Load(); r != nil {
		r.Event(sev, kind, rank, t, msg, value)
	}
}

// window is the /spans JSON document.
type window struct {
	EventsTotal    uint64           `json:"events_total"`
	EventsRetained int              `json:"events_retained"`
	SpansRetained  int              `json:"spans_retained"`
	LastDump       string           `json:"last_dump,omitempty"`
	Events         []eventJSON      `json:"events"`
	Spans          []telemetry.Span `json:"spans"`
}

// eventJSON renders the severity as a string for human consumers.
type eventJSON struct {
	Seq   uint64  `json:"seq"`
	Time  float64 `json:"t"`
	Rank  int     `json:"rank"`
	Sev   string  `json:"sev"`
	Kind  string  `json:"kind"`
	Msg   string  `json:"msg"`
	Value float64 `json:"value"`
}

// Handler serves the recent flight-recorder window:
//
//	GET  /spans       JSON: events + spans retained in the rings
//	POST /spans/dump  explicit dump trigger (?path= overrides the
//	                  configured file); responds with the file written
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
		events := r.Events()
		spans := r.Spans()
		doc := window{
			EventsTotal:    r.EventCount(),
			EventsRetained: len(events),
			SpansRetained:  len(spans),
			LastDump:       r.LastDump(),
			Events:         make([]eventJSON, 0, len(events)),
			Spans:          spans,
		}
		for _, ev := range events {
			doc.Events = append(doc.Events, eventJSON{
				Seq: ev.Seq, Time: ev.Time, Rank: ev.Rank,
				Sev: ev.Sev.String(), Kind: ev.Kind, Msg: ev.Msg, Value: ev.Value,
			})
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/spans/dump", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodPost {
			http.Error(w, "POST required", http.StatusMethodNotAllowed)
			return
		}
		path, err := r.Trigger(req.URL.Query().Get("path"), "http signal")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "dumped %s\n", path)
	})
	return mux
}

// RegisterHTTP attaches the recorder's endpoints to every future
// telemetry.Serve mux.
func (r *Recorder) RegisterHTTP() {
	telemetry.RegisterHandler("/spans", r.Handler())
	telemetry.RegisterHandler("/spans/dump", r.Handler())
}
