package par

import (
	"runtime"
	"sync"
	"testing"
)

func TestSetDefaultResolve(t *testing.T) {
	t.Cleanup(func() { SetDefault(0) })
	SetDefault(3)
	if Default() != 3 || Resolve(0) != 3 || Resolve(-1) != 3 {
		t.Fatalf("default not honored: Default=%d", Default())
	}
	if Resolve(5) != 5 {
		t.Fatal("explicit count must win over the default")
	}
	SetDefault(0)
	if Default() != runtime.GOMAXPROCS(0) {
		t.Fatal("zero default must fall back to GOMAXPROCS")
	}
	SetDefault(-7) // negative behaves like 0
	if Default() != runtime.GOMAXPROCS(0) {
		t.Fatal("negative default must fall back to GOMAXPROCS")
	}
}

// TestForceForCoversRange: for many (workers, n) combinations the
// blocks must be disjoint, in order, and cover [0, n) exactly — the
// property all determinism guarantees rest on.
func TestForceForCoversRange(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 1000} {
		for workers := 1; workers <= 9; workers++ {
			var mu sync.Mutex
			seen := make([]int, n)
			ForceFor(workers, n, func(w, lo, hi int) {
				if lo >= hi {
					mu.Lock()
					defer mu.Unlock()
					t.Errorf("workers=%d n=%d: empty block [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					mu.Lock()
					seen[i]++
					mu.Unlock()
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

// TestForSmallNInline: below the sequential threshold For must run the
// whole range inline as a single block on the calling goroutine.
func TestForSmallNInline(t *testing.T) {
	calls := 0
	For(8, seqThreshold-1, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != seqThreshold-1 {
			t.Fatalf("inline call got (w=%d, lo=%d, hi=%d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("small n made %d calls, want 1 inline call", calls)
	}
	For(8, 0, func(w, lo, hi int) { t.Fatal("n=0 must not call fn") })
}

// TestForceForWorkerIndexBound: the worker index passed to fn must be
// below the resolved worker count even when workers > n, so callers
// can index per-worker scratch sized by EffectiveWorkers.
func TestForceForWorkerIndexBound(t *testing.T) {
	const n = 3
	var mu sync.Mutex
	ForceFor(16, n, func(w, lo, hi int) {
		mu.Lock()
		defer mu.Unlock()
		if w >= n {
			t.Errorf("worker index %d not clamped to n=%d", w, n)
		}
	})
}
