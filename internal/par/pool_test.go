package par

import (
	"sync/atomic"
	"testing"
)

func TestPoolRunsAllWorkers(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 4, 8} {
		p := NewPool(workers)
		want := workers
		if want < 1 {
			want = 1
		}
		if p.Workers() != want {
			t.Fatalf("NewPool(%d).Workers() = %d, want %d", workers, p.Workers(), want)
		}
		var seen atomic.Int64
		hit := make([]atomic.Bool, want)
		for round := 0; round < 3; round++ {
			for w := range hit {
				hit[w].Store(false)
			}
			p.Run(func(w int) {
				seen.Add(1)
				if hit[w].Swap(true) {
					t.Errorf("worker %d ran twice in one Run", w)
				}
			})
			for w := range hit {
				if !hit[w].Load() {
					t.Fatalf("workers=%d round %d: worker %d never ran", workers, round, w)
				}
			}
		}
		if got := seen.Load(); got != int64(3*want) {
			t.Fatalf("workers=%d: %d body executions, want %d", workers, got, 3*want)
		}
		p.Close()
		p.Close() // idempotent
	}
}

func TestPoolPublishesWrites(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	buf := make([]int, 4096)
	fn := func(w int) {
		lo, hi := w*len(buf)/4, (w+1)*len(buf)/4
		for i := lo; i < hi; i++ {
			buf[i] = i
		}
	}
	for round := 0; round < 10; round++ {
		for i := range buf {
			buf[i] = -1
		}
		p.Run(fn)
		for i, v := range buf {
			if v != i {
				t.Fatalf("round %d: buf[%d] = %d after Run", round, i, v)
			}
		}
	}
}

func BenchmarkPoolRun(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	var sink [4]int64
	fn := func(w int) { sink[w]++ }
	p.Run(fn) // warm up
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Run(fn)
	}
}
