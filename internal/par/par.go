// Package par is the shared worker-pool substrate of the ingest and
// conversion pipeline: a process-wide default worker count (set from
// the CLIs' -workers flags) and a deterministic block-parallel loop.
//
// Parallelism here must never change results. For splits an index
// range into one contiguous block per worker, so every output element
// is written by exactly one goroutine and the result is bit-identical
// to the sequential execution for any worker count — the property the
// conversion determinism tests enforce.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide default (0 = GOMAXPROCS).
var defaultWorkers atomic.Int64

// SetDefault sets the process-wide default worker count used when a
// ConvertOptions leaves Workers at 0. n ≤ 0 restores the GOMAXPROCS
// default, 1 forces sequential conversion everywhere.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the current process-wide default worker count.
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// Resolve maps a per-call worker request onto an effective count:
// n > 0 is taken literally, n ≤ 0 selects the process default.
func Resolve(n int) int {
	if n > 0 {
		return n
	}
	return Default()
}

// seqThreshold is the problem size below which For runs inline: for
// tiny loops the goroutine fan-out costs more than the work.
const seqThreshold = 2048

// For runs fn over [0, n) split into one contiguous block per worker:
// worker w gets [w·n/workers, (w+1)·n/workers). Blocks are disjoint
// and their union is exactly [0, n), so any function writing only to
// indices of its block is race-free and produces results identical to
// the sequential run. Small n (or workers ≤ 1) runs inline on the
// calling goroutine as fn(0, 0, n).
func For(workers, n int, fn func(w, lo, hi int)) {
	if n >= seqThreshold {
		ForceFor(workers, n, fn)
		return
	}
	if n > 0 {
		fn(0, 0, n)
	}
}

// ForceFor is For without the small-n inline shortcut. Conversion
// code uses For; the determinism tests use ForceFor-backed options to
// exercise the parallel path on small fixtures too.
func ForceFor(workers, n int, fn func(w, lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*n/workers, (w+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}
