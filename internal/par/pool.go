package par

import (
	"context"
	"runtime/pprof"
	"sync"
)

// Pool is a persistent worker pool for hot loops that cannot afford
// the per-call goroutine fan-out of For: the host spMVM kernels run
// thousands of times per solve, and spawning (and garbage-collecting)
// worker goroutines on every application shows up both in wallclock
// and in allocs/op. A Pool starts its goroutines once; each Run wakes
// them, executes the body with the worker's index, and returns when
// all workers finish.
//
// The determinism contract matches For: the body receives only the
// worker index, and callers partition their index space into one
// contiguous block per worker, so results are bit-identical to the
// sequential execution for any worker count.
//
// Run is zero-alloc at steady state provided the caller passes the
// same stored closure each time (construct the body once and reuse
// it; building a fresh closure per call allocates in the caller).
type Pool struct {
	workers int
	wake    []chan struct{}
	quit    chan struct{}
	wg      sync.WaitGroup
	body    func(w int)
	once    sync.Once
}

// NewPool starts a pool of the given size. workers ≤ 1 creates an
// inline pool with no goroutines: Run executes the body directly on
// the calling goroutine, so single-worker users pay nothing.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers == 1 {
		return p
	}
	p.wake = make([]chan struct{}, workers)
	p.quit = make(chan struct{})
	for w := 0; w < workers; w++ {
		p.wake[w] = make(chan struct{}, 1)
		go p.loop(w)
	}
	return p
}

// Workers returns the pool size (≥ 1).
func (p *Pool) Workers() int { return p.workers }

// Label applies ctx's pprof labels to every worker goroutine for the
// rest of the pool's life, so profile samples taken inside Run bodies
// carry the owner's phase/kernel/format labels. Call it once right
// after NewPool: labeling happens on the workers themselves via a
// throwaway Run, which costs nothing at steady state. Inline pools
// (workers ≤ 1) run on the caller's goroutine and inherit whatever
// labels the caller carries, so Label is a no-op for them.
func (p *Pool) Label(ctx context.Context) {
	if p.workers == 1 {
		return
	}
	p.Run(func(w int) { pprof.SetGoroutineLabels(ctx) })
}

// loop is one worker goroutine: wait for a wake-up, run the body,
// report done, repeat until Close.
func (p *Pool) loop(w int) {
	for {
		select {
		case <-p.quit:
			return
		case <-p.wake[w]:
			p.body(w)
			p.wg.Done()
		}
	}
}

// Run executes fn(w) on every worker w in [0, workers) and returns
// when all have finished. The channel send publishes the body to each
// worker and the WaitGroup publishes their writes back, so Run gives
// the same happens-before edges as spawning fresh goroutines. The
// body reference is cleared before returning so the pool never keeps
// caller state alive between calls.
func (p *Pool) Run(fn func(w int)) {
	if p.workers == 1 {
		fn(0)
		return
	}
	p.body = fn
	p.wg.Add(p.workers)
	for _, c := range p.wake {
		c <- struct{}{}
	}
	p.wg.Wait()
	p.body = nil
}

// Close stops the worker goroutines. Idempotent; Run must not be
// called after Close.
func (p *Pool) Close() {
	if p.quit == nil {
		return
	}
	p.once.Do(func() { close(p.quit) })
}
