package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func TestPlotBasics(t *testing.T) {
	var buf bytes.Buffer
	err := Plot(&buf, "scaling", 40, 10, []Series{
		{Name: "task mode", X: []float64{1, 2, 4, 8}, Y: []float64{10, 19, 36, 60}},
		{Name: "vector mode", X: []float64{1, 2, 4, 8}, Y: []float64{10, 17, 28, 40}},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"scaling", "task mode", "vector mode", "*", "o", "60", "0"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPlotEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	if err := Plot(&buf, "empty", 5, 2, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("no output for empty plot")
	}
	buf.Reset()
	// All-zero series must not divide by zero.
	if err := Plot(&buf, "zeros", 30, 8, []Series{{Name: "z", X: []float64{0}, Y: []float64{0}}}); err != nil {
		t.Fatal(err)
	}
}

func TestTable(t *testing.T) {
	var buf bytes.Buffer
	err := Table(&buf, [][]string{
		{"matrix", "ELLPACK-R", "pJDS"},
		{"DLR1", "12.9", "12.9"},
		{"sAMG", "7.8", "8.5"},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "---") {
		t.Error("missing header rule")
	}
	// Columns aligned: "pJDS" starts at the same offset in all rows.
	idx := strings.Index(lines[0], "pJDS")
	if !strings.HasPrefix(lines[2][idx:], "12.9") {
		t.Errorf("misaligned columns:\n%s", out)
	}
	if err := Table(&buf, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGantt(t *testing.T) {
	var buf bytes.Buffer
	err := Gantt(&buf, "iteration timeline", 50, []Span{
		{Lane: "host", Name: "MPI_Waitall", Start: 0, End: 0.4},
		{Lane: "gpu", Name: "local spMVM", Start: 0, End: 0.7},
		{Lane: "gpu", Name: "non-local spMVM", Start: 0.7, End: 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"host", "gpu", "local spMVM", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// Zero-length spans still render a mark.
	buf.Reset()
	if err := Gantt(&buf, "z", 10, []Span{{Lane: "a", Name: "instant", Start: 0, End: 0}}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "=") {
		t.Error("zero span invisible")
	}
}
