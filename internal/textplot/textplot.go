// Package textplot renders simple ASCII line charts and tables for
// the benchmark binaries: the strong-scaling curves of Fig. 5, the
// Fig. 4 timeline, and the Table I grid.
package textplot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// markers cycle through the series.
var markers = []byte{'*', 'o', '+', 'x', '@', '%'}

// Plot renders the series into an ASCII grid of the given size. Axes
// start at 0; points are marked per series, with a legend below.
func Plot(w io.Writer, title string, width, height int, series []Series) error {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var xMax, yMax float64
	for _, s := range series {
		for i := range s.X {
			xMax = math.Max(xMax, s.X[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if xMax == 0 {
		xMax = 1
	}
	if yMax == 0 {
		yMax = 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			c := int(s.X[i] / xMax * float64(width-1))
			r := height - 1 - int(s.Y[i]/yMax*float64(height-1))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = mark
			}
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for r, row := range grid {
		label := ""
		if r == 0 {
			label = fmt.Sprintf("%.4g", yMax)
		}
		if r == height-1 {
			label = "0"
		}
		if _, err := fmt.Fprintf(w, "%8s |%s\n", label, string(row)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%8s +%s\n", "", strings.Repeat("-", width)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s  0%s%.4g\n", "", strings.Repeat(" ", width-len(fmt.Sprintf("%.4g", xMax))-1), xMax); err != nil {
		return err
	}
	for si, s := range series {
		if _, err := fmt.Fprintf(w, "%10c %s\n", markers[si%len(markers)], s.Name); err != nil {
			return err
		}
	}
	return nil
}

// Table renders rows with aligned columns; the first row is the
// header, separated by a rule.
func Table(w io.Writer, rows [][]string) error {
	if len(rows) == 0 {
		return nil
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for c, cell := range row {
			if c >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	print := func(row []string) error {
		var b strings.Builder
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
		return err
	}
	if err := print(rows[0]); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range rows[1:] {
		if err := print(row); err != nil {
			return err
		}
	}
	return nil
}

// Gantt renders labelled [start, end) spans grouped by lane — the
// Fig. 4 timeline.
func Gantt(w io.Writer, title string, width int, spans []Span) error {
	if width < 30 {
		width = 30
	}
	var tMax float64
	for _, s := range spans {
		tMax = math.Max(tMax, s.End)
	}
	if tMax == 0 {
		tMax = 1
	}
	if _, err := fmt.Fprintf(w, "%s (total %.3g s)\n", title, tMax); err != nil {
		return err
	}
	for _, s := range spans {
		a := int(s.Start / tMax * float64(width))
		b := int(s.End / tMax * float64(width))
		if b <= a {
			b = a + 1
		}
		if b > width {
			b = width
		}
		bar := strings.Repeat(" ", a) + strings.Repeat("=", b-a) + strings.Repeat(" ", width-b)
		if _, err := fmt.Fprintf(w, "%6s %-18s |%s|\n", s.Lane, s.Name, bar); err != nil {
			return err
		}
	}
	return nil
}

// Span is one Gantt bar.
type Span struct {
	Lane  string
	Name  string
	Start float64
	End   float64
}
