package health

import (
	"encoding/json"
	"math"
	"net/http/httptest"
	"testing"

	"pjds/internal/telemetry"
)

func signal(rep Report, name string) *Signal {
	for i := range rep.Signals {
		if rep.Signals[i].Name == name {
			return &rep.Signals[i]
		}
	}
	return nil
}

func TestPassFailPassAcrossFaultWindow(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 3})

	if rep := e.Tick(0); rep.Status != Pass {
		t.Fatalf("warming-up status = %v, want pass", rep.Status)
	}
	if rep := e.Tick(1); rep.Status != Pass {
		t.Fatalf("steady status = %v, want pass", rep.Status)
	}

	// The injected rank failure lands between samples.
	reg.Counter("mpi_rank_crashes_total").Inc()
	rep := e.Tick(2)
	if rep.Status != Fail {
		t.Fatalf("post-crash status = %v, want fail", rep.Status)
	}
	if s := signal(rep, "failures"); s == nil || s.Status != Fail || s.Cause == "" {
		t.Fatalf("failures signal = %+v, want fail with cause", s)
	}

	// Counter stays flat; once the jump slides out of the 3-sample
	// window the status recovers.
	if rep := e.Tick(3); rep.Status != Fail {
		t.Fatalf("window still spans crash, status = %v, want fail", rep.Status)
	}
	if rep := e.Tick(4); rep.Status != Pass {
		t.Fatalf("recovered status = %v, want pass", rep.Status)
	}
}

func TestOverlapEfficiencyWarns(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 4})
	e.Tick(0)
	// 1s of kernels vs 3s of exposed wait → 25% efficiency.
	reg.Counter("gpu_kernel_seconds_total").Add(1)
	reg.Counter("mpi_recv_wait_seconds_total").Add(3)
	rep := e.Tick(1)
	s := signal(rep, "overlap_efficiency")
	if s == nil || s.Status != Warn {
		t.Fatalf("overlap signal = %+v, want warn", s)
	}
	if math.Abs(s.Value-0.25) > 1e-9 {
		t.Fatalf("overlap efficiency = %g, want 0.25", s.Value)
	}
}

func TestGPUThroughputPerRank(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 4})
	e.Tick(0)
	reg.Counter("gpu_kernel_bytes_total", telemetry.L("rank", "0")).Add(2e9)
	reg.Counter("gpu_kernel_bytes_total", telemetry.L("rank", "1")).Add(4e9)
	rep := e.Tick(2)
	s := signal(rep, "gpu_throughput")
	if s == nil {
		t.Fatal("no gpu_throughput signal")
	}
	if math.Abs(s.Value-3.0) > 1e-9 { // 6 GB over 2 s
		t.Fatalf("aggregate GB/s = %g, want 3", s.Value)
	}
	if math.Abs(s.PerRank["0"]-1.0) > 1e-9 || math.Abs(s.PerRank["1"]-2.0) > 1e-9 {
		t.Fatalf("per-rank GB/s = %v, want {0:1, 1:2}", s.PerRank)
	}
}

func TestResidualDivergenceFails(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 4})
	reg.Gauge("solver_residual").Set(1e-3)
	reg.Gauge("solver_iterations").Set(10)
	e.Tick(0)
	reg.Gauge("solver_residual").Set(math.NaN())
	reg.Gauge("solver_iterations").Set(20)
	rep := e.Tick(1)
	s := signal(rep, "residual_stall")
	if s == nil || s.Status != Fail {
		t.Fatalf("residual signal = %+v, want fail on non-finite residual", s)
	}
}

func TestResidualStallWarns(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 4})
	reg.Gauge("solver_residual").Set(1e-3)
	reg.Gauge("solver_iterations").Set(10)
	e.Tick(0)
	reg.Gauge("solver_iterations").Set(30)
	rep := e.Tick(1) // residual unchanged while iterations advance
	s := signal(rep, "residual_stall")
	if s == nil || s.Status != Warn {
		t.Fatalf("residual signal = %+v, want warn on stall", s)
	}
}

func TestHeartbeatSilenceWarnsButNeverFails(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 3})
	e.Tick(0)
	reg.Counter("mpi_sends_total").Add(5)
	if rep := e.Tick(1); signal(rep, "heartbeat").Status != Pass {
		t.Fatal("active heartbeat should pass")
	}
	// Traffic stops entirely; after the window slides past the burst
	// the silence is a Warn — never a Fail, so a finished run idling
	// behind -hold keeps serving 200.
	e.Tick(2)
	rep := e.Tick(3)
	s := signal(rep, "heartbeat")
	if s.Status != Warn {
		t.Fatalf("silent heartbeat = %v, want warn", s.Status)
	}
	if rep.Status == Fail {
		t.Fatal("heartbeat silence must not fail the run")
	}
}

func TestFaultsWarn(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 4})
	e.Tick(0)
	reg.Counter("simnet_faults_injected_total", telemetry.L("kind", "drop")).Inc()
	reg.Counter("distsolver_rollbacks_total").Inc()
	rep := e.Tick(1)
	s := signal(rep, "faults")
	if s == nil || s.Status != Warn || s.Value != 2 {
		t.Fatalf("faults signal = %+v, want warn with value 2", s)
	}
}

func TestHealthzEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 3})
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	e.Tick(0)
	e.Tick(1)
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("healthy /healthz = %d, want 200", resp.StatusCode)
	}
	var rep Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatalf("decoding /healthz: %v", err)
	}
	resp.Body.Close()

	reg.Counter("mpi_rank_crashes_total").Inc()
	e.Tick(2)
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("failing /healthz = %d, want 503", resp.StatusCode)
	}

	e.Tick(3)
	e.Tick(4)
	resp, err = srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("recovered /healthz = %d, want 200", resp.StatusCode)
	}

	resp, err = srv.Client().Get(srv.URL + "/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc struct {
		Report  Report           `json:"report"`
		Samples []map[string]any `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding /health: %v", err)
	}
	if len(doc.Samples) != 3 {
		t.Fatalf("/health retained %d samples, want window of 3", len(doc.Samples))
	}
}

func TestStatusUnmarshalRoundTrip(t *testing.T) {
	b, err := json.Marshal(Report{Status: Warn, Signals: []Signal{{Name: "x", Status: Fail}}})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatal(err)
	}
	if doc["status"] != "warn" {
		t.Fatalf("status marshals as %v, want \"warn\"", doc["status"])
	}
}

func TestGCStallWarns(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 4})
	reg.Counter("runtime_gc_pause_seconds_total").Add(0.01)
	e.Tick(0)
	// 0.2s of pause over a 1s window → 20%, well past the 5% band.
	reg.Counter("runtime_gc_pause_seconds_total").Add(0.2)
	rep := e.Tick(1)
	s := signal(rep, "gc_stall")
	if s == nil || s.Status != Warn || s.Cause == "" {
		t.Fatalf("gc_stall = %+v, want warn with cause", s)
	}
	if math.Abs(s.Value-0.2) > 1e-9 {
		t.Fatalf("gc_stall value = %v, want 0.2", s.Value)
	}
	if rep.Status != Warn {
		t.Fatalf("status = %v, want warn (gc_stall must never fail)", rep.Status)
	}
	// Quiet GC: once the pause spike slides out of the 4-sample
	// window the signal goes back to pass.
	e.Tick(2)
	e.Tick(3)
	rep = e.Tick(4)
	if s := signal(rep, "gc_stall"); s == nil || s.Status != Pass {
		t.Fatalf("quiet gc_stall = %+v, want pass", s)
	}
}

func TestGCStallAbsentWithoutRuntimeMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 4})
	e.Tick(0)
	rep := e.Tick(1)
	if s := signal(rep, "gc_stall"); s != nil {
		t.Fatalf("gc_stall evaluated without runtime metrics: %+v", s)
	}
}

// TestServicePressureWarnsOnMajorityShed: an spmvd window where most
// admission decisions were 429s is warn-grade degraded, and the
// explicit Degraded flag tracks the warn status; it clears when
// admissions recover.
func TestServicePressureWarnsOnMajorityShed(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 2})
	reg.Counter("service_requests_total").Add(0)
	e.Tick(0)

	// 10 decisions, 8 shed → 80% shed ratio.
	reg.Counter("service_requests_total").Add(10)
	reg.Counter("service_rejections_total").Add(8)
	rep := e.Tick(1)
	s := signal(rep, "service_pressure")
	if s == nil || s.Status != Warn || s.Cause == "" {
		t.Fatalf("service_pressure = %+v, want warn with cause", s)
	}
	if math.Abs(s.Value-0.8) > 1e-9 {
		t.Fatalf("shed ratio = %g, want 0.8", s.Value)
	}
	if rep.Status != Warn || !rep.Degraded {
		t.Fatalf("report = {status %v, degraded %v}, want warn+degraded", rep.Status, rep.Degraded)
	}

	// Next window: 10 more decisions, none shed → ratio 0, pass again.
	reg.Counter("service_requests_total").Add(10)
	rep = e.Tick(2)
	if s := signal(rep, "service_pressure"); s == nil || s.Status != Pass || s.Value != 0 {
		t.Fatalf("recovered service_pressure = %+v, want pass with ratio 0", s)
	}
	if rep.Degraded {
		t.Fatal("recovered report still flagged degraded")
	}
}

// TestServicePressureAbsentWithoutServiceMetrics: runs that are not an
// spmvd never grow the signal.
func TestServicePressureAbsentWithoutServiceMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 4})
	e.Tick(0)
	rep := e.Tick(1)
	if s := signal(rep, "service_pressure"); s != nil {
		t.Fatalf("service_pressure evaluated without service metrics: %+v", s)
	}
}

// TestDegradedFlagMirrorsStatus: Degraded is true exactly for warn —
// a fail is not "degraded", it is down, and /healthz already says so
// with a 503.
func TestDegradedFlagMirrorsStatus(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 2})
	e.Tick(0)
	if rep := e.Tick(1); rep.Degraded {
		t.Fatal("pass report flagged degraded")
	}
	reg.Counter("gpu_ecc_errors_total").Inc()
	if rep := e.Tick(2); rep.Status != Warn || !rep.Degraded {
		t.Fatalf("ECC window = {status %v, degraded %v}, want warn+degraded", rep.Status, rep.Degraded)
	}
	reg.Counter("mpi_rank_crashes_total").Inc()
	if rep := e.Tick(3); rep.Status != Fail || rep.Degraded {
		t.Fatalf("crash window = {status %v, degraded %v}, want fail without degraded", rep.Status, rep.Degraded)
	}
}

func TestTuningLagWarnsPast20Pct(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 3})
	reg.Gauge("service_tuning_lag_ratio", telemetry.L("matrix", "m1")).Set(1.05)
	e.Tick(0)
	rep := e.Tick(1)
	s := signal(rep, "tuning_lag")
	if s == nil || s.Status != Pass {
		t.Fatalf("5%% lag signal = %+v, want pass", s)
	}
	// Another served matrix runs 35% below its prediction; the gauge
	// max over label sets must pick it up without any counter plumbing.
	reg.Gauge("service_tuning_lag_ratio", telemetry.L("matrix", "m2")).Set(1.35)
	rep = e.Tick(2)
	s = signal(rep, "tuning_lag")
	if s == nil || s.Status != Warn || s.Value != 1.35 || s.Cause == "" {
		t.Fatalf("35%% lag signal = %+v, want warn at 1.35", s)
	}
	if rep.Status != Warn {
		t.Fatalf("report status = %v, want warn", rep.Status)
	}
}

func TestTuningLagAbsentWithoutServedMatrices(t *testing.T) {
	reg := telemetry.NewRegistry()
	e := New(reg, Options{Window: 3})
	e.Tick(0)
	if s := signal(e.Tick(1), "tuning_lag"); s != nil {
		t.Fatalf("tuning_lag signal present without the gauge: %+v", s)
	}
}
