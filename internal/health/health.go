// Package health is the rolling-window health evaluator of a live
// run: it snapshots the telemetry registry on a ticker into a small
// in-memory time series and derives *rates* from counter deltas —
// the paper's quantities are rates, not totals — turning the raw
// instrumentation into a handful of pass/warn/fail signals:
//
//   - gpu_throughput: aggregate and per-rank GB/s moved by the spMVM
//     kernels (the numerator of the Eq. 1 bandwidth efficiency)
//   - overlap_efficiency: compute time vs exposed communication wait,
//     the §III-A question of how much of T_comm hides under T_kernel
//   - failures: rank crashes, detector firings, and exhausted retry
//     budgets inside the window (§IV fault model) — the only Fail
//   - faults: injected-fault and rollback activity (degraded but
//     progressing → Warn)
//   - residual_stall: solver residual not shrinking while iterations
//     advance, or going non-finite (divergence)
//   - heartbeat: MPI progress silence after earlier activity
//
// The aggregate status is served on /healthz (HTTP 200 for pass and
// warn, 503 for fail) with per-signal causes, and the full sample
// window on /health. Transitions are recorded into the flight
// recorder, so a health Fail can trigger a post-incident dump.
package health

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"pjds/internal/flight"
	"pjds/internal/telemetry"
)

// Status is a three-level health verdict.
type Status uint8

const (
	Pass Status = iota
	Warn
	Fail
)

// String returns the lowercase status name.
func (s Status) String() string {
	switch s {
	case Pass:
		return "pass"
	case Warn:
		return "warn"
	case Fail:
		return "fail"
	}
	return "unknown"
}

// MarshalJSON renders the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// UnmarshalJSON parses the string form back (clients of /healthz).
func (s *Status) UnmarshalJSON(data []byte) error {
	var raw string
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	switch raw {
	case "pass":
		*s = Pass
	case "warn":
		*s = Warn
	case "fail":
		*s = Fail
	default:
		return fmt.Errorf("health: unknown status %q", raw)
	}
	return nil
}

// Signal is one derived health signal.
type Signal struct {
	Name   string  `json:"name"`
	Status Status  `json:"status"`
	Value  float64 `json:"value"`
	Cause  string  `json:"cause,omitempty"`
	// PerRank breaks Value down by rank label where that exists
	// (gpu_throughput).
	PerRank map[string]float64 `json:"per_rank,omitempty"`
}

// Report is one evaluation of the window. Degraded makes the
// warn-grade state explicit for clients that only read one field:
// /healthz serves warn as HTTP 200 (the run is still making progress),
// so "am I degraded" must be answerable from the body, not the status
// code.
type Report struct {
	Status   Status   `json:"status"`
	Degraded bool     `json:"degraded"`
	Now      float64  `json:"now"`
	Window   float64  `json:"window_seconds"`
	Samples  int      `json:"samples"`
	Signals  []Signal `json:"signals"`
}

// sample is one registry snapshot, flattened for rate math.
type sample struct {
	at      float64            // seconds on the engine clock
	sums    map[string]float64 // counter name → sum over label sets
	maxes   map[string]float64 // gauge name → max over label sets
	perRank map[string]map[string]float64
}

// Options parameterizes an Engine.
type Options struct {
	// Window is how many samples the rolling window keeps (default 30).
	Window int
	// Interval is the Start ticker period (default 1s).
	Interval time.Duration
}

// Engine evaluates a registry's health over a rolling window. Feed it
// either with Start (wall-clock ticker) or explicit Tick calls
// (tests, virtual time).
type Engine struct {
	reg    *telemetry.Registry
	window int

	mu      sync.Mutex
	samples []sample
	last    Status
	ever    bool // any MPI progress observed since start

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds an engine over reg.
func New(reg *telemetry.Registry, opts Options) *Engine {
	w := opts.Window
	if w <= 0 {
		w = 30
	}
	return &Engine{reg: reg, window: w, stop: make(chan struct{}), done: make(chan struct{})}
}

// counterNames are the families the signals consume, summed across
// label sets.
var counterNames = []string{
	"gpu_kernel_bytes_total",
	"gpu_kernel_seconds_total",
	"mpi_recv_wait_seconds_total",
	"mpi_send_serialization_seconds_total",
	"mpi_sends_total",
	"mpi_recvs_total",
	"mpi_collectives_total",
	"mpi_failures_detected_total",
	"mpi_rank_crashes_total",
	"mpi_retries_exhausted_total",
	"gpu_ecc_errors_total",
	"simnet_faults_injected_total",
	"distsolver_rollbacks_total",
	"distsolver_ecc_downgrades_total",
	"runtime_gc_pause_seconds_total",
	"runtime_gc_cpu_seconds_total",
	"runtime_gc_cycles_total",
	"service_requests_total",
	"service_rejections_total",
}

// servicePressureWarnFrac is the shed ratio (rejections over total
// admission decisions) above which service_pressure warns.
const servicePressureWarnFrac = 0.5

// tuningLagWarnRatio is the measured/predicted ns-per-nnz ratio above
// which a served matrix is flagged as running well below its
// tuning-DB prediction (>20% slower).
const tuningLagWarnRatio = 1.2

// gcStallWarnFrac is the pause-time fraction of the window above
// which gc_stall warns.
const gcStallWarnFrac = 0.05

// Tick takes one sample at the given clock reading and re-evaluates.
func (e *Engine) Tick(now float64) Report {
	s := sample{
		at:      now,
		sums:    make(map[string]float64, len(counterNames)),
		maxes:   map[string]float64{},
		perRank: map[string]map[string]float64{},
	}
	for _, sr := range e.reg.Snapshot() {
		switch sr.Type {
		case "counter":
			s.sums[sr.Name] += sr.Value
			if rank, ok := sr.Labels["rank"]; ok && sr.Name == "gpu_kernel_bytes_total" {
				if s.perRank[sr.Name] == nil {
					s.perRank[sr.Name] = map[string]float64{}
				}
				s.perRank[sr.Name][rank] += sr.Value
			}
		case "gauge":
			if v, ok := s.maxes[sr.Name]; !ok || sr.Value > v {
				s.maxes[sr.Name] = sr.Value
			}
		}
	}

	e.mu.Lock()
	e.samples = append(e.samples, s)
	if len(e.samples) > e.window {
		e.samples = e.samples[len(e.samples)-e.window:]
	}
	rep := e.evaluateLocked()
	prev := e.last
	e.last = rep.Status
	e.mu.Unlock()

	if prev != rep.Status {
		sev := flight.Info
		switch rep.Status {
		case Warn:
			sev = flight.Warn
		case Fail:
			sev = flight.Error
		}
		flight.Record(sev, "health.status", -1, now, cause(rep), float64(rep.Status))
	}
	return rep
}

// cause picks the most severe signal's cause for the transition event.
func cause(rep Report) string {
	for _, s := range rep.Signals {
		if s.Status == rep.Status && s.Cause != "" {
			return s.Name + ": " + s.Cause
		}
	}
	return "status " + rep.Status.String()
}

// delta returns newest-minus-oldest for a summed counter family.
func delta(oldest, newest sample, name string) float64 {
	d := newest.sums[name] - oldest.sums[name]
	if d < 0 {
		return 0 // registry reset between samples
	}
	return d
}

// evaluateLocked derives the signals from the current window.
func (e *Engine) evaluateLocked() Report {
	n := len(e.samples)
	rep := Report{Samples: n}
	if n == 0 {
		rep.Signals = []Signal{{Name: "window", Status: Pass, Cause: "no samples yet"}}
		return rep
	}
	newest := e.samples[n-1]
	oldest := e.samples[0]
	rep.Now = newest.at
	rep.Window = newest.at - oldest.at
	if n < 2 || rep.Window <= 0 {
		rep.Signals = []Signal{{Name: "window", Status: Pass, Value: float64(n), Cause: "warming up"}}
		return rep
	}
	elapsed := rep.Window

	// gpu_throughput: GB/s moved by the kernels over the window, the
	// live numerator of the Eq. 1 bandwidth-efficiency story.
	{
		gbs := delta(oldest, newest, "gpu_kernel_bytes_total") / elapsed / 1e9
		sig := Signal{Name: "gpu_throughput", Status: Pass, Value: gbs}
		if pr := newest.perRank["gpu_kernel_bytes_total"]; len(pr) > 0 {
			sig.PerRank = map[string]float64{}
			for rank, v := range pr {
				old := 0.0
				if po := oldest.perRank["gpu_kernel_bytes_total"]; po != nil {
					old = po[rank]
				}
				if d := v - old; d > 0 {
					sig.PerRank[rank] = d / elapsed / 1e9
				}
			}
		}
		rep.Signals = append(rep.Signals, sig)
	}

	// overlap_efficiency: compute / (compute + exposed comm wait) —
	// the §III-A question. Only meaningful while kernels run.
	{
		compute := delta(oldest, newest, "gpu_kernel_seconds_total")
		exposed := delta(oldest, newest, "mpi_recv_wait_seconds_total") +
			delta(oldest, newest, "mpi_send_serialization_seconds_total")
		sig := Signal{Name: "overlap_efficiency", Status: Pass, Value: 1}
		switch {
		case compute+exposed == 0:
			sig.Cause = "idle"
		default:
			sig.Value = compute / (compute + exposed)
			if sig.Value < 0.5 {
				sig.Status = Warn
				sig.Cause = fmt.Sprintf("exposed communication wait exceeds compute (%.0f%% efficiency)", 100*sig.Value)
			}
		}
		rep.Signals = append(rep.Signals, sig)
	}

	// failures: the §IV fault model's hard signals. Any rank crash,
	// detector firing, or exhausted retry budget inside the window is
	// a Fail; it clears when the window slides past the incident.
	{
		crashes := delta(oldest, newest, "mpi_rank_crashes_total")
		detected := delta(oldest, newest, "mpi_failures_detected_total")
		exhausted := delta(oldest, newest, "mpi_retries_exhausted_total")
		sig := Signal{Name: "failures", Status: Pass, Value: crashes + detected + exhausted}
		if sig.Value > 0 {
			sig.Status = Fail
			var parts []string
			if crashes > 0 {
				parts = append(parts, fmt.Sprintf("%.0f rank crash(es)", crashes))
			}
			if detected > 0 {
				parts = append(parts, fmt.Sprintf("%.0f detector firing(s)", detected))
			}
			if exhausted > 0 {
				parts = append(parts, fmt.Sprintf("%.0f retry budget(s) exhausted", exhausted))
			}
			sig.Cause = strings.Join(parts, ", ") + " in window"
		}
		rep.Signals = append(rep.Signals, sig)
	}

	// faults: degraded-but-progressing activity — injected faults, ECC
	// events, rollbacks, downgrades. Warn, not Fail: the recovery
	// machinery exists exactly to absorb these.
	{
		injected := delta(oldest, newest, "simnet_faults_injected_total")
		ecc := delta(oldest, newest, "gpu_ecc_errors_total")
		rollbacks := delta(oldest, newest, "distsolver_rollbacks_total")
		downgrades := delta(oldest, newest, "distsolver_ecc_downgrades_total")
		sig := Signal{Name: "faults", Status: Pass, Value: injected + ecc + rollbacks + downgrades}
		if sig.Value > 0 {
			sig.Status = Warn
			var parts []string
			if injected > 0 {
				parts = append(parts, fmt.Sprintf("%.0f fault(s) injected", injected))
			}
			if ecc > 0 {
				parts = append(parts, fmt.Sprintf("%.0f ECC event(s)", ecc))
			}
			if rollbacks > 0 {
				parts = append(parts, fmt.Sprintf("%.0f rollback(s)", rollbacks))
			}
			if downgrades > 0 {
				parts = append(parts, fmt.Sprintf("%.0f ECC downgrade(s)", downgrades))
			}
			sig.Cause = strings.Join(parts, ", ") + " in window (recovering)"
		}
		rep.Signals = append(rep.Signals, sig)
	}

	// residual_stall: solver divergence (non-finite residual → Fail)
	// or a residual that stopped shrinking while iterations advance
	// (→ Warn).
	if res, ok := newest.maxes["solver_residual"]; ok {
		sig := Signal{Name: "residual_stall", Status: Pass, Value: res}
		oldRes, hadOld := oldest.maxes["solver_residual"]
		iters := newest.maxes["solver_iterations"] - oldest.maxes["solver_iterations"]
		switch {
		case math.IsNaN(res) || math.IsInf(res, 0):
			sig.Status = Fail
			sig.Cause = "solver residual non-finite (diverged)"
		case hadOld && iters > 0 && res >= oldRes && oldRes > 0:
			sig.Status = Warn
			sig.Cause = fmt.Sprintf("residual not shrinking over %.0f iteration(s)", iters)
		}
		rep.Signals = append(rep.Signals, sig)
	}

	// gc_stall: stop-the-world GC pause time as a fraction of the
	// window. Warn-grade: the process is still making progress, but a
	// GC eating >5% of wall time is throughput the Eq. 1 model can't
	// explain. Only evaluated when a RuntimeSampler feeds the
	// registry (Start wires one up; virtual-time Tick tests don't).
	if _, ok := newest.sums["runtime_gc_pause_seconds_total"]; ok {
		pause := delta(oldest, newest, "runtime_gc_pause_seconds_total")
		frac := pause / elapsed
		sig := Signal{Name: "gc_stall", Status: Pass, Value: frac}
		if frac > gcStallWarnFrac {
			sig.Status = Warn
			sig.Cause = fmt.Sprintf("GC pauses consumed %.1f%% of the last %.1fs", 100*frac, elapsed)
		}
		rep.Signals = append(rep.Signals, sig)
	}

	// service_pressure: spmvd's admission shed ratio over the window.
	// Warn-grade: shedding is the designed response to overload (the
	// server keeps its Eq. 1 working set saturated instead of thrashing
	// it), but a majority-shed window means clients see mostly 429s and
	// someone should widen the pool. Only evaluated when an spmvd feeds
	// the registry.
	if _, ok := newest.sums["service_requests_total"]; ok {
		// service_requests_total counts every admission decision,
		// including the shed ones, so the ratio is shed/requests.
		requests := delta(oldest, newest, "service_requests_total")
		shed := delta(oldest, newest, "service_rejections_total")
		sig := Signal{Name: "service_pressure", Status: Pass}
		if requests > 0 {
			sig.Value = shed / requests
			if sig.Value > servicePressureWarnFrac {
				sig.Status = Warn
				sig.Cause = fmt.Sprintf("%.0f%% of %d admission decision(s) shed in window", 100*sig.Value, int(requests))
			}
		}
		rep.Signals = append(rep.Signals, sig)
	}

	// tuning_lag: a served matrix running materially slower than the
	// tuning DB predicted for its chosen format. Warn-grade: results
	// stay correct, but the stored (C, σ) pick was made under
	// conditions that no longer hold (contended host, different worker
	// width) and a re-tune would likely pick differently. The service
	// publishes the worst measured/predicted ratio as a gauge; only
	// evaluated when a tuned service feeds the registry.
	if lag, ok := newest.maxes["service_tuning_lag_ratio"]; ok {
		sig := Signal{Name: "tuning_lag", Status: Pass, Value: lag}
		if lag > tuningLagWarnRatio {
			sig.Status = Warn
			sig.Cause = fmt.Sprintf("served spMVM ran %.0f%% slower than its tuning-DB prediction", 100*(lag-1))
		}
		rep.Signals = append(rep.Signals, sig)
	}

	// heartbeat: MPI progress silence. Warn-only by design — a
	// finished run idling behind -hold must stay healthy, but a
	// mid-run stall should still surface.
	{
		progress := delta(oldest, newest, "mpi_sends_total") +
			delta(oldest, newest, "mpi_recvs_total") +
			delta(oldest, newest, "mpi_collectives_total")
		total := newest.sums["mpi_sends_total"] + newest.sums["mpi_recvs_total"] + newest.sums["mpi_collectives_total"]
		if total > 0 {
			e.ever = true
		}
		sig := Signal{Name: "heartbeat", Status: Pass, Value: progress / elapsed}
		if e.ever && progress == 0 {
			sig.Status = Warn
			sig.Cause = fmt.Sprintf("no MPI progress for %.1fs (run finished or stalled)", elapsed)
		}
		rep.Signals = append(rep.Signals, sig)
	}

	for _, s := range rep.Signals {
		if s.Status > rep.Status {
			rep.Status = s.Status
		}
	}
	rep.Degraded = rep.Status == Warn
	return rep
}

// Report evaluates the current window without taking a new sample.
func (e *Engine) Report() Report {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.evaluateLocked()
}

// Start begins sampling on a wall-clock ticker until Stop.
func (e *Engine) Start(opts Options) {
	iv := opts.Interval
	if iv <= 0 {
		iv = time.Second
	}
	go func() {
		defer close(e.done)
		t := time.NewTicker(iv)
		defer t.Stop()
		// Runtime metrics ride the health ticker: GC pause/CPU, heap
		// and goroutine gauges land in the same registry the engine
		// snapshots, so gc_stall sees them one Tick later. Kept out
		// of Tick itself so virtual-time tests stay hermetic.
		rt := telemetry.NewRuntimeSampler(e.reg)
		start := time.Now()
		rt.Sample()
		e.Tick(0)
		for {
			select {
			case <-e.stop:
				return
			case now := <-t.C:
				rt.Sample()
				e.Tick(now.Sub(start).Seconds())
			}
		}
	}()
}

// Stop halts the Start ticker (safe to call without Start, and more
// than once).
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stop) })
}

// Handler serves the engine:
//
//	GET /healthz  compact report; HTTP 200 for pass and for warn-grade
//	              degraded (the body carries "status" and "degraded"
//	              so a 200 is never mistaken for fully healthy),
//	              503 for fail
//	GET /health   the report plus the retained sample window
func (e *Engine) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		rep := e.Report()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if rep.Status == Fail {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(rep)
	})
	mux.HandleFunc("/health", func(w http.ResponseWriter, _ *http.Request) {
		rep := e.Report()
		e.mu.Lock()
		hist := make([]map[string]any, 0, len(e.samples))
		for _, s := range e.samples {
			names := make([]string, 0, len(s.sums))
			for n := range s.sums {
				names = append(names, n)
			}
			sort.Strings(names)
			sums := make(map[string]float64, len(names))
			for _, n := range names {
				sums[n] = s.sums[n]
			}
			hist = append(hist, map[string]any{"at": s.at, "sums": sums, "gauges": s.maxes})
		}
		e.mu.Unlock()
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(map[string]any{"report": rep, "samples": hist})
	})
	return mux
}

// RegisterHTTP attaches /healthz and /health to every future
// telemetry.Serve mux.
func (e *Engine) RegisterHTTP() {
	h := e.Handler()
	telemetry.RegisterHandler("/healthz", h)
	telemetry.RegisterHandler("/health", h)
}
