package solver

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"pjds/internal/core"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

func TestVectorHelpers(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{4, -5, 6}
	if Dot(x, y) != 4-10+18 {
		t.Error("dot")
	}
	if math.Abs(Norm2(x)-math.Sqrt(14)) > 1e-15 {
		t.Error("norm")
	}
	Axpy(2, x, y)
	if y[0] != 6 || y[1] != -1 || y[2] != 12 {
		t.Errorf("axpy: %v", y)
	}
	Scale(0.5, y)
	if y[0] != 3 {
		t.Error("scale")
	}
}

func TestCGOnLaplacian(t *testing.T) {
	m := matgen.Stencil2D(30, 30)
	op := CSROperator{M: m}
	n := op.Dim()
	// Manufactured solution.
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Cos(0.05 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	res, err := CG(op, x, b, 1e-10, 5000)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %g, want %g (after %d iters)", i, x[i], want[i], res.Iterations)
		}
	}
	// Residual history must be recorded and end below tolerance·‖b‖.
	if len(res.History) != res.Iterations {
		t.Errorf("history length %d != iterations %d", len(res.History), res.Iterations)
	}
}

func TestCGErrors(t *testing.T) {
	m := matgen.Stencil2D(5, 5)
	op := CSROperator{M: m}
	if _, err := CG(op, make([]float64, 3), make([]float64, 25), 1e-8, 10); err == nil {
		t.Error("size mismatch accepted")
	}
	// Indefinite operator: -Laplacian.
	neg := m.Clone()
	for i := range neg.Val {
		neg.Val[i] = -neg.Val[i]
	}
	b := make([]float64, 25)
	b[0] = 1
	if _, err := CG(CSROperator{M: neg}, make([]float64, 25), b, 1e-8, 10); err == nil {
		t.Error("indefinite operator accepted")
	}
	// Not converged in 1 iteration.
	_, err := CG(op, make([]float64, 25), b, 1e-14, 1)
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("want ErrNotConverged, got %v", err)
	}
}

func TestCGZeroRHS(t *testing.T) {
	m := matgen.Stencil2D(6, 6)
	x := make([]float64, 36)
	res, err := CG(CSROperator{M: m}, x, make([]float64, 36), 1e-12, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations != 0 {
		t.Errorf("zero RHS took %d iterations", res.Iterations)
	}
}

// diagOp is a diagonal operator with known spectrum.
type diagOp struct{ d []float64 }

func (o diagOp) Dim() int { return len(o.d) }
func (o diagOp) Apply(y, x []float64) error {
	for i := range x {
		y[i] = o.d[i] * x[i]
	}
	return nil
}

func TestPowerIterationDiagonal(t *testing.T) {
	d := make([]float64, 50)
	for i := range d {
		d[i] = float64(i + 1)
	}
	res, err := PowerIteration(diagOp{d}, nil, 1e-12, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Eigenvalue-50) > 1e-6 {
		t.Errorf("dominant eigenvalue = %g, want 50", res.Eigenvalue)
	}
	// Eigenvector concentrates on the last coordinate.
	if math.Abs(math.Abs(res.Vector[49])-1) > 1e-4 {
		t.Errorf("eigenvector[49] = %g", res.Vector[49])
	}
}

func TestPowerIterationErrors(t *testing.T) {
	if _, err := PowerIteration(diagOp{make([]float64, 4)}, []float64{1}, 1e-10, 5); err == nil {
		t.Error("bad v0 size accepted")
	}
	// Null operator: hits the null space.
	if _, err := PowerIteration(diagOp{make([]float64, 4)}, nil, 1e-10, 5); err == nil {
		t.Error("null operator should error")
	}
	// Non-convergence propagates.
	d := []float64{1, 1.0000001}
	_, err := PowerIteration(diagOp{d}, []float64{1, 1}, 1e-15, 2)
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("want ErrNotConverged, got %v", err)
	}
}

func TestTridiagEigenvalues(t *testing.T) {
	// 2x2: [[2,1],[1,2]] → {1,3}.
	ev, err := TridiagEigenvalues([]float64{2, 2}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ev[0]-1) > 1e-12 || math.Abs(ev[1]-3) > 1e-12 {
		t.Errorf("eigenvalues = %v", ev)
	}
	// Known: tridiag(-1, 2, -1) of size n has eigenvalues
	// 2−2cos(kπ/(n+1)).
	n := 12
	d := make([]float64, n)
	e := make([]float64, n-1)
	for i := range d {
		d[i] = 2
	}
	for i := range e {
		e[i] = -1
	}
	ev, err = TridiagEigenvalues(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(ev[k-1]-want) > 1e-10 {
			t.Fatalf("ev[%d] = %g, want %g", k-1, ev[k-1], want)
		}
	}
	// Degenerate inputs.
	if _, err := TridiagEigenvalues([]float64{1, 2}, []float64{}); err == nil {
		t.Error("inconsistent sizes accepted")
	}
	if ev, _ := TridiagEigenvalues(nil, nil); ev != nil {
		t.Error("empty system")
	}
}

func TestLanczosExtremalEigenvalues(t *testing.T) {
	// Diagonal spectrum 1..100: after enough steps the extremal Ritz
	// values converge first.
	d := make([]float64, 100)
	for i := range d {
		d[i] = float64(i + 1)
	}
	res, err := Lanczos(diagOp{d}, 40, nil)
	if err != nil {
		t.Fatal(err)
	}
	ritz := res.RitzValues
	if math.Abs(ritz[len(ritz)-1]-100) > 1e-4 {
		t.Errorf("max Ritz = %g, want 100", ritz[len(ritz)-1])
	}
	if math.Abs(ritz[0]-1) > 1e-4 {
		t.Errorf("min Ritz = %g, want 1", ritz[0])
	}
}

func TestLanczosOnLaplacian(t *testing.T) {
	m := matgen.Stencil2D(20, 20)
	res, err := Lanczos(CSROperator{M: m}, 60, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Largest eigenvalue of the 2D Laplacian stencil:
	// 4 + 2cos(π/(n+1)) + ... → max = 8 sin²-form; for 20×20:
	// λmax = 4 + 4cos(π/21) ≈ 7.955.
	want := 4 + 4*math.Cos(math.Pi/21)
	got := res.RitzValues[len(res.RitzValues)-1]
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("λmax = %g, want %g", got, want)
	}
}

func TestLanczosValidation(t *testing.T) {
	if _, err := Lanczos(diagOp{[]float64{1, 2}}, 0, nil); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := Lanczos(diagOp{[]float64{1, 2}}, 2, []float64{1}); err == nil {
		t.Error("bad v0 accepted")
	}
	// k > n clamps.
	res, err := Lanczos(diagOp{[]float64{3, 7}}, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps > 2 {
		t.Errorf("steps = %d for a 2-dim operator", res.Steps)
	}
}

func TestPermutedPJDSEquivalence(t *testing.T) {
	m := matgen.Banded(600, 3, 17, 40, 5)
	op, err := NewPermutedPJDS(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 600)
	for i := range x {
		x[i] = math.Sin(float64(i))
	}
	// Apply in permuted basis == permuted apply in original basis.
	xp := op.Enter(make([]float64, 600), x)
	yp := make([]float64, 600)
	if err := op.Apply(yp, xp); err != nil {
		t.Fatal(err)
	}
	y := op.Leave(make([]float64, 600), yp)
	ref := make([]float64, 600)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-ref[i]) > 1e-10*(1+math.Abs(ref[i])) {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], ref[i])
		}
	}
}

func TestPermutedPJDSRejectsRectangular(t *testing.T) {
	coo := matrix.NewCOO[float64](3, 4)
	coo.Add(0, 3, 1)
	if _, err := NewPermutedPJDS(coo.ToCSR(), core.Options{}); err == nil {
		t.Error("rectangular accepted")
	}
}

// TestCGInPermutedBasis is the paper's §II-A workflow: permute once,
// run the entire CG iteration on the pJDS kernel, permute back.
func TestCGInPermutedBasis(t *testing.T) {
	m := matgen.Stencil2D(25, 25)
	n := m.NRows
	op, err := NewPermutedPJDS(m, core.Options{BlockHeight: 32})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(0.1 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	// Enter the permuted basis once.
	bp := op.Enter(make([]float64, n), b)
	xp := make([]float64, n)
	if _, err := CG(op, xp, bp, 1e-11, 5000); err != nil {
		t.Fatal(err)
	}
	// Leave once.
	x := op.Leave(make([]float64, n), xp)
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-7 {
			t.Fatalf("permuted-basis CG x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

// Property: OperatorFunc round-trips arbitrary linear maps.
func TestOperatorFunc(t *testing.T) {
	f := func(a0, b0 float64) bool {
		a := math.Mod(a0, 1e6)
		b := math.Mod(b0, 1e6)
		if math.IsNaN(a) || math.IsNaN(b) {
			a, b = 1, 2
		}
		op := OperatorFunc{N: 2, F: func(y, x []float64) error {
			y[0] = a*x[0] + b*x[1]
			y[1] = b*x[0] + a*x[1]
			return nil
		}}
		y := make([]float64, 2)
		if op.Apply(y, []float64{1, 1}) != nil {
			return false
		}
		return op.Dim() == 2 && math.Abs(y[0]-(a+b)) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
