package solver

import (
	"testing"

	"pjds/internal/core"
	"pjds/internal/matgen"
)

// BenchmarkCGLaplacian measures a full CG solve on the 2D Laplacian,
// CRS vs permuted-pJDS operator — the end-to-end cost the paper's
// permute-once argument (§II-A) is about.
func BenchmarkCGLaplacian(b *testing.B) {
	m := matgen.Stencil2D(60, 60)
	n := m.NRows
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = 1
	}
	b.Run("CRS", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			x := make([]float64, n)
			if _, err := CG(CSROperator{M: m}, x, rhs, 1e-8, 5000); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pJDS-permuted", func(b *testing.B) {
		op, err := NewPermutedPJDS(m, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		bp := op.Enter(make([]float64, n), rhs)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			xp := make([]float64, n)
			if _, err := CG(op, xp, bp, 1e-8, 5000); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkLanczos(b *testing.B) {
	m := matgen.Stencil2D(50, 50)
	op := CSROperator{M: m}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Lanczos(op, 40, nil); err != nil {
			b.Fatal(err)
		}
	}
}
