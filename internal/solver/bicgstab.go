package solver

import (
	"fmt"
	"math"
)

// BiCGSTABResult reports a BiCGSTAB solve.
type BiCGSTABResult struct {
	Iterations int
	Residual   float64
	History    []float64
}

// BiCGSTAB solves A·x = b for general nonsymmetric A with the
// stabilized bi-conjugate gradient method (van der Vorst) and optional
// right preconditioning — the other workhorse next to GMRES in CFD
// codes like the paper's TAU, with constant memory instead of a
// restart-length Krylov basis. x is updated in place.
func BiCGSTAB(a Operator, x, b []float64, tol float64, maxIter int, pre Preconditioner, probes ...Probe) (BiCGSTABResult, error) {
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return BiCGSTABResult{}, fmt.Errorf("solver: BiCGSTAB size mismatch |x|=%d |b|=%d dim=%d", len(x), len(b), n)
	}
	if pre == nil {
		pre = IdentityPreconditioner{}
	}
	r := make([]float64, n)
	if err := a.Apply(r, x); err != nil {
		return BiCGSTABResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	rHat := append([]float64(nil), r...) // shadow residual
	p := make([]float64, n)
	v := make([]float64, n)
	ph := make([]float64, n)
	sh := make([]float64, n)
	s := make([]float64, n)
	t := make([]float64, n)

	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	res := BiCGSTABResult{Residual: Norm2(r)}
	rho, alpha, omega := 1.0, 1.0, 1.0
	for k := 0; k < maxIter; k++ {
		if res.Residual <= tol*bnorm {
			return res, nil
		}
		rhoNew := Dot(rHat, r)
		if rhoNew == 0 {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown (rho = 0) at iteration %d", k)
		}
		if k == 0 {
			copy(p, r)
		} else {
			beta := (rhoNew / rho) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		rho = rhoNew
		if err := pre.ApplySolve(ph, p); err != nil {
			return res, err
		}
		if err := a.Apply(v, ph); err != nil {
			return res, err
		}
		rhv := Dot(rHat, v)
		if rhv == 0 {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown (rHat·v = 0) at iteration %d", k)
		}
		alpha = rho / rhv
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		if ns := Norm2(s); ns <= tol*bnorm {
			// Early half-step convergence.
			for i := range x {
				x[i] += alpha * ph[i]
			}
			res.Iterations = k + 1
			res.Residual = ns
			res.History = append(res.History, ns)
			notify(probes, res.Iterations, ns)
			return res, nil
		}
		if err := pre.ApplySolve(sh, s); err != nil {
			return res, err
		}
		if err := a.Apply(t, sh); err != nil {
			return res, err
		}
		tt := Dot(t, t)
		if tt == 0 {
			return res, fmt.Errorf("solver: BiCGSTAB breakdown (t = 0) at iteration %d", k)
		}
		omega = Dot(t, s) / tt
		if omega == 0 {
			return res, fmt.Errorf("solver: BiCGSTAB stagnation (omega = 0) at iteration %d", k)
		}
		for i := range x {
			x[i] += alpha*ph[i] + omega*sh[i]
		}
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		res.Iterations = k + 1
		res.Residual = Norm2(r)
		res.History = append(res.History, res.Residual)
		notify(probes, res.Iterations, res.Residual)
		if math.IsNaN(res.Residual) || math.IsInf(res.Residual, 0) {
			return res, fmt.Errorf("solver: BiCGSTAB diverged at iteration %d", k)
		}
	}
	if res.Residual > tol*bnorm {
		return res, fmt.Errorf("%w: BiCGSTAB residual %g after %d iterations", ErrNotConverged, res.Residual, res.Iterations)
	}
	return res, nil
}
