package solver

import (
	"errors"

	"pjds/internal/core"
	"pjds/internal/flight"
	"pjds/internal/gpu"
	"pjds/internal/matrix"
)

// DevicePJDS is a PermutedPJDS operator whose Apply runs on the GPU
// simulator instead of the host CPU kernel. The simulated kernel
// computes the same per-row sums in the same floating-point order as
// MulVecPermuted, so solves are bit-identical to the host operator;
// what the device adds is the transaction-level timing, accumulated
// into SimSeconds across the solve. The kernel plan is compiled on
// first Apply and served from the plan cache afterwards, so a solve
// with hundreds of iterations pays the coalescing/L2 analysis once.
type DevicePJDS struct {
	*PermutedPJDS
	// Dev is the simulated accelerator; Opt is passed through to every
	// kernel run (metrics registry, labels, worker count).
	Dev *gpu.Device
	Opt gpu.RunOptions
	// Applies counts kernel launches; SimSeconds accumulates the
	// simulated kernel time of the whole solve; Last is the statistics
	// of the most recent application.
	Applies    int
	SimSeconds float64
	Last       *gpu.KernelStats
	// Degraded is latched when a kernel launch takes a simulated
	// uncorrectable ECC error: the device is treated as lost and every
	// application from then on runs the host CPU kernel instead.
	// Because both paths sum each row in stored column order, the
	// solve's numeric trajectory is bit-identical either way — only
	// the timing model stops accumulating.
	Degraded bool
	// DegradedAt records the launch index that took the ECC hit.
	DegradedAt int
}

// NewDevicePJDS builds the device-backed operator for a square matrix.
func NewDevicePJDS(m *matrix.CSR[float64], opt core.Options, dev *gpu.Device) (*DevicePJDS, error) {
	p, err := NewPermutedPJDS(m, opt)
	if err != nil {
		return nil, err
	}
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	return &DevicePJDS{PermutedPJDS: p, Dev: dev}, nil
}

// Apply implements Operator in the permuted basis: on the device
// while it is healthy, on the host CPU kernel after an uncorrectable
// ECC error (graceful degradation — the solve continues bit-exactly,
// losing only the device timing model).
func (o *DevicePJDS) Apply(y, x []float64) error {
	if !o.Degraded {
		st, err := gpu.RunPJDS(o.Dev, o.P, y, x, o.Opt)
		var ecc *gpu.ECCError
		if errors.As(err, &ecc) {
			o.Degraded = true
			o.DegradedAt = o.Applies
			flight.Record(flight.Error, "solver.device_degrade", -1, 0, "device operator latched host fallback after ECC error", float64(o.Applies))
		} else if err != nil {
			return err
		} else {
			o.Applies++
			o.SimSeconds += st.KernelSeconds
			o.Last = st
			return nil
		}
	}
	o.Applies++
	return o.PermutedPJDS.Apply(y, x)
}
