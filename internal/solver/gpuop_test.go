package solver

import (
	"math"
	"math/rand"
	"testing"

	"pjds/internal/core"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/telemetry"
)

// TestDevicePJDSMatchesHostOperator checks that the device-backed
// operator is bit-identical to the host PermutedPJDS kernel per
// application, and that it accumulates simulated kernel time.
func TestDevicePJDSMatchesHostOperator(t *testing.T) {
	m := matgen.Banded(1200, 3, 17, 77, 1)
	host, err := NewPermutedPJDS(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevicePJDS(m, core.Options{}, gpu.TeslaC2070())
	if err != nil {
		t.Fatal(err)
	}
	dev.Opt.Metrics = telemetry.NewRegistry()
	dev.Opt.Plans = gpu.NewPlanCache(0)
	dev.Opt.Workers = 2
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	yh := make([]float64, host.Dim())
	yd := make([]float64, dev.Dim())
	const applies = 5
	for k := 0; k < applies; k++ {
		if err := host.Apply(yh, x); err != nil {
			t.Fatal(err)
		}
		if err := dev.Apply(yd, x); err != nil {
			t.Fatal(err)
		}
		for i := range yh {
			if math.Float64bits(yh[i]) != math.Float64bits(yd[i]) {
				t.Fatalf("apply %d: y[%d] = %g on device, %g on host", k, i, yd[i], yh[i])
			}
		}
	}
	if dev.Applies != applies {
		t.Errorf("Applies = %d, want %d", dev.Applies, applies)
	}
	if dev.SimSeconds <= 0 || dev.Last == nil {
		t.Errorf("no simulated time accumulated: %g, %v", dev.SimSeconds, dev.Last)
	}
	if math.Abs(dev.SimSeconds-float64(applies)*dev.Last.KernelSeconds) > 1e-12 {
		t.Errorf("SimSeconds = %g, want %d × %g", dev.SimSeconds, applies, dev.Last.KernelSeconds)
	}
	// The plan compiled once; the remaining applications replayed it.
	if s := dev.Opt.Plans.Stats(); s.Compiles != 1 || s.Hits != applies-1 {
		t.Errorf("plan cache: %+v, want 1 compile and %d hits", s, applies-1)
	}
}

// TestCGOnDevicePJDS runs a full CG solve through the simulator and
// checks it matches the host-operator solve exactly, iteration for
// iteration.
func TestCGOnDevicePJDS(t *testing.T) {
	m := matgen.Stencil2D(25, 25)
	n := m.NRows
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Sin(0.04 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	host, err := NewPermutedPJDS(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevicePJDS(m, core.Options{}, gpu.TeslaC2070())
	if err != nil {
		t.Fatal(err)
	}
	dev.Opt.Metrics = telemetry.NewRegistry()
	dev.Opt.Plans = gpu.NewPlanCache(0)

	bp := make([]float64, n)
	solve := func(op Operator, perm *PermutedPJDS) ([]float64, CGResult) {
		perm.Enter(bp, b)
		xp := make([]float64, n)
		res, err := CG(op, xp, bp, 1e-11, 5000)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		perm.Leave(x, xp)
		return x, res
	}
	xh, rh := solve(host, host)
	xd, rd := solve(dev, dev.PermutedPJDS)
	if rh.Iterations != rd.Iterations {
		t.Errorf("device CG took %d iterations, host %d", rd.Iterations, rh.Iterations)
	}
	for i := range xh {
		if math.Float64bits(xh[i]) != math.Float64bits(xd[i]) {
			t.Fatalf("solutions diverge at %d: %g vs %g", i, xd[i], xh[i])
		}
	}
	for i := range want {
		if math.Abs(xd[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %g, want %g", i, xd[i], want[i])
		}
	}
	if dev.Applies != rd.Iterations+1 { // one extra for the initial residual
		t.Errorf("Applies = %d, iterations = %d", dev.Applies, rd.Iterations)
	}
	// Amortization: one compile for the whole solve.
	if s := dev.Opt.Plans.Stats(); s.Compiles != 1 || s.Hits != int64(dev.Applies-1) {
		t.Errorf("plan cache: %+v over %d applies", s, dev.Applies)
	}
}
