package solver

import (
	"errors"
	"math"
	"testing"

	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

// nonsymmetric builds a diagonally dominant nonsymmetric test system.
func nonsymmetric(n int, seed int64) *matrix.CSR[float64] {
	m := matgen.Banded(n, 4, 9, 15, seed)
	// Break symmetry deterministically and strengthen the diagonal.
	out := m.Clone()
	for i := 0; i < out.NRows; i++ {
		cols, _ := out.Row(i)
		lo := out.RowPtr[i]
		for k := range cols {
			if int(cols[k]) == i {
				out.Val[lo+k] = 12 + float64(i%5)
			} else if int(cols[k]) > i {
				out.Val[lo+k] *= 1.7
			}
		}
	}
	return out
}

func TestGMRESManufacturedSolution(t *testing.T) {
	m := nonsymmetric(400, 1)
	op := CSROperator{M: m}
	want := make([]float64, 400)
	for i := range want {
		want[i] = math.Sin(0.05 * float64(i))
	}
	b := make([]float64, 400)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 400)
	res, err := GMRES(op, x, b, 30, 1e-12, 5000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-8 {
			t.Fatalf("x[%d] = %g, want %g (iters %d)", i, x[i], want[i], res.Iterations)
		}
	}
	if res.Residual > 1e-10 {
		t.Errorf("residual %g", res.Residual)
	}
}

func TestGMRESMatchesCGOnSPD(t *testing.T) {
	m := matgen.Stencil2D(20, 20)
	op := CSROperator{M: m}
	b := make([]float64, 400)
	for i := range b {
		b[i] = 1
	}
	xg := make([]float64, 400)
	if _, err := GMRES(op, xg, b, 50, 1e-11, 10000, nil); err != nil {
		t.Fatal(err)
	}
	xc := make([]float64, 400)
	if _, err := CG(op, xc, b, 1e-11, 10000); err != nil {
		t.Fatal(err)
	}
	for i := range xg {
		if math.Abs(xg[i]-xc[i]) > 1e-6 {
			t.Fatalf("GMRES and CG disagree at %d: %g vs %g", i, xg[i], xc[i])
		}
	}
}

func TestGMRESJacobiPreconditionerHelps(t *testing.T) {
	// Badly scaled diagonal: Jacobi should slash the iteration count.
	n := 300
	m := nonsymmetric(n, 3).Clone()
	for i := 0; i < n; i++ {
		scalerow := 1.0 + 50*float64(i%7)
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			m.Val[k] *= scalerow
		}
	}
	op := CSROperator{M: m}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%3) + 1
	}
	xPlain := make([]float64, n)
	plain, errPlain := GMRES(op, xPlain, b, 25, 1e-10, 4000, nil)
	xJac := make([]float64, n)
	jac, errJac := GMRES(op, xJac, b, 25, 1e-10, 4000, NewJacobi(m))
	if errJac != nil {
		t.Fatalf("preconditioned GMRES failed: %v", errJac)
	}
	if errPlain == nil && jac.Iterations >= plain.Iterations {
		t.Errorf("Jacobi did not help: %d vs %d iterations", jac.Iterations, plain.Iterations)
	}
	// Verify the preconditioned solution.
	ax := make([]float64, n)
	if err := m.MulVec(ax, xJac); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-6*(1+math.Abs(b[i])) {
			t.Fatalf("residual at %d", i)
		}
	}
}

func TestGMRESOnDLR1Block(t *testing.T) {
	// The real use case: a (scaled-down) nonsymmetric DLR1 CFD system
	// solved with Jacobi-preconditioned GMRES.
	m := matgen.DLR1(0.01, 4)
	n := m.NRows
	op := CSROperator{M: m}
	want := make([]float64, n)
	for i := range want {
		want[i] = 1 + math.Cos(0.01*float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	if _, err := GMRES(op, x, b, 40, 1e-10, 8000, NewJacobi(m)); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], want[i])
		}
	}
}

func TestGMRESValidation(t *testing.T) {
	m := matgen.Stencil2D(4, 4)
	op := CSROperator{M: m}
	b := make([]float64, 16)
	if _, err := GMRES(op, make([]float64, 3), b, 10, 1e-8, 100, nil); err == nil {
		t.Error("bad x size accepted")
	}
	if _, err := GMRES(op, make([]float64, 16), b, 0, 1e-8, 100, nil); err == nil {
		t.Error("restart 0 accepted")
	}
	// Zero RHS: immediate convergence.
	res, err := GMRES(op, make([]float64, 16), b, 10, 1e-8, 100, nil)
	if err != nil || res.Iterations != 0 {
		t.Errorf("zero RHS: %v, %d iterations", err, res.Iterations)
	}
	// Restart larger than n clamps.
	b[0] = 1
	if _, err := GMRES(op, make([]float64, 16), b, 99, 1e-10, 400, nil); err != nil {
		t.Errorf("restart > n: %v", err)
	}
}

func TestGMRESNotConverged(t *testing.T) {
	m := nonsymmetric(200, 5)
	op := CSROperator{M: m}
	b := make([]float64, 200)
	b[0] = 1
	_, err := GMRES(op, make([]float64, 200), b, 5, 1e-14, 3, nil)
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("want ErrNotConverged, got %v", err)
	}
}

func TestJacobiPreconditioner(t *testing.T) {
	coo := matrix.NewCOO[float64](3, 3)
	coo.Add(0, 0, 2)
	coo.Add(1, 1, 4)
	coo.Add(2, 0, 1) // zero diagonal at row 2
	j := NewJacobi(coo.ToCSR())
	z := make([]float64, 3)
	if err := j.ApplySolve(z, []float64{2, 4, 5}); err != nil {
		t.Fatal(err)
	}
	if z[0] != 1 || z[1] != 1 || z[2] != 5 {
		t.Errorf("z = %v", z)
	}
	if err := j.ApplySolve(z, []float64{1}); err == nil {
		t.Error("size mismatch accepted")
	}
	var id IdentityPreconditioner
	if err := id.ApplySolve(z, []float64{7, 8, 9}); err != nil || z[0] != 7 {
		t.Error("identity preconditioner")
	}
}
