package solver

import (
	"math"
	"testing"

	"pjds/internal/core"
	"pjds/internal/gpu"
	"pjds/internal/matgen"
	"pjds/internal/telemetry"
)

// eccAt fires one uncorrectable ECC event at a fixed launch index.
type eccAt struct {
	at     int
	launch int
}

func (f *eccAt) ECCEvent(kernel string) bool {
	l := f.launch
	f.launch++
	return l == f.at
}

// TestECCDegradationBitExact: an uncorrectable ECC error mid-solve
// downgrades the operator from device to host execution, and the CG
// trajectory — iteration count and solution bits — is identical to a
// pure host solve, because both kernels sum rows in stored column
// order.
func TestECCDegradationBitExact(t *testing.T) {
	m := matgen.Stencil2D(20, 20)
	n := m.NRows
	want := make([]float64, n)
	for i := range want {
		want[i] = math.Cos(0.03 * float64(i))
	}
	b := make([]float64, n)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}

	solve := func(op Operator, perm *PermutedPJDS) ([]float64, CGResult) {
		bp := make([]float64, n)
		perm.Enter(bp, b)
		xp := make([]float64, n)
		res, err := CG(op, xp, bp, 1e-11, 5000)
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float64, n)
		perm.Leave(x, xp)
		return x, res
	}

	host, err := NewPermutedPJDS(m, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dev, err := NewDevicePJDS(m, core.Options{}, gpu.TeslaC2070())
	if err != nil {
		t.Fatal(err)
	}
	dev.Opt.Metrics = telemetry.NewRegistry()
	dev.Opt.Plans = gpu.NewPlanCache(0)
	dev.Opt.Faults = &eccAt{at: 3}

	xh, rh := solve(host, host)
	xd, rd := solve(dev, dev.PermutedPJDS)

	if !dev.Degraded || dev.DegradedAt != 3 {
		t.Fatalf("operator not degraded at launch 3: %v at %d", dev.Degraded, dev.DegradedAt)
	}
	if rh.Iterations != rd.Iterations {
		t.Errorf("degraded CG took %d iterations, host %d", rd.Iterations, rh.Iterations)
	}
	for i := range xh {
		if math.Float64bits(xh[i]) != math.Float64bits(xd[i]) {
			t.Fatalf("solutions diverge at %d: %g vs %g", i, xd[i], xh[i])
		}
	}
	// Simulated kernel time stopped accumulating at the ECC hit: only
	// the three healthy device launches contributed.
	if dev.Last == nil || math.Abs(dev.SimSeconds-3*dev.Last.KernelSeconds) > 1e-12 {
		t.Errorf("SimSeconds = %g after degradation", dev.SimSeconds)
	}
	// Applies still counts every application, device or host.
	if dev.Applies != rd.Iterations+1 {
		t.Errorf("Applies = %d, iterations = %d", dev.Applies, rd.Iterations)
	}
}
