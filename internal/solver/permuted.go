package solver

import (
	"fmt"

	"pjds/internal/core"
	"pjds/internal/hostkernel"
	"pjds/internal/matrix"
)

// PermutedPJDS is a square operator that works entirely in the
// pJDS-permuted basis: the matrix is symmetrically permuted by the
// row-length sort (PAPᵀ), stored as pJDS, and every Apply runs the
// pure Listing-2 kernel with no per-iteration gather/scatter. Enter
// and Leave convert vectors between the bases exactly once per solve,
// the usage §II-A prescribes for Krylov methods. Applications run on
// the unrolled hostkernel pJDS kernel (bit-identical to
// MulVecPermuted), so the host path of a solve — including the ECC
// downgrade path of DevicePJDS — gets the fast zero-alloc loop.
type PermutedPJDS struct {
	P *core.PJDS[float64]
	// Perm is the symmetric permutation applied (new → old).
	Perm matrix.Perm
	// K is the host execution kernel behind Apply.
	K *hostkernel.PJDSKernel
}

// NewPermutedPJDS builds the operator for a square matrix. The pJDS
// construction of the symmetrically permuted matrix yields the
// identity row sort (rows are already in descending length order), so
// its kernel needs no further reordering.
func NewPermutedPJDS(m *matrix.CSR[float64], opt core.Options) (*PermutedPJDS, error) {
	if m.NRows != m.NCols {
		return nil, fmt.Errorf("solver: permuted operator needs a square matrix, got %dx%d", m.NRows, m.NCols)
	}
	perm := matrix.SortRowsByLengthDesc(m)
	pm := matrix.PermuteSymmetric(m, perm)
	p, err := core.NewPJDS(pm, opt)
	if err != nil {
		return nil, err
	}
	// pm's rows are already sorted by descending length, so the inner
	// permutation must be the identity; anything else indicates an
	// instability in the sort.
	for i, v := range p.Perm {
		if v != i {
			return nil, fmt.Errorf("solver: internal: non-identity inner permutation at %d", i)
		}
	}
	return &PermutedPJDS{P: p, Perm: perm, K: hostkernel.NewPJDS(p, hostkernel.Options{})}, nil
}

// Dim implements Operator.
func (o *PermutedPJDS) Dim() int { return o.P.N }

// Apply implements Operator in the permuted basis.
func (o *PermutedPJDS) Apply(y, x []float64) error { return o.K.MulVec(y, x) }

// Close releases the kernel's worker pool (safe to omit — a finalizer
// covers abandoned operators).
func (o *PermutedPJDS) Close() { o.K.Close() }

// Enter gathers an original-basis vector into the permuted basis.
func (o *PermutedPJDS) Enter(dst, src []float64) []float64 {
	return matrix.Gather(dst, src, o.Perm)
}

// Leave scatters a permuted-basis vector back to the original basis.
func (o *PermutedPJDS) Leave(dst, src []float64) []float64 {
	return matrix.Scatter(dst, src, o.Perm)
}

// CSROperator adapts a CSR matrix to the Operator interface (the
// reference against which permuted solves are validated).
type CSROperator struct {
	M *matrix.CSR[float64]
}

// Dim implements Operator.
func (o CSROperator) Dim() int { return o.M.NRows }

// Apply implements Operator.
func (o CSROperator) Apply(y, x []float64) error { return o.M.MulVec(y, x) }
