package solver

import (
	"fmt"
	"math"

	"pjds/internal/matrix"
)

// The DLR matrices of the paper are nonsymmetric (adjoint CFD and
// aerodynamic-gradient systems), so the production solver stack needs
// more than CG: this file provides restarted GMRES with right
// preconditioning, plus the Jacobi preconditioner.

// Preconditioner solves z = M⁻¹·r approximately.
type Preconditioner interface {
	ApplySolve(z, r []float64) error
}

// IdentityPreconditioner is the no-op preconditioner.
type IdentityPreconditioner struct{}

// ApplySolve copies r into z.
func (IdentityPreconditioner) ApplySolve(z, r []float64) error {
	copy(z, r)
	return nil
}

// JacobiPreconditioner scales by the inverse diagonal.
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobi extracts the diagonal of m; zero diagonal entries are
// treated as 1 (no scaling).
func NewJacobi(m *matrix.CSR[float64]) *JacobiPreconditioner {
	inv := make([]float64, m.NRows)
	for i := range inv {
		if d := m.At(i, i); d != 0 {
			inv[i] = 1 / d
		} else {
			inv[i] = 1
		}
	}
	return &JacobiPreconditioner{invDiag: inv}
}

// ApplySolve computes z = D⁻¹·r.
func (j *JacobiPreconditioner) ApplySolve(z, r []float64) error {
	if len(z) != len(j.invDiag) || len(r) != len(j.invDiag) {
		return fmt.Errorf("solver: Jacobi size mismatch |z|=%d |r|=%d n=%d", len(z), len(r), len(j.invDiag))
	}
	for i := range r {
		z[i] = j.invDiag[i] * r[i]
	}
	return nil
}

// GMRESResult reports a GMRES solve.
type GMRESResult struct {
	Iterations int // total inner iterations across restarts
	Restarts   int
	Residual   float64 // final true residual norm
	History    []float64
}

// GMRES solves A·x = b with restarted GMRES(m) and right
// preconditioning, starting from the contents of x, until
// ‖b − A·x‖₂ ≤ tol·‖b‖₂ or maxIter total inner iterations. A nil
// preconditioner means identity.
func GMRES(a Operator, x, b []float64, restart int, tol float64, maxIter int, pre Preconditioner, probes ...Probe) (GMRESResult, error) {
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return GMRESResult{}, fmt.Errorf("solver: GMRES size mismatch |x|=%d |b|=%d dim=%d", len(x), len(b), n)
	}
	if restart < 1 {
		return GMRESResult{}, fmt.Errorf("solver: GMRES restart %d < 1", restart)
	}
	if restart > n {
		restart = n
	}
	if pre == nil {
		pre = IdentityPreconditioner{}
	}

	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	res := GMRESResult{}
	r := make([]float64, n)
	w := make([]float64, n)
	z := make([]float64, n)
	// Krylov basis and Hessenberg matrix (column-major H[j] has j+2
	// entries).
	v := make([][]float64, restart+1)
	for i := range v {
		v[i] = make([]float64, n)
	}
	h := make([][]float64, restart)
	cs := make([]float64, restart)
	sn := make([]float64, restart)
	g := make([]float64, restart+1)
	y := make([]float64, restart)

	for res.Iterations < maxIter {
		// Outer (restart) loop: true residual.
		if err := a.Apply(r, x); err != nil {
			return res, err
		}
		for i := range r {
			r[i] = b[i] - r[i]
		}
		beta := Norm2(r)
		res.Residual = beta
		if beta <= tol*bnorm {
			return res, nil
		}
		for i := range r {
			v[0][i] = r[i] / beta
		}
		for i := range g {
			g[i] = 0
		}
		g[0] = beta

		k := 0
		for ; k < restart && res.Iterations < maxIter; k++ {
			res.Iterations++
			// w = A·M⁻¹·v[k]  (right preconditioning).
			if err := pre.ApplySolve(z, v[k]); err != nil {
				return res, err
			}
			if err := a.Apply(w, z); err != nil {
				return res, err
			}
			// Modified Gram-Schmidt.
			h[k] = make([]float64, k+2)
			for j := 0; j <= k; j++ {
				h[k][j] = Dot(w, v[j])
				Axpy(-h[k][j], v[j], w)
			}
			h[k][k+1] = Norm2(w)
			if h[k][k+1] > 1e-300 {
				for i := range w {
					v[k+1][i] = w[i] / h[k][k+1]
				}
			}
			// Apply the accumulated Givens rotations to the new column.
			for j := 0; j < k; j++ {
				t := cs[j]*h[k][j] + sn[j]*h[k][j+1]
				h[k][j+1] = -sn[j]*h[k][j] + cs[j]*h[k][j+1]
				h[k][j] = t
			}
			// New rotation zeroing h[k][k+1].
			denom := math.Hypot(h[k][k], h[k][k+1])
			if denom == 0 {
				cs[k], sn[k] = 1, 0
			} else {
				cs[k] = h[k][k] / denom
				sn[k] = h[k][k+1] / denom
			}
			h[k][k] = cs[k]*h[k][k] + sn[k]*h[k][k+1]
			h[k][k+1] = 0
			g[k+1] = -sn[k] * g[k]
			g[k] = cs[k] * g[k]
			res.History = append(res.History, math.Abs(g[k+1]))
			notify(probes, res.Iterations, math.Abs(g[k+1]))
			if math.Abs(g[k+1]) <= tol*bnorm {
				k++
				break
			}
		}

		// Solve the little triangular system H·y = g.
		for j := k - 1; j >= 0; j-- {
			y[j] = g[j]
			for l := j + 1; l < k; l++ {
				y[j] -= h[l][j] * y[l]
			}
			y[j] /= h[j][j]
		}
		// x += M⁻¹·(V·y).
		for i := range z {
			z[i] = 0
		}
		for j := 0; j < k; j++ {
			Axpy(y[j], v[j], z)
		}
		if err := pre.ApplySolve(w, z); err != nil {
			return res, err
		}
		for i := range x {
			x[i] += w[i]
		}
		res.Restarts++
	}
	// Final true residual.
	if err := a.Apply(r, x); err != nil {
		return res, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	res.Residual = Norm2(r)
	if res.Residual > tol*bnorm {
		return res, fmt.Errorf("%w: GMRES residual %g after %d iterations", ErrNotConverged, res.Residual, res.Iterations)
	}
	return res, nil
}
