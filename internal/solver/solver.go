// Package solver provides the iterative methods the paper motivates
// spMVM with (§I-A: "large eigenvalue problems or extremely sparse
// systems of linear equations"): conjugate gradients, power iteration
// and a Lanczos eigensolver — the "production-grade eigensolver" of
// the paper's outlook. All of them run their whole iteration in the
// pJDS-permuted basis, entering and leaving it exactly once, as §II-A
// prescribes for Krylov subspace methods.
package solver

import (
	"errors"
	"fmt"
	"math"

	"pjds/internal/profiles"
)

// Operator applies a linear map y = A·x; it abstracts over storage
// formats and devices.
type Operator interface {
	Apply(y, x []float64) error
	Dim() int
}

// OperatorFunc adapts a function to the Operator interface.
type OperatorFunc struct {
	N int
	F func(y, x []float64) error
}

// Apply implements Operator.
func (o OperatorFunc) Apply(y, x []float64) error { return o.F(y, x) }

// Dim implements Operator.
func (o OperatorFunc) Dim() int { return o.N }

// ErrNotConverged reports that an iteration hit its limit before
// meeting its tolerance.
var ErrNotConverged = errors.New("solver: not converged")

// Dot returns xᵀy.
func Dot(x, y []float64) float64 {
	s := 0.0
	for i := range x {
		s += x[i] * y[i]
	}
	return s
}

// Norm2 returns ‖x‖₂.
func Norm2(x []float64) float64 { return math.Sqrt(Dot(x, x)) }

// Axpy computes y += a·x.
func Axpy(a float64, x, y []float64) {
	for i := range x {
		y[i] += a * x[i]
	}
}

// Scale multiplies x by a in place.
func Scale(a float64, x []float64) {
	for i := range x {
		x[i] *= a
	}
}

// CGResult reports a conjugate-gradient solve.
type CGResult struct {
	Iterations int
	Residual   float64
	// History holds ‖r‖₂ after every iteration.
	History []float64
}

// CG solves A·x = b for symmetric positive definite A, starting from
// the contents of x, until ‖r‖₂ ≤ tol·‖b‖₂ or maxIter iterations.
// x is updated in place. Probes observe every completed iteration.
func CG(a Operator, x, b []float64, tol float64, maxIter int, probes ...Probe) (CGResult, error) {
	n := a.Dim()
	if len(x) != n || len(b) != n {
		return CGResult{}, fmt.Errorf("solver: CG size mismatch |x|=%d |b|=%d dim=%d", len(x), len(b), n)
	}
	// Re-label the calling goroutine for the duration of the solve
	// (and beyond — sequential stage labeling, not scoped nesting;
	// see internal/profiles).
	profiles.SetPhase(profiles.PhaseSolver)
	r := make([]float64, n)
	if err := a.Apply(r, x); err != nil {
		return CGResult{}, err
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	p := append([]float64(nil), r...)
	ap := make([]float64, n)
	rr := Dot(r, r)
	bnorm := Norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	res := CGResult{}
	for k := 0; k < maxIter; k++ {
		if math.Sqrt(rr) <= tol*bnorm {
			res.Residual = math.Sqrt(rr)
			return res, nil
		}
		if err := a.Apply(ap, p); err != nil {
			return res, err
		}
		pap := Dot(p, ap)
		if pap <= 0 {
			return res, fmt.Errorf("solver: CG operator not positive definite (pᵀAp = %g)", pap)
		}
		alpha := rr / pap
		Axpy(alpha, p, x)
		Axpy(-alpha, ap, r)
		rrNew := Dot(r, r)
		beta := rrNew / rr
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		rr = rrNew
		res.Iterations++
		res.History = append(res.History, math.Sqrt(rr))
		notify(probes, res.Iterations, math.Sqrt(rr))
	}
	res.Residual = math.Sqrt(rr)
	if res.Residual > tol*bnorm {
		return res, fmt.Errorf("%w: CG residual %g after %d iterations", ErrNotConverged, res.Residual, maxIter)
	}
	return res, nil
}

// PowerResult reports a power-iteration run.
type PowerResult struct {
	Eigenvalue float64
	Vector     []float64
	Iterations int
}

// PowerIteration finds the dominant eigenvalue (by magnitude) of a,
// starting from v0 (or a deterministic default when nil). Probes
// observe every step with the eigenvalue change as the residual.
func PowerIteration(a Operator, v0 []float64, tol float64, maxIter int, probes ...Probe) (PowerResult, error) {
	profiles.SetPhase(profiles.PhaseSolver)
	n := a.Dim()
	v := make([]float64, n)
	if v0 != nil {
		if len(v0) != n {
			return PowerResult{}, fmt.Errorf("solver: power iteration |v0|=%d dim=%d", len(v0), n)
		}
		copy(v, v0)
	} else {
		for i := range v {
			v[i] = 1 + 0.001*float64(i%17)
		}
	}
	Scale(1/Norm2(v), v)
	av := make([]float64, n)
	lambda := 0.0
	for k := 0; k < maxIter; k++ {
		if err := a.Apply(av, v); err != nil {
			return PowerResult{}, err
		}
		next := Dot(v, av)
		nv := Norm2(av)
		if nv == 0 {
			return PowerResult{}, fmt.Errorf("solver: power iteration hit the null space")
		}
		for i := range v {
			v[i] = av[i] / nv
		}
		notify(probes, k+1, math.Abs(next-lambda))
		if k > 0 && math.Abs(next-lambda) <= tol*math.Abs(next) {
			return PowerResult{Eigenvalue: next, Vector: v, Iterations: k + 1}, nil
		}
		lambda = next
	}
	return PowerResult{Eigenvalue: lambda, Vector: v, Iterations: maxIter},
		fmt.Errorf("%w: power iteration after %d steps", ErrNotConverged, maxIter)
}

// LanczosResult reports a Lanczos run: the tridiagonal coefficients
// and the Ritz values (eigenvalue estimates).
type LanczosResult struct {
	Alpha, Beta []float64 // tridiagonal diagonal / off-diagonal
	RitzValues  []float64 // ascending
	Steps       int
}

// Lanczos runs k steps of the symmetric Lanczos iteration on a and
// returns the Ritz values of the resulting tridiagonal matrix. Full
// reorthogonalization is applied — at the modest k used here its
// O(k²n) cost is irrelevant and it keeps the Ritz values clean.
func Lanczos(a Operator, k int, v0 []float64) (LanczosResult, error) {
	profiles.SetPhase(profiles.PhaseSolver)
	n := a.Dim()
	if k < 1 {
		return LanczosResult{}, fmt.Errorf("solver: Lanczos with k = %d", k)
	}
	if k > n {
		k = n
	}
	v := make([]float64, n)
	if v0 != nil {
		if len(v0) != n {
			return LanczosResult{}, fmt.Errorf("solver: Lanczos |v0|=%d dim=%d", len(v0), n)
		}
		copy(v, v0)
	} else {
		for i := range v {
			v[i] = math.Sin(float64(i) + 1)
		}
	}
	Scale(1/Norm2(v), v)

	basis := make([][]float64, 0, k)
	var alpha, beta []float64
	w := make([]float64, n)
	for j := 0; j < k; j++ {
		basis = append(basis, append([]float64(nil), v...))
		if err := a.Apply(w, v); err != nil {
			return LanczosResult{}, err
		}
		aj := Dot(v, w)
		alpha = append(alpha, aj)
		// w ← w − αⱼvⱼ − βⱼ₋₁vⱼ₋₁, then full reorthogonalization.
		Axpy(-aj, v, w)
		if j > 0 {
			Axpy(-beta[j-1], basis[j-1], w)
		}
		for _, q := range basis {
			Axpy(-Dot(q, w), q, w)
		}
		bj := Norm2(w)
		if j == k-1 {
			break
		}
		if bj < 1e-14 {
			// Invariant subspace found: stop early.
			break
		}
		beta = append(beta, bj)
		for i := range v {
			v[i] = w[i] / bj
		}
	}
	ritz, err := TridiagEigenvalues(append([]float64(nil), alpha...), append([]float64(nil), beta...))
	if err != nil {
		return LanczosResult{}, err
	}
	return LanczosResult{Alpha: alpha, Beta: beta, RitzValues: ritz, Steps: len(alpha)}, nil
}

// TridiagEigenvalues computes all eigenvalues of the symmetric
// tridiagonal matrix with diagonal d and off-diagonal e (len(e) =
// len(d)−1) with the implicit QL algorithm, returning them ascending.
// d and e are clobbered.
func TridiagEigenvalues(d, e []float64) ([]float64, error) {
	n := len(d)
	if n == 0 {
		return nil, nil
	}
	if len(e) != n-1 {
		return nil, fmt.Errorf("solver: tridiag with |d|=%d |e|=%d", n, len(e))
	}
	// Shift the off-diagonal for the classic indexing.
	ee := make([]float64, n)
	copy(ee, e)
	for l := 0; l < n; l++ {
		for iter := 0; ; iter++ {
			if iter > 50 {
				return nil, fmt.Errorf("solver: QL failed to converge at row %d", l)
			}
			m := l
			for ; m < n-1; m++ {
				dd := math.Abs(d[m]) + math.Abs(d[m+1])
				if math.Abs(ee[m]) <= 1e-18*dd {
					break
				}
			}
			if m == l {
				break
			}
			g := (d[l+1] - d[l]) / (2 * ee[l])
			r := math.Hypot(g, 1)
			g = d[m] - d[l] + ee[l]/(g+math.Copysign(r, g))
			s, c := 1.0, 1.0
			p := 0.0
			for i := m - 1; i >= l; i-- {
				f := s * ee[i]
				b := c * ee[i]
				r = math.Hypot(f, g)
				ee[i+1] = r
				if r == 0 {
					d[i+1] -= p
					ee[m] = 0
					break
				}
				s = f / r
				c = g / r
				g = d[i+1] - p
				r = (d[i]-g)*s + 2*c*b
				p = s * r
				d[i+1] = g + p
				g = c*r - b
			}
			if r == 0 && m-1 >= l {
				continue
			}
			d[l] -= p
			ee[l] = g
			ee[m] = 0
		}
	}
	out := append([]float64(nil), d[:n]...)
	sortFloats(out)
	return out, nil
}

func sortFloats(x []float64) {
	// Insertion sort: the tridiagonal systems here are tiny.
	for i := 1; i < len(x); i++ {
		v := x[i]
		j := i - 1
		for j >= 0 && x[j] > v {
			x[j+1] = x[j]
			j--
		}
		x[j+1] = v
	}
}
