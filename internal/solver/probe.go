package solver

import "pjds/internal/telemetry"

// Probe observes iterative progress: it is called after every
// completed iteration with the 1-based iteration count and the current
// convergence measure (residual norm for linear solvers, eigenvalue
// change for the power iteration).
type Probe func(iteration int, residual float64)

// GaugeProbe returns a Probe publishing progress into reg (nil selects
// telemetry.Default()) as the solver_iterations and solver_residual
// gauges, labelled with the method name plus extras — callers running
// several solves concurrently must pass disambiguating extras (e.g. a
// rank label) so no two solves share a series.
func GaugeProbe(reg *telemetry.Registry, method string, extra ...telemetry.Label) Probe {
	if reg == nil {
		reg = telemetry.Default()
	}
	lbl := append([]telemetry.Label{telemetry.L("method", method)}, extra...)
	reg.Help("solver_iterations", "iterations completed by the most recent solve")
	reg.Help("solver_residual", "current convergence measure of the most recent solve")
	iters := reg.Gauge("solver_iterations", lbl...)
	resid := reg.Gauge("solver_residual", lbl...)
	return func(iteration int, residual float64) {
		iters.Set(float64(iteration))
		resid.Set(residual)
	}
}

// notify fans one observation out to all probes.
func notify(probes []Probe, iteration int, residual float64) {
	for _, p := range probes {
		p(iteration, residual)
	}
}
