package solver

import (
	"errors"
	"math"
	"testing"

	"pjds/internal/matgen"
)

func TestBiCGSTABManufacturedSolution(t *testing.T) {
	m := nonsymmetric(400, 11)
	op := CSROperator{M: m}
	want := make([]float64, 400)
	for i := range want {
		want[i] = 1 + math.Sin(0.03*float64(i))
	}
	b := make([]float64, 400)
	if err := m.MulVec(b, want); err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 400)
	res, err := BiCGSTAB(op, x, b, 1e-12, 4000, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-7 {
			t.Fatalf("x[%d] = %g, want %g (iters %d)", i, x[i], want[i], res.Iterations)
		}
	}
	if len(res.History) == 0 {
		t.Error("no residual history")
	}
}

func TestBiCGSTABAgreesWithGMRES(t *testing.T) {
	m := nonsymmetric(250, 12)
	op := CSROperator{M: m}
	b := make([]float64, 250)
	for i := range b {
		b[i] = float64(i%4) - 1.5
	}
	xb := make([]float64, 250)
	if _, err := BiCGSTAB(op, xb, b, 1e-11, 4000, NewJacobi(m)); err != nil {
		t.Fatal(err)
	}
	xg := make([]float64, 250)
	if _, err := GMRES(op, xg, b, 30, 1e-11, 4000, NewJacobi(m)); err != nil {
		t.Fatal(err)
	}
	for i := range xb {
		if math.Abs(xb[i]-xg[i]) > 1e-6*(1+math.Abs(xg[i])) {
			t.Fatalf("solvers disagree at %d: %g vs %g", i, xb[i], xg[i])
		}
	}
}

func TestBiCGSTABOnSPD(t *testing.T) {
	m := matgen.Stencil2D(25, 25)
	op := CSROperator{M: m}
	b := make([]float64, 625)
	for i := range b {
		b[i] = 1
	}
	x := make([]float64, 625)
	if _, err := BiCGSTAB(op, x, b, 1e-10, 5000, nil); err != nil {
		t.Fatal(err)
	}
	ax := make([]float64, 625)
	if err := m.MulVec(ax, x); err != nil {
		t.Fatal(err)
	}
	for i := range b {
		if math.Abs(ax[i]-b[i]) > 1e-7 {
			t.Fatalf("residual at %d", i)
		}
	}
}

func TestBiCGSTABValidationAndLimits(t *testing.T) {
	m := matgen.Stencil2D(5, 5)
	op := CSROperator{M: m}
	b := make([]float64, 25)
	if _, err := BiCGSTAB(op, make([]float64, 3), b, 1e-8, 10, nil); err == nil {
		t.Error("size mismatch accepted")
	}
	// Zero RHS converges instantly.
	res, err := BiCGSTAB(op, make([]float64, 25), b, 1e-8, 10, nil)
	if err != nil || res.Iterations != 0 {
		t.Errorf("zero RHS: %v / %d iters", err, res.Iterations)
	}
	// Non-convergence sentinel.
	b[0] = 1
	_, err = BiCGSTAB(op, make([]float64, 25), b, 1e-15, 1, nil)
	if !errors.Is(err, ErrNotConverged) {
		t.Errorf("want ErrNotConverged, got %v", err)
	}
}

// TestBiCGSTABConstantMemoryVsGMRES documents the trade: on a system
// where GMRES(10) needs many restarts, BiCGSTAB converges with O(1)
// vectors.
func TestBiCGSTABConstantMemory(t *testing.T) {
	m := nonsymmetric(600, 13)
	op := CSROperator{M: m}
	b := make([]float64, 600)
	for i := range b {
		b[i] = math.Cos(float64(i))
	}
	x := make([]float64, 600)
	res, err := BiCGSTAB(op, x, b, 1e-10, 2000, NewJacobi(m))
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 600 {
		t.Errorf("BiCGSTAB needed %d iterations on a dominant system", res.Iterations)
	}
}
