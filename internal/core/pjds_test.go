package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pjds/internal/matrix"
)

func randomCSR(rows, cols int, density float64, seed int64) *matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := matrix.NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

// fig1Matrix is an 8×8 matrix with strongly varying row lengths in the
// spirit of the worked example of Fig. 1 (the paper's figure is
// schematic; what matters is the derivation sort → pad with br = 4).
func fig1Matrix() *matrix.CSR[float64] {
	d := matrix.DenseFromRows([][]float64{
		{1, 0, 2, 0, 0, 0, 0, 0},
		{0, 3, 0, 0, 0, 0, 0, 0},
		{4, 5, 6, 7, 0, 0, 0, 8},
		{0, 0, 9, 0, 0, 0, 0, 0},
		{0, 1, 0, 2, 3, 0, 0, 0},
		{5, 0, 0, 0, 4, 6, 0, 0},
		{0, 0, 0, 7, 0, 0, 8, 0},
		{9, 8, 0, 0, 0, 7, 6, 5},
	})
	return d.ToCSR()
}

// TestFig1Derivation walks the pJDS construction on the worked example
// with br = 4, checking the sort and pad steps of Fig. 1 explicitly.
func TestFig1Derivation(t *testing.T) {
	m := fig1Matrix()
	p, err := NewPJDS(m, Options{BlockHeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Row lengths: 2,1,5,1,3,3,2,5 → sorted desc (stable): rows 2,7
	// (5), 4,5 (3), 0,6 (2), 1,3 (1).
	wantPerm := matrix.Perm{2, 7, 4, 5, 0, 6, 1, 3}
	for i := range wantPerm {
		if p.Perm[i] != wantPerm[i] {
			t.Fatalf("perm = %v, want %v", p.Perm, wantPerm)
		}
	}
	// Block 0 (sorted rows 0-3, lengths 5,5,3,3) pads to 5;
	// block 1 (lengths 2,2,1,1) pads to 2.
	if got := p.BlockLen(0); got != 5 {
		t.Errorf("block 0 padded length = %d, want 5", got)
	}
	if got := p.BlockLen(1); got != 2 {
		t.Errorf("block 1 padded length = %d, want 2", got)
	}
	// Stored slots: 4·5 + 4·2 = 28; ELLPACK would store 8·5 = 40
	// (ignoring warp-padding of N for this toy).
	if p.StoredElems() != 28 {
		t.Errorf("stored = %d, want 28", p.StoredElems())
	}
	// Column heights: cols 0-1 hold all 8 rows, cols 2-4 hold the
	// first block only.
	wantHeights := []int{8, 8, 4, 4, 4}
	for j, w := range wantHeights {
		if h := p.ColumnHeight(j); h != w {
			t.Errorf("column %d height = %d, want %d", j, h, w)
		}
	}
	// ColStart is the prefix sum of heights (paper's col_start[]).
	wantStart := []int32{0, 8, 16, 20, 24, 28}
	for j, w := range wantStart {
		if p.ColStart[j] != w {
			t.Fatalf("colStart = %v, want %v", p.ColStart, wantStart)
		}
	}
	// Kernel correctness on the example.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	y := make([]float64, 8)
	if err := p.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	ref := make([]float64, 8)
	if err := m.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-ref[i]) > 1e-12 {
			t.Fatalf("y[%d] = %g, want %g", i, y[i], ref[i])
		}
	}
}

func TestPJDSMatchesCRSRandom(t *testing.T) {
	for _, br := range []int{1, 2, 4, 32} {
		for seed := int64(0); seed < 4; seed++ {
			m := randomCSR(100, 80, 0.07, seed)
			p, err := NewPJDS(m, Options{BlockHeight: br})
			if err != nil {
				t.Fatal(err)
			}
			x := make([]float64, 80)
			rng := rand.New(rand.NewSource(seed + 1000))
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			y := make([]float64, 100)
			ref := make([]float64, 100)
			if err := p.MulVec(y, x); err != nil {
				t.Fatal(err)
			}
			if err := m.MulVec(ref, x); err != nil {
				t.Fatal(err)
			}
			for i := range y {
				if math.Abs(y[i]-ref[i]) > 1e-11 {
					t.Fatalf("br=%d seed=%d: y[%d] = %g, want %g", br, seed, i, y[i], ref[i])
				}
			}
		}
	}
}

// Property: for any matrix, pJDS reproduces the CRS spMVM.
func TestPJDSPropertyMatchesCRS(t *testing.T) {
	f := func(seed int64) bool {
		s := seed & 0xffff
		rng := rand.New(rand.NewSource(s))
		rows := 1 + rng.Intn(60)
		cols := 1 + rng.Intn(60)
		m := randomCSR(rows, cols, 0.15, s+1)
		p, err := NewPJDS(m, Options{BlockHeight: 1 + rng.Intn(40)})
		if err != nil {
			return false
		}
		x := make([]float64, cols)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, rows)
		ref := make([]float64, rows)
		if p.MulVec(y, x) != nil || m.MulVec(ref, x) != nil {
			return false
		}
		for i := range y {
			if math.Abs(y[i]-ref[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestExtremeCaseStorage reproduces the §II-A worst-case analysis: one
// fully populated row and a single entry in all others. Plain ELLPACK
// stores N×N elements; pJDS needs only (br+1)·N − br.
func TestExtremeCaseStorage(t *testing.T) {
	const n, br = 256, 32
	coo := matrix.NewCOO[float64](n, n)
	for j := 0; j < n; j++ {
		coo.Add(0, j, 1)
	}
	for i := 1; i < n; i++ {
		coo.Add(i, i, 2)
	}
	m := coo.ToCSR()
	p, err := NewPJDS(m, Options{BlockHeight: br})
	if err != nil {
		t.Fatal(err)
	}
	want := int64((br+1)*n - br)
	if p.StoredElems() != want {
		t.Fatalf("pJDS stores %d, paper formula gives %d", p.StoredElems(), want)
	}
	// ELLPACK comparison: N×N.
	if ell := int64(n) * int64(n); p.StoredElems() >= ell {
		t.Fatalf("pJDS not smaller than ELLPACK: %d vs %d", p.StoredElems(), ell)
	}
}

// TestConstantRowLengthNoOverhead checks the other §II-A limit: with
// constant row length, ELLPACK and pJDS both store exactly N×N^max_nzr
// (no padding overhead at all when N is a multiple of br).
func TestConstantRowLengthNoOverhead(t *testing.T) {
	const n, l = 128, 9
	coo := matrix.NewCOO[float64](n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < l; j++ {
			coo.Add(i, (i+j)%n, float64(j+1))
		}
	}
	p, err := NewPJDS(coo.ToCSR(), Options{BlockHeight: 32})
	if err != nil {
		t.Fatal(err)
	}
	if p.StoredElems() != n*l {
		t.Fatalf("stored = %d, want %d", p.StoredElems(), n*l)
	}
	if p.PaddingOverhead() != 0 {
		t.Fatalf("padding overhead = %g, want 0", p.PaddingOverhead())
	}
}

func TestJDSNoPadding(t *testing.T) {
	m := randomCSR(77, 77, 0.1, 5)
	p, err := NewPJDS(m, Options{BlockHeight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.StoredElems() != int64(m.Nnz()) {
		t.Fatalf("JDS stores %d, want nnz %d", p.StoredElems(), m.Nnz())
	}
	if p.Name() != "JDS" {
		t.Errorf("name = %q", p.Name())
	}
}

func TestPJDSDefaultsAndValidation(t *testing.T) {
	m := randomCSR(10, 10, 0.3, 6)
	p, err := NewPJDS(m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockHeight != DefaultBlockHeight {
		t.Errorf("default block height = %d", p.BlockHeight)
	}
	if p.Name() != "pJDS" {
		t.Errorf("name = %q", p.Name())
	}
	if _, err := NewPJDS(m, Options{BlockHeight: -3}); err == nil {
		t.Error("negative block height accepted")
	}
}

func TestPJDSShapeErrors(t *testing.T) {
	m := randomCSR(8, 6, 0.4, 7)
	p, err := NewPJDS(m, Options{BlockHeight: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.MulVec(make([]float64, 8), make([]float64, 5)); err == nil {
		t.Error("wrong x size accepted")
	}
	if err := p.MulVec(make([]float64, 7), make([]float64, 6)); err == nil {
		t.Error("wrong y size accepted")
	}
	if err := p.MulVecPermuted(make([]float64, 7), make([]float64, 6)); err == nil {
		t.Error("short yp accepted")
	}
}

func TestPJDSEmptyAndTinyMatrices(t *testing.T) {
	empty := matrix.NewCOO[float64](0, 0).ToCSR()
	p, err := NewPJDS(empty, Options{BlockHeight: 32})
	if err != nil {
		t.Fatal(err)
	}
	if p.StoredElems() != 0 || p.MaxRowLen != 0 {
		t.Errorf("empty pJDS stored=%d max=%d", p.StoredElems(), p.MaxRowLen)
	}
	if err := p.MulVec(nil, nil); err != nil {
		t.Errorf("empty MulVec: %v", err)
	}

	// All-zero matrix with rows.
	zero := matrix.NewCOO[float64](5, 5).ToCSR()
	pz, err := NewPJDS(zero, Options{BlockHeight: 2})
	if err != nil {
		t.Fatal(err)
	}
	y := []float64{9, 9, 9, 9, 9}
	if err := pz.MulVec(y, make([]float64, 5)); err != nil {
		t.Fatal(err)
	}
	for i, v := range y {
		if v != 0 {
			t.Fatalf("y[%d] = %g, want 0", i, v)
		}
	}
}

func TestPJDSSingleRow(t *testing.T) {
	coo := matrix.NewCOO[float64](1, 4)
	coo.Add(0, 1, 2)
	coo.Add(0, 3, 5)
	p, err := NewPJDS(coo.ToCSR(), Options{BlockHeight: 32})
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 1)
	if err := p.MulVec(y, []float64{1, 10, 100, 1000}); err != nil {
		t.Fatal(err)
	}
	if y[0] != 5020 {
		t.Fatalf("y = %g, want 5020", y[0])
	}
	// Stored: one block of 32 rows padded to length 2 = 64 slots.
	if p.StoredElems() != 64 {
		t.Errorf("stored = %d, want 64", p.StoredElems())
	}
}

func TestPaddingOverheadSmallForRealisticBr(t *testing.T) {
	// A matrix with smoothly varying row lengths (like the paper's
	// test set) should have tiny padding overhead at br=32: within a
	// block of 32 sorted rows lengths barely differ.
	rng := rand.New(rand.NewSource(42))
	const n = 8192
	coo := matrix.NewCOO[float64](n, n)
	for i := 0; i < n; i++ {
		l := 5 + rng.Intn(30)
		for j := 0; j < l; j++ {
			coo.Add(i, rng.Intn(n), rng.Float64()+0.1)
		}
	}
	m := coo.ToCSR()
	p, err := NewPJDS(m, Options{BlockHeight: 32})
	if err != nil {
		t.Fatal(err)
	}
	if ov := p.PaddingOverhead(); ov > 0.01 {
		t.Errorf("padding overhead %.4f > 1%%", ov)
	}
}

func TestRowPermAndFootprint(t *testing.T) {
	m := randomCSR(50, 50, 0.1, 9)
	p, err := NewPJDS(m, Options{BlockHeight: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !p.RowPerm().Valid() {
		t.Error("invalid row permutation")
	}
	// DP footprint: stored*(8+4) + colStart + rowLen + perm.
	want := p.StoredElems()*12 + int64(len(p.ColStart))*4 + int64(len(p.RowLen))*4 + int64(len(p.Perm))*4
	if p.FootprintBytes() != want {
		t.Errorf("footprint = %d, want %d", p.FootprintBytes(), want)
	}
}

func TestSizeofElem(t *testing.T) {
	if SizeofElem[float32]() != 4 {
		t.Error("float32 width")
	}
	if SizeofElem[float64]() != 8 {
		t.Error("float64 width")
	}
}

func TestPJDSSinglePrecision(t *testing.T) {
	md := randomCSR(60, 60, 0.1, 11)
	ms := matrix.Convert[float32](md)
	p, err := NewPJDS(ms, Options{BlockHeight: 32})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float32, 60)
	for i := range x {
		x[i] = float32(i%7) - 3
	}
	y := make([]float32, 60)
	ref := make([]float32, 60)
	if err := p.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	if err := ms.MulVec(ref, x); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(float64(y[i]-ref[i])) > 1e-4 {
			t.Fatalf("SP y[%d] = %g, want %g", i, y[i], ref[i])
		}
	}
}
