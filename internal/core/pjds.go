// Package core implements the paper's primary contribution: the
// "padded Jagged Diagonals Storage" (pJDS) sparse-matrix format of
// Kreutzer et al. (IPDPS 2012), §II-A.
//
// The format is derived from a matrix in three steps (Fig. 1):
//
//  1. compress — shift the non-zeros of every row to the left, as in
//     ELLPACK;
//  2. sort — reorder rows by descending number of non-zeros (the
//     jagged-diagonals idea), remembering the permutation;
//  3. pad — group blocks of br consecutive sorted rows (br should be
//     the warp size) and pad every row in a block to the longest row
//     of that block.
//
// The padded columns are then stored consecutively, column by column,
// and a small col_start array of N^max_nzr offsets locates each
// column. Because rows are sorted, the rows participating in column j
// form a prefix of the sorted row order, so the kernel of the paper's
// Listing 2 addresses element (i, j) as val[col_start[j]+i] — the same
// shape as the ELLPACK-R kernel, but without loading padding from rows
// much longer than row i's block.
//
// The spMVM operates in the permuted basis. MulVecPermuted is the raw
// kernel; MulVec wraps it with the gather/scatter so callers that do
// not manage the permutation themselves still get correct results, at
// the cost the paper describes (permutation only pays off when done
// once around an entire iterative solve).
package core

import (
	"fmt"

	"pjds/internal/matrix"
)

// DefaultBlockHeight is the paper's choice of br: the warp size of the
// Fermi GPUs used in the evaluation.
const DefaultBlockHeight = 32

// Options configure pJDS construction.
type Options struct {
	// BlockHeight is the paper's br, the number of consecutive sorted
	// rows padded to a common length. It should equal the device warp
	// size; 0 selects DefaultBlockHeight. BlockHeight 1 degenerates to
	// the classic (unpadded) JDS format.
	BlockHeight int
	// Convert carries the parallel-construction knobs (worker count,
	// scratch arena, phase timer). The zero value is sequential-default
	// and uninstrumented; every worker count builds a bit-identical
	// PJDS.
	Convert matrix.ConvertOptions
}

// PJDS is a padded-jagged-diagonals-storage matrix. All slices are
// exported so device kernels (internal/gpu) can address them directly,
// as CUDA kernels would.
type PJDS[T matrix.Float] struct {
	N     int // rows of the original matrix (before warp padding)
	NCols int
	NPad  int // N rounded up to a multiple of BlockHeight
	// Nnz is the number of genuine non-zeros (excluding padding).
	Nnz int
	// MaxRowLen is the paper's N^max_nzr.
	MaxRowLen int
	// BlockHeight is br.
	BlockHeight int

	// Val and ColIdx hold the padded jagged diagonals, column by
	// column. Column j occupies Val[ColStart[j]:ColStart[j+1]]; within
	// a column, entry i belongs to sorted row i. Padding entries have
	// value 0 and a column index pointing at the row's own diagonal
	// position clamped into range, so gathering them is always legal.
	Val    []T
	ColIdx []int32
	// ColStart has MaxRowLen+1 entries; ColStart[j] is the offset of
	// padded column j (the paper's col_start[], with one extra entry
	// so column heights are recoverable).
	ColStart []int32
	// RowLen[i] is the true (unpadded) length of sorted row i, the
	// paper's rowmax[] in Listing 2.
	RowLen []int32
	// Perm maps sorted row index to original row index (Perm[new]=old).
	Perm matrix.Perm
}

// NewPJDS builds the pJDS representation of m. The matrix may be
// rectangular; rows are sorted globally by descending length as in the
// paper.
func NewPJDS[T matrix.Float](m *matrix.CSR[T], opt Options) (*PJDS[T], error) {
	br := opt.BlockHeight
	if br == 0 {
		br = DefaultBlockHeight
	}
	if br < 1 {
		return nil, fmt.Errorf("core: block height %d < 1", br)
	}

	cv := opt.Convert
	perm := matrix.SortRowsByLengthDescOpt(m, cv)
	n := m.NRows
	npad := ((n + br - 1) / br) * br

	p := &PJDS[T]{
		N:           n,
		NCols:       m.NCols,
		NPad:        npad,
		Nnz:         m.Nnz(),
		BlockHeight: br,
		RowLen:      make([]int32, npad),
		Perm:        perm,
	}

	donePad := cv.Phase("pjds-pad")
	// Padded length of every (sorted) row: the longest true length in
	// its block. Because rows are sorted descending, that is the
	// length of the first row of the block. Both loops write disjoint
	// index blocks, so the parallel result is identical to sequential.
	padLen := cv.Arena.Int32(npad)
	cv.Run(n, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			p.RowLen[i] = int32(m.RowLen(perm[i]))
		}
	})
	nBlocks := npad / br
	cv.Run(nBlocks, func(w, lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			b := bi * br
			blockLen := int32(0)
			if b < n {
				blockLen = p.RowLen[b]
			}
			for i := b; i < b+br; i++ {
				padLen[i] = blockLen
			}
		}
	})
	if n > 0 {
		p.MaxRowLen = int(padLen[0])
	}

	// Column heights: column j holds every row with padLen > j. Rows
	// are sorted, so these are a prefix; height(j) = count of rows
	// with padLen[i] > j.
	p.ColStart = make([]int32, p.MaxRowLen+1)
	// height(j) is computed from the padded-length histogram: it
	// decreases as j passes each block's padded length.
	heights := cv.Arena.Int32(p.MaxRowLen)
	histo := cv.Arena.Int32(p.MaxRowLen + 1)
	for _, l := range padLen {
		histo[l]++
	}
	running := int32(npad)
	for j := 0; j < p.MaxRowLen; j++ {
		running -= histo[j] // rows whose padded length is exactly j end before column j
		heights[j] = running
	}
	total := int32(0)
	for j := 0; j < p.MaxRowLen; j++ {
		p.ColStart[j] = total
		total += heights[j]
	}
	p.ColStart[p.MaxRowLen] = total
	donePad()

	doneFill := cv.Phase("pjds-fill")
	p.Val = make([]T, total)
	p.ColIdx = make([]int32, total)

	// Fill: walk every sorted row, write its entries into its slots of
	// each column; pad the remainder of the padded length with zeros
	// whose column index is a safe in-range gather target. Row i only
	// writes slots ColStart[j]+i, so rows are independent and the loop
	// parallelizes without changing a single byte of the output.
	cv.Run(npad, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			var cols []int32
			var vals []T
			if i < n {
				cols, vals = m.Row(perm[i])
			}
			safe := int32(0)
			if len(cols) > 0 {
				safe = cols[0]
			}
			pl := int(padLen[i])
			for j := 0; j < pl; j++ {
				at := int(p.ColStart[j]) + i
				if j < len(cols) {
					p.Val[at] = vals[j]
					p.ColIdx[at] = cols[j]
				} else {
					p.Val[at] = 0
					p.ColIdx[at] = safe
				}
			}
		}
	})
	doneFill()
	return p, nil
}

// Name identifies the format in reports.
func (p *PJDS[T]) Name() string {
	if p.BlockHeight == 1 {
		return "JDS"
	}
	return "pJDS"
}

// Rows returns the row count of the original matrix.
func (p *PJDS[T]) Rows() int { return p.N }

// Cols returns the column count of the original matrix.
func (p *PJDS[T]) Cols() int { return p.NCols }

// NonZeros returns the number of genuine non-zeros.
func (p *PJDS[T]) NonZeros() int { return p.Nnz }

// StoredElems returns the number of stored value slots including
// padding — the quantity Table I's data-reduction row compares against
// ELLPACK.
func (p *PJDS[T]) StoredElems() int64 { return int64(len(p.Val)) }

// FootprintBytes returns the device-memory footprint: values, column
// indices, the col_start array, the row-length array, and the
// permutation (needed on the device to leave the permuted basis).
func (p *PJDS[T]) FootprintBytes() int64 {
	valBytes := int64(SizeofElem[T]())
	return int64(len(p.Val))*(valBytes+4) + // val + col_idx
		int64(len(p.ColStart))*4 +
		int64(len(p.RowLen))*4 +
		int64(len(p.Perm))*4
}

// PaddingOverhead returns stored/Nnz − 1, the fraction of wasted
// slots. The paper reports < 0.01% for its matrices at br = 32
// (wording: overhead "compared to a minimum implementation").
func (p *PJDS[T]) PaddingOverhead() float64 {
	if p.Nnz == 0 {
		return 0
	}
	return float64(p.StoredElems()-int64(p.Nnz)) / float64(p.Nnz)
}

// RowPerm returns the sorting permutation (new → old).
func (p *PJDS[T]) RowPerm() matrix.Perm { return p.Perm }

// MulVecPermuted computes yp = Ap·xp entirely in the permuted basis:
// xp must be the column-space vector (unpermuted for rectangular
// matrices; for the symmetric-permutation use of square solvers, pass
// the gathered vector) and yp receives sorted-row results. It is the
// Go rendering of the paper's Listing 2.
func (p *PJDS[T]) MulVecPermuted(yp, xp []T) error {
	if len(xp) != p.NCols || len(yp) < p.N {
		return fmt.Errorf("core: MulVecPermuted |x|=%d |y|=%d on %dx%d: %w", len(xp), len(yp), p.N, p.NCols, matrix.ErrShape)
	}
	for i := 0; i < p.N; i++ {
		var sum T
		for j := 0; j < int(p.RowLen[i]); j++ {
			off := int(p.ColStart[j]) + i
			sum += p.Val[off] * xp[p.ColIdx[off]]
		}
		yp[i] = sum
	}
	return nil
}

// MulVec computes y = A·x in the original row order, scattering the
// permuted result back. Iterative solvers should instead permute once
// and use MulVecPermuted inside the loop (§II-A).
func (p *PJDS[T]) MulVec(y, x []T) error {
	if len(x) != p.NCols || len(y) != p.N {
		return fmt.Errorf("core: MulVec |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), p.N, p.NCols, matrix.ErrShape)
	}
	yp := make([]T, p.N)
	if err := p.MulVecPermuted(yp, x); err != nil {
		return err
	}
	matrix.Scatter(y, yp, p.Perm)
	return nil
}

// BlockCount returns the number of br-row blocks (including the final
// padded block).
func (p *PJDS[T]) BlockCount() int { return p.NPad / p.BlockHeight }

// BlockLen returns the padded row length of block b.
func (p *PJDS[T]) BlockLen(b int) int {
	i := b * p.BlockHeight
	if i >= p.N {
		return 0
	}
	return int(p.RowLen[i]) // first row of a block is its longest
}

// ColumnHeight returns the number of rows stored in padded column j.
func (p *PJDS[T]) ColumnHeight(j int) int {
	return int(p.ColStart[j+1] - p.ColStart[j])
}

// SizeofElem reports the byte width of the element type: 4 for
// float32 (SP), 8 for float64 (DP).
func SizeofElem[T matrix.Float]() int {
	var v T
	switch any(v).(type) {
	case float32:
		return 4
	default:
		return 8
	}
}
