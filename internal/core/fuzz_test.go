package core

import (
	"math"
	"testing"

	"pjds/internal/matrix"
)

// FuzzPJDSConstruction drives the pJDS builder with fuzzer-shaped
// matrices (dimensions, block height and a raw byte stream that
// decides the sparsity pattern) and checks the format's invariants and
// the kernel against the CRS reference.
func FuzzPJDSConstruction(f *testing.F) {
	f.Add(uint8(8), uint8(8), uint8(4), []byte{0x11, 0x22, 0x33})
	f.Add(uint8(1), uint8(1), uint8(32), []byte{})
	f.Add(uint8(64), uint8(3), uint8(1), []byte{0xff, 0x00, 0xff})
	f.Fuzz(func(t *testing.T, rows, cols, br uint8, pattern []byte) {
		n := int(rows)%64 + 1
		c := int(cols)%64 + 1
		bh := int(br)%40 + 1
		coo := matrix.NewCOO[float64](n, c)
		for k, b := range pattern {
			if k >= 4*n {
				break
			}
			i := (k * 7 % n)
			j := int(b) % c
			coo.Add(i, j, float64(b)/16+0.25)
		}
		m := coo.ToCSR()
		p, err := NewPJDS(m, Options{BlockHeight: bh})
		if err != nil {
			t.Fatalf("construction failed on valid input: %v", err)
		}
		// Invariants.
		if !p.Perm.Valid() {
			t.Fatal("invalid permutation")
		}
		if p.StoredElems() < int64(m.Nnz()) {
			t.Fatal("stored fewer than nnz")
		}
		for j := 0; j+1 < len(p.ColStart); j++ {
			if p.ColStart[j] > p.ColStart[j+1] {
				t.Fatal("col_start not monotone")
			}
		}
		for i := 1; i < p.N; i++ {
			if p.RowLen[i] > p.RowLen[i-1] {
				t.Fatal("row lengths not sorted")
			}
		}
		// Kernel vs CRS.
		x := make([]float64, c)
		for i := range x {
			x[i] = float64(i%5) - 2
		}
		y := make([]float64, n)
		ref := make([]float64, n)
		if err := p.MulVec(y, x); err != nil {
			t.Fatal(err)
		}
		if err := m.MulVec(ref, x); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Abs(y[i]-ref[i]) > 1e-9*(1+math.Abs(ref[i])) {
				t.Fatalf("kernel mismatch at %d", i)
			}
		}
	})
}
