package core

import "testing"

func benchSetup(b *testing.B) (*PJDS[float64], []float64, []float64) {
	b.Helper()
	m := randomCSR(3000, 3000, 0.01, 1)
	p, err := NewPJDS(m, Options{})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i % 13)
	}
	return p, make([]float64, p.NPad), x
}

// BenchmarkNewPJDS measures the one-off conversion cost (sort + pad +
// column assembly), which iterative solvers amortize over the run.
func BenchmarkNewPJDS(b *testing.B) {
	m := randomCSR(3000, 3000, 0.01, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPJDS(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPJDSMulVecPermuted is the hot loop of Listing 2 on the
// host (functional kernel, no device timing).
func BenchmarkPJDSMulVecPermuted(b *testing.B) {
	p, yp, x := benchSetup(b)
	b.SetBytes(int64(p.Nnz) * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MulVecPermuted(yp, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPJDSMulVec includes the scatter back to the original basis
// (what naive per-call use costs vs staying permuted, §II-A).
func BenchmarkPJDSMulVec(b *testing.B) {
	p, _, x := benchSetup(b)
	y := make([]float64, p.N)
	b.SetBytes(int64(p.Nnz) * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MulVec(y, x); err != nil {
			b.Fatal(err)
		}
	}
}
