package core

import (
	"fmt"
	"testing"

	"pjds/internal/matrix"
)

func benchSetup(b *testing.B) (*PJDS[float64], []float64, []float64) {
	b.Helper()
	m := randomCSR(3000, 3000, 0.01, 1)
	p, err := NewPJDS(m, Options{})
	if err != nil {
		b.Fatal(err)
	}
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = float64(i % 13)
	}
	return p, make([]float64, p.NPad), x
}

// BenchmarkNewPJDS measures the one-off conversion cost (sort + pad +
// column assembly), which iterative solvers amortize over the run.
func BenchmarkNewPJDS(b *testing.B) {
	m := randomCSR(3000, 3000, 0.01, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewPJDS(m, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewPJDSWorkers measures the parallel build (histogram sort
// + block padding + column fill) across worker counts, plus the
// arena-backed sweep variant.
func BenchmarkNewPJDSWorkers(b *testing.B) {
	m := randomCSR(3000, 3000, 0.01, 1)
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := Options{Convert: matrix.ConvertOptions{Workers: w, ForceParallel: true}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := NewPJDS(m, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("workers=4/arena", func(b *testing.B) {
		arena := matrix.NewArena()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			arena.Reset()
			if _, err := NewPJDS(m, Options{Convert: matrix.ConvertOptions{Workers: 4, Arena: arena, ForceParallel: true}}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPJDSMulVecPermuted is the hot loop of Listing 2 on the
// host (functional kernel, no device timing).
func BenchmarkPJDSMulVecPermuted(b *testing.B) {
	p, yp, x := benchSetup(b)
	b.SetBytes(int64(p.Nnz) * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MulVecPermuted(yp, x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPJDSMulVec includes the scatter back to the original basis
// (what naive per-call use costs vs staying permuted, §II-A).
func BenchmarkPJDSMulVec(b *testing.B) {
	p, _, x := benchSetup(b)
	y := make([]float64, p.N)
	b.SetBytes(int64(p.Nnz) * 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.MulVec(y, x); err != nil {
			b.Fatal(err)
		}
	}
}
