package core

import (
	"reflect"
	"testing"

	"pjds/internal/matrix"
)

// TestNewPJDSWorkerDeterminism is the tentpole guarantee for the
// format build: the parallel pad/fill must produce a structure that is
// reflect.DeepEqual (so bit-identical) to the sequential one for every
// worker count, for both pJDS (br=32) and plain JDS (br=1).
func TestNewPJDSWorkerDeterminism(t *testing.T) {
	m := randomCSR(500, 300, 0.03, 77)
	for _, br := range []int{1, 32} {
		base, err := NewPJDS(m, Options{BlockHeight: br, Convert: matrix.ConvertOptions{Workers: 1}})
		if err != nil {
			t.Fatal(err)
		}
		for w := 1; w <= 8; w++ {
			got, err := NewPJDS(m, Options{BlockHeight: br, Convert: matrix.ConvertOptions{Workers: w, ForceParallel: true}})
			if err != nil {
				t.Fatalf("br=%d workers=%d: %v", br, w, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Fatalf("br=%d workers=%d: pJDS differs from sequential build", br, w)
			}
		}
	}
}

// TestNewPJDSArenaReuse runs a block-height sweep through a shared
// arena the way the ablation harness does: every iteration must still
// match a fresh sequential build.
func TestNewPJDSArenaReuse(t *testing.T) {
	m := randomCSR(300, 200, 0.04, 5)
	arena := matrix.NewArena()
	for iter := 0; iter < 3; iter++ {
		for _, br := range []int{1, 4, 32} {
			arena.Reset()
			want, err := NewPJDS(m, Options{BlockHeight: br})
			if err != nil {
				t.Fatal(err)
			}
			got, err := NewPJDS(m, Options{BlockHeight: br, Convert: matrix.ConvertOptions{Workers: 3, Arena: arena, ForceParallel: true}})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("iter=%d br=%d: arena-built pJDS differs", iter, br)
			}
		}
	}
}
