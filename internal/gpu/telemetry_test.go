package gpu

import (
	"math"
	"testing"

	"pjds/internal/formats"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// TestKernelTelemetryMatchesStats is the acceptance cross-check: every
// counter the kernel publishes must equal the corresponding KernelStats
// field exactly, and the derived gauges must agree (GF/s to 1e-9
// relative).
func TestKernelTelemetryMatchesStats(t *testing.T) {
	m := bandedCSR(512, 4, 24, 7)
	x := randVec(m.NCols, 3)
	y := make([]float64, m.NRows)
	reg := telemetry.NewRegistry()
	st, err := RunELLPACKR(TeslaC2070(), formats.NewELLPACKR(m), y, x, RunOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	lbl := []telemetry.Label{telemetry.L("kernel", st.Kernel), telemetry.L("device", st.Device)}

	counters := []struct {
		name string
		want float64
	}{
		{"gpu_kernel_runs_total", 1},
		{"gpu_kernel_rows_total", float64(st.Rows)},
		{"gpu_kernel_nnz_total", float64(st.Nnz)},
		{"gpu_kernel_useful_flops_total", float64(st.UsefulFlops)},
		{"gpu_kernel_lane_steps_total", float64(st.ExecutedLaneSteps)},
		{"gpu_kernel_warp_steps_total", float64(st.WarpSteps)},
		{"gpu_kernel_warps_total", float64(st.Warps)},
		{"gpu_kernel_active_warps_total", float64(st.ActiveWarps)},
		{"gpu_kernel_rhs_probes_total", float64(st.RHSProbes)},
		{"gpu_kernel_rhs_misses_total", float64(st.RHSMisses)},
	}
	for _, c := range counters {
		if got := reg.Counter(c.name, lbl...).Value(); got != c.want {
			t.Errorf("%s = %g, want %g", c.name, got, c.want)
		}
	}
	for stream, want := range map[string]int64{
		"val": st.BytesVal, "idx": st.BytesIdx, "rhs": st.BytesRHS,
		"lhs": st.BytesLHS, "meta": st.BytesMeta,
	} {
		got := reg.Counter("gpu_kernel_bytes_total",
			append([]telemetry.Label{telemetry.L("stream", stream)}, lbl...)...).Value()
		if got != float64(want) {
			t.Errorf("gpu_kernel_bytes_total{stream=%s} = %g, want %d", stream, got, want)
		}
	}
	gauges := []struct {
		name string
		want float64
	}{
		{"gpu_kernel_code_balance", st.CodeBalance},
		{"gpu_kernel_alpha", st.Alpha},
		{"gpu_kernel_coalescing_efficiency", st.CoalescingEfficiency},
		{"gpu_kernel_l2_hit_rate", st.L2HitRate},
		{"gpu_kernel_lane_efficiency", st.LaneEfficiency},
	}
	for _, g := range gauges {
		if got := reg.Gauge(g.name, lbl...).Value(); got != g.want {
			t.Errorf("%s = %g, want %g", g.name, got, g.want)
		}
	}
	gf := reg.Gauge("gpu_kernel_gflops", lbl...).Value()
	if math.Abs(gf-st.GFlops) > 1e-9*math.Abs(st.GFlops) {
		t.Errorf("gpu_kernel_gflops = %g, stats %g", gf, st.GFlops)
	}
	if st.GFlops <= 0 || st.KernelSeconds <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
}

// TestKernelStatsZeroNnz runs a kernel over an empty matrix: every
// derived quantity must stay finite (no 0/0), and the structural
// edge values must hold.
func TestKernelStatsZeroNnz(t *testing.T) {
	m := matrix.NewCOO[float64](64, 64).ToCSR()
	x := make([]float64, 64)
	y := make([]float64, 64)
	reg := telemetry.NewRegistry()
	st, err := RunELLPACKR(TeslaC2070(), formats.NewELLPACKR(m), y, x, RunOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if st.Nnz != 0 || st.UsefulFlops != 0 {
		t.Fatalf("empty matrix has nnz %d", st.Nnz)
	}
	if st.ActiveWarps != 0 {
		t.Errorf("ActiveWarps = %d on all-empty rows", st.ActiveWarps)
	}
	if st.CoalescingEfficiency != 0 {
		t.Errorf("CoalescingEfficiency = %g with no val/idx traffic", st.CoalescingEfficiency)
	}
	for name, v := range map[string]float64{
		"CodeBalance":    st.CodeBalance,
		"Alpha":          st.Alpha,
		"L2HitRate":      st.L2HitRate,
		"LaneEfficiency": st.LaneEfficiency,
		"GFlops":         st.GFlops,
		"KernelSeconds":  st.KernelSeconds,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %g on zero-nnz kernel", name, v)
		}
	}
	// Telemetry must mirror the zeros, not invent traffic.
	lbl := []telemetry.Label{telemetry.L("kernel", st.Kernel), telemetry.L("device", st.Device)}
	if got := reg.Counter("gpu_kernel_nnz_total", lbl...).Value(); got != 0 {
		t.Errorf("gpu_kernel_nnz_total = %g", got)
	}
	if got := reg.Counter("gpu_kernel_runs_total", lbl...).Value(); got != 1 {
		t.Errorf("gpu_kernel_runs_total = %g", got)
	}
}

// TestKernelStatsEmptyWarpTail checks the partially-empty-warp case: a
// matrix whose rows beyond the first warp are all empty must report
// exactly one active warp and finite derived quantities.
func TestKernelStatsEmptyWarpTail(t *testing.T) {
	coo := matrix.NewCOO[float64](512, 512)
	for i := 0; i < 16; i++ { // only the first half-warp has entries
		coo.Add(i, i, 1.0)
	}
	m := coo.ToCSR()
	x := make([]float64, 512)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, 512)
	st, err := RunELLPACKR(TeslaC2070(), formats.NewELLPACKR(m), y, x, RunOptions{Metrics: telemetry.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if st.ActiveWarps != 1 {
		t.Errorf("ActiveWarps = %d, want 1", st.ActiveWarps)
	}
	if st.Warps <= st.ActiveWarps {
		t.Errorf("Warps = %d not above ActiveWarps", st.Warps)
	}
	if math.IsNaN(st.CodeBalance) || math.IsInf(st.CodeBalance, 0) {
		t.Errorf("CodeBalance = %g", st.CodeBalance)
	}
	if st.CoalescingEfficiency <= 0 || st.CoalescingEfficiency > 1 {
		t.Errorf("CoalescingEfficiency = %g outside (0,1]", st.CoalescingEfficiency)
	}
	if st.LaneEfficiency <= 0 || st.LaneEfficiency > 1 {
		t.Errorf("LaneEfficiency = %g outside (0,1]", st.LaneEfficiency)
	}
}
