package gpu_test

import (
	"fmt"
	"math/rand"
	"testing"

	"pjds/internal/core"
	"pjds/internal/experiments"
	"pjds/internal/formats"
	"pjds/internal/gpu"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// largestTable1 returns the largest (by non-zeros) Table I matrix at
// the benchmark scale (PJDS_SCALE, default 0.1) — the workload the
// acceptance criteria measure the worker-pool speedup on.
func largestTable1(b *testing.B) *matrix.CSR[float64] {
	b.Helper()
	var best *matrix.CSR[float64]
	for _, name := range experiments.Table1Matrices() {
		m, err := experiments.Matrix(name, experiments.ScaleFromEnv())
		if err != nil {
			b.Fatal(err)
		}
		if best == nil || m.Nnz() > best.Nnz() {
			best = m
		}
	}
	return best
}

func benchVec(n int) []float64 {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// benchWorkers runs one kernel replay per iteration at each worker
// count, against a pre-compiled plan (the cache is warmed before the
// timer starts, so compile time is excluded — that is what
// BenchmarkPlanCompile measures).
func benchWorkers(b *testing.B, rows int, run func(y []float64, opt gpu.RunOptions) error) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			opt := gpu.RunOptions{
				Workers: w,
				Plans:   gpu.NewPlanCache(0),
				Metrics: telemetry.NewRegistry(),
			}
			y := make([]float64, rows)
			if err := run(y, opt); err != nil { // warm the plan cache
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := run(y, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRunPJDS measures the pJDS kernel replay on the largest
// Table I matrix across worker counts (the acceptance-criteria
// benchmark: compare workers=4 against workers=1).
func BenchmarkRunPJDS(b *testing.B) {
	m := largestTable1(b)
	p, err := core.NewPJDS(m, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	d := gpu.TeslaC2070()
	x := benchVec(m.NCols)
	b.Logf("matrix: %dx%d, %d nnz", m.NRows, m.NCols, m.Nnz())
	benchWorkers(b, m.NRows, func(y []float64, opt gpu.RunOptions) error {
		_, err := gpu.RunPJDS(d, p, y, x, opt)
		return err
	})
}

// BenchmarkRunELLPACKR measures the ELLPACK-R kernel replay on the
// same matrix across worker counts.
func BenchmarkRunELLPACKR(b *testing.B) {
	m := largestTable1(b)
	e := formats.NewELLPACKR(m)
	d := gpu.TeslaC2070()
	x := benchVec(m.NCols)
	benchWorkers(b, m.NRows, func(y []float64, opt gpu.RunOptions) error {
		_, err := gpu.RunELLPACKR(d, e, y, x, opt)
		return err
	})
}

// BenchmarkPlanCompile quantifies what the plan cache amortizes: the
// "compile" variant pays the full coalescing/L2 analysis every
// iteration (a cold cache, the pre-plan behaviour of every Run* call),
// while "replay" reuses the compiled plan and does only the numeric
// work plus counter merges.
func BenchmarkPlanCompile(b *testing.B) {
	m := largestTable1(b)
	p, err := core.NewPJDS(m, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	d := gpu.TeslaC2070()
	x := benchVec(m.NCols)
	y := make([]float64, m.NRows)
	b.Run("compile", func(b *testing.B) {
		pc := gpu.NewPlanCache(0)
		opt := gpu.RunOptions{Workers: 1, Plans: pc, Metrics: telemetry.NewRegistry()}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pc.Reset() // force a cold cache: every run compiles
			if _, err := gpu.RunPJDS(d, p, y, x, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("replay", func(b *testing.B) {
		opt := gpu.RunOptions{Workers: 1, Plans: gpu.NewPlanCache(0), Metrics: telemetry.NewRegistry()}
		if _, err := gpu.RunPJDS(d, p, y, x, opt); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := gpu.RunPJDS(d, p, y, x, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}
