package gpu

import (
	"math"
	"testing"

	"pjds/internal/formats"
)

func TestRunELLRTMatchesReference(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(600, 5, 45, 31)
	x := randVec(600, 32)
	ref := refMulVec(t, m, x)
	for _, threads := range []int{1, 2, 4, 8} {
		e, err := formats.NewELLRT(m, threads)
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, 600)
		st, err := RunELLRT(d, e, y, x, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, e.Name(), y, ref)
		if st.ExecutedLaneSteps != int64(m.Nnz()) {
			t.Errorf("T=%d: lane steps %d != nnz %d", threads, st.ExecutedLaneSteps, m.Nnz())
		}
	}
}

// TestELLRTImprovesOccupancyOnSmallMatrices: with T threads per row a
// small matrix launches T× the warps, recovering latency hiding — the
// niche ELLR-T exists for.
func TestELLRTImprovesOccupancyOnSmallMatrices(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(512, 60, 80, 33) // few rows, long rows
	x := randVec(512, 34)
	y := make([]float64, 512)

	e1, err := formats.NewELLRT(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	st1, err := RunELLRT(d, e1, y, x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	e8, err := formats.NewELLRT(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	st8, err := RunELLRT(d, e8, y, x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st8.Warps <= st1.Warps {
		t.Errorf("T=8 warps %d not above T=1 warps %d", st8.Warps, st1.Warps)
	}
	if st8.GFlops <= st1.GFlops {
		t.Errorf("T=8 %.2f GF/s not above T=1 %.2f GF/s on a tiny matrix", st8.GFlops, st1.GFlops)
	}
}

func TestRunELLRTValidation(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(64, 3, 6, 35)
	e, err := formats.NewELLRT(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunELLRT(d, e, make([]float64, 64), randVec(63, 1), RunOptions{}); err == nil {
		t.Error("short x accepted")
	}
	bad := TeslaC2070()
	bad.WarpSize = 0
	if _, err := RunELLRT(bad, e, make([]float64, 64), randVec(64, 1), RunOptions{}); err == nil {
		t.Error("invalid device accepted")
	}
	// Device whose warp size is incompatible with T.
	odd := TeslaC2070()
	odd.WarpSize = 6
	if _, err := RunELLRT(odd, e, make([]float64, 64), randVec(64, 1), RunOptions{}); err == nil {
		t.Error("warp size not divisible by T accepted")
	}
}

func TestELLRTAccumulate(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(100, 3, 9, 36)
	x := randVec(100, 37)
	ref := refMulVec(t, m, x)
	e, err := formats.NewELLRT(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 100)
	for i := range y {
		y[i] = 2
	}
	if _, err := RunELLRT(d, e, y, x, RunOptions{Accumulate: true}); err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-(ref[i]+2)) > 1e-10 {
			t.Fatalf("accumulate y[%d]", i)
		}
	}
}
