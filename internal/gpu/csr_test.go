package gpu

import (
	"math"
	"testing"

	"pjds/internal/formats"
	"pjds/internal/matgen"
	"pjds/internal/matrix"
)

func TestCSRKernelsMatchReference(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(700, 4, 40, 61)
	x := randVec(700, 62)
	ref := refMulVec(t, m, x)

	y := make([]float64, 700)
	if _, err := RunCSRScalar(d, m, y, x, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	checkClose(t, "CSR-scalar", y, ref)

	y2 := make([]float64, 700)
	if _, err := RunCSRVector(d, m, y2, x, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	checkClose(t, "CSR-vector", y2, ref)
}

func TestCSRAccumulate(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(128, 3, 9, 63)
	x := randVec(128, 64)
	ref := refMulVec(t, m, x)
	for _, run := range []struct {
		name string
		f    func(y []float64) error
	}{
		{"scalar", func(y []float64) error { _, err := RunCSRScalar(d, m, y, x, RunOptions{Accumulate: true}); return err }},
		{"vector", func(y []float64) error { _, err := RunCSRVector(d, m, y, x, RunOptions{Accumulate: true}); return err }},
	} {
		y := make([]float64, 128)
		for i := range y {
			y[i] = 3
		}
		if err := run.f(y); err != nil {
			t.Fatal(err)
		}
		for i := range y {
			if math.Abs(y[i]-(ref[i]+3)) > 1e-10 {
				t.Fatalf("%s accumulate y[%d]", run.name, i)
			}
		}
	}
}

// TestCSRScalarUncoalesced: the whole point of the GPU formats — the
// scalar CSR kernel moves far more val/idx bytes than ELLPACK-R for
// the same matrix, and loses in GF/s.
func TestCSRScalarUncoalesced(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(4096, 15, 35, 65)
	x := randVec(4096, 66)
	y := make([]float64, 4096)
	stS, err := RunCSRScalar(d, m, y, x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ellr := formats.NewELLPACKR(m)
	stE, err := RunELLPACKR(d, ellr, y, x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stS.BytesVal < 3*stE.BytesVal {
		t.Errorf("CSR-scalar val traffic %d not ≫ ELLPACK-R %d", stS.BytesVal, stE.BytesVal)
	}
	if stS.GFlops >= stE.GFlops {
		t.Errorf("CSR-scalar %.2f GF/s not below ELLPACK-R %.2f", stS.GFlops, stE.GFlops)
	}
}

// TestCSRVectorBeatsScalarOnLongRows / loses on short rows: the
// Bell & Garland crossover.
func TestCSRVectorCrossover(t *testing.T) {
	d := TeslaC2070()
	long := matgen.Random(2000, 150, 250, 67)
	short := matgen.Random(20000, 3, 6, 68)
	for _, c := range []struct {
		name       string
		m          *matrix.CSR[float64]
		vectorWins bool
	}{
		{"long rows", long, true},
		{"short rows", short, false},
	} {
		x := randVec(c.m.NCols, 69)
		y := make([]float64, c.m.NRows)
		stS, err := RunCSRScalar(d, c.m, y, x, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		stV, err := RunCSRVector(d, c.m, y, x, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if c.vectorWins && stV.GFlops <= stS.GFlops {
			t.Errorf("%s: vector %.2f not above scalar %.2f", c.name, stV.GFlops, stS.GFlops)
		}
		if !c.vectorWins && stV.GFlops >= stS.GFlops {
			t.Errorf("%s: vector %.2f not below scalar %.2f", c.name, stV.GFlops, stS.GFlops)
		}
	}
}

func TestCSRKernelValidation(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(64, 3, 6, 70)
	if _, err := RunCSRScalar(d, m, make([]float64, 63), randVec(64, 1), RunOptions{}); err == nil {
		t.Error("scalar short y accepted")
	}
	if _, err := RunCSRVector(d, m, make([]float64, 64), randVec(63, 1), RunOptions{}); err == nil {
		t.Error("vector short x accepted")
	}
	bad := TeslaC2070()
	bad.NumMPs = -1
	if _, err := RunCSRScalar(bad, m, make([]float64, 64), randVec(64, 1), RunOptions{}); err == nil {
		t.Error("invalid device accepted")
	}
}
