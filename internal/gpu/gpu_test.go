package gpu

import (
	"math"
	"math/rand"
	"testing"

	"pjds/internal/formats"
	"pjds/internal/matrix"
)

func randomCSR(rows, cols int, density float64, seed int64) *matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := matrix.NewCOO[float64](rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if rng.Float64() < density {
				coo.Add(i, j, rng.NormFloat64())
			}
		}
	}
	return coo.ToCSR()
}

// bandedCSR builds a banded matrix with varying row lengths; good RHS
// locality, realistic for the paper's matrices.
func bandedCSR(n int, minLen, maxLen int, seed int64) *matrix.CSR[float64] {
	rng := rand.New(rand.NewSource(seed))
	coo := matrix.NewCOO[float64](n, n)
	for i := 0; i < n; i++ {
		l := minLen + rng.Intn(maxLen-minLen+1)
		for k := 0; k < l; k++ {
			j := i - l/2 + k
			if j < 0 {
				j += n
			}
			if j >= n {
				j -= n
			}
			coo.Add(i, j, rng.Float64()+0.5)
		}
	}
	return coo.ToCSR()
}

func refMulVec(t *testing.T, m *matrix.CSR[float64], x []float64) []float64 {
	t.Helper()
	y := make([]float64, m.NRows)
	if err := m.MulVec(y, x); err != nil {
		t.Fatal(err)
	}
	return y
}

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestDevicePresets(t *testing.T) {
	for _, d := range []*Device{TeslaC2070(), TeslaC2050(), TeslaC1060()} {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
	c2070 := TeslaC2070()
	if c2070.Bandwidth() != 91e9 {
		t.Errorf("ECC bandwidth = %g", c2070.Bandwidth())
	}
	c2070.ECC = false
	if c2070.Bandwidth() != 120e9 {
		t.Errorf("no-ECC bandwidth = %g", c2070.Bandwidth())
	}
	// Peak: 14×32 ALUs × 1.15 GHz = 515.2e9 FMA/s SP → 896 flops/cycle
	// claimed in §I-B at 2 flops per FMA.
	sp := c2070.PeakFMAPerSecond(4)
	if math.Abs(sp-14*32*1.15e9) > 1 {
		t.Errorf("SP FMA rate = %g", sp)
	}
	if dp := c2070.PeakFMAPerSecond(8); math.Abs(dp-sp/2) > 1 {
		t.Errorf("DP FMA rate = %g, want half of SP", dp)
	}
	if TeslaC1060().L2 != nil {
		t.Error("C1060 should have no L2")
	}
}

func TestDeviceValidate(t *testing.T) {
	bad := []func(*Device){
		func(d *Device) { d.NumMPs = 0 },
		func(d *Device) { d.ClockGHz = -1 },
		func(d *Device) { d.SegmentBytes = 100 },
		func(d *Device) { d.BandwidthECC = 0 },
		func(d *Device) { d.WarpsToSaturate = 0 },
	}
	for i, mutate := range bad {
		d := TeslaC2070()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: invalid device accepted", i)
		}
	}
}

func TestUsableMemECC(t *testing.T) {
	d := TeslaC2050()
	d.ECC = true
	if got := d.UsableMemBytes(); got != (3<<30)-(3<<30)/8 {
		t.Errorf("ECC usable = %d", got)
	}
	d.ECC = false
	if got := d.UsableMemBytes(); got != 3<<30 {
		t.Errorf("usable = %d", got)
	}
	if !d.Fits(3 << 30) {
		t.Error("should fit exactly")
	}
	if d.Fits(3<<30 + 1) {
		t.Error("should not fit")
	}
}

func TestOccupancyFactor(t *testing.T) {
	d := TeslaC2070() // 14 MPs, saturate at 8 warps/MP = 112 warps
	if f := d.OccupancyFactor(0); f != 1 {
		t.Errorf("zero warps factor = %g", f)
	}
	if f := d.OccupancyFactor(112); f != 1 {
		t.Errorf("saturated factor = %g", f)
	}
	if f := d.OccupancyFactor(10000); f != 1 {
		t.Errorf("oversaturated factor = %g", f)
	}
	f := d.OccupancyFactor(14) // 1 warp per MP
	if math.Abs(f-1.0/8) > 1e-12 {
		t.Errorf("one warp/MP factor = %g, want 1/8", f)
	}
	if d.EffectiveBandwidth(14) >= d.Bandwidth() {
		t.Error("low occupancy should reduce bandwidth")
	}
}

func TestCacheBasics(t *testing.T) {
	c := newCache(&CacheConfig{Bytes: 1 << 12, LineBytes: 128, Assoc: 2, RHSFraction: 1}, 128)
	if c.probe(0) {
		t.Error("cold miss expected")
	}
	if !c.probe(64) { // same line
		t.Error("same-line hit expected")
	}
	if c.probe(128) {
		t.Error("next line should miss")
	}
	if !c.probe(0) {
		t.Error("line 0 still resident")
	}
	if hr := c.hitRate(); math.Abs(hr-0.5) > 1e-12 {
		t.Errorf("hit rate = %g", hr)
	}
	c.reset()
	if c.hits != 0 || c.misses != 0 {
		t.Error("reset did not clear counters")
	}
	if c.probe(0) {
		t.Error("reset did not clear contents")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2-way, line 128, 4 lines → 2 sets. Lines 0, 2, 4 map to set 0.
	c := newCache(&CacheConfig{Bytes: 4 * 128, LineBytes: 128, Assoc: 2, RHSFraction: 1}, 128)
	c.probe(0 * 128)
	c.probe(2 * 128)
	c.probe(0 * 128) // touch line 0 → MRU
	c.probe(4 * 128) // evicts line 2 (LRU)
	if !c.probe(0 * 128) {
		t.Error("line 0 evicted despite MRU")
	}
	if c.probe(2 * 128) {
		t.Error("line 2 should have been evicted")
	}
}

func TestCacheNilAlwaysMisses(t *testing.T) {
	var c *cache
	if c.probe(0) || c.probe(0) {
		t.Error("nil cache must always miss")
	}
	if c.hitRate() != 0 {
		t.Error("nil cache hit rate")
	}
	c.reset() // must not panic
	if newCache(nil, 32) != nil {
		t.Error("nil config should give nil cache")
	}
	if newCache(&CacheConfig{Bytes: 1 << 12, LineBytes: 128, Assoc: 2, RHSFraction: 0}, 32) != nil {
		t.Error("zero RHS fraction should disable the cache")
	}
}

func TestKernelsMatchReference(t *testing.T) {
	d := TeslaC2070()
	for seed := int64(0); seed < 3; seed++ {
		m := bandedCSR(500, 3, 40, seed)
		x := randVec(500, seed+10)
		ref := refMulVec(t, m, x)

		ell := formats.NewELLPACK(m)
		y := make([]float64, 500)
		if _, err := RunELLPACK(d, ell, y, x, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		checkClose(t, "ELLPACK", y, ref)

		ellr := formats.NewELLPACKR(m)
		y = make([]float64, 500)
		if _, err := RunELLPACKR(d, ellr, y, x, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		checkClose(t, "ELLPACK-R", y, ref)

		p, err := formats.NewPJDS(m)
		if err != nil {
			t.Fatal(err)
		}
		yp := make([]float64, 500)
		if _, err := RunPJDS(d, p, yp, x, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		yo := make([]float64, 500)
		matrix.Scatter(yo, yp, p.Perm)
		checkClose(t, "pJDS", yo, ref)

		s, err := formats.NewSlicedELL(m, 32, 128)
		if err != nil {
			t.Fatal(err)
		}
		ys := make([]float64, 500)
		if _, err := RunSlicedELL(d, s, ys, x, RunOptions{}); err != nil {
			t.Fatal(err)
		}
		yso := make([]float64, 500)
		matrix.Scatter(yso, ys, s.Perm)
		checkClose(t, "sliced-ELL", yso, ref)
	}
}

func checkClose(t *testing.T, name string, got, want []float64) {
	t.Helper()
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-10*(1+math.Abs(want[i])) {
			t.Fatalf("%s: y[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
}

func TestAccumulateOption(t *testing.T) {
	d := TeslaC2070()
	m := bandedCSR(100, 2, 10, 7)
	x := randVec(100, 8)
	ref := refMulVec(t, m, x)
	ellr := formats.NewELLPACKR(m)
	y := make([]float64, 100)
	for i := range y {
		y[i] = 1
	}
	st, err := RunELLPACKR(d, ellr, y, x, RunOptions{Accumulate: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range y {
		if math.Abs(y[i]-(ref[i]+1)) > 1e-10 {
			t.Fatalf("accumulate y[%d] = %g, want %g", i, y[i], ref[i]+1)
		}
	}
	// Accumulation reads and writes the LHS: double the traffic.
	st2, err := RunELLPACKR(d, ellr, make([]float64, 100), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.BytesLHS != 2*st2.BytesLHS {
		t.Errorf("accumulate LHS bytes = %d, want 2×%d", st.BytesLHS, st2.BytesLHS)
	}
}

// TestHardwareReservation reproduces Fig. 2: on a matrix with strongly
// imbalanced row lengths, ELLPACK-R reserves far more SIMT slots than
// it uses, and pJDS recovers most of them.
func TestHardwareReservation(t *testing.T) {
	// One long row per warp-sized group, the rest short.
	const n = 1024
	coo := matrix.NewCOO[float64](n, n)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < n; i++ {
		l := 4
		if i%32 == 0 {
			l = 64
		}
		for k := 0; k < l; k++ {
			coo.Add(i, rng.Intn(n), 1)
		}
	}
	m := coo.ToCSR()
	d := TeslaC2070()
	x := randVec(n, 4)

	ellr := formats.NewELLPACKR(m)
	stR, err := RunELLPACKR(d, ellr, make([]float64, n), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := formats.NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	stP, err := RunPJDS(d, p, make([]float64, n), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stR.LaneEfficiency > 0.35 {
		t.Errorf("ELLPACK-R lane efficiency %.2f, expected low on imbalanced rows", stR.LaneEfficiency)
	}
	if stP.LaneEfficiency < 0.9 {
		t.Errorf("pJDS lane efficiency %.2f, expected ≥0.9 after sorting", stP.LaneEfficiency)
	}
	if stP.WarpSteps >= stR.WarpSteps {
		t.Errorf("pJDS warp steps %d not below ELLPACK-R %d", stP.WarpSteps, stR.WarpSteps)
	}
	// Partial transactions also waste bandwidth in ELLPACK-R.
	if stP.BytesVal >= stR.BytesVal {
		t.Errorf("pJDS val traffic %d not below ELLPACK-R %d", stP.BytesVal, stR.BytesVal)
	}
}

// TestPlainELLPACKWastesWork: the original ELLPACK executes the
// padding (Fig. 2a) — more lane-steps and more traffic than ELLPACK-R
// on the same storage.
func TestPlainELLPACKWastesWork(t *testing.T) {
	m := bandedCSR(512, 2, 30, 9)
	d := TeslaC2070()
	x := randVec(512, 10)
	ell := formats.NewELLPACK(m)
	ellr := formats.NewELLPACKR(m)
	st, err := RunELLPACK(d, ell, make([]float64, 512), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stR, err := RunELLPACKR(d, ellr, make([]float64, 512), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.ExecutedLaneSteps <= stR.ExecutedLaneSteps {
		t.Error("plain ELLPACK should execute more lane steps")
	}
	if st.BytesVal <= stR.BytesVal {
		t.Error("plain ELLPACK should load more value bytes")
	}
	if st.GFlops >= stR.GFlops {
		t.Error("ELLPACK-R should outperform plain ELLPACK")
	}
}

// TestECCBandwidthEffect: disabling ECC raises GF/s by roughly the
// bandwidth ratio (Table I's ECC=0 vs ECC=1 blocks).
func TestECCBandwidthEffect(t *testing.T) {
	m := bandedCSR(2048, 10, 30, 11)
	x := randVec(2048, 12)
	p, err := formats.NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	dOn := TeslaC2070()
	dOff := TeslaC2070()
	dOff.ECC = false
	stOn, err := RunPJDS(dOn, p, make([]float64, 2048), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stOff, err := RunPJDS(dOff, p, make([]float64, 2048), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := stOff.GFlops / stOn.GFlops
	bwRatio := 120.0 / 91.0
	if ratio < 1.05 || ratio > bwRatio+0.05 {
		t.Errorf("ECC-off speedup %.2f, expected within (1.05, %.2f]", ratio, bwRatio+0.05)
	}
}

// TestSPFasterThanDP: single precision moves fewer bytes, so GF/s
// must rise (Table I SP block vs DP block).
func TestSPFasterThanDP(t *testing.T) {
	md := bandedCSR(2048, 10, 30, 13)
	ms := matrix.Convert[float32](md)
	d := TeslaC2070()
	pd, err := formats.NewPJDS(md)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := formats.NewPJDS(ms)
	if err != nil {
		t.Fatal(err)
	}
	xd := randVec(2048, 14)
	xs := make([]float32, 2048)
	for i := range xs {
		xs[i] = float32(xd[i])
	}
	stD, err := RunPJDS(d, pd, make([]float64, 2048), xd, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stS, err := RunPJDS(d, ps, make([]float32, 2048), xs, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stS.GFlops <= stD.GFlops {
		t.Errorf("SP %.2f GF/s not above DP %.2f GF/s", stS.GFlops, stD.GFlops)
	}
	if stS.BytesTotal >= stD.BytesTotal {
		t.Error("SP should move fewer bytes")
	}
}

// TestAlphaRange: the measured α must satisfy the paper's bound
// 1/N_nzr ≤ α (≈, up to line-granularity overfetch) and a banded
// matrix with strong locality must land far below α = 1.
func TestAlphaRange(t *testing.T) {
	m := bandedCSR(4096, 20, 24, 15)
	d := TeslaC2070()
	p, err := formats.NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunPJDS(d, p, make([]float64, 4096), randVec(4096, 16), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Alpha <= 0 {
		t.Fatalf("alpha = %g", st.Alpha)
	}
	if st.Alpha > 0.6 {
		t.Errorf("alpha = %.2f on a banded matrix, expected strong reuse", st.Alpha)
	}
	// Without a cache α must reach at least 1 (every gather goes to
	// memory, whole segments fetched).
	d1060 := TeslaC1060()
	st2, err := RunPJDS(d1060, p, make([]float64, 4096), randVec(4096, 16), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Alpha < 0.99 {
		t.Errorf("no-cache alpha = %.2f, expected ≥ 1", st2.Alpha)
	}
	if st2.L2HitRate != 0 {
		t.Error("no-cache hit rate must be 0")
	}
}

// TestOccupancyPenalty: a tiny kernel (few warps) runs at a fraction
// of the bandwidth — the §III-B small-subproblem effect.
func TestOccupancyPenalty(t *testing.T) {
	big := bandedCSR(65536, 12, 16, 17)
	small := bandedCSR(512, 12, 16, 18)
	d := TeslaC2070()
	pb, err := formats.NewPJDS(big)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := formats.NewPJDS(small)
	if err != nil {
		t.Fatal(err)
	}
	stBig, err := RunPJDS(d, pb, make([]float64, 65536), randVec(65536, 19), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stSmall, err := RunPJDS(d, ps, make([]float64, 512), randVec(512, 20), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stSmall.GFlops >= 0.7*stBig.GFlops {
		t.Errorf("small kernel %.2f GF/s vs big %.2f GF/s: expected a clear occupancy penalty",
			stSmall.GFlops, stBig.GFlops)
	}
}

func TestRunShapeAndDeviceErrors(t *testing.T) {
	m := bandedCSR(64, 2, 5, 21)
	d := TeslaC2070()
	ell := formats.NewELLPACK(m)
	if _, err := RunELLPACK(d, ell, make([]float64, 63), randVec(64, 1), RunOptions{}); err == nil {
		t.Error("short y accepted")
	}
	bad := TeslaC2070()
	bad.NumMPs = 0
	if _, err := RunELLPACK(bad, ell, make([]float64, 64), randVec(64, 1), RunOptions{}); err == nil {
		t.Error("invalid device accepted")
	}
	p, _ := formats.NewPJDS(m)
	if _, err := RunPJDS(d, p, make([]float64, 64), randVec(63, 1), RunOptions{}); err == nil {
		t.Error("short x accepted")
	}
	ellr := formats.NewELLPACKR(m)
	if _, err := RunELLPACKR(d, ellr, make([]float64, 64), randVec(63, 1), RunOptions{}); err == nil {
		t.Error("ELLPACK-R short x accepted")
	}
	s, _ := formats.NewSlicedELL(m, 16, 1)
	if _, err := RunSlicedELL(d, s, make([]float64, 63), randVec(64, 1), RunOptions{}); err == nil {
		t.Error("sliced short y accepted")
	}
}

func TestKernelStatsConsistency(t *testing.T) {
	m := bandedCSR(1024, 5, 25, 23)
	d := TeslaC2070()
	p, err := formats.NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	st, err := RunPJDS(d, p, make([]float64, 1024), randVec(1024, 24), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.UsefulFlops != 2*int64(m.Nnz()) {
		t.Errorf("useful flops = %d", st.UsefulFlops)
	}
	if st.ExecutedLaneSteps != int64(m.Nnz()) {
		t.Errorf("lane steps = %d, want nnz %d", st.ExecutedLaneSteps, m.Nnz())
	}
	if st.BytesTotal != st.BytesVal+st.BytesIdx+st.BytesRHS+st.BytesLHS+st.BytesMeta {
		t.Error("byte totals inconsistent")
	}
	if st.KernelSeconds < st.MemSeconds || st.KernelSeconds < st.ComputeSeconds {
		t.Error("kernel time below component times")
	}
	if st.GFlops <= 0 || st.CodeBalance <= 0 {
		t.Error("derived metrics not positive")
	}
	if st.Warps != (p.NPad+31)/32 {
		t.Errorf("warps = %d", st.Warps)
	}
	if st.String() == "" {
		t.Error("empty String()")
	}
	// Code balance must be near the Eq. (1) window: between the
	// ideal (α→1/Nnzr) and worst case (α=1) plus overheads.
	nnzr := m.AvgRowLen()
	lo := 6 + 4/nnzr + 8/nnzr - 1 // generous slack below
	hi := 6.0 + 4 + 8/nnzr + 3    // slack above for partial transactions
	if st.CodeBalance < lo || st.CodeBalance > hi {
		t.Errorf("code balance %.2f outside [%.2f, %.2f]", st.CodeBalance, lo, hi)
	}
}

// TestRederiveECCToggle: one simulation re-derived for the other ECC
// mode must exactly equal a fresh simulation on that device (the
// counters do not depend on bandwidth).
func TestRederiveECCToggle(t *testing.T) {
	m := bandedCSR(2048, 8, 20, 41)
	x := randVec(2048, 42)
	p, err := formats.NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	on := TeslaC2070()
	off := TeslaC2070()
	off.ECC = false
	stOn, err := RunPJDS(on, p, make([]float64, p.NPad), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stOffFresh, err := RunPJDS(off, p, make([]float64, p.NPad), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	stOffDerived := stOn.Rederive(off)
	if stOffDerived.GFlops != stOffFresh.GFlops {
		t.Errorf("re-derived %.4f GF/s, fresh %.4f", stOffDerived.GFlops, stOffFresh.GFlops)
	}
	if stOffDerived.BytesTotal != stOffFresh.BytesTotal {
		t.Error("re-derivation changed the counters")
	}
	if stOffDerived.Device != off.Name {
		t.Error("device name not updated")
	}
	// The original stats are untouched (value receiver).
	if stOn.GFlops == stOffDerived.GFlops {
		t.Error("re-derivation had no effect")
	}
}

// TestMemoryBoundRegime: for spMVM the memory time must dominate the
// compute time on Fermi-class ratios.
func TestMemoryBoundRegime(t *testing.T) {
	m := bandedCSR(8192, 20, 40, 25)
	d := TeslaC2070()
	ellr := formats.NewELLPACKR(m)
	st, err := RunELLPACKR(d, ellr, make([]float64, 8192), randVec(8192, 26), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.MemSeconds < 3*st.ComputeSeconds {
		t.Errorf("mem %.3g s vs compute %.3g s: spMVM should be strongly memory-bound",
			st.MemSeconds, st.ComputeSeconds)
	}
}
