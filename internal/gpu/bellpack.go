package gpu

import (
	"fmt"

	"pjds/internal/core"
	"pjds/internal/formats"
	"pjds/internal/matrix"
)

// RunBELLPACK executes the blocked-ELLPACK spMVM: one thread per
// scalar row; at block slot j each lane walks its block's BC columns,
// with the column-major intra-block layout keeping the BR lanes of a
// block coalesced. One block-column index serves BR·BC values, which
// is the format's whole point — the index stream shrinks by the block
// area (reference [2]'s structure-aware advantage over pJDS).
func RunBELLPACK[T matrix.Float](d *Device, e *formats.BELLPACK[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != e.NCols || len(y) != e.N {
		return nil, fmt.Errorf("gpu: BELLPACK run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	if err := eccCheck(opt, e.Name()); err != nil {
		return nil, err
	}
	es := core.SizeofElem[T]()
	st := &KernelStats{Kernel: e.Name(), Rows: e.N, Nnz: int64(e.NnzV), UsefulFlops: 2 * int64(e.NnzV), ElemBytes: es}
	ws := d.WarpSize
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter
	sum := make([]T, ws)
	scalarRows := e.BlockRowsPad * e.BR

	for wbase := 0; wbase < scalarRows; wbase += ws {
		st.Warps++
		lanes := ws
		if wbase+lanes > scalarRows {
			lanes = scalarRows - wbase
		}
		maxBlocks := 0
		for lane := 0; lane < lanes; lane++ {
			b := (wbase + lane) / e.BR
			if b < len(e.BlockLen) {
				if l := int(e.BlockLen[b]); l > maxBlocks {
					maxBlocks = l
				}
			}
		}
		if maxBlocks > 0 {
			st.ActiveWarps++
		}
		for l := range sum {
			sum[l] = 0
		}
		// Each block slot costs BC SIMT steps (one per block column).
		st.WarpSteps += int64(maxBlocks * e.BC)
		st.BytesMeta += segBytes // BlockLen load
		for j := 0; j < maxBlocks; j++ {
			idxSegs.reset()
			// Block-column index: one load per lane's block.
			for lane := 0; lane < lanes; lane++ {
				b := (wbase + lane) / e.BR
				if j >= int(e.BlockLen[b]) {
					continue
				}
				idxSegs.add(addrIdx+int64(j*e.BlockRowsPad+b)*4, segShift)
			}
			st.BytesIdx += int64(len(idxSegs.segs)) * segBytes
			for c := 0; c < e.BC; c++ {
				valSegs.reset()
				rhsSegs.reset()
				for lane := 0; lane < lanes; lane++ {
					i := wbase + lane
					b := i / e.BR
					r := i % e.BR
					if j >= int(e.BlockLen[b]) {
						continue
					}
					xc := int(e.BlockCol[j*e.BlockRowsPad+b])*e.BC + c
					if xc >= e.NCols {
						continue
					}
					at := ((j*e.BC+c)*e.BlockRowsPad+b)*e.BR + r
					sum[lane] += e.Val[at] * x[xc]
					st.ExecutedLaneSteps++
					valSegs.add(addrVal+int64(at)*int64(es), segShift)
					rhsSegs.add(addrRHS+int64(xc)*int64(es), secShift)
				}
				st.BytesVal += int64(len(valSegs.segs)) * segBytes
				for _, sec := range rhsSegs.segs {
					st.RHSProbes++
					if !l2.probe(sec << secShift) {
						st.RHSMisses++
						st.BytesRHS += secBytes
					}
				}
			}
		}
		hi := wbase + lanes
		if hi > e.N {
			hi = e.N
		}
		st.BytesLHS += lhsBytes(&lhsSegs, wbase, hi, es, segShift, segBytes, opt.Accumulate)
		storeResult(y, sum, wbase, e.N, opt.Accumulate)
	}
	st.finish(d, ws)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st, nil
}
