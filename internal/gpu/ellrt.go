package gpu

import (
	"fmt"

	"pjds/internal/core"
	"pjds/internal/formats"
	"pjds/internal/matrix"
)

// RunELLRT executes the ELLR-T spMVM: T threads cooperate on each row,
// so a warp covers warpSize/T rows and finishes in ceil(maxLen/T)
// SIMT steps, followed by a log2(T) intra-warp reduction. More warps
// per row count means better latency hiding on small matrices — the
// tuned alternative the paper contrasts pJDS against.
func RunELLRT[T matrix.Float](d *Device, e *formats.ELLRT[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != e.NCols || len(y) != e.N {
		return nil, fmt.Errorf("gpu: ELLR-T run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	if err := eccCheck(opt, e.Name()); err != nil {
		return nil, err
	}
	tpr := e.ThreadsPerRow
	ws := d.WarpSize
	if ws%tpr != 0 {
		return nil, fmt.Errorf("gpu: ELLR-T T=%d does not divide warp size %d", tpr, ws)
	}
	es := core.SizeofElem[T]()
	st := &KernelStats{Kernel: e.Name(), Rows: e.N, Nnz: int64(e.NnzV), UsefulFlops: 2 * int64(e.NnzV), ElemBytes: es}
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter
	rowsPerWarp := ws / tpr
	sum := make([]T, rowsPerWarp)
	redSteps := int64(0)
	for 1<<redSteps < tpr {
		redSteps++
	}

	for wbase := 0; wbase < e.NPad; wbase += rowsPerWarp {
		st.Warps++
		rows := rowsPerWarp
		if wbase+rows > e.NPad {
			rows = e.NPad - wbase
		}
		maxLen := 0
		for r := 0; r < rows; r++ {
			if l := int(e.RowLen[wbase+r]); l > maxLen {
				maxLen = l
			}
		}
		if maxLen > 0 {
			st.ActiveWarps++
		}
		for r := range sum {
			sum[r] = 0
		}
		steps := (maxLen + tpr - 1) / tpr
		// Cooperative iterations plus the intra-warp reduction.
		st.WarpSteps += int64(steps) + redSteps
		st.BytesMeta += segBytes // rowLen load
		for jj := 0; jj < steps; jj++ {
			valSegs.reset()
			idxSegs.reset()
			rhsSegs.reset()
			for lane := 0; lane < rows*tpr; lane++ {
				row := wbase + lane/tpr
				t := lane % tpr
				j := jj*tpr + t
				if j >= int(e.RowLen[row]) {
					continue
				}
				at := jj*e.NPad*tpr + row*tpr + t
				c := e.ColIdx[at]
				sum[lane/tpr] += e.Val[at] * x[c]
				st.ExecutedLaneSteps++
				valSegs.add(addrVal+int64(at)*int64(es), segShift)
				idxSegs.add(addrIdx+int64(at)*4, segShift)
				rhsSegs.add(addrRHS+int64(c)*int64(es), secShift)
			}
			st.BytesVal += int64(len(valSegs.segs)) * segBytes
			st.BytesIdx += int64(len(idxSegs.segs)) * segBytes
			for _, sec := range rhsSegs.segs {
				st.RHSProbes++
				if !l2.probe(sec << secShift) {
					st.RHSMisses++
					st.BytesRHS += secBytes
				}
			}
		}
		hi := wbase + rows
		if hi > e.N {
			hi = e.N
		}
		st.BytesLHS += lhsBytes(&lhsSegs, wbase, hi, es, segShift, segBytes, opt.Accumulate)
		storeResult(y, sum, wbase, e.N, opt.Accumulate)
	}
	st.finish(d, ws)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st, nil
}
