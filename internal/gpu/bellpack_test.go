package gpu

import (
	"testing"

	"pjds/internal/formats"
	"pjds/internal/matgen"
)

func TestRunBELLPACKMatchesReference(t *testing.T) {
	d := TeslaC2070()
	m := matgen.DLR2(0.003, 5)
	x := randVec(m.NCols, 51)
	ref := refMulVec(t, m, x)
	for _, blk := range [][2]int{{1, 1}, {5, 5}, {2, 4}} {
		e, err := formats.NewBELLPACK(m, blk[0], blk[1])
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, m.NRows)
		st, err := RunBELLPACK(d, e, y, x, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		checkClose(t, e.Name(), y, ref)
		if st.GFlops <= 0 {
			t.Errorf("%s: no performance", e.Name())
		}
	}
}

// TestBELLPACKBeatsScalarFormatsOnBlockMatrix: on DLR2's dense 5×5
// blocks, BELLPACK's 25× index saving must show up as less index
// traffic than ELLPACK-R and competitive or better GF/s.
func TestBELLPACKBeatsScalarFormatsOnBlockMatrix(t *testing.T) {
	d := TeslaC2070()
	m := matgen.DLR2(0.01, 6)
	x := randVec(m.NCols, 52)
	e, err := formats.NewBELLPACK(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := RunBELLPACK(d, e, make([]float64, m.NRows), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := formats.NewELLPACKR(m)
	stR, err := RunELLPACKR(d, r, make([]float64, m.NRows), x, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stB.BytesIdx >= stR.BytesIdx/3 {
		t.Errorf("BELLPACK index traffic %d not well below ELLPACK-R %d", stB.BytesIdx, stR.BytesIdx)
	}
	if stB.GFlops < stR.GFlops {
		t.Errorf("BELLPACK %.2f GF/s below ELLPACK-R %.2f on its home turf", stB.GFlops, stR.GFlops)
	}
}

func TestRunBELLPACKValidation(t *testing.T) {
	d := TeslaC2070()
	m := matgen.DLR2(0.002, 7)
	e, err := formats.NewBELLPACK(m, 5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunBELLPACK(d, e, make([]float64, m.NRows-1), randVec(m.NCols, 1), RunOptions{}); err == nil {
		t.Error("short y accepted")
	}
	bad := TeslaC2070()
	bad.SegmentBytes = 100
	if _, err := RunBELLPACK(bad, e, make([]float64, m.NRows), randVec(m.NCols, 1), RunOptions{}); err == nil {
		t.Error("invalid device accepted")
	}
}
