package gpu

import (
	"fmt"

	"pjds/internal/core"
	"pjds/internal/matrix"
)

// CSR kernels after Bell & Garland (the paper's reference [1]) — the
// baselines whose weaknesses motivated GPU-specific formats like
// ELLPACK and, in turn, pJDS:
//
//   - CSR-scalar: one thread per row walking its compressed row. Each
//     lane reads from a different position of the val/colidx streams,
//     so a warp's loads are completely uncoalesced — the classic
//     failure mode.
//   - CSR-vector: one warp per row; the 32 lanes stride the row
//     jointly, restoring coalescing, but short rows leave most lanes
//     idle and each row pays a reduction.

// RunCSRScalar executes the one-thread-per-row CSR spMVM.
func RunCSRScalar[T matrix.Float](d *Device, m *matrix.CSR[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.NCols || len(y) != m.NRows {
		return nil, fmt.Errorf("gpu: CSR-scalar run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), m.NRows, m.NCols, matrix.ErrShape)
	}
	if err := eccCheck(opt, "CSR-scalar"); err != nil {
		return nil, err
	}
	es := core.SizeofElem[T]()
	st := &KernelStats{Kernel: "CSR-scalar", Rows: m.NRows, Nnz: int64(m.Nnz()), UsefulFlops: 2 * int64(m.Nnz()), ElemBytes: es}
	ws := d.WarpSize
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter

	for wbase := 0; wbase < m.NRows; wbase += ws {
		st.Warps++
		lanes := ws
		if wbase+lanes > m.NRows {
			lanes = m.NRows - wbase
		}
		maxLen := 0
		for lane := 0; lane < lanes; lane++ {
			if l := m.RowLen(wbase + lane); l > maxLen {
				maxLen = l
			}
		}
		if maxLen > 0 {
			st.ActiveWarps++
		}
		st.WarpSteps += int64(maxLen)
		st.BytesMeta += segBytes // row-pointer load
		if !opt.Accumulate {
			for lane := 0; lane < lanes; lane++ {
				y[wbase+lane] = 0
			}
		}
		for j := 0; j < maxLen; j++ {
			valSegs.reset()
			idxSegs.reset()
			rhsSegs.reset()
			for lane := 0; lane < lanes; lane++ {
				i := wbase + lane
				lo := m.RowPtr[i]
				if j >= m.RowPtr[i+1]-lo {
					continue
				}
				k := lo + j
				c := m.ColIdx[k]
				y[i] += m.Val[k] * x[c] // accumulate per element (y zeroed below on first touch)
				st.ExecutedLaneSteps++
				// Lane k positions are scattered across the compressed
				// stream: every lane usually hits its own segment.
				valSegs.add(addrVal+int64(k)*int64(es), segShift)
				idxSegs.add(addrIdx+int64(k)*4, segShift)
				rhsSegs.add(addrRHS+int64(c)*int64(es), secShift)
			}
			st.BytesVal += int64(len(valSegs.segs)) * segBytes
			st.BytesIdx += int64(len(idxSegs.segs)) * segBytes
			for _, sec := range rhsSegs.segs {
				st.RHSProbes++
				if !l2.probe(sec << secShift) {
					st.RHSMisses++
					st.BytesRHS += secBytes
				}
			}
		}
		hi := wbase + lanes
		st.BytesLHS += lhsBytes(&lhsSegs, wbase, hi, es, segShift, segBytes, opt.Accumulate)
	}
	st.finish(d, ws)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st, nil
}

// RunCSRVector executes the one-warp-per-row CSR spMVM.
func RunCSRVector[T matrix.Float](d *Device, m *matrix.CSR[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != m.NCols || len(y) != m.NRows {
		return nil, fmt.Errorf("gpu: CSR-vector run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), m.NRows, m.NCols, matrix.ErrShape)
	}
	if err := eccCheck(opt, "CSR-vector"); err != nil {
		return nil, err
	}
	es := core.SizeofElem[T]()
	st := &KernelStats{Kernel: "CSR-vector", Rows: m.NRows, Nnz: int64(m.Nnz()), UsefulFlops: 2 * int64(m.Nnz()), ElemBytes: es}
	ws := d.WarpSize
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter
	redSteps := int64(log2(ws))

	for i := 0; i < m.NRows; i++ {
		st.Warps++
		lo, hiK := m.RowPtr[i], m.RowPtr[i+1]
		if hiK > lo {
			st.ActiveWarps++
		}
		steps := (hiK - lo + ws - 1) / ws
		st.WarpSteps += int64(steps) + redSteps
		var sum T
		for s := 0; s < steps; s++ {
			valSegs.reset()
			idxSegs.reset()
			rhsSegs.reset()
			for lane := 0; lane < ws; lane++ {
				k := lo + s*ws + lane
				if k >= hiK {
					break
				}
				c := m.ColIdx[k]
				sum += m.Val[k] * x[c]
				st.ExecutedLaneSteps++
				valSegs.add(addrVal+int64(k)*int64(es), segShift)
				idxSegs.add(addrIdx+int64(k)*4, segShift)
				rhsSegs.add(addrRHS+int64(c)*int64(es), secShift)
			}
			st.BytesVal += int64(len(valSegs.segs)) * segBytes
			st.BytesIdx += int64(len(idxSegs.segs)) * segBytes
			for _, sec := range rhsSegs.segs {
				st.RHSProbes++
				if !l2.probe(sec << secShift) {
					st.RHSMisses++
					st.BytesRHS += secBytes
				}
			}
		}
		if opt.Accumulate {
			y[i] += sum
		} else {
			y[i] = sum
		}
		lhsSegs.reset()
		lhsSegs.add(addrLHS+int64(i)*int64(es), segShift)
		b := int64(len(lhsSegs.segs)) * segBytes
		if opt.Accumulate {
			b *= 2
		}
		st.BytesLHS += b
	}
	st.finish(d, ws)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st, nil
}
