package gpu

import (
	"errors"
	"testing"

	"pjds/internal/formats"
	"pjds/internal/matgen"
	"pjds/internal/telemetry"
)

// fireAt triggers an ECC event at one specific launch index.
type fireAt struct {
	at     int
	launch int
}

func (f *fireAt) ECCEvent(kernel string) bool {
	l := f.launch
	f.launch++
	return l == f.at
}

// TestECCAbortsLaunch: the injector aborts exactly the configured
// launch with a typed ECCError (exact text pinned), and healthy
// launches before it are untouched.
func TestECCAbortsLaunch(t *testing.T) {
	m := matgen.Stencil2D(12, 12)
	e := formats.NewELLPACKR(m)
	x := make([]float64, m.NCols)
	for i := range x {
		x[i] = 1
	}
	y := make([]float64, m.NRows)
	reg := telemetry.NewRegistry()
	opt := RunOptions{Faults: &fireAt{at: 1}, Metrics: reg}
	if _, err := RunELLPACKR(TeslaC2070(), e, y, x, opt); err != nil {
		t.Fatalf("healthy launch 0 failed: %v", err)
	}
	_, err := RunELLPACKR(TeslaC2070(), e, y, x, opt)
	var ecc *ECCError
	if !errors.As(err, &ecc) {
		t.Fatalf("err = %v, want *ECCError", err)
	}
	if got, want := err.Error(), "gpu: uncorrectable double-bit ECC error on ELLPACK-R"; got != want {
		t.Errorf("error text = %q, want %q", got, want)
	}
	if got := reg.Counter("gpu_ecc_errors_total", telemetry.L("kernel", "ELLPACK-R")).Value(); got != 1 {
		t.Errorf("ecc counter = %g", got)
	}
	if _, err := RunELLPACKR(TeslaC2070(), e, y, x, opt); err != nil {
		t.Errorf("launch after the ECC event should be healthy here: %v", err)
	}
}
