package gpu

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"pjds/internal/formats"
	"pjds/internal/telemetry"
)

// kernelCase abstracts one storage format for the determinism matrix:
// run executes the kernel into y with the given options.
type kernelCase struct {
	name string
	rows int
	run  func(d *Device, y, x []float64, opt RunOptions) (*KernelStats, error)
}

// kernelCases builds all four kernels over one imbalanced matrix
// (mixed row lengths exercise divergence, partial transactions, and
// the trailing partial warp via a non-multiple-of-32 size).
func kernelCases(t *testing.T) (cases []kernelCase, x []float64) {
	t.Helper()
	const n = 1517
	m := bandedCSR(n, 1, 60, 42)
	x = randVec(n, 43)

	ell := formats.NewELLPACK(m)
	ellr := formats.NewELLPACKR(m)
	p, err := formats.NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	s, err := formats.NewSlicedELL(m, 32, 128)
	if err != nil {
		t.Fatal(err)
	}
	return []kernelCase{
		{"ELLPACK", n, func(d *Device, y, x []float64, opt RunOptions) (*KernelStats, error) {
			return RunELLPACK(d, ell, y, x, opt)
		}},
		{"ELLPACK-R", n, func(d *Device, y, x []float64, opt RunOptions) (*KernelStats, error) {
			return RunELLPACKR(d, ellr, y, x, opt)
		}},
		{"pJDS", n, func(d *Device, y, x []float64, opt RunOptions) (*KernelStats, error) {
			return RunPJDS(d, p, y, x, opt)
		}},
		{"sliced-ELL", n, func(d *Device, y, x []float64, opt RunOptions) (*KernelStats, error) {
			return RunSlicedELL(d, s, y, x, opt)
		}},
	}, x
}

// TestWorkerDeterminism asserts the tentpole guarantee: parallel
// execution (Workers=8) is byte-identical to sequential (Workers=1) in
// the result vector, the KernelStats, and the full telemetry registry
// output — for every kernel, with and without accumulation.
func TestWorkerDeterminism(t *testing.T) {
	cases, x := kernelCases(t)
	for _, kc := range cases {
		for _, acc := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/acc=%v", kc.name, acc), func(t *testing.T) {
				type outcome struct {
					y    []float64
					st   *KernelStats
					prom []byte
				}
				runWith := func(workers int) outcome {
					d := TeslaC2070()
					reg := telemetry.NewRegistry()
					y := make([]float64, kc.rows)
					for i := range y {
						y[i] = 1.0 / float64(i+1) // nonzero base exercises accumulation
					}
					st, err := kc.run(d, y, x, RunOptions{
						Accumulate: acc,
						Workers:    workers,
						Plans:      NewPlanCache(0),
						Metrics:    reg,
					})
					if err != nil {
						t.Fatal(err)
					}
					var buf bytes.Buffer
					if err := reg.WritePrometheus(&buf); err != nil {
						t.Fatal(err)
					}
					return outcome{y: y, st: st, prom: buf.Bytes()}
				}
				seq := runWith(1)
				par := runWith(8)
				for i := range seq.y {
					if math.Float64bits(seq.y[i]) != math.Float64bits(par.y[i]) {
						t.Fatalf("y[%d]: sequential %x, parallel %x", i,
							math.Float64bits(seq.y[i]), math.Float64bits(par.y[i]))
					}
				}
				if !reflect.DeepEqual(seq.st, par.st) {
					t.Fatalf("stats diverge:\nseq: %+v\npar: %+v", seq.st, par.st)
				}
				if !bytes.Equal(seq.prom, par.prom) {
					t.Fatalf("telemetry diverges:\nseq:\n%s\npar:\n%s", seq.prom, par.prom)
				}
			})
		}
	}
}

// TestWorkerSweepMatchesReference checks the numeric result against
// the CSR reference for several worker counts, including counts that
// exceed the warp count (clamped internally).
func TestWorkerSweepMatchesReference(t *testing.T) {
	const n = 700
	m := bandedCSR(n, 2, 30, 9)
	x := randVec(n, 10)
	ref := refMulVec(t, m, x)
	ellr := formats.NewELLPACKR(m)
	d := TeslaC2070()
	for _, w := range []int{0, 1, 2, 3, 8, 1000} {
		y := make([]float64, n)
		if _, err := RunELLPACKR(d, ellr, y, x, RunOptions{Workers: w, Plans: NewPlanCache(0)}); err != nil {
			t.Fatal(err)
		}
		checkClose(t, fmt.Sprintf("workers=%d", w), y, ref)
	}
}

// TestPlanCacheHitMiss covers the cache lifecycle: first run compiles,
// repeats hit, an ECC toggle shares the plan (geometry-only
// fingerprint), and a genuinely different geometry compiles anew.
func TestPlanCacheHitMiss(t *testing.T) {
	m := bandedCSR(600, 2, 25, 5)
	x := randVec(600, 6)
	ellr := formats.NewELLPACKR(m)
	pc := NewPlanCache(0)
	opt := RunOptions{Plans: pc, Metrics: telemetry.NewRegistry()}

	d := TeslaC2070()
	st1, err := RunELLPACKR(d, ellr, make([]float64, 600), x, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s := pc.Stats(); s.Misses != 1 || s.Hits != 0 || s.Compiles != 1 || s.Entries != 1 {
		t.Fatalf("after first run: %+v", s)
	}
	st2, err := RunELLPACKR(d, ellr, make([]float64, 600), x, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s := pc.Stats(); s.Misses != 1 || s.Hits != 1 || s.Compiles != 1 {
		t.Fatalf("after repeat: %+v", s)
	}
	if !reflect.DeepEqual(st1, st2) {
		t.Fatalf("replayed stats differ:\n%+v\n%+v", st1, st2)
	}

	// ECC off changes bandwidth but not geometry: same plan, new
	// timing — exactly Rederive's contract.
	noECC := TeslaC2070()
	noECC.ECC = false
	st3, err := RunELLPACKR(noECC, ellr, make([]float64, 600), x, opt)
	if err != nil {
		t.Fatal(err)
	}
	if s := pc.Stats(); s.Misses != 1 || s.Hits != 2 || s.Entries != 1 {
		t.Fatalf("ECC toggle should hit: %+v", s)
	}
	want := st1.Rederive(noECC)
	if !reflect.DeepEqual(*st3, want) {
		t.Fatalf("ECC-off stats != Rederive:\n%+v\n%+v", *st3, want)
	}
	if st3.KernelSeconds >= st1.KernelSeconds {
		t.Errorf("ECC off should be faster: %g vs %g", st3.KernelSeconds, st1.KernelSeconds)
	}

	// A different L2 pollution fraction is a different simulated
	// machine: new plan.
	other := TeslaC2070()
	l2 := *other.L2
	l2.RHSFraction = 1
	other.L2 = &l2
	if _, err := RunELLPACKR(other, ellr, make([]float64, 600), x, opt); err != nil {
		t.Fatal(err)
	}
	if s := pc.Stats(); s.Misses != 2 || s.Compiles != 2 || s.Entries != 2 {
		t.Fatalf("geometry change should compile: %+v", s)
	}
	if pc.Stats().CompiledWarps != 2*int64((ellr.NPad+31)/32) {
		t.Errorf("compiled warps = %d, want %d", pc.Stats().CompiledWarps, 2*(ellr.NPad+31)/32)
	}
}

// TestPlanCacheInvalidate checks explicit invalidation (all device
// variants of one format drop; other formats stay) and Reset.
func TestPlanCacheInvalidate(t *testing.T) {
	m := bandedCSR(400, 2, 20, 11)
	x := randVec(400, 12)
	ellr := formats.NewELLPACKR(m)
	p, err := formats.NewPJDS(m)
	if err != nil {
		t.Fatal(err)
	}
	pc := NewPlanCache(0)
	opt := RunOptions{Plans: pc, Metrics: telemetry.NewRegistry()}
	d := TeslaC2070()
	d2 := TeslaC2070()
	l2 := *d2.L2
	l2.RHSFraction = 1
	d2.L2 = &l2
	for _, dev := range []*Device{d, d2} {
		if _, err := RunELLPACKR(dev, ellr, make([]float64, 400), x, opt); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := RunPJDS(d, p, make([]float64, 400), x, opt); err != nil {
		t.Fatal(err)
	}
	if pc.Len() != 3 {
		t.Fatalf("entries = %d, want 3", pc.Len())
	}
	if n := pc.Invalidate(ellr); n != 2 {
		t.Fatalf("Invalidate removed %d, want 2", n)
	}
	if pc.Len() != 1 {
		t.Fatalf("entries after invalidate = %d, want 1", pc.Len())
	}
	// The pJDS plan survives: rerun hits.
	before := pc.Stats().Hits
	if _, err := RunPJDS(d, p, make([]float64, 400), x, opt); err != nil {
		t.Fatal(err)
	}
	if pc.Stats().Hits != before+1 {
		t.Error("pJDS plan should have survived invalidation")
	}
	// The invalidated format recompiles.
	c := pc.Stats().Compiles
	if _, err := RunELLPACKR(d, ellr, make([]float64, 400), x, opt); err != nil {
		t.Fatal(err)
	}
	if pc.Stats().Compiles != c+1 {
		t.Error("invalidated plan should recompile")
	}
	pc.Reset()
	if pc.Len() != 0 || pc.Stats() != (PlanCacheStats{}) {
		t.Errorf("Reset left state: len=%d stats=%+v", pc.Len(), pc.Stats())
	}
}

// TestPlanCacheEviction checks the FIFO capacity bound.
func TestPlanCacheEviction(t *testing.T) {
	m := bandedCSR(300, 2, 10, 13)
	x := randVec(300, 14)
	f1 := formats.NewELLPACKR(m)
	f2 := formats.NewELLPACKR(m)
	pc := NewPlanCache(1)
	opt := RunOptions{Plans: pc, Metrics: telemetry.NewRegistry()}
	d := TeslaC2070()
	if _, err := RunELLPACKR(d, f1, make([]float64, 300), x, opt); err != nil {
		t.Fatal(err)
	}
	if _, err := RunELLPACKR(d, f2, make([]float64, 300), x, opt); err != nil {
		t.Fatal(err)
	}
	if pc.Len() != 1 {
		t.Fatalf("capacity-1 cache holds %d", pc.Len())
	}
	// f1 was evicted: running it again is a miss.
	if _, err := RunELLPACKR(d, f1, make([]float64, 300), x, opt); err != nil {
		t.Fatal(err)
	}
	if s := pc.Stats(); s.Misses != 3 || s.Hits != 0 {
		t.Fatalf("eviction accounting: %+v", s)
	}
}

// TestPlanCacheConcurrent hammers one cache entry from many goroutines
// (run under -race by scripts/check.sh): the plan must compile exactly
// once and every caller must see identical results.
func TestPlanCacheConcurrent(t *testing.T) {
	const n = 800
	m := bandedCSR(n, 2, 30, 15)
	x := randVec(n, 16)
	ref := refMulVec(t, m, x)
	ellr := formats.NewELLPACKR(m)
	pc := NewPlanCache(0)
	d := TeslaC2070()

	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	ys := make([][]float64, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			y := make([]float64, n)
			_, err := RunELLPACKR(d, ellr, y, x, RunOptions{
				Workers: 4,
				Plans:   pc,
				Metrics: telemetry.NewRegistry(),
			})
			errs[g], ys[g] = err, y
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatal(errs[g])
		}
		checkClose(t, fmt.Sprintf("goroutine %d", g), ys[g], ref)
		for i := range ys[g] {
			if math.Float64bits(ys[g][i]) != math.Float64bits(ys[0][i]) {
				t.Fatalf("goroutine %d diverges at row %d", g, i)
			}
		}
	}
	s := pc.Stats()
	if s.Compiles != 1 {
		t.Errorf("compiles = %d, want 1 (single-flight)", s.Compiles)
	}
	if s.Misses != 1 || s.Hits != goroutines-1 {
		t.Errorf("hits/misses = %d/%d, want %d/1", s.Hits, s.Misses, goroutines-1)
	}
}

// TestSetDefaultWorkers covers the package-level default used by the
// CLI -workers flags.
func TestSetDefaultWorkers(t *testing.T) {
	defer SetDefaultWorkers(0)
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Errorf("DefaultWorkers = %d, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Errorf("DefaultWorkers = %d, want GOMAXPROCS", got)
	}
}

// TestPlanAccessors covers the exported plan metadata.
func TestPlanAccessors(t *testing.T) {
	m := bandedCSR(100, 2, 10, 17)
	ellr := formats.NewELLPACKR(m)
	d := TeslaC2070()
	src := planSource[float64]{
		kernel: "ELLPACK-R", rows: ellr.N, cols: ellr.NCols, nPad: ellr.NPad,
		nnz: int64(ellr.NnzV), metaSegs: 1, val: ellr.Val, steps: ellr.RowLen,
		access: func(i, j int) (int64, int32) {
			at := j*ellr.NPad + i
			return int64(at), ellr.ColIdx[at]
		},
	}
	p := compilePlan(d, src)
	if p.Kernel() != "ELLPACK-R" {
		t.Errorf("Kernel() = %q", p.Kernel())
	}
	if want := (ellr.NPad + d.WarpSize - 1) / d.WarpSize; p.Warps() != want {
		t.Errorf("Warps() = %d, want %d", p.Warps(), want)
	}
}
