package gpu

import (
	"fmt"

	"pjds/internal/core"
	"pjds/internal/formats"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// RunOptions modify a kernel execution.
type RunOptions struct {
	// Accumulate computes y += A·x instead of y = A·x. The result
	// vector is then both read and written, which adds the 8/N_nzr
	// bytes/flop the paper attributes to the split local/non-local
	// spMVM of §III-A.
	Accumulate bool
	// Metrics receives the kernel's statistics after the run; nil
	// publishes to telemetry.Default(). MetricLabels are appended to
	// the kernel/device labels — the distributed runs add rank and
	// phase so concurrent ranks never write the same gauge series.
	Metrics      *telemetry.Registry
	MetricLabels []telemetry.Label
}

// RunELLPACK executes the plain ELLPACK spMVM (Fig. 2a): every thread
// iterates to the global maximum row length, computing on padding.
// y = A·x is computed functionally; the returned stats carry the
// transaction-level timing model.
func RunELLPACK[T matrix.Float](d *Device, e *formats.ELLPACK[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != e.NCols || len(y) != e.N {
		return nil, fmt.Errorf("gpu: ELLPACK run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	es := core.SizeofElem[T]()
	st := &KernelStats{Kernel: "ELLPACK", Rows: e.N, Nnz: int64(e.NnzV), UsefulFlops: 2 * int64(e.NnzV), ElemBytes: es}
	ws := d.WarpSize
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter
	sum := make([]T, ws)

	for wbase := 0; wbase < e.NPad; wbase += ws {
		st.Warps++
		if e.MaxRowLen > 0 {
			st.ActiveWarps++
		}
		lanes := ws
		if wbase+lanes > e.NPad {
			lanes = e.NPad - wbase
		}
		for l := range sum {
			sum[l] = 0
		}
		st.WarpSteps += int64(e.MaxRowLen)
		for j := 0; j < e.MaxRowLen; j++ {
			valSegs.reset()
			idxSegs.reset()
			rhsSegs.reset()
			for lane := 0; lane < lanes; lane++ {
				i := wbase + lane
				at := j*e.NPad + i
				c := e.ColIdx[at]
				sum[lane] += e.Val[at] * x[c]
				st.ExecutedLaneSteps++
				valSegs.add(addrVal+int64(at)*int64(es), segShift)
				idxSegs.add(addrIdx+int64(at)*4, segShift)
				rhsSegs.add(addrRHS+int64(c)*int64(es), secShift)
			}
			st.BytesVal += int64(len(valSegs.segs)) * segBytes
			st.BytesIdx += int64(len(idxSegs.segs)) * segBytes
			for _, sec := range rhsSegs.segs {
				st.RHSProbes++
				if !l2.probe(sec << secShift) {
					st.RHSMisses++
					st.BytesRHS += secBytes
				}
			}
		}
		st.BytesLHS += lhsBytes(&lhsSegs, wbase, min(wbase+lanes, e.N), es, segShift, segBytes, opt.Accumulate)
		storeResult(y, sum, wbase, e.N, opt.Accumulate)
	}
	st.finish(d, ws)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st, nil
}

// RunELLPACKR executes the ELLPACK-R spMVM of Listing 1 (Fig. 2b):
// lanes stop at their row's true length, but the warp reserves its MP
// slot until its longest row finishes, and partially-filled memory
// transactions still move full segments.
func RunELLPACKR[T matrix.Float](d *Device, e *formats.ELLPACKR[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != e.NCols || len(y) != e.N {
		return nil, fmt.Errorf("gpu: ELLPACK-R run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	es := core.SizeofElem[T]()
	st := &KernelStats{Kernel: "ELLPACK-R", Rows: e.N, Nnz: int64(e.NnzV), UsefulFlops: 2 * int64(e.NnzV), ElemBytes: es}
	ws := d.WarpSize
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter
	sum := make([]T, ws)

	for wbase := 0; wbase < e.NPad; wbase += ws {
		st.Warps++
		lanes := ws
		if wbase+lanes > e.NPad {
			lanes = e.NPad - wbase
		}
		maxLen := 0
		for lane := 0; lane < lanes; lane++ {
			if l := int(e.RowLen[wbase+lane]); l > maxLen {
				maxLen = l
			}
		}
		if maxLen > 0 {
			st.ActiveWarps++
		}
		for l := range sum {
			sum[l] = 0
		}
		st.WarpSteps += int64(maxLen)
		// The rowmax[] load: one coalesced segment per warp.
		st.BytesMeta += segBytes
		for j := 0; j < maxLen; j++ {
			valSegs.reset()
			idxSegs.reset()
			rhsSegs.reset()
			for lane := 0; lane < lanes; lane++ {
				i := wbase + lane
				if j >= int(e.RowLen[i]) {
					continue // lane idle: reserved but useless (light boxes of Fig. 2b)
				}
				at := j*e.NPad + i
				c := e.ColIdx[at]
				sum[lane] += e.Val[at] * x[c]
				st.ExecutedLaneSteps++
				valSegs.add(addrVal+int64(at)*int64(es), segShift)
				idxSegs.add(addrIdx+int64(at)*4, segShift)
				rhsSegs.add(addrRHS+int64(c)*int64(es), secShift)
			}
			st.BytesVal += int64(len(valSegs.segs)) * segBytes
			st.BytesIdx += int64(len(idxSegs.segs)) * segBytes
			for _, sec := range rhsSegs.segs {
				st.RHSProbes++
				if !l2.probe(sec << secShift) {
					st.RHSMisses++
					st.BytesRHS += secBytes
				}
			}
		}
		st.BytesLHS += lhsBytes(&lhsSegs, wbase, min(wbase+lanes, e.N), es, segShift, segBytes, opt.Accumulate)
		storeResult(y, sum, wbase, e.N, opt.Accumulate)
	}
	st.finish(d, ws)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st, nil
}

// RunPJDS executes the pJDS spMVM of Listing 2 (Fig. 2c) in the
// permuted basis: yp = Ap·xp with yp in sorted-row order. Because rows
// are sorted, lanes of a warp have (nearly) equal lengths, so both the
// reserved-but-idle lane steps and the partially-filled transactions
// of ELLPACK-R largely disappear.
func RunPJDS[T matrix.Float](d *Device, p *core.PJDS[T], yp, xp []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(xp) != p.NCols || len(yp) < p.N {
		return nil, fmt.Errorf("gpu: pJDS run |x|=%d |y|=%d on %dx%d: %w", len(xp), len(yp), p.N, p.NCols, matrix.ErrShape)
	}
	es := core.SizeofElem[T]()
	st := &KernelStats{Kernel: p.Name(), Rows: p.N, Nnz: int64(p.Nnz), UsefulFlops: 2 * int64(p.Nnz), ElemBytes: es}
	ws := d.WarpSize
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter
	sum := make([]T, ws)

	for wbase := 0; wbase < p.NPad; wbase += ws {
		st.Warps++
		lanes := ws
		if wbase+lanes > p.NPad {
			lanes = p.NPad - wbase
		}
		maxLen := 0
		for lane := 0; lane < lanes; lane++ {
			if l := int(p.RowLen[wbase+lane]); l > maxLen {
				maxLen = l
			}
		}
		if maxLen > 0 {
			st.ActiveWarps++
		}
		for l := range sum {
			sum[l] = 0
		}
		st.WarpSteps += int64(maxLen)
		st.BytesMeta += segBytes // rowmax[] load; col_start[] assumed cached (§II-B)
		for j := 0; j < maxLen; j++ {
			off := int(p.ColStart[j])
			valSegs.reset()
			idxSegs.reset()
			rhsSegs.reset()
			for lane := 0; lane < lanes; lane++ {
				i := wbase + lane
				if j >= int(p.RowLen[i]) {
					continue
				}
				at := off + i
				c := p.ColIdx[at]
				sum[lane] += p.Val[at] * xp[c]
				st.ExecutedLaneSteps++
				valSegs.add(addrVal+int64(at)*int64(es), segShift)
				idxSegs.add(addrIdx+int64(at)*4, segShift)
				rhsSegs.add(addrRHS+int64(c)*int64(es), secShift)
			}
			st.BytesVal += int64(len(valSegs.segs)) * segBytes
			st.BytesIdx += int64(len(idxSegs.segs)) * segBytes
			for _, sec := range rhsSegs.segs {
				st.RHSProbes++
				if !l2.probe(sec << secShift) {
					st.RHSMisses++
					st.BytesRHS += secBytes
				}
			}
		}
		st.BytesLHS += lhsBytes(&lhsSegs, wbase, min(wbase+lanes, p.N), es, segShift, segBytes, opt.Accumulate)
		storeResult(yp, sum, wbase, p.N, opt.Accumulate)
	}
	st.finish(d, ws)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st, nil
}

// RunSlicedELL executes the sliced-ELLPACK kernel (related work
// [12, 13]) in its stored row order: yp = Ap·xp.
func RunSlicedELL[T matrix.Float](d *Device, s *formats.SlicedELL[T], yp, xp []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(xp) != s.NCols || len(yp) < s.N {
		return nil, fmt.Errorf("gpu: sliced-ELL run |x|=%d |y|=%d on %dx%d: %w", len(xp), len(yp), s.N, s.NCols, matrix.ErrShape)
	}
	es := core.SizeofElem[T]()
	st := &KernelStats{Kernel: s.Name(), Rows: s.N, Nnz: int64(s.NonZeros()), UsefulFlops: 2 * int64(s.NonZeros()), ElemBytes: es}
	ws := d.WarpSize
	segShift := log2(d.SegmentBytes)
	segBytes := int64(d.SegmentBytes)
	secShift := log2(d.GatherSectorBytes)
	secBytes := int64(d.GatherSectorBytes)
	l2 := newCache(d.L2, d.GatherSectorBytes)
	var valSegs, idxSegs, rhsSegs, lhsSegs segCounter
	sum := make([]T, ws)

	// One warp covers ws consecutive rows, which may span several
	// slices when C < warpSize; lanes are then grouped per slice but
	// still issue one SIMT instruction stream.
	for wbase := 0; wbase < s.NPad; wbase += ws {
		st.Warps++
		lanes := ws
		if wbase+lanes > s.NPad {
			lanes = s.NPad - wbase
		}
		maxLen := 0
		for lane := 0; lane < lanes; lane++ {
			if l := int(s.RowLen[wbase+lane]); l > maxLen {
				maxLen = l
			}
		}
		if maxLen > 0 {
			st.ActiveWarps++
		}
		for l := range sum {
			sum[l] = 0
		}
		st.WarpSteps += int64(maxLen)
		st.BytesMeta += 2 * segBytes // rowLen + slice offset/length metadata
		for j := 0; j < maxLen; j++ {
			valSegs.reset()
			idxSegs.reset()
			rhsSegs.reset()
			for lane := 0; lane < lanes; lane++ {
				i := wbase + lane
				if j >= int(s.RowLen[i]) {
					continue
				}
				sl, slLane := i/s.C, i%s.C
				at := s.SliceStart[sl] + int64(j*s.C+slLane)
				c := s.ColIdx[at]
				sum[lane] += s.Val[at] * xp[c]
				st.ExecutedLaneSteps++
				valSegs.add(addrVal+at*int64(es), segShift)
				idxSegs.add(addrIdx+at*4, segShift)
				rhsSegs.add(addrRHS+int64(c)*int64(es), secShift)
			}
			st.BytesVal += int64(len(valSegs.segs)) * segBytes
			st.BytesIdx += int64(len(idxSegs.segs)) * segBytes
			for _, sec := range rhsSegs.segs {
				st.RHSProbes++
				if !l2.probe(sec << secShift) {
					st.RHSMisses++
					st.BytesRHS += secBytes
				}
			}
		}
		st.BytesLHS += lhsBytes(&lhsSegs, wbase, min(wbase+lanes, s.N), es, segShift, segBytes, opt.Accumulate)
		storeResult(yp, sum, wbase, s.N, opt.Accumulate)
	}
	st.finish(d, ws)
	st.Publish(opt.Metrics, opt.MetricLabels...)
	return st, nil
}

// lhsBytes counts the result-vector traffic for rows [lo, hi): one
// store (and one load when accumulating) per touched segment.
func lhsBytes(segs *segCounter, lo, hi, es int, segShift uint, segBytes int64, accumulate bool) int64 {
	if hi <= lo {
		return 0
	}
	segs.reset()
	for i := lo; i < hi; i++ {
		segs.add(addrLHS+int64(i)*int64(es), segShift)
	}
	b := int64(len(segs.segs)) * segBytes
	if accumulate {
		b *= 2
	}
	return b
}

// storeResult commits per-lane sums to y for rows below n.
func storeResult[T matrix.Float](y, sum []T, wbase, n int, accumulate bool) {
	for lane := 0; lane < len(sum); lane++ {
		i := wbase + lane
		if i >= n {
			break
		}
		if accumulate {
			y[i] += sum[lane]
		} else {
			y[i] = sum[lane]
		}
	}
}
