package gpu

import (
	"fmt"

	"pjds/internal/core"
	"pjds/internal/formats"
	"pjds/internal/matrix"
	"pjds/internal/telemetry"
)

// RunOptions modify a kernel execution.
type RunOptions struct {
	// Accumulate computes y += A·x instead of y = A·x. The result
	// vector is then both read and written, which adds the 8/N_nzr
	// bytes/flop the paper attributes to the split local/non-local
	// spMVM of §III-A.
	Accumulate bool
	// Workers is the number of host goroutines executing warps
	// concurrently; 0 selects the package default (SetDefaultWorkers,
	// falling back to GOMAXPROCS), 1 forces sequential execution.
	// Results, stats and telemetry are bit-identical for any value:
	// warps write disjoint result rows and every simulated counter is
	// precompiled into the plan.
	Workers int
	// Plans selects the plan cache to memoize compiled kernel plans
	// in; nil uses the package-default cache (Plans()).
	Plans *PlanCache
	// Metrics receives the kernel's statistics after the run; nil
	// publishes to telemetry.Default(). MetricLabels are appended to
	// the kernel/device labels — the distributed runs add rank and
	// phase so concurrent ranks never write the same gauge series.
	Metrics      *telemetry.Registry
	MetricLabels []telemetry.Label
	// Faults (nil = healthy device) is consulted once per kernel
	// launch; a firing injector aborts the launch with an ECCError
	// before any work or timing is modelled.
	Faults ECCInjector
}

// RunELLPACK executes the plain ELLPACK spMVM (Fig. 2a): every thread
// iterates to the global maximum row length, computing on padding.
// y = A·x is computed functionally; the returned stats carry the
// transaction-level timing model.
func RunELLPACK[T matrix.Float](d *Device, e *formats.ELLPACK[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != e.NCols || len(y) != e.N {
		return nil, fmt.Errorf("gpu: ELLPACK run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	if err := eccCheck(opt, "ELLPACK"); err != nil {
		return nil, err
	}
	p := planFor(opt, d, "ELLPACK", e, func() *Plan[T] {
		// Plain ELLPACK has no row-length array on the device: every
		// lane runs to the global maximum, computing on padding.
		steps := make([]int32, e.NPad)
		for i := range steps {
			steps[i] = int32(e.MaxRowLen)
		}
		return compilePlan(d, planSource[T]{
			kernel: "ELLPACK", rows: e.N, cols: e.NCols, nPad: e.NPad,
			nnz: int64(e.NnzV), metaSegs: 0,
			val: e.Val, steps: steps,
			access: func(i, j int) (int64, int32) {
				at := j*e.NPad + i
				return int64(at), e.ColIdx[at]
			},
		})
	})
	return p.run(d, y, x, opt), nil
}

// RunELLPACKR executes the ELLPACK-R spMVM of Listing 1 (Fig. 2b):
// lanes stop at their row's true length, but the warp reserves its MP
// slot until its longest row finishes, and partially-filled memory
// transactions still move full segments.
func RunELLPACKR[T matrix.Float](d *Device, e *formats.ELLPACKR[T], y, x []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(x) != e.NCols || len(y) != e.N {
		return nil, fmt.Errorf("gpu: ELLPACK-R run |x|=%d |y|=%d on %dx%d: %w", len(x), len(y), e.N, e.NCols, matrix.ErrShape)
	}
	if err := eccCheck(opt, "ELLPACK-R"); err != nil {
		return nil, err
	}
	p := planFor(opt, d, "ELLPACK-R", e, func() *Plan[T] {
		return compilePlan(d, planSource[T]{
			kernel: "ELLPACK-R", rows: e.N, cols: e.NCols, nPad: e.NPad,
			nnz: int64(e.NnzV), metaSegs: 1, // the rowmax[] load: one coalesced segment per warp
			val: e.Val, steps: e.RowLen,
			access: func(i, j int) (int64, int32) {
				at := j*e.NPad + i
				return int64(at), e.ColIdx[at]
			},
		})
	})
	return p.run(d, y, x, opt), nil
}

// RunPJDS executes the pJDS spMVM of Listing 2 (Fig. 2c) in the
// permuted basis: yp = Ap·xp with yp in sorted-row order. Because rows
// are sorted, lanes of a warp have (nearly) equal lengths, so both the
// reserved-but-idle lane steps and the partially-filled transactions
// of ELLPACK-R largely disappear.
func RunPJDS[T matrix.Float](d *Device, p *core.PJDS[T], yp, xp []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(xp) != p.NCols || len(yp) < p.N {
		return nil, fmt.Errorf("gpu: pJDS run |x|=%d |y|=%d on %dx%d: %w", len(xp), len(yp), p.N, p.NCols, matrix.ErrShape)
	}
	if err := eccCheck(opt, p.Name()); err != nil {
		return nil, err
	}
	pl := planFor(opt, d, p.Name(), p, func() *Plan[T] {
		return compilePlan(d, planSource[T]{
			kernel: p.Name(), rows: p.N, cols: p.NCols, nPad: p.NPad,
			nnz: int64(p.Nnz), metaSegs: 1, // rowmax[] load; col_start[] assumed cached (§II-B)
			val: p.Val, steps: p.RowLen,
			access: func(i, j int) (int64, int32) {
				at := int(p.ColStart[j]) + i
				return int64(at), p.ColIdx[at]
			},
		})
	})
	return pl.run(d, yp, xp, opt), nil
}

// RunSlicedELL executes the sliced-ELLPACK kernel (related work
// [12, 13]) in its stored row order: yp = Ap·xp. One warp covers
// warpSize consecutive rows, which may span several slices when
// C < warpSize; lanes are then grouped per slice but still issue one
// SIMT instruction stream.
func RunSlicedELL[T matrix.Float](d *Device, s *formats.SlicedELL[T], yp, xp []T, opt RunOptions) (*KernelStats, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(xp) != s.NCols || len(yp) < s.N {
		return nil, fmt.Errorf("gpu: sliced-ELL run |x|=%d |y|=%d on %dx%d: %w", len(xp), len(yp), s.N, s.NCols, matrix.ErrShape)
	}
	if err := eccCheck(opt, s.Name()); err != nil {
		return nil, err
	}
	p := planFor(opt, d, s.Name(), s, func() *Plan[T] {
		return compilePlan(d, planSource[T]{
			kernel: s.Name(), rows: s.N, cols: s.NCols, nPad: s.NPad,
			nnz: int64(s.NonZeros()), metaSegs: 2, // rowLen + slice offset/length metadata
			val: s.Val, steps: s.RowLen,
			access: func(i, j int) (int64, int32) {
				sl, slLane := i/s.C, i%s.C
				at := s.SliceStart[sl] + int64(j*s.C+slLane)
				return at, s.ColIdx[at]
			},
		})
	})
	st := p.run(d, yp, xp, opt)
	publishFormatGeometry(opt.Metrics, s.StoredElems(), int64(s.NonZeros()),
		telemetry.L("kernel", s.Name()),
		telemetry.L("device", d.Name),
		telemetry.L("format", s.SELLName()),
		telemetry.Li("c", s.C),
		telemetry.Li("sigma", s.SortWindow))
	return st, nil
}

// lhsSegments counts the distinct result-vector segments rows [lo, hi)
// touch; the plan stores the count so the accumulate-dependent byte
// doubling can be applied at replay time.
func lhsSegments(segs *segCounter, lo, hi, es int, segShift uint) int64 {
	if hi <= lo {
		return 0
	}
	segs.reset()
	for i := lo; i < hi; i++ {
		segs.add(addrLHS+int64(i)*int64(es), segShift)
	}
	return int64(len(segs.segs))
}

// lhsBytes counts the result-vector traffic for rows [lo, hi): one
// store (and one load when accumulating) per touched segment.
func lhsBytes(segs *segCounter, lo, hi, es int, segShift uint, segBytes int64, accumulate bool) int64 {
	b := lhsSegments(segs, lo, hi, es, segShift) * segBytes
	if accumulate {
		b *= 2
	}
	return b
}

// storeResult commits per-lane sums to y for rows below n.
func storeResult[T matrix.Float](y, sum []T, wbase, n int, accumulate bool) {
	for lane := 0; lane < len(sum); lane++ {
		i := wbase + lane
		if i >= n {
			break
		}
		if accumulate {
			y[i] += sum[lane]
		} else {
			y[i] = sum[lane]
		}
	}
}
