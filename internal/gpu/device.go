// Package gpu simulates the nVidia "Fermi" class of GPGPUs (GF100)
// that the paper benchmarks on, at the level of detail its results
// depend on. Kernels execute functionally — real arithmetic, bit-
// comparable to the CRS reference — while a transaction-level memory
// model counts coalesced 128-byte segments, simulates RHS reuse in the
// shared L2 cache, applies the ECC bandwidth derating, and accounts
// for warp divergence ("useless hardware reservation", Fig. 2) and
// occupancy-limited latency hiding.
//
// spMVM on Fermi is memory-bandwidth-bound, so simulated wallclock is
// derived from bytes moved and the device's sustained bandwidth, with
// a roofline-style max against the SIMT compute time. All hardware
// parameters come from §I-B of the paper or from the published
// streaming measurements it cites.
package gpu

import (
	"fmt"
)

// Device describes one GPGPU accelerator. The zero value is not
// useful; start from a preset (TeslaC2070, TeslaC2050, TeslaC1060) and
// override fields as needed.
type Device struct {
	Name string

	// SIMT geometry (§I-B: 14 MPs × 32 ALUs, warp size 32).
	NumMPs    int
	ALUsPerMP int
	WarpSize  int

	// ClockGHz is the ALU clock ("above 1 GHz" per the paper).
	ClockGHz float64

	// MemBytes is the device-memory capacity (3 GB C2050, 6 GB C2070).
	// Enabling ECC reserves 1/8 of it for check bits, as on real
	// Fermi boards; UsableMemBytes reports the remainder.
	MemBytes int64

	// Sustained streaming device-memory bandwidth in bytes/s with and
	// without ECC (91 and 120 GB/s per the Habich et al. measurement
	// cited in §I-B).
	BandwidthECC   float64
	BandwidthNoECC float64

	// ECC selects the operating mode of Table I's ECC=0/1 columns.
	ECC bool

	// SegmentBytes is the memory-coalescing granularity for streaming
	// loads: a warp's loads are serviced in aligned segments of this
	// size (128 B on Fermi).
	SegmentBytes int

	// GatherSectorBytes is the transfer granularity of scattered
	// gathers (the RHS accesses): GF100's L2 lines are sectored, so a
	// miss fetches a 32-byte sector, not the full 128-byte line.
	// Without this, scattered matrices pay a 16× overfetch the real
	// hardware does not show.
	GatherSectorBytes int

	// L2 describes the on-chip shared L2 cache (768 kB on GF100).
	// A nil L2 models the pre-Fermi Tesla C1060 generation without a
	// data cache, for which the paper reports more severe pJDS
	// permutation penalties.
	L2 *CacheConfig

	// KernelLaunchSeconds is the fixed host-side cost of launching a
	// kernel; it dominates tiny kernels such as the non-local spMVM
	// part at high node counts (§III-B).
	KernelLaunchSeconds float64

	// WarpsToSaturate is the number of resident warps per MP needed to
	// hide memory latency and reach the sustained bandwidth. Kernels
	// with fewer warps see proportionally less bandwidth; this drives
	// the small-subproblem performance drop of Fig. 5a. (DESIGN.md
	// ablation "Occupancy".)
	WarpsToSaturate float64
}

// TeslaC2070 returns the 6 GB Fermi board used for the Table I
// single-GPU measurements.
func TeslaC2070() *Device {
	return &Device{
		Name:                "Tesla C2070",
		NumMPs:              14,
		ALUsPerMP:           32,
		WarpSize:            32,
		ClockGHz:            1.15,
		MemBytes:            6 << 30,
		BandwidthECC:        91e9,
		BandwidthNoECC:      120e9,
		ECC:                 true,
		SegmentBytes:        128,
		GatherSectorBytes:   32,
		L2:                  DefaultL2(),
		KernelLaunchSeconds: 7e-6,
		WarpsToSaturate:     8,
	}
}

// TeslaC2050 returns the 3 GB Fermi board of the Dirac cluster nodes
// used for the scaling runs (§I-B, §III).
func TeslaC2050() *Device {
	d := TeslaC2070()
	d.Name = "Tesla C2050"
	d.MemBytes = 3 << 30
	return d
}

// TeslaC1060 returns the pre-Fermi board without an L2 cache that
// §II-A mentions when discussing permutation-induced locality loss.
func TeslaC1060() *Device {
	d := TeslaC2070()
	d.Name = "Tesla C1060"
	d.ClockGHz = 1.30
	d.MemBytes = 4 << 30
	d.BandwidthECC = 74e9 // C1060 has no ECC; keep both rates equal
	d.BandwidthNoECC = 74e9
	d.ECC = false
	d.L2 = nil
	return d
}

// Validate reports configuration errors.
func (d *Device) Validate() error {
	switch {
	case d.NumMPs <= 0 || d.ALUsPerMP <= 0 || d.WarpSize <= 0:
		return fmt.Errorf("gpu: %s: non-positive SIMT geometry", d.Name)
	case d.ClockGHz <= 0:
		return fmt.Errorf("gpu: %s: non-positive clock", d.Name)
	case d.SegmentBytes <= 0 || d.SegmentBytes&(d.SegmentBytes-1) != 0:
		return fmt.Errorf("gpu: %s: segment size %d not a positive power of two", d.Name, d.SegmentBytes)
	case d.GatherSectorBytes <= 0 || d.GatherSectorBytes&(d.GatherSectorBytes-1) != 0:
		return fmt.Errorf("gpu: %s: gather sector size %d not a positive power of two", d.Name, d.GatherSectorBytes)
	case d.Bandwidth() <= 0:
		return fmt.Errorf("gpu: %s: non-positive bandwidth", d.Name)
	case d.WarpsToSaturate <= 0:
		return fmt.Errorf("gpu: %s: non-positive WarpsToSaturate", d.Name)
	}
	return nil
}

// Bandwidth returns the sustained device-memory bandwidth for the
// current ECC mode, in bytes/s.
func (d *Device) Bandwidth() float64 {
	if d.ECC {
		return d.BandwidthECC
	}
	return d.BandwidthNoECC
}

// UsableMemBytes returns device memory available to allocations: ECC
// check bits consume 1/8 of the raw capacity when enabled.
func (d *Device) UsableMemBytes() int64 {
	if d.ECC {
		return d.MemBytes - d.MemBytes/8
	}
	return d.MemBytes
}

// Fits reports whether a problem of the given total footprint (matrix
// data plus vectors) fits in device memory under the current ECC mode.
// §II-A notes that the DP DLR2 matrix fits on a C2050 only in pJDS.
func (d *Device) Fits(bytes int64) bool { return bytes <= d.UsableMemBytes() }

// PeakFMAPerSecond returns the peak fused multiply-add throughput for
// the element width (4 = SP, 8 = DP); DP runs at half rate on GF100.
// One FMA is two flops, so peak flops = 2×this (896 flops/cycle SP on
// the full chip, per §I-B).
func (d *Device) PeakFMAPerSecond(elemBytes int) float64 {
	fma := float64(d.NumMPs*d.ALUsPerMP) * d.ClockGHz * 1e9
	if elemBytes == 8 {
		fma /= 2
	}
	return fma
}

// OccupancyFactor returns the fraction of sustained bandwidth
// achievable with the given number of warps in the whole kernel:
// min(1, warpsPerMP/WarpsToSaturate). Tiny kernels cannot hide the
// device-memory latency.
func (d *Device) OccupancyFactor(totalWarps int) float64 {
	if totalWarps <= 0 {
		return 1
	}
	perMP := float64(totalWarps) / float64(d.NumMPs)
	if perMP >= d.WarpsToSaturate {
		return 1
	}
	return perMP / d.WarpsToSaturate
}

// EffectiveBandwidth returns the bandwidth a kernel with totalWarps
// warps sustains, in bytes/s.
func (d *Device) EffectiveBandwidth(totalWarps int) float64 {
	return d.Bandwidth() * d.OccupancyFactor(totalWarps)
}
