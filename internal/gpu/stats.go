package gpu

import "fmt"

// Base addresses of the simulated device allocations. Each array lives
// in its own naturally-aligned 1 TiB region, so segment and cache-line
// arithmetic never aliases across arrays.
const (
	addrVal int64 = iota << 40
	addrIdx
	addrRHS
	addrLHS
	addrMeta
)

// KernelStats reports everything the simulator learns from one spMVM
// kernel execution: functional totals, the transaction-level memory
// traffic per stream, L2 behaviour, and the derived timing.
type KernelStats struct {
	Kernel string
	Device string

	Rows int
	Nnz  int64
	// UsefulFlops is 2·Nnz: the flops the paper's GF/s numbers count.
	UsefulFlops int64
	// ExecutedLaneSteps counts the FMA slots actually executed by
	// active lanes; for plain ELLPACK it includes the padding work.
	ExecutedLaneSteps int64
	// WarpSteps counts SIMT instruction steps summed over warps: a
	// warp busy for k steps reserves its MP slot for k steps whether
	// or not all lanes are active (Fig. 2's "useless hardware
	// reservation").
	WarpSteps int64
	// Warps is the number of warps launched; ActiveWarps counts those
	// with at least one non-empty row. Only active warps request
	// memory and hide latency, which matters for the almost-empty
	// non-local kernels of the distributed spMVM (§III-B).
	Warps       int
	ActiveWarps int

	// Memory traffic per stream, in bytes fetched from device memory.
	BytesVal  int64 // matrix values
	BytesIdx  int64 // column indices
	BytesRHS  int64 // right-hand-side gather (L2 misses only)
	BytesLHS  int64 // result vector write (and read, if accumulating)
	BytesMeta int64 // row-length array

	// RHSProbes/RHSMisses count L2 segment lookups of the RHS gather.
	RHSProbes, RHSMisses int64

	// ElemBytes is the value width (4 SP, 8 DP); WarpSize is the SIMD
	// width the counters were collected with.
	ElemBytes int
	WarpSize  int

	// Derived quantities, filled by finish().
	L2HitRate      float64
	Alpha          float64 // measured RHS traffic per non-zero, in units of ElemBytes (Eq. 1's α)
	BytesTotal     int64
	CodeBalance    float64 // bytes per useful flop
	MemSeconds     float64
	ComputeSeconds float64
	KernelSeconds  float64 // max(mem, compute) + launch overhead
	GFlops         float64 // useful GF/s, excluding PCIe transfers (as in Table I)
	// LaneEfficiency is ExecutedLaneSteps/(WarpSteps·warpSize): the
	// fraction of reserved SIMT slots doing useful work.
	LaneEfficiency float64
	// CoalescingEfficiency is the ratio of the minimal val+idx stream
	// traffic (Nnz·(ElemBytes+4) bytes) to the bytes actually moved on
	// those streams: 1.0 means every transaction was a full segment,
	// lower means partially-filled transactions (the wasted parts of
	// Fig. 2's memory blocks). Zero-nnz kernels report 0.
	CoalescingEfficiency float64
}

// Rederive recomputes the derived timing of the same transaction
// counters on another device of identical SIMT geometry — e.g. the
// same board with ECC toggled, which changes only the sustained
// bandwidth (Table I's ECC=0 vs ECC=1 columns re-use one simulation).
func (s KernelStats) Rederive(d *Device) KernelStats {
	out := s
	out.finish(d, s.WarpSize)
	return out
}

// finish derives timing from the raw counters.
func (s *KernelStats) finish(d *Device, warpSize int) {
	s.WarpSize = warpSize
	s.Device = d.Name
	s.BytesTotal = s.BytesVal + s.BytesIdx + s.BytesRHS + s.BytesLHS + s.BytesMeta
	if s.RHSProbes > 0 {
		s.L2HitRate = 1 - float64(s.RHSMisses)/float64(s.RHSProbes)
	}
	if s.Nnz > 0 {
		s.Alpha = float64(s.BytesRHS) / float64(int64(s.ElemBytes)*s.Nnz)
	}
	if s.UsefulFlops > 0 {
		s.CodeBalance = float64(s.BytesTotal) / float64(s.UsefulFlops)
	}
	bw := d.EffectiveBandwidth(s.ActiveWarps)
	s.MemSeconds = float64(s.BytesTotal) / bw
	s.ComputeSeconds = float64(s.WarpSteps) * float64(warpSize) / d.PeakFMAPerSecond(s.ElemBytes)
	s.KernelSeconds = s.MemSeconds
	if s.ComputeSeconds > s.KernelSeconds {
		s.KernelSeconds = s.ComputeSeconds
	}
	s.KernelSeconds += d.KernelLaunchSeconds
	if s.KernelSeconds > 0 {
		s.GFlops = float64(s.UsefulFlops) / s.KernelSeconds / 1e9
	}
	if s.WarpSteps > 0 {
		s.LaneEfficiency = float64(s.ExecutedLaneSteps) / (float64(s.WarpSteps) * float64(warpSize))
	}
	if streamed := s.BytesVal + s.BytesIdx; streamed > 0 {
		s.CoalescingEfficiency = float64(s.Nnz*int64(s.ElemBytes+4)) / float64(streamed)
	}
}

// String renders a one-line summary.
func (s KernelStats) String() string {
	return fmt.Sprintf("%s on %s: %.2f GF/s, balance %.2f B/F, alpha %.2f, L2 %.0f%%, lanes %.0f%%, %.3f ms",
		s.Kernel, s.Device, s.GFlops, s.CodeBalance, s.Alpha, 100*s.L2HitRate, 100*s.LaneEfficiency, 1e3*s.KernelSeconds)
}

// segCounter accumulates distinct aligned segments within one
// warp-step for one stream. Lanes touch monotonically non-decreasing
// addresses for the val/idx streams, and arbitrary ones for the RHS
// gather; the counter handles both with a tiny linear set (a warp
// touches at most warpSize distinct segments).
type segCounter struct {
	segs []int64
}

// add records the segment containing addr; segShift = log2(segment size).
func (c *segCounter) add(addr int64, segShift uint) {
	seg := addr >> segShift
	for _, s := range c.segs {
		if s == seg {
			return
		}
	}
	c.segs = append(c.segs, seg)
}

// reset clears the counter for the next warp-step.
func (c *segCounter) reset() { c.segs = c.segs[:0] }

// log2 of a power-of-two integer.
func log2(v int) uint {
	n := uint(0)
	for 1<<n < v {
		n++
	}
	return n
}
